package planarcert_test

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/gen"
)

func buildGrid(t *testing.T, rows, cols int) *planarcert.Network {
	t.Helper()
	return planarcert.FromGraph(gen.Grid(rows, cols))
}

func TestFacadeEndToEnd(t *testing.T) {
	net := buildGrid(t, 4, 4)
	report, err := planarcert.CertifyAndVerify(net, planarcert.SchemePlanarity)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Accepted {
		t.Fatalf("grid rejected: %v", report.Reasons)
	}
	if report.MaxCertBits == 0 || report.Messages != 2*net.M() {
		t.Fatalf("report stats: %+v", report)
	}
}

func TestFacadeVerifyWithModes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := planarcert.FromGraph(gen.StackedTriangulation(300, rng))
	certs, err := planarcert.Certify(net, planarcert.SchemePlanarity)
	if err != nil {
		t.Fatal(err)
	}
	configs := map[string]planarcert.EngineConfig{
		"auto":       {},
		"sequential": {Sequential: true},
		"parallel":   {Parallel: true, Workers: 4, ShardSize: 16},
		"failfast":   {FailFast: true},
	}
	var want *planarcert.Report
	for name, cfg := range configs {
		report, err := planarcert.VerifyWith(net, planarcert.SchemePlanarity, certs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !report.Accepted {
			t.Fatalf("%s: honest certificates rejected: %v", name, report.Reasons)
		}
		if want == nil {
			want = report
			continue
		}
		if report.MaxCertBits != want.MaxCertBits || report.Messages != want.Messages ||
			report.AvgCertBits != want.AvgCertBits {
			t.Fatalf("%s: stats diverge across modes: %+v vs %+v", name, report, want)
		}
	}
	// Adversarial certificates must be rejected identically in every mode.
	forged := planarcert.Certificates{}
	for id, c := range certs {
		forged[id] = c
	}
	ids := net.IDs()
	a, b := ids[3], ids[len(ids)-4]
	forged[a], forged[b] = forged[b], forged[a]
	var accepted *bool
	for name, cfg := range configs {
		report, err := planarcert.VerifyWith(net, planarcert.SchemePlanarity, forged, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if accepted == nil {
			accepted = &report.Accepted
		} else if report.Accepted != *accepted {
			t.Fatalf("%s: modes disagree on forged certificates", name)
		}
		if report.Accepted {
			t.Fatalf("%s: swapped certificates accepted", name)
		}
		if len(report.Rejecting) == 0 || report.Reasons[report.Rejecting[0]] == "" {
			t.Fatalf("%s: rejection without reason: %+v", name, report)
		}
	}
}

func TestFacadeNetworkBuilding(t *testing.T) {
	net := planarcert.NewNetwork()
	for id := planarcert.NodeID(10); id < 14; id++ {
		if err := net.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddNode(10); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := net.AddEdge(10, 11); err != nil {
		t.Fatal(err)
	}
	if err := net.AddEdge(10, 99); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
	if !net.HasEdge(11, 10) {
		t.Fatal("HasEdge")
	}
	if got := net.Neighbors(10); len(got) != 1 || got[0] != 11 {
		t.Fatalf("Neighbors = %v", got)
	}
	if net.RemoveEdge(10, 11) != true || net.M() != 0 {
		t.Fatal("RemoveEdge")
	}
	if net.Connected() {
		t.Fatal("disconnected network reported connected")
	}
}

func TestFacadeAllSchemes(t *testing.T) {
	if len(planarcert.Schemes()) != 6 {
		t.Fatalf("Schemes() = %v", planarcert.Schemes())
	}
	if _, err := planarcert.Certify(planarcert.NewNetwork(), "bogus"); !errors.Is(err, planarcert.ErrUnknownScheme) {
		t.Fatalf("unknown scheme error = %v", err)
	}
	if _, err := planarcert.Verify(planarcert.NewNetwork(), "bogus", nil); !errors.Is(err, planarcert.ErrUnknownScheme) {
		t.Fatalf("unknown scheme error = %v", err)
	}
}

func TestFacadeKuratowski(t *testing.T) {
	net := planarcert.FromGraph(gen.Complete(5))
	if net.IsPlanar() {
		t.Fatal("K5 planar?")
	}
	w, err := net.Kuratowski()
	if err != nil {
		t.Fatal(err)
	}
	if w.Kind != "K5" || len(w.Branch) != 5 {
		t.Fatalf("witness = %+v", w)
	}
	if _, err := buildGrid(t, 2, 2).Kuratowski(); err == nil {
		t.Fatal("witness extracted from planar graph")
	}
}

func TestFacadeOuterplanar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := planarcert.FromGraph(gen.RandomOuterplanar(12, 0.5, rng))
	if !net.IsOuterplanar() {
		t.Fatal("outerplanar graph rejected")
	}
	rep, err := planarcert.CertifyAndVerify(net, planarcert.SchemeOuterplanarity)
	if err != nil || !rep.Accepted {
		t.Fatalf("outerplanarity: %v %v", err, rep)
	}
	if buildGrid(t, 3, 3).IsOuterplanar() {
		t.Fatal("grid outerplanar?")
	}
}

func TestFacadeCrossVerification(t *testing.T) {
	// Certificates for one scheme must not pass as another's.
	net := buildGrid(t, 3, 3)
	certs, err := planarcert.Certify(net, planarcert.SchemeSpanningTree)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("spanning-tree certificates accepted as planarity proof")
	}
}

func TestFacadeBroadcast(t *testing.T) {
	net := buildGrid(t, 4, 4)
	rounds, err := net.Broadcast([]planarcert.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 6 {
		t.Fatalf("broadcast rounds = %d", rounds)
	}
	if _, err := net.Broadcast([]planarcert.NodeID{999}); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestFacadeDMAM(t *testing.T) {
	net := buildGrid(t, 3, 4)
	rep, err := planarcert.RunPlanarityDMAM(net, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || rep.Interactions != 3 || rep.RandomBits != 61 {
		t.Fatalf("dMAM report = %+v", rep)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	in := "# comment\n1 2\n2 3\n\n3 1\n7\n"
	net, err := planarcert.ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if net.N() != 4 || net.M() != 3 {
		t.Fatalf("parsed n=%d m=%d", net.N(), net.M())
	}
	var buf bytes.Buffer
	if err := net.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := planarcert.ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.N() != 4 || again.M() != 3 {
		t.Fatalf("round trip n=%d m=%d", again.N(), again.M())
	}
}

func TestEdgeListErrors(t *testing.T) {
	if _, err := planarcert.ParseEdgeList(strings.NewReader("1 2 3\n")); err == nil {
		t.Fatal("3-field line accepted")
	}
	if _, err := planarcert.ParseEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-integer accepted")
	}
}

func TestFacadeSelfCertify(t *testing.T) {
	net := buildGrid(t, 4, 4)
	certs, rep, err := planarcert.SelfCertify(net, planarcert.SchemePlanarity)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds == 0 || rep.TotalBits == 0 || rep.LeaderID != 0 {
		t.Fatalf("preprocess report = %+v", rep)
	}
	out, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
	if err != nil || !out.Accepted {
		t.Fatalf("self-certified certificates rejected: %v", err)
	}
	if _, _, err := planarcert.SelfCertify(net, "bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestFacadeClone(t *testing.T) {
	net := buildGrid(t, 2, 2)
	c := net.Clone()
	c.RemoveEdge(0, 1)
	if !net.HasEdge(0, 1) {
		t.Fatal("clone shares state")
	}
}
