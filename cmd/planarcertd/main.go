// Command planarcertd serves compact planarity certification over
// HTTP/JSON: named incremental sessions (create, stream updates, watch
// absorption reports, delete) plus stateless one-shot certify/verify,
// health and Prometheus metrics.
//
// Usage:
//
//	planarcertd -addr :7420 -budget 8 -max-sessions 1024
//	planarcertd -addr :7420 -data-dir /var/lib/planarcert -fsync always
//
// Quick round trip:
//
//	curl -s localhost:7420/healthz
//	curl -s -X POST localhost:7420/v1/sessions \
//	     -d '{"name":"s1","scheme":"planarity","graph":{"edges":[[0,1],[1,2],[2,0]]}}'
//	curl -s -X POST 'localhost:7420/v1/sessions/s1/updates' \
//	     -H 'Content-Type: application/x-ndjson' \
//	     -d '{"op":"add_node","a":3}
//	{"op":"add_edge","a":2,"b":3}'
//	curl -s localhost:7420/v1/sessions/s1/watch   # streams NDJSON reports
//	curl -s -X DELETE localhost:7420/v1/sessions/s1
//
// High-throughput fleets can switch both directions to the binary frame
// protocol (Content-Type application/x-planarcert-frame on POST
// .../updates; .../watch?format=binary for a version-acknowledged event
// stream resumable with ?sub= after reconnect; -watch-replay bounds the
// per-session replay ring). The frame format is frozen; see
// ARCHITECTURE.md's "Wire protocol" section.
//
// All sessions share one bounded verification worker budget (-budget),
// so heavy traffic degrades gracefully toward per-session sequential
// verification instead of oversubscribing the machine. Both that
// budget and batch execution itself (-exec-slots) are granted by a
// weighted fair-share scheduler over per-session QoS classes
// (interactive/batch/background; "qos" in the create body,
// -default-qos otherwise, weights tunable with -qos-weights), so a
// re-prove storm in one session cannot starve repairs in another; a
// batch that cannot be admitted within -admit-timeout is shed with 503.
//
// Hardening: -auth-token (repeatable) requires a bearer token on every
// non-probe request; -rate-limit/-rate-burst apply a per-client token
// bucket (keyed by bearer token, else client IP); -evict-lru evicts the
// least-recently-used session instead of refusing creates at
// -max-sessions (durable victims remain recoverable on disk); and
// -adaptive-repair lets each session tune its repair threshold from
// observed repair-vs-reprove latency windows.
//
// With -data-dir set the daemon is durable: every applied batch is
// written to a per-session write-ahead log before it is acked, sessions
// snapshot their certificates every -snapshot-every batches (keyed by
// the topology fingerprint), and on boot each session is restored from
// its newest valid snapshot plus the WAL tail and re-validated by the
// proof-labeling scheme's own verification sweep. /readyz answers 503
// until that replay completes; on SIGTERM/SIGINT the daemon stops
// accepting batches, drains in-flight applies, flushes the WAL, and
// writes final snapshots before exiting.
//
// Observability: every batch is traced (round-level spans with
// queue-wait, budget-wait, prove, sweep, and persist phases) into a
// ring served on /debug/traces and /debug/traces/{session}; tune with
// -trace-ring, -trace-sample, and -trace-slow. -debug-addr exposes
// net/http/pprof on a SEPARATE listener (keep it on loopback; profiles
// reveal heap contents). -version prints the build identity that
// /metrics reports as planarcertd_build_info.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/buildinfo"
	"github.com/planarcert/planarcert/internal/server"
	"github.com/planarcert/planarcert/internal/wal"
)

func main() {
	addr := flag.String("addr", ":7420", "listen address")
	budget := flag.Int("budget", 0, "shared verification worker slots across all sessions (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 1024, "maximum number of live sessions")
	watchBuffer := flag.Int("watch-buffer", 16, "per-watcher report buffer before drops")
	watchReplay := flag.Int("watch-replay", 0, "per-session events retained for binary watch resume (0 = 64, negative = off)")
	workers := flag.Int("workers", 0, "per-verification worker bound (0 = GOMAXPROCS)")
	shard := flag.Int("shard", 0, "nodes a worker claims per handoff (0 = engine default)")
	seq := flag.Bool("seq", false, "force single-goroutine verification per session")
	dataDir := flag.String("data-dir", "", "data directory for WALs and snapshots (empty = no persistence)")
	fsyncFlag := flag.String("fsync", "always", "WAL fsync policy: always (acked batches survive power loss) or never (survive crashes only)")
	snapshotEvery := flag.Int("snapshot-every", 32, "logged batches between automatic per-session snapshots")
	budgetPatience := flag.Duration("budget-patience", 0, "how long a verification sweep waits for one extra budget slot (0 = never wait)")
	traceRing := flag.Int("trace-ring", 256, "retained traces on /debug/traces (negative = tracing off)")
	traceSample := flag.Int("trace-sample", 1, "keep every Nth trace (slow traces are always kept)")
	traceSlow := flag.Duration("trace-slow", 100*time.Millisecond, "batch duration above which a trace is always retained")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty = pprof off)")
	var authTokens tokenList
	flag.Var(&authTokens, "auth-token", "bearer token required on every request except probes and /metrics (repeatable; empty = auth off)")
	rateLimit := flag.Float64("rate-limit", 0, "sustained per-client requests/second (client = bearer token, else remote host; 0 = off)")
	rateBurst := flag.Int("rate-burst", 0, "per-client burst allowance (0 = max(8, 2x rate-limit))")
	qosWeights := flag.String("qos-weights", "", "fair-share weights as class=weight pairs, e.g. interactive=16,batch=4,background=1 (empty = defaults)")
	execSlots := flag.Int("exec-slots", 0, "concurrent batch executions across all sessions (0 = max(4, 2x GOMAXPROCS))")
	admitTimeout := flag.Duration("admit-timeout", 0, "max admission-queue wait before a batch is rejected 503 (0 = 30s)")
	defaultQoS := flag.String("default-qos", "", "QoS class of sessions that do not request one, and of restored sessions (empty = batch)")
	evictLRU := flag.Bool("evict-lru", false, "evict the least-recently-used session instead of rejecting creation at -max-sessions")
	adaptiveRepair := flag.Bool("adaptive-repair", false, "let each session tune its repair threshold from observed repair vs re-prove latencies")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		buildinfo.Print(os.Stdout, "planarcertd")
		return
	}

	policy, err := wal.ParseSyncPolicy(*fsyncFlag)
	if err != nil {
		log.Fatalf("planarcertd: %v", err)
	}
	weights, err := parseQoSWeights(*qosWeights)
	if err != nil {
		log.Fatalf("planarcertd: %v", err)
	}
	if *defaultQoS != "" {
		if _, err := planarcert.ParseQoSClass(*defaultQoS); err != nil {
			log.Fatalf("planarcertd: -default-qos: %v", err)
		}
	}

	srv := server.New(server.Config{
		MaxSessions:      *maxSessions,
		BudgetSlots:      *budget,
		WatchBuffer:      *watchBuffer,
		ReplayEvents:     *watchReplay,
		DataDir:          *dataDir,
		Fsync:            policy,
		SnapshotEvery:    *snapshotEvery,
		TraceRing:        *traceRing,
		TraceSampleEvery: *traceSample,
		TraceSlow:        *traceSlow,
		AuthTokens:       authTokens,
		RateLimit:        *rateLimit,
		RateBurst:        *rateBurst,
		QoSWeights:       weights,
		ExecSlots:        *execSlots,
		AdmitTimeout:     *admitTimeout,
		DefaultQoS:       *defaultQoS,
		EvictLRU:         *evictLRU,
		AdaptiveRepair:   *adaptiveRepair,
		Engine: planarcert.EngineConfig{
			Sequential:     *seq,
			Workers:        *workers,
			ShardSize:      *shard,
			BudgetPatience: *budgetPatience,
		},
	})

	// The profiling surface binds its own (typically loopback) address:
	// pprof exposes heap contents and must never ride on the service
	// port. Registering explicitly on a fresh mux — rather than blank-
	// importing pprof — keeps DefaultServeMux out of the picture.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			dsrv := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			log.Printf("planarcertd pprof listening on %s", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("planarcertd: pprof: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// No WriteTimeout: watch streams are long-lived by design.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before recovering so /healthz and /readyz are reachable
	// during a long replay (session endpoints answer 503 until ready).
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("planarcertd listening on %s (budget=%d slots, max %d sessions)",
		*addr, *budget, *maxSessions)

	recovered := make(chan error, 1)
	go func() { recovered <- srv.Recover() }()
	select {
	case err := <-recovered:
		if err != nil {
			log.Fatalf("planarcertd: recover: %v", err)
		}
		if *dataDir != "" {
			log.Printf("planarcertd recovered %d sessions from %s", srv.SessionCount(), *dataDir)
		}
	case <-ctx.Done():
		log.Printf("planarcertd interrupted during recovery")
		os.Exit(1)
	case err := <-errCh:
		log.Fatalf("planarcertd: %v", err)
	}

	select {
	case <-ctx.Done():
		log.Printf("planarcertd shutting down")
	case err := <-errCh:
		log.Fatalf("planarcertd: %v", err)
	}

	// Ordered drain: Close first rejects new batches and session
	// creations, lets in-flight applies finish, absorbs queued updates
	// as final logged batches, writes final snapshots, and closes every
	// WAL; it also terminates watch streams so Shutdown can drain the
	// HTTP connections afterwards.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Close()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("planarcertd: shutdown: %v", err)
	}
}

// tokenList collects repeated -auth-token flags.
type tokenList []string

func (t *tokenList) String() string { return strings.Join(*t, ",") }

func (t *tokenList) Set(v string) error {
	if v == "" {
		return errors.New("empty token")
	}
	*t = append(*t, v)
	return nil
}

// parseQoSWeights parses "class=weight" pairs ("interactive=16,batch=4")
// into a weight map; classes left out keep their defaults.
func parseQoSWeights(s string) (map[planarcert.QoSClass]int, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[planarcert.QoSClass]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("-qos-weights: %q is not class=weight", pair)
		}
		class, err := planarcert.ParseQoSClass(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("-qos-weights: %v", err)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-qos-weights: weight for %s must be a positive integer, got %q", class, val)
		}
		out[class] = w
	}
	return out, nil
}
