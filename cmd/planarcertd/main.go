// Command planarcertd serves compact planarity certification over
// HTTP/JSON: named incremental sessions (create, stream updates, watch
// absorption reports, delete) plus stateless one-shot certify/verify,
// health and Prometheus metrics.
//
// Usage:
//
//	planarcertd -addr :7420 -budget 8 -max-sessions 1024
//	planarcertd -addr :7420 -data-dir /var/lib/planarcert -fsync always
//
// Quick round trip:
//
//	curl -s localhost:7420/healthz
//	curl -s -X POST localhost:7420/v1/sessions \
//	     -d '{"name":"s1","scheme":"planarity","graph":{"edges":[[0,1],[1,2],[2,0]]}}'
//	curl -s -X POST 'localhost:7420/v1/sessions/s1/updates' \
//	     -d '{"op":"add_node","a":3}
//	{"op":"add_edge","a":2,"b":3}'
//	curl -s localhost:7420/v1/sessions/s1/watch   # streams NDJSON reports
//	curl -s -X DELETE localhost:7420/v1/sessions/s1
//
// All sessions share one bounded verification worker budget (-budget),
// so heavy traffic degrades gracefully toward per-session sequential
// verification instead of oversubscribing the machine.
//
// With -data-dir set the daemon is durable: every applied batch is
// written to a per-session write-ahead log before it is acked, sessions
// snapshot their certificates every -snapshot-every batches (keyed by
// the topology fingerprint), and on boot each session is restored from
// its newest valid snapshot plus the WAL tail and re-validated by the
// proof-labeling scheme's own verification sweep. /readyz answers 503
// until that replay completes; on SIGTERM/SIGINT the daemon stops
// accepting batches, drains in-flight applies, flushes the WAL, and
// writes final snapshots before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/server"
	"github.com/planarcert/planarcert/internal/wal"
)

func main() {
	addr := flag.String("addr", ":7420", "listen address")
	budget := flag.Int("budget", 0, "shared verification worker slots across all sessions (0 = GOMAXPROCS)")
	maxSessions := flag.Int("max-sessions", 1024, "maximum number of live sessions")
	watchBuffer := flag.Int("watch-buffer", 16, "per-watcher report buffer before drops")
	workers := flag.Int("workers", 0, "per-verification worker bound (0 = GOMAXPROCS)")
	shard := flag.Int("shard", 0, "nodes a worker claims per handoff (0 = engine default)")
	seq := flag.Bool("seq", false, "force single-goroutine verification per session")
	dataDir := flag.String("data-dir", "", "data directory for WALs and snapshots (empty = no persistence)")
	fsyncFlag := flag.String("fsync", "always", "WAL fsync policy: always (acked batches survive power loss) or never (survive crashes only)")
	snapshotEvery := flag.Int("snapshot-every", 32, "logged batches between automatic per-session snapshots")
	flag.Parse()

	policy, err := wal.ParseSyncPolicy(*fsyncFlag)
	if err != nil {
		log.Fatalf("planarcertd: %v", err)
	}

	srv := server.New(server.Config{
		MaxSessions:   *maxSessions,
		BudgetSlots:   *budget,
		WatchBuffer:   *watchBuffer,
		DataDir:       *dataDir,
		Fsync:         policy,
		SnapshotEvery: *snapshotEvery,
		Engine: planarcert.EngineConfig{
			Sequential: *seq,
			Workers:    *workers,
			ShardSize:  *shard,
		},
	})

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// No WriteTimeout: watch streams are long-lived by design.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Listen before recovering so /healthz and /readyz are reachable
	// during a long replay (session endpoints answer 503 until ready).
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("planarcertd listening on %s (budget=%d slots, max %d sessions)",
		*addr, *budget, *maxSessions)

	recovered := make(chan error, 1)
	go func() { recovered <- srv.Recover() }()
	select {
	case err := <-recovered:
		if err != nil {
			log.Fatalf("planarcertd: recover: %v", err)
		}
		if *dataDir != "" {
			log.Printf("planarcertd recovered %d sessions from %s", srv.SessionCount(), *dataDir)
		}
	case <-ctx.Done():
		log.Printf("planarcertd interrupted during recovery")
		os.Exit(1)
	case err := <-errCh:
		log.Fatalf("planarcertd: %v", err)
	}

	select {
	case <-ctx.Done():
		log.Printf("planarcertd shutting down")
	case err := <-errCh:
		log.Fatalf("planarcertd: %v", err)
	}

	// Ordered drain: Close first rejects new batches and session
	// creations, lets in-flight applies finish, absorbs queued updates
	// as final logged batches, writes final snapshots, and closes every
	// WAL; it also terminates watch streams so Shutdown can drain the
	// HTTP connections afterwards.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Close()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("planarcertd: shutdown: %v", err)
	}
}
