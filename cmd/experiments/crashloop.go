package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"github.com/planarcert/planarcert/internal/server"
	"github.com/planarcert/planarcert/internal/wal"
)

// crashLoop is the durability fault-injection harness: it re-execs this
// binary as a planarcertd-equivalent child (same internal/server wiring,
// -data-dir persistence), streams update batches at it while a timer
// SIGKILLs the child mid-batch, then restarts it and asserts the
// recovered topology equals the client-side mirror of every acked batch
// — optionally plus the single batch that was in flight at the kill
// (logged but unacked), never less. Batches are sent serially so at
// most one batch is ever unaccounted for.
func crashLoop(args []string) error {
	fs := flag.NewFlagSet("crashloop", flag.ExitOnError)
	iterations := fs.Int("iterations", 20, "kill/restart cycles")
	batches := fs.Int("batches", 512, "cap on update batches per cycle (batches stream until the kill lands)")
	ops := fs.Int("ops", 4, "updates per batch")
	nodes := fs.Int("n", 48, "initial nodes in the session's path network")
	seed := fs.Int64("seed", 2020, "random seed")
	fsyncFlag := fs.String("fsync", "never", "WAL fsync policy for the child (crash survival needs no fsync; power loss does)")
	snapEvery := fs.Int("snapshot-every", 4, "child snapshot threshold, small to exercise snapshot+tail recovery")
	dataDir := fs.String("data-dir", "", "data directory (empty = fresh temp dir)")
	serve := fs.String("serve", "", "internal: run as the killable daemon child on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := wal.ParseSyncPolicy(*fsyncFlag)
	if err != nil {
		return err
	}
	if *serve != "" {
		return crashChild(*serve, *dataDir, policy, *snapEvery)
	}

	dir := *dataDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "planarcert-crashloop-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	// Reserve an address once and reuse it across restarts so the
	// client base URL is stable (Go listeners set SO_REUSEADDR).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close()

	h := &crashHarness{
		base:   "http://" + addr,
		client: &http.Client{Timeout: 10 * time.Second},
		rng:    rand.New(rand.NewSource(*seed)),
		nodes:  map[int64]bool{},
		edges:  map[[2]int64]bool{},
	}
	startChild := func() (*exec.Cmd, error) {
		cmd := exec.Command(os.Args[0], "crashloop",
			"-serve", addr, "-data-dir", dir,
			"-fsync", *fsyncFlag, "-snapshot-every", fmt.Sprint(*snapEvery))
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		if err := h.awaitReady(30 * time.Second); err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, err
		}
		return cmd, nil
	}

	fmt.Printf("== crashloop: %d SIGKILL cycles x %d batches x %d ops (n=%d, fsync=%s, dir=%s) ==\n",
		*iterations, *batches, *ops, *nodes, *fsyncFlag, dir)

	acked, inflightLanded := 0, 0
	for iter := 0; iter < *iterations; iter++ {
		cmd, err := startChild()
		if err != nil {
			return fmt.Errorf("iteration %d: start child: %w", iter, err)
		}
		if iter == 0 {
			if err := h.createSession(*nodes); err != nil {
				cmd.Process.Kill()
				cmd.Wait()
				return fmt.Errorf("create session: %w", err)
			}
		} else {
			verdict, err := h.checkRecovered()
			if err != nil {
				cmd.Process.Kill()
				cmd.Wait()
				return fmt.Errorf("iteration %d: %w", iter, err)
			}
			if verdict == "acked+inflight" {
				inflightLanded++
			}
			fmt.Printf("iter %2d: recovered = %-14s (%d nodes, %d edges, %d acked batches so far)\n",
				iter, verdict, len(h.nodes), len(h.edges), acked)
		}

		// Arm the killer, then stream batches continuously until one
		// fails (child died mid-batch) or the cap is hit.
		delay := time.Duration(1+h.rng.Intn(60)) * time.Millisecond
		timer := time.AfterFunc(delay, func() { cmd.Process.Kill() })
		for b := 0; b < *batches; b++ {
			batch := h.makeBatch(*ops)
			if len(batch) == 0 {
				continue
			}
			ok, err := h.sendBatch(batch)
			if err != nil {
				timer.Stop()
				cmd.Process.Kill()
				cmd.Wait()
				return fmt.Errorf("iteration %d batch %d: %w", iter, b, err)
			}
			if !ok {
				break // killed mid-batch; h.inflight records the orphan
			}
			acked++
		}
		timer.Stop()
		cmd.Process.Kill() // no-op if the timer already fired
		cmd.Wait()
		h.client.CloseIdleConnections()
	}

	// Final restart: every acked batch must have survived the last kill
	// too, and the recovered session must still accept new work.
	cmd, err := startChild()
	if err != nil {
		return fmt.Errorf("final restart: %w", err)
	}
	defer func() { cmd.Process.Kill(); cmd.Wait() }()
	verdict, err := h.checkRecovered()
	if err != nil {
		return fmt.Errorf("final restart: %w", err)
	}
	if verdict == "acked+inflight" {
		inflightLanded++
	}
	if batch := h.makeBatch(*ops); len(batch) > 0 {
		if ok, err := h.sendBatch(batch); err != nil || !ok {
			return fmt.Errorf("post-recovery batch rejected: ok=%v err=%v", ok, err)
		}
		acked++
	}
	fmt.Printf("crashloop: %d kills, %d acked batches, 0 lost (%d in-flight batches landed despite the kill)\n",
		*iterations, acked, inflightLanded)
	return nil
}

// crashChild runs the killable daemon: the same server wiring as
// cmd/planarcertd, minus signal handling — SIGKILL is the point.
func crashChild(addr, dir string, policy wal.SyncPolicy, snapEvery int) error {
	srv := server.New(server.Config{
		DataDir:       dir,
		Fsync:         policy,
		SnapshotEvery: snapEvery,
	})
	if err := srv.Recover(); err != nil {
		return err
	}
	return http.ListenAndServe(addr, srv.Handler())
}

// crashHarness is the parent-side client state: the confirmed mirror of
// every acked update, plus the at-most-one batch whose ack never
// arrived because the child died first.
type crashHarness struct {
	base     string
	client   *http.Client
	rng      *rand.Rand
	nodes    map[int64]bool
	edges    map[[2]int64]bool
	backbone int64 // initial path nodes [0, backbone); chords live here
	nextNode int64
	inflight []crashOp
}

type crashOp struct {
	op   string
	a, b int64
}

func edgeKey(a, b int64) [2]int64 {
	if a > b {
		a, b = b, a
	}
	return [2]int64{a, b}
}

func (h *crashHarness) awaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := h.client.Get(h.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("child not ready within %s", timeout)
}

func (h *crashHarness) createSession(n int) error {
	var spec bytes.Buffer
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&spec, "%d %d\n", i, i+1)
	}
	body, err := json.Marshal(map[string]interface{}{
		"name":   "crash",
		"scheme": "planarity",
		"graph":  map[string]string{"edge_list": spec.String()},
	})
	if err != nil {
		return err
	}
	resp, err := h.client.Post(h.base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("create: status %d: %s", resp.StatusCode, raw)
	}
	for i := 0; i < n; i++ {
		h.nodes[int64(i)] = true
		if i > 0 {
			h.edges[edgeKey(int64(i-1), int64(i))] = true
		}
	}
	h.backbone = int64(n)
	h.nextNode = int64(n)
	return nil
}

// isChord reports whether an edge is a removable backbone chord (never
// a path edge or a pendant node's only attachment).
func (h *crashHarness) isChord(e [2]int64) bool {
	return e[0] < h.backbone && e[1] < h.backbone && e[1] > e[0]+1
}

// makeBatch builds one batch against the confirmed mirror: chord
// adds/removes plus the occasional pendant-node attach, covering every
// WAL op kind. Chords live on the path backbone and are kept pairwise
// non-crossing, so every intermediate state is outerplanar plus pendant
// nodes — always connected, always planar, always certifiable.
func (h *crashHarness) makeBatch(ops int) []crashOp {
	// Working chord set: mirror chords, adjusted by staged ops.
	cur := map[[2]int64]bool{}
	for e := range h.edges {
		if h.isChord(e) {
			cur[e] = true
		}
	}
	crosses := func(a, b int64) bool {
		for e := range cur {
			c, d := e[0], e[1]
			if (a < c && c < b && b < d) || (c < a && a < d && d < b) {
				return true
			}
		}
		return false
	}
	var batch []crashOp
	stagedNodes := int64(0)
	for tries := 0; len(batch) < ops && tries < 20*ops; tries++ {
		switch h.rng.Intn(5) {
		case 0: // attach a brand-new pendant node to the backbone
			id := h.nextNode + stagedNodes
			stagedNodes++
			anchor := int64(h.rng.Intn(int(h.backbone)))
			batch = append(batch,
				crashOp{op: "add_node", a: id},
				crashOp{op: "add_edge", a: anchor, b: id})
		case 1: // remove an existing chord
			if len(cur) == 0 {
				continue
			}
			var keys [][2]int64
			for e := range cur {
				keys = append(keys, e)
			}
			sort.Slice(keys, func(i, j int) bool {
				return keys[i][0] < keys[j][0] ||
					(keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
			})
			e := keys[h.rng.Intn(len(keys))]
			delete(cur, e)
			batch = append(batch, crashOp{op: "remove_edge", a: e[0], b: e[1]})
		default: // add a non-crossing chord across the backbone
			a := int64(h.rng.Intn(int(h.backbone) - 2))
			b := a + 2 + int64(h.rng.Intn(int(h.backbone)-int(a)-2))
			if cur[[2]int64{a, b}] || h.edges[edgeKey(a, b)] || crosses(a, b) {
				continue
			}
			cur[[2]int64{a, b}] = true
			batch = append(batch, crashOp{op: "add_edge", a: a, b: b})
		}
	}
	return batch
}

// applyToMirror folds an acked (or recovered) batch into the confirmed
// mirror.
func (h *crashHarness) applyToMirror(batch []crashOp) {
	for _, op := range batch {
		switch op.op {
		case "add_node":
			h.nodes[op.a] = true
			if op.a >= h.nextNode {
				h.nextNode = op.a + 1
			}
		case "add_edge":
			h.edges[edgeKey(op.a, op.b)] = true
		case "remove_edge":
			delete(h.edges, edgeKey(op.a, op.b))
		}
	}
}

// sendBatch posts one apply-mode batch. ok=false means the child died
// before the ack; the batch stays in h.inflight for the next restart to
// account for.
func (h *crashHarness) sendBatch(batch []crashOp) (ok bool, err error) {
	var lines strings.Builder
	for _, op := range batch {
		if op.op == "add_node" {
			fmt.Fprintf(&lines, "{\"op\":%q,\"a\":%d}\n", op.op, op.a)
		} else {
			fmt.Fprintf(&lines, "{\"op\":%q,\"a\":%d,\"b\":%d}\n", op.op, op.a, op.b)
		}
	}
	h.inflight = batch
	resp, err := h.client.Post(h.base+"/v1/sessions/crash/updates", "application/x-ndjson", strings.NewReader(lines.String()))
	if err != nil {
		return false, nil // killed mid-batch: no ack, batch stays in flight
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("batch not acked: status %d: %s", resp.StatusCode, raw)
	}
	h.applyToMirror(batch)
	h.inflight = nil
	return true, nil
}

// checkRecovered compares the restored session against the mirror:
// the recovered topology must match either every acked batch, or every
// acked batch plus the single in-flight one (logged before the ack
// could be sent). Anything else means an acked batch was lost. It also
// asserts the restored certificates passed a verification sweep.
func (h *crashHarness) checkRecovered() (verdict string, err error) {
	resp, err := h.client.Get(h.base + "/v1/sessions/crash/graph")
	if err != nil {
		return "", err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("graph: status %d: %s", resp.StatusCode, raw)
	}
	var g struct {
		Nodes []int64    `json:"nodes"`
		Edges [][2]int64 `json:"edges"`
	}
	if err := json.Unmarshal(raw, &g); err != nil {
		return "", err
	}
	got := struct {
		nodes map[int64]bool
		edges map[[2]int64]bool
	}{map[int64]bool{}, map[[2]int64]bool{}}
	for _, id := range g.Nodes {
		got.nodes[id] = true
	}
	for _, e := range g.Edges {
		got.edges[edgeKey(e[0], e[1])] = true
	}
	same := func(an map[int64]bool, ae map[[2]int64]bool) bool {
		if len(an) != len(got.nodes) || len(ae) != len(got.edges) {
			return false
		}
		for id := range an {
			if !got.nodes[id] {
				return false
			}
		}
		for e := range ae {
			if !got.edges[e] {
				return false
			}
		}
		return true
	}

	switch {
	case same(h.nodes, h.edges):
		verdict = "acked"
	case len(h.inflight) > 0:
		// Try mirror + in-flight batch: the kill landed after the WAL
		// append but before the HTTP ack.
		saveN, saveE := h.nodes, h.edges
		h.nodes, h.edges = cloneNodes(saveN), cloneEdges(saveE)
		h.applyToMirror(h.inflight)
		if same(h.nodes, h.edges) {
			verdict = "acked+inflight" // keep the folded mirror: it is durable now
		} else {
			h.nodes, h.edges = saveN, saveE
			return "", fmt.Errorf("recovered graph (%d nodes, %d edges) matches neither the %d acked batches nor acked+inflight",
				len(got.nodes), len(got.edges), len(h.edges))
		}
	default:
		return "", fmt.Errorf("acked batch lost: recovered graph has %d nodes / %d edges, mirror has %d / %d",
			len(got.nodes), len(got.edges), len(h.nodes), len(h.edges))
	}
	h.inflight = nil

	// The restored certificates must have been re-validated: the status
	// endpoint reports Certified only when the sweep accepted.
	resp, err = h.client.Get(h.base + "/v1/sessions/crash")
	if err != nil {
		return "", err
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status: %d: %s", resp.StatusCode, raw)
	}
	var st struct {
		Certified bool `json:"certified"`
		Durable   bool `json:"durable"`
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return "", err
	}
	if !st.Certified || !st.Durable {
		return "", fmt.Errorf("restored session not certified/durable: %s", raw)
	}
	return verdict, nil
}

func cloneNodes(m map[int64]bool) map[int64]bool {
	out := make(map[int64]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneEdges(m map[[2]int64]bool) map[[2]int64]bool {
	out := make(map[[2]int64]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
