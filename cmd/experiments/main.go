// Command experiments regenerates every experiment table E1-E10 of
// EXPERIMENTS.md (the executable form of the paper's theorems and
// figures — the paper itself has no empirical section, so each claim is
// mapped to a measurement; see DESIGN.md section 4).
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run E3         # run one experiment
//	experiments serverload      # planarcertd load generator (BENCH_server.json)
//	experiments wirebench       # binary-vs-JSON wire smoke + firehose comparison
//	experiments crashloop       # SIGKILL fault injection against the durable daemon
//	experiments recoverybench   # boot replay vs cold re-prove (BENCH_recovery.json)
//	experiments tracebench      # tracing overhead + latency-tail attribution (BENCH_obs.json)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/lowerbound"
	"github.com/planarcert/planarcert/internal/minor"
	"github.com/planarcert/planarcert/internal/pls"
)

func main() {
	if len(os.Args) > 1 {
		sub := map[string]func([]string) error{
			"serverload":    serverLoad,
			"wirebench":     wireBench,
			"crashloop":     crashLoop,
			"recoverybench": recoveryBench,
			"tracebench":    traceBench,
		}
		if fn, ok := sub[os.Args[1]]; ok {
			if err := fn(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, os.Args[1]+":", err)
				os.Exit(1)
			}
			return
		}
	}
	run := flag.String("run", "", "experiment to run (E1..E10); empty = all")
	seed := flag.Int64("seed", 2020, "random seed")
	flag.Parse()

	experiments := []struct {
		id   string
		desc string
		fn   func(rng *rand.Rand)
	}{
		{"E1", "certificate size vs n (Theorem 1: O(log n) bits)", e1},
		{"E2", "PLS vs dMAM interactive baseline (Section 1 headline)", e2},
		{"E3", "paths/cycles of blocks + pigeonhole attack (Lemma 5)", e3},
		{"E4", "glued bipartite instances (Lemma 6, Figures 9-10)", e4},
		{"E5", "transformation audit (Lemmas 3-4, Figures 5-6)", e5},
		{"E6", "soundness battery on non-planar inputs (Theorem 1)", e6},
		{"E7", "prover/verifier performance and message sizes", e7},
		{"E8", "non-planarity PLS (Section 2 folklore scheme)", e8},
		{"E9", "ablation: 5-degeneracy vs naive certificate placement", e9},
		{"E10", "outerplanarity extension (conclusion)", e10},
	}
	any := false
	for _, e := range experiments {
		if *run != "" && !strings.EqualFold(*run, e.id) {
			continue
		}
		any = true
		fmt.Printf("== %s: %s ==\n", e.id, e.desc)
		e.fn(rand.New(rand.NewSource(*seed)))
		fmt.Println()
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

var planarFamilies = []struct {
	name string
	make func(n int, rng *rand.Rand) *graph.Graph
}{
	{"maximal", func(n int, rng *rand.Rand) *graph.Graph { return gen.StackedTriangulation(n, rng) }},
	{"sparse", func(n int, rng *rand.Rand) *graph.Graph {
		g, err := gen.RandomPlanar(n, 2*n-3, rng)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}},
	{"grid", func(n int, rng *rand.Rand) *graph.Graph {
		side := int(math.Sqrt(float64(n)))
		return gen.Grid(side, (n+side-1)/side)
	}},
	{"tree", func(n int, rng *rand.Rand) *graph.Graph { return gen.RandomTree(n, rng) }},
	{"outerpl", func(n int, rng *rand.Rand) *graph.Graph { return gen.RandomOuterplanar(n, 0.7, rng) }},
}

func e1(rng *rand.Rand) {
	fmt.Printf("%-8s", "n")
	for _, f := range planarFamilies {
		fmt.Printf(" | %-8s", f.name)
	}
	fmt.Printf(" | bits/log2(n) [maximal]\n")
	for _, n := range []int{64, 256, 1024, 4096, 16384} {
		fmt.Printf("%-8d", n)
		var maximalBits int
		for _, f := range planarFamilies {
			g := gen.ScrambleIDs(f.make(n, rng), rng)
			report, err := planarcert.CertifyAndVerify(planarcert.FromGraph(g), planarcert.SchemePlanarity)
			if err != nil {
				log.Fatal(err)
			}
			if !report.Accepted {
				log.Fatalf("E1: %s n=%d rejected", f.name, n)
			}
			fmt.Printf(" | %-8d", report.MaxCertBits)
			if f.name == "maximal" {
				maximalBits = report.MaxCertBits
			}
		}
		fmt.Printf(" | %.1f\n", float64(maximalBits)/math.Log2(float64(n)))
	}
	fmt.Println("(max certificate bits per node; the right column converging shows Θ(log n))")
}

func e2(rng *rand.Rand) {
	fmt.Printf("%-6s | %-22s | %-34s\n", "", "PLS (Theorem 1)", "dMAM (NPY-style baseline)")
	fmt.Printf("%-6s | %-9s %-5s %-6s | %-9s %-5s %-8s %-10s\n",
		"n", "bits", "inter", "rand", "bits", "inter", "rand", "sound.err")
	for _, n := range []int{64, 256, 1024} {
		g := gen.StackedTriangulation(n, rng)
		net := planarcert.FromGraph(g)
		p, err := planarcert.CertifyAndVerify(net, planarcert.SchemePlanarity)
		if err != nil || !p.Accepted {
			log.Fatalf("E2 PLS: %v", err)
		}
		d, err := planarcert.RunPlanarityDMAM(net, rng.Int63())
		if err != nil || !d.Accepted {
			log.Fatalf("E2 dMAM: %v", err)
		}
		fmt.Printf("%-6d | %-9d %-5d %-6d | %-9d %-5d %-8d %-10.2e\n",
			n, p.MaxCertBits, 1, 0, d.MaxCertBits, d.Interactions, d.RandomBits, d.SoundnessErr)
	}
	fmt.Println("(the paper removes 2 interactions and all randomness at the same certificate size)")
}

func e3(rng *rand.Rand) {
	fmt.Println("-- theory: pigeonhole threshold p* where log2(p!) > (k-1)*g*p --")
	fmt.Printf("%-4s", "g")
	for _, k := range []int{4, 5} {
		fmt.Printf(" | k=%d: p* (n* = nodes)", k)
	}
	fmt.Println()
	for _, g := range []int{0, 1, 2, 3} {
		fmt.Printf("%-4d", g)
		for _, k := range []int{4, 5} {
			p := lowerbound.PigeonholeThreshold(k, g)
			fmt.Printf(" | %8d (%8d)", p, lowerbound.InstanceSize(k, p))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("-- constructions: legality / illegality (verified) --")
	inst, err := lowerbound.PathOfBlocks(4, 3, []int{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	m, err := minor.FindComplete(inst.G, 4, 50_000_000)
	legality := "K4-minor-free (exhaustive search)"
	if err != nil {
		legality = "search budget exhausted"
	} else if m != nil {
		legality = "VIOLATION: K4 minor found"
	}
	fmt.Printf("path of blocks   (k=4, p=3, n=%2d): %s\n", inst.G.N(), legality)
	cyc, err := lowerbound.CycleOfBlocks(4, []int{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	ill := "contains K4 minor (explicit model verified)"
	if err := cyc.VerifyIllegal(); err != nil {
		ill = "VIOLATION: " + err.Error()
	}
	fmt.Printf("cycle of blocks  (k=4, 3 blocks, n=%2d): %s\n", cyc.G.N(), ill)

	fmt.Println()
	fmt.Println("-- attack: splice an accepted illegal instance (k=4, p=5) --")
	fmt.Printf("%-26s | %-9s | %-9s | %s\n", "certificates", "instances", "collision", "spliced cycle illegal?")
	labelers := []struct {
		name string
		l    lowerbound.Labeler
		max  int
	}{
		{"0 bits (empty)", lowerbound.ZeroLabeler, 100},
		{"1-bit truncated tree PLS", lowerbound.TruncateLabeler(treeLabeler, 1), 4000},
		{"2-bit truncated tree PLS", lowerbound.TruncateLabeler(treeLabeler, 2), 20000},
		{"full Θ(log n) tree PLS", treeLabeler, 2000},
	}
	for _, lb := range labelers {
		res, err := lowerbound.FindSplice(4, 5, lb.l, lb.max, rng)
		if err != nil {
			log.Fatal(err)
		}
		if res == nil {
			fmt.Printf("%-26s | %-9d | %-9s | %s\n", lb.name, lb.max, "none", "-")
			continue
		}
		verdict := "yes (K4 model verified)"
		if err := res.Cycle.VerifyIllegal(); err != nil {
			verdict = "NO: " + err.Error()
		}
		fmt.Printf("%-26s | %-9d | %-9s | %s\n", lb.name, res.Instances, "found", verdict)
	}
	fmt.Println("(o(log n)-bit labelings collide and the splice wins; full-size ones resist)")
}

func treeLabeler(inst *lowerbound.BlockInstance) (map[graph.ID]bits.Certificate, error) {
	return pls.SpanningTreeScheme{}.Prove(inst.G)
}

func e4(rng *rand.Rand) {
	fmt.Printf("%-4s %-6s | %-12s | %-24s | %-24s\n", "q", "n", "glued |V|", "legality (I_{a,b})", "illegality (J)")
	for _, q := range []int{2, 3, 4} {
		n := 6 * q
		d := n / (2 * q)
		as, bs := lowerbound.SplitIDs(q, n)
		legal, err := lowerbound.NewLegalInstance(as[0], bs[0], q, d)
		if err != nil {
			log.Fatal(err)
		}
		legality := "outerplanar ✓"
		if !planarcert.FromGraph(legal.G).IsOuterplanar() {
			legality = "VIOLATION: not outerplanar"
		}
		j, err := lowerbound.NewGluedInstance(as, bs, q, d)
		if err != nil {
			log.Fatal(err)
		}
		ill := fmt.Sprintf("K%d,%d minor ✓", q, q)
		if err := j.VerifyIllegal(); err != nil {
			ill = "VIOLATION: " + err.Error()
		}
		fmt.Printf("%-4d %-6d | %-12d | %-24s | %-24s\n", q, n, j.G.N(), legality, ill)
	}
	fmt.Println()
	fmt.Println("-- indistinguishability (the gluing step of Lemma 6) --")
	for _, q := range []int{2, 3} {
		n := 6 * q
		as, bs := lowerbound.SplitIDs(q, n)
		j, err := lowerbound.NewGluedInstance(as, bs, q, n/(2*q))
		if err != nil {
			log.Fatal(err)
		}
		status := "every node's view appears in some legal instance ✓"
		if err := j.LocalViewsMatchLegal(); err != nil {
			status = "VIOLATION: " + err.Error()
		}
		fmt.Printf("q=%d: %s\n", q, status)
	}
	_ = rng
}

func e5(rng *rand.Rand) {
	fmt.Printf("%-10s | %-8s | %-10s | %-12s | %-12s\n",
		"family", "n", "|V(GTf)|", "witness ok", "round trip")
	trials := 0
	for _, f := range planarFamilies {
		for _, n := range []int{50, 500} {
			g := f.make(n, rng)
			tr, err := planarcertTransform(g)
			if err != nil {
				log.Fatalf("E5 %s n=%d: %v", f.name, n, err)
			}
			trials++
			fmt.Printf("%-10s | %-8d | %-10d | %-12s | %-12s\n",
				f.name, g.N(), tr.n2, tr.witness, tr.roundTrip)
		}
	}
	fmt.Printf("(%d transforms; |V| = 2n-1 always; identity order is a PO witness — Lemma 3;\n", trials)
	fmt.Println(" contracting the path edges returns G exactly — Lemma 4)")
}

type transformSummary struct {
	n2        int
	witness   string
	roundTrip string
}

func planarcertTransform(g *graph.Graph) (*transformSummary, error) {
	tr, err := core.TransformOf(g)
	if err != nil {
		return nil, err
	}
	out := &transformSummary{n2: tr.N2, witness: "valid ✓", roundTrip: "exact ✓"}
	if tr.N2 != 2*g.N()-1 {
		out.witness = "SIZE MISMATCH"
	}
	if _, err := tr.ContractBack(); err != nil {
		out.roundTrip = "FAILED: " + err.Error()
	}
	return out, nil
}

func e6(rng *rand.Rand) {
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"K5", gen.Complete(5)},
		{"K6", gen.Complete(6)},
		{"K3,3", gen.CompleteBipartite(3, 3)},
		{"K4,4", gen.CompleteBipartite(4, 4)},
		{"planted-K5", mustPlant(60, true, rng)},
		{"planted-K33", mustPlant(60, false, rng)},
	}
	fmt.Printf("%-12s | %-8s | %-14s | %-14s | %-12s\n",
		"instance", "n", "replay attack", "random certs", "min rejecting")
	for _, inst := range instances {
		net := planarcert.FromGraph(inst.g)
		replay := attackReplay(net, rng)
		random := attackRandom(net, rng, 100)
		fmt.Printf("%-12s | %-8d | %-14s | %-14s | %-12d\n",
			inst.name, inst.g.N(), replay.verdict, random.verdict, min(replay.minReject, random.minReject))
	}
	fmt.Println("(all attacks rejected; 'min rejecting' = fewest rejecting nodes over all attempts —")
	fmt.Println(" soundness needs only one)")
}

func e7(rng *rand.Rand) {
	fmt.Printf("%-8s | %-12s | %-14s | %-12s | %-10s\n",
		"n", "prove (ms)", "verify/node μs", "max msg bits", "rounds")
	for _, n := range []int{256, 1024, 4096, 16384} {
		g := gen.StackedTriangulation(n, rng)
		net := planarcert.FromGraph(g)
		t0 := time.Now()
		certs, err := planarcert.Certify(net, planarcert.SchemePlanarity)
		if err != nil {
			log.Fatal(err)
		}
		prove := time.Since(t0)
		t1 := time.Now()
		report, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
		if err != nil || !report.Accepted {
			log.Fatalf("E7: %v", err)
		}
		verify := time.Since(t1)
		fmt.Printf("%-8d | %-12.1f | %-14.1f | %-12d | %-10d\n",
			n, float64(prove.Microseconds())/1000,
			float64(verify.Microseconds())/float64(n),
			report.MaxMsgBits, 1)
	}
	fmt.Println()
	fmt.Println("-- self-certification (the paper's 'no external prover needed' remark) --")
	fmt.Printf("%-8s | %-8s | %-10s | %-14s\n", "n", "rounds", "messages", "total Mbit")
	for _, n := range []int{64, 256, 1024} {
		g := gen.StackedTriangulation(n, rng)
		net := planarcert.FromGraph(g)
		certs, rep, err := planarcert.SelfCertify(net, planarcert.SchemePlanarity)
		if err != nil {
			log.Fatal(err)
		}
		out, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
		if err != nil || !out.Accepted {
			log.Fatalf("self-certified certificates rejected: %v", err)
		}
		fmt.Printf("%-8d | %-8d | %-10d | %-14.2f\n",
			n, rep.Rounds, rep.Messages, float64(rep.TotalBits)/1e6)
	}
}

func e8(rng *rand.Rand) {
	fmt.Printf("%-14s | %-8s | %-10s | %-10s | %-8s\n", "instance", "n", "witness", "accepted", "max bits")
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"K5", gen.Complete(5)},
		{"K3,3", gen.CompleteBipartite(3, 3)},
		{"subdiv-K5", gen.KuratowskiSubdivision(true, 5, rng)},
		{"planted-200", mustPlant(200, false, rng)},
	}
	for _, inst := range instances {
		net := planarcert.FromGraph(inst.g)
		w, err := net.Kuratowski()
		if err != nil {
			log.Fatal(err)
		}
		report, err := planarcert.CertifyAndVerify(net, planarcert.SchemeNonPlanarity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s | %-8d | %-10s | %-10v | %-8d\n",
			inst.name, inst.g.N(), w.Kind, report.Accepted, report.MaxCertBits)
	}
}

func e9(rng *rand.Rand) {
	fmt.Printf("%-8s | %-18s | %-22s\n", "n", "degeneracy (paper)", "naive (all at star hub)")
	for _, n := range []int{64, 512, 4096} {
		// A star-heavy planar graph maximises the gap: wheel graphs have a
		// hub of degree n-1. Give the hub the smallest identifier so the
		// naive smaller-ID placement piles every spoke certificate on it.
		w := gen.Wheel(n)
		ids := make([]graph.ID, n)
		for i := 0; i < n-1; i++ {
			ids[i] = graph.ID(i + 1)
		}
		ids[n-1] = 0
		g, err := w.RelabelIDs(ids)
		if err != nil {
			log.Fatal(err)
		}
		report, err := planarcert.CertifyAndVerify(planarcert.FromGraph(g), planarcert.SchemePlanarity)
		if err != nil || !report.Accepted {
			log.Fatalf("E9: %v", err)
		}
		// Naive placement: every edge certificate at the lower-ID endpoint;
		// the hub would store Θ(n) certificates of Θ(log n) bits each.
		naiveBits := naiveAssignmentBits(g)
		fmt.Printf("%-8d | %-18d | %-22d\n", n, report.MaxCertBits, naiveBits)
	}
	fmt.Println("(naive = store c(e) at the smaller endpoint ID — here the degree-(n-1) hub; the 5-degeneracy rule of")
	fmt.Println(" Section 3.3 keeps the maximum certificate logarithmic — the ablation shows Θ(n log n))")
	_ = rng
}

func e10(rng *rand.Rand) {
	fmt.Printf("%-10s | %-8s | %-10s | %-10s\n", "family", "n", "accepted", "max bits")
	for _, n := range []int{16, 64, 256, 1024} {
		g := gen.RandomOuterplanar(n, 0.7, rng)
		report, err := planarcert.CertifyAndVerify(planarcert.FromGraph(g), planarcert.SchemeOuterplanarity)
		if err != nil || !report.Accepted {
			log.Fatalf("E10: %v", err)
		}
		fmt.Printf("%-10s | %-8d | %-10v | %-10d\n", "outerpl", n, report.Accepted, report.MaxCertBits)
	}
	// Soundness shape: planar-not-outerplanar inputs with honest planarity
	// certificates are rejected.
	for _, probe := range []struct {
		name string
		g    *graph.Graph
	}{{"wheel-64", gen.Wheel(64)}, {"grid-8x8", gen.Grid(8, 8)}} {
		net := planarcert.FromGraph(probe.g)
		certs, err := planarcert.Certify(net, planarcert.SchemePlanarity)
		if err != nil {
			log.Fatal(err)
		}
		report, err := planarcert.Verify(net, planarcert.SchemeOuterplanarity, certs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s | %-8d | %-10v | (planarity certs on non-outerplanar input)\n",
			probe.name, probe.g.N(), report.Accepted)
	}
	fmt.Println("(Forb({K4,K2,3}) lower-bound instances are exercised in E4 with q=2... see EXPERIMENTS.md)")
}

func mustPlant(n int, k5 bool, rng *rand.Rand) *graph.Graph {
	g, err := gen.PlantSubdivision(n, k5, rng)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

type attackResult struct {
	verdict   string
	minReject int
}

func attackReplay(net *planarcert.Network, rng *rand.Rand) attackResult {
	// Delete edges until planar, certify, replay on the full graph.
	sub := net.Clone()
	for _, id := range sub.IDs() {
		for _, nb := range sub.Neighbors(id) {
			if sub.IsPlanar() {
				break
			}
			sub.RemoveEdge(id, nb)
			if !sub.Connected() {
				if err := sub.AddEdge(id, nb); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if !sub.IsPlanar() {
		return attackResult{verdict: "n/a", minReject: net.N()}
	}
	certs, err := planarcert.Certify(sub, planarcert.SchemePlanarity)
	if err != nil {
		return attackResult{verdict: "n/a", minReject: net.N()}
	}
	report, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
	if err != nil {
		log.Fatal(err)
	}
	if report.Accepted {
		return attackResult{verdict: "ACCEPTED!", minReject: 0}
	}
	return attackResult{verdict: "rejected", minReject: len(report.Rejecting)}
}

func attackRandom(net *planarcert.Network, rng *rand.Rand, trials int) attackResult {
	minReject := net.N()
	for i := 0; i < trials; i++ {
		certs := planarcert.Certificates{}
		for _, id := range net.IDs() {
			nbits := rng.Intn(300)
			data := make([]byte, (nbits+7)/8)
			rng.Read(data)
			certs[id] = planarcert.Certificate{Data: data, Bits: nbits}
		}
		report, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
		if err != nil {
			log.Fatal(err)
		}
		if report.Accepted {
			return attackResult{verdict: "ACCEPTED!", minReject: 0}
		}
		if len(report.Rejecting) < minReject {
			minReject = len(report.Rejecting)
		}
	}
	return attackResult{verdict: "rejected", minReject: minReject}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// naiveAssignmentBits simulates the ablated prover: every edge certificate
// is stored at its lower-ID endpoint, so a hub of degree d carries d edge
// certificates. We approximate each edge certificate at its true encoded
// size from the real scheme (ids + 12 rank fields).
func naiveAssignmentBits(g *graph.Graph) int {
	certs, err := (pls.SpanningTreeScheme{}).Prove(g)
	if err != nil {
		log.Fatal(err)
	}
	base := 0
	for _, c := range certs {
		if c.Bits > base {
			base = c.Bits
		}
	}
	// Edge certificate cost (tree edge, dominated by 12 fixed-width rank
	// fields + two identifiers) at this n.
	n := uint64(g.N())
	rankBits := 0
	for v := 2 * n; v > 0; v >>= 1 {
		rankBits++
	}
	perEdge := 1 + 2*(6+rankBits) + 12*rankBits
	maxStored := 0
	for v := 0; v < g.N(); v++ {
		stored := 0
		for _, w := range g.Neighbors(v) {
			if g.IDOf(v) < g.IDOf(w) {
				stored++
			}
		}
		if stored > maxStored {
			maxStored = stored
		}
	}
	return base + maxStored*perEdge
}
