package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/server"
)

// fireStats is what one wire firehose run measured.
type fireStats struct {
	wall    time.Duration
	batches int64
	updates int64
}

func (s *fireStats) updatesPerSecond() float64 {
	if s.wall <= 0 {
		return 0
	}
	return float64(s.updates) / s.wall.Seconds()
}

func (s *fireStats) nsPerUpdate() int64 { return s.wall.Nanoseconds() / max(s.updates, 1) }

// wireComparison pairs the two firehose runs driven with identical
// workloads over the NDJSON and binary wires.
type wireComparison struct {
	sessions, batches, ops int
	json, binary           *fireStats
}

func (c *wireComparison) speedup() float64 {
	j := c.json.updatesPerSecond()
	if j == 0 {
		return 0
	}
	return c.binary.updatesPerSecond() / j
}

// wireSection is the snapshot form of the comparison (BENCH_server.json).
type wireSection struct {
	Sessions        int     `json:"sessions"`
	BatchesPerSess  int     `json:"batches_per_session"`
	OpsPerBatch     int     `json:"ops_per_batch"`
	JSONUpdatesPS   float64 `json:"json_updates_per_second"`
	BinaryUpdatesPS float64 `json:"binary_updates_per_second"`
	BinarySpeedup   float64 `json:"binary_speedup"`
}

func (c *wireComparison) section() *wireSection {
	return &wireSection{
		Sessions:        c.sessions,
		BatchesPerSess:  c.batches,
		OpsPerBatch:     c.ops,
		JSONUpdatesPS:   c.json.updatesPerSecond(),
		BinaryUpdatesPS: c.binary.updatesPerSecond(),
		BinarySpeedup:   c.speedup(),
	}
}

func printWireComparison(c *wireComparison) {
	fmt.Printf("== wire firehose: %d sessions x %d queue batches x %d ops ==\n", c.sessions, c.batches, c.ops)
	fmt.Printf("json:   %d updates in %.2fs (%.0f/s)\n", c.json.updates, c.json.wall.Seconds(), c.json.updatesPerSecond())
	fmt.Printf("binary: %d updates in %.2fs (%.0f/s, %.1fx json)\n",
		c.binary.updates, c.binary.wall.Seconds(), c.binary.updatesPerSecond(), c.speedup())
}

// compareWires runs the same firehose workload once per wire. The JSON
// run goes first so warm-up noise (page cache, connection pool sizing)
// penalizes the wire expected to win, not the baseline.
func compareWires(sessions, batches, ops int, seed int64) (*wireComparison, error) {
	ops &^= 1 // the toggle workload needs add/remove pairs
	if ops < 2 {
		ops = 2
	}
	_ = seed // the firehose workload is deterministic; kept for flag symmetry
	fj, err := runFirehose("json", sessions, batches, ops)
	if err != nil {
		return nil, fmt.Errorf("json firehose: %w", err)
	}
	fb, err := runFirehose("binary", sessions, batches, ops)
	if err != nil {
		return nil, fmt.Errorf("binary firehose: %w", err)
	}
	return &wireComparison{sessions: sessions, batches: batches, ops: ops, json: fj, binary: fb}, nil
}

// runFirehose measures transport-bound fleet throughput on one wire:
// sessions concurrent clients stream queue-mode batches, which only
// append to the session log (no proving), so the per-update cost is the
// client encode, the HTTP hop, the server decode, and the ack in the
// requested encoding. Each batch alternates add/remove of the same
// chord, so the queued log stays structurally valid for any later flush.
func runFirehose(wire string, sessions, batches, ops int) (*fireStats, error) {
	const nodes = 64
	srv := server.New(server.Config{MaxSessions: sessions + 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	var spec bytes.Buffer
	for j := 0; j < nodes-1; j++ {
		fmt.Fprintf(&spec, "%d %d\n", j, j+1)
	}
	names := make([]string, sessions)
	for i := range names {
		names[i] = fmt.Sprintf("fire%03d", i)
		body, err := json.Marshal(map[string]interface{}{
			"name": names[i], "scheme": "planarity",
			"graph": map[string]string{"edge_list": spec.String()},
		})
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return nil, fmt.Errorf("create %s: status %d: %s", names[i], resp.StatusCode, raw)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	var updates, batchCount atomic.Int64
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := ts.URL + "/v1/sessions/" + names[i] + "/updates"
			ups := make([]planarcert.Update, ops)
			for bi := 0; bi < batches; bi++ {
				for oi := range ups {
					a := planarcert.NodeID((oi / 2) % (nodes - 3))
					b := a + 2
					if oi%2 == 0 {
						ups[oi] = planarcert.EdgeAdd(a, b)
					} else {
						ups[oi] = planarcert.EdgeRemove(a, b)
					}
				}
				var resp *http.Response
				var err error
				if wire == "binary" {
					frame, ferr := planarcert.EncodeUpdatesFrame("queue", ups)
					if ferr != nil {
						errCh <- ferr
						return
					}
					resp, err = http.Post(url, planarcert.WireContentType, bytes.NewReader(frame))
				} else {
					var lines bytes.Buffer
					for _, u := range ups {
						op := "add_edge"
						if u.Op == planarcert.OpRemoveEdge {
							op = "remove_edge"
						}
						fmt.Fprintf(&lines, "{\"op\":%q,\"a\":%d,\"b\":%d}\n", op, u.A, u.B)
					}
					resp, err = http.Post(url+"?mode=queue", "application/x-ndjson", &lines)
				}
				if err != nil {
					errCh <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errCh <- fmt.Errorf("%s firehose batch %d: status %d: %s", wire, bi, resp.StatusCode, raw)
					return
				}
				// Decode the ack so both wires pay their full response path.
				if wire == "binary" {
					if _, err := planarcert.DecodeBatchAckFrame(raw); err != nil {
						errCh <- fmt.Errorf("%s firehose batch %d: %w", wire, bi, err)
						return
					}
				} else {
					var ack struct {
						Queued int `json:"queued"`
					}
					if err := json.Unmarshal(raw, &ack); err != nil {
						errCh <- fmt.Errorf("%s firehose batch %d: %w", wire, bi, err)
						return
					}
				}
				updates.Add(int64(ops))
				batchCount.Add(1)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return nil, err
	}
	return &fireStats{wall: wall, batches: batchCount.Load(), updates: updates.Load()}, nil
}

// wireBench is the CI smoke for the binary wire protocol: a small
// all-binary classic load (apply acks + version-acknowledged watch
// streams end to end) followed by the firehose comparison, optionally
// enforcing a minimum binary-over-JSON speedup.
func wireBench(args []string) error {
	fs := flag.NewFlagSet("wirebench", flag.ExitOnError)
	sessions := fs.Int("sessions", 4, "concurrent firehose sessions")
	batches := fs.Int("batches", 16, "queue batches per firehose session")
	ops := fs.Int("ops", 256, "updates per firehose batch (rounded down to even)")
	minSpeedup := fs.Float64("min-speedup", 0, "fail unless binary updates/s >= this multiple of the JSON wire (0 = report only)")
	seed := fs.Int64("seed", 2020, "random seed for the classic load smoke")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if _, err := runLoad(loadOptions{
		sessions: 4, batches: 4, ops: 4, nodes: 48, seed: *seed, wire: "binary",
	}, nil); err != nil {
		return fmt.Errorf("binary load smoke: %w", err)
	}
	fmt.Println("binary load smoke: ok (4 sessions x 4 apply batches over frames + binary watch)")

	fire, err := compareWires(*sessions, *batches, *ops, *seed)
	if err != nil {
		return err
	}
	printWireComparison(fire)
	if *minSpeedup > 0 && fire.speedup() < *minSpeedup {
		return fmt.Errorf("binary wire speedup %.2fx below the %.2fx floor", fire.speedup(), *minSpeedup)
	}
	return nil
}
