package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"github.com/planarcert/planarcert/internal/obs"
	"github.com/planarcert/planarcert/internal/server"
)

// wireSpan mirrors the /debug/traces span shape, so the experiment
// consumes the same JSON surface operators see (rather than reaching
// into the tracer in-process).
type wireSpan struct {
	Name          string                 `json:"name"`
	DurationNanos int64                  `json:"duration_nanos"`
	Attrs         map[string]interface{} `json:"attrs"`
	Children      []*wireSpan            `json:"children"`
}

type wireTrace struct {
	Session string    `json:"session"`
	Slow    bool      `json:"slow"`
	Root    *wireSpan `json:"root"`
}

type wireTracesPage struct {
	Enabled bool         `json:"enabled"`
	Traces  []*wireTrace `json:"traces"`
}

// wirePhases decomposes a batch trace into the same service phases as
// obs.Phases, computed from the wire form: sweep time counts as verify
// minus the budget-wait nested inside it, and the root residue no
// phase claims is "other".
func wirePhases(root *wireSpan) map[string]int64 {
	out := map[string]int64{
		obs.PhaseQueueWait:  0,
		obs.PhaseBudgetWait: 0,
		obs.PhaseProve:      0,
		obs.PhaseVerify:     0,
		obs.PhasePersist:    0,
	}
	var walk func(s *wireSpan)
	walk = func(s *wireSpan) {
		for _, c := range s.Children {
			switch c.Name {
			case obs.SpanQueueWait:
				out[obs.PhaseQueueWait] += c.DurationNanos
			case obs.SpanProve:
				out[obs.PhaseProve] += c.DurationNanos
			case obs.SpanPersist:
				out[obs.PhasePersist] += c.DurationNanos
			case obs.SpanSweep:
				var bw int64
				for _, g := range c.Children {
					if g.Name == obs.SpanBudgetWait {
						bw += g.DurationNanos
					}
				}
				out[obs.PhaseBudgetWait] += bw
				out[obs.PhaseVerify] += c.DurationNanos - bw
			case obs.SpanBudgetWait:
				out[obs.PhaseBudgetWait] += c.DurationNanos
			default:
				walk(c)
			}
		}
	}
	walk(root)
	var sum int64
	for _, d := range out {
		sum += d
	}
	if other := root.DurationNanos - sum; other > 0 {
		out[obs.PhaseOther] = other
	} else {
		out[obs.PhaseOther] = 0
	}
	return out
}

// traceBench measures what the tracing layer costs and what it buys:
// the same load runs once with tracing off and once with every batch
// traced, and the retained traces decompose the latency tail into its
// service phases. The snapshot is committed as BENCH_obs.json and
// guarded by TestBenchSnapshotsWellFormed (overhead within 5%, a
// dominant phase explaining at least half of the tail).
func traceBench(args []string) error {
	fs := flag.NewFlagSet("tracebench", flag.ExitOnError)
	sessions := fs.Int("sessions", 32, "concurrent sessions to drive")
	batches := fs.Int("batches", 16, "update batches per session")
	ops := fs.Int("ops", 4, "updates per batch")
	nodes := fs.Int("n", 200, "initial nodes per session network")
	seed := fs.Int64("seed", 2020, "random seed")
	out := fs.String("out", "BENCH_obs.json", "snapshot output path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	shape := loadOptions{sessions: *sessions, batches: *batches, ops: *ops, nodes: *nodes, seed: *seed}

	// Warm-up (discarded): whichever run goes first pays the process's
	// one-time costs, which would otherwise masquerade as overhead of —
	// or a speedup from — tracing.
	warm := shape
	warm.sessions, warm.batches = max(1, *sessions/4), max(1, *batches/4)
	warm.server = server.Config{TraceRing: -1}
	if _, err := runLoad(warm, nil); err != nil {
		return fmt.Errorf("warm-up run: %w", err)
	}

	// Tracing off: the control run.
	offOpts := shape
	offOpts.server = server.Config{TraceRing: -1}
	off, err := runLoad(offOpts, nil)
	if err != nil {
		return fmt.Errorf("tracing-off run: %w", err)
	}

	// Tracing on: every batch traced into a ring large enough that
	// nothing this run produces is evicted, scraped over the same debug
	// surface operators use.
	onOpts := shape
	onOpts.server = server.Config{TraceRing: 2 * *sessions * *batches, TraceSampleEvery: 1}
	var page wireTracesPage
	on, err := runLoad(onOpts, func(base string) error {
		resp, err := http.Get(base + "/debug/traces")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("/debug/traces: status %d", resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(&page)
	})
	if err != nil {
		return fmt.Errorf("tracing-on run: %w", err)
	}
	if !page.Enabled || len(page.Traces) == 0 {
		return fmt.Errorf("tracing-on run retained no traces (enabled=%v)", page.Enabled)
	}

	offNs := off.wall.Nanoseconds() / max(off.batches, 1)
	onNs := on.wall.Nanoseconds() / max(on.batches, 1)
	overheadPct := 100 * (float64(onNs) - float64(offNs)) / float64(offNs)

	// The latency tail: the slowest 5% of retained traces. Summing the
	// phase decomposition over the whole tail (instead of one arbitrary
	// trace) makes the dominant-phase attribution stable across runs.
	traces := page.Traces
	sort.Slice(traces, func(i, j int) bool { return traces[i].Root.DurationNanos > traces[j].Root.DurationNanos })
	tailN := len(traces) / 20
	if tailN < 1 {
		tailN = 1
	}
	tail := traces[:tailN]
	tailPhases := map[string]int64{}
	var tailTotal int64
	for _, tr := range tail {
		for ph, ns := range wirePhases(tr.Root) {
			tailPhases[ph] += ns
		}
		tailTotal += tr.Root.DurationNanos
	}
	dominant, dominantNs := "", int64(-1)
	for ph, ns := range tailPhases {
		if ns > dominantNs {
			dominant, dominantNs = ph, ns
		}
	}
	dominantFrac := float64(dominantNs) / float64(max(tailTotal, 1))

	fmt.Printf("== tracebench: %d sessions x %d batches x %d ops (n=%d) ==\n", *sessions, *batches, *ops, *nodes)
	fmt.Printf("tracing off: %.2fs wall, %d batches, %s/batch, p95=%s\n", off.wall.Seconds(), off.batches, time.Duration(offNs), off.pct(0.95))
	fmt.Printf("tracing on:  %.2fs wall, %d batches, %s/batch, p95=%s\n", on.wall.Seconds(), on.batches, time.Duration(onNs), on.pct(0.95))
	fmt.Printf("overhead:    %+.2f%%\n", overheadPct)
	fmt.Printf("traces:      %d retained, tail = slowest %d\n", len(traces), len(tail))
	phases := make([]string, 0, len(tailPhases))
	for ph := range tailPhases {
		phases = append(phases, ph)
	}
	sort.Slice(phases, func(i, j int) bool { return tailPhases[phases[i]] > tailPhases[phases[j]] })
	for _, ph := range phases {
		fmt.Printf("tail %-12s %6.1f%%  (%s)\n", ph+":", 100*float64(tailPhases[ph])/float64(max(tailTotal, 1)), time.Duration(tailPhases[ph]))
	}
	fmt.Printf("dominant:    %s (%.0f%% of tail)\n", dominant, 100*dominantFrac)

	if *out == "" {
		return nil
	}
	type benchEntry struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
	}
	snap := struct {
		Note        string  `json:"note"`
		Date        string  `json:"date"`
		Sessions    int     `json:"sessions"`
		OverheadPct float64 `json:"overhead_pct"`
		Traces      int     `json:"traces_retained"`
		P95         struct {
			DominantPhase    string           `json:"dominant_phase"`
			DominantFraction float64          `json:"dominant_fraction"`
			Nanos            map[string]int64 `json:"nanos"`
		} `json:"p95_decomposition"`
		Benchmarks []benchEntry `json:"benchmarks"`
	}{
		Note: fmt.Sprintf("tracing overhead and latency-tail attribution: %d concurrent sessions, %d batches each "+
			"of %d updates, initial n=%d, run twice (tracing off/on, every batch traced); the tail decomposition "+
			"sums obs phases over the slowest 5%% of traces scraped from /debug/traces; regenerate with "+
			"`go run ./cmd/experiments tracebench`", *sessions, *batches, *ops, *nodes),
		Date:        time.Now().Format("2006-01-02"),
		Sessions:    *sessions,
		OverheadPct: overheadPct,
		Traces:      len(traces),
		Benchmarks: []benchEntry{
			{Name: "TraceBench/tracing=off/batch", NsPerOp: offNs},
			{Name: "TraceBench/tracing=on/batch", NsPerOp: onNs},
			{Name: "TraceBench/tracing=on/batch_p95", NsPerOp: on.pct(0.95).Nanoseconds()},
		},
	}
	snap.P95.DominantPhase = dominant
	snap.P95.DominantFraction = dominantFrac
	snap.P95.Nanos = tailPhases
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:    %s\n", *out)
	return nil
}
