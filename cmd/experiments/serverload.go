package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/server"
)

// loadOptions configures one in-process planarcertd load run: the
// workload shape plus the server configuration under test (tracebench
// reuses the same runner with tracing toggled).
type loadOptions struct {
	sessions int // concurrent sessions
	batches  int // update batches per session
	ops      int // updates per batch
	nodes    int // initial nodes per session network
	seed     int64
	server   server.Config // MaxSessions is overridden by runLoad

	// qos assigns the driven sessions' QoS class: a class name, "mixed"
	// (round-robin interactive/batch/background), or "" for the server
	// default.
	qos string
	// wire selects the update/watch encoding the driven clients speak:
	// "json" (NDJSON, the default), "binary" (the frozen frame protocol),
	// or "mixed" (sessions alternate between the two).
	wire string
	// storm > 0 adds a background-class re-prove storm: one session with
	// repair disabled on a stormNodes-path, hammered by storm concurrent
	// clients for the whole run. The fair-share admission scheduler must
	// keep it from starving the measured sessions.
	storm      int
	stormNodes int
}

// loadStats is what one load run measured.
type loadStats struct {
	wall        time.Duration
	batches     int64
	updates     int64
	watchEvents int64
	latencies   []time.Duration            // round-trip batch latency (incl. admission wait), sorted
	execLat     []time.Duration            // server-side execution latency (excl. admission wait), sorted
	byMode      map[string][]time.Duration // execution latencies by absorption mode, sorted
	modes       map[string]uint64          // the server's absorption-mode counters
	stormBatch  int64                      // storm batches completed
	stormLat    []time.Duration            // storm round-trip latencies, sorted
	stormShed   int64                      // storm batches shed by admission timeout (503)
}

// pct reads the p-th percentile from the sorted round-trip latencies.
func (s *loadStats) pct(p float64) time.Duration { return pctDur(s.latencies, p) }

// pctExec reads the p-th percentile from the sorted execution latencies.
func (s *loadStats) pctExec(p float64) time.Duration { return pctDur(s.execLat, p) }

func pctDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// runLoad mounts the server in-process and drives o.sessions concurrent
// clients over real HTTP — each with its own random chord add/remove
// stream and an attached watch stream. afterLoad (nil = none) runs
// against the live base URL once every client is done but before
// teardown, so callers can scrape /metrics or /debug/traces.
func runLoad(o loadOptions, afterLoad func(base string) error) (*loadStats, error) {
	cfg := o.server
	cfg.MaxSessions = o.sessions + 8
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	st := &loadStats{byMode: make(map[string][]time.Duration)}
	var (
		totalBatches atomic.Int64
		totalUpdates atomic.Int64
		watchEvents  atomic.Int64
		latencyMu    sync.Mutex
	)

	// Background re-prove storm: one weight-1 session, o.storm concurrent
	// clients, each toggling its own chord so batches never cancel out.
	stopStorm := make(chan struct{})
	var stormWg sync.WaitGroup
	if o.storm > 0 {
		n := o.stormNodes
		if n < 3*o.storm+4 {
			n = 3*o.storm + 4
		}
		var spec bytes.Buffer
		for i := 0; i < n-1; i++ {
			fmt.Fprintf(&spec, "%d %d\n", i, i+1)
		}
		body, err := json.Marshal(map[string]interface{}{
			"name": "storm", "scheme": "planarity", "qos": "background",
			"repair_threshold": -1, // every batch is a full re-prove
			"graph":            map[string]string{"edge_list": spec.String()},
		})
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return nil, fmt.Errorf("storm create: status %d: %s", resp.StatusCode, raw)
		}
		for c := 0; c < o.storm; c++ {
			stormWg.Add(1)
			go func(c int) {
				defer stormWg.Done()
				a, b := 3*c+1, 3*c+3
				add := true
				for {
					select {
					case <-stopStorm:
						return
					default:
					}
					op := "add_edge"
					if !add {
						op = "remove_edge"
					}
					add = !add
					line := fmt.Sprintf("{\"op\":%q,\"a\":%d,\"b\":%d}\n", op, a, b)
					t0 := time.Now()
					resp, err := http.Post(ts.URL+"/v1/sessions/storm/updates", "application/x-ndjson", strings.NewReader(line))
					if err != nil {
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					d := time.Since(t0)
					if resp.StatusCode == http.StatusServiceUnavailable {
						atomic.AddInt64(&st.stormShed, 1)
						add = !add // the toggle did not land; retry the same op
						continue
					}
					if resp.StatusCode != http.StatusOK {
						return
					}
					latencyMu.Lock()
					st.stormBatch++
					st.stormLat = append(st.stormLat, d)
					latencyMu.Unlock()
				}
			}(c)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, o.sessions)
	for i := 0; i < o.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := driveSession(ts.URL, fmt.Sprintf("load%03d", i), qosFor(o.qos, i), wireFor(o.wire, i), o.nodes, o.batches, o.ops,
				rand.New(rand.NewSource(o.seed+int64(i))),
				&totalBatches, &totalUpdates, &watchEvents,
				func(mode string, rt, exec time.Duration) {
					latencyMu.Lock()
					st.latencies = append(st.latencies, rt)
					st.execLat = append(st.execLat, exec)
					st.byMode[mode] = append(st.byMode[mode], exec)
					latencyMu.Unlock()
				}); err != nil {
				errCh <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	st.wall = time.Since(start)
	close(stopStorm)
	stormWg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	// Scrape the absorption-mode counters from the server itself.
	var health struct {
		Batches map[string]uint64 `json:"batches"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		return nil, err
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return nil, err
	}
	resp.Body.Close()
	st.modes = health.Batches

	st.batches, st.updates = totalBatches.Load(), totalUpdates.Load()
	st.watchEvents = watchEvents.Load()
	sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
	sort.Slice(st.execLat, func(i, j int) bool { return st.execLat[i] < st.execLat[j] })
	sort.Slice(st.stormLat, func(i, j int) bool { return st.stormLat[i] < st.stormLat[j] })
	for _, ds := range st.byMode {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	}

	if afterLoad != nil {
		if err := afterLoad(ts.URL); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// qosFor maps a session index to its QoS class under the -qos flag:
// "mixed" spreads sessions round-robin over the three classes, anything
// else is passed through verbatim ("" = server default).
func qosFor(mode string, i int) string {
	if mode != "mixed" {
		return mode
	}
	return []string{"interactive", "batch", "background"}[i%3]
}

// wireFor maps a session index to its wire encoding under the -wire
// flag: "mixed" alternates sessions between NDJSON and binary frames.
func wireFor(mode string, i int) string {
	switch mode {
	case "binary":
		return "binary"
	case "mixed":
		if i%2 == 1 {
			return "binary"
		}
	}
	return "json"
}

// serverLoad is the planarcertd load generator: it runs the in-process
// load harness and records a throughput snapshot with per-mode latency
// percentiles (committed as BENCH_server.json and guarded by
// TestBenchSnapshotsWellFormed).
func serverLoad(args []string) error {
	fs := flag.NewFlagSet("serverload", flag.ExitOnError)
	sessions := fs.Int("sessions", 64, "concurrent sessions to drive")
	batches := fs.Int("batches", 24, "update batches per session")
	ops := fs.Int("ops", 4, "updates per batch")
	nodes := fs.Int("n", 200, "initial nodes per session network")
	budget := fs.Int("budget", 0, "shared verification worker slots (0 = GOMAXPROCS)")
	execSlots := fs.Int("exec-slots", 0, "admission-scheduler execution slots (0 = GOMAXPROCS)")
	qosMode := fs.String("qos", "mixed", "session QoS: class name, \"mixed\" (round-robin), or \"\" for server default")
	wireMode := fs.String("wire", "json", "update/watch wire for driven sessions: json, binary, or mixed (alternating)")
	storm := fs.Int("storm", 4, "background re-prove storm clients (0 = no storm)")
	stormN := fs.Int("storm-n", 300, "storm session path size")
	fireSessions := fs.Int("fire-sessions", 8, "concurrent sessions for the wire firehose comparison (0 = skip)")
	fireBatches := fs.Int("fire-batches", 48, "queue batches per firehose session")
	fireOps := fs.Int("fire-ops", 512, "updates per firehose batch (rounded down to even)")
	seed := fs.Int64("seed", 2020, "random seed")
	out := fs.String("out", "BENCH_server.json", "snapshot output path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *execSlots == 0 {
		// Batches are CPU-bound: oversubscribing execution slots only
		// inflates execution latency by time-slicing, so the experiment
		// defaults to one slot per core (the daemon default is looser).
		*execSlots = runtime.GOMAXPROCS(0)
	}

	st, err := runLoad(loadOptions{
		sessions: *sessions, batches: *batches, ops: *ops, nodes: *nodes, seed: *seed,
		qos: *qosMode, wire: *wireMode, storm: *storm, stormNodes: *stormN,
		server: server.Config{BudgetSlots: *budget, ExecSlots: *execSlots},
	}, nil)
	if err != nil {
		return err
	}

	b, u := st.batches, st.updates
	meanNs := st.wall.Nanoseconds() / max(b, 1)
	execP95 := st.pctExec(0.95)
	ratio := float64(execP95.Nanoseconds()) / float64(meanNs)
	fmt.Printf("== serverload: %d sessions x %d batches x %d ops (n=%d, qos=%s, wire=%s, storm=%d) ==\n",
		*sessions, *batches, *ops, *nodes, *qosMode, *wireMode, *storm)
	fmt.Printf("wall:        %.2fs\n", st.wall.Seconds())
	fmt.Printf("batches:     %d (%.0f/s)\n", b, float64(b)/st.wall.Seconds())
	fmt.Printf("updates:     %d (%.0f/s)\n", u, float64(u)/st.wall.Seconds())
	fmt.Printf("watch:       %d reports delivered\n", st.watchEvents)
	fmt.Printf("exec:        p50=%s p95=%s p99=%s (p95/mean ratio %.1f)\n",
		st.pctExec(0.50), execP95, st.pctExec(0.99), ratio)
	fmt.Printf("round-trip:  p50=%s p95=%s p99=%s\n", st.pct(0.50), st.pct(0.95), st.pct(0.99))
	if *storm > 0 {
		fmt.Printf("storm:       %d batches by %d clients, rt p50=%s p95=%s, %d shed\n",
			st.stormBatch, *storm, pctDur(st.stormLat, 0.50), pctDur(st.stormLat, 0.95), st.stormShed)
	}
	modes := make([]string, 0, len(st.byMode))
	for m := range st.byMode {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	for _, m := range modes {
		ds := st.byMode[m]
		fmt.Printf("mode %-12s %6d batches  p50=%-12s p95=%s\n", m+":", len(ds), pctDur(ds, 0.50), pctDur(ds, 0.95))
	}

	// Transport-bound firehose: queue-mode batches isolate the wire codec
	// plus HTTP path (no proving), run once per wire for the binary-vs-JSON
	// throughput comparison committed alongside the classic load numbers.
	var fire *wireComparison
	if *fireSessions > 0 {
		fire, err = compareWires(*fireSessions, *fireBatches, *fireOps, *seed)
		if err != nil {
			return err
		}
		printWireComparison(fire)
	}

	if *out == "" {
		return nil
	}
	type benchEntry struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
	}
	type modeLatency struct {
		Batches int   `json:"batches"`
		P50Ns   int64 `json:"p50_ns"`
		P95Ns   int64 `json:"p95_ns"`
	}
	bench := []benchEntry{
		{Name: fmt.Sprintf("ServerLoad/sessions=%d/batch", *sessions), NsPerOp: meanNs},
		{Name: fmt.Sprintf("ServerLoad/sessions=%d/update", *sessions), NsPerOp: st.wall.Nanoseconds() / max(u, 1)},
		{Name: fmt.Sprintf("ServerLoad/sessions=%d/batch_p95", *sessions), NsPerOp: execP95.Nanoseconds()},
		{Name: fmt.Sprintf("ServerLoad/sessions=%d/rt_p95", *sessions), NsPerOp: st.pct(0.95).Nanoseconds()},
	}
	modeLat := make(map[string]modeLatency, len(st.byMode))
	for _, m := range modes {
		ds := st.byMode[m]
		modeLat[m] = modeLatency{Batches: len(ds), P50Ns: pctDur(ds, 0.50).Nanoseconds(), P95Ns: pctDur(ds, 0.95).Nanoseconds()}
		bench = append(bench,
			benchEntry{Name: fmt.Sprintf("ServerLoad/mode=%s/p50", m), NsPerOp: pctDur(ds, 0.50).Nanoseconds()},
			benchEntry{Name: fmt.Sprintf("ServerLoad/mode=%s/p95", m), NsPerOp: pctDur(ds, 0.95).Nanoseconds()},
		)
	}
	var wireSec *wireSection
	if fire != nil {
		wireSec = fire.section()
		bench = append(bench,
			benchEntry{Name: "ServerLoad/wire=json/update", NsPerOp: fire.json.nsPerUpdate()},
			benchEntry{Name: "ServerLoad/wire=binary/update", NsPerOp: fire.binary.nsPerUpdate()},
		)
	}
	type fairnessStats struct {
		QoS           string  `json:"qos"`
		StormClients  int     `json:"storm_clients"`
		StormBatches  int64   `json:"storm_batches"`
		StormShed     int64   `json:"storm_admission_timeouts"`
		StormRtP50Ns  int64   `json:"storm_rt_p50_ns,omitempty"`
		StormRtP95Ns  int64   `json:"storm_rt_p95_ns,omitempty"`
		BatchMeanNs   int64   `json:"batch_mean_ns"`
		ExecP95Ns     int64   `json:"exec_p95_ns"`
		RoundTripP95N int64   `json:"rt_p95_ns"`
		P95MeanRatio  float64 `json:"p95_mean_ratio"`
	}
	snap := struct {
		Note        string                 `json:"note"`
		Date        string                 `json:"date"`
		Sessions    int                    `json:"sessions"`
		Batches     int64                  `json:"batches"`
		Updates     int64                  `json:"updates"`
		WallSecs    float64                `json:"wall_seconds"`
		BatchesPS   float64                `json:"batches_per_second"`
		UpdatesPS   float64                `json:"updates_per_second"`
		WatchSeen   int64                  `json:"watch_events"`
		Modes       map[string]uint64      `json:"modes"`
		ModeLatency map[string]modeLatency `json:"mode_latency"`
		Fairness    fairnessStats          `json:"fairness"`
		Wire        *wireSection           `json:"wire,omitempty"`
		Benchmarks  []benchEntry           `json:"benchmarks"`
	}{
		Note: fmt.Sprintf("planarcertd load generator under fair-share admission scheduling: %d concurrent "+
			"sessions (qos=%s, wire=%s), %d batches each of %d updates, initial n=%d per session, plus a %d-client "+
			"background re-prove storm; batch_p95 and mode latencies are server-side execution times "+
			"(elapsed_seconds, admission wait excluded), rt_p95 is the client round trip; the wire section is the "+
			"transport-bound queue-mode firehose comparing the NDJSON and binary frame protocols; regenerate with "+
			"`go run ./cmd/experiments serverload`", *sessions, *qosMode, *wireMode, *batches, *ops, *nodes, *storm),
		Date:        time.Now().Format("2006-01-02"),
		Sessions:    *sessions,
		Batches:     b,
		Updates:     u,
		WallSecs:    st.wall.Seconds(),
		BatchesPS:   float64(b) / st.wall.Seconds(),
		UpdatesPS:   float64(u) / st.wall.Seconds(),
		WatchSeen:   st.watchEvents,
		Modes:       st.modes,
		ModeLatency: modeLat,
		Fairness: fairnessStats{
			QoS:           *qosMode,
			StormClients:  *storm,
			StormBatches:  st.stormBatch,
			StormShed:     st.stormShed,
			StormRtP50Ns:  pctDur(st.stormLat, 0.50).Nanoseconds(),
			StormRtP95Ns:  pctDur(st.stormLat, 0.95).Nanoseconds(),
			BatchMeanNs:   meanNs,
			ExecP95Ns:     execP95.Nanoseconds(),
			RoundTripP95N: st.pct(0.95).Nanoseconds(),
			P95MeanRatio:  ratio,
		},
		Wire:       wireSec,
		Benchmarks: bench,
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:    %s\n", *out)
	return nil
}

// driveSession runs one client: create a path network with some chords,
// attach a watcher, stream random chord add/remove batches (tracking a
// local mirror so every batch is structurally valid), then delete the
// session and join the watcher. observe receives every batch's
// absorption mode (from the server's report), round-trip latency, and
// server-side execution latency (the ack's elapsed_seconds). wire
// selects the encoding for both directions: "json" posts NDJSON and
// scans the NDJSON watch stream, "binary" posts update-batch frames and
// reads the version-acknowledged frame stream.
func driveSession(base, name, qos, wire string, n, batches, ops int, rng *rand.Rand,
	totalBatches, totalUpdates, watchEvents *atomic.Int64, observe func(mode string, rt, exec time.Duration)) error {

	var spec bytes.Buffer
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&spec, "%d %d\n", i, i+1)
	}
	create := map[string]interface{}{
		"name":   name,
		"scheme": "planarity",
		"graph":  map[string]string{"edge_list": spec.String()},
	}
	if qos != "" {
		create["qos"] = qos
	}
	body, err := json.Marshal(create)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("create: status %d: %s", resp.StatusCode, raw)
	}

	// Watcher: counts the reports broadcast for this session.
	watchURL := base + "/v1/sessions/" + name + "/watch"
	if wire == "binary" {
		watchURL += "?format=binary"
	}
	watchResp, err := http.Get(watchURL)
	if err != nil {
		return err
	}
	watchDone := make(chan int64, 1)
	go func() {
		var seen int64
		if wire == "binary" {
			sc := planarcert.NewWireScanner(watchResp.Body)
			for {
				msg, err := sc.Next()
				if err != nil {
					break
				}
				if msg.Event != nil {
					seen++
				}
			}
		} else {
			sc := bufio.NewScanner(watchResp.Body)
			for sc.Scan() {
				seen++
			}
		}
		watchDone <- seen
	}()

	// Client-side mirror of the chord set; path edges are never touched,
	// so batches cannot collide with the base topology.
	type chord struct{ a, b int }
	present := map[chord]bool{}
	var added []chord
	randomChord := func() (chord, bool) {
		for tries := 0; tries < 32; tries++ {
			a := rng.Intn(n - 2)
			b := a + 2 + rng.Intn(n-a-2)
			c := chord{a, b}
			if !present[c] {
				return c, true
			}
		}
		return chord{}, false
	}

	for bi := 0; bi < batches; bi++ {
		ups := make([]planarcert.Update, 0, ops)
		for oi := 0; oi < ops; oi++ {
			if len(added) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(added))
				c := added[k]
				added = append(added[:k], added[k+1:]...)
				delete(present, c)
				ups = append(ups, planarcert.EdgeRemove(planarcert.NodeID(c.a), planarcert.NodeID(c.b)))
				continue
			}
			if c, ok := randomChord(); ok {
				present[c] = true
				added = append(added, c)
				ups = append(ups, planarcert.EdgeAdd(planarcert.NodeID(c.a), planarcert.NodeID(c.b)))
			}
		}
		if len(ups) == 0 {
			continue
		}
		var (
			mode    string
			exec    time.Duration
			elapsed time.Duration
		)
		if wire == "binary" {
			frame, err := planarcert.EncodeUpdatesFrame("apply", ups)
			if err != nil {
				return err
			}
			t0 := time.Now()
			resp, err := http.Post(base+"/v1/sessions/"+name+"/updates", planarcert.WireContentType, bytes.NewReader(frame))
			if err != nil {
				return err
			}
			raw, _ := io.ReadAll(resp.Body)
			elapsed = time.Since(t0)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("batch %d: status %d: %s", bi, resp.StatusCode, raw)
			}
			ack, err := planarcert.DecodeBatchAckFrame(raw)
			if err != nil {
				return fmt.Errorf("batch %d: decode ack frame: %w", bi, err)
			}
			if ack.Report != nil {
				mode = ack.Report.Mode
			}
			exec = ack.Elapsed
		} else {
			var lines strings.Builder
			for _, u := range ups {
				op := "add_edge"
				if u.Op == planarcert.OpRemoveEdge {
					op = "remove_edge"
				}
				fmt.Fprintf(&lines, "{\"op\":%q,\"a\":%d,\"b\":%d}\n", op, u.A, u.B)
			}
			t0 := time.Now()
			resp, err := http.Post(base+"/v1/sessions/"+name+"/updates", "application/x-ndjson", strings.NewReader(lines.String()))
			if err != nil {
				return err
			}
			raw, _ := io.ReadAll(resp.Body)
			elapsed = time.Since(t0)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("batch %d: status %d: %s", bi, resp.StatusCode, raw)
			}
			var ack struct {
				Report struct {
					Mode string `json:"mode"`
				} `json:"report"`
				ElapsedSeconds float64 `json:"elapsed_seconds"`
			}
			if err := json.Unmarshal(raw, &ack); err != nil {
				return fmt.Errorf("batch %d: decode ack: %w", bi, err)
			}
			mode = ack.Report.Mode
			exec = time.Duration(ack.ElapsedSeconds * float64(time.Second))
		}
		observe(mode, elapsed, exec)
		totalBatches.Add(1)
		totalUpdates.Add(int64(len(ups)))
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+name, nil)
	if err != nil {
		return err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("delete: status %d", resp.StatusCode)
	}
	watchEvents.Add(<-watchDone)
	watchResp.Body.Close()
	return nil
}
