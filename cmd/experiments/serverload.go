package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/planarcert/planarcert/internal/server"
)

// serverLoad is the planarcertd load generator: it mounts the server
// in-process, drives N concurrent sessions over real HTTP — each with
// its own random chord add/remove stream and an attached watch stream —
// and records a throughput snapshot (committed as BENCH_server.json and
// guarded by TestBenchSnapshotsWellFormed).
func serverLoad(args []string) error {
	fs := flag.NewFlagSet("serverload", flag.ExitOnError)
	sessions := fs.Int("sessions", 64, "concurrent sessions to drive")
	batches := fs.Int("batches", 24, "update batches per session")
	ops := fs.Int("ops", 4, "updates per batch")
	nodes := fs.Int("n", 200, "initial nodes per session network")
	budget := fs.Int("budget", 0, "shared verification worker slots (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 2020, "random seed")
	out := fs.String("out", "BENCH_server.json", "snapshot output path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := server.New(server.Config{
		MaxSessions: *sessions + 8,
		BudgetSlots: *budget,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	var (
		totalBatches atomic.Int64
		totalUpdates atomic.Int64
		watchEvents  atomic.Int64
		latencyMu    sync.Mutex
		latencies    []time.Duration
	)

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, *sessions)
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := driveSession(ts.URL, fmt.Sprintf("load%03d", i), *nodes, *batches, *ops,
				rand.New(rand.NewSource(*seed+int64(i))),
				&totalBatches, &totalUpdates, &watchEvents,
				func(d time.Duration) {
					latencyMu.Lock()
					latencies = append(latencies, d)
					latencyMu.Unlock()
				}); err != nil {
				errCh <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errCh)
	for err := range errCh {
		return err
	}

	// Scrape the absorption-mode counters from the server itself.
	var health struct {
		Batches map[string]uint64 `json:"batches"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return err
	}
	resp.Body.Close()

	b, u := totalBatches.Load(), totalUpdates.Load()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		return latencies[int(p*float64(len(latencies)-1))]
	}

	fmt.Printf("== serverload: %d sessions x %d batches x %d ops (n=%d) ==\n", *sessions, *batches, *ops, *nodes)
	fmt.Printf("wall:        %.2fs\n", wall.Seconds())
	fmt.Printf("batches:     %d (%.0f/s)\n", b, float64(b)/wall.Seconds())
	fmt.Printf("updates:     %d (%.0f/s)\n", u, float64(u)/wall.Seconds())
	fmt.Printf("watch:       %d reports delivered\n", watchEvents.Load())
	fmt.Printf("latency:     p50=%s p95=%s p99=%s\n", pct(0.50), pct(0.95), pct(0.99))
	modes := make([]string, 0, len(health.Batches))
	for m := range health.Batches {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	for _, m := range modes {
		fmt.Printf("mode %-12s %d\n", m+":", health.Batches[m])
	}

	if *out == "" {
		return nil
	}
	type benchEntry struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
	}
	snap := struct {
		Note       string            `json:"note"`
		Date       string            `json:"date"`
		Sessions   int               `json:"sessions"`
		Batches    int64             `json:"batches"`
		Updates    int64             `json:"updates"`
		WallSecs   float64           `json:"wall_seconds"`
		BatchesPS  float64           `json:"batches_per_second"`
		UpdatesPS  float64           `json:"updates_per_second"`
		WatchSeen  int64             `json:"watch_events"`
		Modes      map[string]uint64 `json:"modes"`
		Benchmarks []benchEntry      `json:"benchmarks"`
	}{
		Note: fmt.Sprintf("planarcertd load generator: %d concurrent sessions, %d batches each of %d updates, "+
			"initial n=%d per session, shared worker budget, in-process HTTP; regenerate with "+
			"`go run ./cmd/experiments serverload`", *sessions, *batches, *ops, *nodes),
		Date:      time.Now().Format("2006-01-02"),
		Sessions:  *sessions,
		Batches:   b,
		Updates:   u,
		WallSecs:  wall.Seconds(),
		BatchesPS: float64(b) / wall.Seconds(),
		UpdatesPS: float64(u) / wall.Seconds(),
		WatchSeen: watchEvents.Load(),
		Modes:     health.Batches,
		Benchmarks: []benchEntry{
			{Name: fmt.Sprintf("ServerLoad/sessions=%d/batch", *sessions), NsPerOp: wall.Nanoseconds() / max(b, 1)},
			{Name: fmt.Sprintf("ServerLoad/sessions=%d/update", *sessions), NsPerOp: wall.Nanoseconds() / max(u, 1)},
			{Name: fmt.Sprintf("ServerLoad/sessions=%d/batch_p95", *sessions), NsPerOp: pct(0.95).Nanoseconds()},
		},
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:    %s\n", *out)
	return nil
}

// driveSession runs one client: create a path network with some chords,
// attach a watcher, stream random chord add/remove batches (tracking a
// local mirror so every batch is structurally valid), then delete the
// session and join the watcher.
func driveSession(base, name string, n, batches, ops int, rng *rand.Rand,
	totalBatches, totalUpdates, watchEvents *atomic.Int64, observe func(time.Duration)) error {

	var spec bytes.Buffer
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&spec, "%d %d\n", i, i+1)
	}
	body, err := json.Marshal(map[string]interface{}{
		"name":   name,
		"scheme": "planarity",
		"graph":  map[string]string{"edge_list": spec.String()},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("create: status %d: %s", resp.StatusCode, raw)
	}

	// Watcher: counts the NDJSON reports for this session.
	watchResp, err := http.Get(base + "/v1/sessions/" + name + "/watch")
	if err != nil {
		return err
	}
	watchDone := make(chan int64, 1)
	go func() {
		var seen int64
		sc := bufio.NewScanner(watchResp.Body)
		for sc.Scan() {
			seen++
		}
		watchDone <- seen
	}()

	// Client-side mirror of the chord set; path edges are never touched,
	// so batches cannot collide with the base topology.
	type chord struct{ a, b int }
	present := map[chord]bool{}
	var added []chord
	randomChord := func() (chord, bool) {
		for tries := 0; tries < 32; tries++ {
			a := rng.Intn(n - 2)
			b := a + 2 + rng.Intn(n-a-2)
			c := chord{a, b}
			if !present[c] {
				return c, true
			}
		}
		return chord{}, false
	}

	for bi := 0; bi < batches; bi++ {
		var lines strings.Builder
		count := 0
		for oi := 0; oi < ops; oi++ {
			if len(added) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(added))
				c := added[k]
				added = append(added[:k], added[k+1:]...)
				delete(present, c)
				fmt.Fprintf(&lines, "{\"op\":\"remove_edge\",\"a\":%d,\"b\":%d}\n", c.a, c.b)
				count++
				continue
			}
			if c, ok := randomChord(); ok {
				present[c] = true
				added = append(added, c)
				fmt.Fprintf(&lines, "{\"op\":\"add_edge\",\"a\":%d,\"b\":%d}\n", c.a, c.b)
				count++
			}
		}
		if count == 0 {
			continue
		}
		t0 := time.Now()
		resp, err := http.Post(base+"/v1/sessions/"+name+"/updates", "application/x-ndjson", strings.NewReader(lines.String()))
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("batch %d: status %d: %s", bi, resp.StatusCode, raw)
		}
		observe(time.Since(t0))
		totalBatches.Add(1)
		totalUpdates.Add(int64(count))
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+name, nil)
	if err != nil {
		return err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("delete: status %d", resp.StatusCode)
	}
	watchEvents.Add(<-watchDone)
	watchResp.Body.Close()
	return nil
}
