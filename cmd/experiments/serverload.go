package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/planarcert/planarcert/internal/server"
)

// loadOptions configures one in-process planarcertd load run: the
// workload shape plus the server configuration under test (tracebench
// reuses the same runner with tracing toggled).
type loadOptions struct {
	sessions int // concurrent sessions
	batches  int // update batches per session
	ops      int // updates per batch
	nodes    int // initial nodes per session network
	seed     int64
	server   server.Config // MaxSessions is overridden by runLoad
}

// loadStats is what one load run measured.
type loadStats struct {
	wall        time.Duration
	batches     int64
	updates     int64
	watchEvents int64
	latencies   []time.Duration            // every batch latency, sorted
	byMode      map[string][]time.Duration // batch latencies by absorption mode, sorted
	modes       map[string]uint64          // the server's absorption-mode counters
}

// pct reads the p-th percentile from the sorted overall latencies.
func (s *loadStats) pct(p float64) time.Duration { return pctDur(s.latencies, p) }

func pctDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

// runLoad mounts the server in-process and drives o.sessions concurrent
// clients over real HTTP — each with its own random chord add/remove
// stream and an attached watch stream. afterLoad (nil = none) runs
// against the live base URL once every client is done but before
// teardown, so callers can scrape /metrics or /debug/traces.
func runLoad(o loadOptions, afterLoad func(base string) error) (*loadStats, error) {
	cfg := o.server
	cfg.MaxSessions = o.sessions + 8
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	st := &loadStats{byMode: make(map[string][]time.Duration)}
	var (
		totalBatches atomic.Int64
		totalUpdates atomic.Int64
		watchEvents  atomic.Int64
		latencyMu    sync.Mutex
	)

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, o.sessions)
	for i := 0; i < o.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := driveSession(ts.URL, fmt.Sprintf("load%03d", i), o.nodes, o.batches, o.ops,
				rand.New(rand.NewSource(o.seed+int64(i))),
				&totalBatches, &totalUpdates, &watchEvents,
				func(mode string, d time.Duration) {
					latencyMu.Lock()
					st.latencies = append(st.latencies, d)
					st.byMode[mode] = append(st.byMode[mode], d)
					latencyMu.Unlock()
				}); err != nil {
				errCh <- fmt.Errorf("session %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	st.wall = time.Since(start)
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	// Scrape the absorption-mode counters from the server itself.
	var health struct {
		Batches map[string]uint64 `json:"batches"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		return nil, err
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return nil, err
	}
	resp.Body.Close()
	st.modes = health.Batches

	st.batches, st.updates = totalBatches.Load(), totalUpdates.Load()
	st.watchEvents = watchEvents.Load()
	sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
	for _, ds := range st.byMode {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	}

	if afterLoad != nil {
		if err := afterLoad(ts.URL); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// serverLoad is the planarcertd load generator: it runs the in-process
// load harness and records a throughput snapshot with per-mode latency
// percentiles (committed as BENCH_server.json and guarded by
// TestBenchSnapshotsWellFormed).
func serverLoad(args []string) error {
	fs := flag.NewFlagSet("serverload", flag.ExitOnError)
	sessions := fs.Int("sessions", 64, "concurrent sessions to drive")
	batches := fs.Int("batches", 24, "update batches per session")
	ops := fs.Int("ops", 4, "updates per batch")
	nodes := fs.Int("n", 200, "initial nodes per session network")
	budget := fs.Int("budget", 0, "shared verification worker slots (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 2020, "random seed")
	out := fs.String("out", "BENCH_server.json", "snapshot output path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	st, err := runLoad(loadOptions{
		sessions: *sessions, batches: *batches, ops: *ops, nodes: *nodes, seed: *seed,
		server: server.Config{BudgetSlots: *budget},
	}, nil)
	if err != nil {
		return err
	}

	b, u := st.batches, st.updates
	fmt.Printf("== serverload: %d sessions x %d batches x %d ops (n=%d) ==\n", *sessions, *batches, *ops, *nodes)
	fmt.Printf("wall:        %.2fs\n", st.wall.Seconds())
	fmt.Printf("batches:     %d (%.0f/s)\n", b, float64(b)/st.wall.Seconds())
	fmt.Printf("updates:     %d (%.0f/s)\n", u, float64(u)/st.wall.Seconds())
	fmt.Printf("watch:       %d reports delivered\n", st.watchEvents)
	fmt.Printf("latency:     p50=%s p95=%s p99=%s\n", st.pct(0.50), st.pct(0.95), st.pct(0.99))
	modes := make([]string, 0, len(st.byMode))
	for m := range st.byMode {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	for _, m := range modes {
		ds := st.byMode[m]
		fmt.Printf("mode %-12s %6d batches  p50=%-12s p95=%s\n", m+":", len(ds), pctDur(ds, 0.50), pctDur(ds, 0.95))
	}

	if *out == "" {
		return nil
	}
	type benchEntry struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
	}
	type modeLatency struct {
		Batches int   `json:"batches"`
		P50Ns   int64 `json:"p50_ns"`
		P95Ns   int64 `json:"p95_ns"`
	}
	bench := []benchEntry{
		{Name: fmt.Sprintf("ServerLoad/sessions=%d/batch", *sessions), NsPerOp: st.wall.Nanoseconds() / max(b, 1)},
		{Name: fmt.Sprintf("ServerLoad/sessions=%d/update", *sessions), NsPerOp: st.wall.Nanoseconds() / max(u, 1)},
		{Name: fmt.Sprintf("ServerLoad/sessions=%d/batch_p95", *sessions), NsPerOp: st.pct(0.95).Nanoseconds()},
	}
	modeLat := make(map[string]modeLatency, len(st.byMode))
	for _, m := range modes {
		ds := st.byMode[m]
		modeLat[m] = modeLatency{Batches: len(ds), P50Ns: pctDur(ds, 0.50).Nanoseconds(), P95Ns: pctDur(ds, 0.95).Nanoseconds()}
		bench = append(bench,
			benchEntry{Name: fmt.Sprintf("ServerLoad/mode=%s/p50", m), NsPerOp: pctDur(ds, 0.50).Nanoseconds()},
			benchEntry{Name: fmt.Sprintf("ServerLoad/mode=%s/p95", m), NsPerOp: pctDur(ds, 0.95).Nanoseconds()},
		)
	}
	snap := struct {
		Note        string                 `json:"note"`
		Date        string                 `json:"date"`
		Sessions    int                    `json:"sessions"`
		Batches     int64                  `json:"batches"`
		Updates     int64                  `json:"updates"`
		WallSecs    float64                `json:"wall_seconds"`
		BatchesPS   float64                `json:"batches_per_second"`
		UpdatesPS   float64                `json:"updates_per_second"`
		WatchSeen   int64                  `json:"watch_events"`
		Modes       map[string]uint64      `json:"modes"`
		ModeLatency map[string]modeLatency `json:"mode_latency"`
		Benchmarks  []benchEntry           `json:"benchmarks"`
	}{
		Note: fmt.Sprintf("planarcertd load generator: %d concurrent sessions, %d batches each of %d updates, "+
			"initial n=%d per session, shared worker budget, in-process HTTP; regenerate with "+
			"`go run ./cmd/experiments serverload`", *sessions, *batches, *ops, *nodes),
		Date:        time.Now().Format("2006-01-02"),
		Sessions:    *sessions,
		Batches:     b,
		Updates:     u,
		WallSecs:    st.wall.Seconds(),
		BatchesPS:   float64(b) / st.wall.Seconds(),
		UpdatesPS:   float64(u) / st.wall.Seconds(),
		WatchSeen:   st.watchEvents,
		Modes:       st.modes,
		ModeLatency: modeLat,
		Benchmarks:  bench,
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:    %s\n", *out)
	return nil
}

// driveSession runs one client: create a path network with some chords,
// attach a watcher, stream random chord add/remove batches (tracking a
// local mirror so every batch is structurally valid), then delete the
// session and join the watcher. observe receives every batch's
// absorption mode (from the server's report) and round-trip latency.
func driveSession(base, name string, n, batches, ops int, rng *rand.Rand,
	totalBatches, totalUpdates, watchEvents *atomic.Int64, observe func(mode string, d time.Duration)) error {

	var spec bytes.Buffer
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&spec, "%d %d\n", i, i+1)
	}
	body, err := json.Marshal(map[string]interface{}{
		"name":   name,
		"scheme": "planarity",
		"graph":  map[string]string{"edge_list": spec.String()},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("create: status %d: %s", resp.StatusCode, raw)
	}

	// Watcher: counts the NDJSON reports for this session.
	watchResp, err := http.Get(base + "/v1/sessions/" + name + "/watch")
	if err != nil {
		return err
	}
	watchDone := make(chan int64, 1)
	go func() {
		var seen int64
		sc := bufio.NewScanner(watchResp.Body)
		for sc.Scan() {
			seen++
		}
		watchDone <- seen
	}()

	// Client-side mirror of the chord set; path edges are never touched,
	// so batches cannot collide with the base topology.
	type chord struct{ a, b int }
	present := map[chord]bool{}
	var added []chord
	randomChord := func() (chord, bool) {
		for tries := 0; tries < 32; tries++ {
			a := rng.Intn(n - 2)
			b := a + 2 + rng.Intn(n-a-2)
			c := chord{a, b}
			if !present[c] {
				return c, true
			}
		}
		return chord{}, false
	}

	for bi := 0; bi < batches; bi++ {
		var lines strings.Builder
		count := 0
		for oi := 0; oi < ops; oi++ {
			if len(added) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(added))
				c := added[k]
				added = append(added[:k], added[k+1:]...)
				delete(present, c)
				fmt.Fprintf(&lines, "{\"op\":\"remove_edge\",\"a\":%d,\"b\":%d}\n", c.a, c.b)
				count++
				continue
			}
			if c, ok := randomChord(); ok {
				present[c] = true
				added = append(added, c)
				fmt.Fprintf(&lines, "{\"op\":\"add_edge\",\"a\":%d,\"b\":%d}\n", c.a, c.b)
				count++
			}
		}
		if count == 0 {
			continue
		}
		t0 := time.Now()
		resp, err := http.Post(base+"/v1/sessions/"+name+"/updates", "application/x-ndjson", strings.NewReader(lines.String()))
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		elapsed := time.Since(t0)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("batch %d: status %d: %s", bi, resp.StatusCode, raw)
		}
		var ack struct {
			Report struct {
				Mode string `json:"mode"`
			} `json:"report"`
		}
		if err := json.Unmarshal(raw, &ack); err != nil {
			return fmt.Errorf("batch %d: decode ack: %w", bi, err)
		}
		observe(ack.Report.Mode, elapsed)
		totalBatches.Add(1)
		totalUpdates.Add(int64(count))
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+name, nil)
	if err != nil {
		return err
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("delete: status %d", resp.StatusCode)
	}
	watchEvents.Add(<-watchDone)
	watchResp.Body.Close()
	return nil
}
