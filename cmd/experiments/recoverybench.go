package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"flag"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/server"
	"github.com/planarcert/planarcert/internal/wal"
)

// recoveryBench measures what durability buys at boot: it builds a
// large durable session, then times three boots of the same topology.
// "crash_replay" recovers from a SIGKILL-shaped state (snapshot plus a
// WAL tail; the first tail batch re-proves because the structured
// repair state is not persisted, so this costs about one prover run —
// but loses nothing). "replay" recovers from a clean shutdown (current
// snapshot, empty tail): just the self-validating verification sweep,
// the fast path every graceful restart takes. "reprove" certifies the
// same network from scratch — the cost every boot would pay without
// persistence. The snapshot is committed as BENCH_recovery.json and
// guarded by TestBenchSnapshotsWellFormed.
func recoveryBench(args []string) error {
	fs := flag.NewFlagSet("recoverybench", flag.ExitOnError)
	n := fs.Int("n", 50000, "nodes in the benchmark session's path network")
	tail := fs.Int("tail", 4, "update batches left in the WAL tail past the boot snapshot")
	ops := fs.Int("ops", 4, "chord adds per tail batch")
	out := fs.String("out", "BENCH_recovery.json", "snapshot output path (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "planarcert-recoverybench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg := server.Config{
		DataDir:       dir,
		Fsync:         wal.SyncNever,
		SnapshotEvery: 1 << 20, // keep the tail in the WAL, not folded into a snapshot
	}

	// Phase 1: build the durable state, then crash (no graceful close, so
	// recovery must replay the WAL tail, not just load a final snapshot).
	srvA := server.New(cfg)
	if err := srvA.Recover(); err != nil {
		return err
	}
	tsA := httptest.NewServer(srvA.Handler())
	var spec bytes.Buffer
	for i := 0; i < *n-1; i++ {
		fmt.Fprintf(&spec, "%d %d\n", i, i+1)
	}
	body, err := json.Marshal(map[string]interface{}{
		"name":   "bench",
		"scheme": "planarity",
		"graph":  map[string]string{"edge_list": spec.String()},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(tsA.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("create: status %d: %s", resp.StatusCode, raw)
	}
	// Disjoint short chords never cross, so the network stays planar.
	var chords [][2]int64
	nextChord := int64(0)
	for b := 0; b < *tail; b++ {
		var lines bytes.Buffer
		for o := 0; o < *ops; o++ {
			fmt.Fprintf(&lines, "{\"op\":\"add_edge\",\"a\":%d,\"b\":%d}\n", nextChord, nextChord+2)
			chords = append(chords, [2]int64{nextChord, nextChord + 2})
			nextChord += 3
		}
		resp, err := http.Post(tsA.URL+"/v1/sessions/bench/updates", "application/x-ndjson", &lines)
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("tail batch %d: status %d: %s", b, resp.StatusCode, raw)
		}
	}
	tsA.Close() // crash: srvA is abandoned, its final snapshot never written
	srvA = nil  // release the dead server's heap before timing recovery
	runtime.GC()

	wantEdges := *n - 1 + len(chords)
	verifyBoot := func(srv *server.Server) error {
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/v1/sessions/bench")
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st struct {
			Certified bool `json:"certified"`
			Nodes     int  `json:"nodes"`
			Edges     int  `json:"edges"`
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			return err
		}
		if !st.Certified || st.Nodes != *n || st.Edges != wantEdges {
			return fmt.Errorf("bad recovery: %s (want %d nodes, %d edges, certified)", raw, *n, wantEdges)
		}
		return nil
	}

	// Phase 2: crash boot — snapshot + WAL tail + verification sweep +
	// one re-prove to absorb the tail. The graceful Close at the end
	// leaves a current snapshot with an empty tail for phase 3.
	srvB := server.New(cfg)
	t0 := time.Now()
	if err := srvB.Recover(); err != nil {
		return err
	}
	crashReplay := time.Since(t0)
	if err := verifyBoot(srvB); err != nil {
		return err
	}
	srvB.Close()
	srvB = nil
	runtime.GC()

	// Phase 3: clean boot — current snapshot, empty tail: restore is the
	// self-validating verification sweep alone, no prover run.
	srvC := server.New(cfg)
	t0 = time.Now()
	if err := srvC.Recover(); err != nil {
		return err
	}
	replay := time.Since(t0)
	if err := verifyBoot(srvC); err != nil {
		return err
	}
	srvC.Close()
	srvC = nil
	runtime.GC()

	// Phase 4: cold re-prove of the identical network from scratch — what
	// every boot would cost without persistence.
	net := planarcert.NewNetwork()
	for i := 0; i < *n; i++ {
		if err := net.AddNode(planarcert.NodeID(i)); err != nil {
			return err
		}
	}
	for i := 0; i < *n-1; i++ {
		if err := net.AddEdge(planarcert.NodeID(i), planarcert.NodeID(i+1)); err != nil {
			return err
		}
	}
	for _, c := range chords {
		if err := net.AddEdge(planarcert.NodeID(c[0]), planarcert.NodeID(c[1])); err != nil {
			return err
		}
	}
	t0 = time.Now()
	sess, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		return err
	}
	reprove := time.Since(t0)
	if !sess.Certified() {
		return fmt.Errorf("cold re-prove did not certify")
	}

	speedup := float64(reprove) / float64(replay)
	fmt.Printf("== recoverybench: n=%d, %d-batch WAL tail ==\n", *n, *tail)
	fmt.Printf("clean replay:    %s (snapshot + verification sweep only)\n", replay)
	fmt.Printf("crash replay:    %s (snapshot + tail; one re-prove, nothing lost)\n", crashReplay)
	fmt.Printf("cold re-prove:   %s\n", reprove)
	fmt.Printf("speedup:         %.1fx (clean replay vs cold re-prove)\n", speedup)

	if *out == "" {
		return nil
	}
	type benchEntry struct {
		Name    string `json:"name"`
		NsPerOp int64  `json:"ns_per_op"`
	}
	snap := struct {
		Note               string       `json:"note"`
		Date               string       `json:"date"`
		N                  int          `json:"n"`
		TailBatches        int          `json:"tail_batches"`
		ReplaySeconds      float64      `json:"replay_seconds"`
		CrashReplaySeconds float64      `json:"crash_replay_seconds"`
		ReproveSeconds     float64      `json:"reprove_seconds"`
		Speedup            float64      `json:"speedup"`
		Benchmarks         []benchEntry `json:"benchmarks"`
	}{
		Note: fmt.Sprintf("boot recovery vs cold re-prove at n=%d: 'replay' boots from a clean shutdown "+
			"(current snapshot, empty WAL tail — just the self-validating verification sweep); 'crash_replay' "+
			"boots from a SIGKILL-shaped state (snapshot + %d-batch WAL tail; the first tail batch re-proves "+
			"because structured repair state is not persisted); 'reprove' certifies the same network from "+
			"scratch; regenerate with `go run ./cmd/experiments recoverybench`", *n, *tail),
		Date:               time.Now().Format("2006-01-02"),
		N:                  *n,
		TailBatches:        *tail,
		ReplaySeconds:      replay.Seconds(),
		CrashReplaySeconds: crashReplay.Seconds(),
		ReproveSeconds:     reprove.Seconds(),
		Speedup:            speedup,
		Benchmarks: []benchEntry{
			{Name: fmt.Sprintf("Recovery/n=%d/replay", *n), NsPerOp: replay.Nanoseconds()},
			{Name: fmt.Sprintf("Recovery/n=%d/crash_replay", *n), NsPerOp: crashReplay.Nanoseconds()},
			{Name: fmt.Sprintf("Recovery/n=%d/reprove", *n), NsPerOp: reprove.Nanoseconds()},
		},
	}
	rawOut, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	rawOut = append(rawOut, '\n')
	if err := os.WriteFile(*out, rawOut, 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:        %s\n", *out)
	return nil
}
