// Command planarcert is the command-line front end of the library.
//
// Usage:
//
//	planarcert gen -kind grid -n 24 > net.edges           # generate graphs
//	planarcert test < net.edges                           # planarity test
//	planarcert kuratowski < net.edges                     # extract witness
//	planarcert certify -scheme planarity < net.edges      # prove + verify
//	planarcert watch -init net.edges < updates            # incremental
//	planarcert schemes                                    # list schemes
//
// Graphs are read and written as text edge lists ("u v" per line; see
// planarcert.ParseEdgeList). The watch command reads an update stream
// on stdin — "+ u v" (add edge), "- u v" (remove edge), "n u" (add
// node), and "flush" / "." / a blank line to absorb the queued batch —
// and maintains certificates incrementally through planarcert.Session.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/buildinfo"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "test":
		err = cmdTest()
	case "kuratowski":
		err = cmdKuratowski()
	case "certify":
		err = cmdCertify(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "schemes":
		for _, s := range planarcert.Schemes() {
			fmt.Println(s)
		}
	case "version", "-version", "--version":
		buildinfo.Print(os.Stdout, "planarcert")
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "planarcert:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: planarcert <command> [flags]

commands:
  gen        -kind {grid|tree|maximal|planar|outerplanar|complete|bipartite|wheel|cycle|path} -n N [-m M] [-seed S]
  test       read an edge list on stdin, report planarity/outerplanarity
  kuratowski read an edge list on stdin, print a K5/K3,3 subdivision witness
  certify    -scheme NAME [-adversary] [-workers N] [-shard N] [-seq] : prove + verify
  watch      -scheme NAME [-init FILE] [-threshold N] [-cache N] [-noflip] : certify an update stream
  schemes    list available proof-labeling schemes
  version    print build identity (module version, VCS revision)

engine flags (certify, watch):
  -workers N  bound the verification worker pool (0 = GOMAXPROCS)
  -shard N    nodes a worker claims per handoff (0 = engine default)
  -seq        force single-goroutine verification`)
}

// engineFlags registers the engine-tuning flags shared by certify and
// watch and returns a function assembling the EngineConfig.
func engineFlags(fs *flag.FlagSet) func() planarcert.EngineConfig {
	workers := fs.Int("workers", 0, "verification worker pool bound (0 = GOMAXPROCS)")
	shard := fs.Int("shard", 0, "nodes a worker claims per handoff (0 = engine default)")
	seq := fs.Bool("seq", false, "force single-goroutine verification")
	return func() planarcert.EngineConfig {
		return planarcert.EngineConfig{
			Sequential: *seq,
			Workers:    *workers,
			ShardSize:  *shard,
		}
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "planar", "graph family")
	n := fs.Int("n", 16, "number of nodes")
	m := fs.Int("m", 0, "number of edges (planar kind only; 0 = 2n-3)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	var err error
	switch *kind {
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = gen.Grid(side, (*n+side-1)/side)
	case "tree":
		g = gen.RandomTree(*n, rng)
	case "maximal":
		g = gen.StackedTriangulation(*n, rng)
	case "planar":
		edges := *m
		if edges == 0 {
			edges = 2**n - 3
		}
		g, err = gen.RandomPlanar(*n, edges, rng)
	case "outerplanar":
		g = gen.RandomOuterplanar(*n, 0.7, rng)
	case "complete":
		g = gen.Complete(*n)
	case "bipartite":
		g = gen.CompleteBipartite(*n/2, (*n+1)/2)
	case "wheel":
		g = gen.Wheel(*n)
	case "cycle":
		g = gen.Cycle(*n)
	case "path":
		g = gen.Path(*n)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	return planarcert.FromGraph(g).WriteEdgeList(os.Stdout)
}

func readNetwork() (*planarcert.Network, error) {
	return planarcert.ParseEdgeList(os.Stdin)
}

func cmdTest() error {
	net, err := readNetwork()
	if err != nil {
		return err
	}
	fmt.Printf("n=%d m=%d connected=%v\n", net.N(), net.M(), net.Connected())
	fmt.Printf("planar:      %v\n", net.IsPlanar())
	fmt.Printf("outerplanar: %v\n", net.IsOuterplanar())
	return nil
}

func cmdKuratowski() error {
	net, err := readNetwork()
	if err != nil {
		return err
	}
	w, err := net.Kuratowski()
	if err != nil {
		return err
	}
	fmt.Printf("kind: %s\n", w.Kind)
	fmt.Printf("branch vertices: %v\n", w.Branch)
	for i, p := range w.Paths {
		fmt.Printf("path %d: %v\n", i, p)
	}
	return nil
}

func cmdCertify(args []string) error {
	fs := flag.NewFlagSet("certify", flag.ExitOnError)
	scheme := fs.String("scheme", "planarity", "proof-labeling scheme")
	adversary := fs.Bool("adversary", false, "also run a random-certificate attack")
	engine := engineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := engine()
	net, err := readNetwork()
	if err != nil {
		return err
	}
	certs, err := planarcert.Certify(net, planarcert.SchemeName(*scheme))
	if err != nil {
		return fmt.Errorf("prover: %w", err)
	}
	report, err := planarcert.VerifyWith(net, planarcert.SchemeName(*scheme), certs, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("scheme:      %s\n", *scheme)
	fmt.Printf("accepted:    %v\n", report.Accepted)
	fmt.Printf("max cert:    %d bits\n", report.MaxCertBits)
	fmt.Printf("avg cert:    %.1f bits\n", report.AvgCertBits)
	fmt.Printf("messages:    %d (1 round)\n", report.Messages)
	if !report.Accepted {
		fmt.Printf("rejecting:   %v\n", report.Rejecting)
	}
	if *adversary {
		rng := rand.New(rand.NewSource(99))
		forged := planarcert.Certificates{}
		for _, id := range net.IDs() {
			nbits := rng.Intn(200)
			data := make([]byte, (nbits+7)/8)
			rng.Read(data)
			forged[id] = planarcert.Certificate{Data: data, Bits: nbits}
		}
		att, err := planarcert.VerifyWith(net, planarcert.SchemeName(*scheme), forged, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("adversary:   accepted=%v (%d rejecting)\n", att.Accepted, len(att.Rejecting))
	}
	return nil
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	scheme := fs.String("scheme", "planarity", "proof-labeling scheme")
	initFile := fs.String("init", "", "edge-list file with the initial network (default: empty)")
	threshold := fs.Int("threshold", 0, "repair scope threshold (0 = default, <0 = always re-prove)")
	cache := fs.Int("cache", 0, "certificate cache size (0 = default, <0 = disabled)")
	noflip := fs.Bool("noflip", false, "never flip between the planarity and non-planarity schemes")
	engine := engineFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	net := planarcert.NewNetwork()
	if *initFile != "" {
		f, err := os.Open(*initFile)
		if err != nil {
			return err
		}
		net, err = planarcert.ParseEdgeList(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	var opts []planarcert.SessionOption
	if *threshold != 0 {
		opts = append(opts, planarcert.WithRepairThreshold(*threshold))
	}
	if *cache != 0 {
		opts = append(opts, planarcert.WithCacheSize(*cache))
	}
	if *noflip {
		opts = append(opts, planarcert.WithoutFlip())
	}
	s, err := planarcert.NewSession(net, planarcert.SchemeName(*scheme), engine(), opts...)
	if err != nil {
		return err
	}
	printWatch(s.Last(), s)

	flush := func() error {
		rep, err := s.Flush()
		if err != nil {
			fmt.Printf("batch rejected: %v\n", err)
			return nil
		}
		printWatch(rep, s)
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	line := 0
	queued := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "" || text == "." || text == "flush":
			if queued > 0 {
				if err := flush(); err != nil {
					return err
				}
				queued = 0
			}
			continue
		case strings.HasPrefix(text, "#"):
			continue
		}
		u, err := parseUpdate(text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "planarcert: line %d: %v (skipped)\n", line, err)
			continue
		}
		if err := s.Queue(u); err != nil {
			return err
		}
		queued++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if queued > 0 {
		if err := flush(); err != nil {
			return err
		}
	}
	fmt.Printf("final: n=%d m=%d scheme=%s certified=%v after %d batches\n",
		s.N(), s.M(), s.ActiveScheme(), s.Certified(), s.Generation())
	return nil
}

// parseUpdate reads one update line: "+ u v" / "add u v", "- u v" /
// "rm u v", "n u" / "node u".
func parseUpdate(text string) (planarcert.Update, error) {
	fields := strings.Fields(text)
	id := func(i int) (planarcert.NodeID, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("update %q: missing identifier", text)
		}
		v, err := strconv.ParseInt(fields[i], 10, 64)
		return planarcert.NodeID(v), err
	}
	switch fields[0] {
	case "+", "add":
		a, err := id(1)
		if err != nil {
			return planarcert.Update{}, err
		}
		b, err := id(2)
		if err != nil {
			return planarcert.Update{}, err
		}
		return planarcert.EdgeAdd(a, b), nil
	case "-", "rm":
		a, err := id(1)
		if err != nil {
			return planarcert.Update{}, err
		}
		b, err := id(2)
		if err != nil {
			return planarcert.Update{}, err
		}
		return planarcert.EdgeRemove(a, b), nil
	case "n", "node":
		a, err := id(1)
		if err != nil {
			return planarcert.Update{}, err
		}
		return planarcert.NodeAdd(a), nil
	}
	return planarcert.Update{}, fmt.Errorf("update %q: want '+ u v', '- u v' or 'n u'", text)
}

func printWatch(rep *planarcert.SessionReport, s *planarcert.Session) {
	extra := ""
	switch {
	case rep.Mode == "cache":
		extra = fmt.Sprintf(" cachegen=%d", rep.CacheGeneration)
	case rep.RepairFallback != "":
		extra = fmt.Sprintf(" fallback=%q", rep.RepairFallback)
	}
	if rep.ProveErr != "" {
		extra += fmt.Sprintf(" err=%q", rep.ProveErr)
	}
	fmt.Printf("gen=%-3d mode=%-11s scheme=%-13s n=%-6d m=%-6d dirty=%-5d verified=%-6d accepted=%v%s\n",
		rep.Generation, rep.Mode, rep.ActiveScheme, s.N(), s.M(), rep.Dirty, rep.Verified, rep.Accepted, extra)
}
