// Command planarcert is the command-line front end of the library.
//
// Usage:
//
//	planarcert gen -kind grid -n 24 > net.edges           # generate graphs
//	planarcert test < net.edges                           # planarity test
//	planarcert kuratowski < net.edges                     # extract witness
//	planarcert certify -scheme planarity < net.edges      # prove + verify
//	planarcert schemes                                    # list schemes
//
// Graphs are read and written as text edge lists ("u v" per line; see
// planarcert.ParseEdgeList).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "test":
		err = cmdTest()
	case "kuratowski":
		err = cmdKuratowski()
	case "certify":
		err = cmdCertify(os.Args[2:])
	case "schemes":
		for _, s := range planarcert.Schemes() {
			fmt.Println(s)
		}
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "planarcert:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: planarcert <command> [flags]

commands:
  gen        -kind {grid|tree|maximal|planar|outerplanar|complete|bipartite|wheel|cycle|path} -n N [-m M] [-seed S]
  test       read an edge list on stdin, report planarity/outerplanarity
  kuratowski read an edge list on stdin, print a K5/K3,3 subdivision witness
  certify    -scheme NAME [-adversary] : prove + run the 1-round verification
  schemes    list available proof-labeling schemes`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "planar", "graph family")
	n := fs.Int("n", 16, "number of nodes")
	m := fs.Int("m", 0, "number of edges (planar kind only; 0 = 2n-3)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	var err error
	switch *kind {
	case "grid":
		side := 1
		for side*side < *n {
			side++
		}
		g = gen.Grid(side, (*n+side-1)/side)
	case "tree":
		g = gen.RandomTree(*n, rng)
	case "maximal":
		g = gen.StackedTriangulation(*n, rng)
	case "planar":
		edges := *m
		if edges == 0 {
			edges = 2**n - 3
		}
		g, err = gen.RandomPlanar(*n, edges, rng)
	case "outerplanar":
		g = gen.RandomOuterplanar(*n, 0.7, rng)
	case "complete":
		g = gen.Complete(*n)
	case "bipartite":
		g = gen.CompleteBipartite(*n/2, (*n+1)/2)
	case "wheel":
		g = gen.Wheel(*n)
	case "cycle":
		g = gen.Cycle(*n)
	case "path":
		g = gen.Path(*n)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	return planarcert.FromGraph(g).WriteEdgeList(os.Stdout)
}

func readNetwork() (*planarcert.Network, error) {
	return planarcert.ParseEdgeList(os.Stdin)
}

func cmdTest() error {
	net, err := readNetwork()
	if err != nil {
		return err
	}
	fmt.Printf("n=%d m=%d connected=%v\n", net.N(), net.M(), net.Connected())
	fmt.Printf("planar:      %v\n", net.IsPlanar())
	fmt.Printf("outerplanar: %v\n", net.IsOuterplanar())
	return nil
}

func cmdKuratowski() error {
	net, err := readNetwork()
	if err != nil {
		return err
	}
	w, err := net.Kuratowski()
	if err != nil {
		return err
	}
	fmt.Printf("kind: %s\n", w.Kind)
	fmt.Printf("branch vertices: %v\n", w.Branch)
	for i, p := range w.Paths {
		fmt.Printf("path %d: %v\n", i, p)
	}
	return nil
}

func cmdCertify(args []string) error {
	fs := flag.NewFlagSet("certify", flag.ExitOnError)
	scheme := fs.String("scheme", "planarity", "proof-labeling scheme")
	adversary := fs.Bool("adversary", false, "also run a random-certificate attack")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := readNetwork()
	if err != nil {
		return err
	}
	certs, err := planarcert.Certify(net, planarcert.SchemeName(*scheme))
	if err != nil {
		return fmt.Errorf("prover: %w", err)
	}
	report, err := planarcert.Verify(net, planarcert.SchemeName(*scheme), certs)
	if err != nil {
		return err
	}
	fmt.Printf("scheme:      %s\n", *scheme)
	fmt.Printf("accepted:    %v\n", report.Accepted)
	fmt.Printf("max cert:    %d bits\n", report.MaxCertBits)
	fmt.Printf("avg cert:    %.1f bits\n", report.AvgCertBits)
	fmt.Printf("messages:    %d (1 round)\n", report.Messages)
	if !report.Accepted {
		fmt.Printf("rejecting:   %v\n", report.Rejecting)
	}
	if *adversary {
		rng := rand.New(rand.NewSource(99))
		forged := planarcert.Certificates{}
		for _, id := range net.IDs() {
			nbits := rng.Intn(200)
			data := make([]byte, (nbits+7)/8)
			rng.Read(data)
			forged[id] = planarcert.Certificate{Data: data, Bits: nbits}
		}
		att, err := planarcert.Verify(net, planarcert.SchemeName(*scheme), forged)
		if err != nil {
			return err
		}
		fmt.Printf("adversary:   accepted=%v (%d rejecting)\n", att.Accepted, len(att.Rejecting))
	}
	return nil
}
