package planarcert_test

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	planarcert "github.com/planarcert/planarcert"
)

func wireTestUpdates() []planarcert.Update {
	return []planarcert.Update{
		planarcert.NodeAdd(9),
		planarcert.EdgeAdd(0, 9),
		planarcert.EdgeRemove(3, 4),
		planarcert.EdgeAdd(-5, 1<<40),
	}
}

func TestWireUpdatesFrameRoundTrip(t *testing.T) {
	for _, mode := range []string{"", "apply", "queue"} {
		frame, err := planarcert.EncodeUpdatesFrame(mode, wireTestUpdates())
		if err != nil {
			t.Fatal(err)
		}
		gotMode, got, err := planarcert.DecodeUpdatesFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		wantMode := mode
		if wantMode == "" {
			wantMode = "apply"
		}
		if gotMode != wantMode {
			t.Fatalf("mode %q, want %q", gotMode, wantMode)
		}
		if !reflect.DeepEqual(got, wireTestUpdates()) {
			t.Fatalf("updates %+v", got)
		}
		again, err := planarcert.EncodeUpdatesFrame(gotMode, got)
		if err != nil {
			t.Fatal(err)
		}
		if mode != "" && !bytes.Equal(again, frame) {
			t.Fatalf("re-encode differs")
		}
	}
	if _, err := planarcert.EncodeUpdatesFrame("bogus", nil); err == nil {
		t.Fatal("encoded bogus mode")
	}
	if _, _, err := planarcert.DecodeUpdatesFrame([]byte("PCWFgarbage........")); err == nil {
		t.Fatal("decoded garbage")
	}
}

// wireTestReport builds a SessionReport with every field set, including
// the rejection map, to exercise the full codec surface.
func wireTestReport() *planarcert.SessionReport {
	return &planarcert.SessionReport{
		Generation:      17,
		Mode:            "repair",
		ActiveScheme:    planarcert.SchemePlanarity,
		Updates:         4,
		Dirty:           2,
		Verified:        9,
		FullVerify:      true,
		Accepted:        false,
		CacheGeneration: 3,
		RepairFallback:  "reprove",
		Verification: &planarcert.Report{
			Accepted:    false,
			MaxCertBits: 128,
			AvgCertBits: 96.25,
			Messages:    18,
			MaxMsgBits:  128,
			Rejecting:   []planarcert.NodeID{2, 5},
			Reasons:     map[planarcert.NodeID]string{5: "orientation", 2: "distance"},
		},
	}
}

func TestWireBatchAckFrameRoundTrip(t *testing.T) {
	for _, ack := range []*planarcert.WireBatchAck{
		{Queued: 12, Pending: 40},
		{Queued: 4, Elapsed: 1500 * time.Microsecond, Report: wireTestReport()},
	} {
		frame, err := planarcert.EncodeBatchAckFrame(ack)
		if err != nil {
			t.Fatal(err)
		}
		got, err := planarcert.DecodeBatchAckFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ack) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, ack)
		}
	}
}

func TestWireScannerStream(t *testing.T) {
	var stream []byte
	hello, err := planarcert.EncodeWatchAckFrame(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = hello // ack frames are client->server; scanner must reject them below

	ev1, err := planarcert.EncodeEventFrame(7, wireTestReport())
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := planarcert.EncodeEventFrame(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	stream = append(stream, ev1...)
	stream = append(stream, ev2...)

	sc := planarcert.NewWireScanner(bytes.NewReader(stream))
	msg, err := sc.Next()
	if err != nil || msg.Event == nil {
		t.Fatalf("first: %+v, %v", msg, err)
	}
	if msg.Event.Version != 7 || !reflect.DeepEqual(msg.Event.Report, wireTestReport()) {
		t.Fatalf("event 1: %+v", msg.Event)
	}
	msg, err = sc.Next()
	if err != nil || msg.Event == nil || msg.Event.Version != 8 {
		t.Fatalf("second: %+v, %v", msg, err)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("end: %v, want io.EOF", err)
	}

	// Client->server kinds on a watch stream are a protocol violation.
	sc = planarcert.NewWireScanner(bytes.NewReader(hello))
	if _, err := sc.Next(); err == nil {
		t.Fatal("scanner accepted an ack frame")
	}
}

// FuzzWireRoundTrip drives the public codec with arbitrary batches:
// encode->decode->encode must be byte-identical (the format is
// canonical), and applying the decoded batch to a session must yield a
// report identical to applying the original (decode-then-apply parity).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 1, 3, 4, 2, 5, 0})
	f.Add([]byte{1, 2, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 || len(data) > 120 {
			t.Skip()
		}
		mode := "apply"
		if data[0]%2 == 1 {
			mode = "queue"
		}
		const nodes = 8
		var updates []planarcert.Update
		for i := 1; i+2 < len(data); i += 3 {
			a := planarcert.NodeID(data[i+1] % nodes)
			b := planarcert.NodeID(data[i+2] % nodes)
			switch data[i] % 3 {
			case 0:
				updates = append(updates, planarcert.EdgeAdd(a, b))
			case 1:
				updates = append(updates, planarcert.EdgeRemove(a, b))
			case 2:
				updates = append(updates, planarcert.NodeAdd(a))
			}
		}
		frame, err := planarcert.EncodeUpdatesFrame(mode, updates)
		if err != nil {
			t.Fatal(err)
		}
		gotMode, got, err := planarcert.DecodeUpdatesFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		again, err := planarcert.EncodeUpdatesFrame(gotMode, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, frame) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", again, frame)
		}

		// Parity: the decoded batch is the original batch (NodeAdd B is
		// normalized to 0 on the wire), so applying it drives a session
		// exactly like the original. The engine's certificate sizes are not
		// bit-deterministic across runs, so compare the updates and the
		// deterministic report fields rather than full report JSON.
		want := append([]planarcert.Update(nil), updates...)
		for i := range want {
			if want[i].Op == planarcert.OpAddNode {
				want[i].B = 0
			}
		}
		if len(got) != 0 || len(want) != 0 {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("decoded updates differ:\n got %+v\nwant %+v", got, want)
			}
		}
		a := wireFuzzSession(t, nodes)
		b := wireFuzzSession(t, nodes)
		repA, errA := a.Apply(want)
		repB, errB := b.Apply(got)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("apply parity: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if repA.Generation != repB.Generation || repA.Accepted != repB.Accepted ||
			repA.Updates != repB.Updates || repA.Dirty != repB.Dirty {
			t.Fatalf("report parity:\n got %+v\nwant %+v", repB, repA)
		}
	})
}

// wireFuzzSession builds a small path-graph session for parity checks.
func wireFuzzSession(t *testing.T, nodes planarcert.NodeID) *planarcert.Session {
	t.Helper()
	net := planarcert.NewNetwork()
	for id := planarcert.NodeID(0); id < nodes; id++ {
		if err := net.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	for id := planarcert.NodeID(1); id < nodes; id++ {
		if err := net.AddEdge(id-1, id); err != nil {
			t.Fatal(err)
		}
	}
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}
