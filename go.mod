module github.com/planarcert/planarcert

go 1.24
