package planarcert_test

import (
	"fmt"
	"math/rand"
	"testing"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/gen"
)

// findOscillationEdge locates an edge whose removal the session absorbs
// as a localized repair, and leaves the session back in its original
// topology. Tree edges and wide chords fall back to re-proves and are
// skipped.
func findOscillationEdge(b *testing.B, s *planarcert.Session) (planarcert.NodeID, planarcert.NodeID) {
	b.Helper()
	net := s.Network()
	// Nodes stacked late sit deep in the triangulation, so their chords
	// are narrow and repair-friendly; walk identifiers from the end.
	edges := make([][2]planarcert.NodeID, 0, 48)
	ids := net.IDs()
	for i := len(ids) - 1; i >= 0 && len(edges) < 48; i-- {
		a := ids[i]
		for _, nb := range net.Neighbors(a) {
			edges = append(edges, [2]planarcert.NodeID{a, nb})
			break // one candidate per node keeps the probe set diverse
		}
	}
	for _, e := range edges {
		rep, err := s.Apply([]planarcert.Update{planarcert.EdgeRemove(e[0], e[1])})
		if err != nil {
			b.Fatal(err)
		}
		back, err := s.Apply([]planarcert.Update{planarcert.EdgeAdd(e[0], e[1])})
		if err != nil {
			b.Fatal(err)
		}
		if !back.Accepted {
			b.Fatalf("restoring edge {%d,%d} lost certification", e[0], e[1])
		}
		if rep.Mode == "repair" && (back.Mode == "repair" || back.Mode == "cache") {
			return e[0], e[1]
		}
	}
	b.Fatal("no oscillation edge absorbed as a repair")
	return 0, 0
}

// BenchmarkDynamicUpdate measures the steady-state cost of a
// single-edge update absorbed by the incremental session — localized
// repair plus frontier verification — against the one-shot pipeline
// (full Certify + full Verify) on the same triangulation. The
// acceptance bar of the dynamic subsystem is >= 10x at n = 50000.
func BenchmarkDynamicUpdate(b *testing.B) {
	// The triangulations are built lazily inside the sub-benchmarks so a
	// -bench filter (CI runs only the small sizes) never pays for the
	// 50k-node construction.
	network := func(n int) *planarcert.Network {
		rng := rand.New(rand.NewSource(42))
		return planarcert.FromGraph(gen.StackedTriangulation(n, rng))
	}
	for _, n := range []int{1024, 8192, 50000} {
		b.Run(fmt.Sprintf("n=%d/session", n), func(b *testing.B) {
			net := network(n)
			s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
			if err != nil {
				b.Fatal(err)
			}
			if !s.Certified() {
				b.Fatalf("initial certification failed: %+v", s.Last())
			}
			u, v := findOscillationEdge(b, s)
			verified := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var up planarcert.Update
				if i%2 == 0 {
					up = planarcert.EdgeRemove(u, v)
				} else {
					up = planarcert.EdgeAdd(u, v)
				}
				rep, err := s.Apply([]planarcert.Update{up})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Accepted {
					b.Fatalf("update %d rejected: %+v", i, rep)
				}
				verified += rep.Verified
			}
			b.StopTimer()
			b.ReportMetric(float64(verified)/float64(b.N), "verified/op")
			if b.N%2 == 1 { // restore the original topology
				if _, err := s.Apply([]planarcert.Update{planarcert.EdgeAdd(u, v)}); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("n=%d/full", n), func(b *testing.B) {
			net := network(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := planarcert.CertifyAndVerify(net, planarcert.SchemePlanarity)
				if err != nil || !rep.Accepted {
					b.Fatalf("full pipeline failed: %v", err)
				}
			}
			b.ReportMetric(float64(net.N()), "verified/op")
		})
	}
}

// BenchmarkDynamicCacheOscillation pins the cache path: repair is
// disabled, so every update re-proves until the oscillation settles
// onto two generation-stamped cache entries.
func BenchmarkDynamicCacheOscillation(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	net := planarcert.FromGraph(gen.StackedTriangulation(4096, rng))
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{},
		planarcert.WithRepairThreshold(-1))
	if err != nil {
		b.Fatal(err)
	}
	ids := net.IDs()
	var u, v planarcert.NodeID
	found := false
	for _, a := range ids {
		for _, nb := range net.Neighbors(a) {
			// Warm both cache entries with one full oscillation.
			if _, err := s.Apply([]planarcert.Update{planarcert.EdgeRemove(a, nb)}); err != nil {
				b.Fatal(err)
			}
			rep, err := s.Apply([]planarcert.Update{planarcert.EdgeAdd(a, nb)})
			if err != nil {
				b.Fatal(err)
			}
			if s.Certified() && rep.Accepted {
				u, v, found = a, nb, true
			}
			break
		}
		if found {
			break
		}
	}
	if !found {
		b.Fatal("no oscillation edge found")
	}
	if _, err := s.Apply([]planarcert.Update{planarcert.EdgeRemove(u, v)}); err != nil {
		b.Fatal(err)
	}
	if _, err := s.Apply([]planarcert.Update{planarcert.EdgeAdd(u, v)}); err != nil {
		b.Fatal(err)
	}
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var up planarcert.Update
		if i%2 == 0 {
			up = planarcert.EdgeRemove(u, v)
		} else {
			up = planarcert.EdgeAdd(u, v)
		}
		rep, err := s.Apply([]planarcert.Update{up})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Mode == "cache" {
			hits++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(hits)/float64(b.N)*100, "cachehit%")
	if b.N%2 == 1 {
		if _, err := s.Apply([]planarcert.Update{planarcert.EdgeAdd(u, v)}); err != nil {
			b.Fatal(err)
		}
	}
}
