package planarcert

import (
	"testing"

	"github.com/planarcert/planarcert/internal/obs"
)

// TestSessionTraceThreading pins the public tracing contract: a span
// installed via Session.Trace is consumed by exactly one batch, carries
// the absorption mode and counts as attributes, and has the engine's
// sweep (with its budget-wait child) plus the prover's spans nested
// under it.
func TestSessionTraceThreading(t *testing.T) {
	n := NewNetwork()
	for id := NodeID(0); id < 50; id++ {
		if err := n.AddNode(id); err != nil {
			t.Fatal(err)
		}
		if id > 0 {
			if err := n.AddEdge(id-1, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := NewSession(n, SchemePlanarity, EngineConfig{Parallel: true, Workers: 2, ShardSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTracer(TracerConfig{Ring: 4})
	sp := tr.Start("sess", obs.SpanBatch)
	s.Trace(sp)
	rep, err := s.Apply([]Update{EdgeAdd(0, 10)})
	if err != nil {
		t.Fatal(err)
	}
	sp.End()

	if mode, _ := sp.StrAttr("mode"); mode != rep.Mode {
		t.Fatalf("span mode %q != report mode %q", mode, rep.Mode)
	}
	if v, _ := sp.IntAttr("verified"); v != int64(rep.Verified) {
		t.Fatalf("span verified %d != report %d", v, rep.Verified)
	}
	var sweep *TraceSpan
	for _, c := range sp.Children() {
		if c.Name() == obs.SpanSweep {
			sweep = c
		}
	}
	if sweep == nil {
		t.Fatalf("no sweep under traced batch (children %v)", sp.Children())
	}
	found := false
	for _, c := range sweep.Children() {
		if c.Name() == obs.SpanBudgetWait {
			found = true
		}
	}
	if !found {
		t.Fatal("parallel sweep recorded no budget-wait child")
	}

	// The span is one-shot: the next batch must not touch it.
	before := len(sp.Children())
	if _, err := s.Apply([]Update{EdgeAdd(0, 20)}); err != nil {
		t.Fatal(err)
	}
	if got := len(sp.Children()); got != before {
		t.Fatalf("second batch reused the consumed span (%d -> %d children)", before, got)
	}
}
