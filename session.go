package planarcert

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dynamic"
	"github.com/planarcert/planarcert/internal/pls"
)

// UpdateOp identifies one kind of live topology update.
type UpdateOp int

// Supported update operations.
const (
	OpAddEdge UpdateOp = iota
	OpRemoveEdge
	OpAddNode
)

// Update is one entry of a Session's update log. OpAddNode uses only A.
type Update struct {
	Op   UpdateOp
	A, B NodeID
}

// EdgeAdd returns an edge-insertion update.
func EdgeAdd(a, b NodeID) Update { return Update{Op: OpAddEdge, A: a, B: b} }

// EdgeRemove returns an edge-removal update.
func EdgeRemove(a, b NodeID) Update { return Update{Op: OpRemoveEdge, A: a, B: b} }

// NodeAdd returns a node-addition update.
func NodeAdd(id NodeID) Update { return Update{Op: OpAddNode, A: id} }

func (u Update) internal() (dynamic.Update, error) {
	switch u.Op {
	case OpAddEdge:
		return dynamic.Update{Op: dynamic.AddEdge, A: u.A, B: u.B}, nil
	case OpRemoveEdge:
		return dynamic.Update{Op: dynamic.RemoveEdge, A: u.A, B: u.B}, nil
	case OpAddNode:
		return dynamic.Update{Op: dynamic.AddNode, A: u.A}, nil
	default:
		return dynamic.Update{}, fmt.Errorf("planarcert: unknown update op %d", u.Op)
	}
}

// SessionReport describes how one update batch was absorbed. The JSON
// field names are part of the planarcertd wire format (the watch stream
// emits one SessionReport per flushed batch).
type SessionReport struct {
	// Generation counts absorbed batches (0 is the initial certification).
	Generation uint64 `json:"generation"`
	// Mode is how the batch was absorbed: "noop", "repair" (localized
	// repair + frontier verification), "cache" (certificate cache hit),
	// "reprove" (full re-prove), "flip" (re-prove under the counterpart
	// scheme after planarity flipped), or "uncertified".
	Mode string `json:"mode"`
	// ActiveScheme is the scheme certifying the network after the batch.
	ActiveScheme SchemeName `json:"active_scheme"`
	// Updates is the number of log entries absorbed.
	Updates int `json:"updates"`
	// Dirty counts the nodes whose certificates changed.
	Dirty int `json:"dirty"`
	// Verified counts the nodes whose verifier re-ran.
	Verified int `json:"verified"`
	// FullVerify reports whether the whole network was re-verified.
	FullVerify bool `json:"full_verify"`
	// Accepted is the verification verdict.
	Accepted bool `json:"accepted"`
	// Verification carries the verification details (nil when nothing
	// ran, e.g. a noop batch).
	Verification *Report `json:"verification,omitempty"`
	// CacheGeneration is the generation stamp of the cache entry that
	// served a "cache" batch.
	CacheGeneration uint64 `json:"cache_generation,omitempty"`
	// RepairFallback explains why a localized repair was abandoned.
	RepairFallback string `json:"repair_fallback,omitempty"`
	// ProveErr is the prover failure of an "uncertified" batch.
	ProveErr string `json:"prove_err,omitempty"`
}

func sessionReportOf(r *dynamic.Report) *SessionReport {
	sr := &SessionReport{
		Generation:      r.Generation,
		Mode:            string(r.Mode),
		ActiveScheme:    SchemeName(r.Scheme),
		Updates:         r.Updates,
		Dirty:           r.Dirty,
		Verified:        r.Verified,
		FullVerify:      r.FullVerify,
		Accepted:        r.Accepted,
		CacheGeneration: r.CacheGeneration,
		RepairFallback:  r.RepairFallback,
	}
	if r.Outcome != nil {
		sr.Verification = reportOf(r.Outcome)
	}
	if r.ProveErr != nil {
		sr.ProveErr = r.ProveErr.Error()
	}
	return sr
}

// SessionOption tunes a Session beyond the engine configuration.
type SessionOption func(*sessionOpts)

type sessionOpts struct {
	repairThreshold int
	cacheSize       int
	noFlip          bool
}

// WithRepairThreshold bounds the localized-repair scope per batch
// (ranks scanned during interval patching, nodes touched during tree
// surgery). Zero keeps the default; negative disables repair so every
// effective batch re-proves (or hits the cache).
func WithRepairThreshold(k int) SessionOption {
	return func(o *sessionOpts) { o.repairThreshold = k }
}

// WithCacheSize bounds the certificate cache (certified topologies
// remembered by fingerprint). Zero keeps the default; negative disables
// the cache.
func WithCacheSize(k int) SessionOption {
	return func(o *sessionOpts) { o.cacheSize = k }
}

// WithoutFlip pins the session to its configured scheme instead of
// flipping between the planarity and non-planarity schemes when
// planarity itself flips.
func WithoutFlip() SessionOption {
	return func(o *sessionOpts) { o.noFlip = true }
}

// Session maintains a network and its certificates across a live stream
// of updates. Instead of re-proving and re-verifying the whole network
// per change (the one-shot Certify/Verify pipeline), a session computes
// the dirty region of each update batch, repairs certificates locally
// when it can — chord surgery on the spanning-path proof for
// planarity, spanning-tree surgery for the tree schemes — re-verifies
// only the dirty region's 1-hop closure through the sharded engine, and
// falls back to a full re-prove (with scheme flipping and a
// generation-stamped certificate cache) when it cannot.
//
// A Session is not safe for concurrent use: callers driving one session
// from several goroutines must serialize every method behind one mutex
// (internal/server does exactly that for planarcertd). Distinct
// sessions are independent and may run concurrently; give them a shared
// EngineConfig.Budget to bound their combined verification parallelism.
type Session struct {
	d *dynamic.Session
}

// NewSession clones the network and certifies it under the named
// scheme. The session is returned even when the initial prover fails
// (empty or uncertifiable network) — it reports uncertified until
// updates bring the network into a certifiable class. For the planarity
// and non-planarity schemes the session flips between the two when the
// network crosses the planarity boundary (disable with WithoutFlip).
func NewSession(n *Network, name SchemeName, cfg EngineConfig, opts ...SessionOption) (*Session, error) {
	scheme, err := schemeByName(name)
	if err != nil {
		return nil, err
	}
	var o sessionOpts
	for _, opt := range opts {
		opt(&o)
	}
	var counterpart pls.Scheme
	if !o.noFlip {
		switch name {
		case SchemePlanarity:
			counterpart = core.NonPlanarScheme{}
		case SchemeNonPlanarity:
			counterpart = core.PlanarScheme{}
		}
	}
	d, err := dynamic.NewSession(n.g.Clone(), dynamic.Config{
		Scheme:          scheme,
		Counterpart:     counterpart,
		RepairThreshold: o.repairThreshold,
		CacheSize:       o.cacheSize,
		EngineOpts:      cfg.options(),
	})
	if err != nil {
		return nil, err
	}
	return &Session{d: d}, nil
}

// SessionSnapshot is the restorable state of a Session: everything a
// persistence layer must save to rebuild the session after a restart.
// The planarcertd WAL layer serialises it (keyed by the topology
// fingerprint) and hands it back to RestoreSession on boot.
type SessionSnapshot struct {
	// Scheme is the scheme the session was created with.
	Scheme SchemeName
	// ActiveScheme is the scheme certifying the network at snapshot time
	// (differs from Scheme after a planarity flip).
	ActiveScheme SchemeName
	// Generation is the number of batches absorbed at snapshot time.
	Generation uint64
	// Network is a deep copy of the live network.
	Network *Network
	// Certificates is a deep copy of the assignment (nil when the
	// session was uncertified).
	Certificates Certificates
}

// Snapshot captures the session's restorable state as deep copies, so
// the caller can serialise it while the session keeps absorbing
// batches.
func (s *Session) Snapshot() *SessionSnapshot {
	return &SessionSnapshot{
		Scheme:       SchemeName(s.d.Scheme().Name()),
		ActiveScheme: s.ActiveScheme(),
		Generation:   s.Generation(),
		Network:      s.Network(),
		Certificates: s.Certificates(),
	}
}

// RestoreSession rebuilds a session from a snapshot. Restoration is
// self-validating: the snapshot's certificates are installed and the
// active scheme's full 1-round verification sweep runs over them — the
// exact soundness check the proof-labeling scheme defines — so a stale
// or corrupted assignment is caught semantically and the session falls
// back to re-proving from the snapshot's network. The returned session
// is therefore always in a consistent state; check Certified or
// Last().Mode ("restore" vs "reprove"/"flip"/"uncertified") to see
// which path it took.
func RestoreSession(snap *SessionSnapshot, cfg EngineConfig, opts ...SessionOption) (*Session, error) {
	scheme, err := schemeByName(snap.Scheme)
	if err != nil {
		return nil, err
	}
	var o sessionOpts
	for _, opt := range opts {
		opt(&o)
	}
	var counterpart pls.Scheme
	if !o.noFlip {
		switch snap.Scheme {
		case SchemePlanarity:
			counterpart = core.NonPlanarScheme{}
		case SchemeNonPlanarity:
			counterpart = core.PlanarScheme{}
		}
	}
	var active pls.Scheme
	if snap.ActiveScheme != "" && snap.ActiveScheme != snap.Scheme {
		if active, err = schemeByName(snap.ActiveScheme); err != nil {
			return nil, err
		}
	}
	certs := cloneCertificates(snap.Certificates)
	d, err := dynamic.Restore(snap.Network.g.Clone(), dynamic.Config{
		Scheme:          scheme,
		Counterpart:     counterpart,
		RepairThreshold: o.repairThreshold,
		CacheSize:       o.cacheSize,
		EngineOpts:      cfg.options(),
	}, active, map[NodeID]Certificate(certs), snap.Generation)
	if err != nil {
		return nil, err
	}
	return &Session{d: d}, nil
}

// Fingerprint returns the session's 128-bit order-independent topology
// fingerprint (the snapshot and certificate-cache key), maintained in
// O(1) per update.
func (s *Session) Fingerprint() (hi, lo uint64) { return s.d.Fingerprint() }

// Apply queues the updates and absorbs the whole pending log as one
// batch. A structurally invalid log (unknown endpoint, duplicate edge
// or node, self-loop) is rejected and discarded without touching the
// network.
func (s *Session) Apply(updates []Update) (*SessionReport, error) {
	// Convert the whole batch before queueing any of it, so a bad update
	// cannot leave a partial prefix in the log.
	converted := make([]dynamic.Update, len(updates))
	for i, u := range updates {
		iu, err := u.internal()
		if err != nil {
			return nil, err
		}
		converted[i] = iu
	}
	for _, iu := range converted {
		s.d.Queue(iu)
	}
	rep, err := s.d.Flush()
	if err != nil {
		return nil, err
	}
	return sessionReportOf(rep), nil
}

// Queue appends an update to the log without applying it; the next
// Apply or Flush absorbs the whole log as one batch.
func (s *Session) Queue(u Update) error {
	iu, err := u.internal()
	if err != nil {
		return err
	}
	s.d.Queue(iu)
	return nil
}

// Flush absorbs the queued update log as one batch.
func (s *Session) Flush() (*SessionReport, error) {
	rep, err := s.d.Flush()
	if err != nil {
		return nil, err
	}
	return sessionReportOf(rep), nil
}

// Network returns a deep copy of the live network.
func (s *Session) Network() *Network { return &Network{g: s.d.Graph().Clone()} }

// N returns the number of nodes.
func (s *Session) N() int { return s.d.Graph().N() }

// M returns the number of edges.
func (s *Session) M() int { return s.d.Graph().M() }

// Generation counts absorbed batches.
func (s *Session) Generation() uint64 { return s.d.Generation() }

// Certified reports whether the current assignment was accepted.
func (s *Session) Certified() bool { return s.d.Certified() }

// ActiveScheme returns the scheme currently certifying the network.
func (s *Session) ActiveScheme() SchemeName { return SchemeName(s.d.ActiveScheme().Name()) }

// Last returns the report of the most recent batch (generation 0 is the
// initial certification).
func (s *Session) Last() *SessionReport { return sessionReportOf(s.d.Last()) }

// RepairThreshold returns the current localized-repair scope bound (-1
// when repair is disabled).
func (s *Session) RepairThreshold() int { return s.d.RepairThreshold() }

// SetRepairThreshold rebounds the localized-repair scope for future
// batches, with WithRepairThreshold's semantics (0 restores the
// default, negative disables repair). Like every Session method it must
// be serialized with Apply/Flush by the caller; planarcertd's adaptive
// threshold controller calls it between batches when the per-mode
// latency feedback says repair is over- or under-scoped.
func (s *Session) SetRepairThreshold(k int) { s.d.SetRepairThreshold(k) }

// Certificates returns a deep copy of the current assignment, so
// callers mutating the map or its byte slices cannot corrupt the
// session's internal state.
func (s *Session) Certificates() Certificates {
	return cloneCertificates(Certificates(s.d.Certificates()))
}

// Verify re-runs the active scheme's full 1-round verification over the
// live network with the session's certificates — the parity baseline
// against a fresh Certify+Verify.
func (s *Session) Verify() *Report {
	return reportOf(s.d.VerifyFull())
}
