// Package planarcert is a library for compact distributed certification
// of planar graphs, implementing Feuilloley, Fraigniaud, Rapaport,
// Rémila, Montealegre and Todinca, "Compact Distributed Certification of
// Planar Graphs" (PODC 2020, arXiv:2005.05863).
//
// The library provides:
//
//   - proof-labeling schemes (PLS) with O(log n)-bit certificates for
//     planarity (Theorem 1), path-outerplanarity (Lemma 2),
//     non-planarity (the folklore Kuratowski scheme of Section 2), and
//     outerplanarity (the conclusion's extension);
//   - a linear-time planarity test with combinatorial-embedding
//     extraction and Kuratowski-subgraph witnesses;
//   - a synchronous CONGEST-style network simulator in which the 1-round
//     verification executes;
//   - the lower-bound constructions of Theorem 2 and the executable
//     pigeonhole attack (internal/lowerbound);
//   - a dMAM interactive-proof baseline in the style of Naor, Parter and
//     Yogev (internal/interactive).
//
// Quick start:
//
//	net := planarcert.NewNetwork()
//	for id := planarcert.NodeID(0); id < 4; id++ {
//		net.AddNode(id)
//	}
//	net.AddEdge(0, 1) // ... build any connected graph
//	certs, err := planarcert.Certify(net, planarcert.SchemePlanarity)
//	report := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
//	fmt.Println(report.Accepted, report.MaxCertBits)
package planarcert

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/dynamic"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/interactive"
	"github.com/planarcert/planarcert/internal/planarity"
	"github.com/planarcert/planarcert/internal/pls"
	"github.com/planarcert/planarcert/internal/preprocess"
	"github.com/planarcert/planarcert/internal/qos"
)

// NodeID identifies a node; identifiers are unique and drawn from a range
// polynomial in the network size, as in the paper's model.
type NodeID = graph.ID

// Certificate is a bit-exact certificate as assigned by a prover.
type Certificate = bits.Certificate

// Certificates maps every node to its certificate.
type Certificates map[NodeID]Certificate

// Network is an undirected connected network under certification.
type Network struct {
	g *graph.Graph
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{g: graph.New(0)} }

// AddNode adds a node with the given identifier.
func (n *Network) AddNode(id NodeID) error {
	_, err := n.g.AddNode(id)
	return err
}

// AddEdge adds an undirected edge between two existing nodes, given by
// their identifiers.
func (n *Network) AddEdge(a, b NodeID) error {
	ia, ok1 := n.g.IndexOf(a)
	ib, ok2 := n.g.IndexOf(b)
	if !ok1 || !ok2 {
		return fmt.Errorf("planarcert: unknown node in edge {%d,%d}", a, b)
	}
	return n.g.AddEdge(ia, ib)
}

// RemoveEdge removes the edge between a and b if present.
func (n *Network) RemoveEdge(a, b NodeID) bool {
	ia, ok1 := n.g.IndexOf(a)
	ib, ok2 := n.g.IndexOf(b)
	if !ok1 || !ok2 {
		return false
	}
	return n.g.RemoveEdge(ia, ib)
}

// HasNode reports whether a node with the given identifier exists.
func (n *Network) HasNode(id NodeID) bool {
	_, ok := n.g.IndexOf(id)
	return ok
}

// HasEdge reports whether the edge {a, b} exists.
func (n *Network) HasEdge(a, b NodeID) bool {
	ia, ok1 := n.g.IndexOf(a)
	ib, ok2 := n.g.IndexOf(b)
	return ok1 && ok2 && n.g.HasEdge(ia, ib)
}

// N returns the number of nodes.
func (n *Network) N() int { return n.g.N() }

// M returns the number of edges.
func (n *Network) M() int { return n.g.M() }

// Connected reports whether the network is connected.
func (n *Network) Connected() bool { return n.g.Connected() }

// IDs returns all node identifiers in insertion order.
func (n *Network) IDs() []NodeID { return n.g.IDs() }

// Edges returns all undirected edges as identifier pairs, each with the
// smaller identifier first, in insertion order.
func (n *Network) Edges() [][2]NodeID {
	out := make([][2]NodeID, 0, n.g.M())
	for _, e := range n.g.Edges() {
		a, b := n.g.IDOf(e.U), n.g.IDOf(e.V)
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]NodeID{a, b})
	}
	return out
}

// Neighbors returns the identifiers of a node's neighbors, sorted.
func (n *Network) Neighbors(id NodeID) []NodeID {
	idx, ok := n.g.IndexOf(id)
	if !ok {
		return nil
	}
	out := make([]NodeID, 0, n.g.Degree(idx))
	for _, v := range n.g.Neighbors(idx) {
		out = append(out, n.g.IDOf(v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns a deep copy.
func (n *Network) Clone() *Network { return &Network{g: n.g.Clone()} }

// Fingerprint returns the network's 128-bit order-independent topology
// fingerprint: the key under which sessions cache and snapshot
// certified topologies. Two networks with the same node identifiers and
// the same edges share a fingerprint regardless of construction order.
func (n *Network) Fingerprint() (hi, lo uint64) { return dynamic.FingerprintOf(n.g) }

// FromGraph wraps an internal graph (used by the cmd tools and tests
// inside this module).
func FromGraph(g *graph.Graph) *Network { return &Network{g: g} }

// Graph exposes the underlying graph to sibling packages in this module.
func (n *Network) Graph() *graph.Graph { return n.g }

// IsPlanar tests planarity (left-right algorithm, O(n)).
func (n *Network) IsPlanar() bool { return planarity.IsPlanar(n.g) }

// IsOuterplanar tests outerplanarity via the apex characterisation.
func (n *Network) IsOuterplanar() bool { return planarity.Outerplanar(n.g) }

// KuratowskiWitness is a subdivision of K5 or K3,3 proving non-planarity,
// expressed over node identifiers.
type KuratowskiWitness struct {
	Kind     string // "K5" or "K3,3"
	Branch   []NodeID
	Paths    [][]NodeID
	EdgeList [][2]NodeID
}

// Kuratowski extracts a non-planarity witness; it returns an error if the
// network is planar.
func (n *Network) Kuratowski() (*KuratowskiWitness, error) {
	w, err := planarity.Kuratowski(n.g)
	if err != nil {
		return nil, err
	}
	out := &KuratowskiWitness{Kind: w.Kind.String()}
	for _, b := range w.Branch {
		out.Branch = append(out.Branch, n.g.IDOf(b))
	}
	for _, p := range w.Paths {
		ids := make([]NodeID, len(p))
		for i, v := range p {
			ids[i] = n.g.IDOf(v)
		}
		out.Paths = append(out.Paths, ids)
	}
	for _, e := range w.Edges {
		out.EdgeList = append(out.EdgeList, [2]NodeID{n.g.IDOf(e.U), n.g.IDOf(e.V)})
	}
	return out, nil
}

// SchemeName selects one of the proof-labeling schemes.
type SchemeName string

// Available schemes.
const (
	SchemePlanarity       SchemeName = "planarity"
	SchemeNonPlanarity    SchemeName = "non-planarity"
	SchemeOuterplanarity  SchemeName = "outerplanarity"
	SchemePathOuterplanar SchemeName = "path-outerplanar"
	SchemeSpanningTree    SchemeName = "spanning-tree"
	SchemePath            SchemeName = "path"
)

// ErrUnknownScheme is returned for unrecognised scheme names.
var ErrUnknownScheme = errors.New("planarcert: unknown scheme")

// Schemes lists the available scheme names.
func Schemes() []SchemeName {
	return []SchemeName{
		SchemePlanarity, SchemeNonPlanarity, SchemeOuterplanarity,
		SchemePathOuterplanar, SchemeSpanningTree, SchemePath,
	}
}

func schemeByName(name SchemeName) (pls.Scheme, error) {
	switch name {
	case SchemePlanarity:
		return core.PlanarScheme{}, nil
	case SchemeNonPlanarity:
		return core.NonPlanarScheme{}, nil
	case SchemeOuterplanarity:
		return core.OuterplanarScheme{}, nil
	case SchemePathOuterplanar:
		return core.POScheme{}, nil
	case SchemeSpanningTree:
		return pls.SpanningTreeScheme{}, nil
	case SchemePath:
		return pls.PathScheme{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, name)
	}
}

// cloneCertificates deep-copies a certificate assignment: a fresh map
// whose Data slices share no backing array with the input.
func cloneCertificates(certs Certificates) Certificates {
	out := make(Certificates, len(certs))
	for id, c := range certs {
		data := make([]byte, len(c.Data))
		copy(data, c.Data)
		out[id] = Certificate{Data: data, Bits: c.Bits}
	}
	return out
}

// Certify runs the honest prover of the named scheme on the network.
// For networks outside the scheme's class it returns an error wrapping
// ErrNotInClass semantics. The returned map and its byte slices are
// defensive copies: callers may mutate them freely without corrupting
// any scheme- or session-internal state.
func Certify(n *Network, name SchemeName) (Certificates, error) {
	s, err := schemeByName(name)
	if err != nil {
		return nil, err
	}
	certs, err := s.Prove(n.g)
	if err != nil {
		return nil, err
	}
	return cloneCertificates(Certificates(certs)), nil
}

// Report summarises one verification round. The JSON field names are
// part of the planarcertd wire format.
type Report struct {
	// Accepted is the global verdict: true iff every node accepted.
	Accepted bool `json:"accepted"`
	// Rejecting lists the rejecting nodes in ascending index order.
	Rejecting []NodeID `json:"rejecting,omitempty"`
	// Reasons gives each rejecting node's first error.
	Reasons map[NodeID]string `json:"reasons,omitempty"`
	// MaxCertBits is the largest certificate, in bits (the paper's
	// O(log n) headline quantity).
	MaxCertBits int `json:"max_cert_bits"`
	// AvgCertBits is the mean certificate size over all nodes.
	AvgCertBits float64 `json:"avg_cert_bits"`
	// Messages counts the node-to-node messages of the single
	// verification round (each node ships its certificate to every
	// neighbor).
	Messages int `json:"messages"`
	// MaxMsgBits is the largest single message, in bits.
	MaxMsgBits int `json:"max_msg_bits"`
}

func reportOf(out *dist.Outcome) *Report {
	return &Report{
		Accepted:    out.AllAccept(),
		Rejecting:   out.Rejecting,
		Reasons:     out.Reasons,
		MaxCertBits: out.MaxCertBit,
		AvgCertBits: out.AvgCertBits(),
		Messages:    out.Messages,
		MaxMsgBits:  out.MaxMsgBit,
	}
}

// Verify runs the named scheme's 1-round distributed verification with
// the given (possibly adversarial) certificates.
func Verify(n *Network, name SchemeName, certs Certificates) (*Report, error) {
	return VerifyWith(n, name, certs, EngineConfig{})
}

// EngineConfig tunes the verification engine. The zero value picks the
// automatic mode: parallel execution across GOMAXPROCS workers on
// networks large enough to amortise the fan-out, sequential otherwise.
type EngineConfig struct {
	// Sequential forces single-goroutine verification.
	Sequential bool
	// Parallel forces worker-pool verification even on small networks.
	// Ignored if Sequential is set.
	Parallel bool
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// ShardSize is the number of consecutive nodes a worker claims at a
	// time (0 = the engine default).
	ShardSize int
	// FailFast stops verifying once any node has rejected. The report
	// still agrees with exhaustive mode on acceptance but may omit later
	// rejecting nodes.
	FailFast bool
	// Budget, when non-nil, draws this engine's extra parallel workers
	// from a shared pool, bounding the process-wide verification
	// parallelism across many concurrent sessions (the planarcertd
	// server gives every session the same budget). Verification never
	// blocks on an exhausted budget — it degrades toward sequential
	// execution instead.
	Budget *WorkerBudget
	// Claimant, when non-nil, draws the extra workers from the shared
	// budget under a named per-consumer identity and QoS class (see
	// WorkerBudget.Claimant): contended slots are granted by weighted
	// fair share across claimants instead of first-come-first-served.
	// Takes precedence over Budget.
	Claimant *BudgetClaimant
	// BudgetPatience, when positive, lets a sweep that finds the shared
	// Budget exhausted wait up to this long (on a side goroutine, so
	// the sweep itself keeps making progress) for one released slot
	// instead of giving it up immediately. The wait is measured on the
	// budget-wait tracing span and in planarcertd's budget-wait
	// histogram. Zero — the default — never waits.
	BudgetPatience time.Duration
	// Span, when non-nil, attaches this engine's tracing output (sweep,
	// round, and budget-wait child spans) to the given parent span. Use
	// it for one-shot VerifyWith calls; sessions trace per batch via
	// Session.Trace, which overrides this for the flush it covers.
	Span *TraceSpan
}

// WorkerBudget is a shared, bounded pool of verification-worker slots.
// Pass the same budget in the EngineConfig of many sessions (or
// VerifyWith calls) to cap their combined parallel fan-out: each
// verification keeps one worker unconditionally and takes extra workers
// only while budget slots are free, so with S slots and E concurrent
// verifications at most S+E workers are in flight. A WorkerBudget is
// safe for concurrent use; nil means unlimited.
type WorkerBudget struct {
	b *dist.Budget
}

// NewWorkerBudget returns a budget with the given number of extra-worker
// slots (clamped up to 1) and default QoS weights.
func NewWorkerBudget(slots int) *WorkerBudget {
	return &WorkerBudget{b: dist.NewBudget(slots)}
}

// NewWorkerBudgetWeights returns a budget with the given slot count
// (clamped up to 1) and per-class fair-share weights; classes missing
// from the map keep their default weight (16:4:1 for
// interactive:batch:background).
func NewWorkerBudgetWeights(slots int, weights map[QoSClass]int) *WorkerBudget {
	return &WorkerBudget{b: dist.NewBudgetWeights(slots, weights)}
}

// Slots returns the configured slot count.
func (w *WorkerBudget) Slots() int { return w.b.Slots() }

// InUse returns the number of slots currently held by running
// verifications.
func (w *WorkerBudget) InUse() int { return w.b.InUse() }

// QueueDepth returns the number of sweeps currently waiting for a slot.
func (w *WorkerBudget) QueueDepth() int { return w.b.Scheduler().QueueDepth() }

// GrantsByClass returns the cumulative slot grants per QoS class, for
// metrics exporters.
func (w *WorkerBudget) GrantsByClass() map[QoSClass]uint64 {
	return w.b.Scheduler().Grants()
}

// Claimant mints a named consumer identity on the budget in the given
// QoS class. Engines configured with EngineConfig.Claimant compete for
// the budget's contended slots by weighted fair share: a freed slot
// goes to the waiting claimant with the smallest virtual time, so one
// claimant's storm of sweeps cannot starve the others. One claimant per
// session is the intended granularity.
func (w *WorkerBudget) Claimant(name string, class QoSClass) *BudgetClaimant {
	return &BudgetClaimant{c: w.b.Claimant(name, class)}
}

// BudgetClaimant is a per-consumer identity on a WorkerBudget carrying
// a QoS class (see WorkerBudget.Claimant). Safe for concurrent use.
type BudgetClaimant struct {
	c *qos.Claimant
}

// Class returns the claimant's QoS class.
func (b *BudgetClaimant) Class() QoSClass { return b.c.Class() }

// QoSClass is a quality-of-service class for fair-share scheduling:
// interactive traffic outweighs batch, which outweighs background.
type QoSClass = qos.Class

// The QoS classes, from most to least latency-sensitive.
const (
	// QoSInteractive is for latency-sensitive foreground sessions.
	QoSInteractive = qos.Interactive
	// QoSBatch is the default class for ordinary sessions.
	QoSBatch = qos.Batch
	// QoSBackground is for bulk work that should yield to everything
	// else.
	QoSBackground = qos.Background
)

// ParseQoSClass maps a class name ("interactive", "batch",
// "background") to its QoSClass.
func ParseQoSClass(s string) (QoSClass, error) { return qos.ParseClass(s) }

func (c EngineConfig) options() []dist.Option {
	var opts []dist.Option
	switch {
	case c.Sequential:
		opts = append(opts, dist.Sequential())
	case c.Parallel:
		opts = append(opts, dist.Parallel(c.Workers))
	case c.Workers > 0:
		opts = append(opts, dist.Workers(c.Workers))
	}
	if c.ShardSize > 0 {
		opts = append(opts, dist.ShardSize(c.ShardSize))
	}
	if c.FailFast {
		opts = append(opts, dist.FailFast())
	}
	switch {
	case c.Claimant != nil:
		opts = append(opts, dist.LimitClaimant(c.Claimant.c))
	case c.Budget != nil:
		opts = append(opts, dist.Limit(c.Budget.b))
	}
	if c.BudgetPatience > 0 {
		opts = append(opts, dist.BudgetPatience(c.BudgetPatience))
	}
	if c.Span != nil {
		opts = append(opts, dist.WithSpan(c.Span))
	}
	return opts
}

// VerifyWith runs Verify on an engine configured by cfg, so callers can
// pin the execution mode (the benchmarks compare sequential against
// parallel on identical inputs) or trade complete rejection reports for
// fail-fast latency.
func VerifyWith(n *Network, name SchemeName, certs Certificates, cfg EngineConfig) (*Report, error) {
	s, err := schemeByName(name)
	if err != nil {
		return nil, err
	}
	eng := dist.NewEngine(n.g, cfg.options()...)
	return reportOf(eng.RunPLS(certs, s.Verify)), nil
}

// CertifyAndVerify is the honest end-to-end pipeline.
func CertifyAndVerify(n *Network, name SchemeName) (*Report, error) {
	certs, err := Certify(n, name)
	if err != nil {
		return nil, err
	}
	return Verify(n, name, certs)
}

// Broadcast floods an alarm from the given nodes and returns the number
// of synchronous rounds until every node is informed.
func (n *Network) Broadcast(sources []NodeID) (int, error) {
	idxs := make([]int, 0, len(sources))
	for _, id := range sources {
		idx, ok := n.g.IndexOf(id)
		if !ok {
			return 0, fmt.Errorf("planarcert: unknown source %d", id)
		}
		idxs = append(idxs, idx)
	}
	return dist.NewEngine(n.g).Broadcast(idxs)
}

// PreprocessReport summarises the cost of self-certification: the rounds,
// messages and bits the network spends computing its own certificates
// (leader election, topology convergecast, central proving at the leader,
// certificate downcast) — the paper's remark that no external prover is
// needed.
type PreprocessReport struct {
	Rounds     int
	Messages   int
	TotalBits  int
	MaxMsgBits int
	LeaderID   NodeID
}

// SelfCertify lets the network compute its own certificates in a
// distributed preprocessing phase, then returns them with the cost
// report. The certificates verify exactly like Certify's.
func SelfCertify(n *Network, name SchemeName) (Certificates, *PreprocessReport, error) {
	s, err := schemeByName(name)
	if err != nil {
		return nil, nil, err
	}
	certs, stats, err := preprocess.Run(s, n.g)
	if err != nil {
		return nil, nil, err
	}
	return cloneCertificates(Certificates(certs)), &PreprocessReport{
		Rounds:     stats.Rounds,
		Messages:   stats.Messages,
		TotalBits:  stats.TotalBits,
		MaxMsgBits: stats.MaxMsgBit,
		LeaderID:   stats.LeaderID,
	}, nil
}

// DMAMReport summarises a dMAM interactive-proof execution for
// comparison with the PLS (Experiment E2).
type DMAMReport struct {
	Accepted     bool
	Interactions int
	RandomBits   int
	MaxCertBits  int
	SoundnessErr float64
}

// RunPlanarityDMAM executes the interactive baseline with the given seed
// for Arthur's challenge.
func RunPlanarityDMAM(n *Network, seed int64) (*DMAMReport, error) {
	st, err := interactive.Run(interactive.PlanarityDMAM{}, n.g, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &DMAMReport{
		Accepted:     st.Outcome.AllAccept(),
		Interactions: st.Interactions,
		RandomBits:   st.RandomBits,
		MaxCertBits:  st.MaxCertBit,
		SoundnessErr: st.SoundnessErr,
	}, nil
}

// ParseEdgeList reads a network from a text edge list: one "u v" pair of
// integer identifiers per line; blank lines and lines starting with '#'
// are ignored; isolated nodes can be declared on a line of their own.
func ParseEdgeList(r io.Reader) (*Network, error) {
	n := NewNetwork()
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		ids := make([]NodeID, 0, 2)
		for _, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("planarcert: line %d: %w", line, err)
			}
			ids = append(ids, NodeID(v))
		}
		switch len(ids) {
		case 1:
			if _, ok := n.g.IndexOf(ids[0]); !ok {
				if err := n.AddNode(ids[0]); err != nil {
					return nil, err
				}
			}
		case 2:
			for _, id := range ids {
				if _, ok := n.g.IndexOf(id); !ok {
					if err := n.AddNode(id); err != nil {
						return nil, err
					}
				}
			}
			if !n.HasEdge(ids[0], ids[1]) {
				if err := n.AddEdge(ids[0], ids[1]); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("planarcert: line %d: want 1 or 2 ids, got %d", line, len(ids))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return n, nil
}

// WriteEdgeList writes the network in the ParseEdgeList format.
func (n *Network) WriteEdgeList(w io.Writer) error {
	for _, e := range n.g.Edges() {
		if _, err := fmt.Fprintf(w, "%d %d\n", n.g.IDOf(e.U), n.g.IDOf(e.V)); err != nil {
			return err
		}
	}
	for v := 0; v < n.g.N(); v++ {
		if n.g.Degree(v) == 0 {
			if _, err := fmt.Fprintf(w, "%d\n", n.g.IDOf(v)); err != nil {
				return err
			}
		}
	}
	return nil
}
