package planarcert

import "github.com/planarcert/planarcert/internal/obs"

// Tracer collects completed traces into a fixed-size ring buffer behind
// an always-on sampler (keep every Nth trace, always keep slow ones).
// It is the type planarcertd serves on /debug/traces; library users can
// attach one to sessions via Session.Trace and EngineConfig.Span. A nil
// *Tracer is valid and records nothing.
type Tracer = obs.Tracer

// TraceSpan is one timed, attributed, nested phase of a traced
// operation. All methods are nil-safe: instrumented code paths cost one
// pointer test when tracing is off. Spans are handed out by
// Tracer.Start and TraceSpan.Child; the creator of a span must End it.
type TraceSpan = obs.Span

// TracerConfig parameterises NewTracer: ring size, sampling rate, and
// the slow-trace threshold above which every trace is retained.
type TracerConfig = obs.Config

// TraceRecord is one retained trace: its root span plus the session
// name and slow-trace marker it was collected under.
type TraceRecord = obs.TraceRecord

// NewTracer builds a tracer. The zero TracerConfig keeps 256 traces,
// samples every trace, and always retains traces of 100ms or more.
func NewTracer(cfg TracerConfig) *Tracer { return obs.New(cfg) }

// Trace installs a tracing span for this session's next Apply or Flush:
// the batch's verification sweeps, rounds, budget waits, prover, and
// repair attempts record child spans under it, and the absorption
// outcome (mode, updates, dirty, verified) is stamped as attributes.
// Exactly one batch consumes the span; the caller remains responsible
// for ending it. A nil span records nothing.
func (s *Session) Trace(sp *TraceSpan) { s.d.TraceNext(sp) }
