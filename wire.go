package planarcert

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/planarcert/planarcert/internal/wire"
)

// WireContentType is the HTTP media type of planarcertd's binary frame
// protocol. POST .../updates bodies with this Content-Type are decoded
// as a single update-batch frame (and acked with a batch-ack frame);
// .../watch?format=binary streams hello/event frames under it. The byte
// format is frozen — see internal/wire and ARCHITECTURE.md.
const WireContentType = wire.ContentType

// WireBatchAck is the decoded binary response of POST .../updates: the
// frame counterpart of the JSON UpdatesResponse.
type WireBatchAck struct {
	// Queued counts the updates accepted by the request.
	Queued int
	// Pending counts updates still queued after the request (queue mode).
	Pending int
	// Elapsed is the server-side batch execution time (apply mode).
	Elapsed time.Duration
	// Report is the absorption report (apply mode only).
	Report *SessionReport
}

// WireHello is the decoded opening frame of a binary watch stream: the
// version-acknowledged subscription identity and how a resume was
// honored.
type WireHello struct {
	// Subscription identifies the subscription; resume with ?sub= and
	// acknowledge versions against it.
	Subscription uint64
	// Version is the session's latest event version at attach time.
	Version uint64
	// ResumeFrom is the version replay restarts after.
	ResumeFrom uint64
	// Reset reports that the server's replay ring no longer covered the
	// gap: only the latest event is replayed and the client must re-sync
	// full state (GET .../graph and .../certificates).
	Reset bool
}

// WireEvent is one decoded watch event: a session report stamped with
// its monotonically increasing version (the session generation).
type WireEvent struct {
	// Version orders the event; acknowledge it to advance the
	// subscription's replay cursor.
	Version uint64
	// Report is the batch absorption report.
	Report *SessionReport
}

// WireError is a decoded server failure frame.
type WireError struct {
	// Code is an HTTP-style status code.
	Code int
	// Message is the human-readable error.
	Message string
}

// WireMessage is one frame read from a binary watch stream; exactly one
// field is non-nil.
type WireMessage struct {
	// Hello opens the stream.
	Hello *WireHello
	// Event carries one versioned report.
	Event *WireEvent
	// Err reports a server-side failure.
	Err *WireError
}

// wireBatchMode maps the ?mode= query value onto the frozen frame code.
func wireBatchMode(mode string) (wire.BatchMode, error) {
	switch mode {
	case "", "apply":
		return wire.ModeApply, nil
	case "queue":
		return wire.ModeQueue, nil
	}
	return 0, fmt.Errorf("planarcert: batch mode must be apply or queue, got %q", mode)
}

// wireOp maps an UpdateOp onto the frozen 2-bit frame code.
func wireOp(op UpdateOp) (wire.Op, error) {
	switch op {
	case OpAddEdge:
		return wire.OpAddEdge, nil
	case OpRemoveEdge:
		return wire.OpRemoveEdge, nil
	case OpAddNode:
		return wire.OpAddNode, nil
	}
	return 0, fmt.Errorf("planarcert: unknown update op %d", op)
}

// unwireOp maps a frame op code back to an UpdateOp.
func unwireOp(op wire.Op) (UpdateOp, error) {
	switch op {
	case wire.OpAddEdge:
		return OpAddEdge, nil
	case wire.OpRemoveEdge:
		return OpRemoveEdge, nil
	case wire.OpAddNode:
		return OpAddNode, nil
	}
	return 0, fmt.Errorf("planarcert: unknown wire op %d", op)
}

// EncodeUpdatesFrame encodes one update batch as a binary frame, the
// body of a POST .../updates request with Content-Type WireContentType.
// mode is "apply", "queue" or "" (= apply) and overrides the ?mode=
// query parameter server-side.
func EncodeUpdatesFrame(mode string, updates []Update) ([]byte, error) {
	m, err := wireBatchMode(mode)
	if err != nil {
		return nil, err
	}
	ups := make([]wire.Update, len(updates))
	for i, u := range updates {
		op, err := wireOp(u.Op)
		if err != nil {
			return nil, err
		}
		ups[i] = wire.Update{Op: op, A: int64(u.A), B: int64(u.B)}
		if op == wire.OpAddNode {
			ups[i].B = 0
		}
	}
	return wire.EncodeUpdateBatch(m, ups)
}

// DecodeUpdatesFrame decodes an update-batch frame produced by
// EncodeUpdatesFrame (or any conforming client). The server's hot path
// uses internal/wire's pooled zero-copy decoder instead; this is the
// public, allocating counterpart.
func DecodeUpdatesFrame(frame []byte) (mode string, updates []Update, err error) {
	kind, payload, n, err := wire.ParseFrame(frame)
	if err != nil {
		return "", nil, err
	}
	if kind != wire.KindUpdateBatch || n != len(frame) {
		return "", nil, fmt.Errorf("planarcert: not a single update-batch frame (kind %s, %d trailing bytes)", kind, len(frame)-n)
	}
	m, ups, err := wire.DecodeUpdateBatch(payload, nil)
	if err != nil {
		return "", nil, err
	}
	mode = "apply"
	if m == wire.ModeQueue {
		mode = "queue"
	}
	updates = make([]Update, len(ups))
	for i, u := range ups {
		op, err := unwireOp(u.Op)
		if err != nil {
			return "", nil, err
		}
		updates[i] = Update{Op: op, A: NodeID(u.A), B: NodeID(u.B)}
	}
	return mode, updates, nil
}

// EncodeBatchAckFrame encodes an update-batch response as a binary
// frame (the server side of the codec).
func EncodeBatchAckFrame(ack *WireBatchAck) ([]byte, error) {
	wa := &wire.BatchAck{
		Queued:       ack.Queued,
		Pending:      ack.Pending,
		ElapsedNanos: uint64(ack.Elapsed.Nanoseconds()),
		Report:       wireReportOf(ack.Report),
	}
	return wire.EncodeBatchAck(wa)
}

// DecodeBatchAckFrame decodes the single batch-ack frame a binary
// updates request is answered with.
func DecodeBatchAckFrame(frame []byte) (*WireBatchAck, error) {
	kind, payload, n, err := wire.ParseFrame(frame)
	if err != nil {
		return nil, err
	}
	if kind != wire.KindBatchAck || n != len(frame) {
		return nil, fmt.Errorf("planarcert: not a single batch-ack frame (kind %s, %d trailing bytes)", kind, len(frame)-n)
	}
	wa, err := wire.DecodeBatchAck(payload)
	if err != nil {
		return nil, err
	}
	return &WireBatchAck{
		Queued:  wa.Queued,
		Pending: wa.Pending,
		Elapsed: time.Duration(wa.ElapsedNanos),
		Report:  reportFromWire(wa.Report),
	}, nil
}

// EncodeEventFrame encodes one versioned session report as a watch
// event frame (the server side of the codec).
func EncodeEventFrame(version uint64, rep *SessionReport) ([]byte, error) {
	wr := wireReportOf(rep)
	if wr == nil {
		wr = &wire.Report{}
	}
	return wire.EncodeEvent(version, wr)
}

// EncodeWatchAckFrame encodes a subscription acknowledgement: the
// client has applied every event up to and including version. POST it
// to .../watch/ack with Content-Type WireContentType.
func EncodeWatchAckFrame(sub, version uint64) ([]byte, error) {
	return wire.EncodeAck(sub, version)
}

// EncodeWatchNackFrame encodes a subscription rejection of the event at
// version; replay after reconnect restarts before it. POST it to
// .../watch/ack with Content-Type WireContentType.
func EncodeWatchNackFrame(sub, version uint64, reason string) ([]byte, error) {
	return wire.EncodeNack(sub, version, reason)
}

// WireScanner reads a binary watch stream frame by frame. It reuses one
// payload buffer internally but returns fully decoded (owned) messages.
type WireScanner struct {
	fr *wire.Reader
}

// NewWireScanner wraps a binary watch response body.
func NewWireScanner(r io.Reader) *WireScanner {
	return &WireScanner{fr: wire.NewReader(r)}
}

// Next reads one frame. It returns io.EOF on a clean end-of-stream.
func (s *WireScanner) Next() (*WireMessage, error) {
	kind, payload, err := s.fr.Next()
	if err != nil {
		return nil, err
	}
	switch kind {
	case wire.KindHello:
		h, err := wire.DecodeHello(payload)
		if err != nil {
			return nil, err
		}
		return &WireMessage{Hello: &WireHello{
			Subscription: h.Subscription,
			Version:      h.Version,
			ResumeFrom:   h.ResumeFrom,
			Reset:        h.Reset,
		}}, nil
	case wire.KindEvent:
		version, wr, err := wire.DecodeEvent(payload)
		if err != nil {
			return nil, err
		}
		return &WireMessage{Event: &WireEvent{Version: version, Report: reportFromWire(wr)}}, nil
	case wire.KindError:
		code, msg, err := wire.DecodeError(payload)
		if err != nil {
			return nil, err
		}
		return &WireMessage{Err: &WireError{Code: code, Message: msg}}, nil
	}
	return nil, fmt.Errorf("planarcert: unexpected %s frame on watch stream", kind)
}

// wireReportOf converts a SessionReport to its neutral wire record
// (nil-safe).
func wireReportOf(rep *SessionReport) *wire.Report {
	if rep == nil {
		return nil
	}
	wr := &wire.Report{
		Generation:      rep.Generation,
		Mode:            rep.Mode,
		ActiveScheme:    string(rep.ActiveScheme),
		Updates:         rep.Updates,
		Dirty:           rep.Dirty,
		Verified:        rep.Verified,
		FullVerify:      rep.FullVerify,
		Accepted:        rep.Accepted,
		CacheGeneration: rep.CacheGeneration,
		RepairFallback:  rep.RepairFallback,
		ProveErr:        rep.ProveErr,
	}
	if v := rep.Verification; v != nil {
		wv := &wire.Verification{
			Accepted:    v.Accepted,
			MaxCertBits: v.MaxCertBits,
			AvgCertBits: v.AvgCertBits,
			Messages:    v.Messages,
			MaxMsgBits:  v.MaxMsgBits,
		}
		if len(v.Rejecting) > 0 {
			wv.Rejecting = make([]int64, len(v.Rejecting))
			for i, id := range v.Rejecting {
				wv.Rejecting[i] = int64(id)
			}
		}
		if len(v.Reasons) > 0 {
			wv.Reasons = make([]wire.Reason, 0, len(v.Reasons))
			for id, text := range v.Reasons {
				wv.Reasons = append(wv.Reasons, wire.Reason{ID: int64(id), Text: text})
			}
			sort.Slice(wv.Reasons, func(i, j int) bool { return wv.Reasons[i].ID < wv.Reasons[j].ID })
		}
		wr.Verification = wv
	}
	return wr
}

// reportFromWire converts a neutral wire record back to a SessionReport
// (nil-safe).
func reportFromWire(wr *wire.Report) *SessionReport {
	if wr == nil {
		return nil
	}
	rep := &SessionReport{
		Generation:      wr.Generation,
		Mode:            wr.Mode,
		ActiveScheme:    SchemeName(wr.ActiveScheme),
		Updates:         wr.Updates,
		Dirty:           wr.Dirty,
		Verified:        wr.Verified,
		FullVerify:      wr.FullVerify,
		Accepted:        wr.Accepted,
		CacheGeneration: wr.CacheGeneration,
		RepairFallback:  wr.RepairFallback,
		ProveErr:        wr.ProveErr,
	}
	if wv := wr.Verification; wv != nil {
		v := &Report{
			Accepted:    wv.Accepted,
			MaxCertBits: wv.MaxCertBits,
			AvgCertBits: wv.AvgCertBits,
			Messages:    wv.Messages,
			MaxMsgBits:  wv.MaxMsgBits,
		}
		if len(wv.Rejecting) > 0 {
			v.Rejecting = make([]NodeID, len(wv.Rejecting))
			for i, id := range wv.Rejecting {
				v.Rejecting[i] = NodeID(id)
			}
		}
		if len(wv.Reasons) > 0 {
			v.Reasons = make(map[NodeID]string, len(wv.Reasons))
			for _, rs := range wv.Reasons {
				v.Reasons[NodeID(rs.ID)] = rs.Text
			}
		}
		rep.Verification = v
	}
	return rep
}
