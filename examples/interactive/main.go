// Command interactive reproduces the paper's headline comparison
// (Experiment E2): the prior state of the art for distributed planarity
// certification was the dMAM interactive proof of Naor, Parter and Yogev
// (3 interactions, shared randomness, soundness error O(1/poly)); the
// paper replaces it with a deterministic 1-interaction proof-labeling
// scheme at the same O(log n) certificate size.
package main

import (
	"fmt"
	"log"
	"math/rand"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	fmt.Println("protocol comparison on random maximal planar networks")
	fmt.Println()
	fmt.Printf("%8s | %22s | %26s\n", "", "PLS (this paper)", "dMAM (NPY baseline)")
	fmt.Printf("%8s | %10s %11s | %10s %7s %7s\n",
		"n", "cert bits", "interactions", "cert bits", "inter.", "rnd bits")
	fmt.Println("---------+------------------------+---------------------------")
	for _, n := range []int{32, 128, 512, 2048} {
		net := planarcert.FromGraph(gen.StackedTriangulation(n, rng))

		plsReport, err := planarcert.CertifyAndVerify(net, planarcert.SchemePlanarity)
		if err != nil {
			log.Fatal(err)
		}
		if !plsReport.Accepted {
			log.Fatalf("PLS rejected a planar network: %v", plsReport.Reasons)
		}

		dmamReport, err := planarcert.RunPlanarityDMAM(net, int64(n))
		if err != nil {
			log.Fatal(err)
		}
		if !dmamReport.Accepted {
			log.Fatal("dMAM rejected a planar network")
		}

		fmt.Printf("%8d | %10d %11d | %10d %7d %7d\n",
			n, plsReport.MaxCertBits, 1,
			dmamReport.MaxCertBits, dmamReport.Interactions, dmamReport.RandomBits)
	}
	fmt.Println()
	fmt.Println("the PLS needs no interaction beyond the certificate assignment")
	fmt.Println("and no randomness: soundness error 0 versus O(n/2^61) for dMAM.")
}
