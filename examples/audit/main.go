// Command audit demonstrates the two one-sided certifications side by
// side, as a network auditor would use them: for a planar network,
// certify planarity (Theorem 1); for a non-planar network, certify
// NON-planarity by exhibiting a Kuratowski subdivision (the folklore
// scheme of Section 2). Either way, every node ends up with an O(log n)-
// bit certificate and a single round of verification.
package main

import (
	"fmt"
	"log"
	"math/rand"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	fmt.Println("=== audit 1: a planar data-center fabric (8x5 grid) ===")
	grid := planarcert.FromGraph(gen.Grid(8, 5))
	auditNetwork(grid)

	fmt.Println()
	fmt.Println("=== audit 2: the Petersen graph (non-planar) ===")
	petersen := planarcert.NewNetwork()
	for id := planarcert.NodeID(0); id < 10; id++ {
		if err := petersen.AddNode(id); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		mustEdge(petersen, planarcert.NodeID(i), planarcert.NodeID((i+1)%5))
		mustEdge(petersen, planarcert.NodeID(5+i), planarcert.NodeID(5+(i+2)%5))
		mustEdge(petersen, planarcert.NodeID(i), planarcert.NodeID(5+i))
	}
	auditNetwork(petersen)

	fmt.Println()
	fmt.Println("=== audit 3: random overlay with a planted K3,3 ===")
	planted, err := gen.PlantSubdivision(30, false, rng)
	if err != nil {
		log.Fatal(err)
	}
	auditNetwork(planarcert.FromGraph(gen.ScrambleIDs(planted, rng)))
}

func mustEdge(n *planarcert.Network, a, b planarcert.NodeID) {
	if err := n.AddEdge(a, b); err != nil {
		log.Fatal(err)
	}
}

func auditNetwork(net *planarcert.Network) {
	fmt.Printf("network: n=%d m=%d\n", net.N(), net.M())
	if net.IsPlanar() {
		report, err := planarcert.CertifyAndVerify(net, planarcert.SchemePlanarity)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("verdict: PLANAR — certified with max %d bits/node, avg %.1f bits, %d messages, 1 round\n",
			report.MaxCertBits, report.AvgCertBits, report.Messages)
		if net.IsOuterplanar() {
			rep2, err := planarcert.CertifyAndVerify(net, planarcert.SchemeOuterplanarity)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("bonus:   also OUTERPLANAR (certified, %d bits max)\n", rep2.MaxCertBits)
		}
		return
	}
	w, err := net.Kuratowski()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verdict: NOT planar — %s subdivision found\n", w.Kind)
	fmt.Printf("         branch nodes: %v\n", w.Branch)
	fmt.Printf("         %d subdivision paths, %d edges in the obstruction\n",
		len(w.Paths), len(w.EdgeList))
	report, err := planarcert.CertifyAndVerify(net, planarcert.SchemeNonPlanarity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("         non-planarity certified: accepted=%v, max %d bits/node\n",
		report.Accepted, report.MaxCertBits)
}
