// Command quickstart is the smallest end-to-end use of the library: build
// a planar network, let the prover assign O(log n)-bit certificates, run
// the 1-round distributed verification, then break planarity and watch
// the same certificates be rejected.
package main

import (
	"fmt"
	"log"

	planarcert "github.com/planarcert/planarcert"
)

func main() {
	// A wheel on 8 nodes: hub 0 surrounded by the cycle 1..7.
	net := planarcert.NewNetwork()
	for id := planarcert.NodeID(0); id < 8; id++ {
		if err := net.AddNode(id); err != nil {
			log.Fatal(err)
		}
	}
	for i := planarcert.NodeID(1); i <= 7; i++ {
		next := i%7 + 1
		if err := net.AddEdge(i, next); err != nil {
			log.Fatal(err)
		}
		if err := net.AddEdge(0, i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("network: n=%d m=%d planar=%v\n", net.N(), net.M(), net.IsPlanar())

	// The prover (an untrusted oracle with full knowledge of the graph)
	// computes the Theorem 1 certificates.
	certs, err := planarcert.Certify(net, planarcert.SchemePlanarity)
	if err != nil {
		log.Fatal(err)
	}
	maxBits := 0
	for _, c := range certs {
		if c.Bits > maxBits {
			maxBits = c.Bits
		}
	}
	fmt.Printf("certificates: max %d bits per node (O(log n))\n", maxBits)

	// Every node exchanges certificates with its neighbors ONCE and
	// decides locally.
	report, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: accepted=%v messages=%d (one round)\n",
		report.Accepted, report.Messages)

	// Now make the network non-planar (connect two opposite rim nodes
	// through... in a wheel, adding chords keeps planarity; instead fuse a
	// K5: connect 1-3, 1-4, 2-4 to create dense crossings).
	for _, e := range [][2]planarcert.NodeID{{1, 3}, {1, 4}, {2, 4}, {3, 5}, {2, 5}} {
		if !net.HasEdge(e[0], e[1]) {
			if err := net.AddEdge(e[0], e[1]); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("\nafter sabotage: m=%d planar=%v\n", net.M(), net.IsPlanar())

	// The old certificates cannot fool the verifier.
	report, err = planarcert.Verify(net, planarcert.SchemePlanarity, certs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stale certificates: accepted=%v, %d nodes reject\n",
		report.Accepted, len(report.Rejecting))

	// And no prover could do better: the graph carries a Kuratowski
	// witness, which the non-planarity scheme can certify instead.
	w, err := net.Kuratowski()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("obstruction: subdivision of %s with branch nodes %v\n", w.Kind, w.Branch)
	npReport, err := planarcert.CertifyAndVerify(net, planarcert.SchemeNonPlanarity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-planarity certified: accepted=%v (max %d bits)\n",
		npReport.Accepted, npReport.MaxCertBits)
}
