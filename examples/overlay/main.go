// Command overlay simulates the motivating scenario of the paper: an
// overlay network that must stay planar (say, for a planarity-dependent
// routing scheme). Links join over time; the network maintains its
// O(log n)-bit certificates *incrementally* through planarcert.Session —
// most joins are absorbed as localized repairs that re-verify only the
// dirty region, and the first insertion that breaks planarity flips the
// session to the Kuratowski-witness scheme, which doubles as the
// evidence for the ops team. Rolling the link back hits the certificate
// cache instead of re-proving.
package main

import (
	"fmt"
	"log"
	"math/rand"

	planarcert "github.com/planarcert/planarcert"
)

const nodes = 40

func main() {
	rng := rand.New(rand.NewSource(2020))

	// Start from a random spanning tree (overlay bootstrap).
	net := planarcert.NewNetwork()
	for id := planarcert.NodeID(0); id < nodes; id++ {
		if err := net.AddNode(id); err != nil {
			log.Fatal(err)
		}
	}
	for i := 1; i < nodes; i++ {
		if err := net.AddEdge(planarcert.NodeID(i), planarcert.NodeID(rng.Intn(i))); err != nil {
			log.Fatal(err)
		}
	}
	session, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap: tree overlay with %d nodes, certified (%d nodes verified)\n",
		nodes, session.Last().Verified)

	step, repaired := 0, 0
	for {
		step++
		// A random new link joins the overlay (one topology snapshot per
		// step; Network() is a deep copy).
		snapshot := session.Network()
		var a, b planarcert.NodeID
		for {
			a = planarcert.NodeID(rng.Intn(nodes))
			b = planarcert.NodeID(rng.Intn(nodes))
			if a != b && !snapshot.HasEdge(a, b) {
				break
			}
		}
		rep, err := session.Apply([]planarcert.Update{planarcert.EdgeAdd(a, b)})
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Accepted {
			log.Fatalf("step %d: certification lost: %+v", step, rep)
		}
		if session.ActiveScheme() == planarcert.SchemeNonPlanarity {
			// The overlay left the planar class; the session flipped to
			// the non-planarity scheme, certifying a Kuratowski witness.
			fmt.Printf("step %3d: +{%2d,%2d}  planarity broken (mode=%s), %d/%d joins were localized repairs\n",
				step, a, b, rep.Mode, repaired, step-1)
			w, err := session.Network().Kuratowski()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("          evidence: %s subdivision through nodes %v\n", w.Kind, w.Branch)

			// Roll the link back: the previous planar topology is still
			// in the certificate cache, so no re-prove happens.
			rep, err = session.Apply([]planarcert.Update{planarcert.EdgeRemove(a, b)})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("          link {%d,%d} rolled back: mode=%s (cache entry from generation %d), certified=%v\n",
				a, b, rep.Mode, rep.CacheGeneration, session.Certified())
			return
		}
		if rep.Mode == "repair" {
			repaired++
			fmt.Printf("step %3d: +{%2d,%2d}  planar, repaired locally (%d certs changed, %d of %d nodes re-verified)\n",
				step, a, b, rep.Dirty, rep.Verified, session.N())
		} else {
			fmt.Printf("step %3d: +{%2d,%2d}  planar, %s (%s)\n", step, a, b, rep.Mode, rep.RepairFallback)
		}
	}
}
