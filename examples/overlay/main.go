// Command overlay simulates the motivating scenario of the paper: an
// overlay network that must stay planar (say, for a planarity-dependent
// routing scheme). Links join over time; after every change the network
// re-certifies planarity with O(log n)-bit certificates. The first
// insertion that breaks planarity is detected by the 1-round verification
// — at least one node rejects — and that node raises an alarm that floods
// the network.
package main

import (
	"fmt"
	"log"
	"math/rand"

	planarcert "github.com/planarcert/planarcert"
)

const nodes = 40

func main() {
	rng := rand.New(rand.NewSource(2020))

	// Start from a random spanning tree (overlay bootstrap).
	net := planarcert.NewNetwork()
	for id := planarcert.NodeID(0); id < nodes; id++ {
		if err := net.AddNode(id); err != nil {
			log.Fatal(err)
		}
	}
	for i := 1; i < nodes; i++ {
		if err := net.AddEdge(planarcert.NodeID(i), planarcert.NodeID(rng.Intn(i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("bootstrap: tree overlay with %d nodes\n", nodes)

	step := 0
	for {
		step++
		// A random new link joins the overlay.
		var a, b planarcert.NodeID
		for {
			a = planarcert.NodeID(rng.Intn(nodes))
			b = planarcert.NodeID(rng.Intn(nodes))
			if a != b && !net.HasEdge(a, b) {
				break
			}
		}
		if err := net.AddEdge(a, b); err != nil {
			log.Fatal(err)
		}

		// Re-certify. If the prover refuses, the overlay is no longer
		// planar; fall back to the stale certificates to show the
		// distributed verification also catches it.
		certs, err := planarcert.Certify(net, planarcert.SchemePlanarity)
		if err != nil {
			fmt.Printf("step %3d: +{%d,%d}  prover: network left the planar class\n", step, a, b)
			// The routing layer still runs the verification round with
			// whatever certificates it had; some node must reject.
			stale, verr := planarcert.Certify(withoutEdge(net, a, b), planarcert.SchemePlanarity)
			if verr != nil {
				log.Fatal(verr)
			}
			report, verr := planarcert.Verify(net, planarcert.SchemePlanarity, stale)
			if verr != nil {
				log.Fatal(verr)
			}
			fmt.Printf("          1-round verification: accepted=%v, rejecting nodes=%v\n",
				report.Accepted, report.Rejecting)
			if report.Accepted {
				log.Fatal("soundness violated: non-planar overlay accepted")
			}

			// The rejecting nodes broadcast an alarm.
			rounds, err := net.Broadcast(report.Rejecting)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("          alarm flooded the overlay in %d rounds\n", rounds)

			// Ops team demands evidence: a Kuratowski witness.
			w, err := net.Kuratowski()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("          evidence: %s subdivision through nodes %v\n", w.Kind, w.Branch)
			fmt.Printf("          link {%d,%d} rolled back\n", a, b)
			return
		}
		report, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
		if err != nil {
			log.Fatal(err)
		}
		if !report.Accepted {
			log.Fatalf("completeness violated at step %d: %v", step, report.Reasons)
		}
		fmt.Printf("step %3d: +{%2d,%2d}  planar, re-certified (max cert %d bits, %d messages)\n",
			step, a, b, report.MaxCertBits, report.Messages)
	}
}

// withoutEdge returns a copy of net lacking the edge {a, b}.
func withoutEdge(net *planarcert.Network, a, b planarcert.NodeID) *planarcert.Network {
	c := net.Clone()
	c.RemoveEdge(a, b)
	return c
}
