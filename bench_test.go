package planarcert_test

import (
	"fmt"
	"math/rand"
	"testing"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/interactive"
	"github.com/planarcert/planarcert/internal/lowerbound"
	"github.com/planarcert/planarcert/internal/planarity"
	"github.com/planarcert/planarcert/internal/pls"
)

// Each benchmark regenerates the data behind one experiment of
// EXPERIMENTS.md (run `go test -bench . -benchmem`); custom metrics carry
// the quantities the paper reasons about (certificate bits, attack
// instances) next to the usual ns/op.

// BenchmarkE1CertificateSize measures the full prove+verify pipeline per
// network size and reports the maximum certificate size in bits.
func BenchmarkE1CertificateSize(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := gen.StackedTriangulation(n, rng)
			net := planarcert.FromGraph(g)
			var maxBits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := planarcert.CertifyAndVerify(net, planarcert.SchemePlanarity)
				if err != nil || !report.Accepted {
					b.Fatalf("rejected: %v", err)
				}
				maxBits = report.MaxCertBits
			}
			b.ReportMetric(float64(maxBits), "certbits")
		})
	}
}

// BenchmarkE2PLSvsDMAM compares the two protocols on the same network.
func BenchmarkE2PLSvsDMAM(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := gen.StackedTriangulation(512, rng)
	net := planarcert.FromGraph(g)
	b.Run("PLS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			report, err := planarcert.CertifyAndVerify(net, planarcert.SchemePlanarity)
			if err != nil || !report.Accepted {
				b.Fatal(err)
			}
		}
		b.ReportMetric(1, "interactions")
	})
	b.Run("dMAM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			report, err := planarcert.RunPlanarityDMAM(net, int64(i))
			if err != nil || !report.Accepted {
				b.Fatal(err)
			}
		}
		b.ReportMetric(3, "interactions")
	})
}

// BenchmarkE3BlockAttack measures the pigeonhole splice attack against
// 1-bit certificates (Lemma 5).
func BenchmarkE3BlockAttack(b *testing.B) {
	label := lowerbound.TruncateLabeler(func(inst *lowerbound.BlockInstance) (map[planarcert.NodeID]planarcert.Certificate, error) {
		return pls.SpanningTreeScheme{}.Prove(inst.G)
	}, 1)
	var instances int
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		res, err := lowerbound.FindSplice(4, 5, label, 4000, rng)
		if err != nil {
			b.Fatal(err)
		}
		if res != nil {
			instances = res.Instances
		}
	}
	b.ReportMetric(float64(instances), "instances")
}

// BenchmarkE4GluingAttack builds and verifies the glued instance J.
func BenchmarkE4GluingAttack(b *testing.B) {
	for _, q := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			n := 6 * q
			d := n / (2 * q)
			for i := 0; i < b.N; i++ {
				as, bs := lowerbound.SplitIDs(q, n)
				j, err := lowerbound.NewGluedInstance(as, bs, q, d)
				if err != nil {
					b.Fatal(err)
				}
				if err := j.VerifyIllegal(); err != nil {
					b.Fatal(err)
				}
				if err := j.LocalViewsMatchLegal(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Transform measures the Lemma 3 transformation alone.
func BenchmarkE5Transform(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			g := gen.StackedTriangulation(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.TransformOf(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6Soundness measures a full adversarial round: random
// certificates on K5 plus verification.
func BenchmarkE6Soundness(b *testing.B) {
	g := gen.Complete(5)
	net := planarcert.FromGraph(g)
	rng := rand.New(rand.NewSource(4))
	rejected := 0
	for i := 0; i < b.N; i++ {
		certs := planarcert.Certificates{}
		for _, id := range net.IDs() {
			nbits := rng.Intn(200)
			data := make([]byte, (nbits+7)/8)
			rng.Read(data)
			certs[id] = planarcert.Certificate{Data: data, Bits: nbits}
		}
		report, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
		if err != nil {
			b.Fatal(err)
		}
		if !report.Accepted {
			rejected++
		}
	}
	if rejected != b.N {
		b.Fatalf("an adversarial run was accepted (%d/%d rejected)", rejected, b.N)
	}
}

// BenchmarkE7Prover isolates the prover.
func BenchmarkE7Prover(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(5))
			g := gen.StackedTriangulation(n, rng)
			net := planarcert.FromGraph(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := planarcert.Certify(net, planarcert.SchemePlanarity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7Verifier isolates the 1-round verification (all nodes).
func BenchmarkE7Verifier(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			g := gen.StackedTriangulation(n, rng)
			net := planarcert.FromGraph(g)
			certs, err := planarcert.Certify(net, planarcert.SchemePlanarity)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs)
				if err != nil || !report.Accepted {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "nodes")
		})
	}
}

// BenchmarkE8NonPlanar measures Kuratowski extraction + the non-planarity
// scheme end to end.
func BenchmarkE8NonPlanar(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g, err := gen.PlantSubdivision(100, true, rng)
	if err != nil {
		b.Fatal(err)
	}
	net := planarcert.FromGraph(g)
	for i := 0; i < b.N; i++ {
		report, err := planarcert.CertifyAndVerify(net, planarcert.SchemeNonPlanarity)
		if err != nil || !report.Accepted {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9DegeneracyAblation compares certificate placement policies
// on a wheel (hub degree n-1).
func BenchmarkE9DegeneracyAblation(b *testing.B) {
	g := gen.Wheel(1024)
	net := planarcert.FromGraph(g)
	var maxBits int
	for i := 0; i < b.N; i++ {
		report, err := planarcert.CertifyAndVerify(net, planarcert.SchemePlanarity)
		if err != nil || !report.Accepted {
			b.Fatal(err)
		}
		maxBits = report.MaxCertBits
	}
	b.ReportMetric(float64(maxBits), "certbits")
}

// BenchmarkE10Outerplanar measures the outerplanarity scheme.
func BenchmarkE10Outerplanar(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(8))
			g := gen.RandomOuterplanar(n, 0.7, rng)
			net := planarcert.FromGraph(g)
			var maxBits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				report, err := planarcert.CertifyAndVerify(net, planarcert.SchemeOuterplanarity)
				if err != nil || !report.Accepted {
					b.Fatal(err)
				}
				maxBits = report.MaxCertBits
			}
			b.ReportMetric(float64(maxBits), "certbits")
		})
	}
}

// BenchmarkPlanarityTest measures the LR planarity test alone (substrate).
func BenchmarkPlanarityTest(b *testing.B) {
	for _, n := range []int{1024, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			g := gen.StackedTriangulation(n, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, _, err := planarity.Check(g)
				if err != nil || !ok {
					b.Fatal("planar graph rejected")
				}
			}
		})
	}
}

// BenchmarkVerifierSingleNode measures one node's local decision
// (the quantity that matters in a real deployment).
func BenchmarkVerifierSingleNode(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	g := gen.StackedTriangulation(4096, rng)
	scheme := core.PlanarScheme{}
	certs, err := scheme.Prove(g)
	if err != nil {
		b.Fatal(err)
	}
	// Build the view of an arbitrary middle node.
	u := g.N() / 2
	view := dist.View{ID: g.IDOf(u), Degree: g.Degree(u), Cert: certs[g.IDOf(u)]}
	for _, v := range g.Neighbors(u) {
		view.Neighbors = append(view.Neighbors, dist.NeighborCert{ID: g.IDOf(v), Cert: certs[g.IDOf(v)]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := scheme.Verify(view); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineParallel sweeps the verification engine across network
// sizes and execution modes on identical inputs: the per-node work is
// the planarity verifier of Theorem 1, so the sweep isolates how well
// the sharded worker pool scales the embarrassingly parallel round.
// Engines are constructed once per sub-benchmark, so the steady-state
// iterations also expose the zero-copy layout reuse in allocs/op.
func BenchmarkEngineParallel(b *testing.B) {
	scheme := core.PlanarScheme{}
	for _, n := range []int{64, 256, 1024, 4096, 16384} {
		rng := rand.New(rand.NewSource(11))
		g := gen.StackedTriangulation(n, rng)
		certs, err := scheme.Prove(g)
		if err != nil {
			b.Fatal(err)
		}
		modes := []struct {
			name string
			opts []dist.Option
		}{
			{"seq", []dist.Option{dist.Sequential()}},
			{"par", []dist.Option{dist.Parallel(0)}},
		}
		for _, mode := range modes {
			b.Run(fmt.Sprintf("n=%d/%s", n, mode.name), func(b *testing.B) {
				eng := dist.NewEngine(g, mode.opts...)
				eng.RunPLS(certs, scheme.Verify) // warm the CSR layout
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out := eng.RunPLS(certs, scheme.Verify)
					if !out.AllAccept() {
						b.Fatalf("rejected: %v", out.Reasons)
					}
				}
				b.ReportMetric(float64(n)/float64(b.Elapsed().Nanoseconds())*float64(b.N)*1e9, "nodes/s")
			})
		}
	}
}

// BenchmarkEngineOverhead isolates the simulator itself: a no-op
// verifier leaves only view assembly, scheduling and reduction.
func BenchmarkEngineOverhead(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	g := gen.StackedTriangulation(4096, rng)
	certs := map[planarcert.NodeID]planarcert.Certificate{}
	for _, id := range g.IDs() {
		certs[id] = planarcert.Certificate{Data: []byte{0xAB}, Bits: 8}
	}
	verify := func(dist.View) error { return nil }
	for _, mode := range []struct {
		name string
		opts []dist.Option
	}{
		{"seq", []dist.Option{dist.Sequential()}},
		{"par", []dist.Option{dist.Parallel(0)}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			eng := dist.NewEngine(g, mode.opts...)
			eng.RunPLS(certs, verify) // warm the CSR layout
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := eng.RunPLS(certs, verify); !out.AllAccept() {
					b.Fatal("no-op verifier rejected")
				}
			}
		})
	}
}

// BenchmarkFingerprint measures the dMAM field arithmetic.
func BenchmarkFingerprint(b *testing.B) {
	ranks := make([]int, 1000)
	for i := range ranks {
		ranks[i] = i + 1
	}
	for i := 0; i < b.N; i++ {
		_ = interactive.MultisetProduct(uint64(i)+3, ranks)
	}
}
