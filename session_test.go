package planarcert_test

import (
	"math/rand"
	"testing"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/gen"
)

func triangulationNetwork(n int, seed int64) *planarcert.Network {
	rng := rand.New(rand.NewSource(seed))
	return planarcert.FromGraph(gen.StackedTriangulation(n, rng))
}

// TestSessionLifecycle exercises the public incremental API end to end:
// initial certification, localized repair, cache-backed flip and back.
func TestSessionLifecycle(t *testing.T) {
	net := triangulationNetwork(90, 11)
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Certified() || s.ActiveScheme() != planarcert.SchemePlanarity {
		t.Fatalf("initial state: %+v", s.Last())
	}
	if rep := s.Verify(); !rep.Accepted {
		t.Fatalf("initial full verify rejected: %v", rep.Reasons)
	}

	// The session owns a clone: mutating the original network is invisible.
	ids := net.IDs()
	net.RemoveEdge(ids[0], ids[1])
	if s.M() == net.M() {
		t.Fatal("session shares the caller's network")
	}

	// Oscillate an edge and demand at least one localized repair.
	sawRepair := false
	for _, a := range ids[:20] {
		for _, b := range s.Network().Neighbors(a) {
			rep, err := s.Apply([]planarcert.Update{planarcert.EdgeRemove(a, b)})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Mode == "repair" {
				sawRepair = true
				if rep.FullVerify || rep.Verified >= s.N() {
					t.Fatalf("repair re-verified the whole network: %+v", rep)
				}
			}
			if _, err := s.Apply([]planarcert.Update{planarcert.EdgeAdd(a, b)}); err != nil {
				t.Fatal(err)
			}
			if !s.Certified() {
				t.Fatalf("lost certification on oscillation of {%d,%d}", a, b)
			}
			break
		}
		if sawRepair {
			break
		}
	}
	if !sawRepair {
		t.Fatal("no oscillation was absorbed as a localized repair")
	}

	// Parity: the session state verifies exactly like a fresh pipeline.
	if rep := s.Verify(); !rep.Accepted {
		t.Fatalf("session state rejected: %v", rep.Reasons)
	}
	fresh, err := planarcert.CertifyAndVerify(s.Network(), s.ActiveScheme())
	if err != nil || !fresh.Accepted {
		t.Fatalf("fresh certification disagrees: %v %v", err, fresh)
	}
}

// TestSessionFlipPublic drives the session across the planarity
// boundary through the public API.
func TestSessionFlipPublic(t *testing.T) {
	net := planarcert.NewNetwork()
	for id := planarcert.NodeID(0); id < 5; id++ {
		if err := net.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	for a := planarcert.NodeID(0); a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			if a == 0 && b == 1 {
				continue // K5 minus one edge: planar
			}
			if err := net.AddEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Apply([]planarcert.Update{planarcert.EdgeAdd(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "flip" || s.ActiveScheme() != planarcert.SchemeNonPlanarity || !rep.Accepted {
		t.Fatalf("completing K5: %+v", rep)
	}
	rep, err = s.Apply([]planarcert.Update{planarcert.EdgeRemove(0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveScheme() != planarcert.SchemePlanarity || !rep.Accepted {
		t.Fatalf("rolling back: %+v", rep)
	}
	if rep.Mode != "cache" {
		t.Fatalf("rollback should hit the certificate cache, got %s", rep.Mode)
	}
}

// TestCertifyReturnsDefensiveCopies is the regression test for the
// aliasing bug class: callers mutating a returned Certificates map (or
// the bytes inside) must not corrupt later certifications or a
// session's internal state.
func TestCertifyReturnsDefensiveCopies(t *testing.T) {
	net := triangulationNetwork(40, 12)
	certs1, err := planarcert.Certify(net, planarcert.SchemePlanarity)
	if err != nil {
		t.Fatal(err)
	}
	// Trash every byte the caller can reach.
	for id, c := range certs1 {
		for i := range c.Data {
			c.Data[i] = 0xff
		}
		c.Bits = 1
		certs1[id] = c
	}
	certs2, err := planarcert.Certify(net, planarcert.SchemePlanarity)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := planarcert.Verify(net, planarcert.SchemePlanarity, certs2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("mutation of an earlier result corrupted a fresh certification: %v", rep.Reasons)
	}
}

// TestSessionCertificatesDefensiveCopies checks the same property on
// the session, whose internals genuinely retain certificate state.
func TestSessionCertificatesDefensiveCopies(t *testing.T) {
	net := triangulationNetwork(40, 13)
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	stolen := s.Certificates()
	for id, c := range stolen {
		for i := range c.Data {
			c.Data[i] ^= 0xaa
		}
		stolen[id] = c
	}
	if rep := s.Verify(); !rep.Accepted {
		t.Fatalf("mutating Certificates() corrupted the session: %v", rep.Reasons)
	}
	// And the copy really is a snapshot of valid certificates.
	fresh := s.Certificates()
	rep, err := planarcert.Verify(s.Network(), s.ActiveScheme(), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("Certificates() snapshot does not verify: %v", rep.Reasons)
	}
}

// TestSessionQueueFlushPublic checks the update-log API.
func TestSessionQueueFlushPublic(t *testing.T) {
	net := planarcert.NewNetwork()
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Certified() {
		t.Fatal("empty network reported certified")
	}
	// Grow a triangle through the log.
	for id := planarcert.NodeID(0); id < 3; id++ {
		if err := s.Queue(planarcert.NodeAdd(id)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]planarcert.NodeID{{0, 1}, {1, 2}, {2, 0}} {
		if err := s.Queue(planarcert.EdgeAdd(e[0], e[1])); err != nil {
			t.Fatal(err)
		}
	}
	if s.N() != 0 {
		t.Fatal("Queue applied updates early")
	}
	rep, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || s.N() != 3 || s.M() != 3 {
		t.Fatalf("triangle growth: %+v (n=%d m=%d)", rep, s.N(), s.M())
	}
}

// TestSessionSnapshotRestore round-trips a session through its
// restorable snapshot: the restored session adopts the certificates via
// the self-validating full sweep and keeps absorbing batches.
func TestSessionSnapshotRestore(t *testing.T) {
	net := triangulationNetwork(120, 7)
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ids := s.Network().IDs()
	if _, err := s.Apply([]planarcert.Update{planarcert.EdgeRemove(ids[0], s.Network().Neighbors(ids[0])[0])}); err != nil {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	if snap.Generation != s.Generation() || snap.Network.M() != s.M() {
		t.Fatalf("snapshot disagrees with session: %+v", snap)
	}

	r, err := planarcert.RestoreSession(snap, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Certified() {
		t.Fatalf("restored session uncertified: %+v", r.Last())
	}
	if mode := r.Last().Mode; mode != "restore" {
		t.Fatalf("restore mode = %q, want restore (certificates were valid)", mode)
	}
	if r.Generation() != snap.Generation {
		t.Fatalf("generation %d, want %d", r.Generation(), snap.Generation)
	}
	hi1, lo1 := s.Fingerprint()
	hi2, lo2 := r.Fingerprint()
	if hi1 != hi2 || lo1 != lo2 {
		t.Fatalf("fingerprint mismatch after restore: %x%x vs %x%x", hi1, lo1, hi2, lo2)
	}
	if rep := r.Verify(); !rep.Accepted {
		t.Fatalf("restored session fails full verification: %v", rep.Reasons)
	}
	// The restored session keeps working.
	rep, err := r.Apply([]planarcert.Update{planarcert.NodeAdd(100000), planarcert.EdgeAdd(100000, ids[0])})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted || !r.Certified() {
		t.Fatalf("post-restore batch rejected: %+v", rep)
	}
}

// TestSessionRestoreRejectsTamperedCerts flips bits in a snapshot's
// certificates: the self-validating sweep must reject them and the
// restore must fall back to a re-prove, never accepting a bad
// assignment.
func TestSessionRestoreRejectsTamperedCerts(t *testing.T) {
	net := triangulationNetwork(80, 3)
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	for id, c := range snap.Certificates {
		if len(c.Data) > 0 {
			c.Data[0] ^= 0xff
			snap.Certificates[id] = c
		}
		break
	}
	r, err := planarcert.RestoreSession(snap, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if mode := r.Last().Mode; mode == "restore" {
		t.Fatal("tampered certificates restored verbatim")
	}
	if !r.Certified() {
		t.Fatalf("re-prove fallback failed: %+v", r.Last())
	}
	if rep := r.Verify(); !rep.Accepted {
		t.Fatalf("fallback assignment rejected: %v", rep.Reasons)
	}
}

// TestSessionRestoreStaleCerts restores certificates against a network
// that moved on (the replay-tail case): the sweep decides, and either
// way the session ends certified with an accepted assignment.
func TestSessionRestoreStaleCerts(t *testing.T) {
	net := triangulationNetwork(80, 5)
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	// Simulate a WAL tail: the graph gained a node + edge after the
	// snapshot's certificates were taken.
	if err := snap.Network.AddNode(99999); err != nil {
		t.Fatal(err)
	}
	if err := snap.Network.AddEdge(99999, snap.Network.IDs()[0]); err != nil {
		t.Fatal(err)
	}
	r, err := planarcert.RestoreSession(snap, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Certified() {
		t.Fatalf("stale restore left session uncertified: %+v", r.Last())
	}
	if rep := r.Verify(); !rep.Accepted {
		t.Fatalf("post-restore assignment rejected: %v", rep.Reasons)
	}
	if r.N() != 81 {
		t.Fatalf("restored network lost the tail: n=%d", r.N())
	}
}

// TestSessionRestoreAfterFlip restores a session whose active scheme
// differs from its configured scheme (planarity flipped to the
// Kuratowski witness scheme).
func TestSessionRestoreAfterFlip(t *testing.T) {
	net := planarcert.NewNetwork()
	for id := planarcert.NodeID(0); id < 6; id++ {
		if err := net.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	for a := planarcert.NodeID(0); a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			if err := net.AddEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	s, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveScheme() != planarcert.SchemeNonPlanarity {
		t.Fatalf("K6 did not flip: %v", s.ActiveScheme())
	}
	snap := s.Snapshot()
	r, err := planarcert.RestoreSession(snap, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ActiveScheme() != planarcert.SchemeNonPlanarity || !r.Certified() {
		t.Fatalf("flip lost in restore: scheme=%v certified=%v", r.ActiveScheme(), r.Certified())
	}
	if mode := r.Last().Mode; mode != "restore" {
		t.Fatalf("restore mode = %q, want restore", mode)
	}
}
