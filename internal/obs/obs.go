package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical span names. The instrumentation layers (internal/dist,
// internal/dynamic, internal/server) agree on these so that Phases can
// decompose any batch trace and the /debug/traces consumers can filter
// without guessing strings.
const (
	// SpanBatch is the root of one update-batch absorption.
	SpanBatch = "batch"
	// SpanVerify is the root of a one-shot or session verification.
	SpanVerify = "verify"
	// SpanQueueWait is the time a request waited for its session's
	// serialization mutex behind earlier batches.
	SpanQueueWait = "queue-wait"
	// SpanProve is prover work: a localized repair or a full re-prove.
	SpanProve = "prove"
	// SpanSweep is one engine verification sweep (full or subset).
	SpanSweep = "sweep"
	// SpanRound is one synchronous CONGEST round inside a sweep or a
	// preprocessing phase.
	SpanRound = "round"
	// SpanBroadcast is an alarm flood (Engine.Broadcast).
	SpanBroadcast = "broadcast"
	// SpanBudgetWait is the time spent acquiring (or failing to
	// acquire) extra-worker slots from the shared verification budget.
	SpanBudgetWait = "budget-wait"
	// SpanPersist is the durability work of a batch (WAL append and/or
	// snapshot) on the ack path.
	SpanPersist = "persist"
	// SpanAdmit is the time a batch waited in the fair-share admission
	// queue for an execution slot (QoS scheduling), before any
	// session-level queue-wait.
	SpanAdmit = "admit"
)

// Attr is one span attribute: either a string or an int64 value under a
// key. Attributes carry the cost-model quantities (mode, frontier size,
// certificate bits, rounds) alongside the timings.
type Attr struct {
	Key string
	Str string
	Int int64
	// IsStr selects which of Str/Int holds the value.
	IsStr bool
}

// Span is one timed, attributed phase of a trace. Spans nest: children
// are created with Child and the whole tree is retained when the root
// ends. Durations come from the monotonic clock (time.Since), so a
// wall-clock step cannot corrupt them.
//
// All methods are safe on a nil *Span (they do nothing and return nil),
// so instrumented code never branches on "is tracing on". A Span's own
// methods are safe for concurrent use; the only shared mutation is the
// parent's child list and the span's attribute list, both guarded by
// the span's mutex.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span

	// Root-only bookkeeping: the owning tracer collects the trace when
	// the root ends.
	tracer  *Tracer
	session string
	id      uint64
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a nested span under s. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetInt records an integer attribute (last write wins is NOT applied;
// duplicate keys append — readers use the first occurrence).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
	s.mu.Unlock()
}

// SetStr records a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
	s.mu.Unlock()
}

// End stamps the span's duration from the monotonic clock. Ending a
// root span hands the completed trace to its tracer's sampler. End is
// idempotent; the first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	t := s.tracer
	s.mu.Unlock()
	if t != nil {
		t.collect(s)
	}
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's wall-clock start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's duration: the monotonic end-start
// interval after End, the live elapsed time before it, 0 on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Children returns a copy of the span's child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// IntAttr returns the first integer attribute under key.
func (s *Span) IntAttr(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key && !a.IsStr {
			return a.Int, true
		}
	}
	return 0, false
}

// StrAttr returns the first string attribute under key.
func (s *Span) StrAttr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key && a.IsStr {
			return a.Str, true
		}
	}
	return "", false
}

// spanJSON is the wire shape of one span on /debug/traces.
type spanJSON struct {
	Name          string                 `json:"name"`
	StartUnixNano int64                  `json:"start_unix_nano"`
	DurationNanos int64                  `json:"duration_nanos"`
	Unfinished    bool                   `json:"unfinished,omitempty"`
	Attrs         map[string]interface{} `json:"attrs,omitempty"`
	Children      []*Span                `json:"children,omitempty"`
}

// MarshalJSON renders the span (and, recursively, its children) for
// /debug/traces. Attributes collapse into a key→value object; on a
// duplicate key the first occurrence wins, matching IntAttr/StrAttr.
func (s *Span) MarshalJSON() ([]byte, error) {
	s.mu.Lock()
	v := spanJSON{
		Name:          s.name,
		StartUnixNano: s.start.UnixNano(),
		DurationNanos: int64(s.dur),
		Unfinished:    !s.ended,
		Children:      append([]*Span(nil), s.children...),
	}
	if !s.ended {
		v.DurationNanos = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]interface{}, len(s.attrs))
		for _, a := range s.attrs {
			if _, dup := v.Attrs[a.Key]; dup {
				continue
			}
			if a.IsStr {
				v.Attrs[a.Key] = a.Str
			} else {
				v.Attrs[a.Key] = a.Int
			}
		}
	}
	s.mu.Unlock()
	return json.Marshal(v)
}

// TraceRecord is one completed trace retained by the ring buffer.
type TraceRecord struct {
	// ID is the tracer-unique trace id (monotonically increasing).
	ID uint64 `json:"id"`
	// Session is the session the trace belongs to ("" for one-shots).
	Session string `json:"session"`
	// Slow marks a trace retained by the slow-batch threshold rather
	// than (only) the periodic sample.
	Slow bool `json:"slow"`
	// Root is the trace's root span.
	Root *Span `json:"root"`
}

// Duration returns the root span's duration.
func (r *TraceRecord) Duration() time.Duration { return r.Root.Duration() }

// Config parameterises a Tracer. The zero value is usable: 256 retained
// traces, every trace sampled, 100ms slow threshold.
type Config struct {
	// Ring is the number of completed traces retained (0 = 256).
	Ring int
	// SampleEvery keeps every k-th completed trace regardless of
	// duration (0 or 1 = keep all). Traces in between are dropped —
	// and counted — unless the slow threshold retains them.
	SampleEvery int
	// SlowThreshold always retains traces at least this long, so the
	// latency tail survives any sampling rate (0 = 100ms; negative =
	// no slow retention).
	SlowThreshold time.Duration
}

// Default tracer parameters (Config zero-value substitutions).
const (
	DefaultRing        = 256
	DefaultSlow        = 100 * time.Millisecond
	DefaultSampleEvery = 1
)

// Tracer retains completed traces in a fixed-size ring buffer behind
// the sampler. Safe for concurrent use; a nil *Tracer is a valid
// disabled tracer (Start returns nil spans).
type Tracer struct {
	mu   sync.Mutex
	ring []*TraceRecord // circular; nil slots until first wrap
	next int            // next write position

	seq            atomic.Uint64 // trace ids
	seen           atomic.Uint64 // completed traces, for sampling
	sampleEvery    uint64
	slow           time.Duration
	droppedSampled atomic.Uint64
	droppedEvicted atomic.Uint64
}

// New builds a tracer; zero Config fields take the package defaults.
func New(cfg Config) *Tracer {
	ring := cfg.Ring
	if ring <= 0 {
		ring = DefaultRing
	}
	every := cfg.SampleEvery
	if every <= 0 {
		every = DefaultSampleEvery
	}
	slow := cfg.SlowThreshold
	if slow == 0 {
		slow = DefaultSlow
	}
	return &Tracer{
		ring:        make([]*TraceRecord, ring),
		sampleEvery: uint64(every),
		slow:        slow,
	}
}

// Start opens a root span. session labels the trace for per-session
// filtering ("" for one-shot operations). On a nil tracer it returns a
// nil span, which every instrumentation site tolerates.
func (t *Tracer) Start(session, name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(name)
	s.tracer = t
	s.session = session
	s.id = t.seq.Add(1)
	return s
}

// collect runs the sampler on a completed root span and retains or
// drops the trace.
func (t *Tracer) collect(root *Span) {
	slow := t.slow > 0 && root.dur >= t.slow
	nth := t.seen.Add(1)
	sampled := t.sampleEvery <= 1 || nth%t.sampleEvery == 0
	if !slow && !sampled {
		t.droppedSampled.Add(1)
		return
	}
	rec := &TraceRecord{ID: root.id, Session: root.session, Slow: slow, Root: root}
	t.mu.Lock()
	if t.ring[t.next] != nil {
		t.droppedEvicted.Add(1)
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	t.mu.Unlock()
}

// Records returns retained traces, newest first. session filters by
// session name ("" = all); limit bounds the result (0 = all retained).
func (t *Tracer) Records(session string, limit int) []*TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := len(t.ring)
	out := make([]*TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		rec := t.ring[(t.next-1-i+2*n)%n]
		if rec == nil {
			continue
		}
		if session != "" && rec.Session != session {
			continue
		}
		out = append(out, rec)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	t.mu.Unlock()
	return out
}

// Dropped returns the drop counters: traces the sampler discarded and
// traces the ring evicted to make room.
func (t *Tracer) Dropped() (sampled, evicted uint64) {
	if t == nil {
		return 0, 0
	}
	return t.droppedSampled.Load(), t.droppedEvicted.Load()
}

// Phase names of the batch decomposition returned by Phases. "verify"
// is derived (sweep time minus nested budget-wait); "other" is the root
// residue no phase claims (JSON decode, report marshalling, watcher
// broadcast).
const (
	PhaseAdmit      = SpanAdmit
	PhaseQueueWait  = SpanQueueWait
	PhaseBudgetWait = SpanBudgetWait
	PhaseProve      = SpanProve
	PhaseVerify     = SpanVerify
	PhasePersist    = SpanPersist
	PhaseOther      = "other"
)

// Phases decomposes a batch trace into the service phases: admit,
// queue-wait, budget-wait, prove, verify, persist and other. Sweep
// spans count as verify time minus the budget-wait they contain; round
// spans are part of their sweep and are not double-counted. The phases
// sum to the root duration.
func Phases(root *Span) map[string]time.Duration {
	out := map[string]time.Duration{
		PhaseAdmit:      0,
		PhaseQueueWait:  0,
		PhaseBudgetWait: 0,
		PhaseProve:      0,
		PhaseVerify:     0,
		PhasePersist:    0,
	}
	if root == nil {
		return out
	}
	var walk func(s *Span)
	walk = func(s *Span) {
		for _, c := range s.Children() {
			switch c.Name() {
			case SpanAdmit:
				out[PhaseAdmit] += c.Duration()
			case SpanQueueWait:
				out[PhaseQueueWait] += c.Duration()
			case SpanProve:
				out[PhaseProve] += c.Duration()
			case SpanPersist:
				out[PhasePersist] += c.Duration()
			case SpanSweep:
				var bw time.Duration
				for _, g := range c.Children() {
					if g.Name() == SpanBudgetWait {
						bw += g.Duration()
					}
				}
				out[PhaseBudgetWait] += bw
				out[PhaseVerify] += c.Duration() - bw
			case SpanBudgetWait:
				out[PhaseBudgetWait] += c.Duration()
			default:
				walk(c)
			}
		}
	}
	walk(root)
	var sum time.Duration
	for _, d := range out {
		sum += d
	}
	if other := root.Duration() - sum; other > 0 {
		out[PhaseOther] = other
	} else {
		out[PhaseOther] = 0
	}
	return out
}
