// Package obs is the repository's dependency-free tracing subsystem:
// a span model for decomposing an operation into timed, attributed,
// nested phases, and a Tracer that retains completed traces in a
// fixed-size ring buffer behind an always-on sampler.
//
// The package exists because the paper's contribution is a cost model
// — O(log n) certificate bits, one verification round in CONGEST — and
// a service reproducing it must be able to say where a request's time,
// rounds and bits actually went. A span carries exactly that: a name,
// a monotonic-clock start and duration, and a small set of integer or
// string attributes (mode, frontier size, certificate bits, messages,
// round index). Spans nest, so one planarcertd batch decomposes into
// queue-wait → prove → sweep → {budget-wait, round} and the tail of a
// latency histogram becomes attributable instead of guessable.
//
// Design constraints, in order:
//
//   - Nil-safety: every method on a nil *Tracer or nil *Span is a
//     no-op, so instrumented code paths carry no conditionals and a
//     disabled tracer costs nothing but a pointer test.
//   - Lock-cheap: a span locks only itself (attribute append, child
//     append), the ring buffer locks only around a pointer rotation,
//     and the drop counters are atomics. Nothing on the hot path
//     serialises against the collector.
//   - Always-on: the sampler keeps every SampleEvery-th trace for an
//     unconditioned baseline AND every trace at least SlowThreshold
//     long, so the interesting tail is never sampled away. Everything
//     dropped is counted, never silent.
//
// The planarcertd server owns a Tracer, exports its drop counters as
// Prometheus series, and serves the ring as JSON on /debug/traces (see
// internal/server); the public facade re-exports the types as
// planarcert.Tracer and planarcert.TraceSpan.
package obs
