package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("s", SpanBatch)
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// Every span method must be a no-op on nil.
	sp.SetInt("k", 1)
	sp.SetStr("k", "v")
	c := sp.Child("child")
	if c != nil {
		t.Fatal("nil span must hand out nil children")
	}
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v, want 0", d)
	}
	if got := sp.Children(); got != nil {
		t.Fatal("nil span has children")
	}
	if _, ok := sp.IntAttr("k"); ok {
		t.Fatal("nil span has attrs")
	}
	if recs := tr.Records("", 0); recs != nil {
		t.Fatal("nil tracer has records")
	}
	if s, e := tr.Dropped(); s != 0 || e != 0 {
		t.Fatal("nil tracer dropped counters non-zero")
	}
	// Phases on a nil root returns the zeroed phase map.
	ph := Phases(nil)
	if ph[PhaseProve] != 0 {
		t.Fatal("phases of nil root non-zero")
	}
}

func TestSpanNestingAndAttrs(t *testing.T) {
	tr := New(Config{Ring: 4})
	root := tr.Start("sess-1", SpanBatch)
	root.SetStr("mode", "repair")
	root.SetInt("updates", 7)
	sweep := root.Child(SpanSweep)
	sweep.SetInt("nodes", 42)
	round := sweep.Child(SpanRound)
	round.SetInt("messages", 84)
	round.End()
	sweep.End()
	root.End()

	recs := tr.Records("", 0)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	got := recs[0].Root
	if got.Name() != SpanBatch {
		t.Fatalf("root name %q", got.Name())
	}
	if v, ok := got.StrAttr("mode"); !ok || v != "repair" {
		t.Fatalf("mode attr = %q, %v", v, ok)
	}
	if v, ok := got.IntAttr("updates"); !ok || v != 7 {
		t.Fatalf("updates attr = %d, %v", v, ok)
	}
	kids := got.Children()
	if len(kids) != 1 || kids[0].Name() != SpanSweep {
		t.Fatalf("children = %v", kids)
	}
	if gk := kids[0].Children(); len(gk) != 1 || gk[0].Name() != SpanRound {
		t.Fatalf("grandchildren = %v", gk)
	}
	if recs[0].Session != "sess-1" {
		t.Fatalf("session = %q", recs[0].Session)
	}
	if got.Duration() <= 0 {
		t.Fatal("root duration not positive")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Config{Ring: 4})
	root := tr.Start("s", SpanBatch)
	root.End()
	d := root.Duration()
	time.Sleep(time.Millisecond)
	root.End() // second End must not re-collect or restamp
	if root.Duration() != d {
		t.Fatal("second End restamped the duration")
	}
	if got := len(tr.Records("", 0)); got != 1 {
		t.Fatalf("double-collected: %d records", got)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Config{Ring: 3, SlowThreshold: -1})
	for i := 0; i < 5; i++ {
		sp := tr.Start(fmt.Sprintf("s%d", i), SpanBatch)
		sp.End()
	}
	recs := tr.Records("", 0)
	if len(recs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recs))
	}
	// Newest first: s4, s3, s2.
	for i, want := range []string{"s4", "s3", "s2"} {
		if recs[i].Session != want {
			t.Fatalf("recs[%d] = %q, want %q", i, recs[i].Session, want)
		}
	}
	if _, evicted := tr.Dropped(); evicted != 2 {
		t.Fatalf("evicted = %d, want 2", evicted)
	}
}

func TestSamplerKeepsSlowTraces(t *testing.T) {
	// Sample 1-in-1000 but with a 5ms slow threshold: fast traces are
	// mostly dropped, slow traces always survive.
	tr := New(Config{Ring: 64, SampleEvery: 1000, SlowThreshold: 5 * time.Millisecond})
	for i := 0; i < 20; i++ {
		sp := tr.Start("fast", SpanBatch)
		sp.End()
	}
	slow := tr.Start("slow", SpanBatch)
	time.Sleep(10 * time.Millisecond)
	slow.End()
	recs := tr.Records("slow", 0)
	if len(recs) != 1 || !recs[0].Slow {
		t.Fatalf("slow trace not retained: %v", recs)
	}
	if sampled, _ := tr.Dropped(); sampled == 0 {
		t.Fatal("sampler dropped nothing despite 1-in-1000 rate")
	}
}

func TestSessionFilterAndLimit(t *testing.T) {
	tr := New(Config{Ring: 16})
	for i := 0; i < 4; i++ {
		tr.Start("a", SpanBatch).End()
		tr.Start("b", SpanBatch).End()
	}
	if got := len(tr.Records("a", 0)); got != 4 {
		t.Fatalf("session filter: %d, want 4", got)
	}
	if got := len(tr.Records("", 3)); got != 3 {
		t.Fatalf("limit: %d, want 3", got)
	}
	if got := len(tr.Records("c", 0)); got != 0 {
		t.Fatalf("unknown session: %d, want 0", got)
	}
}

func TestPhasesDecomposition(t *testing.T) {
	root := newSpan(SpanBatch)
	qw := root.Child(SpanQueueWait)
	qw.dur, qw.ended = 10*time.Millisecond, true
	pv := root.Child(SpanProve)
	pv.dur, pv.ended = 30*time.Millisecond, true
	sw := root.Child(SpanSweep)
	bw := sw.Child(SpanBudgetWait)
	bw.dur, bw.ended = 5*time.Millisecond, true
	rd := sw.Child(SpanRound) // part of the sweep, not double-counted
	rd.dur, rd.ended = 12*time.Millisecond, true
	sw.dur, sw.ended = 20*time.Millisecond, true
	ps := root.Child(SpanPersist)
	ps.dur, ps.ended = 4*time.Millisecond, true
	root.dur, root.ended = 70*time.Millisecond, true

	ph := Phases(root)
	want := map[string]time.Duration{
		PhaseQueueWait:  10 * time.Millisecond,
		PhaseProve:      30 * time.Millisecond,
		PhaseBudgetWait: 5 * time.Millisecond,
		PhaseVerify:     15 * time.Millisecond, // sweep 20ms minus budget-wait 5ms
		PhasePersist:    4 * time.Millisecond,
		PhaseOther:      6 * time.Millisecond, // 70 - 64
	}
	for k, w := range want {
		if ph[k] != w {
			t.Errorf("phase %s = %v, want %v", k, ph[k], w)
		}
	}
}

func TestJSONShape(t *testing.T) {
	tr := New(Config{Ring: 4})
	root := tr.Start("s", SpanBatch)
	root.SetStr("mode", "reprove")
	root.SetInt("updates", 3)
	root.Child(SpanSweep).End()
	root.End()
	raw, err := json.Marshal(tr.Records("", 0)[0])
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		ID      uint64 `json:"id"`
		Session string `json:"session"`
		Root    struct {
			Name          string                 `json:"name"`
			DurationNanos int64                  `json:"duration_nanos"`
			Attrs         map[string]interface{} `json:"attrs"`
			Children      []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if v.Session != "s" || v.Root.Name != SpanBatch || v.Root.DurationNanos <= 0 {
		t.Fatalf("bad shape: %s", raw)
	}
	if v.Root.Attrs["mode"] != "reprove" || v.Root.Attrs["updates"] != float64(3) {
		t.Fatalf("bad attrs: %v", v.Root.Attrs)
	}
	if len(v.Root.Children) != 1 || v.Root.Children[0].Name != SpanSweep {
		t.Fatalf("bad children: %s", raw)
	}
}

// TestConcurrentSpans hammers one tracer from many goroutines (run
// under -race in CI): concurrent root spans, concurrent child/attr
// writes on a shared span, concurrent Records reads.
func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{Ring: 32, SampleEvery: 2, SlowThreshold: -1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start(fmt.Sprintf("s%d", g), SpanBatch)
				c := sp.Child(SpanSweep)
				c.SetInt("nodes", int64(i))
				c.End()
				sp.End()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			for _, rec := range tr.Records("", 0) {
				_, _ = json.Marshal(rec)
			}
		}
	}()
	// Shared span: attrs and children from many goroutines.
	shared := tr.Start("shared", SpanBatch)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				shared.SetInt(fmt.Sprintf("k%d", g), int64(i))
				shared.Child(SpanRound).End()
			}
		}(g)
	}
	wg.Wait()
	shared.End()
	if sampled, _ := tr.Dropped(); sampled == 0 {
		t.Fatal("sampler never dropped at 1-in-2")
	}
}
