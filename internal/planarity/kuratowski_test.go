package planarity_test

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/planarity"
)

func TestKuratowskiOnPlanarInput(t *testing.T) {
	if _, err := planarity.Kuratowski(gen.Grid(3, 3)); !errors.Is(err, planarity.ErrPlanarInput) {
		t.Fatalf("Kuratowski on planar input: err = %v, want ErrPlanarInput", err)
	}
}

func TestKuratowskiOnK5(t *testing.T) {
	w, err := planarity.Kuratowski(gen.Complete(5))
	if err != nil {
		t.Fatalf("Kuratowski(K5): %v", err)
	}
	if w.Kind != planarity.KindK5 {
		t.Fatalf("kind = %v, want K5", w.Kind)
	}
	if len(w.Branch) != 5 || len(w.Paths) != 10 || len(w.Edges) != 10 {
		t.Fatalf("witness shape = (%d branch, %d paths, %d edges)",
			len(w.Branch), len(w.Paths), len(w.Edges))
	}
}

func TestKuratowskiOnK33(t *testing.T) {
	w, err := planarity.Kuratowski(gen.CompleteBipartite(3, 3))
	if err != nil {
		t.Fatalf("Kuratowski(K3,3): %v", err)
	}
	if w.Kind != planarity.KindK33 {
		t.Fatalf("kind = %v, want K3,3", w.Kind)
	}
	if len(w.Branch) != 6 || len(w.Paths) != 9 {
		t.Fatalf("witness shape = (%d branch, %d paths)", len(w.Branch), len(w.Paths))
	}
}

func TestKuratowskiOnSubdivisions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		k5 := trial%2 == 0
		g := gen.KuratowskiSubdivision(k5, 4, rng)
		w, err := planarity.Kuratowski(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := planarity.KindK33
		if k5 {
			want = planarity.KindK5
		}
		if w.Kind != want {
			t.Fatalf("trial %d: kind = %v, want %v", trial, w.Kind, want)
		}
	}
}

// TestKuratowskiWitnessProvesNonPlanarity is the completeness cross-check
// for the LR test: any graph reported non-planar must yield a verified
// Kuratowski subdivision, i.e. a *proof* of the answer.
func TestKuratowskiWitnessProvesNonPlanarity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	extracted := 0
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(12)
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := gen.GNM(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if planarity.IsPlanar(g) {
			continue
		}
		w, err := planarity.Kuratowski(g)
		if err != nil {
			t.Fatalf("trial %d (n=%d m=%d): %v", trial, n, m, err)
		}
		// The witness subgraph itself must be non-planar, and every witness
		// edge must belong to g.
		sub := graph.NewWithNodes(g.N())
		for _, e := range w.Edges {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("trial %d: witness edge %v not in g", trial, e)
			}
			sub.MustAddEdge(e.U, e.V)
		}
		if planarity.IsPlanar(sub) {
			t.Fatalf("trial %d: extracted witness subgraph is planar", trial)
		}
		extracted++
	}
	if extracted < 10 {
		t.Fatalf("only %d non-planar instances exercised; weak test", extracted)
	}
}

func TestKuratowskiOnPlantedHost(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := gen.PlantSubdivision(30, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	w, err := planarity.Kuratowski(g)
	if err != nil {
		t.Fatalf("Kuratowski(planted): %v", err)
	}
	if w.Kind != planarity.KindK5 && w.Kind != planarity.KindK33 {
		t.Fatalf("unexpected kind %v", w.Kind)
	}
}

func TestOuterplanar(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tests := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"path", gen.Path(10), true},
		{"cycle", gen.Cycle(10), true},
		{"tree", gen.RandomTree(20, rng), true},
		{"outerplanar", gen.RandomOuterplanar(15, 0.8, rng), true},
		{"K4", gen.Complete(4), false},
		{"K2,3", gen.CompleteBipartite(2, 3), false},
		{"wheel", gen.Wheel(8), false},
		{"grid-3x3", gen.Grid(3, 3), false},
		{"K5", gen.Complete(5), false},
		{"single", graph.NewWithNodes(1), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := planarity.Outerplanar(tc.g); got != tc.want {
				t.Fatalf("Outerplanar(%s) = %v, want %v", tc.name, got, tc.want)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if planarity.KindK5.String() != "K5" || planarity.KindK33.String() != "K3,3" {
		t.Fatal("Kind.String wrong")
	}
	if planarity.Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown Kind.String wrong")
	}
}
