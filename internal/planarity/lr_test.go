package planarity_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/embedding"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/planarity"
)

// mustPlanar asserts that g is reported planar and that the returned
// rotation system is a *proven* planar embedding (genus-0 Euler audit).
func mustPlanar(t *testing.T, g *graph.Graph, label string) *embedding.Rotation {
	t.Helper()
	ok, rot, err := planarity.Check(g)
	if err != nil {
		t.Fatalf("%s: Check error: %v", label, err)
	}
	if !ok {
		t.Fatalf("%s: reported non-planar, want planar (%v)", label, g)
	}
	planar, err := rot.IsPlanar(g)
	if err != nil {
		t.Fatalf("%s: embedding audit error: %v", label, err)
	}
	if !planar {
		t.Fatalf("%s: embedding failed Euler audit (genus %d)", label, rot.Genus(g))
	}
	return rot
}

func mustNonPlanar(t *testing.T, g *graph.Graph, label string) {
	t.Helper()
	ok, _, err := planarity.Check(g)
	if err != nil {
		t.Fatalf("%s: Check error: %v", label, err)
	}
	if ok {
		t.Fatalf("%s: reported planar, want non-planar (%v)", label, g)
	}
}

func TestTrivialGraphs(t *testing.T) {
	mustPlanar(t, graph.New(0), "empty")
	mustPlanar(t, graph.NewWithNodes(1), "K1")
	mustPlanar(t, graph.NewWithNodes(5), "5 isolated vertices")
	mustPlanar(t, gen.Path(2), "K2")
}

func TestKnownPlanarFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"path-10", gen.Path(10)},
		{"cycle-12", gen.Cycle(12)},
		{"star-9", gen.Star(9)},
		{"K4", gen.Complete(4)},
		{"K2,40", gen.CompleteBipartite(2, 40)},
		{"grid-7x9", gen.Grid(7, 9)},
		{"wheel-20", gen.Wheel(20)},
		{"caterpillar", gen.Caterpillar(10, 17)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mustPlanar(t, tc.g, tc.name)
		})
	}
}

func TestKnownNonPlanarFamilies(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"K5", gen.Complete(5)},
		{"K6", gen.Complete(6)},
		{"K3,3", gen.CompleteBipartite(3, 3)},
		{"K3,4", gen.CompleteBipartite(3, 4)},
		{"K4,4", gen.CompleteBipartite(4, 4)},
		{"petersen", petersen()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mustNonPlanar(t, tc.g, tc.name)
		})
	}
}

func petersen() *graph.Graph {
	g := graph.NewWithNodes(10)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, (i+1)%5)     // outer 5-cycle
		g.MustAddEdge(5+i, 5+(i+2)%5) // inner pentagram
		g.MustAddEdge(i, 5+i)         // spokes
	}
	return g
}

func TestQ3PlanarQ4Not(t *testing.T) {
	mustPlanar(t, hypercube(3), "Q3")
	mustNonPlanar(t, hypercube(4), "Q4")
}

func hypercube(d int) *graph.Graph {
	n := 1 << d
	g := graph.NewWithNodes(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

func TestStackedTriangulationsPlanarByConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{3, 4, 5, 8, 20, 100, 500} {
		g := gen.StackedTriangulation(n, rng)
		if want := 3*n - 6; g.M() != want {
			t.Fatalf("stacked n=%d has %d edges, want %d", n, g.M(), want)
		}
		rot := mustPlanar(t, g, "stacked")
		// A maximal planar embedding must have exactly 2n-4 faces.
		if f := rot.FaceCount(); f != 2*n-4 {
			t.Fatalf("stacked n=%d embedding has %d faces, want %d", n, f, 2*n-4)
		}
	}
}

func TestRandomPlanarAlwaysAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(60)
		m := (n - 1) + rng.Intn(2*n-4)
		g, err := gen.RandomPlanar(n, m, rng)
		if err != nil {
			t.Fatalf("RandomPlanar(%d,%d): %v", n, m, err)
		}
		mustPlanar(t, g, "random-planar")
	}
}

func TestRandomOuterplanarAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(40)
		g := gen.RandomOuterplanar(n, rng.Float64(), rng)
		mustPlanar(t, g, "outerplanar")
	}
}

func TestSeriesParallelAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		g := gen.SeriesParallel(1+rng.Intn(50), rng)
		mustPlanar(t, g, "series-parallel")
	}
}

func TestSubdivisionPreservesStatus(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		// Subdividing edges never changes planarity.
		planar, err := gen.RandomPlanar(12, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		mustPlanar(t, gen.SubdivideEdges(planar, 3, rng), "subdivided planar")
		mustNonPlanar(t, gen.KuratowskiSubdivision(true, 4, rng), "subdivided K5")
		mustNonPlanar(t, gen.KuratowskiSubdivision(false, 4, rng), "subdivided K3,3")
	}
}

func TestPlantedSubdivisionNonPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		g, err := gen.PlantSubdivision(20+rng.Intn(30), trial%2 == 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		mustNonPlanar(t, g, "planted subdivision")
	}
}

func TestMaximalPlanarPlusAnyEdgeNonPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := gen.StackedTriangulation(12, rng)
	added := 0
	for u := 0; u < g.N() && added < 8; u++ {
		for v := u + 1; v < g.N() && added < 8; v++ {
			if g.HasEdge(u, v) {
				continue
			}
			h := g.Clone()
			h.MustAddEdge(u, v)
			mustNonPlanar(t, h, "triangulation+edge")
			added++
		}
	}
	if added == 0 {
		t.Fatal("no non-adjacent pair found in triangulation")
	}
}

// TestMonotonicity exercises the hereditary property: every subgraph of a
// planar graph is planar; every supergraph of a non-planar graph is
// non-planar. Violations indicate internal inconsistency of the test.
func TestMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(14)
		maxM := n * (n - 1) / 2
		g, err := gen.GNM(n, rng.Intn(maxM+1), rng)
		if err != nil {
			t.Fatal(err)
		}
		wasPlanar := planarity.IsPlanar(g)
		edges := g.Edges()
		if len(edges) == 0 {
			continue
		}
		e := edges[rng.Intn(len(edges))]
		g.RemoveEdge(e.U, e.V)
		if wasPlanar && !planarity.IsPlanar(g) {
			t.Fatalf("trial %d: removing an edge made a planar graph non-planar", trial)
		}
	}
}

func TestDisconnectedGraphs(t *testing.T) {
	// Planar union.
	g := graph.NewWithNodes(8)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(4, 5)
	mustPlanar(t, g, "disconnected planar")

	// One non-planar component taints the union.
	h := gen.Complete(5)
	for i := 0; i < 3; i++ {
		h.MustAddNode(graph.ID(100 + i))
	}
	mustNonPlanar(t, h, "K5 + isolated vertices")
}

func TestScrambledIDsDoNotAffectResult(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g, err := gen.RandomPlanar(30, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	mustPlanar(t, gen.ScrambleIDs(g, rng), "scrambled planar")
}

func TestDensityEarlyExit(t *testing.T) {
	// m > 3n-6 must be rejected without running the DFS machinery.
	g := gen.Complete(8) // 28 > 18
	mustNonPlanar(t, g, "dense early exit")
}

func TestLargeRandomPlanarStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1000, 5000} {
		g := gen.StackedTriangulation(n, rng)
		mustPlanar(t, g, "large stacked")
	}
}

func TestRandomGNMAgainstEulerAudit(t *testing.T) {
	// For arbitrary random graphs, whenever LR reports planar the produced
	// embedding must pass the genus-0 audit (a complete proof of the
	// answer). Non-planar answers are cross-checked by Kuratowski
	// extraction in kuratowski_test.go.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 120; trial++ {
		n := 4 + rng.Intn(20)
		m := rng.Intn(3*n - 5)
		g, err := gen.GNM(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		ok, rot, err := planarity.Check(g)
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if ok {
			planar, err := rot.IsPlanar(g)
			if err != nil || !planar {
				t.Fatalf("trial %d: claimed-planar embedding failed audit: %v", trial, err)
			}
		}
	}
}
