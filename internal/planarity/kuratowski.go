package planarity

import (
	"errors"
	"fmt"

	"github.com/planarcert/planarcert/internal/graph"
)

// Kind labels the two Kuratowski obstructions.
type Kind int

const (
	// KindK5 marks a subdivision of the complete graph K5.
	KindK5 Kind = iota + 1
	// KindK33 marks a subdivision of the complete bipartite graph K3,3.
	KindK33
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindK5:
		return "K5"
	case KindK33:
		return "K3,3"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrPlanarInput is returned by Kuratowski when the input has no
// obstruction to extract.
var ErrPlanarInput = errors.New("planarity: graph is planar, no Kuratowski subgraph")

// Witness is a Kuratowski subgraph: a subdivision of K5 or K3,3 found
// inside a non-planar graph, given by its edges (indices into the original
// graph), its branch vertices, and the subdivision paths connecting them.
type Witness struct {
	Kind     Kind
	Edges    []graph.Edge
	Branch   []int   // 5 branch vertices for K5; 6 (3+3) for K3,3
	Paths    [][]int // one vertex path per branch edge, endpoints included
	Vertices []int   // all vertices participating in the subdivision
}

// Kuratowski extracts a Kuratowski witness from a non-planar graph by
// edge minimalization: edges are deleted one at a time while the graph
// stays non-planar; the edge-minimal non-planar subgraph that remains is
// exactly a subdivision of K5 or K3,3 (Kuratowski's theorem). The cost is
// O(m) planarity tests, i.e. O(m^2) time.
func Kuratowski(g *graph.Graph) (*Witness, error) {
	if IsPlanar(g) {
		return nil, ErrPlanarInput
	}
	work := g.Clone()
	for _, e := range g.Edges() {
		work.RemoveEdge(e.U, e.V)
		if IsPlanar(work) {
			work.MustAddEdge(e.U, e.V) // e is essential for non-planarity
		}
	}
	return classifyMinimal(work)
}

// classifyMinimal decomposes an edge-minimal non-planar graph into a
// Kuratowski witness: it must be a K5 or K3,3 subdivision once isolated
// vertices are ignored.
func classifyMinimal(work *graph.Graph) (*Witness, error) {
	w := &Witness{Edges: work.Edges()}
	for v := 0; v < work.N(); v++ {
		switch d := work.Degree(v); {
		case d == 0 || d == 2:
			// interior path vertex or unused
		case d == 4:
			w.Branch = append(w.Branch, v)
		case d == 3:
			w.Branch = append(w.Branch, v)
		default:
			return nil, fmt.Errorf("%w: degree-%d vertex %d in minimal obstruction",
				ErrInternal, d, v)
		}
	}
	deg3, deg4 := 0, 0
	for _, b := range w.Branch {
		switch work.Degree(b) {
		case 3:
			deg3++
		case 4:
			deg4++
		}
	}
	switch {
	case deg4 == 5 && deg3 == 0:
		w.Kind = KindK5
	case deg3 == 6 && deg4 == 0:
		w.Kind = KindK33
	default:
		return nil, fmt.Errorf("%w: branch degrees (deg3=%d, deg4=%d) match neither K5 nor K3,3",
			ErrInternal, deg3, deg4)
	}

	// Walk the subdivision paths between branch vertices.
	isBranch := make(map[int]bool, len(w.Branch))
	for _, b := range w.Branch {
		isBranch[b] = true
	}
	seen := make(map[graph.Edge]bool, work.M())
	for _, b := range w.Branch {
		for _, nb := range work.Neighbors(b) {
			e0 := graph.NewEdge(b, nb)
			if seen[e0] {
				continue
			}
			path := []int{b}
			prev, cur := b, nb
			seen[e0] = true
			for !isBranch[cur] {
				if work.Degree(cur) != 2 {
					return nil, fmt.Errorf("%w: path vertex %d has degree %d",
						ErrInternal, cur, work.Degree(cur))
				}
				path = append(path, cur)
				next := work.Neighbors(cur)[0]
				if next == prev {
					next = work.Neighbors(cur)[1]
				}
				seen[graph.NewEdge(cur, next)] = true
				prev, cur = cur, next
			}
			path = append(path, cur)
			w.Paths = append(w.Paths, path)
		}
	}
	wantPaths := 10
	if w.Kind == KindK33 {
		wantPaths = 9
	}
	if len(w.Paths) != wantPaths {
		return nil, fmt.Errorf("%w: %d subdivision paths for %v", ErrInternal, len(w.Paths), w.Kind)
	}
	vset := make(map[int]bool)
	for _, p := range w.Paths {
		for _, v := range p {
			vset[v] = true
		}
	}
	for v := range vset {
		w.Vertices = append(w.Vertices, v)
	}
	if err := w.verify(work); err != nil {
		return nil, err
	}
	if w.Kind == KindK33 {
		if err := w.orderBranchesBySide(); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// orderBranchesBySide reorders a K3,3 witness's branch vertices so that
// Branch[0..2] form one side of the bipartition and Branch[3..5] the
// other (consumers index sides by position).
func (w *Witness) orderBranchesBySide() error {
	idx := make(map[int]int, len(w.Branch))
	for i, b := range w.Branch {
		idx[b] = i
	}
	side := make([]int, len(w.Branch))
	for i := range side {
		side[i] = -1
	}
	side[0] = 0
	// Propagate through paths (each path joins opposite sides).
	for changed := true; changed; {
		changed = false
		for _, p := range w.Paths {
			a, b := idx[p[0]], idx[p[len(p)-1]]
			switch {
			case side[a] != -1 && side[b] == -1:
				side[b] = 1 - side[a]
				changed = true
			case side[b] != -1 && side[a] == -1:
				side[a] = 1 - side[b]
				changed = true
			}
		}
	}
	var first, second []int
	for i, b := range w.Branch {
		switch side[i] {
		case 0:
			first = append(first, b)
		case 1:
			second = append(second, b)
		default:
			return fmt.Errorf("%w: branch %d unreachable in bipartition", ErrInternal, b)
		}
	}
	if len(first) != 3 || len(second) != 3 {
		return fmt.Errorf("%w: bipartition sides %d+%d", ErrInternal, len(first), len(second))
	}
	w.Branch = append(first, second...)
	return nil
}

// verify checks that the witness's branch structure is exactly K5 or K3,3
// after suppressing interior path vertices.
func (w *Witness) verify(work *graph.Graph) error {
	// Build the branch multigraph from the paths.
	idx := make(map[int]int, len(w.Branch))
	for i, b := range w.Branch {
		idx[b] = i
	}
	k := len(w.Branch)
	adj := make([][]bool, k)
	for i := range adj {
		adj[i] = make([]bool, k)
	}
	for _, p := range w.Paths {
		a, ok1 := idx[p[0]]
		b, ok2 := idx[p[len(p)-1]]
		if !ok1 || !ok2 {
			return fmt.Errorf("%w: path endpoint not a branch vertex", ErrInternal)
		}
		if a == b {
			return fmt.Errorf("%w: subdivision path is a cycle at branch %d", ErrInternal, p[0])
		}
		if adj[a][b] {
			return fmt.Errorf("%w: parallel subdivision paths between branches", ErrInternal)
		}
		adj[a][b] = true
		adj[b][a] = true
		// Interior vertices must not be branch vertices.
		for _, v := range p[1 : len(p)-1] {
			if _, isB := idx[v]; isB {
				return fmt.Errorf("%w: branch vertex %d interior to a path", ErrInternal, v)
			}
		}
	}
	switch w.Kind {
	case KindK5:
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if !adj[i][j] {
					return fmt.Errorf("%w: K5 witness missing branch edge %d-%d", ErrInternal, i, j)
				}
			}
		}
	case KindK33:
		// The branch graph must be bipartite 3+3 with complete connections.
		side := make([]int, k)
		for i := range side {
			side[i] = -1
		}
		side[0] = 0
		queue := []int{0}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < k; v++ {
				if !adj[u][v] {
					continue
				}
				if side[v] == -1 {
					side[v] = 1 - side[u]
					queue = append(queue, v)
				} else if side[v] == side[u] {
					return fmt.Errorf("%w: K3,3 witness branch graph not bipartite", ErrInternal)
				}
			}
		}
		count := [2]int{}
		for _, s := range side {
			if s == -1 {
				return fmt.Errorf("%w: K3,3 witness branch graph disconnected", ErrInternal)
			}
			count[s]++
		}
		if count[0] != 3 || count[1] != 3 {
			return fmt.Errorf("%w: K3,3 witness parts %d+%d", ErrInternal, count[0], count[1])
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if side[i] != side[j] && i != j && !adj[i][j] {
					return fmt.Errorf("%w: K3,3 witness missing cross edge", ErrInternal)
				}
			}
		}
	}
	// Every witness edge must exist in the minimal graph (and hence in G).
	for _, e := range w.Edges {
		if !work.HasEdge(e.U, e.V) {
			return fmt.Errorf("%w: witness edge %v missing", ErrInternal, e)
		}
	}
	return nil
}

// Outerplanar reports whether g is outerplanar, using the apex
// characterisation: g is outerplanar iff g plus a universal vertex is
// planar.
func Outerplanar(g *graph.Graph) bool {
	apex := g.Clone()
	a := apex.MustAddNode(freshID(g))
	for v := 0; v < g.N(); v++ {
		apex.MustAddEdge(a, v)
	}
	return IsPlanar(apex)
}

// freshID returns an identifier not used by any node of g.
func freshID(g *graph.Graph) graph.ID {
	maxID := graph.ID(-1 << 62)
	for _, id := range g.IDs() {
		if id > maxID {
			maxID = id
		}
	}
	return maxID + 1
}
