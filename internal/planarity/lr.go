// Package planarity implements a linear-time planarity test with
// combinatorial-embedding extraction, plus Kuratowski-subgraph extraction
// and an outerplanarity test.
//
// The test is the left-right (LR) algorithm of de Fraysseix and Rosenstiehl,
// in the formulation of Brandes ("The left-right planarity test"). This is
// the algorithmic face of the Trémaux-order theory that Feuilloley et al.
// (PODC 2020) build their proof-labeling scheme on: a graph is planar iff
// the cotree edges of a DFS tree can be 2-coloured (left/right) so that
// same-side return edges nest. On success the algorithm yields a rotation
// system (a planar combinatorial embedding); every embedding produced here
// is additionally auditable with an Euler-formula check (embedding.IsPlanar).
package planarity

import (
	"errors"
	"fmt"
	"sort"

	"github.com/planarcert/planarcert/internal/embedding"
	"github.com/planarcert/planarcert/internal/graph"
)

// ErrInternal reports an internal invariant violation in the LR test. It
// should never be observed; it exists so that library code fails loudly
// without panicking.
var ErrInternal = errors.New("planarity: internal invariant violation")

const none = -1 // sentinel for "no edge" / "no vertex"

// interval is a maximal set of return edges sharing the same side,
// represented by its extreme edges (ids into the lr state), or empty.
type interval struct {
	low, high int32
}

func (i interval) empty() bool { return i.low == none && i.high == none }

// conflictPair groups the return-edge intervals of the left and right side.
type conflictPair struct {
	l, r interval
}

func emptyInterval() interval { return interval{low: none, high: none} }

func (p *conflictPair) swap() { p.l, p.r = p.r, p.l }

// lr holds the whole algorithm state. Edges are identified by the index of
// the undirected edge in a fixed ordering; each edge is oriented during the
// orientation DFS.
type lr struct {
	g *graph.Graph
	n int
	m int

	eid   map[graph.Edge]int32 // undirected edge -> edge id
	elist []graph.Edge         // edge id -> undirected edge
	from  []int32              // edge id -> tail after orientation (none if unoriented)
	to    []int32              // edge id -> head after orientation

	height     []int32 // vertex -> DFS height (none = unvisited)
	parentEdge []int32 // vertex -> incoming tree edge id (none at roots)
	roots      []int32

	lowpt    []int32
	lowpt2   []int32
	nesting  []int32
	ref      []int32
	side     []int8
	lowptE   []int32 // lowpt_edge
	stackBot []int32 // per-edge stack height snapshot

	outAdj [][]int32 // vertex -> outgoing edge ids, sorted by nesting depth

	s   []conflictPair
	err error // internal invariant violation, if any
}

// Check tests g for planarity. If planar it returns (true, rotation, nil)
// where rotation is a planar combinatorial embedding of g; otherwise
// (false, nil, nil). The error return is reserved for internal invariant
// violations and never fires on valid inputs.
func Check(g *graph.Graph) (bool, *embedding.Rotation, error) {
	n, m := g.N(), g.M()
	if n > 2 && m > 3*n-6 {
		return false, nil, nil // Euler bound: too many edges to be planar
	}
	st := newLR(g)
	st.orient()
	planar := st.test()
	if st.err != nil {
		return false, nil, st.err
	}
	if !planar {
		return false, nil, nil
	}
	rot, err := st.embed()
	if err != nil {
		return false, nil, err
	}
	return true, rot, nil
}

// IsPlanar is a convenience wrapper around Check discarding the embedding.
func IsPlanar(g *graph.Graph) bool {
	ok, _, _ := Check(g)
	return ok
}

func newLR(g *graph.Graph) *lr {
	n, m := g.N(), g.M()
	st := &lr{
		g:          g,
		n:          n,
		m:          m,
		eid:        make(map[graph.Edge]int32, m),
		from:       make([]int32, m),
		to:         make([]int32, m),
		height:     make([]int32, n),
		parentEdge: make([]int32, n),
		lowpt:      make([]int32, m),
		lowpt2:     make([]int32, m),
		nesting:    make([]int32, m),
		ref:        make([]int32, m),
		side:       make([]int8, m),
		lowptE:     make([]int32, m),
		stackBot:   make([]int32, m),
		outAdj:     make([][]int32, n),
	}
	st.elist = g.Edges()
	for i, e := range st.elist {
		st.eid[e] = int32(i)
	}
	for i := 0; i < m; i++ {
		st.from[i] = none
		st.to[i] = none
		st.ref[i] = none
		st.side[i] = 1
		st.lowptE[i] = none
	}
	for v := 0; v < n; v++ {
		st.height[v] = none
		st.parentEdge[v] = none
	}
	return st
}

func (st *lr) edgeID(u, v int) int32 { return st.eid[graph.NewEdge(u, v)] }

// orient runs the orientation DFS (phase 1): it orients every edge, builds
// the DFS forest, and computes lowpt, lowpt2 and nesting depth per edge.
func (st *lr) orient() {
	for v := 0; v < st.n; v++ {
		if st.height[v] == none {
			st.height[v] = 0
			st.roots = append(st.roots, int32(v))
			st.dfs1(int32(v))
		}
	}
}

func (st *lr) dfs1(v int32) {
	e := st.parentEdge[v]
	for _, w := range st.g.Neighbors(int(v)) {
		ei := st.edgeID(int(v), w)
		if st.from[ei] != none {
			continue // already oriented (from the other side, or parent)
		}
		st.from[ei] = v
		st.to[ei] = int32(w)
		st.lowpt[ei] = st.height[v]
		st.lowpt2[ei] = st.height[v]
		if st.height[w] == none { // tree edge
			st.parentEdge[w] = ei
			st.height[w] = st.height[v] + 1
			st.dfs1(int32(w))
		} else { // back edge
			st.lowpt[ei] = st.height[w]
		}
		// Nesting depth: interleaved ordering key for phase 2.
		st.nesting[ei] = 2 * st.lowpt[ei]
		if st.lowpt2[ei] < st.height[v] { // chordal: needs to be nested deeper
			st.nesting[ei]++
		}
		// Propagate lowpoints to the parent edge.
		if e != none {
			switch {
			case st.lowpt[ei] < st.lowpt[e]:
				st.lowpt2[e] = min32(st.lowpt[e], st.lowpt2[ei])
				st.lowpt[e] = st.lowpt[ei]
			case st.lowpt[ei] > st.lowpt[e]:
				st.lowpt2[e] = min32(st.lowpt2[e], st.lowpt[ei])
			default:
				st.lowpt2[e] = min32(st.lowpt2[e], st.lowpt2[ei])
			}
		}
	}
}

// sortOutgoing (re)builds outAdj sorted by the current nesting depths.
func (st *lr) sortOutgoing() {
	for v := range st.outAdj {
		st.outAdj[v] = st.outAdj[v][:0]
	}
	for ei := 0; ei < st.m; ei++ {
		if st.from[ei] != none {
			st.outAdj[st.from[ei]] = append(st.outAdj[st.from[ei]], int32(ei))
		}
	}
	for v := range st.outAdj {
		adj := st.outAdj[v]
		sort.SliceStable(adj, func(i, j int) bool {
			return st.nesting[adj[i]] < st.nesting[adj[j]]
		})
	}
}

// test runs the testing DFS (phase 2) and reports planarity.
func (st *lr) test() bool {
	st.sortOutgoing()
	for _, r := range st.roots {
		if !st.dfs2(r) {
			return false
		}
	}
	return true
}

func (st *lr) top() *conflictPair { return &st.s[len(st.s)-1] }

func (st *lr) pop() conflictPair {
	if len(st.s) == 0 {
		st.err = fmt.Errorf("%w: pop of empty conflict-pair stack", ErrInternal)
		return conflictPair{l: emptyInterval(), r: emptyInterval()}
	}
	p := st.s[len(st.s)-1]
	st.s = st.s[:len(st.s)-1]
	return p
}

func (st *lr) conflicting(i interval, b int32) bool {
	return !i.empty() && st.lowpt[i.high] > st.lowpt[b]
}

func (st *lr) lowest(p conflictPair) int32 {
	if p.l.empty() {
		return st.lowpt[p.r.low]
	}
	if p.r.empty() {
		return st.lowpt[p.l.low]
	}
	return min32(st.lowpt[p.l.low], st.lowpt[p.r.low])
}

func (st *lr) dfs2(v int32) bool {
	e := st.parentEdge[v]
	for idx, ei := range st.outAdj[v] {
		st.stackBot[ei] = int32(len(st.s))
		if st.parentEdge[st.to[ei]] == ei { // tree edge
			if !st.dfs2(st.to[ei]) {
				return false
			}
		} else { // back edge
			st.lowptE[ei] = ei
			st.s = append(st.s, conflictPair{l: emptyInterval(), r: interval{low: ei, high: ei}})
		}
		if st.lowpt[ei] < st.height[v] { // ei has a return edge below v
			if idx == 0 {
				if e != none {
					st.lowptE[e] = st.lowptE[ei]
				}
			} else if !st.addConstraints(ei, e) {
				return false
			}
		}
	}
	if e != none {
		u := st.from[e]
		st.trimBackEdges(u)
		// Side of e is the side of a highest return edge.
		if st.lowpt[e] < st.height[u] {
			if len(st.s) == 0 {
				st.err = fmt.Errorf("%w: empty stack at side resolution", ErrInternal)
				return false
			}
			hl := st.top().l.high
			hr := st.top().r.high
			if hl != none && (hr == none || st.lowpt[hl] > st.lowpt[hr]) {
				st.ref[e] = hl
			} else {
				st.ref[e] = hr
			}
		}
	}
	return true
}

func (st *lr) addConstraints(ei, e int32) bool {
	p := conflictPair{l: emptyInterval(), r: emptyInterval()}
	// Merge return edges of ei into p.r.
	for {
		q := st.pop()
		if st.err != nil {
			return false
		}
		if !q.l.empty() {
			q.swap()
		}
		if !q.l.empty() {
			return false // not planar
		}
		if st.lowpt[q.r.low] > st.lowpt[e] {
			// Merge intervals.
			if p.r.empty() {
				p.r.high = q.r.high
			} else {
				st.ref[p.r.low] = q.r.high
			}
			p.r.low = q.r.low
		} else {
			// Align with the parent edge's lowpoint edge.
			st.ref[q.r.low] = st.lowptE[e]
		}
		if int32(len(st.s)) == st.stackBot[ei] {
			break
		}
	}
	// Merge conflicting return edges of e_1, ..., e_{i-1} into p.l.
	for len(st.s) > 0 && (st.conflicting(st.top().l, ei) || st.conflicting(st.top().r, ei)) {
		q := st.pop()
		if st.conflicting(q.r, ei) {
			q.swap()
		}
		if st.conflicting(q.r, ei) {
			return false // not planar
		}
		// Merge interval below lowpt(ei) into p.r.
		if p.r.low != none {
			st.ref[p.r.low] = q.r.high
		}
		if q.r.low != none {
			p.r.low = q.r.low
		}
		if p.l.empty() {
			p.l.high = q.l.high
		} else {
			st.ref[p.l.low] = q.l.high
		}
		p.l.low = q.l.low
	}
	if !(p.l.empty() && p.r.empty()) {
		st.s = append(st.s, p)
	}
	return true
}

func (st *lr) trimBackEdges(u int32) {
	// Drop entire conflict pairs whose lowest return point is u.
	for len(st.s) > 0 && st.lowest(st.s[len(st.s)-1]) == st.height[u] {
		p := st.pop()
		if p.l.low != none {
			st.side[p.l.low] = -1
		}
	}
	if len(st.s) == 0 {
		return
	}
	// One more conflict pair to consider: trim its intervals.
	p := st.pop()
	for p.l.high != none && st.to[p.l.high] == u {
		p.l.high = st.ref[p.l.high]
	}
	if p.l.high == none && p.l.low != none {
		// Left interval just emptied.
		st.ref[p.l.low] = p.r.low
		st.side[p.l.low] = -1
		p.l.low = none
	}
	for p.r.high != none && st.to[p.r.high] == u {
		p.r.high = st.ref[p.r.high]
	}
	if p.r.high == none && p.r.low != none {
		st.ref[p.r.low] = p.l.low
		st.side[p.r.low] = -1
		p.r.low = none
	}
	st.s = append(st.s, p)
}

// resolveSign resolves side(e) through the ref chain, memoising results.
func (st *lr) resolveSign(e int32) int8 {
	// Iterative resolution to avoid deep recursion on ref chains.
	var chain []int32
	x := e
	for st.ref[x] != none {
		chain = append(chain, x)
		x = st.ref[x]
	}
	s := st.side[x]
	for i := len(chain) - 1; i >= 0; i-- {
		st.side[chain[i]] *= s
		s = st.side[chain[i]]
		st.ref[chain[i]] = none
	}
	return s
}

// halfEdgeID maps the directed edge (u,v) to its half-edge id in [0, 2m).
func (st *lr) halfEdgeID(u, v int32) int32 {
	ei := st.edgeID(int(u), int(v))
	if graph.NewEdge(int(u), int(v)).U == int(u) {
		return 2 * ei
	}
	return 2*ei + 1
}

// rotationBuilder is a set of circular doubly-linked half-edge lists, one
// per vertex, supporting O(1) insertion relative to a reference neighbor.
type rotationBuilder struct {
	st    *lr
	next  []int32 // half-edge -> next half-edge in rotation of its tail
	prev  []int32
	first []int32 // vertex -> first half-edge (none if empty)
	last  []int32
	count []int32
}

func newRotationBuilder(st *lr) *rotationBuilder {
	b := &rotationBuilder{
		st:    st,
		next:  make([]int32, 2*st.m),
		prev:  make([]int32, 2*st.m),
		first: make([]int32, st.n),
		last:  make([]int32, st.n),
		count: make([]int32, st.n),
	}
	for i := range b.next {
		b.next[i] = none
		b.prev[i] = none
	}
	for v := range b.first {
		b.first[v] = none
		b.last[v] = none
	}
	return b
}

// append adds (v,w) at the end of v's list.
func (b *rotationBuilder) append(v, w int32) {
	he := b.st.halfEdgeID(v, w)
	if b.first[v] == none {
		b.first[v] = he
		b.last[v] = he
	} else {
		b.next[b.last[v]] = he
		b.prev[he] = b.last[v]
		b.last[v] = he
	}
	b.count[v]++
}

// prependFirst adds (v,w) at the front of v's list.
func (b *rotationBuilder) prependFirst(v, w int32) {
	he := b.st.halfEdgeID(v, w)
	if b.first[v] == none {
		b.first[v] = he
		b.last[v] = he
	} else {
		b.next[he] = b.first[v]
		b.prev[b.first[v]] = he
		b.first[v] = he
	}
	b.count[v]++
}

// insertAfter inserts (v,w) immediately after (v,ref) in v's list.
func (b *rotationBuilder) insertAfter(v, w, ref int32) {
	he := b.st.halfEdgeID(v, w)
	rhe := b.st.halfEdgeID(v, ref)
	nxt := b.next[rhe]
	b.next[rhe] = he
	b.prev[he] = rhe
	b.next[he] = nxt
	if nxt == none {
		b.last[v] = he
	} else {
		b.prev[nxt] = he
	}
	b.count[v]++
}

// insertBefore inserts (v,w) immediately before (v,ref) in v's list.
func (b *rotationBuilder) insertBefore(v, w, ref int32) {
	he := b.st.halfEdgeID(v, w)
	rhe := b.st.halfEdgeID(v, ref)
	prv := b.prev[rhe]
	b.prev[rhe] = he
	b.next[he] = rhe
	b.prev[he] = prv
	if prv == none {
		b.first[v] = he
	} else {
		b.next[prv] = he
	}
	b.count[v]++
}

// build materialises the linked lists into a Rotation.
func (b *rotationBuilder) build() (*embedding.Rotation, error) {
	rot := embedding.NewRotation(b.st.n)
	for v := 0; v < b.st.n; v++ {
		deg := b.st.g.Degree(v)
		if int(b.count[v]) != deg {
			return nil, fmt.Errorf("%w: vertex %d has %d half-edges, degree %d",
				ErrInternal, v, b.count[v], deg)
		}
		order := make([]int, 0, deg)
		for he := b.first[v]; he != none; he = b.next[he] {
			e := b.st.elist[he/2]
			tail := e.U
			if he%2 == 1 {
				tail = e.V
			}
			if tail != v {
				return nil, fmt.Errorf("%w: half-edge %d in list of %d has tail %d",
					ErrInternal, he, v, tail)
			}
			order = append(order, e.Other(tail))
		}
		rot.Order[v] = order
	}
	return rot, nil
}

// embed runs the embedding phase (phase 3) and returns a planar rotation
// system for g.
func (st *lr) embed() (*embedding.Rotation, error) {
	// Resolve sides and fold them into the nesting depths.
	for ei := 0; ei < st.m; ei++ {
		if st.from[ei] == none {
			continue
		}
		st.nesting[ei] *= int32(st.resolveSign(int32(ei)))
	}
	st.sortOutgoing()

	b := newRotationBuilder(st)
	// Place outgoing half-edges of every vertex in signed nesting order.
	for v := 0; v < st.n; v++ {
		for _, ei := range st.outAdj[v] {
			b.append(int32(v), st.to[ei])
		}
	}
	leftRef := make([]int32, st.n)
	rightRef := make([]int32, st.n)
	for i := range leftRef {
		leftRef[i] = none
		rightRef[i] = none
	}
	for _, r := range st.roots {
		if err := st.dfs3(r, b, leftRef, rightRef); err != nil {
			return nil, err
		}
	}
	return b.build()
}

func (st *lr) dfs3(v int32, b *rotationBuilder, leftRef, rightRef []int32) error {
	for _, ei := range st.outAdj[v] {
		w := st.to[ei]
		if st.parentEdge[w] == ei { // tree edge: place (w -> v) first at w
			b.prependFirst(w, v)
			leftRef[v] = w
			rightRef[v] = w
			if err := st.dfs3(w, b, leftRef, rightRef); err != nil {
				return err
			}
		} else { // back edge (v -> w): insert at the ancestor w
			if rightRef[w] == none {
				return fmt.Errorf("%w: back edge (%d,%d) before any tree edge at %d",
					ErrInternal, v, w, w)
			}
			if st.side[ei] == 1 {
				b.insertAfter(w, v, rightRef[w])
			} else {
				b.insertBefore(w, v, leftRef[w])
				leftRef[w] = v
			}
		}
	}
	return nil
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
