// Package preprocess implements the paper's remark that "in many
// frameworks, including the one in this paper, the certificates can be
// computed in a distributed manner by the network itself during a
// pre-processing phase": the nodes elect the minimum identifier as
// leader, converge-cast the full topology up a BFS tree to it, the leader
// runs the (centralised) prover, and the certificates are disseminated
// back down the tree. All of it runs on the synchronous engine with
// bit-accounted messages, so experiments can report the true cost of
// self-certification.
package preprocess

import (
	"fmt"
	"sort"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// Stats reports the cost of the preprocessing phase.
type Stats struct {
	Rounds    int
	Messages  int
	TotalBits int
	MaxMsgBit int
	LeaderID  graph.ID
}

// Run executes the distributed preprocessing of scheme s on network g:
//
//  1. BFS-tree construction from the minimum identifier (the leader) —
//     simulated explicitly, one frontier layer per round;
//  2. convergecast: each node forwards its incident edge list (and those
//     received from its subtree) toward the leader;
//  3. the leader reconstructs the topology and runs s.Prove;
//  4. downcast: certificates travel back down the tree.
//
// It returns the certificates (valid for the scheme on this network),
// the cost statistics, and an error if the graph is disconnected or the
// prover rejects.
func Run(s pls.Scheme, g *graph.Graph) (map[graph.ID]bits.Certificate, *Stats, error) {
	n := g.N()
	if n == 0 {
		return nil, nil, fmt.Errorf("preprocess: empty network")
	}
	eng := dist.NewEngine(g)

	// --- Phase 1: leader election + BFS tree, layer by layer. ---
	leader := 0
	for v := 1; v < n; v++ {
		if g.IDOf(v) < g.IDOf(leader) {
			leader = v
		}
	}
	// (Finding the minimum ID takes O(D) rounds by flooding; we charge a
	// flood's worth of rounds and messages through Broadcast.)
	if _, err := eng.Broadcast([]int{leader}); err != nil {
		return nil, nil, fmt.Errorf("preprocess: leader flood: %w", err)
	}
	parent, depth := g.BFSFrom(leader)
	maxDepth := 0
	for v := 0; v < n; v++ {
		if depth[v] < 0 {
			return nil, nil, fmt.Errorf("preprocess: network is disconnected")
		}
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}

	// --- Phase 2: convergecast of edge lists (deepest layers first). ---
	// pending[v] accumulates the edge list of v's subtree, encoded as
	// (id, id) pairs. Each round, layer d nodes send everything to their
	// parents.
	pending := make([][][2]graph.ID, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if g.IDOf(v) < g.IDOf(w) {
				pending[v] = append(pending[v], [2]graph.ID{g.IDOf(v), g.IDOf(w)})
			}
		}
	}
	encodeEdges := func(edges [][2]graph.ID) bits.Certificate {
		var w bits.Writer
		for _, e := range edges {
			// Errors cannot occur for var encoding of non-negative IDs.
			_ = w.WriteVar(uint64(e[0]))
			_ = w.WriteVar(uint64(e[1]))
		}
		return bits.FromWriter(&w)
	}
	for d := maxDepth; d >= 1; d-- {
		layer := d
		inbox, err := eng.Round(func(u int) map[int]bits.Certificate {
			if depth[u] != layer || len(pending[u]) == 0 {
				return nil
			}
			return map[int]bits.Certificate{parent[u]: encodeEdges(pending[u])}
		})
		if err != nil {
			return nil, nil, err
		}
		// Parents absorb; decode to keep the simulation honest.
		for u := range inbox {
			for _, msg := range inbox[u] {
				r := msg.Cert.Reader()
				for r.Remaining() > 0 {
					a, err := r.ReadVar()
					if err != nil {
						return nil, nil, err
					}
					b, err := r.ReadVar()
					if err != nil {
						return nil, nil, err
					}
					pending[u] = append(pending[u], [2]graph.ID{graph.ID(a), graph.ID(b)})
				}
			}
		}
		// Senders have flushed their buffers.
		for v := 0; v < n; v++ {
			if depth[v] == layer {
				pending[v] = nil
			}
		}
	}

	// --- Phase 3: the leader reconstructs the topology and proves. ---
	edges := pending[leader]
	recon := graph.New(n)
	idSet := make(map[graph.ID]bool, n)
	addNode := func(id graph.ID) {
		if !idSet[id] {
			idSet[id] = true
			recon.MustAddNode(id)
		}
	}
	// Deterministic reconstruction order. The leader always knows itself
	// (needed for the single-node network, which has no edges).
	addNode(g.IDOf(leader))
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		addNode(e[0])
		addNode(e[1])
	}
	for _, e := range edges {
		iu, _ := recon.IndexOf(e[0])
		iv, _ := recon.IndexOf(e[1])
		if !recon.HasEdge(iu, iv) {
			recon.MustAddEdge(iu, iv)
		}
	}
	if recon.N() != n || recon.M() != g.M() {
		return nil, nil, fmt.Errorf("preprocess: leader reconstructed n=%d m=%d, want n=%d m=%d",
			recon.N(), recon.M(), n, g.M())
	}
	certs, err := s.Prove(recon)
	if err != nil {
		return nil, nil, fmt.Errorf("preprocess: leader prover: %w", err)
	}

	// --- Phase 4: downcast certificates layer by layer. ---
	// Each node forwards the certificates of its subtree; simulated by
	// sending each certificate along its tree path (charged per layer).
	assigned := make(map[graph.ID]bits.Certificate, n)
	assigned[g.IDOf(leader)] = certs[g.IDOf(leader)]
	// For accounting, bundle per-child subtree payloads.
	subtreeOf := make([][]int, n) // nodes in v's subtree (by index)
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		order = append(order, v)
	}
	sort.Slice(order, func(i, j int) bool { return depth[order[i]] > depth[order[j]] })
	for v := 0; v < n; v++ {
		subtreeOf[v] = []int{v}
	}
	for _, v := range order {
		if v != leader {
			subtreeOf[parent[v]] = append(subtreeOf[parent[v]], subtreeOf[v]...)
		}
	}
	for d := 0; d < maxDepth; d++ {
		layer := d
		inbox, err := eng.Round(func(u int) map[int]bits.Certificate {
			if depth[u] != layer {
				return nil
			}
			out := make(map[int]bits.Certificate)
			for _, w := range g.Neighbors(u) {
				if parent[w] != u || depth[w] != layer+1 {
					continue
				}
				// Bundle all certificates for w's subtree.
				var buf bits.Writer
				for _, x := range subtreeOf[w] {
					id := g.IDOf(x)
					c := certs[id]
					_ = buf.WriteVar(uint64(id))
					_ = buf.WriteVar(uint64(c.Bits))
					r := c.Reader()
					for i := 0; i < c.Bits; i++ {
						bit, _ := r.ReadBit()
						buf.WriteBit(bit)
					}
				}
				out[w] = bits.FromWriter(&buf)
			}
			return out
		})
		if err != nil {
			return nil, nil, err
		}
		for u := range inbox {
			for _, msg := range inbox[u] {
				r := msg.Cert.Reader()
				for r.Remaining() > 0 {
					idRaw, err := r.ReadVar()
					if err != nil {
						return nil, nil, err
					}
					sz, err := r.ReadVar()
					if err != nil {
						return nil, nil, err
					}
					var w bits.Writer
					for i := uint64(0); i < sz; i++ {
						bit, err := r.ReadBit()
						if err != nil {
							return nil, nil, err
						}
						w.WriteBit(bit)
					}
					if graph.ID(idRaw) == g.IDOf(u) {
						assigned[g.IDOf(u)] = bits.FromWriter(&w)
					}
				}
			}
		}
	}
	// Every node now holds its certificate (nodes deeper in the tree saw
	// theirs pass through).
	for v := 0; v < n; v++ {
		id := g.IDOf(v)
		if _, ok := assigned[id]; !ok {
			assigned[id] = certs[id]
		}
		if !assigned[id].Equal(certs[id]) {
			return nil, nil, fmt.Errorf("preprocess: node %d received a wrong certificate", id)
		}
	}
	return certs, &Stats{
		Rounds:    eng.Rounds,
		Messages:  eng.Messages,
		TotalBits: eng.TotalBits,
		MaxMsgBit: eng.MaxMsgBit,
		LeaderID:  g.IDOf(leader),
	}, nil
}
