package preprocess_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
	"github.com/planarcert/planarcert/internal/preprocess"
)

func TestPreprocessProducesValidCertificates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := []*graph.Graph{
		gen.Path(6),
		gen.Grid(4, 5),
		gen.ScrambleIDs(gen.StackedTriangulation(30, rng), rng),
	}
	scheme := core.PlanarScheme{}
	for i, g := range graphs {
		distCerts, stats, err := preprocess.Run(scheme, g)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		// The self-computed certificates must be a valid proof for the
		// original network (the prover is index-sensitive, so bit equality
		// with a particular central run is not required — validity is).
		out := dist.RunPLS(g, distCerts, scheme.Verify)
		if !out.AllAccept() {
			t.Fatalf("graph %d: self-computed certificates rejected: %v", i, out.Reasons)
		}
		if stats.Rounds == 0 || stats.Messages == 0 || stats.TotalBits == 0 {
			t.Fatalf("graph %d: missing cost accounting: %+v", i, stats)
		}
		// The elected leader carries the minimum identifier.
		for _, id := range g.IDs() {
			if id < stats.LeaderID {
				t.Fatalf("graph %d: leader %d is not the minimum ID", i, stats.LeaderID)
			}
		}
	}
}

func TestPreprocessedCertificatesVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.ScrambleIDs(gen.Grid(5, 5), rng)
	scheme := core.PlanarScheme{}
	certs, _, err := preprocess.Run(scheme, g)
	if err != nil {
		t.Fatal(err)
	}
	out := dist.RunPLS(g, certs, scheme.Verify)
	if !out.AllAccept() {
		t.Fatalf("self-computed certificates rejected: %v", out.Reasons)
	}
}

func TestPreprocessWithOtherSchemes(t *testing.T) {
	g := gen.Grid(3, 4)
	for _, s := range []pls.Scheme{pls.SpanningTreeScheme{}, core.OuterplanarScheme{}} {
		if s.Name() == "outerplanarity" {
			g = gen.Path(10) // outerplanar input for the outerplanar scheme
		}
		certs, _, err := preprocess.Run(s, g)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		out := dist.RunPLS(g, certs, s.Verify)
		if !out.AllAccept() {
			t.Fatalf("%s rejected: %v", s.Name(), out.Reasons)
		}
	}
}

func TestPreprocessErrors(t *testing.T) {
	if _, _, err := preprocess.Run(core.PlanarScheme{}, graph.New(0)); err == nil {
		t.Fatal("empty network accepted")
	}
	disc := graph.NewWithNodes(4)
	disc.MustAddEdge(0, 1)
	if _, _, err := preprocess.Run(core.PlanarScheme{}, disc); err == nil {
		t.Fatal("disconnected network accepted")
	}
	if _, _, err := preprocess.Run(core.PlanarScheme{}, gen.Complete(5)); err == nil {
		t.Fatal("leader prover certified K5 as planar")
	}
}

func TestPreprocessCostScales(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small, err := preprocessCost(gen.StackedTriangulation(20, rng))
	if err != nil {
		t.Fatal(err)
	}
	large, err := preprocessCost(gen.StackedTriangulation(200, rng))
	if err != nil {
		t.Fatal(err)
	}
	// Convergecast of Θ(m log n) bits: the large instance must cost more.
	if large.TotalBits <= small.TotalBits {
		t.Fatalf("cost did not scale: %d vs %d bits", small.TotalBits, large.TotalBits)
	}
}

func preprocessCost(g *graph.Graph) (*preprocess.Stats, error) {
	_, stats, err := preprocess.Run(core.PlanarScheme{}, g)
	return stats, err
}

func TestPreprocessSingleNode(t *testing.T) {
	g := graph.NewWithNodes(1)
	certs, stats, err := preprocess.Run(core.PlanarScheme{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(certs) != 1 {
		t.Fatalf("certs = %d", len(certs))
	}
	if stats.LeaderID != 0 {
		t.Fatalf("leader = %d", stats.LeaderID)
	}
}
