package core

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// POCert is the certificate of the standalone path-outerplanarity scheme
// (Lemma 2): the spanning-path proof (a TreeCert whose tree is the
// Hamiltonian path ranked by DFS depth) plus the covering interval.
// Rank is Tree.Dist + 1.
type POCert struct {
	Tree pls.TreeCert
	I    Interval
}

// Encode serialises the certificate; interval endpoints use the fixed
// width derived from Tree.N.
func (c *POCert) Encode(w *bits.Writer) error {
	if err := c.Tree.Encode(w); err != nil {
		return err
	}
	width := bits.WidthFor(uint64(c.Tree.N + 1))
	if err := w.WriteUint(uint64(c.I.A), width); err != nil {
		return err
	}
	return w.WriteUint(uint64(c.I.B), width)
}

// DecodePOCert reads a POCert into a fresh object.
func DecodePOCert(r *bits.Reader) (*POCert, error) {
	c := new(POCert)
	if err := decodePOCertInto(r, c); err != nil {
		return nil, err
	}
	return c, nil
}

// decodePOCertInto reads a POCert into c, which may be a reused slab
// entry.
func decodePOCertInto(r *bits.Reader, c *POCert) error {
	if err := pls.DecodeTreeCertInto(r, &c.Tree); err != nil {
		return err
	}
	width := bits.WidthFor(c.Tree.N + 1)
	a, err := r.ReadUint(width)
	if err != nil {
		return err
	}
	b, err := r.ReadUint(width)
	if err != nil {
		return err
	}
	c.I = Interval{A: int(a), B: int(b)}
	return nil
}

// POScheme is the proof-labeling scheme for path-outerplanar graphs of
// Lemma 2. The honest prover needs a witness ordering; if none is
// supplied it tries the node-index order and falls back to exhaustive
// search on small graphs (finding a witness is a Hamiltonian-path-like
// problem, which the prover — an unbounded oracle in the model — is
// allowed to solve).
type POScheme struct {
	// Witness optionally fixes the vertex ordering (by node index). If
	// empty, Prove derives one.
	Witness []int
	// SearchLimit bounds the exhaustive witness search (number of nodes);
	// zero means the default of 9.
	SearchLimit int
}

// Name implements pls.Scheme.
func (POScheme) Name() string { return "path-outerplanar" }

// witnessEdges maps g's edges into rank space for ordering ord.
func witnessEdges(g *graph.Graph, ord []int) ([]graph.Edge, error) {
	rank := make([]int, g.N())
	for i, v := range ord {
		rank[v] = i + 1
	}
	edges := make([]graph.Edge, 0, g.M())
	for _, e := range g.Edges() {
		edges = append(edges, graph.NewEdge(rank[e.U], rank[e.V]))
	}
	// The ordering must be a path in g: consecutive ranks adjacent.
	for i := 0; i+1 < len(ord); i++ {
		if !g.HasEdge(ord[i], ord[i+1]) {
			return nil, fmt.Errorf("ordering is not a Hamiltonian path at position %d", i)
		}
	}
	return edges, nil
}

// ValidWitness reports whether ord (node indices) is a path-outerplanarity
// witness for g.
func ValidWitness(g *graph.Graph, ord []int) bool {
	if len(ord) != g.N() {
		return false
	}
	edges, err := witnessEdges(g, ord)
	if err != nil {
		return false
	}
	_, err = ComputeIntervals(g.N(), edges)
	return err == nil
}

// FindWitness searches for a path-outerplanarity witness by backtracking
// over prefixes (a prefix is viable only while its induced edge set is
// non-crossing). Exponential in the worst case; intended for small n.
func FindWitness(g *graph.Graph) ([]int, bool) {
	n := g.N()
	if n == 0 {
		return nil, false
	}
	if n == 1 {
		return []int{0}, true
	}
	ord := make([]int, 0, n)
	used := make([]bool, n)
	var try func() bool
	try = func() bool {
		if len(ord) == n {
			return ValidWitness(g, ord)
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			if len(ord) > 0 && !g.HasEdge(ord[len(ord)-1], v) {
				continue // must extend the Hamiltonian path
			}
			used[v] = true
			ord = append(ord, v)
			if prefixViable(g, ord) && try() {
				return true
			}
			ord = ord[:len(ord)-1]
			used[v] = false
		}
		return false
	}
	if try() {
		return ord, true
	}
	return nil, false
}

// prefixViable checks Definition 1 restricted to edges with both endpoints
// placed: a crossing among placed edges can never be fixed later.
func prefixViable(g *graph.Graph, ord []int) bool {
	rank := make(map[int]int, len(ord))
	for i, v := range ord {
		rank[v] = i + 1
	}
	var edges []graph.Edge
	for _, e := range g.Edges() {
		ru, ok1 := rank[e.U]
		rv, ok2 := rank[e.V]
		if ok1 && ok2 {
			edges = append(edges, graph.NewEdge(ru, rv))
		}
	}
	return CheckWitnessPairwise(edges) == nil
}

// Prove implements pls.Scheme.
func (s POScheme) Prove(g *graph.Graph) (map[graph.ID]bits.Certificate, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", pls.ErrNotInClass)
	}
	ord := s.Witness
	if len(ord) == 0 {
		identity := make([]int, n)
		for i := range identity {
			identity[i] = i
		}
		if ValidWitness(g, identity) {
			ord = identity
		} else {
			limit := s.SearchLimit
			if limit == 0 {
				limit = 9
			}
			if n > limit {
				return nil, fmt.Errorf("%w: no witness supplied and n=%d exceeds search limit %d",
					pls.ErrNotInClass, n, limit)
			}
			found, ok := FindWitness(g)
			if !ok {
				return nil, fmt.Errorf("%w: not path-outerplanar", pls.ErrNotInClass)
			}
			ord = found
		}
	}
	edges, err := witnessEdges(g, ord)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pls.ErrNotInClass, err)
	}
	intervals, err := ComputeIntervals(n, edges)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pls.ErrNotInClass, err)
	}
	certs := make(map[graph.ID]bits.Certificate, n)
	// Subtree sizes along the path: node at rank r roots a path-suffix of
	// size n - r + 1.
	for i, v := range ord {
		rank := i + 1
		parent := v
		if i > 0 {
			parent = ord[i-1]
		}
		c := POCert{
			Tree: pls.TreeCert{
				SelfID: g.IDOf(v),
				RootID: g.IDOf(ord[0]),
				N:      uint64(n),
				Dist:   uint64(rank - 1),
				Parent: g.IDOf(parent),
				Size:   uint64(n - rank + 1),
			},
			I: intervals[rank],
		}
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			return nil, err
		}
		certs[g.IDOf(v)] = bits.FromWriter(&w)
	}
	return certs, nil
}

// Verify implements pls.Scheme: spanning-path checks (a spanning tree in
// which every node has at most one child) plus Algorithm 1.
func (s POScheme) Verify(view dist.View) error {
	sc := poScratchFor(view)
	sc.reset(len(view.Neighbors))
	view.Cert.ResetReader(&sc.r)
	if err := decodePOCertInto(&sc.r, &sc.self); err != nil {
		return err
	}
	self := &sc.self
	for i := range view.Neighbors {
		c := &sc.nbrs[i]
		view.Neighbors[i].Cert.ResetReader(&sc.r)
		if err := decodePOCertInto(&sc.r, c); err != nil {
			return err
		}
		sc.treeNbrs = append(sc.treeNbrs, &c.Tree)
	}
	if err := pls.VerifyTreeCert(&self.Tree, view.ID, view.Degree, sc.treeNbrs); err != nil {
		return err
	}
	// Path shape: at most one child in the certified spanning tree, and the
	// subtree size of a path suffix pins the child count exactly.
	children := 0
	for i := range sc.nbrs {
		if sc.nbrs[i].Tree.Parent == self.Tree.SelfID && sc.nbrs[i].Tree.Dist == self.Tree.Dist+1 {
			children++
		}
	}
	if children > 1 {
		return fmt.Errorf("core: rank %d has %d children, spanning order is not a path",
			self.Tree.Dist+1, children)
	}
	n := int(self.Tree.N)
	rank := int(self.Tree.Dist) + 1
	if rank > n {
		return fmt.Errorf("core: rank %d exceeds n=%d", rank, n)
	}
	pv := PONodeView{
		N:    n,
		Rank: rank,
		I:    self.I,
	}
	buf := sc.po.viewNbrs[:0]
	for i := range sc.nbrs {
		buf = append(buf, PONeighbor{Rank: int(sc.nbrs[i].Tree.Dist) + 1, I: sc.nbrs[i].I})
	}
	sc.po.viewNbrs = buf
	pv.Neighbors = buf
	return verifyPONode(pv, &sc.po)
}

var _ pls.Scheme = POScheme{}
