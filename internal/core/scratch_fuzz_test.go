package core_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// FuzzScratchReuse is the fuzzing arm of the decode-parity battery:
// decode an arbitrary certificate at node A into a worker scratch, then
// verify node B with the same (now dirty) scratch, and require B's
// verdict to match a fresh-scratch and a no-scratch run. Any residue a
// decode leaves behind — stale slab entries, unreset rank-map
// generations, aliased slices — surfaces as a verdict difference.
func FuzzScratchReuse(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	fixtures := []struct {
		scheme pls.Scheme
		g      *graph.Graph
	}{
		{core.PlanarScheme{}, gen.Grid(3, 3)},
		{core.OuterplanarScheme{}, gen.RandomOuterplanar(9, 0.6, rng)},
		{core.NonPlanarScheme{}, gen.Complete(5)},
		{core.POScheme{}, gen.RandomPathOuterplanar(9, 0.5, rng)},
		{pls.SpanningTreeScheme{}, gen.Grid(3, 3)},
	}
	type fixture struct {
		scheme pls.Scheme
		views  []dist.View
	}
	var fixed []fixture
	for _, fx := range fixtures {
		honest, err := fx.scheme.Prove(fx.g)
		if err != nil {
			f.Fatalf("prover for %s: %v", fx.scheme.Name(), err)
		}
		fixed = append(fixed, fixture{scheme: fx.scheme, views: viewsOf(fx.g, honest)})
	}
	// Seed with the honest certificates themselves and a few mangled ones.
	for si, fx := range fixed {
		a := fx.views[0].Cert
		b := fx.views[len(fx.views)-1].Cert
		f.Add(uint8(si), uint8(0), uint8(len(fx.views)-1),
			a.Data, uint16(a.Bits), b.Data, uint16(b.Bits))
		f.Add(uint8(si), uint8(1), uint8(1), []byte{0xFF, 0x00}, uint16(13), a.Data, uint16(a.Bits))
	}
	clamp := func(data []byte, nbits uint16) bits.Certificate {
		n := int(nbits)
		if max := len(data) * 8; n > max {
			n = max
		}
		return bits.Certificate{Data: data, Bits: n}
	}
	f.Fuzz(func(t *testing.T, sel, na, nb uint8, dataA []byte, bitsA uint16, dataB []byte, bitsB uint16) {
		if len(dataA) > 256 || len(dataB) > 256 {
			t.Skip("bound the decode work")
		}
		fx := fixed[int(sel)%len(fixed)]
		viewA := fx.views[int(na)%len(fx.views)]
		viewB := fx.views[int(nb)%len(fx.views)]
		viewA.Cert = clamp(dataA, bitsA)
		viewB.Cert = clamp(dataB, bitsB)

		// Dirty a scratch with node A's decode, then verify B on it.
		sc := new(dist.Scratch)
		viewA.Scratch = sc
		_ = verdictOf(fx.scheme, viewA)
		viewB.Scratch = sc
		reused := verdictOf(fx.scheme, viewB)

		// Baselines: a never-used scratch, and the no-scratch fresh path.
		viewB.Scratch = new(dist.Scratch)
		fresh := verdictOf(fx.scheme, viewB)
		viewB.Scratch = nil
		alloc := verdictOf(fx.scheme, viewB)

		if reused != fresh {
			t.Fatalf("%s: reused-scratch verdict %q != fresh-scratch verdict %q",
				fx.scheme.Name(), reused, fresh)
		}
		if fresh != alloc {
			t.Fatalf("%s: scratch verdict %q != allocating verdict %q",
				fx.scheme.Name(), fresh, alloc)
		}
	})
}
