package core

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/planarity"
	"github.com/planarcert/planarcert/internal/pls"
)

// Role of a node in the certified Kuratowski subdivision.
type Role uint8

// Subdivision roles.
const (
	RoleNone     Role = 0 // not part of the subdivision
	RoleBranch   Role = 1 // one of the 5 (K5) or 6 (K3,3) branch vertices
	RoleInterior Role = 2 // interior vertex of a subdivision path
)

// NonPlanarCert is the certificate of the folklore scheme for
// NON-planarity sketched in Section 2 of the paper: a spanning tree rooted
// at a branch vertex of a subdivided K5 or K3,3, the identifiers of all
// branch vertices (shared by every node, checked for consistency across
// edges), and each subdivision vertex's position.
type NonPlanarCert struct {
	Tree pls.TreeCert
	K5   bool // true: K5 witness (5 branches); false: K3,3 (6 branches)

	BranchIDs []graph.ID // 5 or 6 entries, shared network-wide

	Role Role
	// RoleBranch: index into BranchIDs.
	BranchIdx uint8
	// RoleInterior: the path from BranchIDs[PathA] to BranchIDs[PathB]
	// (PathA < PathB), 1-based position counted from PathA, and the
	// identifiers of the previous/next vertex on the path.
	PathA, PathB uint8
	Pos          uint64
	PrevID       graph.ID
	NextID       graph.ID
}

// Encode serialises the certificate.
func (c *NonPlanarCert) Encode(w *bits.Writer) error {
	if err := c.Tree.Encode(w); err != nil {
		return err
	}
	w.WriteBit(c.K5)
	want := 6
	if c.K5 {
		want = 5
	}
	if len(c.BranchIDs) != want {
		return fmt.Errorf("core: %d branch IDs, want %d", len(c.BranchIDs), want)
	}
	for _, id := range c.BranchIDs {
		if err := w.WriteVar(uint64(id)); err != nil {
			return err
		}
	}
	if err := w.WriteUint(uint64(c.Role), 2); err != nil {
		return err
	}
	switch c.Role {
	case RoleBranch:
		return w.WriteUint(uint64(c.BranchIdx), 3)
	case RoleInterior:
		if err := w.WriteUint(uint64(c.PathA), 3); err != nil {
			return err
		}
		if err := w.WriteUint(uint64(c.PathB), 3); err != nil {
			return err
		}
		if err := w.WriteVar(c.Pos); err != nil {
			return err
		}
		if err := w.WriteVar(uint64(c.PrevID)); err != nil {
			return err
		}
		return w.WriteVar(uint64(c.NextID))
	}
	return nil
}

// DecodeNonPlanarCert reads a NonPlanarCert into fresh objects.
func DecodeNonPlanarCert(r *bits.Reader) (*NonPlanarCert, error) {
	c := new(NonPlanarCert)
	if err := decodeNonPlanarCertInto(r, c); err != nil {
		return nil, err
	}
	return c, nil
}

// decodeNonPlanarCertInto reads a NonPlanarCert into c, reusing c's
// BranchIDs backing (c may be a slab entry holding a previous node's
// decode — every field is rewritten).
func decodeNonPlanarCertInto(r *bits.Reader, c *NonPlanarCert) error {
	*c = NonPlanarCert{BranchIDs: c.BranchIDs[:0]}
	if err := pls.DecodeTreeCertInto(r, &c.Tree); err != nil {
		return err
	}
	var err error
	if c.K5, err = r.ReadBit(); err != nil {
		return err
	}
	want := 6
	if c.K5 {
		want = 5
	}
	for i := 0; i < want; i++ {
		v, err := r.ReadVar()
		if err != nil {
			return err
		}
		c.BranchIDs = append(c.BranchIDs, graph.ID(v))
	}
	role, err := r.ReadUint(2)
	if err != nil {
		return err
	}
	c.Role = Role(role)
	switch c.Role {
	case RoleNone:
	case RoleBranch:
		v, err := r.ReadUint(3)
		if err != nil {
			return err
		}
		c.BranchIdx = uint8(v)
	case RoleInterior:
		a, err := r.ReadUint(3)
		if err != nil {
			return err
		}
		b, err := r.ReadUint(3)
		if err != nil {
			return err
		}
		c.PathA, c.PathB = uint8(a), uint8(b)
		if c.Pos, err = r.ReadVar(); err != nil {
			return err
		}
		p, err := r.ReadVar()
		if err != nil {
			return err
		}
		nx, err := r.ReadVar()
		if err != nil {
			return err
		}
		c.PrevID, c.NextID = graph.ID(p), graph.ID(nx)
	default:
		return fmt.Errorf("core: invalid role %d", role)
	}
	return nil
}

// NonPlanarScheme is the proof-labeling scheme for the class of NON-planar
// graphs ("folklore in the context of distributed certification",
// Section 2): the prover exhibits a subdivided K5 or K3,3 and a spanning
// tree rooted inside it.
type NonPlanarScheme struct{}

// Name implements pls.Scheme.
func (NonPlanarScheme) Name() string { return "non-planarity" }

// Prove implements pls.Scheme.
func (NonPlanarScheme) Prove(g *graph.Graph) (map[graph.ID]bits.Certificate, error) {
	proof, err := BuildNonPlanarProof(g)
	if err != nil {
		return nil, err
	}
	return EncodeNonPlanarCerts(proof.Certs)
}

// NonPlanarProof is the structured output of the non-planarity prover:
// the per-node certificates plus the witness subgraph and spanning-tree
// root they were built from. The dynamic subsystem uses the structure to
// decide which updates leave the certificates valid (any edge addition,
// and any removal that misses both the witness and the tree).
type NonPlanarProof struct {
	Certs map[graph.ID]*NonPlanarCert
	// WitnessEdges are the edges of the K5/K3,3 subdivision, by index.
	WitnessEdges []graph.Edge
	// Root is the spanning-tree root (branch vertex 0), by index.
	Root int
}

// BuildNonPlanarProof computes the structured folklore certificates.
func BuildNonPlanarProof(g *graph.Graph) (*NonPlanarProof, error) {
	if g.N() == 0 || !g.Connected() {
		return nil, fmt.Errorf("%w: need a connected graph", pls.ErrNotInClass)
	}
	witness, err := planarity.Kuratowski(g)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pls.ErrNotInClass, err)
	}
	k5 := witness.Kind == planarity.KindK5
	branchIdx := make(map[int]uint8, len(witness.Branch))
	branchIDs := make([]graph.ID, len(witness.Branch))
	for i, b := range witness.Branch {
		branchIdx[b] = uint8(i)
		branchIDs[i] = g.IDOf(b)
	}
	// Spanning tree rooted at branch 0.
	tcs, err := pls.BuildTreeCerts(g, witness.Branch[0])
	if err != nil {
		return nil, err
	}
	certs := make(map[graph.ID]*NonPlanarCert, g.N())
	for v := 0; v < g.N(); v++ {
		certs[g.IDOf(v)] = &NonPlanarCert{
			Tree:      *tcs[g.IDOf(v)],
			K5:        k5,
			BranchIDs: branchIDs,
			Role:      RoleNone,
		}
	}
	for b, idx := range branchIdx {
		c := certs[g.IDOf(b)]
		c.Role = RoleBranch
		c.BranchIdx = idx
	}
	for _, path := range witness.Paths {
		a := branchIdx[path[0]]
		b := branchIdx[path[len(path)-1]]
		verts := path
		if a > b {
			a, b = b, a
			verts = make([]int, len(path))
			for i, v := range path {
				verts[len(path)-1-i] = v
			}
		}
		for p := 1; p < len(verts)-1; p++ {
			c := certs[g.IDOf(verts[p])]
			c.Role = RoleInterior
			c.PathA, c.PathB = a, b
			c.Pos = uint64(p)
			c.PrevID = g.IDOf(verts[p-1])
			c.NextID = g.IDOf(verts[p+1])
		}
	}
	return &NonPlanarProof{
		Certs:        certs,
		WitnessEdges: append([]graph.Edge(nil), witness.Edges...),
		Root:         witness.Branch[0],
	}, nil
}

// EncodeNonPlanarCerts serialises structured non-planarity certificates.
func EncodeNonPlanarCerts(objs map[graph.ID]*NonPlanarCert) (map[graph.ID]bits.Certificate, error) {
	out := make(map[graph.ID]bits.Certificate, len(objs))
	for id, c := range objs {
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			return nil, err
		}
		out[id] = bits.FromWriter(&w)
	}
	return out, nil
}

// requiredPeers lists the branch indices that branch b must reach by a
// subdivision path.
func requiredPeers(k5 bool, b uint8) []uint8 {
	var out []uint8
	if k5 {
		for i := uint8(0); i < 5; i++ {
			if i != b {
				out = append(out, i)
			}
		}
		return out
	}
	// K3,3: sides {0,1,2} and {3,4,5}.
	if b < 3 {
		return []uint8{3, 4, 5}
	}
	return []uint8{0, 1, 2}
}

// containsID reports whether id occurs in ids (at most 6 entries — the
// branch list — so a scan beats any set structure).
func containsID(ids []graph.ID, id graph.ID) bool {
	for _, b := range ids {
		if b == id {
			return true
		}
	}
	return false
}

// Verify implements pls.Scheme.
func (NonPlanarScheme) Verify(view dist.View) error {
	sc := npScratchFor(view)
	sc.reset(len(view.Neighbors))
	view.Cert.ResetReader(&sc.r)
	if err := decodeNonPlanarCertInto(&sc.r, &sc.self); err != nil {
		return err
	}
	self := &sc.self
	if self.Tree.SelfID != view.ID {
		return fmt.Errorf("core: certificate claims ID %d, node is %d", self.Tree.SelfID, view.ID)
	}
	for i := range view.Neighbors {
		c := &sc.nbrs[i]
		view.Neighbors[i].Cert.ResetReader(&sc.r)
		if err := decodeNonPlanarCertInto(&sc.r, c); err != nil {
			return err
		}
		if c.Tree.SelfID != view.Neighbors[i].ID {
			return fmt.Errorf("core: neighbor certificate ID mismatch")
		}
		sc.treeNbrs = append(sc.treeNbrs, &c.Tree)
	}
	if err := pls.VerifyTreeCert(&self.Tree, view.ID, view.Degree, sc.treeNbrs); err != nil {
		return err
	}
	// Global consistency of the witness description (in view order, so a
	// node with several disagreeing neighbors reports the same one every
	// run).
	for i := range view.Neighbors {
		id, nc := view.Neighbors[i].ID, &sc.nbrs[i]
		if nc.K5 != self.K5 {
			return fmt.Errorf("core: neighbor %d disagrees on witness kind", id)
		}
		for i := range self.BranchIDs {
			if nc.BranchIDs[i] != self.BranchIDs[i] {
				return fmt.Errorf("core: neighbor %d disagrees on branch IDs", id)
			}
		}
	}
	// Branch identifiers must be pairwise distinct.
	for i, id := range self.BranchIDs {
		if containsID(self.BranchIDs[:i], id) {
			return fmt.Errorf("core: duplicate branch ID %d", id)
		}
	}
	// The spanning-tree root must be branch 0, so the subdivision actually
	// lives in this network.
	if self.Tree.Dist == 0 && self.Tree.SelfID != self.BranchIDs[0] {
		return fmt.Errorf("core: root %d is not branch 0 (%d)", self.Tree.SelfID, self.BranchIDs[0])
	}

	switch self.Role {
	case RoleNone:
		if containsID(self.BranchIDs, view.ID) {
			return fmt.Errorf("core: node %d is listed as a branch but has role none", view.ID)
		}
		return nil

	case RoleBranch:
		b := self.BranchIdx
		if int(b) >= len(self.BranchIDs) {
			return fmt.Errorf("core: branch index %d out of range", b)
		}
		if self.BranchIDs[b] != view.ID {
			return fmt.Errorf("core: node %d claims branch %d owned by %d", view.ID, b, self.BranchIDs[b])
		}
		for _, peer := range requiredPeers(self.K5, b) {
			lo, hi := b, peer
			if lo > hi {
				lo, hi = hi, lo
			}
			found := false
			for i := range sc.nbrs {
				nc := &sc.nbrs[i]
				if nc.Role == RoleBranch && nc.BranchIdx == peer {
					found = true // direct branch-branch edge
					break
				}
				if nc.Role != RoleInterior || nc.PathA != lo || nc.PathB != hi {
					continue
				}
				// First interior from my side.
				if b == lo && nc.Pos == 1 && nc.PrevID == view.ID {
					found = true
					break
				}
				if b == hi && nc.NextID == view.ID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("core: branch %d has no path toward branch %d", b, peer)
			}
		}
		return nil

	case RoleInterior:
		if containsID(self.BranchIDs, view.ID) {
			return fmt.Errorf("core: interior node %d is listed as a branch", view.ID)
		}
		lo, hi := self.PathA, self.PathB
		if lo >= hi || int(hi) >= len(self.BranchIDs) {
			return fmt.Errorf("core: invalid path (%d,%d)", lo, hi)
		}
		// K3,3 paths join opposite sides.
		if !self.K5 && !(lo < 3 && hi >= 3) {
			return fmt.Errorf("core: path (%d,%d) joins same side of K3,3", lo, hi)
		}
		if self.Pos < 1 {
			return fmt.Errorf("core: interior position %d", self.Pos)
		}
		if self.PrevID == self.NextID {
			return fmt.Errorf("core: prev and next coincide")
		}
		prev := sc.byID(view, self.PrevID)
		next := sc.byID(view, self.NextID)
		if prev == nil || next == nil {
			return fmt.Errorf("core: prev/next not neighbors")
		}
		// Previous on the path: interior at Pos-1, or branch lo if Pos==1.
		if self.Pos == 1 {
			if !(prev.Role == RoleBranch && prev.BranchIdx == lo) {
				return fmt.Errorf("core: predecessor of first interior is not branch %d", lo)
			}
		} else if !(prev.Role == RoleInterior && prev.PathA == lo && prev.PathB == hi &&
			prev.Pos == self.Pos-1 && prev.NextID == view.ID) {
			return fmt.Errorf("core: predecessor mismatch on path (%d,%d) at %d", lo, hi, self.Pos)
		}
		// Next on the path: interior at Pos+1, or branch hi.
		if next.Role == RoleBranch {
			if next.BranchIdx != hi {
				return fmt.Errorf("core: successor branch %d, want %d", next.BranchIdx, hi)
			}
		} else if !(next.Role == RoleInterior && next.PathA == lo && next.PathB == hi &&
			next.Pos == self.Pos+1 && next.PrevID == view.ID) {
			return fmt.Errorf("core: successor mismatch on path (%d,%d) at %d", lo, hi, self.Pos)
		}
		return nil
	}
	return fmt.Errorf("core: invalid role %d", self.Role)
}

var _ pls.Scheme = NonPlanarScheme{}
