package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
)

func TestComputeIntervalsBasic(t *testing.T) {
	// Ranks 1..6 with nested chords {1,6}, {2,5}, {2,4}.
	edges := []graph.Edge{{U: 1, V: 6}, {U: 2, V: 5}, {U: 2, V: 4}}
	ivs, err := ComputeIntervals(6, edges)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]Interval{
		1: Sentinel(6),
		2: {1, 6},
		3: {2, 4},
		4: {2, 5},
		5: {1, 6},
		6: Sentinel(6),
	}
	for x, w := range want {
		if ivs[x] != w {
			t.Fatalf("I(%d) = %v, want %v", x, ivs[x], w)
		}
	}
}

func TestComputeIntervalsDetectsCrossing(t *testing.T) {
	edges := []graph.Edge{{U: 1, V: 3}, {U: 2, V: 4}}
	if _, err := ComputeIntervals(4, edges); !errors.Is(err, ErrCrossing) {
		t.Fatalf("crossing not detected: %v", err)
	}
	if err := CheckWitnessPairwise(edges); !errors.Is(err, ErrCrossing) {
		t.Fatalf("pairwise check missed the crossing: %v", err)
	}
}

func TestComputeIntervalsSharedEndpointsAllowed(t *testing.T) {
	// a <= c < d <= b with a == c is legal (Definition 1).
	edges := []graph.Edge{{U: 1, V: 5}, {U: 1, V: 3}, {U: 3, V: 5}}
	if _, err := ComputeIntervals(5, edges); err != nil {
		t.Fatal(err)
	}
	if err := CheckWitnessPairwise(edges); err != nil {
		t.Fatal(err)
	}
}

func TestComputeIntervalsRejectsBadRanks(t *testing.T) {
	if _, err := ComputeIntervals(3, []graph.Edge{{U: 0, V: 2}}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := ComputeIntervals(3, []graph.Edge{{U: 2, V: 5}}); err == nil {
		t.Fatal("rank beyond n accepted")
	}
}

// TestSweepAgreesWithPairwise cross-validates the two witness checkers on
// random chord sets.
func TestSweepAgreesWithPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(12)
		var edges []graph.Edge
		cnt := rng.Intn(8)
		for i := 0; i < cnt; i++ {
			a := 1 + rng.Intn(n-1)
			b := a + 1 + rng.Intn(n-a)
			if b > a+1 { // skip path-like edges; they never matter
				edges = append(edges, graph.Edge{U: a, V: b})
			}
		}
		_, sweepErr := ComputeIntervals(n, edges)
		pairErr := CheckWitnessPairwise(edges)
		if (sweepErr == nil) != (pairErr == nil) {
			t.Fatalf("trial %d: sweep=%v pairwise=%v edges=%v", trial, sweepErr, pairErr, edges)
		}
	}
}

// honestPOView builds the view of rank x in the PO graph given by edges.
func honestPOView(n, x int, edges []graph.Edge, ivs []Interval) PONodeView {
	v := PONodeView{N: n, Rank: x, I: ivs[x]}
	add := func(r int) {
		v.Neighbors = append(v.Neighbors, PONeighbor{Rank: r, I: ivs[r]})
	}
	if x > 1 {
		add(x - 1)
	}
	if x < n {
		add(x + 1)
	}
	for _, e := range edges {
		if e.U == x && e.V > x+1 {
			add(e.V)
		}
		if e.V == x && e.U < x-1 {
			add(e.U)
		}
	}
	return v
}

func TestVerifyPONodeCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		g := gen.RandomPathOuterplanar(n, rng.Float64(), rng)
		var chords []graph.Edge
		for _, e := range g.Edges() {
			if e.V-e.U > 1 {
				chords = append(chords, graph.NewEdge(e.U+1, e.V+1)) // to ranks
			}
		}
		ivs, err := ComputeIntervals(n, chords)
		if err != nil {
			t.Fatalf("trial %d: generator produced a crossing: %v", trial, err)
		}
		for x := 1; x <= n; x++ {
			if err := VerifyPONode(honestPOView(n, x, chords, ivs)); err != nil {
				t.Fatalf("trial %d: honest view rejected at %d: %v", trial, x, err)
			}
		}
	}
}

func TestVerifyPONodeRejectsForgeries(t *testing.T) {
	n := 8
	chords := []graph.Edge{{U: 1, V: 6}, {U: 2, V: 5}, {U: 6, V: 8}}
	ivs, err := ComputeIntervals(n, chords)
	if err != nil {
		t.Fatal(err)
	}
	base := func(x int) PONodeView { return honestPOView(n, x, chords, ivs) }

	t.Run("bad rank", func(t *testing.T) {
		v := base(3)
		v.Rank = 0
		if VerifyPONode(v) == nil {
			t.Fatal("accepted rank 0")
		}
	})
	t.Run("interval not covering", func(t *testing.T) {
		v := base(3)
		v.I = Interval{A: 4, B: 7}
		if VerifyPONode(v) == nil {
			t.Fatal("accepted non-covering interval")
		}
	})
	t.Run("boundary must be sentinel", func(t *testing.T) {
		v := base(1)
		v.I = Interval{A: 0, B: 5}
		if VerifyPONode(v) == nil {
			t.Fatal("accepted non-sentinel at rank 1")
		}
	})
	t.Run("missing path neighbor", func(t *testing.T) {
		v := base(4)
		var kept []PONeighbor
		for _, nb := range v.Neighbors {
			if nb.Rank != 5 {
				kept = append(kept, nb)
			}
		}
		v.Neighbors = kept
		if VerifyPONode(v) == nil {
			t.Fatal("accepted missing successor")
		}
	})
	t.Run("duplicate neighbor rank", func(t *testing.T) {
		v := base(4)
		v.Neighbors = append(v.Neighbors, v.Neighbors[0])
		if VerifyPONode(v) == nil {
			t.Fatal("accepted duplicate neighbor")
		}
	})
	t.Run("neighbor outside interval", func(t *testing.T) {
		v := base(3) // I(3) = [2,5]
		v.Neighbors = append(v.Neighbors, PONeighbor{Rank: 7, I: ivs[7]})
		if VerifyPONode(v) == nil {
			t.Fatal("accepted neighbor outside I(x)")
		}
	})
	t.Run("wrong chain interval", func(t *testing.T) {
		v := base(2) // right neighbors 3 and 5: I(3) must be [2,5]
		for i := range v.Neighbors {
			if v.Neighbors[i].Rank == 3 {
				v.Neighbors[i].I = Interval{A: 2, B: 4}
			}
		}
		if VerifyPONode(v) == nil {
			t.Fatal("accepted broken right chain")
		}
	})
	t.Run("anchored interval to non-neighbor", func(t *testing.T) {
		v := base(3)
		// Neighbor 4's interval claims edge {3, 7}; 7 is not adjacent to 3.
		for i := range v.Neighbors {
			if v.Neighbors[i].Rank == 4 {
				v.Neighbors[i].I = Interval{A: 3, B: 7}
			}
		}
		if VerifyPONode(v) == nil {
			t.Fatal("accepted anchored interval to non-neighbor")
		}
	})
}

func TestFindWitnessOnKnownGraphs(t *testing.T) {
	// A path plus nested chords has an obvious witness.
	g := gen.RandomPathOuterplanar(7, 0.9, rand.New(rand.NewSource(10)))
	ord, ok := FindWitness(g)
	if !ok {
		t.Fatal("no witness found for a PO graph")
	}
	if !ValidWitness(g, ord) {
		t.Fatal("FindWitness returned an invalid witness")
	}
	// K4 is Hamiltonian but not path-outerplanar.
	if _, ok := FindWitness(gen.Complete(4)); ok {
		t.Fatal("witness found for K4")
	}
	// Stars have no Hamiltonian path at all.
	if _, ok := FindWitness(gen.Star(5)); ok {
		t.Fatal("witness found for a star")
	}
	// Cycles are path-outerplanar (the wrap edge spans everything).
	if _, ok := FindWitness(gen.Cycle(6)); !ok {
		t.Fatal("no witness for a cycle")
	}
}

func TestValidWitnessRejects(t *testing.T) {
	g := gen.Path(4)
	if ValidWitness(g, []int{0, 1, 2}) {
		t.Fatal("short witness accepted")
	}
	if ValidWitness(g, []int{0, 2, 1, 3}) {
		t.Fatal("non-Hamiltonian-path order accepted")
	}
	if !ValidWitness(g, []int{0, 1, 2, 3}) {
		t.Fatal("identity witness rejected")
	}
	if !ValidWitness(g, []int{3, 2, 1, 0}) {
		t.Fatal("reversed witness rejected")
	}
}
