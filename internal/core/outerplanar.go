package core

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/embedding"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/planarity"
	"github.com/planarcert/planarcert/internal/pls"
)

// OuterplanarScheme is the extension announced in the paper's conclusion:
// a 1-round proof-labeling scheme for outerplanarity with O(log n)-bit
// certificates, built on exactly the machinery of Theorem 1.
//
// The certificates are the planarity certificates computed from an
// embedding with every vertex on the outer face, with the transform's
// root corner placed on that face. The outer face then becomes the
// "sentinel region" of G_{T,f} — the area above all chords in the
// path-outerplanar drawing — and outerplanarity reduces to one extra
// local check: every node must own a copy whose interval is the sentinel
// [0, 2n]. Soundness: a copy with sentinel interval touches the unbounded
// face of the reconstructed drawing, so if every node has one, all
// vertices lie on a common face.
type OuterplanarScheme struct{}

// Name implements pls.Scheme.
func (OuterplanarScheme) Name() string { return "outerplanarity" }

// outerplanarTransform builds a transform whose sentinel region is the
// outer face: it embeds g plus an apex vertex (planar iff g is
// outerplanar), removes the apex from the rotation system, and rotates
// the root's order so that the DFS boundary corner sits where the apex
// was — i.e. on the face that contained all vertices.
func outerplanarTransform(g *graph.Graph) (*Transform, error) {
	n := g.N()
	apex := g.Clone()
	maxID := graph.ID(0)
	for _, id := range g.IDs() {
		if id > maxID {
			maxID = id
		}
	}
	a := apex.MustAddNode(maxID + 1)
	for v := 0; v < n; v++ {
		apex.MustAddEdge(a, v)
	}
	ok, rotApex, err := planarity.Check(apex)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: graph is not outerplanar")
	}
	if planar, err := rotApex.IsPlanar(apex); err != nil || !planar {
		return nil, fmt.Errorf("core: apex embedding failed audit: %v", err)
	}
	// Remove the apex from every rotation; remember where it was so the
	// root's boundary corner can take its place.
	rot := embedding.NewRotation(n)
	root := 0
	for v := 0; v < n; v++ {
		pos := -1
		order := make([]int, 0, len(rotApex.Order[v])-1)
		for i, w := range rotApex.Order[v] {
			if w == a {
				pos = i
				continue
			}
			order = append(order, w)
		}
		if pos < 0 {
			return nil, fmt.Errorf("core: apex missing from rotation of %d", v)
		}
		if v == root {
			// Start the root's rotation right after the apex slot: the DFS
			// boundary (virtual r') then sits on the outer face.
			rotated := make([]int, 0, len(order))
			// pos is the apex slot in the apex-bearing order; the element
			// after it (cyclically), skipping the apex itself, leads.
			full := rotApex.Order[v]
			for off := 1; off < len(full); off++ {
				w := full[(pos+off)%len(full)]
				if w != a {
					rotated = append(rotated, w)
				}
			}
			order = rotated
		}
		rot.Order[v] = order
	}
	return BuildTransform(g, rot, root)
}

// Prove implements pls.Scheme.
func (OuterplanarScheme) Prove(g *graph.Graph) (map[graph.ID]bits.Certificate, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", pls.ErrNotInClass)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("%w: disconnected graph", pls.ErrNotInClass)
	}
	tr, err := outerplanarTransform(g)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pls.ErrNotInClass, err)
	}
	// Completeness guard: the construction must give every vertex a
	// sentinel copy; fail loudly here rather than at verification.
	for v := 0; v < n; v++ {
		hasSentinel := false
		for _, r := range tr.Copies[v] {
			if tr.Intervals[r].IsSentinel(tr.N2) {
				hasSentinel = true
				break
			}
		}
		if !hasSentinel {
			return nil, fmt.Errorf("core: vertex %d has no outer-face copy (internal error)", v)
		}
	}
	return proveFromTransform(g, tr)
}

// Verify implements pls.Scheme: Algorithm 2 plus the sentinel-copy check.
func (OuterplanarScheme) Verify(view dist.View) error {
	st, err := verifyPlanarCore(view)
	if err != nil {
		return err
	}
	for _, r := range st.MyCopies {
		if iv, ok := st.claim(r); ok && iv.IsSentinel(st.N2) {
			return nil
		}
	}
	return fmt.Errorf("core: node %d has no copy on the outer face", view.ID)
}

var _ pls.Scheme = OuterplanarScheme{}
