package core

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
)

// checkTransform validates every structural invariant of a transform.
func checkTransform(t *testing.T, g *graph.Graph, label string) *Transform {
	t.Helper()
	tr, err := TransformOf(g)
	if err != nil {
		t.Fatalf("%s: TransformOf: %v", label, err)
	}
	n := g.N()
	if tr.N2 != 2*n-1 {
		t.Fatalf("%s: N2 = %d, want %d", label, tr.N2, 2*n-1)
	}
	// f is onto, with deg_T(v) copies per non-root vertex and deg_T(r)+1
	// at the root.
	for v := 0; v < n; v++ {
		wantCopies := len(tr.ChildOrder[v]) + 1
		if tr.NumCopies(v) != wantCopies {
			t.Fatalf("%s: vertex %d has %d copies, want %d", label, v, tr.NumCopies(v), wantCopies)
		}
		for _, r := range tr.Copies[v] {
			if tr.F[r] != v {
				t.Fatalf("%s: F[%d] = %d, want %d", label, r, tr.F[r], v)
			}
		}
	}
	// Root holds ranks 1 and 2n-1.
	rc := tr.Copies[tr.Root]
	if rc[0] != 1 || rc[len(rc)-1] != tr.N2 {
		t.Fatalf("%s: root copies %v do not span {1, %d}", label, rc, tr.N2)
	}
	// The identity order is a witness: pairwise Definition 1 check on the
	// cotree PO edges (independent of the sweep used internally).
	if err := CheckWitnessPairwise(cotreeOnly(tr)); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	// Lemma 4 round trip.
	if _, err := tr.ContractBack(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	// Subtree-size identity: CMax - CMin + 1 = 2*size - 1.
	var sub func(v int) int
	sub = func(v int) int {
		s := 1
		for _, c := range tr.ChildOrder[v] {
			s += sub(c)
		}
		return s
	}
	for v := 0; v < n; v++ {
		c := tr.Copies[v]
		if span := c[len(c)-1] - c[0] + 1; span != 2*sub(v)-1 {
			t.Fatalf("%s: vertex %d rank span %d != 2*%d-1", label, v, span, sub(v))
		}
	}
	return tr
}

func TestTransformSmallFixed(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"K1", graph.NewWithNodes(1)},
		{"K2", gen.Path(2)},
		{"path-5", gen.Path(5)},
		{"triangle", gen.Cycle(3)},
		{"cycle-7", gen.Cycle(7)},
		{"K4", gen.Complete(4)},
		{"star-6", gen.Star(6)},
		{"grid-3x3", gen.Grid(3, 3)},
		{"wheel-8", gen.Wheel(8)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			checkTransform(t, tc.g, tc.name)
		})
	}
}

func TestTransformRandomPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(40)
		maxM := 3*n - 6
		if n < 3 {
			maxM = n - 1
		}
		m := n - 1
		if maxM > n-1 {
			m += rng.Intn(maxM - n + 2)
		}
		g, err := gen.RandomPlanar(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		checkTransform(t, g, "random")
	}
}

func TestTransformMaximalPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{3, 5, 10, 30, 100} {
		g := gen.StackedTriangulation(n, rng)
		checkTransform(t, g, "stacked")
	}
}

func TestTransformNonPlanarFails(t *testing.T) {
	if _, err := TransformOf(gen.Complete(5)); err == nil {
		t.Fatal("TransformOf(K5) succeeded")
	}
}

func TestTransformDisconnectedFails(t *testing.T) {
	g := graph.NewWithNodes(4)
	g.MustAddEdge(0, 1)
	if _, err := TransformOf(g); err == nil {
		t.Fatal("TransformOf on disconnected graph succeeded")
	}
}

func TestTransformIntervalsMatchDefinition(t *testing.T) {
	// Intervals computed by the sweep must equal the brute-force shortest
	// covering edge.
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(20)
		g, err := gen.RandomPlanar(n, 2*n-3, rng)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := TransformOf(g)
		if err != nil {
			t.Fatal(err)
		}
		edges := cotreeOnly(tr)
		for x := 1; x <= tr.N2; x++ {
			want := Sentinel(tr.N2)
			for _, e := range edges {
				if e.U < x && x < e.V && (e.V-e.U < want.B-want.A) {
					want = Interval{A: e.U, B: e.V}
				}
			}
			if tr.Intervals[x] != want {
				t.Fatalf("trial %d: I(%d) = %v, want %v", trial, x, tr.Intervals[x], want)
			}
		}
	}
}
