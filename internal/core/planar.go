package core

import (
	"fmt"
	"sort"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// MaxEdgeCerts is the cap on edge certificates stored per node. Planar
// graphs are 5-degenerate, so the honest prover never needs more; the
// verifier enforces the cap, which keeps certificates at O(log n) bits.
const MaxEdgeCerts = 5

// EdgeCert is the certificate c(e) of one edge of G (Section 3.3). A tree
// edge {parent p, child c} is mapped onto the two path edges
// {PA, CMin} and {CMax, PB} of G_{T,f}: PA and PB are the ranks of p's
// copies around c's subtree, CMin/CMax are c's first/last copies. A cotree
// edge {u, v} is mapped onto the single edge {RankU, RankV}. Each rank
// travels with its path-outerplanarity interval.
type EdgeCert struct {
	IsTree bool

	// Tree edge fields.
	ParentID, ChildID      graph.ID
	PA, CMin, CMax, PB     int
	IPA, ICMin, ICMax, IPB Interval

	// Cotree edge fields.
	IDU, IDV     graph.ID
	RankU, RankV int
	IU, IV       Interval
}

// Involves reports whether id is an endpoint of the certified edge.
func (e *EdgeCert) Involves(id graph.ID) bool {
	if e.IsTree {
		return e.ParentID == id || e.ChildID == id
	}
	return e.IDU == id || e.IDV == id
}

// Other returns the endpoint different from id.
func (e *EdgeCert) Other(id graph.ID) graph.ID {
	if e.IsTree {
		if e.ParentID == id {
			return e.ChildID
		}
		return e.ParentID
	}
	if e.IDU == id {
		return e.IDV
	}
	return e.IDU
}

func (e *EdgeCert) encode(w *bits.Writer, rankWidth int) error {
	w.WriteBit(e.IsTree)
	writeRank := func(r int) error { return w.WriteUint(uint64(r), rankWidth) }
	writeIv := func(i Interval) error {
		if err := writeRank(i.A); err != nil {
			return err
		}
		return writeRank(i.B)
	}
	if e.IsTree {
		if err := w.WriteVar(uint64(e.ParentID)); err != nil {
			return err
		}
		if err := w.WriteVar(uint64(e.ChildID)); err != nil {
			return err
		}
		for _, r := range []int{e.PA, e.CMin, e.CMax, e.PB} {
			if err := writeRank(r); err != nil {
				return err
			}
		}
		for _, iv := range []Interval{e.IPA, e.ICMin, e.ICMax, e.IPB} {
			if err := writeIv(iv); err != nil {
				return err
			}
		}
		return nil
	}
	if err := w.WriteVar(uint64(e.IDU)); err != nil {
		return err
	}
	if err := w.WriteVar(uint64(e.IDV)); err != nil {
		return err
	}
	for _, r := range []int{e.RankU, e.RankV} {
		if err := writeRank(r); err != nil {
			return err
		}
	}
	for _, iv := range []Interval{e.IU, e.IV} {
		if err := writeIv(iv); err != nil {
			return err
		}
	}
	return nil
}

func decodeEdgeCert(r *bits.Reader, rankWidth int) (*EdgeCert, error) {
	isTree, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	readRank := func() (int, error) {
		v, err := r.ReadUint(rankWidth)
		return int(v), err
	}
	readIv := func() (Interval, error) {
		a, err := readRank()
		if err != nil {
			return Interval{}, err
		}
		b, err := readRank()
		if err != nil {
			return Interval{}, err
		}
		return Interval{A: a, B: b}, nil
	}
	e := &EdgeCert{IsTree: isTree}
	if isTree {
		p, err := r.ReadVar()
		if err != nil {
			return nil, err
		}
		c, err := r.ReadVar()
		if err != nil {
			return nil, err
		}
		e.ParentID, e.ChildID = graph.ID(p), graph.ID(c)
		ranks := []*int{&e.PA, &e.CMin, &e.CMax, &e.PB}
		for _, dst := range ranks {
			if *dst, err = readRank(); err != nil {
				return nil, err
			}
		}
		ivs := []*Interval{&e.IPA, &e.ICMin, &e.ICMax, &e.IPB}
		for _, dst := range ivs {
			if *dst, err = readIv(); err != nil {
				return nil, err
			}
		}
		return e, nil
	}
	u, err := r.ReadVar()
	if err != nil {
		return nil, err
	}
	v, err := r.ReadVar()
	if err != nil {
		return nil, err
	}
	e.IDU, e.IDV = graph.ID(u), graph.ID(v)
	if e.RankU, err = readRank(); err != nil {
		return nil, err
	}
	if e.RankV, err = readRank(); err != nil {
		return nil, err
	}
	if e.IU, err = readIv(); err != nil {
		return nil, err
	}
	if e.IV, err = readIv(); err != nil {
		return nil, err
	}
	return e, nil
}

// PlanarCert is the full node certificate of Theorem 1: the spanning-tree
// sub-proof plus at most MaxEdgeCerts edge certificates assigned to this
// node through the 5-degeneracy ordering.
type PlanarCert struct {
	Tree  pls.TreeCert
	Edges []*EdgeCert
}

// rankWidth returns the fixed bit width for ranks, derived from the
// claimed n (ranks live in [0, 2n] including interval sentinels).
func rankWidth(n uint64) int { return bits.WidthFor(2 * n) }

// Encode serialises the certificate.
func (c *PlanarCert) Encode(w *bits.Writer) error {
	if err := c.Tree.Encode(w); err != nil {
		return err
	}
	if len(c.Edges) > MaxEdgeCerts {
		return fmt.Errorf("core: %d edge certificates exceed the cap %d", len(c.Edges), MaxEdgeCerts)
	}
	if err := w.WriteUint(uint64(len(c.Edges)), 3); err != nil {
		return err
	}
	rw := rankWidth(c.Tree.N)
	for _, e := range c.Edges {
		if err := e.encode(w, rw); err != nil {
			return err
		}
	}
	return nil
}

// DecodePlanarCert reads a PlanarCert.
func DecodePlanarCert(r *bits.Reader) (*PlanarCert, error) {
	tc, err := pls.DecodeTreeCert(r)
	if err != nil {
		return nil, err
	}
	cnt, err := r.ReadUint(3)
	if err != nil {
		return nil, err
	}
	if cnt > MaxEdgeCerts {
		return nil, fmt.Errorf("core: %d edge certificates exceed the cap %d", cnt, MaxEdgeCerts)
	}
	c := &PlanarCert{Tree: *tc}
	rw := rankWidth(tc.N)
	for i := uint64(0); i < cnt; i++ {
		e, err := decodeEdgeCert(r, rw)
		if err != nil {
			return nil, err
		}
		c.Edges = append(c.Edges, e)
	}
	return c, nil
}

// PlanarScheme is the 1-round proof-labeling scheme for planarity of
// Theorem 1, with certificates of O(log n) bits.
type PlanarScheme struct{}

// Name implements pls.Scheme.
func (PlanarScheme) Name() string { return "planarity" }

// Prove implements pls.Scheme: plan the embedding, cut along the DFS tree
// (Lemma 3), compute intervals, and distribute edge certificates along a
// degeneracy ordering so every node stores at most five.
func (PlanarScheme) Prove(g *graph.Graph) (map[graph.ID]bits.Certificate, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", pls.ErrNotInClass)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("%w: disconnected graph", pls.ErrNotInClass)
	}
	tr, err := TransformOf(g)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pls.ErrNotInClass, err)
	}
	return proveFromTransform(g, tr)
}

// proveFromTransform builds the Theorem 1 certificates from a completed
// transform (shared by the planarity and outerplanarity provers).
func proveFromTransform(g *graph.Graph, tr *Transform) (map[graph.ID]bits.Certificate, error) {
	objs, _, err := BuildPlanarCertObjects(g, tr)
	if err != nil {
		return nil, err
	}
	return EncodePlanarCerts(objs)
}

// BuildPlanarCertObjects computes the structured Theorem 1 certificates
// for a completed transform, together with the holder map recording
// which endpoint stores each edge's certificate (the degeneracy-order
// assignment). The dynamic subsystem patches these objects in place and
// re-encodes only the nodes whose certificates changed.
func BuildPlanarCertObjects(g *graph.Graph, tr *Transform) (map[graph.ID]*PlanarCert, map[graph.Edge]graph.ID, error) {
	n := g.N()
	certs := make(map[graph.ID]*PlanarCert, n)
	holders := make(map[graph.Edge]graph.ID, g.M())
	for v := 0; v < n; v++ {
		copies := tr.Copies[v]
		size := uint64(copies[len(copies)-1]-copies[0]+2) / 2
		certs[g.IDOf(v)] = &PlanarCert{
			Tree: pls.TreeCert{
				SelfID: g.IDOf(v),
				RootID: g.IDOf(tr.Root),
				N:      uint64(n),
				Dist:   uint64(tr.Depth[v]),
				Parent: g.IDOf(tr.Parent[v]),
				Size:   size,
			},
		}
	}
	// Degeneracy ordering: assign each edge certificate to the endpoint
	// that comes earlier (which then has at most 5 certified edges).
	order, degeneracy := g.DegeneracyOrder()
	if degeneracy > MaxEdgeCerts {
		return nil, nil, fmt.Errorf("%w: degeneracy %d exceeds 5 — not planar", pls.ErrNotInClass, degeneracy)
	}
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	iv := func(r int) Interval { return tr.Intervals[r] }
	for _, e := range g.Edges() {
		var ec *EdgeCert
		if tr.Parent[e.U] == e.V || tr.Parent[e.V] == e.U {
			child, parent := e.U, e.V
			if tr.Parent[e.V] == e.U {
				child, parent = e.V, e.U
			}
			cc := tr.Copies[child]
			cMin, cMax := cc[0], cc[len(cc)-1]
			ec = &EdgeCert{
				IsTree:   true,
				ParentID: g.IDOf(parent),
				ChildID:  g.IDOf(child),
				PA:       cMin - 1,
				CMin:     cMin,
				CMax:     cMax,
				PB:       cMax + 1,
				IPA:      iv(cMin - 1),
				ICMin:    iv(cMin),
				ICMax:    iv(cMax),
				IPB:      iv(cMax + 1),
			}
		} else {
			rr := tr.CotreeRanks[e]
			ec = &EdgeCert{
				IsTree: false,
				IDU:    g.IDOf(e.U),
				IDV:    g.IDOf(e.V),
				RankU:  rr[0],
				RankV:  rr[1],
				IU:     iv(rr[0]),
				IV:     iv(rr[1]),
			}
		}
		holder := e.U
		if pos[e.V] < pos[e.U] {
			holder = e.V
		}
		certs[g.IDOf(holder)].Edges = append(certs[g.IDOf(holder)].Edges, ec)
		holders[e] = g.IDOf(holder)
	}
	return certs, holders, nil
}

// EncodePlanarCerts serialises structured planarity certificates.
func EncodePlanarCerts(objs map[graph.ID]*PlanarCert) (map[graph.ID]bits.Certificate, error) {
	out := make(map[graph.ID]bits.Certificate, len(objs))
	for id, c := range objs {
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			return nil, err
		}
		out[id] = bits.FromWriter(&w)
	}
	return out, nil
}

// Verify implements pls.Scheme: Algorithm 2 of the paper.
func (PlanarScheme) Verify(view dist.View) error {
	_, err := verifyPlanarCore(view)
	return err
}

// planarVerifyState exposes the reconstruction computed by Algorithm 2 so
// that derived schemes (outerplanarity) can add further local checks.
type planarVerifyState struct {
	N2       int
	MyCopies []int
	Claims   map[int]Interval
}

// verifyPlanarCore runs Algorithm 2 and returns the reconstructed local
// state on acceptance.
func verifyPlanarCore(view dist.View) (*planarVerifyState, error) {
	return verifyPlanarCoreOpts(view, true)
}

// verifyPlanarCoreOpts optionally skips the deterministic size counters
// (subtree sizes and rank spans); the interactive baseline certifies the
// global rank partition with fingerprints instead.
func verifyPlanarCoreOpts(view dist.View, withSizes bool) (*planarVerifyState, error) {
	// Phase 0: decode everything.
	self, err := DecodePlanarCert(view.Cert.Reader())
	if err != nil {
		return nil, err
	}
	myID := view.ID
	if self.Tree.SelfID != myID {
		return nil, fmt.Errorf("core: certificate claims ID %d, node is %d", self.Tree.SelfID, myID)
	}
	nbrs := make(map[graph.ID]*PlanarCert, len(view.Neighbors))
	treeNbrs := make([]*pls.TreeCert, 0, len(view.Neighbors))
	for _, nb := range view.Neighbors {
		c, err := DecodePlanarCert(nb.Cert.Reader())
		if err != nil {
			return nil, err
		}
		if c.Tree.SelfID != nb.ID {
			return nil, fmt.Errorf("core: neighbor certificate claims ID %d, neighbor is %d",
				c.Tree.SelfID, nb.ID)
		}
		nbrs[nb.ID] = c
		treeNbrs = append(treeNbrs, &c.Tree)
	}

	// Phase 2a (paper order keeps this before the PO simulation): spanning
	// tree checks.
	treeCheck := pls.VerifyTreeCertStructure
	if withSizes {
		treeCheck = pls.VerifyTreeCert
	}
	if err := treeCheck(&self.Tree, myID, view.Degree, treeNbrs); err != nil {
		return nil, err
	}
	n := int(self.Tree.N)
	n2 := 2*n - 1

	if n == 1 {
		if view.Degree != 0 {
			return nil, fmt.Errorf("core: n=1 claimed with degree %d", view.Degree)
		}
		return &planarVerifyState{N2: 1, MyCopies: []int{1}, Claims: map[int]Interval{1: Sentinel(1)}}, nil
	}

	// Phase 1: recover the edge certificates of all incident edges. Each
	// incident edge {me, y} must have exactly one certificate among those
	// stored at me and at my neighbors.
	edgeCerts := make(map[graph.ID][]*EdgeCert, view.Degree)
	for _, ec := range self.Edges {
		if !ec.Involves(myID) {
			return nil, fmt.Errorf("core: stored certificate for foreign edge")
		}
		other := ec.Other(myID)
		if _, ok := nbrs[other]; !ok {
			return nil, fmt.Errorf("core: stored certificate for non-existent edge to %d", other)
		}
		edgeCerts[other] = append(edgeCerts[other], ec)
	}
	for _, nb := range view.Neighbors {
		nbID := nb.ID
		for _, ec := range nbrs[nbID].Edges {
			if !ec.Involves(nbID) {
				return nil, fmt.Errorf("core: neighbor %d stores certificate for a foreign edge", nbID)
			}
			if !ec.Involves(myID) {
				continue // about one of the neighbor's other edges
			}
			edgeCerts[nbID] = append(edgeCerts[nbID], ec)
		}
	}
	for _, nb := range view.Neighbors {
		if len(edgeCerts[nb.ID]) != 1 {
			return nil, fmt.Errorf("core: edge {%d,%d} has %d certificates, want exactly 1",
				myID, nb.ID, len(edgeCerts[nb.ID]))
		}
	}

	// Phase 2b: classify each incident edge and check consistency with the
	// spanning-tree certificates; collect rank/interval claims.
	claims := make(map[int]Interval) // rank -> interval (conflicts reject)
	claim := func(rank int, iv Interval) error {
		if rank < 1 || rank > n2 {
			return fmt.Errorf("core: rank %d outside [1,%d]", rank, n2)
		}
		if prev, ok := claims[rank]; ok && prev != iv {
			return fmt.Errorf("core: conflicting intervals %v and %v for rank %d", prev, iv, rank)
		}
		claims[rank] = iv
		return nil
	}

	type childInfo struct {
		id                 graph.ID
		pa, cMin, cMax, pb int
	}
	var children []childInfo
	var parentEC *EdgeCert
	iAmRoot := self.Tree.Dist == 0

	// Iterate incident edges in view order (not map order) so rejection
	// reasons are deterministic across runs and execution modes.
	for _, nb := range view.Neighbors {
		nbID := nb.ID
		ec := edgeCerts[nbID][0]
		nbCert := nbrs[nbID]
		nbIsMyChild := nbCert.Tree.Parent == myID && nbCert.Tree.Dist == self.Tree.Dist+1
		nbIsMyParent := self.Tree.Parent == nbID
		if ec.IsTree {
			switch {
			case nbIsMyChild:
				if ec.ParentID != myID || ec.ChildID != nbID {
					return nil, fmt.Errorf("core: tree certificate for child %d has wrong orientation", nbID)
				}
			case nbIsMyParent:
				if ec.ParentID != nbID || ec.ChildID != myID {
					return nil, fmt.Errorf("core: tree certificate for parent %d has wrong orientation", nbID)
				}
			default:
				return nil, fmt.Errorf("core: tree certificate for non-tree edge {%d,%d}", myID, nbID)
			}
			if ec.PA+1 != ec.CMin || ec.CMax+1 != ec.PB || ec.CMin > ec.CMax {
				return nil, fmt.Errorf("core: tree certificate ranks (%d,%d,%d,%d) inconsistent",
					ec.PA, ec.CMin, ec.CMax, ec.PB)
			}
			// Rank span encodes the child's subtree size.
			childSize := nbCert.Tree.Size
			if nbIsMyParent {
				childSize = self.Tree.Size
			}
			if withSizes && uint64(ec.CMax-ec.CMin+1) != 2*childSize-1 {
				return nil, fmt.Errorf("core: rank span [%d,%d] does not match subtree size %d",
					ec.CMin, ec.CMax, childSize)
			}
			for _, ri := range [4]struct {
				rank int
				iv   Interval
			}{{ec.PA, ec.IPA}, {ec.CMin, ec.ICMin}, {ec.CMax, ec.ICMax}, {ec.PB, ec.IPB}} {
				if err := claim(ri.rank, ri.iv); err != nil {
					return nil, err
				}
			}
			if nbIsMyChild {
				children = append(children, childInfo{
					id: nbID, pa: ec.PA, cMin: ec.CMin, cMax: ec.CMax, pb: ec.PB,
				})
			} else {
				parentEC = ec
			}
		} else {
			if nbIsMyChild || nbIsMyParent {
				return nil, fmt.Errorf("core: cotree certificate for tree edge {%d,%d}", myID, nbID)
			}
			wantIDs := map[graph.ID]bool{myID: true, nbID: true}
			if !wantIDs[ec.IDU] || !wantIDs[ec.IDV] || ec.IDU == ec.IDV {
				return nil, fmt.Errorf("core: cotree certificate IDs (%d,%d) mismatch edge {%d,%d}",
					ec.IDU, ec.IDV, myID, nbID)
			}
			if ec.RankU == ec.RankV {
				return nil, fmt.Errorf("core: cotree certificate with equal ranks %d", ec.RankU)
			}
			if err := claim(ec.RankU, ec.IU); err != nil {
				return nil, err
			}
			if err := claim(ec.RankV, ec.IV); err != nil {
				return nil, err
			}
		}
	}
	if !iAmRoot && parentEC == nil {
		return nil, fmt.Errorf("core: no tree certificate for my parent edge")
	}
	if iAmRoot && parentEC != nil {
		return nil, fmt.Errorf("core: root has a parent edge certificate")
	}

	// Phase 2c: reconstruct my copies f^{-1}(me) = {i_1 < ... < i_d} and
	// check that f is a DFS mapping (the checks of Section 3.3).
	sort.Slice(children, func(i, j int) bool { return children[i].pa < children[j].pa })
	var first, last int
	if iAmRoot {
		first, last = 1, n2
	} else {
		first, last = parentEC.CMin, parentEC.CMax
	}
	myCopies := []int{first}
	cur := first
	for _, ch := range children {
		if ch.pa != cur {
			return nil, fmt.Errorf("core: child %d starts at parent copy %d, want %d", ch.id, ch.pa, cur)
		}
		cur = ch.pb
		myCopies = append(myCopies, cur)
	}
	if cur != last {
		return nil, fmt.Errorf("core: DFS mapping ends at %d, want %d", cur, last)
	}
	if withSizes && uint64(last-first+1) != 2*self.Tree.Size-1 {
		return nil, fmt.Errorf("core: my rank span [%d,%d] does not match my subtree size %d",
			first, last, self.Tree.Size)
	}

	copySet := make(map[int]int, len(myCopies)) // rank -> copy index
	for j, r := range myCopies {
		copySet[r] = j
	}

	// Cotree neighbors per copy, gathered in view order so the simulated
	// PO views (and any rejection they produce) are deterministic.
	cotreePerCopy := make(map[int][]PONeighbor)
	for _, nb := range view.Neighbors {
		nbID := nb.ID
		ec := edgeCerts[nbID][0]
		if ec.IsTree {
			continue
		}
		myRank, otherRank := ec.RankU, ec.RankV
		myIv, otherIv := ec.IU, ec.IV
		if ec.IDU != myID {
			myRank, otherRank = ec.RankV, ec.RankU
			myIv, otherIv = ec.IV, ec.IU
		}
		_ = myIv // consistency already enforced through claims
		if _, ok := copySet[myRank]; !ok {
			return nil, fmt.Errorf("core: cotree edge to %d attached at rank %d, not one of my copies",
				nbID, myRank)
		}
		if _, mine := copySet[otherRank]; mine {
			return nil, fmt.Errorf("core: cotree edge to %d attached to two of my copies", nbID)
		}
		cotreePerCopy[myRank] = append(cotreePerCopy[myRank], PONeighbor{Rank: otherRank, I: otherIv})
	}

	// Phase 3: simulate Algorithm 1 at every copy.
	for j, r := range myCopies {
		iv, ok := claims[r]
		if !ok {
			return nil, fmt.Errorf("core: no interval claimed for my copy at rank %d", r)
		}
		pv := PONodeView{N: n2, Rank: r, I: iv}
		// Left path neighbor (rank r-1).
		if r > 1 {
			var leftRank int
			if j == 0 {
				leftRank = parentEC.PA // first copy: predecessor is a parent copy
			} else {
				leftRank = children[j-1].cMax
			}
			if leftRank != r-1 {
				return nil, fmt.Errorf("core: left path neighbor of rank %d is %d", r, leftRank)
			}
			liv, ok := claims[leftRank]
			if !ok {
				return nil, fmt.Errorf("core: no interval for left path neighbor %d", leftRank)
			}
			pv.Neighbors = append(pv.Neighbors, PONeighbor{Rank: leftRank, I: liv})
		}
		// Right path neighbor (rank r+1).
		if r < n2 {
			var rightRank int
			if j < len(children) {
				rightRank = children[j].cMin
			} else {
				rightRank = parentEC.PB
			}
			if rightRank != r+1 {
				return nil, fmt.Errorf("core: right path neighbor of rank %d is %d", r, rightRank)
			}
			riv, ok := claims[rightRank]
			if !ok {
				return nil, fmt.Errorf("core: no interval for right path neighbor %d", rightRank)
			}
			pv.Neighbors = append(pv.Neighbors, PONeighbor{Rank: rightRank, I: riv})
		}
		pv.Neighbors = append(pv.Neighbors, cotreePerCopy[r]...)
		if err := VerifyPONode(pv); err != nil {
			return nil, fmt.Errorf("copy %d of node %d: %w", r, myID, err)
		}
	}
	return &planarVerifyState{N2: n2, MyCopies: myCopies, Claims: claims}, nil
}

var _ pls.Scheme = PlanarScheme{}

// PlanarState is the exported form of the verifier's reconstruction, for
// schemes and protocols layered on Algorithm 2.
type PlanarState struct {
	N2       int
	MyCopies []int
	Claims   map[int]Interval
}

// VerifyPlanarNoCounters runs Algorithm 2 WITHOUT the deterministic
// subtree-size counters (sizes and rank spans). The interactive dMAM
// baseline uses it and certifies the global rank partition with
// randomized fingerprints instead.
func VerifyPlanarNoCounters(view dist.View) (*PlanarState, error) {
	st, err := verifyPlanarCoreOpts(view, false)
	if err != nil {
		return nil, err
	}
	return &PlanarState{N2: st.N2, MyCopies: st.MyCopies, Claims: st.Claims}, nil
}
