package core

import (
	"cmp"
	"fmt"
	"slices"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// MaxEdgeCerts is the cap on edge certificates stored per node. Planar
// graphs are 5-degenerate, so the honest prover never needs more; the
// verifier enforces the cap, which keeps certificates at O(log n) bits.
const MaxEdgeCerts = 5

// EdgeCert is the certificate c(e) of one edge of G (Section 3.3). A tree
// edge {parent p, child c} is mapped onto the two path edges
// {PA, CMin} and {CMax, PB} of G_{T,f}: PA and PB are the ranks of p's
// copies around c's subtree, CMin/CMax are c's first/last copies. A cotree
// edge {u, v} is mapped onto the single edge {RankU, RankV}. Each rank
// travels with its path-outerplanarity interval.
type EdgeCert struct {
	IsTree bool

	// Tree edge fields.
	ParentID, ChildID      graph.ID
	PA, CMin, CMax, PB     int
	IPA, ICMin, ICMax, IPB Interval

	// Cotree edge fields.
	IDU, IDV     graph.ID
	RankU, RankV int
	IU, IV       Interval
}

// Involves reports whether id is an endpoint of the certified edge.
func (e *EdgeCert) Involves(id graph.ID) bool {
	if e.IsTree {
		return e.ParentID == id || e.ChildID == id
	}
	return e.IDU == id || e.IDV == id
}

// Other returns the endpoint different from id.
func (e *EdgeCert) Other(id graph.ID) graph.ID {
	if e.IsTree {
		if e.ParentID == id {
			return e.ChildID
		}
		return e.ParentID
	}
	if e.IDU == id {
		return e.IDV
	}
	return e.IDU
}

func (e *EdgeCert) encode(w *bits.Writer, rankWidth int) error {
	w.WriteBit(e.IsTree)
	writeRank := func(r int) error { return w.WriteUint(uint64(r), rankWidth) }
	writeIv := func(i Interval) error {
		if err := writeRank(i.A); err != nil {
			return err
		}
		return writeRank(i.B)
	}
	if e.IsTree {
		if err := w.WriteVar(uint64(e.ParentID)); err != nil {
			return err
		}
		if err := w.WriteVar(uint64(e.ChildID)); err != nil {
			return err
		}
		for _, r := range []int{e.PA, e.CMin, e.CMax, e.PB} {
			if err := writeRank(r); err != nil {
				return err
			}
		}
		for _, iv := range []Interval{e.IPA, e.ICMin, e.ICMax, e.IPB} {
			if err := writeIv(iv); err != nil {
				return err
			}
		}
		return nil
	}
	if err := w.WriteVar(uint64(e.IDU)); err != nil {
		return err
	}
	if err := w.WriteVar(uint64(e.IDV)); err != nil {
		return err
	}
	for _, r := range []int{e.RankU, e.RankV} {
		if err := writeRank(r); err != nil {
			return err
		}
	}
	for _, iv := range []Interval{e.IU, e.IV} {
		if err := writeIv(iv); err != nil {
			return err
		}
	}
	return nil
}

// decodeEdgeCertInto reads one edge certificate from r into e, which
// may be a fresh object or a slab entry about to be reused.
func decodeEdgeCertInto(r *bits.Reader, rankWidth int, e *EdgeCert) error {
	isTree, err := r.ReadBit()
	if err != nil {
		return err
	}
	readRank := func() (int, error) {
		v, err := r.ReadUint(rankWidth)
		return int(v), err
	}
	readIv := func() (Interval, error) {
		a, err := readRank()
		if err != nil {
			return Interval{}, err
		}
		b, err := readRank()
		if err != nil {
			return Interval{}, err
		}
		return Interval{A: a, B: b}, nil
	}
	*e = EdgeCert{IsTree: isTree}
	if isTree {
		p, err := r.ReadVar()
		if err != nil {
			return err
		}
		c, err := r.ReadVar()
		if err != nil {
			return err
		}
		e.ParentID, e.ChildID = graph.ID(p), graph.ID(c)
		ranks := [...]*int{&e.PA, &e.CMin, &e.CMax, &e.PB}
		for _, dst := range ranks {
			if *dst, err = readRank(); err != nil {
				return err
			}
		}
		ivs := [...]*Interval{&e.IPA, &e.ICMin, &e.ICMax, &e.IPB}
		for _, dst := range ivs {
			if *dst, err = readIv(); err != nil {
				return err
			}
		}
		return nil
	}
	u, err := r.ReadVar()
	if err != nil {
		return err
	}
	v, err := r.ReadVar()
	if err != nil {
		return err
	}
	e.IDU, e.IDV = graph.ID(u), graph.ID(v)
	if e.RankU, err = readRank(); err != nil {
		return err
	}
	if e.RankV, err = readRank(); err != nil {
		return err
	}
	if e.IU, err = readIv(); err != nil {
		return err
	}
	if e.IV, err = readIv(); err != nil {
		return err
	}
	return nil
}

// PlanarCert is the full node certificate of Theorem 1: the spanning-tree
// sub-proof plus at most MaxEdgeCerts edge certificates assigned to this
// node through the 5-degeneracy ordering.
type PlanarCert struct {
	Tree  pls.TreeCert
	Edges []*EdgeCert
}

// rankWidth returns the fixed bit width for ranks, derived from the
// claimed n (ranks live in [0, 2n] including interval sentinels).
func rankWidth(n uint64) int { return bits.WidthFor(2 * n) }

// Encode serialises the certificate.
func (c *PlanarCert) Encode(w *bits.Writer) error {
	if err := c.Tree.Encode(w); err != nil {
		return err
	}
	if len(c.Edges) > MaxEdgeCerts {
		return fmt.Errorf("core: %d edge certificates exceed the cap %d", len(c.Edges), MaxEdgeCerts)
	}
	if err := w.WriteUint(uint64(len(c.Edges)), 3); err != nil {
		return err
	}
	rw := rankWidth(c.Tree.N)
	for _, e := range c.Edges {
		if err := e.encode(w, rw); err != nil {
			return err
		}
	}
	return nil
}

// DecodePlanarCert reads a PlanarCert into fresh objects.
func DecodePlanarCert(r *bits.Reader) (*PlanarCert, error) {
	c := new(PlanarCert)
	if err := decodePlanarCertInto(r, c, nil); err != nil {
		return nil, err
	}
	return c, nil
}

// decodePlanarCertInto reads a PlanarCert into c, carving the edge
// certificates out of sc's slab when sc is non-nil and allocating them
// fresh otherwise. Both paths run the identical decode logic, so pooled
// and fresh decoding cannot diverge.
func decodePlanarCertInto(r *bits.Reader, c *PlanarCert, sc *planarScratch) error {
	if err := pls.DecodeTreeCertInto(r, &c.Tree); err != nil {
		return err
	}
	cnt, err := r.ReadUint(3)
	if err != nil {
		return err
	}
	if cnt > MaxEdgeCerts {
		return fmt.Errorf("core: %d edge certificates exceed the cap %d", cnt, MaxEdgeCerts)
	}
	rw := rankWidth(c.Tree.N)
	if sc == nil {
		c.Edges = nil
		for i := uint64(0); i < cnt; i++ {
			e := new(EdgeCert)
			if err := decodeEdgeCertInto(r, rw, e); err != nil {
				return err
			}
			c.Edges = append(c.Edges, e)
		}
		return nil
	}
	start := len(sc.edgePtrs)
	for i := uint64(0); i < cnt; i++ {
		e := sc.newEdgeCert()
		if err := decodeEdgeCertInto(r, rw, e); err != nil {
			return err
		}
		sc.edgePtrs = append(sc.edgePtrs, e)
	}
	c.Edges = sc.edgePtrs[start:len(sc.edgePtrs):len(sc.edgePtrs)]
	return nil
}

// PlanarScheme is the 1-round proof-labeling scheme for planarity of
// Theorem 1, with certificates of O(log n) bits.
type PlanarScheme struct{}

// Name implements pls.Scheme.
func (PlanarScheme) Name() string { return "planarity" }

// Prove implements pls.Scheme: plan the embedding, cut along the DFS tree
// (Lemma 3), compute intervals, and distribute edge certificates along a
// degeneracy ordering so every node stores at most five.
func (PlanarScheme) Prove(g *graph.Graph) (map[graph.ID]bits.Certificate, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", pls.ErrNotInClass)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("%w: disconnected graph", pls.ErrNotInClass)
	}
	tr, err := TransformOf(g)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", pls.ErrNotInClass, err)
	}
	return proveFromTransform(g, tr)
}

// proveFromTransform builds the Theorem 1 certificates from a completed
// transform (shared by the planarity and outerplanarity provers).
func proveFromTransform(g *graph.Graph, tr *Transform) (map[graph.ID]bits.Certificate, error) {
	objs, _, err := BuildPlanarCertObjects(g, tr)
	if err != nil {
		return nil, err
	}
	return EncodePlanarCerts(objs)
}

// BuildPlanarCertObjects computes the structured Theorem 1 certificates
// for a completed transform, together with the holder map recording
// which endpoint stores each edge's certificate (the degeneracy-order
// assignment). The dynamic subsystem patches these objects in place and
// re-encodes only the nodes whose certificates changed.
func BuildPlanarCertObjects(g *graph.Graph, tr *Transform) (map[graph.ID]*PlanarCert, map[graph.Edge]graph.ID, error) {
	n := g.N()
	certs := make(map[graph.ID]*PlanarCert, n)
	holders := make(map[graph.Edge]graph.ID, g.M())
	for v := 0; v < n; v++ {
		copies := tr.Copies[v]
		size := uint64(copies[len(copies)-1]-copies[0]+2) / 2
		certs[g.IDOf(v)] = &PlanarCert{
			Tree: pls.TreeCert{
				SelfID: g.IDOf(v),
				RootID: g.IDOf(tr.Root),
				N:      uint64(n),
				Dist:   uint64(tr.Depth[v]),
				Parent: g.IDOf(tr.Parent[v]),
				Size:   size,
			},
		}
	}
	// Degeneracy ordering: assign each edge certificate to the endpoint
	// that comes earlier (which then has at most 5 certified edges).
	order, degeneracy := g.DegeneracyOrder()
	if degeneracy > MaxEdgeCerts {
		return nil, nil, fmt.Errorf("%w: degeneracy %d exceeds 5 — not planar", pls.ErrNotInClass, degeneracy)
	}
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	iv := func(r int) Interval { return tr.Intervals[r] }
	for _, e := range g.Edges() {
		var ec *EdgeCert
		if tr.Parent[e.U] == e.V || tr.Parent[e.V] == e.U {
			child, parent := e.U, e.V
			if tr.Parent[e.V] == e.U {
				child, parent = e.V, e.U
			}
			cc := tr.Copies[child]
			cMin, cMax := cc[0], cc[len(cc)-1]
			ec = &EdgeCert{
				IsTree:   true,
				ParentID: g.IDOf(parent),
				ChildID:  g.IDOf(child),
				PA:       cMin - 1,
				CMin:     cMin,
				CMax:     cMax,
				PB:       cMax + 1,
				IPA:      iv(cMin - 1),
				ICMin:    iv(cMin),
				ICMax:    iv(cMax),
				IPB:      iv(cMax + 1),
			}
		} else {
			rr := tr.CotreeRanks[e]
			ec = &EdgeCert{
				IsTree: false,
				IDU:    g.IDOf(e.U),
				IDV:    g.IDOf(e.V),
				RankU:  rr[0],
				RankV:  rr[1],
				IU:     iv(rr[0]),
				IV:     iv(rr[1]),
			}
		}
		holder := e.U
		if pos[e.V] < pos[e.U] {
			holder = e.V
		}
		certs[g.IDOf(holder)].Edges = append(certs[g.IDOf(holder)].Edges, ec)
		holders[e] = g.IDOf(holder)
	}
	return certs, holders, nil
}

// EncodePlanarCerts serialises structured planarity certificates.
func EncodePlanarCerts(objs map[graph.ID]*PlanarCert) (map[graph.ID]bits.Certificate, error) {
	out := make(map[graph.ID]bits.Certificate, len(objs))
	for id, c := range objs {
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			return nil, err
		}
		out[id] = bits.FromWriter(&w)
	}
	return out, nil
}

// Verify implements pls.Scheme: Algorithm 2 of the paper.
func (PlanarScheme) Verify(view dist.View) error {
	_, err := verifyPlanarCore(view)
	return err
}

// planarVerifyState exposes the reconstruction computed by Algorithm 2 so
// that derived schemes (outerplanarity) can add further local checks. It
// aliases the verifier's scratch, so it is only valid until the next
// verification on the same worker — callers needing to retain it must
// copy (see VerifyPlanarNoCounters).
type planarVerifyState struct {
	N2       int
	MyCopies []int
	claims   *rankMap[Interval]
}

// claim returns the interval claimed for rank r, if any.
func (st *planarVerifyState) claim(r int) (Interval, bool) { return st.claims.get(r) }

// childInfo records one child edge certificate during reconstruction.
type childInfo struct {
	id                 graph.ID
	pa, cMin, cMax, pb int
}

// nbrPos returns the view position of the neighbor with the given ID,
// or -1 (replaces the per-node map keyed by neighbor ID; a node looks up
// at most MaxEdgeCerts IDs per verification).
func nbrPos(nbrs []dist.NeighborCert, id graph.ID) int {
	for i := range nbrs {
		if nbrs[i].ID == id {
			return i
		}
	}
	return -1
}

// verifyPlanarCore runs Algorithm 2 and returns the reconstructed local
// state on acceptance.
func verifyPlanarCore(view dist.View) (planarVerifyState, error) {
	return verifyPlanarCoreOpts(view, true)
}

// verifyPlanarCoreOpts optionally skips the deterministic size counters
// (subtree sizes and rank spans); the interactive baseline certifies the
// global rank partition with fingerprints instead.
func verifyPlanarCoreOpts(view dist.View, withSizes bool) (planarVerifyState, error) {
	var none planarVerifyState
	sc := planarScratchFor(view)
	sc.reset(len(view.Neighbors))

	// Phase 0: decode everything.
	view.Cert.ResetReader(&sc.r)
	if err := decodePlanarCertInto(&sc.r, &sc.self, sc); err != nil {
		return none, err
	}
	self := &sc.self
	myID := view.ID
	if self.Tree.SelfID != myID {
		return none, fmt.Errorf("core: certificate claims ID %d, node is %d", self.Tree.SelfID, myID)
	}
	for i := range view.Neighbors {
		nb := &view.Neighbors[i]
		c := &sc.nbrs[i]
		nb.Cert.ResetReader(&sc.r)
		if err := decodePlanarCertInto(&sc.r, c, sc); err != nil {
			return none, err
		}
		if c.Tree.SelfID != nb.ID {
			return none, fmt.Errorf("core: neighbor certificate claims ID %d, neighbor is %d",
				c.Tree.SelfID, nb.ID)
		}
		sc.treeNbrs = append(sc.treeNbrs, &c.Tree)
	}

	// Phase 2a (paper order keeps this before the PO simulation): spanning
	// tree checks.
	treeCheck := pls.VerifyTreeCertStructure
	if withSizes {
		treeCheck = pls.VerifyTreeCert
	}
	if err := treeCheck(&self.Tree, myID, view.Degree, sc.treeNbrs); err != nil {
		return none, err
	}
	n := int(self.Tree.N)
	n2 := 2*n - 1

	if n == 1 {
		if view.Degree != 0 {
			return none, fmt.Errorf("core: n=1 claimed with degree %d", view.Degree)
		}
		sc.copies = append(sc.copies, 1)
		sc.claims.put(1, Sentinel(1))
		return planarVerifyState{N2: 1, MyCopies: sc.copies, claims: &sc.claims}, nil
	}

	// Phase 1: recover the edge certificates of all incident edges. Each
	// incident edge {me, y} must have exactly one certificate among those
	// stored at me and at my neighbors (counted per view position in
	// sc.edgeCnt, with the first recovered certificate in sc.edgeOne).
	for _, ec := range self.Edges {
		if !ec.Involves(myID) {
			return none, fmt.Errorf("core: stored certificate for foreign edge")
		}
		other := ec.Other(myID)
		j := nbrPos(view.Neighbors, other)
		if j < 0 {
			return none, fmt.Errorf("core: stored certificate for non-existent edge to %d", other)
		}
		if sc.edgeOne[j] == nil {
			sc.edgeOne[j] = ec
		}
		sc.edgeCnt[j]++
	}
	for i := range view.Neighbors {
		nbID := view.Neighbors[i].ID
		for _, ec := range sc.nbrs[i].Edges {
			if !ec.Involves(nbID) {
				return none, fmt.Errorf("core: neighbor %d stores certificate for a foreign edge", nbID)
			}
			if !ec.Involves(myID) {
				continue // about one of the neighbor's other edges
			}
			if sc.edgeOne[i] == nil {
				sc.edgeOne[i] = ec
			}
			sc.edgeCnt[i]++
		}
	}
	for i := range view.Neighbors {
		if sc.edgeCnt[i] != 1 {
			return none, fmt.Errorf("core: edge {%d,%d} has %d certificates, want exactly 1",
				myID, view.Neighbors[i].ID, sc.edgeCnt[i])
		}
	}

	// Phase 2b: classify each incident edge and check consistency with the
	// spanning-tree certificates; collect rank/interval claims.
	claim := func(rank int, iv Interval) error {
		if rank < 1 || rank > n2 {
			return fmt.Errorf("core: rank %d outside [1,%d]", rank, n2)
		}
		if prev, ok := sc.claims.get(rank); ok {
			if prev != iv {
				return fmt.Errorf("core: conflicting intervals %v and %v for rank %d", prev, iv, rank)
			}
			return nil
		}
		sc.claims.put(rank, iv)
		return nil
	}

	var parentEC *EdgeCert
	iAmRoot := self.Tree.Dist == 0

	// Iterate incident edges in view order (not map order) so rejection
	// reasons are deterministic across runs and execution modes.
	for i := range view.Neighbors {
		nbID := view.Neighbors[i].ID
		ec := sc.edgeOne[i]
		nbCert := &sc.nbrs[i]
		nbIsMyChild := nbCert.Tree.Parent == myID && nbCert.Tree.Dist == self.Tree.Dist+1
		nbIsMyParent := self.Tree.Parent == nbID
		if ec.IsTree {
			switch {
			case nbIsMyChild:
				if ec.ParentID != myID || ec.ChildID != nbID {
					return none, fmt.Errorf("core: tree certificate for child %d has wrong orientation", nbID)
				}
			case nbIsMyParent:
				if ec.ParentID != nbID || ec.ChildID != myID {
					return none, fmt.Errorf("core: tree certificate for parent %d has wrong orientation", nbID)
				}
			default:
				return none, fmt.Errorf("core: tree certificate for non-tree edge {%d,%d}", myID, nbID)
			}
			if ec.PA+1 != ec.CMin || ec.CMax+1 != ec.PB || ec.CMin > ec.CMax {
				return none, fmt.Errorf("core: tree certificate ranks (%d,%d,%d,%d) inconsistent",
					ec.PA, ec.CMin, ec.CMax, ec.PB)
			}
			// Rank span encodes the child's subtree size.
			childSize := nbCert.Tree.Size
			if nbIsMyParent {
				childSize = self.Tree.Size
			}
			if withSizes && uint64(ec.CMax-ec.CMin+1) != 2*childSize-1 {
				return none, fmt.Errorf("core: rank span [%d,%d] does not match subtree size %d",
					ec.CMin, ec.CMax, childSize)
			}
			for _, ri := range [4]struct {
				rank int
				iv   Interval
			}{{ec.PA, ec.IPA}, {ec.CMin, ec.ICMin}, {ec.CMax, ec.ICMax}, {ec.PB, ec.IPB}} {
				if err := claim(ri.rank, ri.iv); err != nil {
					return none, err
				}
			}
			if nbIsMyChild {
				sc.children = append(sc.children, childInfo{
					id: nbID, pa: ec.PA, cMin: ec.CMin, cMax: ec.CMax, pb: ec.PB,
				})
			} else {
				parentEC = ec
			}
		} else {
			if nbIsMyChild || nbIsMyParent {
				return none, fmt.Errorf("core: cotree certificate for tree edge {%d,%d}", myID, nbID)
			}
			wantID := func(id graph.ID) bool { return id == myID || id == nbID }
			if !wantID(ec.IDU) || !wantID(ec.IDV) || ec.IDU == ec.IDV {
				return none, fmt.Errorf("core: cotree certificate IDs (%d,%d) mismatch edge {%d,%d}",
					ec.IDU, ec.IDV, myID, nbID)
			}
			if ec.RankU == ec.RankV {
				return none, fmt.Errorf("core: cotree certificate with equal ranks %d", ec.RankU)
			}
			if err := claim(ec.RankU, ec.IU); err != nil {
				return none, err
			}
			if err := claim(ec.RankV, ec.IV); err != nil {
				return none, err
			}
		}
	}
	if !iAmRoot && parentEC == nil {
		return none, fmt.Errorf("core: no tree certificate for my parent edge")
	}
	if iAmRoot && parentEC != nil {
		return none, fmt.Errorf("core: root has a parent edge certificate")
	}

	// Phase 2c: reconstruct my copies f^{-1}(me) = {i_1 < ... < i_d} and
	// check that f is a DFS mapping (the checks of Section 3.3).
	slices.SortFunc(sc.children, func(a, b childInfo) int { return cmp.Compare(a.pa, b.pa) })
	var first, last int
	if iAmRoot {
		first, last = 1, n2
	} else {
		first, last = parentEC.CMin, parentEC.CMax
	}
	sc.copies = append(sc.copies, first)
	cur := first
	for _, ch := range sc.children {
		if ch.pa != cur {
			return none, fmt.Errorf("core: child %d starts at parent copy %d, want %d", ch.id, ch.pa, cur)
		}
		cur = ch.pb
		sc.copies = append(sc.copies, cur)
	}
	if cur != last {
		return none, fmt.Errorf("core: DFS mapping ends at %d, want %d", cur, last)
	}
	if withSizes && uint64(last-first+1) != 2*self.Tree.Size-1 {
		return none, fmt.Errorf("core: my rank span [%d,%d] does not match my subtree size %d",
			first, last, self.Tree.Size)
	}

	myCopies := sc.copies
	for j, r := range myCopies { // rank -> copy index
		sc.copyIdx.put(r, j)
	}

	// Cotree neighbors per copy, gathered in view order so the simulated
	// PO views (and any rejection they produce) are deterministic.
	sc.cotreeFor(len(myCopies))
	for i := range view.Neighbors {
		nbID := view.Neighbors[i].ID
		ec := sc.edgeOne[i]
		if ec.IsTree {
			continue
		}
		myRank, otherRank := ec.RankU, ec.RankV
		otherIv := ec.IV
		if ec.IDU != myID {
			myRank, otherRank = ec.RankV, ec.RankU
			otherIv = ec.IU
		}
		// (my own interval's consistency is already enforced through claims)
		j, ok := sc.copyIdx.get(myRank)
		if !ok {
			return none, fmt.Errorf("core: cotree edge to %d attached at rank %d, not one of my copies",
				nbID, myRank)
		}
		if _, mine := sc.copyIdx.get(otherRank); mine {
			return none, fmt.Errorf("core: cotree edge to %d attached to two of my copies", nbID)
		}
		sc.cotree[j] = append(sc.cotree[j], PONeighbor{Rank: otherRank, I: otherIv})
	}

	// Phase 3: simulate Algorithm 1 at every copy.
	for j, r := range myCopies {
		iv, ok := sc.claims.get(r)
		if !ok {
			return none, fmt.Errorf("core: no interval claimed for my copy at rank %d", r)
		}
		pv := PONodeView{N: n2, Rank: r, I: iv}
		buf := sc.po.viewNbrs[:0]
		// Left path neighbor (rank r-1).
		if r > 1 {
			var leftRank int
			if j == 0 {
				leftRank = parentEC.PA // first copy: predecessor is a parent copy
			} else {
				leftRank = sc.children[j-1].cMax
			}
			if leftRank != r-1 {
				return none, fmt.Errorf("core: left path neighbor of rank %d is %d", r, leftRank)
			}
			liv, ok := sc.claims.get(leftRank)
			if !ok {
				return none, fmt.Errorf("core: no interval for left path neighbor %d", leftRank)
			}
			buf = append(buf, PONeighbor{Rank: leftRank, I: liv})
		}
		// Right path neighbor (rank r+1).
		if r < n2 {
			var rightRank int
			if j < len(sc.children) {
				rightRank = sc.children[j].cMin
			} else {
				rightRank = parentEC.PB
			}
			if rightRank != r+1 {
				return none, fmt.Errorf("core: right path neighbor of rank %d is %d", r, rightRank)
			}
			riv, ok := sc.claims.get(rightRank)
			if !ok {
				return none, fmt.Errorf("core: no interval for right path neighbor %d", rightRank)
			}
			buf = append(buf, PONeighbor{Rank: rightRank, I: riv})
		}
		buf = append(buf, sc.cotree[j]...)
		sc.po.viewNbrs = buf // keep any growth for the next copy
		pv.Neighbors = buf
		if err := verifyPONode(pv, &sc.po); err != nil {
			return none, fmt.Errorf("copy %d of node %d: %w", r, myID, err)
		}
	}
	return planarVerifyState{N2: n2, MyCopies: myCopies, claims: &sc.claims}, nil
}

var _ pls.Scheme = PlanarScheme{}

// PlanarState is the exported form of the verifier's reconstruction, for
// schemes and protocols layered on Algorithm 2.
type PlanarState struct {
	N2       int
	MyCopies []int
	Claims   map[int]Interval
}

// VerifyPlanarNoCounters runs Algorithm 2 WITHOUT the deterministic
// subtree-size counters (sizes and rank spans). The interactive dMAM
// baseline uses it and certifies the global rank partition with
// randomized fingerprints instead. The returned state is a copy, safe
// to retain after the verifier's scratch is reused.
func VerifyPlanarNoCounters(view dist.View) (*PlanarState, error) {
	st, err := verifyPlanarCoreOpts(view, false)
	if err != nil {
		return nil, err
	}
	out := &PlanarState{
		N2:       st.N2,
		MyCopies: append([]int(nil), st.MyCopies...),
		Claims:   make(map[int]Interval),
	}
	st.claims.each(func(r int, iv Interval) { out.Claims[r] = iv })
	return out, nil
}
