package core_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

func TestOuterplanarCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"K1", graph.NewWithNodes(1)},
		{"K2", gen.Path(2)},
		{"path", gen.Path(12)},
		{"cycle", gen.Cycle(11)},
		{"star", gen.Star(7)},
		{"tree", gen.RandomTree(25, rng)},
		{"caterpillar", gen.Caterpillar(5, 9)},
		{"triangle", gen.Cycle(3)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			out, err := pls.Run(core.OuterplanarScheme{}, tc.g)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if !out.AllAccept() {
				t.Fatalf("%s rejected: %v", tc.name, out.Reasons)
			}
		})
	}
}

func TestOuterplanarCompletenessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(40)
		g := gen.RandomOuterplanar(n, rng.Float64(), rng)
		g = gen.ScrambleIDs(g, rng)
		out, err := pls.Run(core.OuterplanarScheme{}, g)
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		if !out.AllAccept() {
			t.Fatalf("trial %d rejected: %v", trial, out.Reasons)
		}
	}
}

func TestOuterplanarProverRejectsNonMembers(t *testing.T) {
	scheme := core.OuterplanarScheme{}
	for i, g := range []*graph.Graph{
		gen.Complete(4),             // K4 minor
		gen.CompleteBipartite(2, 3), // K2,3 minor
		gen.Wheel(7),
		gen.Grid(3, 3),
		gen.Complete(5), // not even planar
	} {
		if _, err := scheme.Prove(g); err == nil {
			t.Fatalf("graph %d certified as outerplanar", i)
		}
	}
}

func TestOuterplanarSoundnessPlanarCertsRejected(t *testing.T) {
	// A planar-but-not-outerplanar graph with *honest planarity*
	// certificates must be rejected by the outerplanarity verifier: some
	// node has no sentinel copy.
	for i, g := range []*graph.Graph{
		gen.Wheel(8),
		gen.Grid(3, 4),
		gen.Complete(4),
	} {
		certs, err := (core.PlanarScheme{}).Prove(g)
		if err != nil {
			t.Fatalf("graph %d: planar prover failed: %v", i, err)
		}
		out := pls.RunWithCerts(core.OuterplanarScheme{}, g, certs)
		if out.AllAccept() {
			t.Fatalf("graph %d: outerplanarity accepted planarity certificates on a non-outerplanar graph", i)
		}
	}
}

func TestOuterplanarCertsAlsoProvePlanarity(t *testing.T) {
	// Outerplanarity certificates are planarity certificates (the
	// sentinel check is additive), so the planarity verifier accepts them.
	rng := rand.New(rand.NewSource(43))
	g := gen.RandomOuterplanar(20, 0.7, rng)
	certs, err := (core.OuterplanarScheme{}).Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	out := pls.RunWithCerts(core.PlanarScheme{}, g, certs)
	if !out.AllAccept() {
		t.Fatalf("planarity verifier rejected outerplanarity certificates: %v", out.Reasons)
	}
}

func TestOuterplanarMaximal(t *testing.T) {
	// Maximal outerplanar graphs (triangulated polygons) at density 1.
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{4, 10, 50, 150} {
		g := gen.RandomOuterplanar(n, 1.0, rng)
		out, err := pls.Run(core.OuterplanarScheme{}, g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !out.AllAccept() {
			t.Fatalf("n=%d rejected: %v", n, out.Reasons)
		}
	}
}
