package core_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// viewsOf assembles every node's 1-round view of certs over g, with no
// scratch attached (the caller decides).
func viewsOf(g *graph.Graph, certs map[graph.ID]bits.Certificate) []dist.View {
	views := make([]dist.View, g.N())
	for u := 0; u < g.N(); u++ {
		nbrs := g.Neighbors(u)
		ncs := make([]dist.NeighborCert, len(nbrs))
		for i, v := range nbrs {
			ncs[i] = dist.NeighborCert{ID: g.IDOf(v), Cert: certs[g.IDOf(v)]}
		}
		views[u] = dist.View{
			ID:        g.IDOf(u),
			Degree:    len(nbrs),
			Cert:      certs[g.IDOf(u)],
			Neighbors: ncs,
		}
	}
	return views
}

// verdictOf runs one node's verification and flattens the result —
// accept, a rejection reason, or a contained panic — into a string, the
// exact observable the engine reports per node.
func verdictOf(scheme pls.Scheme, v dist.View) (s string) {
	defer func() {
		if r := recover(); r != nil {
			s = fmt.Sprintf("panic: %v", r)
		}
	}()
	if err := scheme.Verify(v); err != nil {
		return err.Error()
	}
	return ""
}

// TestDecodeParityAllSchemes is the decode-parity battery of the
// allocation-free hot path: for every scheme, verifying a node with the
// pooled per-worker scratch must produce a verdict — accept, or reject
// with the identical reason string — equal to verifying with fresh
// allocations (a nil View.Scratch). One scratch instance is reused
// across every node, corpus entry, graph, and scheme, so each
// verification runs against maximally stale scratch contents: any state
// leaking from one decode into the next shows up as a verdict diff.
func TestDecodeParityAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shared := new(dist.Scratch) // deliberately never reset between uses
	cases := []struct {
		name      string
		scheme    pls.Scheme
		member    *graph.Graph
		nonMember *graph.Graph
	}{
		{
			name:      "planarity",
			scheme:    core.PlanarScheme{},
			member:    gen.Grid(4, 4),
			nonMember: withExtraNodes(gen.Complete(5), 11),
		},
		{
			name:      "outerplanarity",
			scheme:    core.OuterplanarScheme{},
			member:    gen.RandomOuterplanar(16, 0.6, rng),
			nonMember: gen.Wheel(16),
		},
		{
			name:      "non-planarity",
			scheme:    core.NonPlanarScheme{},
			member:    withExtraNodes(gen.Complete(5), 11),
			nonMember: gen.Grid(4, 4),
		},
		{
			name:      "path-outerplanar",
			scheme:    core.POScheme{},
			member:    gen.RandomPathOuterplanar(16, 0.5, rng),
			nonMember: gen.Star(16),
		},
		{
			name:      "spanning-tree",
			scheme:    pls.SpanningTreeScheme{},
			member:    gen.Grid(4, 4),
			nonMember: gen.Star(16),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			honest, err := tc.scheme.Prove(tc.member)
			if err != nil {
				t.Fatalf("prover: %v", err)
			}
			// Corpus: the honest certificates, many corrupted variants
			// (bit flips, truncations, extensions, wholesale replacements),
			// and a node-swapped assignment.
			corpora := []map[graph.ID]bits.Certificate{honest}
			for trial := 0; trial < 60; trial++ {
				corpora = append(corpora, corrupt(honest, rng))
			}
			if sw := swapTwo(honest, rng); sw != nil {
				corpora = append(corpora, sw)
			}
			// Each corpus entry is replayed on the member and — the
			// adversarial case — on a non-member with different topology.
			for gi, g := range []*graph.Graph{tc.member, tc.nonMember} {
				for ci, certs := range corpora {
					for _, v := range viewsOf(g, certs) {
						fresh := verdictOf(tc.scheme, v)
						pv := v
						pv.Scratch = shared
						pooled := verdictOf(tc.scheme, pv)
						if fresh != pooled {
							t.Fatalf("graph %d corpus %d node %d: fresh verdict %q != pooled verdict %q",
								gi, ci, v.ID, fresh, pooled)
						}
					}
				}
			}
		})
	}
}

// TestDecodeParityEngineSweep runs whole sweeps through the engine —
// the path that actually wires pooled scratch into verification — and
// checks the Outcome (accept set and reasons) against a fresh-scratch
// per-node baseline.
func TestDecodeParityEngineSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gen.Grid(5, 5)
	scheme := core.PlanarScheme{}
	honest, err := scheme.Prove(g)
	if err != nil {
		t.Fatalf("prover: %v", err)
	}
	pool := dist.NewScratchPool()
	for trial := 0; trial < 40; trial++ {
		certs := honest
		if trial > 0 {
			certs = corrupt(honest, rng)
		}
		// Engine sweep with a shared pool (sequential and parallel).
		for _, opt := range [][]dist.Option{
			{dist.Sequential(), dist.WithScratch(pool)},
			{dist.Parallel(4), dist.ShardSize(4), dist.WithScratch(pool)},
		} {
			out := dist.NewEngine(g, opt...).RunPLS(certs, scheme.Verify)
			for _, v := range viewsOf(g, certs) {
				want := verdictOf(scheme, v)
				got := ""
				if r, ok := out.Reasons[v.ID]; ok {
					got = r
				}
				if want != got {
					// The engine wraps contained panics in its own prefix;
					// verdict parity then means "both panicked".
					if strings.HasPrefix(want, "panic: ") && strings.Contains(got, "panicked") {
						continue
					}
					t.Fatalf("trial %d node %d: engine verdict %q != fresh verdict %q", trial, v.ID, got, want)
				}
			}
		}
	}
}
