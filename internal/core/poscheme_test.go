package core_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

func TestPOSchemeCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(30)
		g := gen.RandomPathOuterplanar(n, rng.Float64(), rng)
		out, err := pls.Run(core.POScheme{}, g)
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		if !out.AllAccept() {
			t.Fatalf("trial %d (n=%d): rejected: %v", trial, n, out.Reasons)
		}
	}
}

func TestPOSchemeWithExplicitWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := gen.RandomPathOuterplanar(12, 0.7, rng)
	// Scramble indices so the identity order is no longer a witness, then
	// supply the true witness explicitly.
	perm := rng.Perm(12)
	inv := make([]int, 12)
	for i, p := range perm {
		inv[p] = i
	}
	h := graph.NewWithNodes(12)
	for _, e := range g.Edges() {
		h.MustAddEdge(perm[e.U], perm[e.V])
	}
	witness := make([]int, 12)
	for i := range witness {
		witness[i] = perm[i]
	}
	out, err := pls.Run(core.POScheme{Witness: witness}, h)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllAccept() {
		t.Fatalf("explicit witness rejected: %v", out.Reasons)
	}
}

func TestPOSchemeSearchFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := gen.RandomPathOuterplanar(8, 0.8, rng)
	perm := rng.Perm(8)
	h := graph.NewWithNodes(8)
	for _, e := range g.Edges() {
		h.MustAddEdge(perm[e.U], perm[e.V])
	}
	out, err := pls.Run(core.POScheme{}, h)
	if err != nil {
		t.Fatalf("witness search failed: %v", err)
	}
	if !out.AllAccept() {
		t.Fatalf("searched witness rejected: %v", out.Reasons)
	}
}

func TestPOSchemeProverRejectsNonMembers(t *testing.T) {
	scheme := core.POScheme{}
	for i, g := range []*graph.Graph{
		gen.Complete(4),
		gen.Star(5),
		gen.Grid(3, 3), // not outerplanar (K2,3 minor), hence not PO
		graph.New(0),
	} {
		if _, err := scheme.Prove(g); err == nil {
			t.Fatalf("graph %d accepted by PO prover", i)
		}
	}
}

func TestPOSchemeSoundnessOnK4(t *testing.T) {
	// K4 is Hamiltonian but no ordering avoids a crossing. Try every
	// permutation as a forged rank assignment with brute-force intervals.
	g := gen.Complete(4)
	scheme := core.POScheme{}
	perms := permutations(4)
	for _, perm := range perms {
		certs := forgePOCerts(t, g, perm)
		if pls.RunWithCerts(scheme, g, certs).AllAccept() {
			t.Fatalf("K4 accepted with rank permutation %v", perm)
		}
	}
}

func TestPOSchemeSoundnessOnStar(t *testing.T) {
	g := gen.Star(5)
	scheme := core.POScheme{}
	for _, perm := range permutations(5) {
		certs := forgePOCerts(t, g, perm)
		if pls.RunWithCerts(scheme, g, certs).AllAccept() {
			t.Fatalf("star accepted with rank permutation %v", perm)
		}
	}
}

// forgePOCerts builds the most plausible forged certificates for ordering
// perm: ranks follow perm, intervals are the shortest covering edges in
// rank space (ignoring crossings, which is the best the adversary can do).
func forgePOCerts(t *testing.T, g *graph.Graph, perm []int) map[graph.ID]bits.Certificate {
	t.Helper()
	n := g.N()
	rank := make([]int, n)
	for i, v := range perm {
		rank[v] = i + 1
	}
	ivs := make([]core.Interval, n+1)
	for x := 1; x <= n; x++ {
		best := core.Sentinel(n)
		for _, e := range g.Edges() {
			a, b := rank[e.U], rank[e.V]
			if a > b {
				a, b = b, a
			}
			if a < x && x < b && b-a < best.B-best.A {
				best = core.Interval{A: a, B: b}
			}
		}
		ivs[x] = best
	}
	certs := make(map[graph.ID]bits.Certificate, n)
	for v := 0; v < n; v++ {
		parent := v
		if rank[v] > 1 {
			parent = perm[rank[v]-2]
		}
		c := core.POCert{
			Tree: pls.TreeCert{
				SelfID: g.IDOf(v),
				RootID: g.IDOf(perm[0]),
				N:      uint64(n),
				Dist:   uint64(rank[v] - 1),
				Parent: g.IDOf(parent),
				Size:   uint64(n - rank[v] + 1),
			},
			I: ivs[rank[v]],
		}
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			t.Fatal(err)
		}
		certs[g.IDOf(v)] = bits.FromWriter(&w)
	}
	return certs
}

func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

func TestPOSchemeCertSize(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	g := gen.RandomPathOuterplanar(256, 0.6, rng)
	out, err := pls.Run(core.POScheme{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllAccept() {
		t.Fatal("rejected")
	}
	// 256 nodes: certificates must stay well under 200 bits (O(log n)).
	if out.MaxCertBit > 200 {
		t.Fatalf("PO certificate %d bits at n=256", out.MaxCertBit)
	}
}
