package core

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/embedding"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/planarity"
)

// Transform is the outcome of cutting a planar graph along a spanning tree
// (Section 3.2 of the paper): a DFS tree T following the rotation system,
// the DFS-mapping f onto ranks 1..2n-1, and the induced path-outerplanar
// graph G_{T,f} whose identity order is a witness (Lemma 3).
type Transform struct {
	G    *graph.Graph
	Root int

	// Parent is the tree parent of every vertex (Parent[Root] = Root).
	Parent []int
	// ChildOrder lists each vertex's children in the counterclockwise
	// order ν of the embedding, starting after the parent edge.
	ChildOrder [][]int
	// Depth is the DFS tree depth of each vertex.
	Depth []int

	// N2 = 2n-1 is the number of ranks of G_{T,f}.
	N2 int
	// F maps rank (1-based) to the original vertex index.
	F []int
	// Copies maps each vertex to its ranks i_1 < ... < i_d.
	Copies [][]int

	// CotreeEdges maps every cotree edge of G to its unique edge of
	// G_{T,f} in rank space.
	CotreeEdges map[graph.Edge]graph.Edge
	// CotreeRanks maps every cotree edge e (normalised, e.U < e.V as
	// indices) to the pair [rank of e.U's copy, rank of e.V's copy].
	CotreeRanks map[graph.Edge][2]int
	// POEdges is the full edge set of G_{T,f} in rank space: the path
	// edges {i, i+1} plus the mapped cotree edges.
	POEdges []graph.Edge
	// Intervals holds I(x) for each rank x (index 0 unused), as computed
	// by the nesting sweep; present only after a successful Build.
	Intervals []Interval
}

// BuildTransform computes the transform for a connected planar graph g
// using the planar rotation system rot, rooting the spanning tree at
// vertex root. It returns an error if g is disconnected or if the
// construction fails to produce a path-outerplanar graph (which, by
// Lemma 3, indicates rot is not a planar embedding).
func BuildTransform(g *graph.Graph, rot *embedding.Rotation, root int) (*Transform, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("core: empty graph has no transform")
	}
	if err := rot.Validate(g); err != nil {
		return nil, fmt.Errorf("core: invalid rotation: %w", err)
	}
	t := &Transform{
		G:           g,
		Root:        root,
		Parent:      make([]int, n),
		ChildOrder:  make([][]int, n),
		Depth:       make([]int, n),
		N2:          2*n - 1,
		F:           make([]int, 2*n),
		Copies:      make([][]int, n),
		CotreeEdges: make(map[graph.Edge]graph.Edge, g.M()-n+1),
		CotreeRanks: make(map[graph.Edge][2]int, g.M()-n+1),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.Depth[i] = -1
	}
	t.Parent[root] = root
	t.Depth[root] = 0

	// DFS following the rotation: at v, scan neighbors starting just after
	// the parent's slot (for the root: from slot 0, i.e. the virtual r'
	// sits before slot 0). Unvisited neighbors become children in that
	// order.
	counter := 0
	var dfs func(v int)
	dfs = func(v int) {
		counter++
		t.F[counter] = v
		t.Copies[v] = append(t.Copies[v], counter)
		rotv := rot.Order[v]
		start := 0
		if v != t.Root {
			p := rot.PositionOf(v, t.Parent[v])
			start = p + 1
		}
		for s := 0; s < len(rotv); s++ {
			w := rotv[(start+s)%len(rotv)]
			if v != t.Root && w == t.Parent[v] {
				continue
			}
			if t.Depth[w] == -1 { // tree child
				t.Parent[w] = v
				t.Depth[w] = t.Depth[v] + 1
				t.ChildOrder[v] = append(t.ChildOrder[v], w)
				dfs(w)
				counter++
				t.F[counter] = v
				t.Copies[v] = append(t.Copies[v], counter)
			}
		}
	}
	dfs(root)
	if counter != t.N2 {
		return nil, fmt.Errorf("core: DFS covered %d ranks, want %d (graph disconnected?)", counter, t.N2)
	}

	// Path edges of G_{T,f}.
	t.POEdges = make([]graph.Edge, 0, t.N2-1+g.M())
	for i := 1; i < t.N2; i++ {
		t.POEdges = append(t.POEdges, graph.NewEdge(i, i+1))
	}

	// Cotree edges: attach each endpoint to the copy given by its type
	// (Lemma 3): scan the rotation forward from the cotree slot; the first
	// tree-neighbor slot c_k gives copy i_k, wrapping to the parent slot
	// (or the root's virtual r' boundary) gives copy i_d.
	for _, e := range g.Edges() {
		if t.Parent[e.U] == e.V || t.Parent[e.V] == e.U {
			continue // tree edge
		}
		ru := t.copyForCotree(rot, e.U, e.V)
		rv := t.copyForCotree(rot, e.V, e.U)
		if ru < 0 || rv < 0 {
			return nil, fmt.Errorf("core: no copy found for cotree edge %v", e)
		}
		po := graph.NewEdge(ru, rv)
		t.CotreeEdges[e] = po
		t.CotreeRanks[e] = [2]int{ru, rv}
		t.POEdges = append(t.POEdges, po)
	}

	// Compute intervals; the sweep also proves the identity order is a
	// path-outerplanarity witness (Lemma 3).
	intervals, err := ComputeIntervals(t.N2, cotreeOnly(t))
	if err != nil {
		return nil, fmt.Errorf("core: G_{T,f} not path-outerplanar: %w", err)
	}
	t.Intervals = intervals
	return t, nil
}

// cotreeOnly lists the non-path PO edges (path edges never strictly cover
// a rank and never cross anything).
func cotreeOnly(t *Transform) []graph.Edge {
	out := make([]graph.Edge, 0, len(t.CotreeEdges))
	for _, po := range t.CotreeEdges {
		out = append(out, po)
	}
	return out
}

// copyForCotree determines which copy of v the cotree edge {v, u} attaches
// to: the rank i_k whose section of the circle C_v contains the edge's
// crossing point.
func (t *Transform) copyForCotree(rot *embedding.Rotation, v, u int) int {
	rotv := rot.Order[v]
	slot := rot.PositionOf(v, u)
	if slot < 0 {
		return -1
	}
	copies := t.Copies[v]
	d := len(copies)
	// Conceptually rotate so the list starts at the parent slot (root: at
	// the virtual r' boundary before slot 0). Children then appear in
	// ChildOrder; scanning forward from the cotree slot, the first tree
	// slot met is c_k -> copy i_k, and reaching the start-of-list boundary
	// (the parent / r') -> copy i_d.
	start := 0
	if v != t.Root {
		start = rot.PositionOf(v, t.Parent[v])
	}
	// Position of slot in the rotated list (0 = parent/r' boundary).
	rel := ((slot-start)%len(rotv) + len(rotv)) % len(rotv)
	childRank := make(map[int]int, len(t.ChildOrder[v]))
	for k, c := range t.ChildOrder[v] {
		childRank[c] = k // c_{k+1} in 1-based notation -> copy i_{k+1}
	}
	for off := rel + 1; off < len(rotv); off++ {
		w := rotv[(start+off)%len(rotv)]
		if k, ok := childRank[w]; ok {
			return copies[k]
		}
		if v != t.Root && w == t.Parent[v] {
			return copies[d-1]
		}
	}
	// Wrapped to the boundary: parent slot (non-root) or r' (root).
	return copies[d-1]
}

// TransformOf is the honest-prover pipeline: test planarity, audit the
// embedding, and build the transform rooted at vertex 0.
func TransformOf(g *graph.Graph) (*Transform, error) {
	ok, rot, err := planarity.Check(g)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: graph is not planar")
	}
	planar, err := rot.IsPlanar(g)
	if err != nil {
		return nil, err
	}
	if !planar {
		return nil, fmt.Errorf("core: embedding failed Euler audit")
	}
	return BuildTransform(g, rot, 0)
}

// ContractBack verifies Lemma 4's round trip: contracting the path edges
// {i, i+1} with f(i) = f(i+1+...)... — concretely, mapping every rank back
// through F and re-adding the cotree edges — must reproduce exactly the
// original graph.
func (t *Transform) ContractBack() (*graph.Graph, error) {
	g := graph.New(t.G.N())
	for v := 0; v < t.G.N(); v++ {
		g.MustAddNode(t.G.IDOf(v))
	}
	addOnce := func(u, v int) {
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	for _, po := range t.POEdges {
		addOnce(t.F[po.U], t.F[po.V])
	}
	// The contraction must reproduce G exactly.
	if g.M() != t.G.M() {
		return nil, fmt.Errorf("core: contraction has %d edges, original %d", g.M(), t.G.M())
	}
	for _, e := range t.G.Edges() {
		if !g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("core: contraction lost edge %v", e)
		}
	}
	return g, nil
}

// NumCopies returns d(v), the number of ranks mapped to v.
func (t *Transform) NumCopies(v int) int { return len(t.Copies[v]) }
