package core_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// TestCorruptionBatteryAllSchemes is the failure-injection suite: for
// every scheme, honest certificates are corrupted by random bit flips,
// truncation, extension, and swapping between nodes. Verification must
// never panic, and (for the one-sided classes) corrupted proofs on
// NON-member inputs must never be accepted.
func TestCorruptionBatteryAllSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := []struct {
		name      string
		scheme    pls.Scheme
		member    *graph.Graph
		nonMember *graph.Graph // verified to reject any corrupted member-cert replay
	}{
		{
			name:      "planarity",
			scheme:    core.PlanarScheme{},
			member:    gen.Grid(4, 4),
			nonMember: withExtraNodes(gen.Complete(5), 11),
		},
		{
			name:      "outerplanarity",
			scheme:    core.OuterplanarScheme{},
			member:    gen.RandomOuterplanar(16, 0.6, rng),
			nonMember: gen.Wheel(16),
		},
		{
			name:      "non-planarity",
			scheme:    core.NonPlanarScheme{},
			member:    withExtraNodes(gen.Complete(5), 11),
			nonMember: gen.Grid(4, 4),
		},
		{
			name:      "path-outerplanar",
			scheme:    core.POScheme{},
			member:    gen.RandomPathOuterplanar(16, 0.5, rng),
			nonMember: gen.Star(16),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			honest, err := tc.scheme.Prove(tc.member)
			if err != nil {
				t.Fatalf("prover: %v", err)
			}
			// 1. Bit flips on the member: must never panic; acceptance is
			// allowed only if the mutation kept a valid proof.
			for trial := 0; trial < 120; trial++ {
				certs := corrupt(honest, rng)
				pls.RunWithCerts(tc.scheme, tc.member, certs)
			}
			// 2. Replay (corrupted or not) on the non-member: never accepted.
			for trial := 0; trial < 120; trial++ {
				certs := honest
				if trial > 0 {
					certs = corrupt(honest, rng)
				}
				out := pls.RunWithCerts(tc.scheme, tc.nonMember, certs)
				if out.AllAccept() {
					t.Fatalf("trial %d: corrupted member certificates accepted on a non-member", trial)
				}
			}
			// 3. Node-swapped certificates on the member: the SelfID binding
			// must catch them.
			swapped := swapTwo(honest, rng)
			if swapped != nil {
				out := pls.RunWithCerts(tc.scheme, tc.member, swapped)
				if out.AllAccept() {
					t.Fatal("swapped certificates accepted")
				}
			}
		})
	}
}

func withExtraNodes(g *graph.Graph, pad int) *graph.Graph {
	c := g.Clone()
	prev := -1
	for i := 0; i < pad; i++ {
		idx := c.MustAddNode(graph.ID(1000 + i))
		if prev == -1 {
			c.MustAddEdge(0, idx)
		} else {
			c.MustAddEdge(prev, idx)
		}
		prev = idx
	}
	return c
}

// corrupt applies a random mutation to a random node's certificate.
func corrupt(honest map[graph.ID]bits.Certificate, rng *rand.Rand) map[graph.ID]bits.Certificate {
	out := make(map[graph.ID]bits.Certificate, len(honest))
	for id, c := range honest {
		out[id] = c
	}
	// Pick a victim.
	var victim graph.ID
	k := rng.Intn(len(honest))
	for id := range honest {
		if k == 0 {
			victim = id
			break
		}
		k--
	}
	c := out[victim]
	data := append([]byte(nil), c.Data...)
	nbits := c.Bits
	switch rng.Intn(4) {
	case 0: // flip 1-4 bits
		if nbits > 0 {
			for i := 0; i < 1+rng.Intn(4); i++ {
				pos := rng.Intn(nbits)
				data[pos/8] ^= 1 << (7 - uint(pos%8))
			}
		}
	case 1: // truncate
		if nbits > 1 {
			nbits = rng.Intn(nbits)
		}
	case 2: // extend with random bits
		extra := 1 + rng.Intn(64)
		for i := 0; i < extra; i++ {
			if (nbits+i)%8 == 0 {
				data = append(data, 0)
			}
			if rng.Intn(2) == 0 {
				data[(nbits+i)/8] |= 1 << (7 - uint((nbits+i)%8))
			}
		}
		nbits += extra
	case 3: // replace wholesale
		nbits = rng.Intn(200)
		data = make([]byte, (nbits+7)/8)
		rng.Read(data)
	}
	out[victim] = bits.Certificate{Data: data, Bits: nbits}
	return out
}

// swapTwo exchanges the certificates of two distinct nodes.
func swapTwo(honest map[graph.ID]bits.Certificate, rng *rand.Rand) map[graph.ID]bits.Certificate {
	if len(honest) < 2 {
		return nil
	}
	ids := make([]graph.ID, 0, len(honest))
	for id := range honest {
		ids = append(ids, id)
	}
	a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
	for a == b {
		b = ids[rng.Intn(len(ids))]
	}
	if honest[a].Equal(honest[b]) {
		return nil // identical certificates: a swap is a no-op
	}
	out := make(map[graph.ID]bits.Certificate, len(honest))
	for id, c := range honest {
		out[id] = c
	}
	out[a], out[b] = out[b], out[a]
	return out
}
