package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// randomNestedChords produces a random valid (non-crossing) chord set
// over ranks 1..n by recursive splitting — a generator for property
// tests of the interval machinery.
func randomNestedChords(n int, rng *rand.Rand) []graph.Edge {
	var chords []graph.Edge
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		if rng.Intn(2) == 0 {
			chords = append(chords, graph.Edge{U: lo, V: hi})
		}
		mid := lo + 1 + rng.Intn(hi-lo-1)
		split(lo, mid)
		split(mid, hi)
	}
	split(1, n)
	return chords
}

// TestQuickIntervalsMatchBruteForce: for every valid chord family, the
// sweep's intervals equal the brute-force shortest strict cover.
func TestQuickIntervalsMatchBruteForce(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 2 + int(size%40)
		rng := rand.New(rand.NewSource(seed))
		chords := randomNestedChords(n, rng)
		ivs, err := ComputeIntervals(n, chords)
		if err != nil {
			return false // generator guarantees validity
		}
		for x := 1; x <= n; x++ {
			want := Sentinel(n)
			for _, e := range chords {
				if e.U < x && x < e.V && e.V-e.U < want.B-want.A {
					want = Interval{A: e.U, B: e.V}
				}
			}
			if ivs[x] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHonestPOViewsAccept: Algorithm 1 accepts every honest view of
// every valid chord family (completeness of Lemma 2 as a property).
func TestQuickHonestPOViewsAccept(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 1 + int(size%30)
		rng := rand.New(rand.NewSource(seed))
		chords := randomNestedChords(n, rng)
		ivs, err := ComputeIntervals(n, chords)
		if err != nil {
			return false
		}
		for x := 1; x <= n; x++ {
			if err := VerifyPONode(honestPOView(n, x, chords, ivs)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrossingAlwaysDetected: adding one crossing chord to a valid
// family is always detected by the sweep, matching the pairwise checker.
func TestQuickCrossingAlwaysDetected(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 6 + int(size%30)
		rng := rand.New(rand.NewSource(seed))
		chords := randomNestedChords(n, rng)
		// Try random extra chords until one crosses per the pairwise rule.
		for attempt := 0; attempt < 50; attempt++ {
			a := 1 + rng.Intn(n-2)
			b := a + 2 + rng.Intn(n-a-1)
			extra := graph.Edge{U: a, V: b}
			all := append(append([]graph.Edge(nil), chords...), extra)
			pairErr := CheckWitnessPairwise(all)
			_, sweepErr := ComputeIntervals(n, all)
			if (pairErr == nil) != (sweepErr == nil) {
				return false // the two checkers must agree exactly
			}
			if pairErr != nil {
				return true // found and agreed on a crossing
			}
		}
		return true // no crossing found; nothing to disagree about
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTransformInvariants: on random planar graphs the transform
// always yields 2n-1 ranks, a valid witness, and an exact round trip.
func TestQuickTransformInvariants(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		n := 2 + int(size%40)
		rng := rand.New(rand.NewSource(seed))
		maxM := 3*n - 6
		m := n - 1
		if maxM > m {
			m += rng.Intn(maxM - m + 1)
		}
		g, err := gen.RandomPlanar(n, m, rng)
		if err != nil {
			return false
		}
		tr, err := TransformOf(g)
		if err != nil {
			return false
		}
		if tr.N2 != 2*n-1 {
			return false
		}
		if CheckWitnessPairwise(cotreeOnly(tr)) != nil {
			return false
		}
		if _, err := tr.ContractBack(); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPlanarCertRoundTrip: encode/decode is the identity on
// structurally valid certificates.
func TestQuickPlanarCertRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := uint64(2 + rng.Intn(1000))
		c := &PlanarCert{
			Tree: pls.TreeCert{
				SelfID: graph.ID(rng.Intn(10000)),
				RootID: graph.ID(rng.Intn(10000)),
				N:      n,
				Dist:   uint64(rng.Intn(int(n))),
				Parent: graph.ID(rng.Intn(10000)),
				Size:   uint64(1 + rng.Intn(int(n))),
			},
		}
		n2 := int(2*n - 1)
		for i := 0; i < rng.Intn(MaxEdgeCerts+1); i++ {
			if rng.Intn(2) == 0 {
				pa := 1 + rng.Intn(n2-2)
				cmax := pa + 1 + rng.Intn(n2-pa-1)
				c.Edges = append(c.Edges, &EdgeCert{
					IsTree:   true,
					ParentID: graph.ID(rng.Intn(10000)),
					ChildID:  graph.ID(rng.Intn(10000)),
					PA:       pa, CMin: pa + 1, CMax: cmax, PB: cmax + 1,
					IPA:   Interval{A: rng.Intn(n2), B: rng.Intn(n2 + 2)},
					ICMin: Interval{A: rng.Intn(n2), B: rng.Intn(n2 + 2)},
					ICMax: Interval{A: rng.Intn(n2), B: rng.Intn(n2 + 2)},
					IPB:   Interval{A: rng.Intn(n2), B: rng.Intn(n2 + 2)},
				})
			} else {
				c.Edges = append(c.Edges, &EdgeCert{
					IDU: graph.ID(rng.Intn(10000)), IDV: graph.ID(rng.Intn(10000)),
					RankU: 1 + rng.Intn(n2), RankV: 1 + rng.Intn(n2),
					IU: Interval{A: rng.Intn(n2), B: rng.Intn(n2 + 2)},
					IV: Interval{A: rng.Intn(n2), B: rng.Intn(n2 + 2)},
				})
			}
		}
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			return false
		}
		dec, err := DecodePlanarCert(bits.FromWriter(&w).Reader())
		if err != nil {
			return false
		}
		if dec.Tree != c.Tree || len(dec.Edges) != len(c.Edges) {
			return false
		}
		for i := range c.Edges {
			if *dec.Edges[i] != *c.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNonPlanarCertRoundTrip covers the Kuratowski certificate
// codec the same way.
func TestQuickNonPlanarCertRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k5 := rng.Intn(2) == 0
		branches := 6
		if k5 {
			branches = 5
		}
		c := &NonPlanarCert{
			Tree: pls.TreeCert{
				SelfID: graph.ID(rng.Intn(10000)),
				RootID: graph.ID(rng.Intn(10000)),
				N:      uint64(1 + rng.Intn(1000)),
				Dist:   uint64(rng.Intn(100)),
				Parent: graph.ID(rng.Intn(10000)),
				Size:   uint64(1 + rng.Intn(100)),
			},
			K5:   k5,
			Role: Role(rng.Intn(3)),
		}
		for i := 0; i < branches; i++ {
			c.BranchIDs = append(c.BranchIDs, graph.ID(rng.Intn(10000)))
		}
		switch c.Role {
		case RoleBranch:
			c.BranchIdx = uint8(rng.Intn(branches))
		case RoleInterior:
			c.PathA = uint8(rng.Intn(branches - 1))
			c.PathB = c.PathA + 1
			c.Pos = uint64(1 + rng.Intn(50))
			c.PrevID = graph.ID(rng.Intn(10000))
			c.NextID = graph.ID(rng.Intn(10000))
		}
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			return false
		}
		dec, err := DecodeNonPlanarCert(bits.FromWriter(&w).Reader())
		if err != nil {
			return false
		}
		if dec.Tree != c.Tree || dec.K5 != c.K5 || dec.Role != c.Role {
			return false
		}
		for i := range c.BranchIDs {
			if dec.BranchIDs[i] != c.BranchIDs[i] {
				return false
			}
		}
		if c.Role == RoleInterior {
			if dec.PathA != c.PathA || dec.PathB != c.PathB || dec.Pos != c.Pos ||
				dec.PrevID != c.PrevID || dec.NextID != c.NextID {
				return false
			}
		}
		if c.Role == RoleBranch && dec.BranchIdx != c.BranchIdx {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
