// Package core implements the contribution of Feuilloley, Fraigniaud,
// Rapaport, Rémila, Montealegre and Todinca, "Compact Distributed
// Certification of Planar Graphs" (PODC 2020):
//
//   - the proof-labeling scheme for path-outerplanar graphs
//     (Section 3.1, Lemma 2 / Algorithm 1),
//   - the transformation of a planar graph into a path-outerplanar graph
//     by cutting along a spanning tree (Section 3.2, Lemmas 3-4),
//   - the 1-round proof-labeling scheme for planarity with O(log n)-bit
//     certificates (Section 3.3, Theorem 1 / Algorithm 2),
//   - the folklore proof-labeling scheme for NON-planarity via Kuratowski
//     subdivisions (Section 2),
//   - the cycle-outerplanarity scheme sketched in the conclusion.
//
// Each scheme is a pls.Scheme: a centralized Prove that assigns every
// node an O(log n)-bit certificate, and a local Verify that decides
// accept/reject from a 1-round dist.View. Beyond the plain Prove
// entry points, the structured provers (BuildPlanarCertObjects,
// BuildNonPlanarProof, EncodePlanarCerts, EncodeNonPlanarCerts) expose
// the intermediate proof objects — spanning-path ranks, covering
// intervals, witness assignments — so internal/dynamic can patch
// certificates locally instead of re-proving from scratch.
//
// Verifier determinism: rejection reasons are produced in view order,
// so sequential and parallel engine runs report identical outcomes.
package core
