package core

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"

	"github.com/planarcert/planarcert/internal/graph"
)

// Interval is the certificate interval I(x) = [A, B] of Section 3.1: the
// shortest edge {A, B} of the path-outerplanar graph strictly covering x.
// The sentinel value [0, N+1] (paper: [0, n+1]) means no real edge covers
// x; it behaves like the virtual edge {0, N+1}.
type Interval struct {
	A, B int
}

// Sentinel returns the no-covering-edge interval for a graph on n ranks.
func Sentinel(n int) Interval { return Interval{A: 0, B: n + 1} }

// IsSentinel reports whether i is the sentinel for n ranks.
func (i Interval) IsSentinel(n int) bool { return i.A == 0 && i.B == n+1 }

// Contains reports whether rank x lies strictly inside the interval.
func (i Interval) Contains(x int) bool { return i.A < x && x < i.B }

// StrictlyInside reports i ⊊ o.
func (i Interval) StrictlyInside(o Interval) bool {
	return o.A <= i.A && i.B <= o.B && (o.A < i.A || i.B < o.B)
}

// String renders the interval as "[A,B]".
func (i Interval) String() string { return fmt.Sprintf("[%d,%d]", i.A, i.B) }

// ErrCrossing reports that two edges cross, i.e. the vertex ordering is
// not a path-outerplanarity witness (Definition 1).
var ErrCrossing = errors.New("core: crossing edges, ordering is not a path-outerplanar witness")

// ComputeIntervals computes I(x) for every rank x in 1..n of a
// path-outerplanar graph given by its edges over ranks (path edges
// {i, i+1} need not be included; they never cover anything strictly).
// It runs a left-to-right sweep with a stack of open edges; if two edges
// cross, it returns ErrCrossing — so it doubles as the witness validity
// check. Complexity O((n + m) log m).
func ComputeIntervals(n int, edges []graph.Edge) ([]Interval, error) {
	// startsAt[a] lists the edges {a,b}, sorted by decreasing b so that the
	// innermost ends up on top of the stack.
	startsAt := make([][]int, n+2)
	for x, e := range edges {
		if e.U < 1 || e.V > n || e.U >= e.V {
			return nil, fmt.Errorf("core: edge %v outside rank range [1,%d]", e, n)
		}
		startsAt[e.U] = append(startsAt[e.U], x)
	}
	for a := range startsAt {
		sort.Slice(startsAt[a], func(i, j int) bool {
			return edges[startsAt[a][i]].V > edges[startsAt[a][j]].V
		})
	}
	intervals := make([]Interval, n+1)
	stack := make([]int, 0, len(edges))
	for x := 1; x <= n; x++ {
		// Close edges ending at x. Non-crossing families keep all of them
		// on top of the stack.
		for len(stack) > 0 && edges[stack[len(stack)-1]].V == x {
			stack = stack[:len(stack)-1]
		}
		for _, ei := range stack {
			if edges[ei].V <= x {
				return nil, fmt.Errorf("%w: edge %v still open at %d", ErrCrossing, edges[ei], x)
			}
		}
		// The innermost open edge strictly covers x (it was opened at some
		// a < x and closes at some b > x).
		if len(stack) > 0 {
			top := edges[stack[len(stack)-1]]
			intervals[x] = Interval{A: top.U, B: top.V}
		} else {
			intervals[x] = Sentinel(n)
		}
		// Open edges starting at x (outermost first).
		for _, ei := range startsAt[x] {
			// Nesting discipline: a new edge must close no later than the
			// current innermost open edge.
			if len(stack) > 0 && edges[ei].V > edges[stack[len(stack)-1]].V {
				return nil, fmt.Errorf("%w: %v crosses %v", ErrCrossing, edges[ei], edges[stack[len(stack)-1]])
			}
			stack = append(stack, ei)
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("%w: %d edges still open after sweep", ErrCrossing, len(stack))
	}
	return intervals, nil
}

// CheckWitnessPairwise is the direct O(m^2) implementation of
// Definition 1: for every pair of edges {a,b}, {c,d} with a<b, c<d one of
// a<b<=c<d, c<d<=a<b, a<=c<d<=b, c<=a<b<=d must hold. It exists to
// cross-validate ComputeIntervals in tests.
func CheckWitnessPairwise(edges []graph.Edge) error {
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			a, b := edges[i].U, edges[i].V
			c, d := edges[j].U, edges[j].V
			ok := (a < b && b <= c && c < d) ||
				(c < d && d <= a && a < b) ||
				(a <= c && c < d && d <= b) ||
				(c <= a && a < b && b <= d)
			if !ok {
				return fmt.Errorf("%w: %v and %v", ErrCrossing, edges[i], edges[j])
			}
		}
	}
	return nil
}

// PONeighbor is one neighbor in the local view of a path-outerplanar
// vertex: its rank and claimed interval.
type PONeighbor struct {
	Rank int
	I    Interval
}

// PONodeView is the information available to one vertex of the
// path-outerplanar graph when simulating Algorithm 1: the total number of
// ranks N, its own rank and interval, and the rank+interval of every
// neighbor. Virtual vertices 0 and N+1 must NOT be included; the verifier
// adds them itself.
type PONodeView struct {
	N         int
	Rank      int
	I         Interval
	Neighbors []PONeighbor
}

// VerifyPONode runs Algorithm 1 of the paper at one vertex, including the
// boundary simulation of the virtual vertices 0 and N+1 performed by the
// vertices of rank 1 and N. A nil return means the node accepts.
func VerifyPONode(v PONodeView) error {
	var ns poNodeScratch
	return verifyPONode(v, &ns)
}

// verifyPONode is VerifyPONode decoding into reusable scratch: the
// planarity verifier calls it once per copy (2n-1 times across a
// sweep), so its split/sort buffers and duplicate-rank set live in ns
// instead of being allocated per call.
func verifyPONode(v PONodeView, ns *poNodeScratch) error {
	n := v.N
	x := v.Rank
	if x < 1 || x > n {
		return fmt.Errorf("core: rank %d outside [1,%d]", x, n)
	}
	sent := Sentinel(n)

	// Split neighbors into left (descending) and right (ascending), with
	// the virtual neighbors of the boundary vertices appended.
	left, right := ns.left[:0], ns.right[:0]
	seen := &ns.seen
	seen.reset()
	for _, nb := range v.Neighbors {
		if nb.Rank < 1 || nb.Rank > n || nb.Rank == x {
			return fmt.Errorf("core: neighbor rank %d invalid next to %d", nb.Rank, x)
		}
		if _, dup := seen.get(nb.Rank); dup {
			return fmt.Errorf("core: duplicate neighbor rank %d", nb.Rank)
		}
		seen.put(nb.Rank, struct{}{})
		if nb.Rank < x {
			left = append(left, nb)
		} else {
			right = append(right, nb)
		}
	}
	virtualLow := PONeighbor{Rank: 0, I: Interval{A: -1, B: n + 2}}
	virtualHigh := PONeighbor{Rank: n + 1, I: Interval{A: -1, B: n + 2}}
	if x == 1 {
		left = append(left, virtualLow)
	}
	if x == n {
		right = append(right, virtualHigh)
	}
	ns.left, ns.right = left, right // keep any growth for the next call
	slices.SortFunc(left, func(a, b PONeighbor) int { return cmp.Compare(b.Rank, a.Rank) })  // x-_0 > x-_1 > ...
	slices.SortFunc(right, func(a, b PONeighbor) int { return cmp.Compare(a.Rank, b.Rank) }) // x+_0 < x+_1 < ...

	// Spanning-path adjacency (part of the paper's line 3): x must be
	// adjacent to ranks x-1 and x+1 (virtual at the boundary).
	if len(left) == 0 || left[0].Rank != x-1 {
		return fmt.Errorf("core: rank %d is not adjacent to rank %d", x, x-1)
	}
	if len(right) == 0 || right[0].Rank != x+1 {
		return fmt.Errorf("core: rank %d is not adjacent to rank %d", x, x+1)
	}

	// Boundary simulation of virtual vertices (paper: node 1 simulates
	// node 0, node n simulates node n+1): node 0's only non-trivial check
	// is I(1) = [0, n+1], symmetrically for node n+1.
	if x == 1 && v.I != sent {
		return fmt.Errorf("core: I(1) = %v, want sentinel %v", v.I, sent)
	}
	if x == n && v.I != sent {
		return fmt.Errorf("core: I(%d) = %v, want sentinel %v", n, v.I, sent)
	}

	// Line 5: a < x < b and all neighbors inside [a, b].
	a, b := v.I.A, v.I.B
	if !(0 <= a && a < x && x < b && b <= n+1) {
		return fmt.Errorf("core: I(%d) = %v does not cover %d", x, v.I, x)
	}
	for _, nb := range v.Neighbors {
		if nb.Rank < a || nb.Rank > b {
			return fmt.Errorf("core: neighbor %d of %d outside I(%d) = %v", nb.Rank, x, x, v.I)
		}
	}

	// Lines 6-7: consecutive right neighbors delimit each other's faces.
	k := len(right) - 1
	for i := 0; i < k; i++ {
		want := Interval{A: x, B: right[i+1].Rank}
		if right[i].I != want {
			return fmt.Errorf("core: I(%d) = %v, want %v (right chain of %d)",
				right[i].Rank, right[i].I, want, x)
		}
	}
	// Lines 8-9: symmetric left chain.
	l := len(left) - 1
	for i := 0; i < l; i++ {
		want := Interval{A: left[i+1].Rank, B: x}
		if left[i].I != want {
			return fmt.Errorf("core: I(%d) = %v, want %v (left chain of %d)",
				left[i].Rank, left[i].I, want, x)
		}
	}
	// Lines 10-11: the extreme right neighbor below b shares x's face.
	if xk := right[k]; xk.Rank < b {
		if xk.I != v.I {
			return fmt.Errorf("core: I(%d) = %v, want I(%d) = %v (outer right)",
				xk.Rank, xk.I, x, v.I)
		}
	}
	// Lines 12-13: symmetric on the left.
	if xl := left[l]; xl.Rank > a {
		if xl.I != v.I {
			return fmt.Errorf("core: I(%d) = %v, want I(%d) = %v (outer left)",
				xl.Rank, xl.I, x, v.I)
		}
	}
	// Lines 14-17: neighbors whose interval is anchored at x.
	for _, nb := range v.Neighbors {
		other := -1
		switch {
		case nb.I.A == x:
			other = nb.I.B
		case nb.I.B == x:
			other = nb.I.A
		default:
			continue
		}
		_, isNbr := seen.get(other)
		adjacent := isNbr ||
			(x == 1 && other == 0) || (x == n && other == n+1) ||
			other == x-1 || other == x+1
		// Note: ranks x-1 and x+1 are always neighbors (checked above), and
		// the boundary vertices own the virtual edges {0,1}, {n,n+1}.
		if other < 0 || other > n+1 || !adjacent {
			return fmt.Errorf("core: I(%d) = %v anchored at %d but %d is not adjacent to %d",
				nb.Rank, nb.I, x, other, x)
		}
		if !nb.I.StrictlyInside(v.I) {
			return fmt.Errorf("core: I(%d) = %v not strictly inside I(%d) = %v",
				nb.Rank, nb.I, x, v.I)
		}
	}
	return nil
}
