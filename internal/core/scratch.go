package core

import (
	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// This file holds the per-worker decode scratch of the scheme verifiers.
// The verifiers run once per node per sweep, and profiling showed the
// sweep cost was dominated by the fresh maps, slices and decoded
// certificate objects each call built: ~96 allocations and ~7.6KB of
// heap per node, enough to make whole-network throughput *fall* with
// scale. Every scheme therefore keeps its decode state in a scratch
// struct stored in the worker's dist.Scratch slot (see dist.View):
// certificate slabs instead of per-node objects, generation-stamped
// rank tables instead of per-node maps, and one reusable bits.Reader.
//
// Ownership contract (also documented in ARCHITECTURE.md):
//   - the engine owns the dist.Scratch and hands it to one worker at a
//     time; schemes own the typed state inside their slot;
//   - everything in the scratch is garbage on entry — reset is the
//     scheme's first step, and nothing decoded for one node may
//     influence another node's verdict (the decode-parity suite and
//     FuzzScratchReuse enforce this);
//   - views with a nil Scratch (direct Verify calls, the interactive
//     protocols) fall back to a fresh scratch per call, which is
//     exactly the old fresh-allocation behavior — both paths run the
//     same code, so pooled and fresh decisions cannot drift apart.

// rankMap is a generation-stamped open-addressing hash table keyed by
// ranks (small ints, but adversarial certificates can claim ranks up to
// 2^63, so a dense array indexed by rank is not an option). Bumping the
// generation invalidates every entry in O(1), which is what makes
// per-node reuse free: no clearing, no allocation, stable backing
// arrays that grow to the working-set size and stay there.
type rankMap[V any] struct {
	keys []int64
	vals []V
	gens []uint32
	gen  uint32
	live int
}

// reset invalidates all entries (O(1) except on generation wraparound).
func (m *rankMap[V]) reset() {
	if len(m.keys) == 0 {
		m.rehash(16)
		m.gen = 1
		return
	}
	m.live = 0
	m.gen++
	if m.gen == 0 { // 2^32 resets: stamps are ambiguous, wipe them
		clear(m.gens)
		m.gen = 1
	}
}

// slot returns the index holding key, or the free slot where it would
// be inserted (linear probing, no deletions).
func (m *rankMap[V]) slot(key int) int {
	mask := len(m.keys) - 1
	i := int((uint64(key)*0x9E3779B97F4A7C15)>>33) & mask
	for m.gens[i] == m.gen && m.keys[i] != int64(key) {
		i = (i + 1) & mask
	}
	return i
}

// get returns the value stored under key this generation.
func (m *rankMap[V]) get(key int) (V, bool) {
	i := m.slot(key)
	if m.gens[i] == m.gen {
		return m.vals[i], true
	}
	var zero V
	return zero, false
}

// put inserts or overwrites key.
func (m *rankMap[V]) put(key int, val V) {
	i := m.slot(key)
	if m.gens[i] != m.gen {
		if 2*(m.live+1) > len(m.keys) {
			m.rehash(2 * len(m.keys))
			i = m.slot(key)
		}
		m.gens[i] = m.gen
		m.keys[i] = int64(key)
		m.live++
	}
	m.vals[i] = val
}

// each visits every live entry (iteration order is unspecified, exactly
// like the map it replaces).
func (m *rankMap[V]) each(f func(key int, val V)) {
	for i, g := range m.gens {
		if g == m.gen {
			f(int(m.keys[i]), m.vals[i])
		}
	}
}

// rehash moves live entries into fresh power-of-two arrays.
func (m *rankMap[V]) rehash(size int) {
	oldKeys, oldVals, oldGens, oldGen := m.keys, m.vals, m.gens, m.gen
	m.keys = make([]int64, size)
	m.vals = make([]V, size)
	m.gens = make([]uint32, size)
	if m.gen == 0 {
		m.gen = 1
	}
	for i, g := range oldGens {
		if g == oldGen {
			j := m.slot(int(oldKeys[i]))
			m.gens[j] = m.gen
			m.keys[j] = oldKeys[i]
			m.vals[j] = oldVals[i]
		}
	}
}

// grow2 returns s resized to length n, preserving existing entries (and
// therefore the capacity of any slices they hold) across growth.
func grow2[T any](s []T, n int) []T {
	if cap(s) < n {
		nw := make([]T, n)
		copy(nw, s[:cap(s)])
		return nw
	}
	return s[:n]
}

// planarScratch is the decode state of the planarity verifier
// (Algorithm 2), shared with the outerplanarity scheme which layers one
// extra check on the same reconstruction.
type planarScratch struct {
	r        bits.Reader
	self     PlanarCert
	nbrs     []PlanarCert    // decoded neighbor certificates, by view position
	treeNbrs []*pls.TreeCert // their spanning-tree sub-proofs
	edgeSlab []EdgeCert      // all edge certificates decoded for this view
	edgePtrs []*EdgeCert     // backing for the decoded certs' Edges slices
	edgeOne  []*EdgeCert     // per neighbor position: the first certificate recovered for edge {me, nb}
	edgeCnt  []int32         // per neighbor position: how many were recovered
	claims   rankMap[Interval]
	copyIdx  rankMap[int]
	children []childInfo
	copies   []int           // my reconstructed copies f^{-1}(me)
	cotree   [][]PONeighbor  // cotree attachments per copy index
	po       poNodeScratch
}

type planarScratchKey struct{}

// planarScratchFor returns the worker's planar scratch, creating it on
// first use; a nil view.Scratch yields a fresh one per call.
func planarScratchFor(view dist.View) *planarScratch {
	if v := view.Scratch.Slot(planarScratchKey{}); v != nil {
		return v.(*planarScratch)
	}
	sc := &planarScratch{}
	view.Scratch.SetSlot(planarScratchKey{}, sc)
	return sc
}

// reset prepares the scratch for a view with deg neighbors. Every
// region is either truncated to zero length or fully overwritten before
// use, so nothing from the previous node can leak into this one.
func (sc *planarScratch) reset(deg int) {
	sc.nbrs = grow2(sc.nbrs, deg)
	sc.treeNbrs = sc.treeNbrs[:0]
	// Pre-size the slabs so decoding never reallocates mid-node: the cap
	// bounds certificates at MaxEdgeCerts edges each.
	need := (deg + 1) * MaxEdgeCerts
	if cap(sc.edgeSlab) < need {
		sc.edgeSlab = make([]EdgeCert, 0, need)
		sc.edgePtrs = make([]*EdgeCert, 0, need)
	} else {
		sc.edgeSlab = sc.edgeSlab[:0]
		sc.edgePtrs = sc.edgePtrs[:0]
	}
	sc.edgeOne = grow2(sc.edgeOne, deg)
	sc.edgeCnt = grow2(sc.edgeCnt, deg)
	for i := 0; i < deg; i++ {
		sc.edgeOne[i] = nil
		sc.edgeCnt[i] = 0
	}
	sc.claims.reset()
	sc.copyIdx.reset()
	sc.children = sc.children[:0]
	sc.copies = sc.copies[:0]
}

// newEdgeCert carves one zeroed EdgeCert out of the slab.
func (sc *planarScratch) newEdgeCert() *EdgeCert {
	sc.edgeSlab = append(sc.edgeSlab, EdgeCert{})
	return &sc.edgeSlab[len(sc.edgeSlab)-1]
}

// cotreeFor sizes the per-copy cotree attachment lists, keeping the
// inner slices' capacity across nodes.
func (sc *planarScratch) cotreeFor(copies int) {
	sc.cotree = grow2(sc.cotree, copies)
	for j := range sc.cotree {
		sc.cotree[j] = sc.cotree[j][:0]
	}
}

// poNodeScratch is the scratch of the Algorithm 1 simulation at one
// path-outerplanar vertex: the planarity verifier runs it once per
// copy (2n-1 times across a sweep), the standalone PO scheme once per
// node.
type poNodeScratch struct {
	viewNbrs    []PONeighbor // caller-assembled neighbor list
	left, right []PONeighbor
	seen        rankMap[struct{}]
}

// npScratch is the decode state of the non-planarity verifier.
type npScratch struct {
	r        bits.Reader
	self     NonPlanarCert
	nbrs     []NonPlanarCert
	treeNbrs []*pls.TreeCert
}

type npScratchKey struct{}

func npScratchFor(view dist.View) *npScratch {
	if v := view.Scratch.Slot(npScratchKey{}); v != nil {
		return v.(*npScratch)
	}
	sc := &npScratch{}
	view.Scratch.SetSlot(npScratchKey{}, sc)
	return sc
}

func (sc *npScratch) reset(deg int) {
	sc.nbrs = grow2(sc.nbrs, deg) // grow2 keeps each entry's BranchIDs backing
	sc.treeNbrs = sc.treeNbrs[:0]
}

// byID returns the decoded certificate of the neighbor with the given
// identifier, or nil (replaces the per-node map keyed by neighbor ID;
// callers look up at most a handful of IDs per node).
func (sc *npScratch) byID(view dist.View, id graph.ID) *NonPlanarCert {
	for i := range view.Neighbors {
		if view.Neighbors[i].ID == id {
			return &sc.nbrs[i]
		}
	}
	return nil
}

// poScratch is the decode state of the standalone path-outerplanarity
// verifier (Lemma 2).
type poScratch struct {
	r        bits.Reader
	self     POCert
	nbrs     []POCert
	treeNbrs []*pls.TreeCert
	po       poNodeScratch
}

type poScratchKey struct{}

func poScratchFor(view dist.View) *poScratch {
	if v := view.Scratch.Slot(poScratchKey{}); v != nil {
		return v.(*poScratch)
	}
	sc := &poScratch{}
	view.Scratch.SetSlot(poScratchKey{}, sc)
	return sc
}

func (sc *poScratch) reset(deg int) {
	sc.nbrs = grow2(sc.nbrs, deg)
	sc.treeNbrs = sc.treeNbrs[:0]
	sc.po.viewNbrs = sc.po.viewNbrs[:0]
}
