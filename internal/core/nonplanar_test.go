package core_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

func TestNonPlanarCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	graphs := []*graph.Graph{
		gen.Complete(5),
		gen.Complete(6),
		gen.CompleteBipartite(3, 3),
		gen.CompleteBipartite(3, 5),
		petersen(),
		gen.KuratowskiSubdivision(true, 4, rng),
		gen.KuratowskiSubdivision(false, 4, rng),
	}
	for i, g := range graphs {
		out, err := pls.Run(core.NonPlanarScheme{}, g)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if !out.AllAccept() {
			t.Fatalf("graph %d rejected: %v", i, out.Reasons)
		}
	}
}

func TestNonPlanarCompletenessPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 8; trial++ {
		g, err := gen.PlantSubdivision(15+rng.Intn(20), trial%2 == 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		g = gen.ScrambleIDs(g, rng)
		out, err := pls.Run(core.NonPlanarScheme{}, g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !out.AllAccept() {
			t.Fatalf("trial %d rejected: %v", trial, out.Reasons)
		}
	}
}

func TestNonPlanarProverRejectsPlanar(t *testing.T) {
	scheme := core.NonPlanarScheme{}
	if _, err := scheme.Prove(gen.Grid(4, 4)); err == nil {
		t.Fatal("prover certified a planar graph as non-planar")
	}
	disc := graph.NewWithNodes(3)
	if _, err := scheme.Prove(disc); err == nil {
		t.Fatal("prover accepted a disconnected graph")
	}
}

func TestNonPlanarSoundnessOnPlanarGraphs(t *testing.T) {
	// Forge a witness on a planar graph: steal honest certificates from a
	// non-planar donor that shares the ID space.
	scheme := core.NonPlanarScheme{}
	donor := gen.Complete(5)
	certs, err := scheme.Prove(donor)
	if err != nil {
		t.Fatal(err)
	}
	victim := gen.Grid(2, 3) // 6 nodes: IDs 0..5 cover donor IDs 0..4
	out := pls.RunWithCerts(scheme, victim, certs)
	if out.AllAccept() {
		t.Fatal("planar grid accepted replayed K5 witness")
	}
}

func TestNonPlanarSoundnessTamper(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g, err := gen.PlantSubdivision(18, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	scheme := core.NonPlanarScheme{}
	certs, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	// Find an interior node and break its chain.
	tampered := false
	for id, cert := range certs {
		dec, err := core.DecodeNonPlanarCert(cert.Reader())
		if err != nil {
			t.Fatal(err)
		}
		if dec.Role != core.RoleInterior {
			continue
		}
		dec.Pos += 5
		var w bits.Writer
		if err := dec.Encode(&w); err != nil {
			t.Fatal(err)
		}
		forged := make(map[graph.ID]bits.Certificate, len(certs))
		for k, v := range certs {
			forged[k] = v
		}
		forged[id] = bits.FromWriter(&w)
		if pls.RunWithCerts(scheme, g, forged).AllAccept() {
			t.Fatal("broken interior chain accepted")
		}
		tampered = true
		break
	}
	if !tampered {
		t.Skip("no interior vertex in witness (all paths direct)")
	}
}

func TestNonPlanarSoundnessMissingBranch(t *testing.T) {
	// Planar graph, adversary invents branch IDs of nodes that do not
	// exist: the spanning-tree root check must fail somewhere.
	g := gen.Grid(3, 3)
	scheme := core.NonPlanarScheme{}
	tcs, err := pls.BuildTreeCerts(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	certs := make(map[graph.ID]bits.Certificate, g.N())
	branchIDs := []graph.ID{100, 101, 102, 103, 104} // none exist
	for v := 0; v < g.N(); v++ {
		c := core.NonPlanarCert{
			Tree:      *tcs[g.IDOf(v)],
			K5:        true,
			BranchIDs: branchIDs,
			Role:      core.RoleNone,
		}
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			t.Fatal(err)
		}
		certs[g.IDOf(v)] = bits.FromWriter(&w)
	}
	if pls.RunWithCerts(scheme, g, certs).AllAccept() {
		t.Fatal("phantom branch IDs accepted")
	}
}

func TestNonPlanarCertSizeLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g, err := gen.PlantSubdivision(200, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pls.Run(core.NonPlanarScheme{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllAccept() {
		t.Fatal("rejected")
	}
	if out.MaxCertBit > 400 {
		t.Fatalf("non-planarity certificate %d bits at n≈200", out.MaxCertBit)
	}
}
