package core_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

func mustAccept(t *testing.T, g *graph.Graph, label string) int {
	t.Helper()
	out, err := pls.Run(core.PlanarScheme{}, g)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if !out.AllAccept() {
		for id, reason := range out.Reasons {
			t.Errorf("%s: node %d rejects: %s", label, id, reason)
		}
		t.Fatalf("%s: planarity certificates rejected", label)
	}
	return out.MaxCertBit
}

func TestPlanarCompletenessFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{"K1", graph.NewWithNodes(1)},
		{"K2", gen.Path(2)},
		{"path-9", gen.Path(9)},
		{"triangle", gen.Cycle(3)},
		{"cycle-10", gen.Cycle(10)},
		{"K4", gen.Complete(4)},
		{"star-8", gen.Star(8)},
		{"grid-4x5", gen.Grid(4, 5)},
		{"wheel-9", gen.Wheel(9)},
		{"caterpillar", gen.Caterpillar(6, 9)},
		{"K2,7", gen.CompleteBipartite(2, 7)},
		{"scrambled-grid", gen.ScrambleIDs(gen.Grid(5, 4), rng)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			mustAccept(t, tc.g, tc.name)
		})
	}
}

func TestPlanarCompletenessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(50)
		maxM := 3*n - 6
		m := n - 1
		if maxM > m {
			m += rng.Intn(maxM - m + 1)
		}
		g, err := gen.RandomPlanar(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		mustAccept(t, gen.ScrambleIDs(g, rng), "random planar")
	}
}

func TestPlanarCompletenessMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{3, 8, 25, 80, 300} {
		g := gen.StackedTriangulation(n, rng)
		mustAccept(t, g, "stacked triangulation")
	}
}

func TestPlanarCompletenessOuterplanarAndSP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		mustAccept(t, gen.RandomOuterplanar(5+rng.Intn(30), rng.Float64(), rng), "outerplanar")
		mustAccept(t, gen.SeriesParallel(1+rng.Intn(40), rng), "series-parallel")
		mustAccept(t, gen.RandomTree(2+rng.Intn(60), rng), "tree")
	}
}

func TestPlanarProverRejectsNonMembers(t *testing.T) {
	scheme := core.PlanarScheme{}
	bad := []*graph.Graph{
		gen.Complete(5),
		gen.CompleteBipartite(3, 3),
		graph.New(0),
	}
	disc := graph.NewWithNodes(4)
	disc.MustAddEdge(0, 1)
	bad = append(bad, disc)
	for i, g := range bad {
		if _, err := scheme.Prove(g); err == nil {
			t.Fatalf("graph %d: prover produced certificates outside the class", i)
		}
	}
}

func TestPlanarCertificateSizeLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// max certificate bits must grow like c*log2(n): verify the ratio
	// bits/log2(n) stays bounded as n grows 64x.
	var ratios []float64
	for _, n := range []int{64, 512, 4096} {
		g := gen.StackedTriangulation(n, rng)
		maxBits := mustAccept(t, g, "size probe")
		ratios = append(ratios, float64(maxBits)/math.Log2(float64(n)))
	}
	// The ratio should not blow up; allow slack for var-encoding overhead.
	if ratios[2] > 2.0*ratios[0] {
		t.Fatalf("certificate bits super-logarithmic: ratios %v", ratios)
	}
}

func TestPlanarSoundnessReplayOnNonPlanar(t *testing.T) {
	// Replay attack: take honest certificates from a planar graph, then add
	// the edge that makes it non-planar and keep all certificates. The new
	// edge has no certificate, so its endpoints must reject.
	rng := rand.New(rand.NewSource(6))
	g := gen.StackedTriangulation(14, rng)
	scheme := core.PlanarScheme{}
	certs, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	added := false
	for u := 0; u < h.N() && !added; u++ {
		for v := u + 1; v < h.N() && !added; v++ {
			if !h.HasEdge(u, v) {
				h.MustAddEdge(u, v)
				added = true
			}
		}
	}
	if !added {
		t.Fatal("no edge to add")
	}
	out := pls.RunWithCerts(scheme, h, certs)
	if out.AllAccept() {
		t.Fatal("non-planar graph accepted with replayed certificates")
	}
}

func TestPlanarSoundnessRandomCertsOnK5(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.Complete(5)
	scheme := core.PlanarScheme{}
	for trial := 0; trial < 300; trial++ {
		certs := make(map[graph.ID]bits.Certificate, g.N())
		for v := 0; v < g.N(); v++ {
			var w bits.Writer
			nbits := rng.Intn(200)
			for i := 0; i < nbits; i++ {
				w.WriteBit(rng.Intn(2) == 0)
			}
			certs[g.IDOf(v)] = bits.FromWriter(&w)
		}
		if pls.RunWithCerts(scheme, g, certs).AllAccept() {
			t.Fatalf("trial %d: random certificates accepted on K5", trial)
		}
	}
}

// stealCertsFrom runs the cross-instance replay attack: certificates from
// a DIFFERENT (planar) graph with the same IDs are presented on a
// non-planar graph.
func TestPlanarSoundnessCrossInstanceReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	scheme := core.PlanarScheme{}
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		donor, err := gen.RandomPlanar(n, 2*n-3, rng)
		if err != nil {
			t.Fatal(err)
		}
		certs, err := scheme.Prove(donor)
		if err != nil {
			t.Fatal(err)
		}
		// Victim: non-planar graph on the same vertex set / IDs.
		victim, err := gen.PlantSubdivision(n, trial%2 == 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		// PlantSubdivision adds nodes; give the extras empty certificates.
		out := pls.RunWithCerts(scheme, victim, certs)
		if out.AllAccept() {
			t.Fatalf("trial %d: cross-instance replay accepted", trial)
		}
	}
}

func TestPlanarSoundnessBitFlips(t *testing.T) {
	// Flip individual bits of honest certificates on a planar graph whose
	// planarity hinges on structure; the graph stays planar (so acceptance
	// is not *wrong*), but any accepted mutation must still encode a valid
	// proof — decoding failures or structural mismatches must reject, and
	// crucially flipping bits on a NON-planar instance (forged from a
	// planar donor sharing certificates) must never reach acceptance.
	rng := rand.New(rand.NewSource(9))
	g := gen.Complete(5)
	scheme := core.PlanarScheme{}
	donor := gen.Complete(4) // planar: K4 certificates as raw material
	baseCerts, err := scheme.Prove(donor)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		certs := make(map[graph.ID]bits.Certificate, g.N())
		for v := 0; v < g.N(); v++ {
			src, ok := baseCerts[graph.ID(v%4)]
			if !ok {
				t.Fatal("missing donor cert")
			}
			data := append([]byte(nil), src.Data...)
			if len(data) > 0 {
				for k := 0; k < 1+rng.Intn(3); k++ {
					pos := rng.Intn(src.Bits)
					data[pos/8] ^= 1 << (7 - uint(pos%8))
				}
			}
			certs[g.IDOf(v)] = bits.Certificate{Data: data, Bits: src.Bits}
		}
		if pls.RunWithCerts(scheme, g, certs).AllAccept() {
			t.Fatalf("trial %d: mutated donor certificates accepted on K5", trial)
		}
	}
}

func TestPlanarSoundnessNonPlanarFamilies(t *testing.T) {
	// For each non-planar instance, run a battery of structured forgeries:
	// honest-style certificates cannot exist, so we approximate the
	// adversary with (a) certificates from a planar spanning subgraph and
	// (b) targeted mutations thereof. All must be rejected.
	rng := rand.New(rand.NewSource(10))
	scheme := core.PlanarScheme{}
	instances := []*graph.Graph{
		gen.Complete(5),
		gen.Complete(6),
		gen.CompleteBipartite(3, 3),
		gen.CompleteBipartite(3, 4),
		petersen(),
	}
	for gi, g := range instances {
		// Planar spanning subgraph: delete edges until planar.
		sub := g.Clone()
		for _, e := range sub.Edges() {
			if plan, _ := scheme.Prove(sub); plan != nil {
				break
			}
			sub.RemoveEdge(e.U, e.V)
			if !sub.Connected() {
				sub.MustAddEdge(e.U, e.V)
			}
		}
		certs, err := scheme.Prove(sub)
		if err != nil {
			// Could not make it planar by greedy deletion; skip donor step.
			continue
		}
		out := pls.RunWithCerts(scheme, g, certs)
		if out.AllAccept() {
			t.Fatalf("instance %d: planar-subgraph certificates accepted on non-planar graph", gi)
		}
		_ = rng
	}
}

func petersen() *graph.Graph {
	g := graph.NewWithNodes(10)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, (i+1)%5)
		g.MustAddEdge(5+i, 5+(i+2)%5)
		g.MustAddEdge(i, 5+i)
	}
	return g
}

func TestPlanarTamperedFieldRejected(t *testing.T) {
	// Decode an honest certificate, tamper one semantic field, re-encode.
	rng := rand.New(rand.NewSource(11))
	g, err := gen.RandomPlanar(16, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	scheme := core.PlanarScheme{}
	certs, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	tampers := []struct {
		name string
		mod  func(*core.PlanarCert) bool // returns false if inapplicable
	}{
		{"size", func(c *core.PlanarCert) bool { c.Tree.Size += 2; return true }},
		{"dist", func(c *core.PlanarCert) bool { c.Tree.Dist++; return true }},
		{"rank shift", func(c *core.PlanarCert) bool {
			for _, e := range c.Edges {
				if e.IsTree {
					e.CMin++
					return true
				}
			}
			return false
		}},
		{"interval widen", func(c *core.PlanarCert) bool {
			for _, e := range c.Edges {
				if !e.IsTree && e.IU.A > 0 {
					e.IU.A--
					return true
				}
			}
			return false
		}},
		{"cotree rank", func(c *core.PlanarCert) bool {
			for _, e := range c.Edges {
				if !e.IsTree {
					e.RankU++
					return true
				}
			}
			return false
		}},
		{"drop edge cert", func(c *core.PlanarCert) bool {
			if len(c.Edges) == 0 {
				return false
			}
			c.Edges = c.Edges[1:]
			return true
		}},
		{"duplicate edge cert", func(c *core.PlanarCert) bool {
			if len(c.Edges) == 0 || len(c.Edges) >= core.MaxEdgeCerts {
				return false
			}
			c.Edges = append(c.Edges, c.Edges[0])
			return true
		}},
	}
	ids := g.IDs()
	for _, tc := range tampers {
		t.Run(tc.name, func(t *testing.T) {
			applied := false
			for attempt := 0; attempt < g.N() && !applied; attempt++ {
				victim := ids[rng.Intn(len(ids))]
				dec, err := core.DecodePlanarCert(certs[victim].Reader())
				if err != nil {
					t.Fatal(err)
				}
				if !tc.mod(dec) {
					continue
				}
				applied = true
				forged := make(map[graph.ID]bits.Certificate, len(certs))
				for id, c := range certs {
					forged[id] = c
				}
				var w bits.Writer
				if err := dec.Encode(&w); err != nil {
					t.Fatal(err)
				}
				forged[victim] = bits.FromWriter(&w)
				if pls.RunWithCerts(scheme, g, forged).AllAccept() {
					t.Fatalf("tamper %q accepted", tc.name)
				}
			}
			if !applied {
				t.Skipf("tamper %q not applicable to sampled nodes", tc.name)
			}
		})
	}
}

func TestPlanarVerifierOneRoundStats(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := gen.StackedTriangulation(40, rng)
	out, err := pls.Run(core.PlanarScheme{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Messages != 2*g.M() {
		t.Fatalf("messages = %d, want %d (one round)", out.Messages, 2*g.M())
	}
}
