package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddNodeAssignsSequentialIndices(t *testing.T) {
	g := New(4)
	for i, id := range []ID{10, 20, 30, 40} {
		idx, err := g.AddNode(id)
		if err != nil {
			t.Fatalf("AddNode(%d): %v", id, err)
		}
		if idx != i {
			t.Fatalf("AddNode(%d) index = %d, want %d", id, idx, i)
		}
	}
	if g.N() != 4 {
		t.Fatalf("N() = %d, want 4", g.N())
	}
}

func TestAddNodeDuplicateID(t *testing.T) {
	g := New(2)
	g.MustAddNode(7)
	if _, err := g.AddNode(7); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate AddNode error = %v, want ErrDuplicateID", err)
	}
}

func TestAddEdgeRejectsLoopsAndDuplicates(t *testing.T) {
	g := NewWithNodes(3)
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("AddEdge(1,1) accepted a self-loop")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Fatal("AddEdge(1,0) accepted a duplicate edge")
	}
	if err := g.AddEdge(0, 5); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("AddEdge out of range error = %v, want ErrNoSuchNode", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := NewWithNodes(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) = false, want true")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge {0,1} still present after removal")
	}
	if g.Degree(1) != 1 || g.Degree(0) != 0 {
		t.Fatalf("degrees after removal = (%d,%d), want (0,1)", g.Degree(0), g.Degree(1))
	}
	if g.RemoveEdge(0, 2) {
		t.Fatal("RemoveEdge of absent edge reported true")
	}
	if g.M() != 1 {
		t.Fatalf("M() = %d, want 1", g.M())
	}
}

func TestEdgesSortedAndNormalized(t *testing.T) {
	g := NewWithNodes(4)
	g.MustAddEdge(3, 1)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(1, 0)
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("Edges() len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Edges()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Fatalf("NewEdge(5,2) = %v, want {2,5}", e)
	}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Edge.Other broken")
	}
	if !e.Has(2) || !e.Has(5) || e.Has(3) {
		t.Fatal("Edge.Has broken")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := NewWithNodes(3)
	g.MustAddEdge(0, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone changed original")
	}
	if c.M() != 2 || g.M() != 1 {
		t.Fatalf("M mismatch: clone %d original %d", c.M(), g.M())
	}
}

func TestRelabelIDs(t *testing.T) {
	g := NewWithNodes(3)
	g.MustAddEdge(0, 2)
	r, err := g.RelabelIDs([]ID{100, 200, 300})
	if err != nil {
		t.Fatalf("RelabelIDs: %v", err)
	}
	if r.IDOf(2) != 300 {
		t.Fatalf("IDOf(2) = %d, want 300", r.IDOf(2))
	}
	if !r.HasEdge(0, 2) {
		t.Fatal("relabel dropped edge")
	}
	if _, err := g.RelabelIDs([]ID{1, 2}); err == nil {
		t.Fatal("RelabelIDs accepted wrong length")
	}
	if _, err := g.RelabelIDs([]ID{1, 1, 2}); err == nil {
		t.Fatal("RelabelIDs accepted duplicate ids")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := NewWithNodes(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	sub, m := g.InducedSubgraph([]int{1, 2, 3})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("induced subgraph = %v, want n=3 m=2", sub)
	}
	if !sub.HasEdge(m[1], m[2]) || !sub.HasEdge(m[2], m[3]) {
		t.Fatal("induced subgraph lost inner edges")
	}
	if sub.HasEdge(m[1], m[3]) {
		t.Fatal("induced subgraph invented an edge")
	}
}

func TestBFSPathGraph(t *testing.T) {
	g := NewWithNodes(5)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(i, i+1)
	}
	parent, dist := g.BFSFrom(0)
	for i := 0; i < 5; i++ {
		if dist[i] != i {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
	if parent[0] != 0 || parent[3] != 2 {
		t.Fatalf("parent = %v", parent)
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := NewWithNodes(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components() = %d comps, want 3 (sizes 3,2,1)", len(comps))
	}
	g.MustAddEdge(2, 3)
	g.MustAddEdge(4, 5)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
	if _, ok := g.SpanningTree(0); !ok {
		t.Fatal("SpanningTree failed on connected graph")
	}
}

func TestSpanningTreeDisconnected(t *testing.T) {
	g := NewWithNodes(3)
	g.MustAddEdge(0, 1)
	if _, ok := g.SpanningTree(0); ok {
		t.Fatal("SpanningTree succeeded on disconnected graph")
	}
}

func TestDegeneracyOrderOnTree(t *testing.T) {
	// A star K_{1,5}: degeneracy 1.
	g := NewWithNodes(6)
	for i := 1; i <= 5; i++ {
		g.MustAddEdge(0, i)
	}
	order, d := g.DegeneracyOrder()
	if d != 1 {
		t.Fatalf("star degeneracy = %d, want 1", d)
	}
	if len(order) != 6 {
		t.Fatalf("order covers %d nodes, want 6", len(order))
	}
}

func TestDegeneracyOrderOnClique(t *testing.T) {
	g := NewWithNodes(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.MustAddEdge(i, j)
		}
	}
	_, d := g.DegeneracyOrder()
	if d != 4 {
		t.Fatalf("K5 degeneracy = %d, want 4", d)
	}
}

// degeneracyProperty checks the defining property of the ordering: each
// node has at most `degeneracy` neighbors later in the order.
func degeneracyProperty(g *Graph) bool {
	order, d := g.DegeneracyOrder()
	pos := make([]int, g.N())
	for i, u := range order {
		pos[u] = i
	}
	for u := 0; u < g.N(); u++ {
		later := 0
		for _, v := range g.Neighbors(u) {
			if pos[v] > pos[u] {
				later++
			}
		}
		if later > d {
			return false
		}
	}
	return true
}

func TestDegeneracyOrderPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		g := NewWithNodes(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					g.MustAddEdge(i, j)
				}
			}
		}
		if !degeneracyProperty(g) {
			t.Fatalf("degeneracy property violated on trial %d: %v", trial, g)
		}
	}
}

func TestDSU(t *testing.T) {
	d := NewDSU(5)
	if !d.Union(0, 1) || !d.Union(2, 3) {
		t.Fatal("fresh unions reported no-op")
	}
	if d.Union(1, 0) {
		t.Fatal("repeated union reported a merge")
	}
	if !d.SameSet(0, 1) || d.SameSet(1, 2) {
		t.Fatal("SameSet wrong")
	}
	d.Union(1, 3)
	if !d.SameSet(0, 2) {
		t.Fatal("transitive union broken")
	}
	if d.SameSet(0, 4) {
		t.Fatal("singleton merged spuriously")
	}
}

func TestDSUQuickTransitivity(t *testing.T) {
	f := func(pairs []uint8) bool {
		d := NewDSU(16)
		naive := make([]int, 16)
		for i := range naive {
			naive[i] = i
		}
		for _, p := range pairs {
			a, b := int(p>>4), int(p&0x0f)
			d.Union(a, b)
			ra, rb := naive[a], naive[b]
			for i := range naive {
				if naive[i] == rb {
					naive[i] = ra
				}
			}
		}
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				if d.SameSet(i, j) != (naive[i] == naive[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIsTreeEdge(t *testing.T) {
	parent := []int{0, 0, 1}
	if !IsTreeEdge(parent, 0, 1) || !IsTreeEdge(parent, 2, 1) {
		t.Fatal("tree edges not recognised")
	}
	if IsTreeEdge(parent, 0, 2) {
		t.Fatal("non-tree edge recognised as tree edge")
	}
}

func TestStringer(t *testing.T) {
	g := NewWithNodes(2)
	g.MustAddEdge(0, 1)
	if got := g.String(); got != "graph(n=2, m=1)" {
		t.Fatalf("String() = %q", got)
	}
}
