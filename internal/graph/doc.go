// Package graph provides the undirected simple-graph representation
// used throughout the planarcert library.
//
// Graphs distinguish between node *indices* (dense, 0..n-1, used
// internally for array addressing) and node *identifiers* (arbitrary
// distinct values from a range polynomial in n, as in the model of
// Feuilloley et al., PODC 2020). Distributed verifiers only ever see
// identifiers; algorithms that run on the prover side may use indices.
//
// The representation is adjacency lists over indices with an
// identifier<->index bimap on the side. Mutations (AddNode, AddEdge,
// RemoveEdge) keep both directions of the bimap and the edge multiset
// consistent, which is what lets internal/dynamic mutate a live graph
// while its certificate state is repaired incrementally; Clone
// deep-copies so snapshots taken by sessions and the public Network
// wrapper never alias caller-visible state. Traversals (BFS, connected
// components, spanning trees, the degeneracy order behind the paper's
// 5-degeneracy certificate placement) live in traverse.go and operate
// on indices, alongside a small union-find used by the provers.
package graph
