package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ID is a node identifier. Identifiers are unique in a network and fit in
// O(log n) bits because they are drawn from a range polynomial in n.
type ID int64

// Edge is an unordered pair of node indices. Normalised so U < V.
type Edge struct {
	U, V int
}

// NewEdge returns the normalised edge {u, v}.
func NewEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e different from x.
func (e Edge) Other(x int) int {
	if e.U == x {
		return e.V
	}
	return e.U
}

// Has reports whether x is an endpoint of e.
func (e Edge) Has(x int) bool { return e.U == x || e.V == x }

// Graph is a mutable undirected simple graph. The zero value is an empty
// graph ready to use; nodes are added implicitly by AddNode/AddEdge.
type Graph struct {
	adj   [][]int       // adjacency lists by node index
	ids   []ID          // node index -> identifier
	byID  map[ID]int    // identifier -> node index
	edges map[Edge]bool // normalised edge set
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		adj:   make([][]int, 0, n),
		ids:   make([]ID, 0, n),
		byID:  make(map[ID]int, n),
		edges: make(map[Edge]bool, 3*n),
	}
}

// NewWithNodes returns a graph with nodes 0..n-1 whose identifiers equal
// their indices. Tests and generators can rescramble IDs afterwards.
func NewWithNodes(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(ID(i))
	}
	return g
}

// ErrDuplicateID is returned when adding a node whose identifier is taken.
var ErrDuplicateID = errors.New("graph: duplicate node identifier")

// ErrNoSuchNode is returned when a lookup references an unknown node.
var ErrNoSuchNode = errors.New("graph: no such node")

// AddNode adds a node with the given identifier and returns its index.
// Adding a duplicate identifier returns the existing index and an error.
func (g *Graph) AddNode(id ID) (int, error) {
	if g.byID == nil {
		g.byID = make(map[ID]int)
	}
	if idx, ok := g.byID[id]; ok {
		return idx, fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	idx := len(g.adj)
	g.adj = append(g.adj, nil)
	g.ids = append(g.ids, id)
	g.byID[id] = idx
	return idx, nil
}

// MustAddNode adds a node and panics on duplicate identifiers. It is meant
// for generators and tests where identifiers are constructed to be unique.
func (g *Graph) MustAddNode(id ID) int {
	idx, err := g.AddNode(id)
	if err != nil {
		panic(err)
	}
	return idx
}

// AddEdge inserts the undirected edge {u, v} given by node indices.
// Self-loops and duplicate edges are rejected with an error (the model
// works on simple graphs; the paper notes loops and multi-edges do not
// affect planarity).
func (g *Graph) AddEdge(u, v int) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at index %d", u)
	}
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("%w: edge {%d,%d}", ErrNoSuchNode, u, v)
	}
	e := NewEdge(u, v)
	if g.edges == nil {
		g.edges = make(map[Edge]bool)
	}
	if g.edges[e] {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.edges[e] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// MustAddEdge inserts an edge and panics on structural misuse.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether it was removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	e := NewEdge(u, v)
	if !g.edges[e] {
		return false
	}
	delete(g.edges, e)
	g.adj[u] = removeFirst(g.adj[u], v)
	g.adj[v] = removeFirst(g.adj[v], u)
	return true
}

func removeFirst(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// HasEdge reports whether the edge {u, v} exists (by node index).
func (g *Graph) HasEdge(u, v int) bool { return g.edges[NewEdge(u, v)] }

// Neighbors returns the adjacency list of node u. The returned slice is
// owned by the graph and must not be mutated by callers.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// IDOf returns the identifier of the node at index u.
func (g *Graph) IDOf(u int) ID { return g.ids[u] }

// IndexOf returns the index of the node with identifier id.
func (g *Graph) IndexOf(id ID) (int, bool) {
	idx, ok := g.byID[id]
	return idx, ok
}

// IDs returns a copy of the index -> identifier table.
func (g *Graph) IDs() []ID {
	out := make([]ID, len(g.ids))
	copy(out, g.ids)
	return out
}

// Edges returns all edges in deterministic (sorted) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	for _, id := range g.ids {
		c.MustAddNode(id)
	}
	for e := range g.edges {
		c.MustAddEdge(e.U, e.V)
	}
	return c
}

// SortedNeighbors returns a sorted copy of node u's adjacency list.
func (g *Graph) SortedNeighbors(u int) []int {
	out := make([]int, len(g.adj[u]))
	copy(out, g.adj[u])
	sort.Ints(out)
	return out
}

// RelabelIDs returns a copy of g whose node at index i carries ids[i].
// It fails if len(ids) != N or identifiers collide.
func (g *Graph) RelabelIDs(ids []ID) (*Graph, error) {
	if len(ids) != g.N() {
		return nil, fmt.Errorf("graph: relabel with %d ids for %d nodes", len(ids), g.N())
	}
	c := New(g.N())
	for _, id := range ids {
		if _, err := c.AddNode(id); err != nil {
			return nil, err
		}
	}
	for e := range g.edges {
		c.MustAddEdge(e.U, e.V)
	}
	return c, nil
}

// InducedSubgraph returns the subgraph induced by keep (indices into g),
// preserving identifiers. The second return value maps old index -> new.
func (g *Graph) InducedSubgraph(keep []int) (*Graph, map[int]int) {
	sub := New(len(keep))
	old2new := make(map[int]int, len(keep))
	for _, u := range keep {
		old2new[u] = sub.MustAddNode(g.ids[u])
	}
	for e := range g.edges {
		nu, ok1 := old2new[e.U]
		nv, ok2 := old2new[e.V]
		if ok1 && ok2 {
			sub.MustAddEdge(nu, nv)
		}
	}
	return sub, old2new
}

// String renders a compact description, useful in test failures.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M())
}
