package graph

// BFSFrom runs a breadth-first search from root and returns the parent
// index of every reached node (parent[root] = root, unreached = -1) and
// the hop distance (unreached = -1).
func (g *Graph) BFSFrom(root int) (parent, dist []int) {
	n := g.N()
	parent = make([]int, n)
	dist = make([]int, n)
	for i := range parent {
		parent[i] = -1
		dist[i] = -1
	}
	parent[root] = root
	dist[root] = 0
	queue := make([]int, 0, n)
	queue = append(queue, root)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if parent[v] == -1 {
				parent[v] = u
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return parent, dist
}

// Connected reports whether g is connected (the empty graph counts as
// connected).
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	parent, _ := g.BFSFrom(0)
	for _, p := range parent {
		if p == -1 {
			return false
		}
	}
	return true
}

// Components returns the connected components of g as slices of indices.
func (g *Graph) Components() [][]int {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]int
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// SpanningTree returns a BFS spanning tree of connected g rooted at root,
// as a parent slice (parent[root] = root). Returns false if disconnected.
func (g *Graph) SpanningTree(root int) ([]int, bool) {
	parent, _ := g.BFSFrom(root)
	for _, p := range parent {
		if p == -1 {
			return nil, false
		}
	}
	return parent, true
}

// IsTreeEdge reports whether {u,v} is a tree edge of the parent slice.
func IsTreeEdge(parent []int, u, v int) bool {
	return parent[u] == v || parent[v] == u
}

// DegeneracyOrder computes a degeneracy ordering by repeatedly peeling a
// minimum-degree node. It returns the ordering (a permutation of indices)
// and the degeneracy (the maximum degree seen at peel time). For planar
// graphs the degeneracy is at most 5, which is the property Theorem 1 uses
// to spread edge certificates.
func (g *Graph) DegeneracyOrder() (order []int, degeneracy int) {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	maxDeg := 0
	for i := 0; i < n; i++ {
		deg[i] = len(g.adj[i])
		if deg[i] > maxDeg {
			maxDeg = deg[i]
		}
	}
	// Bucket queue over degrees for O(n + m) peeling.
	buckets := make([][]int, maxDeg+1)
	for i := 0; i < n; i++ {
		buckets[deg[i]] = append(buckets[deg[i]], i)
	}
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		u := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[u] || deg[u] != cur {
			continue // stale bucket entry
		}
		removed[u] = true
		order = append(order, u)
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, v := range g.adj[u] {
			if !removed[v] {
				deg[v]--
				buckets[deg[v]] = append(buckets[deg[v]], v)
				if deg[v] < cur {
					cur = deg[v]
				}
			}
		}
	}
	return order, degeneracy
}

// DSU is a disjoint-set union (union-find) with path compression and
// union by rank.
type DSU struct {
	parent []int
	rank   []int
}

// NewDSU returns a DSU over n singleton elements.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int, n), rank: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

// Find returns the representative of x's set.
func (d *DSU) Find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether they were distinct.
func (d *DSU) Union(a, b int) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return true
}

// SameSet reports whether a and b belong to the same set.
func (d *DSU) SameSet(a, b int) bool { return d.Find(a) == d.Find(b) }
