// Package pls defines the proof-labeling-scheme framework: a Scheme is a
// prover/verifier pair in the sense of Korman, Kutten and Peleg. The
// prover, given the whole graph (it is an untrusted oracle with full
// knowledge), assigns each node a certificate; the verifier is a local
// algorithm run by every node on its 1-round view.
//
// The package also provides the two classic building blocks the paper
// recalls in Section 2 and reuses inside Theorem 1: the spanning-tree
// proof (root + parent + distance + subtree sizes) and the spanning-path
// proof (ranks).
package pls

import (
	"errors"
	"fmt"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
)

// ErrNotInClass is returned by honest provers when the input graph is not
// in the certified class (completeness only promises certificates for
// members).
var ErrNotInClass = errors.New("pls: graph not in the certified class")

// Scheme is a proof-labeling scheme for some graph class.
type Scheme interface {
	// Name identifies the scheme in experiment tables.
	Name() string
	// Prove computes honest certificates for a member of the class. For
	// non-members it returns ErrNotInClass (wrapped).
	Prove(g *graph.Graph) (map[graph.ID]bits.Certificate, error)
	// Verify is the local decision run at every node.
	Verify(view dist.View) error
}

// Run proves and verifies in one call (the honest end-to-end path).
func Run(s Scheme, g *graph.Graph) (*dist.Outcome, error) {
	certs, err := s.Prove(g)
	if err != nil {
		return nil, fmt.Errorf("%s prover: %w", s.Name(), err)
	}
	return dist.RunPLS(g, certs, s.Verify), nil
}

// RunWithCerts verifies an arbitrary (possibly adversarial) certificate
// assignment.
func RunWithCerts(s Scheme, g *graph.Graph, certs map[graph.ID]bits.Certificate) *dist.Outcome {
	return dist.RunPLS(g, certs, s.Verify)
}
