package pls

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
)

// PathCert is the warm-up certificate of Section 2: the network is a path
// iff the prover can rank the nodes 1..n so that ranks change by one along
// edges and the degrees match the path shape.
type PathCert struct {
	SelfID graph.ID
	N      uint64
	Rank   uint64 // in [1, N]
}

// Encode serialises the certificate.
func (c *PathCert) Encode(w *bits.Writer) error {
	for _, v := range []uint64{uint64(c.SelfID), c.N, c.Rank} {
		if err := w.WriteVar(v); err != nil {
			return err
		}
	}
	return nil
}

// DecodePathCert reads a PathCert.
func DecodePathCert(r *bits.Reader) (*PathCert, error) {
	vals := make([]uint64, 3)
	for i := range vals {
		v, err := r.ReadVar()
		if err != nil {
			return nil, fmt.Errorf("path cert field %d: %w", i, err)
		}
		vals[i] = v
	}
	return &PathCert{SelfID: graph.ID(vals[0]), N: vals[1], Rank: vals[2]}, nil
}

// PathScheme is the proof-labeling scheme for the class of path graphs
// (the paper's introductory example of a PLS).
type PathScheme struct{}

// Name implements Scheme.
func (PathScheme) Name() string { return "path" }

// Prove implements Scheme.
func (PathScheme) Prove(g *graph.Graph) (map[graph.ID]bits.Certificate, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrNotInClass)
	}
	if g.M() != n-1 || !g.Connected() {
		return nil, fmt.Errorf("%w: not a path (m=%d)", ErrNotInClass, g.M())
	}
	// Find an endpoint and walk.
	start := -1
	for v := 0; v < n; v++ {
		switch g.Degree(v) {
		case 0:
			if n != 1 {
				return nil, fmt.Errorf("%w: isolated vertex", ErrNotInClass)
			}
			start = v
		case 1:
			if start == -1 {
				start = v
			}
		case 2:
			// interior
		default:
			return nil, fmt.Errorf("%w: degree %d vertex", ErrNotInClass, g.Degree(v))
		}
	}
	if start == -1 {
		return nil, fmt.Errorf("%w: no endpoint found", ErrNotInClass)
	}
	certs := make(map[graph.ID]bits.Certificate, n)
	prev, cur := -1, start
	for rank := 1; rank <= n; rank++ {
		c := PathCert{SelfID: g.IDOf(cur), N: uint64(n), Rank: uint64(rank)}
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			return nil, err
		}
		certs[g.IDOf(cur)] = bits.FromWriter(&w)
		next := -1
		for _, nb := range g.Neighbors(cur) {
			if nb != prev {
				next = nb
				break
			}
		}
		if next == -1 && rank != n {
			return nil, fmt.Errorf("%w: walk ended early at rank %d", ErrNotInClass, rank)
		}
		prev, cur = cur, next
	}
	return certs, nil
}

// Verify implements Scheme.
func (PathScheme) Verify(view dist.View) error {
	self, err := DecodePathCert(view.Cert.Reader())
	if err != nil {
		return err
	}
	if self.SelfID != view.ID {
		return fmt.Errorf("path: certificate claims ID %d, node is %d", self.SelfID, view.ID)
	}
	if self.Rank < 1 || self.Rank > self.N {
		return fmt.Errorf("path: rank %d outside [1,%d]", self.Rank, self.N)
	}
	wantDeg := 2
	if self.Rank == 1 || self.Rank == self.N {
		wantDeg = 1
	}
	if self.N == 1 {
		wantDeg = 0
	}
	if view.Degree != wantDeg {
		return fmt.Errorf("path: rank %d has degree %d, want %d", self.Rank, view.Degree, wantDeg)
	}
	seen := map[uint64]bool{}
	for _, nb := range view.Neighbors {
		nc, err := DecodePathCert(nb.Cert.Reader())
		if err != nil {
			return err
		}
		if nc.N != self.N {
			return fmt.Errorf("path: neighbor disagrees on n")
		}
		if nc.Rank != self.Rank-1 && nc.Rank != self.Rank+1 {
			return fmt.Errorf("path: neighbor rank %d next to rank %d", nc.Rank, self.Rank)
		}
		if seen[nc.Rank] {
			return fmt.Errorf("path: two neighbors with rank %d", nc.Rank)
		}
		seen[nc.Rank] = true
	}
	return nil
}
