package pls_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

func TestSpanningTreeCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	graphs := []*graph.Graph{
		gen.Path(10),
		gen.Cycle(8),
		gen.Grid(4, 6),
		gen.RandomTree(25, rng),
		gen.Complete(6),
		gen.ScrambleIDs(gen.Grid(5, 5), rng),
	}
	for i, g := range graphs {
		out, err := pls.Run(pls.SpanningTreeScheme{}, g)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if !out.AllAccept() {
			t.Fatalf("graph %d: rejecting nodes %v (%v)", i, out.Rejecting, out.Reasons)
		}
		if out.MaxCertBit == 0 {
			t.Fatalf("graph %d: zero-size certificates", i)
		}
	}
}

func TestSpanningTreeSoundnessTamper(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.ScrambleIDs(gen.Grid(5, 5), rng)
	scheme := pls.SpanningTreeScheme{}
	certs, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}

	tamper := []struct {
		name string
		mod  func(*pls.TreeCert)
	}{
		{"wrong n", func(c *pls.TreeCert) { c.N += 3 }},
		{"wrong dist", func(c *pls.TreeCert) { c.Dist += 1 }},
		{"wrong size", func(c *pls.TreeCert) { c.Size += 1 }},
		{"steal root id", func(c *pls.TreeCert) { c.RootID = c.SelfID; c.Dist = 0; c.Parent = c.SelfID }},
		{"forged self id", func(c *pls.TreeCert) { c.SelfID += 1 }},
	}
	ids := g.IDs()
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			forged := make(map[graph.ID]bits.Certificate, len(certs))
			for id, c := range certs {
				forged[id] = c
			}
			victim := ids[rng.Intn(len(ids))]
			dec, err := pls.DecodeTreeCert(forged[victim].Reader())
			if err != nil {
				t.Fatal(err)
			}
			// Skip tampering that happens to be a no-op for the root node.
			if dec.Dist == 0 && tc.name == "steal root id" {
				victim = ids[(rng.Intn(len(ids)-1)+1)%len(ids)]
				dec, err = pls.DecodeTreeCert(forged[victim].Reader())
				if err != nil {
					t.Fatal(err)
				}
				if dec.Dist == 0 {
					t.Skip("victim is root")
				}
			}
			tc.mod(dec)
			var w bits.Writer
			if err := dec.Encode(&w); err != nil {
				t.Fatal(err)
			}
			forged[victim] = bits.FromWriter(&w)
			out := pls.RunWithCerts(scheme, g, forged)
			if out.AllAccept() {
				t.Fatalf("tampered certificates accepted (%s at node %d)", tc.name, victim)
			}
		})
	}
}

func TestSpanningTreeDisconnectedProverFails(t *testing.T) {
	g := graph.NewWithNodes(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	if _, err := (pls.SpanningTreeScheme{}).Prove(g); err == nil {
		t.Fatal("prover produced certificates for a disconnected graph")
	}
}

func TestPathCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 10, 64} {
		g := gen.ScrambleIDs(gen.Path(n), rng)
		out, err := pls.Run(pls.PathScheme{}, g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !out.AllAccept() {
			t.Fatalf("n=%d: rejected: %v", n, out.Reasons)
		}
	}
}

func TestPathProverRejectsNonPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bad := []*graph.Graph{
		gen.Cycle(6),
		gen.Star(5),
		gen.Grid(2, 3),
		gen.RandomTree(10, rng), // likely branched; retry if a path
	}
	for i, g := range bad {
		if g.M() == g.N()-1 {
			isPath := true
			for v := 0; v < g.N(); v++ {
				if g.Degree(v) > 2 {
					isPath = false
				}
			}
			if isPath {
				continue
			}
		}
		if _, err := (pls.PathScheme{}).Prove(g); err == nil {
			t.Fatalf("graph %d: prover accepted a non-path", i)
		}
	}
}

func TestPathSoundnessOnCycle(t *testing.T) {
	// The classic attack: rank a cycle 1..n. The wrap-around edge exposes
	// ranks (n, 1) as adjacent, which must be rejected.
	g := gen.Cycle(8)
	certs := make(map[graph.ID]bits.Certificate, 8)
	for v := 0; v < 8; v++ {
		c := pls.PathCert{SelfID: g.IDOf(v), N: 8, Rank: uint64(v + 1)}
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			t.Fatal(err)
		}
		certs[g.IDOf(v)] = bits.FromWriter(&w)
	}
	out := pls.RunWithCerts(pls.PathScheme{}, g, certs)
	if out.AllAccept() {
		t.Fatal("cycle accepted as path")
	}
}

func TestPathSoundnessTwoShortPathsClaim(t *testing.T) {
	// A path of 6 where the prover claims n=3 twice (two half-paths):
	// rank-3 and rank-1 meet in the middle and must reject.
	g := gen.Path(6)
	certs := make(map[graph.ID]bits.Certificate, 6)
	for v := 0; v < 6; v++ {
		rank := uint64(v%3 + 1)
		c := pls.PathCert{SelfID: g.IDOf(v), N: 3, Rank: rank}
		var w bits.Writer
		if err := c.Encode(&w); err != nil {
			t.Fatal(err)
		}
		certs[g.IDOf(v)] = bits.FromWriter(&w)
	}
	out := pls.RunWithCerts(pls.PathScheme{}, g, certs)
	if out.AllAccept() {
		t.Fatal("two glued paths accepted")
	}
}

func TestTreeCertBitsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prev := 0
	for _, n := range []int{16, 256, 4096} {
		g := gen.ScrambleIDs(gen.RandomTree(n, rng), rng)
		out, err := pls.Run(pls.SpanningTreeScheme{}, g)
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllAccept() {
			t.Fatalf("n=%d rejected", n)
		}
		// O(log n): quadrupling n should add only O(1) multiples of log.
		if prev > 0 && out.MaxCertBit > 2*prev {
			t.Fatalf("certificate growth too fast: %d -> %d bits", prev, out.MaxCertBit)
		}
		prev = out.MaxCertBit
	}
}

func TestEmptyCertificatesRejected(t *testing.T) {
	g := gen.Path(4)
	out := pls.RunWithCerts(pls.PathScheme{}, g, nil)
	if out.AllAccept() {
		t.Fatal("empty certificates accepted")
	}
	out2 := pls.RunWithCerts(pls.SpanningTreeScheme{}, g, nil)
	if out2.AllAccept() {
		t.Fatal("empty certificates accepted by tree scheme")
	}
}

func TestOutcomeStats(t *testing.T) {
	g := gen.Path(5)
	out, err := pls.Run(pls.PathScheme{}, g)
	if err != nil {
		t.Fatal(err)
	}
	if out.Messages != 2*g.M() {
		t.Fatalf("messages = %d, want %d", out.Messages, 2*g.M())
	}
	if out.MaxMsgBit != out.MaxCertBit {
		t.Fatalf("max message bits %d != max cert bits %d", out.MaxMsgBit, out.MaxCertBit)
	}
	if out.AvgCertBits() <= 0 {
		t.Fatal("avg cert bits not positive")
	}
}
