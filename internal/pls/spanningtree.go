package pls

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
)

// TreeCert is the classic spanning-tree certificate (Korman–Kutten–Peleg;
// implicitly in the self-stabilization literature): each node carries its
// own identifier, the root identifier, the number of nodes, its hop
// distance to the root in the tree, its parent's identifier, and its
// subtree size. All fields fit in O(log n) bits.
type TreeCert struct {
	SelfID graph.ID
	RootID graph.ID
	N      uint64
	Dist   uint64
	Parent graph.ID // equals SelfID at the root
	Size   uint64   // number of nodes in this node's subtree
}

// Encode serialises the certificate.
func (c *TreeCert) Encode(w *bits.Writer) error {
	for _, v := range []uint64{uint64(c.SelfID), uint64(c.RootID), c.N, c.Dist, uint64(c.Parent), c.Size} {
		if err := w.WriteVar(v); err != nil {
			return err
		}
	}
	return nil
}

// DecodeTreeCert reads a TreeCert from r.
func DecodeTreeCert(r *bits.Reader) (*TreeCert, error) {
	c := new(TreeCert)
	if err := DecodeTreeCertInto(r, c); err != nil {
		return nil, err
	}
	return c, nil
}

// DecodeTreeCertInto reads a TreeCert from r into c without allocating,
// for verifiers decoding into reusable scratch.
func DecodeTreeCertInto(r *bits.Reader, c *TreeCert) error {
	var vals [6]uint64
	for i := range vals {
		v, err := r.ReadVar()
		if err != nil {
			return fmt.Errorf("tree cert field %d: %w", i, err)
		}
		vals[i] = v
	}
	*c = TreeCert{
		SelfID: graph.ID(vals[0]),
		RootID: graph.ID(vals[1]),
		N:      vals[2],
		Dist:   vals[3],
		Parent: graph.ID(vals[4]),
		Size:   vals[5],
	}
	return nil
}

// BuildTreeCerts computes honest spanning-tree certificates for the BFS
// tree of g rooted at the node with index rootIdx.
func BuildTreeCerts(g *graph.Graph, rootIdx int) (map[graph.ID]*TreeCert, error) {
	parent, distArr := g.BFSFrom(rootIdx)
	n := g.N()
	size := make([]uint64, n)
	// Accumulate subtree sizes bottom-up (order nodes by decreasing dist).
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if parent[v] == -1 {
			return nil, fmt.Errorf("pls: graph is disconnected, no spanning tree from %d", rootIdx)
		}
		order = append(order, v)
	}
	for i := range size {
		size[i] = 1
	}
	// Sort by depth descending.
	byDepth := make([][]int, 0)
	maxD := 0
	for _, d := range distArr {
		if d > maxD {
			maxD = d
		}
	}
	byDepth = make([][]int, maxD+1)
	for _, v := range order {
		byDepth[distArr[v]] = append(byDepth[distArr[v]], v)
	}
	for d := maxD; d > 0; d-- {
		for _, v := range byDepth[d] {
			size[parent[v]] += size[v]
		}
	}
	certs := make(map[graph.ID]*TreeCert, n)
	for v := 0; v < n; v++ {
		certs[g.IDOf(v)] = &TreeCert{
			SelfID: g.IDOf(v),
			RootID: g.IDOf(rootIdx),
			N:      uint64(n),
			Dist:   uint64(distArr[v]),
			Parent: g.IDOf(parent[v]),
			Size:   size[v],
		}
	}
	return certs, nil
}

// VerifyTreeCert runs the local spanning-tree checks for a node whose
// decoded certificate is self and whose neighbors' decoded certificates
// are nbrs. It certifies: a unique root, consistent n, parent pointers
// decreasing the distance, and subtree sizes summing to n at the root —
// together these prove the parent pointers form a spanning tree of the
// (connected) network with exactly n = |V| nodes.
func VerifyTreeCert(self *TreeCert, actualID graph.ID, degree int, nbrs []*TreeCert) error {
	if err := VerifyTreeCertStructure(self, actualID, degree, nbrs); err != nil {
		return err
	}
	// Subtree sizes: children are the neighbors pointing to this node one
	// level deeper.
	var childSum uint64
	for _, nb := range nbrs {
		if nb.Parent == self.SelfID && nb.Dist == self.Dist+1 {
			childSum += nb.Size
		}
	}
	if self.Size != childSum+1 {
		return fmt.Errorf("tree: subtree size %d, children sum %d", self.Size, childSum)
	}
	if self.Dist == 0 && self.Size != self.N {
		return fmt.Errorf("tree: root subtree size %d != n = %d", self.Size, self.N)
	}
	return nil
}

// VerifyTreeCertStructure runs the spanning-tree checks WITHOUT the
// subtree-size counters. Interactive protocols (the dMAM baseline)
// replace the counters with randomized fingerprints.
func VerifyTreeCertStructure(self *TreeCert, actualID graph.ID, degree int, nbrs []*TreeCert) error {
	if self.SelfID != actualID {
		return fmt.Errorf("tree: certificate claims ID %d, node is %d", self.SelfID, actualID)
	}
	if self.N == 0 {
		return fmt.Errorf("tree: claimed n = 0")
	}
	for _, nb := range nbrs {
		if nb.RootID != self.RootID {
			return fmt.Errorf("tree: neighbor disagrees on root (%d vs %d)", nb.RootID, self.RootID)
		}
		if nb.N != self.N {
			return fmt.Errorf("tree: neighbor disagrees on n (%d vs %d)", nb.N, self.N)
		}
	}
	if self.Dist == 0 {
		if self.SelfID != self.RootID {
			return fmt.Errorf("tree: distance 0 at non-root %d", self.SelfID)
		}
		if self.Parent != self.SelfID {
			return fmt.Errorf("tree: root parent pointer must be self")
		}
	} else {
		found := false
		for _, nb := range nbrs {
			if nb.SelfID == self.Parent && nb.Dist == self.Dist-1 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("tree: no neighbor is parent %d at distance %d", self.Parent, self.Dist-1)
		}
		if self.SelfID == self.RootID {
			return fmt.Errorf("tree: non-root node carries the root ID")
		}
	}
	return nil
}

// SpanningTreeScheme certifies the whole class of connected graphs (it
// always accepts with honest certificates) — its value is as a reusable
// sub-proof and as the warm-up scheme of Section 2.
type SpanningTreeScheme struct{}

// Name implements Scheme.
func (SpanningTreeScheme) Name() string { return "spanning-tree" }

// Prove implements Scheme.
func (SpanningTreeScheme) Prove(g *graph.Graph) (map[graph.ID]bits.Certificate, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrNotInClass)
	}
	tcs, err := BuildTreeCerts(g, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotInClass, err)
	}
	out := make(map[graph.ID]bits.Certificate, len(tcs))
	for id, tc := range tcs {
		var w bits.Writer
		if err := tc.Encode(&w); err != nil {
			return nil, err
		}
		out[id] = bits.FromWriter(&w)
	}
	return out, nil
}

// Verify implements Scheme.
func (SpanningTreeScheme) Verify(view dist.View) error {
	self, err := DecodeTreeCert(view.Cert.Reader())
	if err != nil {
		return err
	}
	nbrs := make([]*TreeCert, 0, len(view.Neighbors))
	for _, nb := range view.Neighbors {
		tc, err := DecodeTreeCert(nb.Cert.Reader())
		if err != nil {
			return err
		}
		nbrs = append(nbrs, tc)
	}
	return VerifyTreeCert(self, view.ID, view.Degree, nbrs)
}
