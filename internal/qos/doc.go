// Package qos implements weighted fair-share scheduling of bounded
// resource slots across quality-of-service classes.
//
// The planarcertd service multiplexes many independent certification
// sessions over two scarce pools: the extra verification workers a
// sweep may fan out to (dist.Budget), and the batch-execution slots
// that admit update batches into the prover at all. Both pools used to
// be FIFO counting semaphores, which let one session's re-prove storm
// monopolise the pool and starve every cheap repair queued behind it
// (BENCH_server.json: mean batch 5ms, p95 553ms at 64 sessions).
//
// A Scheduler replaces the semaphore with virtual-time (stride) fair
// queueing. Every consumer holds a Claimant carrying a QoS Class —
// interactive, batch, or background — whose weight sets its share.
// Waiters queue per claimant; when a slot frees, it is handed directly
// to the waiting claimant with the smallest virtual time, and each
// grant advances that claimant's virtual time by scale/weight. A
// backlogged claimant's virtual time therefore grows with the service
// it receives, so any claimant left waiting eventually holds the
// minimum and must be served next: no starvation, and long-run grant
// shares converge to the weight ratios. Handouts are preemption-free —
// a granted slot is held until released — so slow holders are bounded
// by slot multiplicity, not interrupted.
//
// The scheduler is event-driven: apart from the optional timeout in
// AcquireWait it never reads a clock, which makes scripted scheduling
// traces fully deterministic (see sched_test.go).
package qos
