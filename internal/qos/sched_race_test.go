package qos

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSchedulerRaceHammer batters one scheduler from many goroutines
// across all classes, with claimant churn mid-flight (fresh claimants
// minted while their predecessors still hold slots — the session
// eviction pattern). Run under -race; the invariants checked are that
// concurrent holds never exceed the slot count and that no slot is
// lost once the dust settles.
func TestSchedulerRaceHammer(t *testing.T) {
	const (
		slots      = 3
		goroutines = 24
		iters      = 400
	)
	s := NewScheduler(slots, nil)
	var (
		held    atomic.Int64
		maxHeld atomic.Int64
		wg      sync.WaitGroup
	)
	stop := make(chan struct{})
	time.AfterFunc(2*time.Second, func() { close(stop) })
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := Class(g % numClasses)
			c := s.Claimant("hammer", class)
			for i := 0; i < iters; i++ {
				// Churn: replace the claimant mid-run, abandoning the
				// old identity the way session eviction does.
				if i%37 == 36 {
					c = s.Claimant("hammer-churned", class)
				}
				var ok bool
				if i%3 == 0 {
					ok = c.TryAcquire()
				} else {
					ok = c.AcquireWait(50*time.Millisecond, stop)
				}
				if !ok {
					continue
				}
				h := held.Add(1)
				for {
					m := maxHeld.Load()
					if h <= m || maxHeld.CompareAndSwap(m, h) {
						break
					}
				}
				if h > slots {
					t.Errorf("held %d slots concurrently, scheduler has %d", h, slots)
				}
				held.Add(-1)
				c.Release()
			}
		}(g)
	}
	wg.Wait()
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse = %d after hammer, want 0 (slot leak)", got)
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth = %d after hammer, want 0", got)
	}
	for i := 0; i < slots; i++ {
		if !s.Claimant("post", Batch).TryAcquire() {
			t.Fatalf("only %d of %d slots acquirable after hammer", i, slots)
		}
	}
	if maxHeld.Load() == 0 {
		t.Fatal("hammer never held a slot")
	}
}
