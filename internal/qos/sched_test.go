package qos

import (
	"testing"
	"time"
)

// sim drives a Scheduler through a scripted trace with no goroutines
// and no clock: waiters are enqueued directly, and each grant() call
// simulates one slot-holder finishing. Which waiter the freed slot goes
// to is the scheduler's decision under test.
type sim struct {
	t           *testing.T
	s           *Scheduler
	outstanding []*waiter
}

func newSim(t *testing.T, slots int, weights map[Class]int) *sim {
	t.Helper()
	return &sim{t: t, s: NewScheduler(slots, weights)}
}

// hold seizes a free slot for c (the trace's initial holders).
func (m *sim) hold(c *Claimant) {
	m.t.Helper()
	if !c.TryAcquire() {
		m.t.Fatalf("claimant %s: TryAcquire failed while seeding holders", c.Name())
	}
}

// enqueue adds a scripted waiter for c to the fair queue.
func (m *sim) enqueue(c *Claimant) *waiter {
	m.s.mu.Lock()
	w := c.enqueueLocked()
	m.s.mu.Unlock()
	m.outstanding = append(m.outstanding, w)
	return w
}

// grant simulates one holder releasing its slot and reports which
// claimant's waiter received it. The served claimant becomes the
// holder whose release the next grant() simulates (closed loop).
func (m *sim) grant() *Claimant {
	m.t.Helper()
	m.s.mu.Lock()
	m.s.releaseLocked()
	m.s.mu.Unlock()
	for i, w := range m.outstanding {
		select {
		case <-w.ch:
			m.outstanding = append(m.outstanding[:i], m.outstanding[i+1:]...)
			return w.c
		default:
		}
	}
	m.t.Fatalf("release granted no outstanding waiter")
	return nil
}

// TestWeightedShares scripts a fully contended scheduler (every
// claimant keeps a persistent backlog) and checks that long-run grant
// shares match the weight ratios within ±10%.
func TestWeightedShares(t *testing.T) {
	cases := []struct {
		name    string
		weights map[Class]int
		// claimants lists the class mix; one claimant per entry.
		claimants []Class
	}{
		{"default-one-per-class", nil, []Class{Interactive, Batch, Background}},
		{"flat-weights", map[Class]int{Interactive: 1, Batch: 1, Background: 1},
			[]Class{Interactive, Batch, Background}},
		{"8-2-1", map[Class]int{Interactive: 8, Batch: 2, Background: 1},
			[]Class{Interactive, Batch, Background}},
		{"two-background-storms", nil,
			[]Class{Interactive, Background, Background}},
		{"mixed-fleet", map[Class]int{Interactive: 10, Batch: 5, Background: 1},
			[]Class{Interactive, Interactive, Batch, Background, Background}},
	}
	const rounds = 4000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newSim(t, 1, tc.weights)
			cs := make([]*Claimant, len(tc.claimants))
			var sumW float64
			for i, class := range tc.claimants {
				cs[i] = m.s.Claimant("c", class)
				sumW += float64(m.s.Weight(class))
			}
			// Seed: claimant 0 holds the only slot; everyone (including
			// claimant 0) has a queued waiter from the start.
			m.hold(cs[0])
			for _, c := range cs {
				m.enqueue(c)
			}
			counts := make(map[*Claimant]int, len(cs))
			for i := 0; i < rounds; i++ {
				c := m.grant()
				counts[c]++
				m.enqueue(c) // persistent backlog
			}
			for i, c := range cs {
				want := float64(m.s.Weight(c.Class())) / sumW
				got := float64(counts[c]) / rounds
				if diff := got - want; diff > 0.1*want+2.0/rounds || -diff > 0.1*want+2.0/rounds {
					t.Errorf("claimant %d (%s, weight %d): share %.4f, want %.4f +/- 10%%",
						i, c.Class(), m.s.Weight(c.Class()), got, want)
				}
			}
		})
	}
}

// TestZeroStarvation checks the stride bound directly: a backlogged
// claimant is never bypassed more than sum_over_competitors(stride_c /
// stride_d + 1) consecutive grants, even for the minimum-weight class
// under default weights.
func TestZeroStarvation(t *testing.T) {
	m := newSim(t, 1, nil)
	cs := []*Claimant{
		m.s.Claimant("live", Interactive),
		m.s.Claimant("bulk", Batch),
		m.s.Claimant("storm", Background),
	}
	m.hold(cs[0])
	for _, c := range cs {
		m.enqueue(c)
	}
	// Theoretical gap bound for claimant c: between two of its grants,
	// each competitor d fits at most stride(c)/stride(d)+1 grants.
	bound := func(c *Claimant) int {
		own := vtScale / uint64(m.s.Weight(c.Class()))
		gap := 0
		for _, d := range cs {
			if d == c {
				continue
			}
			other := vtScale / uint64(m.s.Weight(d.Class()))
			gap += int(own/other) + 1
		}
		return gap
	}
	const rounds = 3000
	last := map[*Claimant]int{}
	maxGap := map[*Claimant]int{}
	for i := 1; i <= rounds; i++ {
		c := m.grant()
		if g := i - last[c]; g > maxGap[c] {
			maxGap[c] = g
		}
		last[c] = i
		m.enqueue(c)
	}
	for _, c := range cs {
		if maxGap[c] == 0 {
			t.Fatalf("claimant %s (%s) was never served in %d grants", c.Name(), c.Class(), rounds)
		}
		if b := bound(c); maxGap[c] > b+1 {
			t.Errorf("claimant %s (%s): worst inter-grant gap %d exceeds stride bound %d",
				c.Name(), c.Class(), maxGap[c], b+1)
		}
	}
}

// TestInteractiveLatencyUnderStorm is the QoS pathology in miniature:
// one background claimant keeps the slot saturated with a huge backlog,
// and an interactive waiter that shows up mid-storm must be served on
// the very next release instead of queueing behind the storm.
func TestInteractiveLatencyUnderStorm(t *testing.T) {
	m := newSim(t, 1, nil)
	storm := m.s.Claimant("storm", Background)
	live := m.s.Claimant("live", Interactive)
	m.hold(storm)
	for i := 0; i < 50; i++ {
		m.enqueue(storm)
	}
	for burn := 0; burn < 10; burn++ {
		if c := m.grant(); c != storm {
			t.Fatalf("grant %d: served %s, want storm", burn, c.Name())
		}
		m.enqueue(storm)
	}
	m.enqueue(live)
	if c := m.grant(); c != live {
		t.Fatalf("interactive waiter bypassed by %s on the first release after arrival", c.Name())
	}
}

// TestFIFOWithinClaimant checks that a single claimant's waiters are
// served strictly in arrival order.
func TestFIFOWithinClaimant(t *testing.T) {
	m := newSim(t, 1, nil)
	c := m.s.Claimant("c", Batch)
	m.hold(c)
	ws := make([]*waiter, 5)
	for i := range ws {
		ws[i] = m.enqueue(c)
	}
	for i := range ws {
		m.s.mu.Lock()
		m.s.releaseLocked()
		m.s.mu.Unlock()
		select {
		case <-ws[i].ch:
		default:
			t.Fatalf("grant %d went out of arrival order", i)
		}
	}
}

// TestNoBarging checks that a momentarily free slot cannot be stolen
// past the queue by TryAcquire.
func TestNoBarging(t *testing.T) {
	m := newSim(t, 2, nil)
	a := m.s.Claimant("a", Interactive)
	b := m.s.Claimant("b", Background)
	m.hold(a)
	// One slot is still free, but b has a queued waiter: TryAcquire
	// must refuse rather than barge (this state only arises transiently
	// in live runs — during a cancel/grant race — but the invariant is
	// what keeps handoff fair).
	w := m.enqueue(b)
	if a.TryAcquire() {
		t.Fatal("TryAcquire barged past a queued waiter")
	}
	m.s.mu.Lock()
	m.s.releaseLocked()
	m.s.mu.Unlock()
	select {
	case <-w.ch:
	default:
		t.Fatal("queued waiter not served by release")
	}
	if !a.TryAcquire() {
		t.Fatal("TryAcquire failed with a free slot and an empty queue")
	}
}

// TestCancelRemovesWaiter checks that an abandoned wait leaves no
// queue residue and no lost slots.
func TestCancelRemovesWaiter(t *testing.T) {
	m := newSim(t, 1, nil)
	c := m.s.Claimant("c", Batch)
	m.hold(c)
	w := m.enqueue(c)
	m.s.cancel(w)
	if d := m.s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d after cancel, want 0", d)
	}
	c.Release()
	if got := m.s.InUse(); got != 0 {
		t.Fatalf("InUse %d after release, want 0", got)
	}
	if !c.TryAcquire() {
		t.Fatal("slot lost after cancel+release")
	}
}

// TestCancelAfterGrantReturnsSlot exercises the race where a waiter is
// granted a slot concurrently with its timeout: the cancel path must
// hand the slot onward (or free it) rather than leak it.
func TestCancelAfterGrantReturnsSlot(t *testing.T) {
	m := newSim(t, 1, nil)
	a := m.s.Claimant("a", Batch)
	b := m.s.Claimant("b", Interactive)
	m.hold(a)
	wa := m.enqueue(a)
	wb := m.enqueue(b)
	// Release grants b (interactive wins); b then "times out" having
	// already been granted.
	m.s.mu.Lock()
	m.s.releaseLocked()
	m.s.mu.Unlock()
	if !wb.granted {
		t.Fatal("expected the interactive waiter to win the release")
	}
	m.s.cancel(wb)
	// The slot b abandoned must flow to a's waiter, not vanish.
	select {
	case <-wa.ch:
	default:
		t.Fatal("slot abandoned by a granted-then-cancelled waiter was not re-granted")
	}
	a.Release()
	if got := m.s.InUse(); got != 0 {
		t.Fatalf("InUse = %d, want 0 (no outstanding holds)", got)
	}
	if !a.TryAcquire() {
		t.Fatal("slot lost through the cancel-after-grant path")
	}
}

// TestAcquireWaitTimeoutAndStop covers the live blocking paths: a
// timeout on an exhausted scheduler returns false promptly, and a stop
// close aborts an indefinite wait.
func TestAcquireWaitTimeoutAndStop(t *testing.T) {
	s := NewScheduler(1, nil)
	c := s.Claimant("c", Batch)
	if !c.TryAcquire() {
		t.Fatal("seed acquire failed")
	}
	if c.AcquireWait(5*time.Millisecond, nil) {
		t.Fatal("AcquireWait acquired a slot on an exhausted scheduler")
	}
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- c.AcquireWait(0, stop) }()
	close(stop)
	if <-done {
		t.Fatal("AcquireWait returned true after stop")
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d after abandoned waits, want 0", d)
	}
	c.Release()
	if !c.AcquireWait(0, nil) {
		t.Fatal("AcquireWait failed with a free slot")
	}
}

// TestAccountingAndConfig covers the small contract surface: clamping,
// counters, weights, and class parsing.
func TestAccountingAndConfig(t *testing.T) {
	s := NewScheduler(0, map[Class]int{Background: -3})
	if s.Slots() != 1 {
		t.Fatalf("Slots = %d, want clamp to 1", s.Slots())
	}
	if w := s.Weight(Background); w != 1 {
		t.Fatalf("Background weight = %d, want clamp to 1", w)
	}
	if w := s.Weight(Interactive); w != DefaultWeights()[Interactive] {
		t.Fatalf("Interactive weight = %d, want default %d", w, DefaultWeights()[Interactive])
	}
	if w := s.Weight(Class(99)); w != 1 {
		t.Fatalf("out-of-range weight = %d, want 1", w)
	}
	c := s.Claimant("x", Class(42))
	if c.Class() != Batch {
		t.Fatalf("out-of-range class mapped to %v, want batch", c.Class())
	}
	if c.Name() != "x" {
		t.Fatalf("Name = %q", c.Name())
	}
	if !c.TryAcquire() {
		t.Fatal("acquire failed")
	}
	if got := s.InUse(); got != 1 {
		t.Fatalf("InUse = %d, want 1", got)
	}
	if c.TryAcquire() {
		t.Fatal("second acquire succeeded on a 1-slot scheduler")
	}
	if g := s.Grants()[Batch]; g != 1 {
		t.Fatalf("Grants[batch] = %d, want 1", g)
	}
	if d := s.Denied()[Batch]; d != 1 {
		t.Fatalf("Denied[batch] = %d, want 1", d)
	}
	c.Release()
	c.Release() // over-release must not inflate the pool
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse = %d after over-release, want 0", got)
	}
	for _, class := range Classes() {
		got, err := ParseClass(class.String())
		if err != nil || got != class {
			t.Fatalf("ParseClass(%q) = %v, %v", class.String(), got, err)
		}
	}
	if _, err := ParseClass("vip"); err == nil {
		t.Fatal("ParseClass accepted an unknown class")
	}
	if Class(99).String() == "" {
		t.Fatal("out-of-range String is empty")
	}
}
