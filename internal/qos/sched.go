package qos

import (
	"fmt"
	"sync"
	"time"
)

// Class is a quality-of-service class. Lower-latency classes carry
// larger default weights, so their claimants receive proportionally
// more slot grants when the scheduler is contended.
type Class int

// The QoS classes, from most to least latency-sensitive.
const (
	// Interactive is for latency-sensitive foreground traffic (live
	// repair sessions a user is watching).
	Interactive Class = iota
	// Batch is the default class for ordinary workloads.
	Batch
	// Background is for throughput-oriented work that should yield to
	// everything else (bulk re-prove storms, backfills).
	Background

	numClasses = 3
)

// String returns the class name used in flags, API bodies and metric
// labels.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Background:
		return "background"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ParseClass maps a class name to its Class, accepting exactly the
// String forms.
func ParseClass(s string) (Class, error) {
	switch s {
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	case "background":
		return Background, nil
	default:
		return 0, fmt.Errorf("qos: unknown class %q (want interactive, batch or background)", s)
	}
}

// Classes lists every class in declaration order (stable metric-label
// and report ordering).
func Classes() []Class { return []Class{Interactive, Batch, Background} }

// DefaultWeights returns the default per-class weights: 16:4:1 for
// interactive:batch:background, so a fully contended scheduler serves
// interactive claimants 4x as often as batch ones and 16x as often as
// background ones (per claimant, all else equal).
func DefaultWeights() map[Class]int {
	return map[Class]int{Interactive: 16, Batch: 4, Background: 1}
}

// vtScale is the virtual-time stride numerator: one grant advances a
// claimant's virtual time by vtScale/weight, so larger weights mean
// slower virtual clocks and therefore more frequent service.
const vtScale = 1 << 16

// Scheduler is a weighted fair-share pool of identical slots. Consumers
// acquire and release slots through per-consumer Claimants; when the
// pool is contended, freed slots are handed to the waiting claimant
// with the smallest virtual time (stride scheduling), which bounds how
// long any backlogged claimant can be bypassed and makes long-run grant
// shares track the class weights.
//
// A Scheduler is safe for concurrent use. Handouts are preemption-free:
// a granted slot is held until its holder releases it.
type Scheduler struct {
	mu      sync.Mutex
	slots   int
	free    int
	weights [numClasses]int
	vnow    uint64
	// active lists claimants with at least one queued waiter, in
	// arrival order (the tie-break for equal virtual times).
	active []*Claimant
	grants [numClasses]uint64
	denied [numClasses]uint64
}

// NewScheduler returns a scheduler with the given slot count (clamped
// up to 1) and per-class weights; nil or partial weight maps fall back
// to DefaultWeights for the missing classes, and every weight is
// clamped up to 1.
func NewScheduler(slots int, weights map[Class]int) *Scheduler {
	if slots < 1 {
		slots = 1
	}
	s := &Scheduler{slots: slots, free: slots}
	def := DefaultWeights()
	for i := 0; i < numClasses; i++ {
		w := def[Class(i)]
		if ww, ok := weights[Class(i)]; ok {
			w = ww
		}
		if w < 1 {
			w = 1
		}
		s.weights[i] = w
	}
	return s
}

// Slots returns the configured slot count.
func (s *Scheduler) Slots() int { return s.slots }

// InUse returns the number of slots currently held.
func (s *Scheduler) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slots - s.free
}

// QueueDepth returns the number of waiters currently queued.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.active {
		n += len(c.queue)
	}
	return n
}

// Weight returns the configured weight of a class (1 for classes out
// of range).
func (s *Scheduler) Weight(c Class) int {
	if c < 0 || c >= numClasses {
		return 1
	}
	return s.weights[c]
}

// Grants returns the cumulative per-class grant counters.
func (s *Scheduler) Grants() map[Class]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Class]uint64, numClasses)
	for i := 0; i < numClasses; i++ {
		out[Class(i)] = s.grants[i]
	}
	return out
}

// Denied returns the cumulative per-class counters of acquisitions
// that gave up (immediate TryAcquire misses and abandoned waits).
func (s *Scheduler) Denied() map[Class]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Class]uint64, numClasses)
	for i := 0; i < numClasses; i++ {
		out[Class(i)] = s.denied[i]
	}
	return out
}

// Claimant mints a consumer identity in the given class. Claimants are
// cheap: one per server session, for example. The scheduler keeps no
// reference to an idle claimant, so dropping every reference to one
// (session eviction) releases it without any explicit detach.
func (s *Scheduler) Claimant(name string, class Class) *Claimant {
	if class < 0 || class >= numClasses {
		class = Batch
	}
	return &Claimant{s: s, name: name, class: class}
}

// Claimant is one consumer's handle on a Scheduler: it carries the
// consumer's QoS class and its virtual-time position. All methods are
// safe for concurrent use; slots acquired through a claimant must be
// released through the same claimant's scheduler (Release).
type Claimant struct {
	s     *Scheduler
	name  string
	class Class
	// pass is the claimant's virtual time: advanced by vtScale/weight
	// per grant, floored to the scheduler's clock when it falls behind
	// (an idle claimant accrues no credit).
	pass uint64
	// queue holds the claimant's waiters in arrival order (guarded by
	// s.mu).
	queue []*waiter
}

// Name returns the identity given at mint time.
func (c *Claimant) Name() string { return c.name }

// Class returns the claimant's QoS class.
func (c *Claimant) Class() Class { return c.class }

// waiter is one queued acquisition.
type waiter struct {
	c  *Claimant
	ch chan struct{} // buffered; a token in it is a granted slot
	// granted flips under s.mu when a slot is handed to this waiter;
	// a cancelling waiter that finds it set must put the slot back.
	granted bool
}

// TryAcquire takes a slot if one is free AND no waiter is queued; it
// never blocks and never bypasses the queue (no barging: an exhausted
// or contended scheduler makes even momentarily-free slots flow through
// the fair queue).
func (c *Claimant) TryAcquire() bool {
	s := c.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.free > 0 && len(s.active) == 0 {
		s.free--
		s.charge(c)
		return true
	}
	s.denied[c.class]++
	return false
}

// AcquireWait blocks until a slot is granted, the timeout d elapses
// (d <= 0 waits indefinitely), or stop closes. It reports whether a
// slot was acquired; on false the caller holds nothing.
func (c *Claimant) AcquireWait(d time.Duration, stop <-chan struct{}) bool {
	s := c.s
	s.mu.Lock()
	if s.free > 0 && len(s.active) == 0 {
		s.free--
		s.charge(c)
		s.mu.Unlock()
		return true
	}
	w := c.enqueueLocked()
	s.mu.Unlock()

	var timeout <-chan time.Time
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ch:
		return true
	case <-timeout:
	case <-stop:
	}
	s.cancel(w)
	return false
}

// Release returns a held slot: it is handed directly to the fair
// queue's next waiter if any, and returned to the free pool otherwise.
func (c *Claimant) Release() {
	s := c.s
	s.mu.Lock()
	s.releaseLocked()
	s.mu.Unlock()
}

// enqueueLocked appends a new waiter for c; the caller holds s.mu.
func (c *Claimant) enqueueLocked() *waiter {
	w := &waiter{c: c, ch: make(chan struct{}, 1)}
	if len(c.queue) == 0 {
		c.s.active = append(c.s.active, c)
	}
	c.queue = append(c.queue, w)
	return w
}

// cancel abandons a queued waiter. If the race was lost — a slot was
// already handed to the waiter — the slot is put back through the fair
// queue, so a timed-out acquisition can never leak one.
func (s *Scheduler) cancel(w *waiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.denied[w.c.class]++
	if w.granted {
		s.releaseLocked()
		return
	}
	c := w.c
	for i, qw := range c.queue {
		if qw == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	if len(c.queue) == 0 {
		s.removeActive(c)
	}
}

// releaseLocked frees one slot: the waiting claimant with the smallest
// virtual time (arrival order breaks ties) receives it directly, so a
// freed slot can never be barged away from the queue; with no waiters
// the free pool grows. The caller holds s.mu.
func (s *Scheduler) releaseLocked() {
	if len(s.active) == 0 {
		if s.free < s.slots {
			s.free++
		}
		return
	}
	min := 0
	for i := 1; i < len(s.active); i++ {
		if s.active[i].pass < s.active[min].pass {
			min = i
		}
	}
	c := s.active[min]
	w := c.queue[0]
	c.queue = c.queue[1:]
	if len(c.queue) == 0 {
		s.removeActive(c)
	}
	s.charge(c)
	w.granted = true
	w.ch <- struct{}{}
}

// removeActive drops c from the active list, preserving arrival order;
// the caller holds s.mu.
func (s *Scheduler) removeActive(c *Claimant) {
	for i, ac := range s.active {
		if ac == c {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

// charge advances the virtual clocks for one grant to c: the claimant's
// pass is floored to the scheduler's clock (idle time earns no credit),
// the scheduler's clock advances to the granted pass, and the claimant
// pays one stride (vtScale/weight). The caller holds s.mu.
func (s *Scheduler) charge(c *Claimant) {
	if c.pass < s.vnow {
		c.pass = s.vnow
	}
	s.vnow = c.pass
	c.pass += vtScale / uint64(s.weights[c.class])
	s.grants[c.class]++
}
