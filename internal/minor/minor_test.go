package minor_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/minor"
	"github.com/planarcert/planarcert/internal/planarity"
)

const budget = 2_000_000

func TestVerifyCompleteValidModel(t *testing.T) {
	// Contract a 6-cycle into three branch sets of two adjacent vertices:
	// yields a triangle = K3.
	g := gen.Cycle(6)
	m := &minor.Model{BranchSets: [][]int{{0, 1}, {2, 3}, {4, 5}}}
	if err := m.VerifyComplete(g, 3); err != nil {
		t.Fatalf("VerifyComplete: %v", err)
	}
}

func TestVerifyCompleteRejectsBadModels(t *testing.T) {
	g := gen.Cycle(6)
	tests := []struct {
		name string
		m    *minor.Model
	}{
		{"wrong count", &minor.Model{BranchSets: [][]int{{0}, {1}}}},
		{"empty set", &minor.Model{BranchSets: [][]int{{0, 1}, {2, 3}, {}}}},
		{"overlap", &minor.Model{BranchSets: [][]int{{0, 1}, {1, 2}, {4, 5}}}},
		{"disconnected set", &minor.Model{BranchSets: [][]int{{0, 3}, {1, 2}, {4, 5}}}},
		{"missing adjacency", &minor.Model{BranchSets: [][]int{{0}, {1}, {3}}}},
		{"invalid vertex", &minor.Model{BranchSets: [][]int{{0, 99}, {2, 3}, {4, 5}}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.m.VerifyComplete(g, 3); err == nil {
				t.Fatal("invalid model verified")
			}
		})
	}
}

func TestVerifyBipartite(t *testing.T) {
	g := gen.CompleteBipartite(2, 3)
	m := &minor.Model{BranchSets: [][]int{{0}, {1}, {2}, {3}, {4}}}
	if err := m.VerifyBipartite(g, 2, 3); err != nil {
		t.Fatalf("VerifyBipartite on K2,3 itself: %v", err)
	}
	// Same-side sets have no adjacency requirement, cross pairs do.
	bad := &minor.Model{BranchSets: [][]int{{0}, {2}, {1}, {3}, {4}}}
	if err := bad.VerifyBipartite(g, 2, 3); err == nil {
		t.Fatal("model with a part vertex on the wrong side verified")
	}
}

func TestFindCompleteInCliques(t *testing.T) {
	for k := 3; k <= 5; k++ {
		g := gen.Complete(k)
		m, err := minor.FindComplete(g, k, budget)
		if err != nil {
			t.Fatalf("FindComplete(K%d): %v", k, err)
		}
		if m == nil {
			t.Fatalf("K%d minor not found in K%d", k, k)
		}
		if err := m.VerifyComplete(g, k); err != nil {
			t.Fatalf("returned model invalid: %v", err)
		}
	}
}

func TestFindCompleteAbsent(t *testing.T) {
	// Trees have no K3 minor.
	rng := rand.New(rand.NewSource(1))
	g := gen.RandomTree(12, rng)
	m, err := minor.FindComplete(g, 3, budget)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatal("found K3 minor in a tree")
	}
	// Outerplanar graphs have no K4 minor.
	o := gen.RandomOuterplanar(10, 1.0, rng)
	m, err = minor.FindComplete(o, 4, budget)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatal("found K4 minor in an outerplanar graph")
	}
	// Planar graphs have no K5 minor.
	p, err := gen.RandomPlanar(12, 24, rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err = minor.FindComplete(p, 5, budget)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatal("found K5 minor in a planar graph")
	}
}

func TestFindCompleteInGrid(t *testing.T) {
	// A 3x3 grid contains K4 as a minor but not K5 (planar).
	g := gen.Grid(3, 3)
	m, err := minor.FindComplete(g, 4, budget)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no K4 minor found in 3x3 grid")
	}
	if err := m.VerifyComplete(g, 4); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
}

func TestFindBipartiteInGrid(t *testing.T) {
	// Grids contain K2,3 minors (e.g. two adjacent faces).
	g := gen.Grid(3, 4)
	m, err := minor.FindBipartite(g, 2, 3, budget)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no K2,3 minor found in 3x4 grid")
	}
	if err := m.VerifyBipartite(g, 2, 3); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
}

func TestFindBipartiteAbsentInPath(t *testing.T) {
	g := gen.Path(10)
	m, err := minor.FindBipartite(g, 2, 2, budget)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatal("found K2,2 minor in a path")
	}
}

func TestFindCompleteSubdivisionHasMinor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.KuratowskiSubdivision(true, 3, rng)
	m, err := minor.FindComplete(g, 5, budget)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no K5 minor in a K5 subdivision")
	}
	if err := m.VerifyComplete(g, 5); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	g := gen.Complete(6)
	if _, err := minor.FindComplete(g, 6, 3); err == nil {
		t.Fatal("tiny budget did not trip ErrBudget")
	}
}

func TestMinorMonotoneUnderPlanarity(t *testing.T) {
	// Cross-validation: small random graphs have a K5 or K3,3 minor iff
	// they are non-planar (Wagner's theorem).
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(5)
		m := rng.Intn(n*(n-1)/2 + 1)
		g, err := gen.GNM(n, m, rng)
		if err != nil {
			t.Fatal(err)
		}
		k5, err := minor.FindComplete(g, 5, budget)
		if err != nil {
			continue // budget; skip
		}
		k33, err := minor.FindBipartite(g, 3, 3, budget)
		if err != nil {
			continue
		}
		hasObstruction := k5 != nil || k33 != nil
		if hasObstruction == planarIsh(g) {
			t.Fatalf("trial %d: obstruction=%v but planar=%v (n=%d m=%d)",
				trial, hasObstruction, planarIsh(g), n, m)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// planarIsh is the LR planarity test. The cross-check direction is
// deliberate: the minor search (independent, exhaustive) validates the LR
// implementation through Wagner's theorem, and vice versa — a disagreement
// flags a bug in one of the two.
func planarIsh(g *graph.Graph) bool {
	return planarity.IsPlanar(g)
}
