// Package minor provides explicit graph-minor machinery for the lower-bound
// constructions of Feuilloley et al. (PODC 2020, Section 4): verification of
// known minor models (used to certify that "cycles of blocks" contain K_k
// and that the glued instance J contains K_{q,q}), and a bounded
// branch-set search usable as an independent oracle on small graphs.
package minor

import (
	"errors"
	"fmt"

	"github.com/planarcert/planarcert/internal/graph"
)

// Model is a minor model of a pattern H inside a host graph G: BranchSets
// maps every H-vertex to a set of G-vertices.
type Model struct {
	BranchSets [][]int
}

// VerifyComplete checks that m is a valid model of the complete graph K_k
// in g: k non-empty, pairwise-disjoint, connected branch sets with an edge
// of g between every pair.
func (m *Model) VerifyComplete(g *graph.Graph, k int) error {
	if len(m.BranchSets) != k {
		return fmt.Errorf("minor: model has %d branch sets, want %d", len(m.BranchSets), k)
	}
	if err := m.verifyBasics(g); err != nil {
		return err
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if !m.touching(g, i, j) {
				return fmt.Errorf("minor: branch sets %d and %d not adjacent", i, j)
			}
		}
	}
	return nil
}

// VerifyBipartite checks that m is a valid model of K_{p,q} in g: the first
// p branch sets form one side, the next q the other, with edges across all
// cross pairs.
func (m *Model) VerifyBipartite(g *graph.Graph, p, q int) error {
	if len(m.BranchSets) != p+q {
		return fmt.Errorf("minor: model has %d branch sets, want %d", len(m.BranchSets), p+q)
	}
	if err := m.verifyBasics(g); err != nil {
		return err
	}
	for i := 0; i < p; i++ {
		for j := 0; j < q; j++ {
			if !m.touching(g, i, p+j) {
				return fmt.Errorf("minor: branch sets %d and %d not adjacent", i, p+j)
			}
		}
	}
	return nil
}

func (m *Model) verifyBasics(g *graph.Graph) error {
	owner := make(map[int]int)
	for i, set := range m.BranchSets {
		if len(set) == 0 {
			return fmt.Errorf("minor: branch set %d is empty", i)
		}
		for _, v := range set {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("minor: branch set %d contains invalid vertex %d", i, v)
			}
			if prev, taken := owner[v]; taken {
				return fmt.Errorf("minor: vertex %d in branch sets %d and %d", v, prev, i)
			}
			owner[v] = i
		}
		if !connectedSubset(g, set) {
			return fmt.Errorf("minor: branch set %d is not connected", i)
		}
	}
	return nil
}

func (m *Model) touching(g *graph.Graph, a, b int) bool {
	inB := make(map[int]bool, len(m.BranchSets[b]))
	for _, v := range m.BranchSets[b] {
		inB[v] = true
	}
	for _, u := range m.BranchSets[a] {
		for _, w := range g.Neighbors(u) {
			if inB[w] {
				return true
			}
		}
	}
	return false
}

func connectedSubset(g *graph.Graph, set []int) bool {
	if len(set) == 0 {
		return false
	}
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	seen := map[int]bool{set[0]: true}
	stack := []int{set[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.Neighbors(u) {
			if in[v] && !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return len(seen) == len(set)
}

// ErrBudget is returned when the branch-set search exhausts its node
// budget without a definitive answer.
var ErrBudget = errors.New("minor: search budget exhausted")

// FindComplete searches for a K_k minor model in g using backtracking over
// branch-set growth, with a bounded number of search nodes. It returns the
// model if found, nil if provably absent, and ErrBudget if undecided.
func FindComplete(g *graph.Graph, k int, budget int) (*Model, error) {
	s := &searcher{
		g:      g,
		budget: budget,
		assign: make([]int, g.N()),
		sets:   make([][]int, k),
		kind:   kindComplete,
		failed: make(map[string]bool),
	}
	for i := range s.assign {
		s.assign[i] = -1
	}
	found, err := s.solve(0)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	return &Model{BranchSets: s.sets}, nil
}

// FindBipartite searches for a K_{p,q} minor model, analogous to
// FindComplete. The first p branch sets are the left side.
func FindBipartite(g *graph.Graph, p, q int, budget int) (*Model, error) {
	s := &searcher{
		g:      g,
		budget: budget,
		assign: make([]int, g.N()),
		sets:   make([][]int, p+q),
		kind:   kindBipartite,
		p:      p,
		failed: make(map[string]bool),
	}
	for i := range s.assign {
		s.assign[i] = -1
	}
	found, err := s.solve(0)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	return &Model{BranchSets: s.sets}, nil
}

type patternKind int

const (
	kindComplete patternKind = iota
	kindBipartite
)

type searcher struct {
	g      *graph.Graph
	budget int
	assign []int // vertex -> branch index or -1
	sets   [][]int
	kind   patternKind
	p      int             // left-part size for bipartite patterns
	failed map[string]bool // assignment states whose subtree is exhausted
}

// stateKey serialises the current assignment; different grow orders that
// reach the same assignment share one key, which is what makes absence
// proofs tractable.
func (s *searcher) stateKey() string {
	buf := make([]byte, len(s.assign))
	for i, a := range s.assign {
		buf[i] = byte(a + 1)
	}
	return string(buf)
}

// requires reports whether branches a and b must be adjacent in the
// pattern.
func (s *searcher) requires(a, b int) bool {
	if s.kind == kindComplete {
		return true
	}
	return (a < s.p) != (b < s.p)
}

func (s *searcher) adjacent(a, b int) bool {
	for _, u := range s.sets[a] {
		for _, v := range s.g.Neighbors(u) {
			if s.assign[v] == b {
				return true
			}
		}
	}
	return false
}

// firstGap returns the first unmet requirement: an empty branch set
// (-1, idx) or a missing adjacency (a, b). Returns (-2, -2) if satisfied.
func (s *searcher) firstGap() (int, int) {
	for i, set := range s.sets {
		if len(set) == 0 {
			return -1, i
		}
	}
	for a := range s.sets {
		for b := a + 1; b < len(s.sets); b++ {
			if s.requires(a, b) && !s.adjacent(a, b) {
				return a, b
			}
		}
	}
	return -2, -2
}

func (s *searcher) solve(depth int) (bool, error) {
	if s.budget <= 0 {
		return false, ErrBudget
	}
	s.budget--
	a, b := s.firstGap()
	if a == -2 {
		return true, nil
	}
	key := s.stateKey()
	if s.failed[key] {
		return false, nil
	}
	if a == -1 {
		// Seed the empty branch set b with any unassigned vertex. For fully
		// symmetric patterns, restrict to vertices larger than the previous
		// seed to break symmetry.
		lo := 0
		if s.symmetricWithPrevious(b) && len(s.sets) > 1 && b > 0 && len(s.sets[b-1]) > 0 {
			lo = s.sets[b-1][0] + 1
		}
		for v := lo; v < s.g.N(); v++ {
			if s.assign[v] != -1 {
				continue
			}
			s.place(v, b)
			ok, err := s.solve(depth + 1)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
			s.unplace(v, b)
		}
		s.failed[key] = true
		return false, nil
	}
	// Requirement (a,b) unmet: grow either side by an adjacent unassigned
	// vertex.
	for _, side := range [2]int{a, b} {
		for _, u := range s.sets[side] {
			for _, v := range s.g.Neighbors(u) {
				if s.assign[v] != -1 {
					continue
				}
				s.place(v, side)
				ok, err := s.solve(depth + 1)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
				s.unplace(v, side)
			}
		}
	}
	s.failed[key] = true
	return false, nil
}

// symmetricWithPrevious reports whether branch b plays the same role as
// branch b-1 in the pattern (so seeds can be ordered).
func (s *searcher) symmetricWithPrevious(b int) bool {
	if s.kind == kindComplete {
		return b > 0
	}
	return b > 0 && (b < s.p) == ((b-1) < s.p)
}

func (s *searcher) place(v, b int) {
	s.assign[v] = b
	s.sets[b] = append(s.sets[b], v)
}

func (s *searcher) unplace(v, b int) {
	s.assign[v] = -1
	s.sets[b] = s.sets[b][:len(s.sets[b])-1]
}
