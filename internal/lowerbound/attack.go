package lowerbound

import (
	"math"
	"math/rand"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/graph"
)

// Labeler assigns certificates to the nodes of a path-of-blocks instance
// (it models "the prover's accepting assignment" for a hypothetical
// scheme whose certificate size is bounded).
type Labeler func(inst *BlockInstance) (map[graph.ID]bits.Certificate, error)

// blockSignature serialises the labeling of every ordinary block of a
// path of blocks, ordered by block index — two instances with equal
// signatures have identical labeled blocks, the collision the pigeonhole
// argument of Lemma 5 relies on.
func blockSignature(inst *BlockInstance, p int, certs map[graph.ID]bits.Certificate) string {
	sig := make([]byte, 0, 64)
	for r := 1; r <= p; r++ {
		for o := 0; o < inst.K-1; o++ {
			c := certs[blockID(inst.K, r, o)]
			sig = append(sig, byte(c.Bits), byte(c.Bits>>8))
			sig = append(sig, c.Data...)
		}
	}
	return string(sig)
}

// SpliceResult describes a successful pigeonhole attack.
type SpliceResult struct {
	PermA, PermB []int          // the two colliding legal instances
	CycleSeq     []int          // blocks of the accepted illegal cycle
	Cycle        *BlockInstance // the illegal instance itself
	Certs        map[graph.ID]bits.Certificate
	Instances    int // how many instances were inspected
}

// FindSplice runs the Lemma 5 attack against the given labeler: it
// samples path-of-blocks instances (permutations of the ordinary blocks)
// until two of them receive identical labeled blocks, then splices an
// illegal cycle of blocks whose every node sees a view it saw in one of
// the two legal instances. Returns nil if no collision is found within
// maxInstances samples.
func FindSplice(k, p int, label Labeler, maxInstances int, rng *rand.Rand) (*SpliceResult, error) {
	seen := make(map[string][]int, maxInstances)
	count := 0
	try := func(perm []int) (*SpliceResult, error) {
		inst, err := PathOfBlocks(k, p, perm)
		if err != nil {
			return nil, err
		}
		certs, err := label(inst)
		if err != nil {
			return nil, err
		}
		count++
		sig := blockSignature(inst, p, certs)
		if prev, ok := seen[sig]; ok && !equalPerm(prev, perm) {
			res, err := splice(k, p, prev, perm, certs)
			if err != nil {
				return nil, err
			}
			if res != nil {
				res.Instances = count
				return res, nil
			}
			// Could not orient the splice (no usable pair); keep sampling.
			return nil, nil
		}
		if _, ok := seen[sig]; !ok {
			seen[sig] = append([]int(nil), perm...)
		}
		return nil, nil
	}
	// Deterministic first probe: identity, then random samples.
	identity := make([]int, p)
	for i := range identity {
		identity[i] = i + 1
	}
	if res, err := try(identity); res != nil || err != nil {
		return res, err
	}
	for count < maxInstances {
		perm := rng.Perm(p)
		for i := range perm {
			perm[i]++
		}
		if res, err := try(perm); res != nil || err != nil {
			return res, err
		}
	}
	return nil, nil
}

func equalPerm(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// splice builds the illegal cycle from two colliding instances: it finds
// blocks X, Y such that X appears before Y in permA's order and Y is
// immediately followed by X in permB's order, then closes the segment
// X..Y of permA into a ring. Every node of the result sees exactly the
// view it had in instance A (interior) or instance B (the closing seam).
func splice(k, p int, permA, permB []int, certs map[graph.ID]bits.Certificate) (*SpliceResult, error) {
	posA := make(map[int]int, p)
	for s, r := range permA {
		posA[r] = s
	}
	// Find consecutive pair (Y, X) in permB with X before Y in permA.
	for s := 0; s+1 < p; s++ {
		y, x := permB[s], permB[s+1]
		if posA[x] < posA[y] {
			seq := append([]int(nil), permA[posA[x]:posA[y]+1]...)
			cyc, err := CycleOfBlocks(k, seq)
			if err != nil {
				return nil, err
			}
			sub := make(map[graph.ID]bits.Certificate, cyc.G.N())
			for v := 0; v < cyc.G.N(); v++ {
				sub[cyc.G.IDOf(v)] = certs[cyc.G.IDOf(v)]
			}
			return &SpliceResult{
				PermA:    permA,
				PermB:    permB,
				CycleSeq: seq,
				Cycle:    cyc,
				Certs:    sub,
			}, nil
		}
	}
	return nil, nil
}

// TruncateLabeler wraps another labeler, truncating every certificate to
// at most g bits — the "o(log n) bits" regime of Theorem 2.
func TruncateLabeler(inner Labeler, g int) Labeler {
	return func(inst *BlockInstance) (map[graph.ID]bits.Certificate, error) {
		certs, err := inner(inst)
		if err != nil {
			return nil, err
		}
		out := make(map[graph.ID]bits.Certificate, len(certs))
		for id, c := range certs {
			r := c.Reader()
			var w bits.Writer
			for i := 0; i < g && i < c.Bits; i++ {
				b, err := r.ReadBit()
				if err != nil {
					return nil, err
				}
				w.WriteBit(b)
			}
			out[id] = bits.FromWriter(&w)
		}
		return out, nil
	}
}

// ZeroLabeler assigns empty certificates (the 0-bit regime).
func ZeroLabeler(inst *BlockInstance) (map[graph.ID]bits.Certificate, error) {
	out := make(map[graph.ID]bits.Certificate, inst.G.N())
	for v := 0; v < inst.G.N(); v++ {
		out[inst.G.IDOf(v)] = bits.Certificate{}
	}
	return out, nil
}

// PigeonholeThreshold returns the number of ordinary blocks p at which
// the counting argument of Lemma 5 forces a collision for (k-1)·g-bit
// block labelings: the smallest p with log2(p!) > (k-1)·g·p.
func PigeonholeThreshold(k, g int) int {
	for p := 2; ; p++ {
		lf := 0.0
		for i := 2; i <= p; i++ {
			lf += math.Log2(float64(i))
		}
		if lf > float64((k-1)*g*p) {
			return p
		}
		if p > 1<<30 {
			return -1
		}
	}
}

// InstanceSize returns the number of nodes of a path of blocks with p
// ordinary blocks.
func InstanceSize(k, p int) int { return (k - 1) * (p + 2) }
