package lowerbound_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/lowerbound"
	"github.com/planarcert/planarcert/internal/minor"
	"github.com/planarcert/planarcert/internal/planarity"
	"github.com/planarcert/planarcert/internal/pls"
)

func identityPerm(p int) []int {
	perm := make([]int, p)
	for i := range perm {
		perm[i] = i + 1
	}
	return perm
}

func TestPathOfBlocksShape(t *testing.T) {
	k, p := 4, 3
	inst, err := lowerbound.PathOfBlocks(k, p, identityPerm(p))
	if err != nil {
		t.Fatal(err)
	}
	if inst.G.N() != lowerbound.InstanceSize(k, p) {
		t.Fatalf("n = %d, want %d", inst.G.N(), lowerbound.InstanceSize(k, p))
	}
	if !inst.G.Connected() {
		t.Fatal("path of blocks disconnected")
	}
	// Each block is a K_{k-1}: check block 1.
	for o1 := 0; o1 < k-1; o1++ {
		for o2 := o1 + 1; o2 < k-1; o2++ {
			if !inst.G.HasEdge(inst.NodeOf(1, o1), inst.NodeOf(1, o2)) {
				t.Fatal("block not complete")
			}
		}
	}
	// Block connection from B_0 to B_1 (k=4): 2 rightmost x 1 leftmost.
	if !inst.G.HasEdge(inst.NodeOf(0, 2), inst.NodeOf(1, 0)) ||
		!inst.G.HasEdge(inst.NodeOf(0, 1), inst.NodeOf(1, 0)) {
		t.Fatal("block connection edges missing")
	}
	if inst.G.HasEdge(inst.NodeOf(0, 0), inst.NodeOf(1, 0)) {
		t.Fatal("spurious connection edge")
	}
}

func TestPathOfBlocksIsLegal(t *testing.T) {
	// Claim 7: paths of blocks are K_k-minor-free (checked with the
	// independent exhaustive searcher for k = 4).
	inst, err := lowerbound.PathOfBlocks(4, 3, identityPerm(3))
	if err != nil {
		t.Fatal(err)
	}
	m, err := minor.FindComplete(inst.G, 4, 40_000_000)
	if err != nil {
		t.Skipf("search budget exhausted: %v", err)
	}
	if m != nil {
		t.Fatal("path of blocks contains K4 minor")
	}
}

func TestCycleOfBlocksIsIllegal(t *testing.T) {
	for _, k := range []int{4, 5, 6} {
		inst, err := lowerbound.CycleOfBlocks(k, []int{2, 3, 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.VerifyIllegal(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestKkModelOnlyForCycles(t *testing.T) {
	inst, err := lowerbound.PathOfBlocks(4, 2, identityPerm(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.KkModel(); err == nil {
		t.Fatal("path of blocks produced a K_k model")
	}
}

func TestFindSpliceZeroBits(t *testing.T) {
	// With empty certificates every pair of instances collides: the attack
	// must succeed immediately and produce a verified illegal instance.
	rng := rand.New(rand.NewSource(1))
	res, err := lowerbound.FindSplice(4, 4, lowerbound.ZeroLabeler, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("zero-bit attack failed")
	}
	if err := res.Cycle.VerifyIllegal(); err != nil {
		t.Fatalf("spliced cycle not illegal: %v", err)
	}
	if len(res.CycleSeq) < 2 {
		t.Fatalf("degenerate splice %v", res.CycleSeq)
	}
}

// treeLabeler runs the real spanning-tree PLS prover on the instance —
// a stand-in for "some correct scheme's accepting certificates".
func treeLabeler(inst *lowerbound.BlockInstance) (map[graph.ID]bits.Certificate, error) {
	return pls.SpanningTreeScheme{}.Prove(inst.G)
}

func TestFindSpliceTruncatedRealCerts(t *testing.T) {
	// Truncating real certificates to very few bits creates collisions;
	// the spliced instance is still illegal.
	rng := rand.New(rand.NewSource(2))
	res, err := lowerbound.FindSplice(4, 5, lowerbound.TruncateLabeler(treeLabeler, 1), 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Skip("no collision within budget (randomness-dependent)")
	}
	if err := res.Cycle.VerifyIllegal(); err != nil {
		t.Fatalf("spliced cycle not illegal: %v", err)
	}
}

func TestFullCertsResistSampling(t *testing.T) {
	// With full Θ(log n) certificates the labelings are collision-free in
	// any feasible sample (they encode the permutation itself).
	rng := rand.New(rand.NewSource(3))
	res, err := lowerbound.FindSplice(4, 5, treeLabeler, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("full-size certificates collided — labeler is broken")
	}
}

func TestPigeonholeThreshold(t *testing.T) {
	// g = 0: any p >= 2 has p! > 1.
	if got := lowerbound.PigeonholeThreshold(4, 0); got != 2 {
		t.Fatalf("threshold(4,0) = %d, want 2", got)
	}
	// Thresholds grow with g and are monotone.
	prev := 0
	for g := 0; g <= 3; g++ {
		th := lowerbound.PigeonholeThreshold(4, g)
		if th <= prev {
			t.Fatalf("threshold not increasing: g=%d -> %d (prev %d)", g, th, prev)
		}
		prev = th
	}
}

func TestLegalInstanceShape(t *testing.T) {
	as, bs := lowerbound.SplitIDs(3, 11)
	inst, err := lowerbound.NewLegalInstance(as[0], bs[0], 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if inst.G.N() != 22 {
		t.Fatalf("n = %d, want 22", inst.G.N())
	}
	if !inst.G.Connected() {
		t.Fatal("legal instance disconnected")
	}
	// Legal instances are outerplanar (paper: hence K_{p,q}-minor-free).
	if !planarity.Outerplanar(inst.G) {
		t.Fatal("legal instance not outerplanar")
	}
}

func TestLegalInstanceValidation(t *testing.T) {
	as, bs := lowerbound.SplitIDs(2, 4)
	if _, err := lowerbound.NewLegalInstance(as[0], bs[0], 3, 3); err == nil {
		t.Fatal("q*d beyond path length accepted")
	}
	if _, err := lowerbound.NewLegalInstance(as[0], bs[0], 2, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestGluedInstanceIllegal(t *testing.T) {
	for _, q := range []int{2, 3, 4} {
		n := 6 * q
		d := n / (2 * q)
		as, bs := lowerbound.SplitIDs(q, n)
		j, err := lowerbound.NewGluedInstance(as, bs, q, d)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		if err := j.VerifyIllegal(); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
	}
}

func TestGluedInstanceIndistinguishable(t *testing.T) {
	// The heart of Lemma 6: every node of J sees a neighborhood it also
	// sees in one of the q^2 legal instances.
	for _, q := range []int{2, 3} {
		n := 6 * q
		d := n / (2 * q)
		as, bs := lowerbound.SplitIDs(q, n)
		j, err := lowerbound.NewGluedInstance(as, bs, q, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.LocalViewsMatchLegal(); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
	}
}

func TestGluedInstanceNonPlanarForQ3(t *testing.T) {
	// K_{3,3} minor means J (q=3) is not even planar.
	as, bs := lowerbound.SplitIDs(3, 18)
	j, err := lowerbound.NewGluedInstance(as, bs, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if planarity.IsPlanar(j.G) {
		t.Fatal("glued q=3 instance is planar?!")
	}
}

func TestBlockInstanceErrors(t *testing.T) {
	if _, err := lowerbound.PathOfBlocks(3, 2, identityPerm(2)); err == nil {
		t.Fatal("k=3 accepted")
	}
	if _, err := lowerbound.PathOfBlocks(4, 2, []int{1}); err == nil {
		t.Fatal("short perm accepted")
	}
	if _, err := lowerbound.PathOfBlocks(4, 2, []int{1, 1}); err == nil {
		t.Fatal("repeated block accepted")
	}
	if _, err := lowerbound.CycleOfBlocks(4, []int{1}); err == nil {
		t.Fatal("single-block cycle accepted")
	}
}

func TestStretchPreservesLegality(t *testing.T) {
	// Radius-t remark: subdividing edges cannot create a K4 minor.
	if testing.Short() {
		t.Skip("exhaustive absence proof")
	}
	inst, err := lowerbound.PathOfBlocks(4, 2, identityPerm(2))
	if err != nil {
		t.Fatal(err)
	}
	g, model, err := inst.Stretch(2)
	if err != nil {
		t.Fatal(err)
	}
	if model != nil {
		t.Fatal("path instance returned a minor model")
	}
	if g.N() != inst.G.N()+inst.G.M() {
		t.Fatalf("stretched n = %d", g.N())
	}
	m, err := minor.FindComplete(g, 4, 40_000_000)
	if err != nil {
		t.Skipf("budget: %v", err)
	}
	if m != nil {
		t.Fatal("stretched path of blocks gained a K4 minor")
	}
}

func TestStretchPreservesIllegality(t *testing.T) {
	for _, tf := range []int{2, 3} {
		cyc, err := lowerbound.CycleOfBlocks(4, []int{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		g, model, err := cyc.Stretch(tf)
		if err != nil {
			t.Fatal(err)
		}
		if model == nil {
			t.Fatal("cycle stretch lost its minor model")
		}
		if err := model.VerifyComplete(g, 4); err != nil {
			t.Fatalf("t=%d: %v", tf, err)
		}
	}
}

func TestStretchRejectsBadFactor(t *testing.T) {
	cyc, err := lowerbound.CycleOfBlocks(4, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cyc.Stretch(0); err == nil {
		t.Fatal("t=0 accepted")
	}
	// t=1 must be the identity.
	g, _, err := cyc.Stretch(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != cyc.G.N() || g.M() != cyc.G.M() {
		t.Fatal("t=1 changed the instance")
	}
}
