package lowerbound

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/minor"
)

// LegalInstance is I_{a,b} of Lemma 6 (Figure 9): two paths, one carrying
// the identifiers of a, one those of b (in increasing order), joined by q
// rungs at positions j*d for j = 1..q. It is outerplanar, hence
// K_{p,q}-minor-free for every p >= 2, q >= 3.
type LegalInstance struct {
	G    *graph.Graph
	A, B []graph.ID // sorted identifier sets
	Q, D int
}

// NewLegalInstance builds I_{a,b} from two disjoint, sorted identifier
// sets; d is the rung spacing (paper: d = floor(n/2q)).
func NewLegalInstance(a, b []graph.ID, q, d int) (*LegalInstance, error) {
	if q*d > len(a) || q*d > len(b) {
		return nil, fmt.Errorf("lowerbound: q*d = %d exceeds path lengths (%d, %d)", q*d, len(a), len(b))
	}
	if d < 1 {
		return nil, fmt.Errorf("lowerbound: rung spacing d = %d", d)
	}
	inst := &LegalInstance{
		G: graph.New(len(a) + len(b)),
		A: append([]graph.ID(nil), a...),
		B: append([]graph.ID(nil), b...),
		Q: q, D: d,
	}
	aIdx := make([]int, len(a))
	bIdx := make([]int, len(b))
	for i, id := range a {
		idx, err := inst.G.AddNode(id)
		if err != nil {
			return nil, err
		}
		aIdx[i] = idx
	}
	for i, id := range b {
		idx, err := inst.G.AddNode(id)
		if err != nil {
			return nil, err
		}
		bIdx[i] = idx
	}
	for i := 0; i+1 < len(a); i++ {
		inst.G.MustAddEdge(aIdx[i], aIdx[i+1])
	}
	for i := 0; i+1 < len(b); i++ {
		inst.G.MustAddEdge(bIdx[i], bIdx[i+1])
	}
	for j := 1; j <= q; j++ {
		inst.G.MustAddEdge(aIdx[j*d-1], bIdx[j*d-1]) // paper's a[jd] is 1-based
	}
	return inst, nil
}

// GluedInstance is J of Lemma 6 (Figure 10): q copies of the a-paths and
// q copies of the b-paths, with rung j of path P_i attached to path
// Q_{i+j mod q}. It contains K_{q,q} (hence K_{p,q}) as a minor.
type GluedInstance struct {
	G    *graph.Graph
	AIDs [][]graph.ID // AIDs[i] = identifiers of path P_i (sorted)
	BIDs [][]graph.ID
	Q, D int

	aIdx, bIdx [][]int
}

// NewGluedInstance glues the q^2 legal instances: as[i] and bs[i] are the
// identifier sets of P_i and Q_i.
func NewGluedInstance(as, bs [][]graph.ID, q, d int) (*GluedInstance, error) {
	if len(as) != q || len(bs) != q {
		return nil, fmt.Errorf("lowerbound: need %d identifier sets per side", q)
	}
	inst := &GluedInstance{
		AIDs: as, BIDs: bs, Q: q, D: d,
		G:    graph.New(0),
		aIdx: make([][]int, q),
		bIdx: make([][]int, q),
	}
	addPath := func(ids []graph.ID) ([]int, error) {
		if q*d > len(ids) {
			return nil, fmt.Errorf("lowerbound: path of %d nodes too short for q*d = %d", len(ids), q*d)
		}
		idxs := make([]int, len(ids))
		for i, id := range ids {
			idx, err := inst.G.AddNode(id)
			if err != nil {
				return nil, err
			}
			idxs[i] = idx
		}
		for i := 0; i+1 < len(ids); i++ {
			inst.G.MustAddEdge(idxs[i], idxs[i+1])
		}
		return idxs, nil
	}
	var err error
	for i := 0; i < q; i++ {
		if inst.aIdx[i], err = addPath(as[i]); err != nil {
			return nil, err
		}
		if inst.bIdx[i], err = addPath(bs[i]); err != nil {
			return nil, err
		}
	}
	// Rungs: a_i[jd] -- b_{i+j}[jd] (1-based modular arithmetic).
	for i := 1; i <= q; i++ {
		for j := 1; j <= q; j++ {
			bi := (i+j-1)%q + 1
			inst.G.MustAddEdge(inst.aIdx[i-1][j*d-1], inst.bIdx[bi-1][j*d-1])
		}
	}
	return inst, nil
}

// KqqModel returns the explicit K_{q,q} minor model of J: each path
// contracts to one branch vertex.
func (g *GluedInstance) KqqModel() *minor.Model {
	model := &minor.Model{}
	for i := 0; i < g.Q; i++ {
		model.BranchSets = append(model.BranchSets, append([]int(nil), g.aIdx[i]...))
	}
	for i := 0; i < g.Q; i++ {
		model.BranchSets = append(model.BranchSets, append([]int(nil), g.bIdx[i]...))
	}
	return model
}

// VerifyIllegal checks that J contains K_{q,q} as a minor via the
// explicit model.
func (g *GluedInstance) VerifyIllegal() error {
	return g.KqqModel().VerifyBipartite(g.G, g.Q, g.Q)
}

// LocalViewsMatchLegal verifies the indistinguishability step of Lemma 6:
// every node of J has exactly the closed neighborhood (as an identifier
// set) that it has in one of the legal instances I_{a_i, b_j}. It returns
// an error naming the first node whose view is alien to every legal
// instance.
func (g *GluedInstance) LocalViewsMatchLegal() error {
	legal := make(map[[2]int]*LegalInstance, g.Q*g.Q)
	for i := 0; i < g.Q; i++ {
		for j := 0; j < g.Q; j++ {
			inst, err := NewLegalInstance(g.AIDs[i], g.BIDs[j], g.Q, g.D)
			if err != nil {
				return err
			}
			legal[[2]int{i, j}] = inst
		}
	}
	neighborIDs := func(gr *graph.Graph, idx int) map[graph.ID]bool {
		out := make(map[graph.ID]bool)
		for _, w := range gr.Neighbors(idx) {
			out[gr.IDOf(w)] = true
		}
		return out
	}
	for v := 0; v < g.G.N(); v++ {
		id := g.G.IDOf(v)
		viewJ := neighborIDs(g.G, v)
		matched := false
		for _, inst := range legal {
			if idx, ok := inst.G.IndexOf(id); ok {
				viewI := neighborIDs(inst.G, idx)
				if len(viewI) == len(viewJ) {
					same := true
					for nid := range viewJ {
						if !viewI[nid] {
							same = false
							break
						}
					}
					if same {
						matched = true
						break
					}
				}
			}
		}
		if !matched {
			return fmt.Errorf("lowerbound: node %d of J has a view alien to every legal instance", id)
		}
	}
	return nil
}

// SplitIDs deterministically partitions the identifier range [0, 2*q*n)
// into 2q sorted sets of n identifiers each (q a-sets then q b-sets),
// mimicking the paper's partition of {1..n^2}.
func SplitIDs(q, n int) (as, bs [][]graph.ID) {
	next := graph.ID(0)
	take := func() []graph.ID {
		out := make([]graph.ID, n)
		for i := range out {
			out[i] = next
			next++
		}
		return out
	}
	for i := 0; i < q; i++ {
		as = append(as, take())
	}
	for i := 0; i < q; i++ {
		bs = append(bs, take())
	}
	return as, bs
}
