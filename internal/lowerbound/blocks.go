// Package lowerbound implements the explicit constructions behind
// Theorem 2 of Feuilloley et al. (PODC 2020): the paths/cycles of blocks
// of Lemma 5 (no o(log n)-bit locally checkable proof for Forb(K_k)), the
// glued bipartite instances of Lemma 6 (Forb(K_{p,q})), and the executable
// pigeonhole attack that splices an accepted illegal instance out of two
// legal instances whose certificates collide.
package lowerbound

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/minor"
)

// BlockInstance is a path or cycle of blocks (Lemma 5). Blocks are
// K_{k-1} cliques on k-1 consecutive identifiers; consecutive blocks are
// joined by a block connection: all edges between the ceil((k-1)/2)
// rightmost nodes of the earlier block and the floor((k-1)/2) leftmost
// nodes of the later block.
type BlockInstance struct {
	G *graph.Graph
	K int
	// Blocks lists, for each block in connection order, its index r (the
	// IDs of block r are r(k-1) .. (r+1)(k-1)-1).
	Blocks []int
	// Cycle reports whether the last block connects back to the first.
	Cycle bool

	nodeOf map[int]map[int]int // block r -> offset -> node index
}

// NodeOf returns the graph index of the o-th node (0-based) of block r.
func (b *BlockInstance) NodeOf(r, o int) int { return b.nodeOf[r][o] }

// blockIDs returns the identifiers of block r for parameter k.
func blockID(k, r, o int) graph.ID { return graph.ID(r*(k-1) + o) }

// buildBlocks creates the blocks and connections for the given sequence.
func buildBlocks(k int, seq []int, cycle bool) (*BlockInstance, error) {
	if k < 4 {
		return nil, fmt.Errorf("lowerbound: k must be >= 4, got %d", k)
	}
	inst := &BlockInstance{
		G:      graph.New(len(seq) * (k - 1)),
		K:      k,
		Blocks: append([]int(nil), seq...),
		Cycle:  cycle,
		nodeOf: make(map[int]map[int]int, len(seq)),
	}
	for _, r := range seq {
		if inst.nodeOf[r] != nil {
			return nil, fmt.Errorf("lowerbound: block %d repeated", r)
		}
		inst.nodeOf[r] = make(map[int]int, k-1)
		for o := 0; o < k-1; o++ {
			idx, err := inst.G.AddNode(blockID(k, r, o))
			if err != nil {
				return nil, err
			}
			inst.nodeOf[r][o] = idx
		}
		// Complete the block into K_{k-1}.
		for o1 := 0; o1 < k-1; o1++ {
			for o2 := o1 + 1; o2 < k-1; o2++ {
				inst.G.MustAddEdge(inst.nodeOf[r][o1], inst.nodeOf[r][o2])
			}
		}
	}
	for s := 0; s+1 < len(seq); s++ {
		inst.connect(seq[s], seq[s+1])
	}
	if cycle {
		inst.connect(seq[len(seq)-1], seq[0])
	}
	return inst, nil
}

// connect adds the block connection from block ri to block rj.
func (b *BlockInstance) connect(ri, rj int) {
	k := b.K
	right := (k - 1 + 1) / 2 // ceil((k-1)/2)
	left := (k - 1) / 2      // floor((k-1)/2)
	for x := 0; x < right; x++ {
		u := b.nodeOf[ri][k-2-x] // rightmost nodes of ri
		for y := 0; y < left; y++ {
			v := b.nodeOf[rj][y] // leftmost nodes of rj
			b.G.MustAddEdge(u, v)
		}
	}
}

// PathOfBlocks builds the legal instance of Lemma 5: the starting block
// B_0, the ordinary blocks B_1..B_p in the order given by perm (perm is a
// permutation of {1..p}: position s holds block perm[s]), and the ending
// block B_{p+1}.
func PathOfBlocks(k, p int, perm []int) (*BlockInstance, error) {
	if len(perm) != p {
		return nil, fmt.Errorf("lowerbound: perm has %d entries, want %d", len(perm), p)
	}
	seen := make(map[int]bool, p)
	seq := make([]int, 0, p+2)
	seq = append(seq, 0)
	for _, r := range perm {
		if r < 1 || r > p || seen[r] {
			return nil, fmt.Errorf("lowerbound: invalid permutation entry %d", r)
		}
		seen[r] = true
		seq = append(seq, r)
	}
	seq = append(seq, p+1)
	return buildBlocks(k, seq, false)
}

// CycleOfBlocks builds the illegal instance of Lemma 5 from the given
// sequence of ordinary blocks (each in 1..p, distinct), connected in order
// and closed into a ring.
func CycleOfBlocks(k int, seq []int) (*BlockInstance, error) {
	if len(seq) < 2 {
		return nil, fmt.Errorf("lowerbound: a cycle of blocks needs >= 2 blocks")
	}
	return buildBlocks(k, seq, true)
}

// KkModel returns the explicit K_k minor model of a cycle of blocks
// (Claim 8): the k-1 nodes of the first block as singleton branch sets,
// plus the rest of the cycle contracted into one set.
func (b *BlockInstance) KkModel() (*minor.Model, error) {
	if !b.Cycle {
		return nil, fmt.Errorf("lowerbound: K_k model only exists for cycles of blocks")
	}
	first := b.Blocks[0]
	model := &minor.Model{}
	for o := 0; o < b.K-1; o++ {
		model.BranchSets = append(model.BranchSets, []int{b.nodeOf[first][o]})
	}
	var rest []int
	for _, r := range b.Blocks[1:] {
		for o := 0; o < b.K-1; o++ {
			rest = append(rest, b.nodeOf[r][o])
		}
	}
	model.BranchSets = append(model.BranchSets, rest)
	return model, nil
}

// VerifyIllegal checks that a cycle of blocks really contains K_k as a
// minor, using the explicit model.
func (b *BlockInstance) VerifyIllegal() error {
	model, err := b.KkModel()
	if err != nil {
		return err
	}
	return model.VerifyComplete(b.G, b.K)
}

// Stretch returns the radius-t variant of the instance used by the
// paper's remark that the lower bounds survive any constant verification
// radius: every edge is replaced by a path of length t (t-1 fresh
// interior vertices). For cycles of blocks it also returns the K_k minor
// model extended over the interior vertices (each interior path joins the
// branch set of its first endpoint), so illegality stays verifiable.
func (b *BlockInstance) Stretch(t int) (*graph.Graph, *minor.Model, error) {
	if t < 1 {
		return nil, nil, fmt.Errorf("lowerbound: stretch factor %d", t)
	}
	g := graph.New(b.G.N())
	maxID := graph.ID(-1 << 62)
	for v := 0; v < b.G.N(); v++ {
		id := b.G.IDOf(v)
		g.MustAddNode(id)
		if id > maxID {
			maxID = id
		}
	}
	nextID := maxID + 1

	// Branch-set assignment of the original vertices (cycles only).
	assign := make([]int, b.G.N())
	for i := range assign {
		assign[i] = -1
	}
	var model *minor.Model
	if b.Cycle {
		m, err := b.KkModel()
		if err != nil {
			return nil, nil, err
		}
		model = &minor.Model{BranchSets: make([][]int, len(m.BranchSets))}
		for si, set := range m.BranchSets {
			for _, v := range set {
				assign[v] = si
			}
			model.BranchSets[si] = append([]int(nil), set...)
		}
	}
	for _, e := range b.G.Edges() {
		prev := e.U
		for i := 1; i < t; i++ {
			w := g.MustAddNode(nextID)
			nextID++
			g.MustAddEdge(prev, w)
			if model != nil {
				// Interior vertices extend the first endpoint's branch set,
				// keeping it connected and adjacent to the second's.
				si := assign[e.U]
				model.BranchSets[si] = append(model.BranchSets[si], w)
			}
			prev = w
		}
		g.MustAddEdge(prev, e.V)
	}
	return g, model, nil
}
