package embedding

import (
	"testing"

	"github.com/planarcert/planarcert/internal/graph"
)

// k4Planar builds K4 with a planar rotation system (outer triangle 0-1-2,
// vertex 3 in the middle).
func k4Planar(t *testing.T) (*graph.Graph, *Rotation) {
	t.Helper()
	g := graph.NewWithNodes(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.MustAddEdge(i, j)
		}
	}
	r := NewRotation(4)
	r.Order[0] = []int{1, 3, 2}
	r.Order[1] = []int{2, 3, 0}
	r.Order[2] = []int{0, 3, 1}
	r.Order[3] = []int{0, 1, 2}
	return g, r
}

func TestFacesTriangle(t *testing.T) {
	g := graph.NewWithNodes(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	r := FromAdjacency(g)
	faces := r.Faces()
	if len(faces) != 2 {
		t.Fatalf("triangle faces = %d, want 2", len(faces))
	}
	for _, f := range faces {
		if len(f) != 3 {
			t.Fatalf("triangle face length = %d, want 3", len(f))
		}
	}
}

func TestK4PlanarRotation(t *testing.T) {
	g, r := k4Planar(t)
	ok, err := r.IsPlanar(g)
	if err != nil {
		t.Fatalf("IsPlanar: %v", err)
	}
	if !ok {
		t.Fatal("planar K4 rotation reported non-planar")
	}
	if f := r.FaceCount(); f != 4 {
		t.Fatalf("K4 planar embedding faces = %d, want 4", f)
	}
}

func TestK4NonPlanarRotation(t *testing.T) {
	g, r := k4Planar(t)
	// Swapping two entries at one vertex changes the face structure; for K4
	// this yields a genus-1 rotation.
	r.Order[3][0], r.Order[3][1] = r.Order[3][1], r.Order[3][0]
	ok, err := r.IsPlanar(g)
	if err != nil {
		t.Fatalf("IsPlanar: %v", err)
	}
	if ok {
		t.Fatal("twisted K4 rotation reported planar")
	}
	if genus := r.Genus(g); genus != 1 {
		t.Fatalf("twisted K4 genus = %d, want 1", genus)
	}
}

func TestK5RotationNeverPlanar(t *testing.T) {
	g := graph.NewWithNodes(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.MustAddEdge(i, j)
		}
	}
	r := FromAdjacency(g)
	ok, err := r.IsPlanar(g)
	if err != nil {
		t.Fatalf("IsPlanar: %v", err)
	}
	if ok {
		t.Fatal("a K5 rotation reported planar (impossible for any rotation)")
	}
}

func TestValidateCatchesMismatches(t *testing.T) {
	g := graph.NewWithNodes(3)
	g.MustAddEdge(0, 1)

	r := NewRotation(2)
	if err := r.Validate(g); err == nil {
		t.Fatal("Validate accepted wrong vertex count")
	}

	r = NewRotation(3)
	r.Order[0] = []int{1, 1}
	r.Order[1] = []int{0}
	if err := r.Validate(g); err == nil {
		t.Fatal("Validate accepted duplicate rotation entry")
	}

	r = NewRotation(3)
	r.Order[0] = []int{2}
	r.Order[1] = []int{0}
	if err := r.Validate(g); err == nil {
		t.Fatal("Validate accepted non-neighbor in rotation")
	}

	r = NewRotation(3)
	r.Order[0] = []int{1}
	r.Order[1] = []int{0}
	if err := r.Validate(g); err != nil {
		t.Fatalf("Validate rejected a correct rotation: %v", err)
	}
}

func TestTreeHasOneFace(t *testing.T) {
	g := graph.NewWithNodes(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(2, 4)
	r := FromAdjacency(g)
	if f := r.FaceCount(); f != 1 {
		t.Fatalf("tree faces = %d, want 1", f)
	}
	ok, err := r.IsPlanar(g)
	if err != nil || !ok {
		t.Fatalf("tree rotation not planar: ok=%v err=%v", ok, err)
	}
}

func TestDisconnectedGenus(t *testing.T) {
	// Two disjoint triangles: n=6, m=6, f per component 2 but face tracing
	// counts both; c=2 so genus = (4 - 6 + 6 - 4)/2 = 0.
	g := graph.NewWithNodes(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(3, 5)
	r := FromAdjacency(g)
	ok, err := r.IsPlanar(g)
	if err != nil {
		t.Fatalf("IsPlanar: %v", err)
	}
	if !ok {
		t.Fatal("two disjoint triangles reported non-planar")
	}
}

func TestInsertAfterBefore(t *testing.T) {
	r := NewRotation(1)
	r.Order[0] = []int{10, 20, 30}
	r.InsertAfter(0, 20, 25)
	want := []int{10, 20, 25, 30}
	for i, v := range want {
		if r.Order[0][i] != v {
			t.Fatalf("InsertAfter result = %v, want %v", r.Order[0], want)
		}
	}
	r.InsertBefore(0, 10, 5)
	if r.Order[0][0] != 5 || r.Order[0][1] != 10 {
		t.Fatalf("InsertBefore result = %v", r.Order[0])
	}
	r.PrependFirst(0, 1)
	if r.Order[0][0] != 1 {
		t.Fatalf("PrependFirst result = %v", r.Order[0])
	}
}

func TestInsertFallbacks(t *testing.T) {
	r := NewRotation(1)
	r.InsertAfter(0, -1, 7)
	if len(r.Order[0]) != 1 || r.Order[0][0] != 7 {
		t.Fatalf("InsertAfter on empty = %v", r.Order[0])
	}
	r.InsertBefore(0, 99, 8) // missing ref appends
	if len(r.Order[0]) != 2 || r.Order[0][1] != 8 {
		t.Fatalf("InsertBefore missing ref = %v", r.Order[0])
	}
}

func TestCloneIndependent(t *testing.T) {
	_, r := k4Planar(t)
	c := r.Clone()
	c.Order[0][0] = 99
	if r.Order[0][0] == 99 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestPositionOf(t *testing.T) {
	r := NewRotation(1)
	r.Order[0] = []int{4, 5, 6}
	if r.PositionOf(0, 5) != 1 {
		t.Fatal("PositionOf wrong")
	}
	if r.PositionOf(0, 9) != -1 {
		t.Fatal("PositionOf missing should be -1")
	}
}
