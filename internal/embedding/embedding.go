// Package embedding implements combinatorial embeddings (rotation systems)
// of graphs, face traversal, and the Euler-formula audit used to validate
// that a rotation system is a genuine planar embedding.
//
// A rotation system fixes, for every vertex, a cyclic order of its incident
// half-edges. A rotation system determines a set of faces by the standard
// face-tracing rule: from the directed edge (u,v), the next directed edge is
// (v,w) where w is the successor of u in the rotation at v. The rotation
// system is planar (genus 0) iff n - m + f = 1 + c for c connected
// components, i.e. n - m + f = 2 for connected graphs.
package embedding

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/graph"
)

// Rotation is a combinatorial embedding: Order[u] lists the neighbors of u
// in (counter)clockwise cyclic order. Which geometric orientation "first"
// corresponds to is irrelevant combinatorially; all algorithms in this
// module only rely on consistency.
type Rotation struct {
	Order [][]int
}

// NewRotation returns an empty rotation system for n vertices.
func NewRotation(n int) *Rotation {
	return &Rotation{Order: make([][]int, n)}
}

// FromAdjacency builds a rotation system that uses the graph's adjacency
// order as the cyclic order. This is *a* rotation system, not necessarily a
// planar one; useful for tests.
func FromAdjacency(g *graph.Graph) *Rotation {
	r := NewRotation(g.N())
	for u := 0; u < g.N(); u++ {
		r.Order[u] = append([]int(nil), g.Neighbors(u)...)
	}
	return r
}

// Validate checks that the rotation system matches the graph: every vertex
// lists exactly its neighbors, once each.
func (r *Rotation) Validate(g *graph.Graph) error {
	if len(r.Order) != g.N() {
		return fmt.Errorf("embedding: rotation has %d vertices, graph has %d", len(r.Order), g.N())
	}
	for u := 0; u < g.N(); u++ {
		if len(r.Order[u]) != g.Degree(u) {
			return fmt.Errorf("embedding: vertex %d rotation lists %d neighbors, degree is %d",
				u, len(r.Order[u]), g.Degree(u))
		}
		seen := make(map[int]bool, len(r.Order[u]))
		for _, v := range r.Order[u] {
			if !g.HasEdge(u, v) {
				return fmt.Errorf("embedding: rotation at %d lists non-neighbor %d", u, v)
			}
			if seen[v] {
				return fmt.Errorf("embedding: rotation at %d lists %d twice", u, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// half identifies the directed edge (u -> v).
type half struct{ u, v int }

// next returns, for the directed edge (u,v), the directed edge that follows
// it on the same face: (v, w) with w the successor of u in rotation at v.
func (r *Rotation) next(u, v int) (int, int) {
	rot := r.Order[v]
	for i, x := range rot {
		if x == u {
			return v, rot[(i+1)%len(rot)]
		}
	}
	// Unreachable for validated rotations.
	return v, u
}

// Faces traces every face of the rotation system. Each face is returned as
// the cyclic sequence of vertices visited (one entry per directed edge on
// the face boundary).
func (r *Rotation) Faces() [][]int {
	visited := make(map[half]bool)
	var faces [][]int
	for u := range r.Order {
		for _, v := range r.Order[u] {
			if visited[half{u, v}] {
				continue
			}
			var face []int
			cu, cv := u, v
			for !visited[half{cu, cv}] {
				visited[half{cu, cv}] = true
				face = append(face, cu)
				cu, cv = r.next(cu, cv)
			}
			faces = append(faces, face)
		}
	}
	return faces
}

// Genus computes the total (orientable) genus of the rotation system on
// graph g, summed over connected components. For each component, Euler's
// relation on its embedding surface gives n_c - m_c + f_c = 2 - 2*genus_c,
// where f_c counts the faces traced within that component (an isolated
// vertex traces no half-edge and contributes its single face directly).
func (r *Rotation) Genus(g *graph.Graph) int {
	comps := g.Components()
	compOf := make([]int, g.N())
	for ci, comp := range comps {
		for _, v := range comp {
			compOf[v] = ci
		}
	}
	facesPer := make([]int, len(comps))
	for _, face := range r.Faces() {
		facesPer[compOf[face[0]]]++
	}
	edgesPer := make([]int, len(comps))
	for _, e := range g.Edges() {
		edgesPer[compOf[e.U]]++
	}
	total := 0
	for ci, comp := range comps {
		f := facesPer[ci]
		if edgesPer[ci] == 0 {
			f = 1 // an isolated vertex has exactly one face
		}
		total += (2 - len(comp) + edgesPer[ci] - f) / 2
	}
	return total
}

// IsPlanar reports whether the rotation system is a planar (genus-0)
// embedding of g, after validating structural consistency.
func (r *Rotation) IsPlanar(g *graph.Graph) (bool, error) {
	if err := r.Validate(g); err != nil {
		return false, err
	}
	if g.N() == 0 {
		return true, nil
	}
	return r.Genus(g) == 0, nil
}

// PositionOf returns the index of neighbor v in u's rotation, or -1.
func (r *Rotation) PositionOf(u, v int) int {
	for i, x := range r.Order[u] {
		if x == v {
			return i
		}
	}
	return -1
}

// InsertAfter inserts neighbor w into u's rotation immediately after ref.
// If ref is -1 (or u's rotation is empty), w is appended.
func (r *Rotation) InsertAfter(u, ref, w int) {
	if ref < 0 || len(r.Order[u]) == 0 {
		r.Order[u] = append(r.Order[u], w)
		return
	}
	i := r.PositionOf(u, ref)
	if i < 0 {
		r.Order[u] = append(r.Order[u], w)
		return
	}
	r.Order[u] = append(r.Order[u], 0)
	copy(r.Order[u][i+2:], r.Order[u][i+1:])
	r.Order[u][i+1] = w
}

// InsertBefore inserts neighbor w into u's rotation immediately before ref.
func (r *Rotation) InsertBefore(u, ref, w int) {
	if ref < 0 || len(r.Order[u]) == 0 {
		r.Order[u] = append(r.Order[u], w)
		return
	}
	i := r.PositionOf(u, ref)
	if i < 0 {
		r.Order[u] = append(r.Order[u], w)
		return
	}
	r.Order[u] = append(r.Order[u], 0)
	copy(r.Order[u][i+1:], r.Order[u][i:])
	r.Order[u][i] = w
}

// PrependFirst inserts w at the front of u's rotation.
func (r *Rotation) PrependFirst(u, w int) {
	r.Order[u] = append([]int{w}, r.Order[u]...)
}

// Clone returns a deep copy of the rotation system.
func (r *Rotation) Clone() *Rotation {
	c := NewRotation(len(r.Order))
	for u := range r.Order {
		c.Order[u] = append([]int(nil), r.Order[u]...)
	}
	return c
}

// FaceCount returns the number of faces (convenience wrapper).
func (r *Rotation) FaceCount() int { return len(r.Faces()) }
