package dist

import (
	"time"

	"github.com/planarcert/planarcert/internal/qos"
)

// Budget is a shared, bounded pool of verification-worker slots. Many
// engines — one per live server session, for example — can draw their
// parallel fan-out from one Budget so that the process-wide number of
// extra verification goroutines stays bounded no matter how many
// verifications run at once.
//
// The bound applies to *extra* workers only: every RunPLS keeps one
// worker regardless of slot availability, so a verification never
// blocks on (or deadlocks through) the budget — an exhausted budget
// degrades a run to sequential execution instead of stalling it. With
// S slots and E concurrent engine runs the fleet therefore uses at
// most S+E verification goroutines.
//
// Since the fair-share rework, a Budget is a thin veneer over a
// qos.Scheduler: contended slots are handed out by weighted fair
// queueing across per-consumer claimants instead of FIFO, so one
// consumer's storm of sweeps cannot monopolise the pool (see
// Claimant and LimitClaimant). Engines configured with plain Limit
// share one anonymous batch-class claimant and behave like the old
// semaphore, except that slot handout under contention is fair.
//
// A Budget is safe for concurrent use. The zero *Budget (nil) means
// unlimited: engines without a budget size their pools by Workers and
// GOMAXPROCS alone.
type Budget struct {
	s    *qos.Scheduler
	anon *qos.Claimant
}

// NewBudget returns a budget with the given number of extra-worker
// slots and default QoS weights. Slots below 1 are clamped to 1 so a
// budget always admits some parallelism.
func NewBudget(slots int) *Budget {
	return NewBudgetWeights(slots, nil)
}

// NewBudgetWeights returns a budget with the given slot count (clamped
// up to 1) and per-class fair-share weights; missing classes take
// qos.DefaultWeights.
func NewBudgetWeights(slots int, weights map[qos.Class]int) *Budget {
	s := qos.NewScheduler(slots, weights)
	return &Budget{s: s, anon: s.Claimant("shared", qos.Batch)}
}

// Scheduler exposes the underlying fair-share scheduler (per-class
// grant counters, queue depth) for metrics exporters.
func (b *Budget) Scheduler() *qos.Scheduler { return b.s }

// Claimant mints a named consumer identity in the given QoS class;
// engines configured with LimitClaimant(c) compete for the budget's
// slots under c's weight. One claimant per server session is the
// intended granularity.
func (b *Budget) Claimant(name string, class qos.Class) *qos.Claimant {
	return b.s.Claimant(name, class)
}

// Slots returns the configured slot count.
func (b *Budget) Slots() int { return b.s.Slots() }

// InUse returns the number of slots currently held.
func (b *Budget) InUse() int { return b.s.InUse() }

// tryAcquire takes one slot for the shared anonymous claimant if one is
// available and no fair-queue waiter is pending; it never blocks.
func (b *Budget) tryAcquire() bool { return b.anon.TryAcquire() }

// release returns a slot taken by tryAcquire or acquireWait.
func (b *Budget) release() { b.anon.Release() }

// acquireWait blocks up to d for a slot, abandoning the wait early if
// stop closes first (the sweep it would join has no shards left, so a
// late worker would have nothing to do). It reports whether a slot was
// acquired; on false the caller holds nothing.
func (b *Budget) acquireWait(d time.Duration, stop <-chan struct{}) bool {
	return b.anon.AcquireWait(d, stop)
}

// Limit makes the engine draw its extra parallel workers from the
// shared budget: worker 0 of each RunPLS always runs, workers 1..k-1
// each need a free slot at spawn time and return theirs when the run
// completes. Engines sharing a Budget thus degrade gracefully toward
// sequential execution under load instead of oversubscribing the
// machine. The engine competes as the budget's shared batch-class
// claimant; use LimitClaimant to compete under a per-session identity
// and QoS class.
func Limit(b *Budget) Option {
	return func(e *Engine) {
		if b != nil {
			e.claim = b.anon
		}
	}
}

// LimitClaimant makes the engine draw its extra workers from the
// scheduler behind c (see Budget.Claimant): under contention, freed
// slots are granted to the waiting claimant with the smallest
// virtual time, so each session's sweeps receive the share its QoS
// class weight assigns. A nil claimant leaves the engine unlimited.
func LimitClaimant(c *qos.Claimant) Option {
	return func(e *Engine) { e.claim = c }
}

// BudgetPatience lets a sweep wait up to d for one extra slot when the
// shared budget is exhausted at spawn time, instead of giving the slot
// up immediately. The wait runs on a side goroutine — worker 0 makes
// progress throughout, so the sweep is never delayed by more than its
// own remaining work — and is abandoned as soon as the sweep runs out
// of shards. The time actually spent waiting is what the budget-wait
// tracing span (see WithSpan) and the planarcertd budget-wait histogram
// measure. The default of 0 preserves the historical never-wait
// semantics; d <= 0 is ignored.
func BudgetPatience(d time.Duration) Option {
	return func(e *Engine) {
		if d > 0 {
			e.patience = d
		}
	}
}
