package dist

import "time"

// Budget is a shared, bounded pool of verification-worker slots. Many
// engines — one per live server session, for example — can draw their
// parallel fan-out from one Budget so that the process-wide number of
// extra verification goroutines stays bounded no matter how many
// verifications run at once.
//
// The bound applies to *extra* workers only: every RunPLS keeps one
// worker regardless of slot availability, so a verification never
// blocks on (or deadlocks through) the budget — an exhausted budget
// degrades a run to sequential execution instead of stalling it. With
// S slots and E concurrent engine runs the fleet therefore uses at
// most S+E verification goroutines.
//
// A Budget is safe for concurrent use. The zero *Budget (nil) means
// unlimited: engines without a budget size their pools by Workers and
// GOMAXPROCS alone.
type Budget struct {
	sem chan struct{}
}

// NewBudget returns a budget with the given number of extra-worker
// slots. Slots below 1 are clamped to 1 so a budget always admits some
// parallelism.
func NewBudget(slots int) *Budget {
	if slots < 1 {
		slots = 1
	}
	return &Budget{sem: make(chan struct{}, slots)}
}

// Slots returns the configured slot count.
func (b *Budget) Slots() int { return cap(b.sem) }

// InUse returns the number of slots currently held.
func (b *Budget) InUse() int { return len(b.sem) }

// tryAcquire takes one slot if one is immediately available; it never
// blocks.
func (b *Budget) tryAcquire() bool {
	select {
	case b.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a slot taken by tryAcquire or acquireWait.
func (b *Budget) release() { <-b.sem }

// acquireWait blocks up to d for a slot, abandoning the wait early if
// stop closes first (the sweep it would join has no shards left, so a
// late worker would have nothing to do). It reports whether a slot was
// acquired; on false the caller holds nothing.
func (b *Budget) acquireWait(d time.Duration, stop <-chan struct{}) bool {
	select {
	case b.sem <- struct{}{}:
		return true
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case b.sem <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-stop:
		return false
	}
}

// Limit makes the engine draw its extra parallel workers from the
// shared budget: worker 0 of each RunPLS always runs, workers 1..k-1
// each need a free slot at spawn time and return theirs when the run
// completes. Engines sharing a Budget thus degrade gracefully toward
// sequential execution under load instead of oversubscribing the
// machine.
func Limit(b *Budget) Option { return func(e *Engine) { e.budget = b } }

// BudgetPatience lets a sweep wait up to d for one extra slot when the
// shared budget is exhausted at spawn time, instead of giving the slot
// up immediately. The wait runs on a side goroutine — worker 0 makes
// progress throughout, so the sweep is never delayed by more than its
// own remaining work — and is abandoned as soon as the sweep runs out
// of shards. The time actually spent waiting is what the budget-wait
// tracing span (see WithSpan) and the planarcertd budget-wait histogram
// measure. The default of 0 preserves the historical never-wait
// semantics; d <= 0 is ignored.
func BudgetPatience(d time.Duration) Option {
	return func(e *Engine) {
		if d > 0 {
			e.patience = d
		}
	}
}
