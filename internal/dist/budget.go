package dist

// Budget is a shared, bounded pool of verification-worker slots. Many
// engines — one per live server session, for example — can draw their
// parallel fan-out from one Budget so that the process-wide number of
// extra verification goroutines stays bounded no matter how many
// verifications run at once.
//
// The bound applies to *extra* workers only: every RunPLS keeps one
// worker regardless of slot availability, so a verification never
// blocks on (or deadlocks through) the budget — an exhausted budget
// degrades a run to sequential execution instead of stalling it. With
// S slots and E concurrent engine runs the fleet therefore uses at
// most S+E verification goroutines.
//
// A Budget is safe for concurrent use. The zero *Budget (nil) means
// unlimited: engines without a budget size their pools by Workers and
// GOMAXPROCS alone.
type Budget struct {
	sem chan struct{}
}

// NewBudget returns a budget with the given number of extra-worker
// slots. Slots below 1 are clamped to 1 so a budget always admits some
// parallelism.
func NewBudget(slots int) *Budget {
	if slots < 1 {
		slots = 1
	}
	return &Budget{sem: make(chan struct{}, slots)}
}

// Slots returns the configured slot count.
func (b *Budget) Slots() int { return cap(b.sem) }

// InUse returns the number of slots currently held.
func (b *Budget) InUse() int { return len(b.sem) }

// tryAcquire takes one slot if one is immediately available; it never
// blocks.
func (b *Budget) tryAcquire() bool {
	select {
	case b.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a slot taken by tryAcquire.
func (b *Budget) release() { <-b.sem }

// Limit makes the engine draw its extra parallel workers from the
// shared budget: worker 0 of each RunPLS always runs, workers 1..k-1
// each need a free slot at spawn time and return theirs when the run
// completes. Engines sharing a Budget thus degrade gracefully toward
// sequential execution under load instead of oversubscribing the
// machine.
func Limit(b *Budget) Option { return func(e *Engine) { e.budget = b } }
