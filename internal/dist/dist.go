package dist

import (
	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/graph"
)

// NeighborCert is one neighbor's contribution to a node's 1-round view:
// its identifier and the certificate it was assigned.
type NeighborCert struct {
	ID   graph.ID
	Cert bits.Certificate
}

// View is everything a node sees when it runs the 1-round verifier: its
// own identifier, degree and certificate, and one NeighborCert per
// neighbor. Views handed out by the Engine alias shared arrays; verifiers
// must not mutate Neighbors or retain it past the call.
//
// Scratch is the decode arena of the worker running this node's
// verification (nil on views assembled outside the engine). Verifiers
// may decode into it to stay allocation-free in steady state; they must
// treat its contents as garbage on entry and must not retain anything
// stored in it past the call.
type View struct {
	ID        graph.ID
	Degree    int
	Cert      bits.Certificate
	Neighbors []NeighborCert
	Scratch   *Scratch
}

// Outcome summarises one verification round over the whole network.
type Outcome struct {
	// N is the number of nodes that ran the verifier.
	N int
	// Rejecting lists the rejecting nodes in node-index order (empty on
	// global acceptance). Under FailFast it holds at least one rejecting
	// node but may omit later ones.
	Rejecting []graph.ID
	// Reasons maps each rejecting node to its verifier's error.
	Reasons map[graph.ID]string
	// MaxCertBit is the largest certificate, in bits (the paper's
	// complexity measure).
	MaxCertBit int
	// TotalCertBits is the sum of all certificate sizes.
	TotalCertBits int
	// Messages counts the certificate messages exchanged in the round:
	// every node sends its certificate to every neighbor, so 2m in total.
	Messages int
	// MaxMsgBit is the largest message, in bits.
	MaxMsgBit int
}

// AllAccept reports global acceptance: no node rejected.
func (o *Outcome) AllAccept() bool { return len(o.Rejecting) == 0 }

// AvgCertBits returns the mean certificate size in bits.
func (o *Outcome) AvgCertBits() float64 {
	if o.N == 0 {
		return 0
	}
	return float64(o.TotalCertBits) / float64(o.N)
}

// FirstRejection returns the first rejecting node (in node-index order)
// and its reason; ok is false if every node accepted.
func (o *Outcome) FirstRejection() (id graph.ID, reason string, ok bool) {
	if len(o.Rejecting) == 0 {
		return 0, "", false
	}
	id = o.Rejecting[0]
	return id, o.Reasons[id], true
}

// RunPLS executes one verification round of a proof-labeling scheme on g
// with the given (possibly adversarial) certificate assignment: every
// node runs verify on its 1-round view. Nodes missing from certs see a
// zero-length certificate. It is the package-level convenience around
// NewEngine(g).RunPLS for one-shot callers.
func RunPLS(g *graph.Graph, certs map[graph.ID]bits.Certificate, verify func(View) error) *Outcome {
	return NewEngine(g).RunPLS(certs, verify)
}
