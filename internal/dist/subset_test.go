package dist_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// TestSubsetMatchesFullRun checks that verifying the full index set via
// RunPLSSubset agrees with RunPLS, sequentially and in parallel, on
// honest and corrupted certificates.
func TestSubsetMatchesFullRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.StackedTriangulation(80, rng)
	scheme := pls.SpanningTreeScheme{}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	honest, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	run := func(t *testing.T, certs map[graph.ID]bits.Certificate) {
		t.Helper()
		full := dist.NewEngine(g, dist.Sequential()).RunPLS(certs, scheme.Verify)
		for name, eng := range map[string]*dist.Engine{
			"seq": dist.NewEngine(g, dist.Sequential()),
			"par": dist.NewEngine(g, dist.Parallel(4), dist.ShardSize(3)),
		} {
			sub := eng.RunPLSSubset(certs, scheme.Verify, all)
			if sub.N != full.N || len(sub.Rejecting) != len(full.Rejecting) {
				t.Fatalf("%s: subset over all nodes disagrees with RunPLS", name)
			}
			for i, id := range sub.Rejecting {
				if full.Rejecting[i] != id || sub.Reasons[id] != full.Reasons[id] {
					t.Fatalf("%s: rejection mismatch at %d", name, id)
				}
			}
			if sub.Messages != full.Messages || sub.MaxCertBit != full.MaxCertBit || sub.TotalCertBits != full.TotalCertBits {
				t.Fatalf("%s: accounting mismatch: %+v vs %+v", name, sub, full)
			}
		}
	}
	run(t, honest)

	bad := make(map[graph.ID]bits.Certificate, len(honest))
	for id, c := range honest {
		bad[id] = c
	}
	vid := g.IDOf(17)
	data := append([]byte(nil), bad[vid].Data...)
	data[0] ^= 0x80
	bad[vid] = bits.Certificate{Data: data, Bits: bad[vid].Bits}
	run(t, bad)
}

// TestSubsetLocalisesCorruption checks the frontier-soundness contract:
// a corrupted certificate is detected by any subset meeting the node's
// 1-hop closure, and invisible to subsets that avoid it.
func TestSubsetLocalisesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gen.StackedTriangulation(60, rng)
	scheme := pls.SpanningTreeScheme{}
	certs, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	victim := 23
	vid := g.IDOf(victim)
	data := append([]byte(nil), certs[vid].Data...)
	if len(data) == 0 {
		t.Fatal("empty certificate")
	}
	data[len(data)/2] ^= 0x40
	certs[vid] = bits.Certificate{Data: data, Bits: certs[vid].Bits}

	closure := map[int]bool{victim: true}
	for _, w := range g.Neighbors(victim) {
		closure[w] = true
	}
	var inside, outside []int
	for v := 0; v < g.N(); v++ {
		if closure[v] {
			inside = append(inside, v)
		} else {
			outside = append(outside, v)
		}
	}
	eng := dist.NewEngine(g)
	if out := eng.RunPLSSubset(certs, scheme.Verify, inside); out.AllAccept() {
		t.Fatalf("corruption at node %d not caught by its 1-hop closure", vid)
	}
	if out := eng.RunPLSSubset(certs, scheme.Verify, outside); !out.AllAccept() {
		t.Fatalf("nodes outside the closure rejected: %v", out.Reasons)
	}
}

// TestSubsetTracksLiveGraph checks that RunPLSSubset reads the live
// topology even after the engine's CSR layout was snapshotted by a
// full RunPLS.
func TestSubsetTracksLiveGraph(t *testing.T) {
	g := gen.Cycle(8)
	scheme := pls.SpanningTreeScheme{}
	certs, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	eng := dist.NewEngine(g)
	if out := eng.RunPLS(certs, scheme.Verify); !out.AllAccept() {
		t.Fatalf("honest cycle rejected: %v", out.Reasons)
	}
	// Cut the cycle: node 1 loses the tree edge to its parent 0 and must
	// reject on its live view.
	if !g.RemoveEdge(0, 1) {
		t.Fatal("edge {0,1} missing")
	}
	out := eng.RunPLSSubset(certs, scheme.Verify, []int{1})
	if out.AllAccept() {
		t.Fatal("subset verification missed the removed parent edge")
	}
	// Duplicate and out-of-range indices are dropped.
	out = eng.RunPLSSubset(certs, scheme.Verify, []int{2, 2, -1, 99, 3})
	if out.N != 2 {
		t.Fatalf("want 2 verified nodes, got %d", out.N)
	}
}
