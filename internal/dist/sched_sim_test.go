package dist

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/qos"
)

// TestBudgetFairShareSimulation drives a fully contended 1-slot Budget
// through a scripted closed loop — every grant and release is
// sequenced by the test, with no sleeps and no clock — and checks that
// each claimant's share of grants lands within ±10% of what its QoS
// weight assigns. Two workers per claimant keep every claimant
// backlogged at each handoff, so the measured shares are the
// scheduler's decisions, not arrival-timing artifacts.
func TestBudgetFairShareSimulation(t *testing.T) {
	cases := []struct {
		name    string
		weights map[qos.Class]int
		mix     []qos.Class
	}{
		{"default-one-per-class", nil,
			[]qos.Class{qos.Interactive, qos.Batch, qos.Background}},
		{"flat", map[qos.Class]int{qos.Interactive: 1, qos.Batch: 1, qos.Background: 1},
			[]qos.Class{qos.Interactive, qos.Batch, qos.Background}},
		{"repair-vs-storms", nil,
			[]qos.Class{qos.Interactive, qos.Background, qos.Background, qos.Background}},
		{"5-3-1", map[qos.Class]int{qos.Interactive: 5, qos.Batch: 3, qos.Background: 1},
			[]qos.Class{qos.Interactive, qos.Batch, qos.Batch, qos.Background}},
	}
	const (
		rounds  = 1500
		perClmt = 2 // workers per claimant: one can hold while one stays queued
	)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBudgetWeights(1, tc.weights)
			seed := b.Claimant("seed", qos.Batch)
			if !seed.TryAcquire() {
				t.Fatal("seed hold failed")
			}
			claimants := make([]*qos.Claimant, len(tc.mix))
			for i, class := range tc.mix {
				claimants[i] = b.Claimant("sim", class)
			}
			nworkers := perClmt * len(claimants)
			served := make(chan int) // worker id that just got the slot
			resume := make([]chan struct{}, nworkers)
			quit := make(chan struct{})
			var stopped atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < nworkers; w++ {
				resume[w] = make(chan struct{})
				wg.Add(1)
				go func(w int, c *qos.Claimant) {
					defer wg.Done()
					for {
						if !c.AcquireWait(0, quit) {
							return
						}
						served <- w
						<-resume[w]
						c.Release()
						if stopped.Load() {
							return
						}
					}
				}(w, claimants[w/perClmt])
			}
			// Let every worker queue up before the first handoff so the
			// counted trace starts from a fully backlogged scheduler.
			for b.Scheduler().QueueDepth() < nworkers {
				runtime.Gosched()
			}
			seed.Release()
			counts := make([]int, len(claimants))
			var sumW float64
			for _, class := range tc.mix {
				sumW += float64(b.Scheduler().Weight(class))
			}
			for i := 0; i < rounds; i++ {
				w := <-served
				counts[w/perClmt]++
				resume[w] <- struct{}{}
			}
			// Shut the loop down deterministically: served workers now
			// exit after release instead of re-queueing, and waiters
			// abandon on quit.
			stopped.Store(true)
			close(quit)
			allDone := make(chan struct{})
			go func() { wg.Wait(); close(allDone) }()
			for draining := true; draining; {
				select {
				case w := <-served:
					resume[w] <- struct{}{}
				case <-allDone:
					draining = false
				}
			}
			for i, c := range claimants {
				if counts[i] == 0 {
					t.Fatalf("claimant %d (%s) starved: 0 of %d grants", i, c.Class(), rounds)
				}
				want := float64(b.Scheduler().Weight(c.Class())) / sumW
				got := float64(counts[i]) / rounds
				if diff := got - want; diff > 0.1*want+0.01 || -diff > 0.1*want+0.01 {
					t.Errorf("claimant %d (%s, weight %d): share %.4f of grants, want %.4f +/- 10%%",
						i, c.Class(), b.Scheduler().Weight(c.Class()), got, want)
				}
			}
		})
	}
}

// TestLimitClaimantBoundsParallelism checks that per-claimant limiting
// preserves the Budget progress guarantee: engines under LimitClaimant
// still complete with the pool exhausted (worker 0 is unbudgeted).
func TestLimitClaimantBoundsParallelism(t *testing.T) {
	b := NewBudget(1)
	hog := b.Claimant("hog", qos.Background)
	if !hog.TryAcquire() {
		t.Fatal("exhausting the budget failed")
	}
	defer hog.Release()
	g := gen.Grid(8, 8)
	eng := NewEngine(g, Parallel(4), ShardSize(8), LimitClaimant(b.Claimant("run", qos.Interactive)))
	out := eng.RunPLS(map[graph.ID]bits.Certificate{}, func(v View) error { return nil })
	if len(out.Rejecting) != 0 {
		t.Fatalf("unexpected rejections: %v", out.Rejecting)
	}
	if out.N != g.N() {
		t.Fatalf("verified %d nodes, want %d", out.N, g.N())
	}
}
