package dist

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/obs"
	"github.com/planarcert/planarcert/internal/qos"
)

// mode selects how RunPLS schedules the per-node verifications.
type mode int

const (
	// modeAuto picks parallel execution when the machine has more than
	// one processor and the network is large enough to amortise the
	// worker handoff; small inputs run sequentially.
	modeAuto mode = iota
	// modeSequential verifies nodes 0..n-1 on the calling goroutine.
	modeSequential
	// modeParallel always fans out across the worker pool.
	modeParallel
)

// defaultShardSize is the number of consecutive node indices a worker
// claims at a time. Shards keep the atomic handoff off the per-node path
// while staying small enough to balance skewed degree distributions
// (a wheel hub's verification costs ~n times a rim node's).
const defaultShardSize = 128

// Engine simulates a synchronous CONGEST network over a fixed topology.
// It serves two roles: the sharded verification executor for
// proof-labeling schemes (RunPLS), and a general synchronous
// message-passing simulator with bit-exact cost accounting (Round,
// Broadcast) used by the distributed preprocessing phase.
//
// The exported counters accumulate across Round and Broadcast calls.
// RunPLS reports its (single) round's costs in the returned Outcome
// instead, so verification sweeps do not perturb preprocessing accounts.
//
// An Engine snapshots the topology lazily at the first RunPLS call and
// reuses the layout afterwards; build a fresh Engine after mutating the
// graph. Engines are not safe for concurrent use — the parallelism is
// inside RunPLS, not across calls.
type Engine struct {
	// Rounds counts synchronous rounds executed via Round/Broadcast.
	Rounds int
	// Messages counts individual node-to-node messages.
	Messages int
	// TotalBits sums the sizes of all messages sent.
	TotalBits int
	// MaxMsgBit is the largest single message, in bits.
	MaxMsgBit int

	g   *graph.Graph
	lay *layout

	mode      mode
	workers   int
	shardSize int
	failFast  bool
	claim     *qos.Claimant
	patience  time.Duration
	span      *obs.Span
	scratch   *ScratchPool
}

// Option configures an Engine at construction.
type Option func(*Engine)

// Sequential forces single-goroutine verification.
func Sequential() Option { return func(e *Engine) { e.mode = modeSequential } }

// Parallel forces worker-pool verification with the given number of
// workers; workers <= 0 keeps the default of GOMAXPROCS.
func Parallel(workers int) Option {
	return func(e *Engine) {
		e.mode = modeParallel
		if workers > 0 {
			e.workers = workers
		}
	}
}

// Workers bounds the worker pool without forcing a mode (0 keeps the
// default of GOMAXPROCS); in automatic mode the bound also decides
// whether fanning out is worthwhile.
func Workers(workers int) Option {
	return func(e *Engine) {
		if workers > 0 {
			e.workers = workers
		}
	}
}

// ShardSize sets how many consecutive nodes a worker claims per handoff.
func ShardSize(s int) Option {
	return func(e *Engine) {
		if s > 0 {
			e.shardSize = s
		}
	}
}

// FailFast makes RunPLS stop scheduling work once any node has rejected.
// The Outcome then reports at least one rejecting node (and agrees with
// exhaustive mode on acceptance), but may omit later rejections.
func FailFast() Option { return func(e *Engine) { e.failFast = true } }

// Exhaustive restores the default: every node is verified and every
// rejection is reported, making sequential and parallel Outcomes
// identical.
func Exhaustive() Option { return func(e *Engine) { e.failFast = false } }

// WithSpan attaches a parent tracing span to the engine: RunPLS and
// RunPLSSubset record a sweep child span (node/frontier count,
// certificate bits, messages, rejections) with a nested budget-wait
// child accounting slot acquisition, and Round/Broadcast record
// per-call spans with round index, message count, and bit cost. A nil
// span — the default — records nothing and costs nothing beyond a
// pointer test (obs spans are nil-safe).
func WithSpan(sp *obs.Span) Option { return func(e *Engine) { e.span = sp } }

// NewEngine builds an engine over g. The default configuration is
// automatic mode selection, GOMAXPROCS workers, exhaustive reporting.
func NewEngine(g *graph.Graph, opts ...Option) *Engine {
	e := &Engine{
		g:         g,
		workers:   runtime.GOMAXPROCS(0),
		shardSize: defaultShardSize,
	}
	for _, o := range opts {
		o(e)
	}
	if e.workers < 1 {
		e.workers = 1
	}
	return e
}

func (e *Engine) layoutFor() *layout {
	if e.lay == nil {
		e.lay = newLayout(e.g)
	}
	return e.lay
}

// scratchPool returns the engine's scratch pool, creating a private one
// on first use when WithScratch did not install a shared pool.
func (e *Engine) scratchPool() *ScratchPool {
	if e.scratch == nil {
		e.scratch = NewScratchPool()
	}
	return e.scratch
}

func (e *Engine) parallel(n int) bool {
	switch e.mode {
	case modeSequential:
		return false
	case modeParallel:
		return true
	default:
		return e.workers > 1 && n >= 2*e.shardSize
	}
}

// RunPLS executes one verification round: every node runs verify on its
// zero-copy 1-round view of certs. Missing certificates verify as
// zero-length. A panic inside verify is contained to the panicking node
// and reported as that node's rejection.
func (e *Engine) RunPLS(certs map[graph.ID]bits.Certificate, verify func(View) error) *Outcome {
	lay := e.layoutFor()
	n := lay.n
	out := &Outcome{N: n}
	sweep := e.span.Child(obs.SpanSweep)
	sweep.SetStr("mode", "full")
	sweep.SetInt("nodes", int64(n))

	// Single pass: resolve certificates by node index, account sizes and
	// messages (each node ships its certificate to every neighbor).
	for u := 0; u < n; u++ {
		c := certs[lay.ids[u]]
		lay.certs[u] = c
		lay.errs[u] = nil
		out.TotalCertBits += c.Bits
		if c.Bits > out.MaxCertBit {
			out.MaxCertBit = c.Bits
		}
		if deg := lay.degree(u); deg > 0 {
			out.Messages += deg
			if c.Bits > out.MaxMsgBit {
				out.MaxMsgBit = c.Bits
			}
		}
	}
	// Refresh the arena's certificate slots in CSR order.
	for k, v := range lay.nbr {
		lay.arena[k].Cert = lay.certs[v]
	}

	if e.parallel(n) {
		e.verifyParallel(lay, verify, sweep)
	} else {
		e.verifySequential(lay, verify)
	}

	// Deterministic reduction in node-index order.
	for u := 0; u < n; u++ {
		if err := lay.errs[u]; err != nil {
			id := lay.ids[u]
			out.Rejecting = append(out.Rejecting, id)
			if out.Reasons == nil {
				out.Reasons = make(map[graph.ID]string)
			}
			out.Reasons[id] = err.Error()
		}
	}
	sweep.SetInt("cert_bits", int64(out.TotalCertBits))
	sweep.SetInt("max_cert_bit", int64(out.MaxCertBit))
	sweep.SetInt("messages", int64(out.Messages))
	sweep.SetInt("rejecting", int64(len(out.Rejecting)))
	sweep.End()
	return out
}

func (e *Engine) verifySequential(lay *layout, verify func(View) error) {
	pool := e.scratchPool()
	sc := pool.get()
	defer pool.put(sc)
	for u := 0; u < lay.n; u++ {
		if err := verifyNode(lay, u, sc, verify); err != nil {
			lay.errs[u] = err
			if e.failFast {
				return
			}
		}
	}
}

func (e *Engine) verifyParallel(lay *layout, verify func(View) error, sweep *obs.Span) {
	shard := e.shardSize
	nshards := (lay.n + shard - 1) / shard
	e.fanOut(nshards, sweep, func(s int, sc *Scratch) bool {
		lo := s * shard
		hi := lo + shard
		if hi > lay.n {
			hi = lay.n
		}
		for u := lo; u < hi; u++ {
			if err := verifyNode(lay, u, sc, verify); err != nil {
				lay.errs[u] = err
				if e.failFast {
					return true
				}
			}
		}
		return false
	})
}

// fanOut drains nshards shards across worker 0 plus up to workers-1
// extra workers; verifyShard handles one shard with the worker's own
// Scratch and reports whether the sweep should stop early (fail-fast).
// Each worker borrows exactly one Scratch from the engine's pool for
// the whole drain, so scratch state is worker-local by construction and
// a sweep's scratch traffic is O(workers), not O(nodes). Worker 0
// always runs, so an exhausted budget degrades the sweep to sequential
// execution instead of stalling it; every extra worker needs a free
// budget slot at spawn time (see Limit). The acquisition outcome is
// recorded on sweep's budget-wait child span as wanted/granted/denied
// slot counts; with BudgetPatience, a single late joiner waits
// (bounded, on the side) for the next released slot and the span's
// duration measures that wait.
func (e *Engine) fanOut(nshards int, sweep *obs.Span, verifyShard func(s int, sc *Scratch) bool) {
	workers := e.workers
	if workers > nshards {
		workers = nshards
	}
	pool := e.scratchPool()
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	// done closes once the sweep has no shards left to hand out —
	// worker 0 runs unconditionally, so some worker always reaches
	// exhaustion (or the fail-fast stop) and a patient late joiner is
	// never stranded waiting for work that cannot arrive.
	done := make(chan struct{})
	var doneOnce sync.Once
	loop := func() {
		defer doneOnce.Do(func() { close(done) })
		sc := pool.get()
		defer pool.put(sc)
		for {
			if e.failFast && stop.Load() {
				return
			}
			s := int(next.Add(1)) - 1
			if s >= nshards {
				return
			}
			if verifyShard(s, sc) {
				stop.Store(true)
				return
			}
		}
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		loop()
	}()

	bw := sweep.Child(obs.SpanBudgetWait)
	if e.claim != nil {
		bw.SetStr("class", e.claim.Class().String())
	}
	wanted := workers - 1
	if wanted < 0 {
		wanted = 0
	}
	granted := 0
	patient := false
	for w := 1; w < workers; w++ {
		if e.claim != nil && !e.claim.TryAcquire() {
			if e.patience > 0 {
				patient = true
				wg.Add(1)
				go func() {
					defer wg.Done()
					ok := e.claim.AcquireWait(e.patience, done)
					late := 0
					if ok {
						late = 1
					}
					bw.SetInt("wanted", int64(wanted))
					bw.SetInt("granted", int64(granted+late))
					bw.SetInt("denied", int64(wanted-granted-late))
					bw.End()
					if !ok {
						return
					}
					defer e.claim.Release()
					loop()
				}()
			}
			break
		}
		budgeted := e.claim != nil
		granted++
		wg.Add(1)
		go func() {
			defer wg.Done()
			if budgeted {
				defer e.claim.Release()
			}
			loop()
		}()
	}
	if !patient {
		bw.SetInt("wanted", int64(wanted))
		bw.SetInt("granted", int64(granted))
		bw.SetInt("denied", int64(wanted-granted))
		bw.End()
	}
	wg.Wait()
}

// verifyNode runs one node's local decision on its layout view,
// attaching the worker's scratch.
func verifyNode(lay *layout, u int, sc *Scratch, verify func(View) error) error {
	v := lay.view(u)
	v.Scratch = sc
	return verifyView(lay.ids[u], v, verify)
}

// verifyView runs one node's local decision, containing panics (a
// corrupted certificate must never take down the simulator — the
// corruption battery feeds arbitrary bitstreams through every decoder).
func verifyView(id graph.ID, view View, verify func(View) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dist: verifier panicked at node %d: %v", id, r)
		}
	}()
	return verify(view)
}
