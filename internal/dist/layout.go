package dist

import (
	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/graph"
)

// layout is the CSR-style snapshot of a graph plus per-run scratch
// arrays, precomputed so that each node's View is assembled zero-copy
// from shared slices.
//
// The adjacency is flattened the usual CSR way: node u's neighbors live
// at positions offsets[u]..offsets[u+1] of nbr (indices) and arena
// (identifier + certificate pairs). Neighbor identifiers never change,
// so they are written once at build time; only the Cert fields of the
// arena are refreshed per RunPLS, one O(2m) pass.
type layout struct {
	n       int
	offsets []int32        // len n+1; prefix sums of degrees
	nbr     []int32        // len 2m; CSR neighbor indices
	ids     []graph.ID     // node index -> identifier
	arena   []NeighborCert // len 2m; CSR-aligned neighbor views

	// Per-run scratch, reused across RunPLS calls on the same Engine so
	// repeated verification (benchmarks, interactive rounds) allocates
	// nothing beyond what the verifier itself allocates.
	certs []bits.Certificate // node index -> certificate this run
	errs  []error            // node index -> verdict this run (nil = accept)
}

func newLayout(g *graph.Graph) *layout {
	n := g.N()
	lay := &layout{
		n:       n,
		offsets: make([]int32, n+1),
		ids:     make([]graph.ID, n),
		certs:   make([]bits.Certificate, n),
		errs:    make([]error, n),
	}
	for u := 0; u < n; u++ {
		lay.offsets[u+1] = lay.offsets[u] + int32(g.Degree(u))
	}
	m2 := int(lay.offsets[n])
	lay.nbr = make([]int32, 0, m2)
	lay.arena = make([]NeighborCert, m2)
	for u := 0; u < n; u++ {
		lay.ids[u] = g.IDOf(u)
		for _, v := range g.Neighbors(u) {
			lay.arena[len(lay.nbr)].ID = g.IDOf(v)
			lay.nbr = append(lay.nbr, int32(v))
		}
	}
	return lay
}

// degree returns node u's degree.
func (lay *layout) degree(u int) int {
	return int(lay.offsets[u+1] - lay.offsets[u])
}

// view assembles node u's 1-round view from the shared arrays. The
// three-index slice expression caps the neighbor slice so a verifier
// appending to it cannot clobber the next node's region.
func (lay *layout) view(u int) View {
	lo, hi := lay.offsets[u], lay.offsets[u+1]
	return View{
		ID:        lay.ids[u],
		Degree:    int(hi - lo),
		Cert:      lay.certs[u],
		Neighbors: lay.arena[lo:hi:hi],
	}
}
