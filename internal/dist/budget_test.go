package dist

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
)

// TestBudgetBoundsFleetParallelism runs several engines concurrently
// against a tiny shared budget and checks the fleet-wide worker
// invariant: with S slots and E concurrent runs, at most S+E verifier
// goroutines are ever in flight (one unbudgeted worker per run plus one
// per slot).
func TestBudgetBoundsFleetParallelism(t *testing.T) {
	const (
		engines = 4
		slots   = 2
	)
	b := NewBudget(slots)
	if b.Slots() != slots {
		t.Fatalf("Slots() = %d, want %d", b.Slots(), slots)
	}

	var inFlight, peak atomic.Int64
	verify := func(v View) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(50 * time.Microsecond) // widen the overlap window
		inFlight.Add(-1)
		return nil
	}

	g := gen.Grid(40, 40)
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine(g, Parallel(8), ShardSize(16), Limit(b))
			out := e.RunPLS(map[graph.ID]bits.Certificate{}, func(v View) error { return verify(v) })
			if out.N != g.N() {
				t.Errorf("outcome covers %d nodes, want %d", out.N, g.N())
			}
		}()
	}
	wg.Wait()

	if got, want := int(peak.Load()), engines+slots; got > want {
		t.Fatalf("peak concurrent verifications = %d, want <= %d (engines %d + slots %d)", got, want, engines, slots)
	}
	if b.InUse() != 0 {
		t.Fatalf("budget leaked %d slots", b.InUse())
	}
}

// TestBudgetBoundsSubsetParallelism pins the same S+E invariant on the
// frontier-verification path (RunPLSSubset), which the planarcertd
// repair/cache flushes drive far more often than full sweeps.
func TestBudgetBoundsSubsetParallelism(t *testing.T) {
	const (
		engines = 4
		slots   = 2
	)
	b := NewBudget(slots)
	var inFlight, peak atomic.Int64
	g := gen.Grid(40, 40)
	idxs := make([]int, g.N())
	for i := range idxs {
		idxs[i] = i
	}
	var wg sync.WaitGroup
	for i := 0; i < engines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine(g, Parallel(8), ShardSize(16), Limit(b))
			out := e.RunPLSSubset(map[graph.ID]bits.Certificate{}, func(v View) error {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(50 * time.Microsecond)
				inFlight.Add(-1)
				return nil
			}, idxs)
			if out.N != g.N() {
				t.Errorf("subset outcome covers %d nodes, want %d", out.N, g.N())
			}
		}()
	}
	wg.Wait()
	if got, want := int(peak.Load()), engines+slots; got > want {
		t.Fatalf("peak concurrent subset verifications = %d, want <= %d", got, want)
	}
	if b.InUse() != 0 {
		t.Fatalf("budget leaked %d slots", b.InUse())
	}
}

// TestBudgetExhaustedStillCompletes pins the progress guarantee: a
// budget whose slots are all held cannot stall a verification — the
// run degrades to its single unbudgeted worker and still covers every
// node with the same outcome.
func TestBudgetExhaustedStillCompletes(t *testing.T) {
	b := NewBudget(1)
	if !b.tryAcquire() {
		t.Fatal("fresh budget refused a slot")
	}
	defer b.release()

	g := gen.Grid(20, 20)
	e := NewEngine(g, Parallel(4), ShardSize(8), Limit(b))
	var calls atomic.Int64
	out := e.RunPLS(map[graph.ID]bits.Certificate{}, func(v View) error {
		calls.Add(1)
		return nil
	})
	if out.N != g.N() || int(calls.Load()) != g.N() {
		t.Fatalf("exhausted-budget run verified %d/%d nodes", calls.Load(), g.N())
	}
	if b.InUse() != 1 {
		t.Fatalf("run disturbed foreign slot accounting: in use %d, want 1", b.InUse())
	}
}
