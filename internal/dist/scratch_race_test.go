package dist_test

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/gen"
)

// TestScratchWorkerLocalHammer proves, under the race detector, that
// verification scratch is worker-local: a full parallel RunPLS sweep
// (whose workers all borrow from one ScratchPool) runs while many
// goroutines hammer RunPLSSubset frontier calls on the same engine, and
// a second engine — sharing the same pool, the way dynamic sessions
// share one pool across the engines they build — sweeps concurrently.
// Any scratch state crossing a worker boundary is a data race the -race
// build reports; any decode residue crossing nodes flips a verdict on
// honest certificates.
func TestScratchWorkerLocalHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := gen.StackedTriangulation(256, rng)
	scheme := core.PlanarScheme{}
	certs, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	pool := dist.NewScratchPool()
	eng := dist.NewEngine(g, dist.Parallel(4), dist.ShardSize(8), dist.WithScratch(pool))
	eng.RunPLS(certs, scheme.Verify) // build the layout before sharing the engine
	other := dist.NewEngine(g, dist.Parallel(4), dist.ShardSize(8), dist.WithScratch(pool))
	other.RunPLS(certs, scheme.Verify)

	const rounds = 30
	var wg sync.WaitGroup
	fail := make(chan string, 64)

	// One full sweep at a time per engine (the Engine contract), looped;
	// its internal workers already share the pool concurrently.
	for name, e := range map[string]*dist.Engine{"eng": eng, "other": other} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if out := e.RunPLS(certs, scheme.Verify); !out.AllAccept() {
					fail <- name + ": full sweep rejected honest certificates"
					return
				}
			}
		}()
	}
	// Concurrent frontier calls on the first engine: RunPLSSubset reads
	// the live graph, not the layout, so it may overlap full sweeps.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := make([]int, 0, 32)
			r := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < rounds; i++ {
				sub = sub[:0]
				for k := 0; k < 32; k++ {
					sub = append(sub, r.Intn(g.N()))
				}
				if out := eng.RunPLSSubset(certs, scheme.Verify, sub); !out.AllAccept() {
					fail <- "frontier sweep rejected honest certificates"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}
