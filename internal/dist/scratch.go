package dist

import "sync"

// Scratch is the per-worker decode arena of a verification sweep. The
// engine hands every worker goroutine its own Scratch and attaches it to
// each View the worker verifies, so a scheme verifier can decode
// certificates into reusable slabs instead of fresh maps and slices per
// node — the layout arena in layout.go plays the same role for the view
// assembly itself. A Scratch is owned by exactly one worker for the
// duration of a sweep and returned to the engine's pool afterwards;
// nothing in it survives a sweep semantically, only the backing memory
// does.
//
// Scheme-specific state lives in keyed slots: a verifier calls Slot with
// a key unique to the scheme (an empty struct type works well), lazily
// installing its decode state with SetSlot on first use. Slots persist
// across nodes and sweeps — that is the point — so schemes must treat
// everything inside as garbage on entry and must never let state decoded
// for one node influence the verdict of another (the decode-parity and
// scratch-reuse fuzz suites enforce this).
//
// All methods are nil-safe: a nil *Scratch (a View built outside the
// engine, e.g. by direct Verify calls or the interactive protocols)
// reports empty slots, and schemes fall back to fresh allocation.
type Scratch struct {
	// nbrBuf backs subset-view neighbor slices (RunPLSSubset assembles
	// views from the live graph rather than the CSR arena).
	nbrBuf []NeighborCert

	slots []scratchSlot
}

type scratchSlot struct {
	key any
	val any
}

// Slot returns the value stored under key, or nil when absent (or when
// s itself is nil).
func (s *Scratch) Slot(key any) any {
	if s == nil {
		return nil
	}
	for _, sl := range s.slots {
		if sl.key == key {
			return sl.val
		}
	}
	return nil
}

// SetSlot stores val under key, replacing any previous value. Calling
// SetSlot on a nil Scratch is a no-op (the caller keeps its fresh
// state for the single call it serves).
func (s *Scratch) SetSlot(key, val any) {
	if s == nil {
		return
	}
	for i := range s.slots {
		if s.slots[i].key == key {
			s.slots[i].val = val
			return
		}
	}
	s.slots = append(s.slots, scratchSlot{key: key, val: val})
}

// neighbors returns a length-n NeighborCert buffer owned by the scratch,
// growing it when needed. The buffer is reused across nodes within a
// worker, so callers must finish with one view before assembling the
// next (verifiers must not retain Neighbors — the same contract Views
// from the CSR arena already carry).
func (s *Scratch) neighbors(n int) []NeighborCert {
	if cap(s.nbrBuf) < n {
		s.nbrBuf = make([]NeighborCert, n)
	}
	return s.nbrBuf[:n]
}

// ScratchPool is a free list of Scratches shared by the verification
// engines of one logical owner (a session, a server, a benchmark). Each
// RunPLS or RunPLSSubset call borrows one Scratch per worker and returns
// it when the sweep ends, so steady-state sweeps allocate no decode
// state at all. Pools are safe for concurrent use; a single Engine owns
// a private pool unless WithScratch installs a shared one — sessions
// install a shared pool so the scratch survives the short-lived engines
// they build per batch.
type ScratchPool struct {
	p sync.Pool
}

// NewScratchPool returns an empty pool.
func NewScratchPool() *ScratchPool {
	sp := &ScratchPool{}
	sp.p.New = func() any { return &Scratch{} }
	return sp
}

func (sp *ScratchPool) get() *Scratch  { return sp.p.Get().(*Scratch) }
func (sp *ScratchPool) put(s *Scratch) { sp.p.Put(s) }

// WithScratch makes the engine borrow worker scratch from pool instead
// of a private one, sharing decode arenas across the many short-lived
// engines a long-lived owner builds (see ScratchPool).
func WithScratch(pool *ScratchPool) Option {
	return func(e *Engine) {
		if pool != nil {
			e.scratch = pool
		}
	}
}
