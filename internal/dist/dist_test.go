package dist_test

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// engines returns the execution modes whose Outcomes must be identical
// in exhaustive mode. The tiny shard size forces many shards even on
// small test graphs so the worker handoff is actually exercised.
func engines(g *graph.Graph) map[string]*dist.Engine {
	return map[string]*dist.Engine{
		"sequential": dist.NewEngine(g, dist.Sequential()),
		"parallel":   dist.NewEngine(g, dist.Parallel(4), dist.ShardSize(8)),
	}
}

func sameOutcome(t *testing.T, a, b *dist.Outcome) {
	t.Helper()
	if a.AllAccept() != b.AllAccept() {
		t.Fatalf("modes disagree on acceptance: %v vs %v", a.AllAccept(), b.AllAccept())
	}
	if len(a.Rejecting) != len(b.Rejecting) {
		t.Fatalf("rejecting sets differ: %v vs %v", a.Rejecting, b.Rejecting)
	}
	for i := range a.Rejecting {
		if a.Rejecting[i] != b.Rejecting[i] {
			t.Fatalf("rejecting order differs at %d: %v vs %v", i, a.Rejecting, b.Rejecting)
		}
		id := a.Rejecting[i]
		if a.Reasons[id] != b.Reasons[id] {
			t.Fatalf("reasons differ at node %d: %q vs %q", id, a.Reasons[id], b.Reasons[id])
		}
	}
	if a.MaxCertBit != b.MaxCertBit || a.TotalCertBits != b.TotalCertBits ||
		a.Messages != b.Messages || a.MaxMsgBit != b.MaxMsgBit || a.N != b.N {
		t.Fatalf("stats differ: %+v vs %+v", a, b)
	}
}

// flipBit flips one random bit of one random node's certificate.
func flipBit(certs map[graph.ID]bits.Certificate, rng *rand.Rand) map[graph.ID]bits.Certificate {
	out := make(map[graph.ID]bits.Certificate, len(certs))
	var victims []graph.ID
	for id, c := range certs {
		out[id] = c
		if c.Bits > 0 {
			victims = append(victims, id)
		}
	}
	if len(victims) == 0 {
		return out
	}
	victim := victims[rng.Intn(len(victims))]
	c := out[victim]
	data := append([]byte(nil), c.Data...)
	pos := rng.Intn(c.Bits)
	data[pos/8] ^= 1 << (7 - uint(pos%8))
	out[victim] = bits.Certificate{Data: data, Bits: c.Bits}
	return out
}

// swapTwo exchanges the certificates of two nodes with distinct streams.
func swapTwo(certs map[graph.ID]bits.Certificate, rng *rand.Rand) map[graph.ID]bits.Certificate {
	ids := make([]graph.ID, 0, len(certs))
	for id := range certs {
		ids = append(ids, id)
	}
	for trial := 0; trial < 100; trial++ {
		a, b := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		if a == b || certs[a].Equal(certs[b]) {
			continue
		}
		out := make(map[graph.ID]bits.Certificate, len(certs))
		for id, c := range certs {
			out[id] = c
		}
		out[a], out[b] = out[b], out[a]
		return out
	}
	return nil
}

func TestSequentialParallelIdenticalOutcome(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name   string
		scheme pls.Scheme
		g      *graph.Graph
	}{
		{"tree/grid", pls.SpanningTreeScheme{}, gen.ScrambleIDs(gen.Grid(8, 8), rng)},
		{"planar/triangulation", core.PlanarScheme{}, gen.StackedTriangulation(200, rng)},
		{"path/path", pls.PathScheme{}, gen.Path(40)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			honest, err := tc.scheme.Prove(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			// Honest certificates, then a battery of corrupted ones: the
			// two modes must produce byte-identical outcomes on each.
			inputs := []map[graph.ID]bits.Certificate{honest, nil}
			for trial := 0; trial < 25; trial++ {
				inputs = append(inputs, flipBit(honest, rng))
			}
			for i, certs := range inputs {
				eng := engines(tc.g)
				a := eng["sequential"].RunPLS(certs, tc.scheme.Verify)
				b := eng["parallel"].RunPLS(certs, tc.scheme.Verify)
				sameOutcome(t, a, b)
				if i == 0 && !a.AllAccept() {
					t.Fatalf("honest certificates rejected: %v", a.Reasons)
				}
			}
		})
	}
}

func TestSwappedCertificatesRejectInBothModes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.ScrambleIDs(gen.StackedTriangulation(120, rng), rng)
	scheme := core.PlanarScheme{}
	honest, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		swapped := swapTwo(honest, rng)
		if swapped == nil {
			t.Fatal("could not find two distinct certificates to swap")
		}
		for name, e := range engines(g) {
			out := e.RunPLS(swapped, scheme.Verify)
			if out.AllAccept() {
				t.Fatalf("%s: swapped certificates accepted (trial %d)", name, trial)
			}
		}
	}
}

func TestTamperedTreeCertRejectsInBothModes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.ScrambleIDs(gen.Grid(6, 6), rng)
	scheme := pls.SpanningTreeScheme{}
	honest, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	ids := g.IDs()
	victim := ids[rng.Intn(len(ids))]
	dec, err := pls.DecodeTreeCert(honest[victim].Reader())
	if err != nil {
		t.Fatal(err)
	}
	dec.Dist += 2 // break the distance invariant at one node
	var w bits.Writer
	if err := dec.Encode(&w); err != nil {
		t.Fatal(err)
	}
	forged := make(map[graph.ID]bits.Certificate, len(honest))
	for id, c := range honest {
		forged[id] = c
	}
	forged[victim] = bits.FromWriter(&w)
	for name, e := range engines(g) {
		out := e.RunPLS(forged, scheme.Verify)
		if out.AllAccept() {
			t.Fatalf("%s: tampered distance accepted", name)
		}
	}
}

func TestFailFastAgreesOnAcceptance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.StackedTriangulation(150, rng)
	scheme := core.PlanarScheme{}
	honest, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	swapped := swapTwo(honest, rng)
	modes := map[string]*dist.Engine{
		"seq-failfast": dist.NewEngine(g, dist.Sequential(), dist.FailFast()),
		"par-failfast": dist.NewEngine(g, dist.Parallel(4), dist.ShardSize(8), dist.FailFast()),
	}
	for name, e := range modes {
		if out := e.RunPLS(honest, scheme.Verify); !out.AllAccept() {
			t.Fatalf("%s: honest certificates rejected", name)
		}
		out := e.RunPLS(swapped, scheme.Verify)
		if out.AllAccept() {
			t.Fatalf("%s: swapped certificates accepted", name)
		}
		if _, reason, ok := out.FirstRejection(); !ok || reason == "" {
			t.Fatalf("%s: fail-fast outcome carries no rejection reason", name)
		}
	}
}

func TestVerifierPanicIsContained(t *testing.T) {
	g := gen.Grid(5, 5)
	bomb := g.IDOf(7)
	verify := func(v dist.View) error {
		if v.ID == bomb {
			panic("certificate decoder exploded")
		}
		return nil
	}
	for name, e := range engines(g) {
		out := e.RunPLS(nil, verify)
		if out.AllAccept() {
			t.Fatalf("%s: panicking node accepted", name)
		}
		if len(out.Rejecting) != 1 || out.Rejecting[0] != bomb {
			t.Fatalf("%s: rejecting = %v, want [%d]", name, out.Rejecting, bomb)
		}
		if !strings.Contains(out.Reasons[bomb], "panic") {
			t.Fatalf("%s: reason %q does not mention the panic", name, out.Reasons[bomb])
		}
	}
}

func TestOutcomeAccounting(t *testing.T) {
	g := gen.Cycle(10)
	scheme := pls.SpanningTreeScheme{}
	certs, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	out := dist.RunPLS(g, certs, scheme.Verify)
	if out.Messages != 2*g.M() {
		t.Fatalf("messages = %d, want %d", out.Messages, 2*g.M())
	}
	if out.MaxMsgBit != out.MaxCertBit {
		t.Fatalf("max message %d != max cert %d", out.MaxMsgBit, out.MaxCertBit)
	}
	if out.AvgCertBits() <= 0 || out.AvgCertBits() > float64(out.MaxCertBit) {
		t.Fatalf("avg cert bits %f out of range", out.AvgCertBits())
	}
	if out.N != g.N() {
		t.Fatalf("N = %d, want %d", out.N, g.N())
	}
}

func TestEngineReuseResetsScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.ScrambleIDs(gen.Grid(6, 6), rng)
	scheme := pls.SpanningTreeScheme{}
	honest, err := scheme.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	e := dist.NewEngine(g, dist.Parallel(4), dist.ShardSize(8))
	if out := e.RunPLS(nil, scheme.Verify); out.AllAccept() {
		t.Fatal("empty certificates accepted")
	}
	// The rejecting run above must leave no residue in the reused arena.
	if out := e.RunPLS(honest, scheme.Verify); !out.AllAccept() {
		t.Fatalf("honest run after rejecting run failed: %v", out.Reasons)
	}
	if out := e.RunPLS(nil, scheme.Verify); out.AllAccept() {
		t.Fatal("empty certificates accepted after honest run")
	}
}

func TestViewsAreCapped(t *testing.T) {
	// A verifier appending to its Neighbors slice must not clobber the
	// adjacent node's region of the shared arena.
	g := gen.Path(6)
	certs := map[graph.ID]bits.Certificate{}
	for _, id := range g.IDs() {
		certs[id] = bits.Certificate{Data: []byte{0xff}, Bits: 3}
	}
	verify := func(v dist.View) error {
		_ = append(v.Neighbors, dist.NeighborCert{ID: -1})
		return nil
	}
	e := dist.NewEngine(g, dist.Sequential())
	if out := e.RunPLS(certs, verify); !out.AllAccept() {
		t.Fatalf("append-happy verifier rejected: %v", out.Reasons)
	}
	// Re-run with a verifier that checks the arena is intact.
	check := func(v dist.View) error {
		for _, nb := range v.Neighbors {
			if nb.ID < 0 {
				t.Fatalf("node %d sees clobbered neighbor %d", v.ID, nb.ID)
			}
		}
		return nil
	}
	if out := e.RunPLS(certs, check); !out.AllAccept() {
		t.Fatal("arena integrity check rejected")
	}
}

func TestRoundDeliveryAndValidation(t *testing.T) {
	g := gen.Path(4) // 0-1-2-3
	e := dist.NewEngine(g)
	payload := bits.Certificate{Data: []byte{0xA0}, Bits: 4}
	inbox, err := e.Round(func(u int) map[int]bits.Certificate {
		if u == 1 {
			return map[int]bits.Certificate{0: payload, 2: payload}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(inbox[0]) != 1 || len(inbox[2]) != 1 || len(inbox[1]) != 0 {
		t.Fatalf("unexpected deliveries: %v", inbox)
	}
	if inbox[0][0].From != 1 || inbox[0][0].FromID != g.IDOf(1) {
		t.Fatalf("wrong sender: %+v", inbox[0][0])
	}
	if !inbox[2][0].Cert.Equal(payload) {
		t.Fatal("payload corrupted in transit")
	}
	if e.Rounds != 1 || e.Messages != 2 || e.TotalBits != 8 || e.MaxMsgBit != 4 {
		t.Fatalf("accounting: rounds=%d msgs=%d bits=%d max=%d",
			e.Rounds, e.Messages, e.TotalBits, e.MaxMsgBit)
	}
	// CONGEST: messages only travel along edges — and a failed round
	// must not leak partial costs into the counters.
	if _, err := e.Round(func(u int) map[int]bits.Certificate {
		if u == 0 {
			return map[int]bits.Certificate{1: payload} // valid, staged
		}
		if u == 2 {
			return map[int]bits.Certificate{0: payload} // non-neighbor
		}
		return nil
	}); err == nil {
		t.Fatal("send to a non-neighbor was not rejected")
	}
	if e.Rounds != 1 || e.Messages != 2 || e.TotalBits != 8 || e.MaxMsgBit != 4 {
		t.Fatalf("failed round polluted counters: rounds=%d msgs=%d bits=%d max=%d",
			e.Rounds, e.Messages, e.TotalBits, e.MaxMsgBit)
	}
}

func TestBroadcast(t *testing.T) {
	g := gen.Path(8)
	e := dist.NewEngine(g)
	rounds, err := e.Broadcast([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 7 {
		t.Fatalf("rounds = %d, want 7 (path eccentricity)", rounds)
	}
	if e.Messages == 0 || e.TotalBits == 0 {
		t.Fatal("broadcast not accounted")
	}
	if r, err := dist.NewEngine(g).Broadcast([]int{3}); err != nil || r != 4 {
		t.Fatalf("middle source: rounds=%d err=%v, want 4", r, err)
	}
	if r, err := dist.NewEngine(g).Broadcast([]int{0, 7}); err != nil || r != 3 {
		t.Fatalf("two sources: rounds=%d err=%v, want 3 (both ends flood inward)", r, err)
	}
	single := graph.NewWithNodes(1)
	if r, err := dist.NewEngine(single).Broadcast([]int{0}); err != nil || r != 0 {
		t.Fatalf("single node: rounds=%d err=%v", r, err)
	}
	if _, err := dist.NewEngine(g).Broadcast(nil); err == nil {
		t.Fatal("no sources accepted")
	}
	if _, err := dist.NewEngine(g).Broadcast([]int{99}); err == nil {
		t.Fatal("unknown source accepted")
	}
	disc := graph.NewWithNodes(4)
	disc.MustAddEdge(0, 1)
	if _, err := dist.NewEngine(disc).Broadcast([]int{0}); err == nil {
		t.Fatal("disconnected broadcast did not fail")
	}
}

// TestEngineAllocationFree pins the zero-copy claim: with a trivial
// verifier, a whole RunPLS sweep on a reused engine performs O(1)
// allocations (the Outcome), not O(n) or O(m).
func TestEngineAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gen.StackedTriangulation(1024, rng)
	certs := map[graph.ID]bits.Certificate{}
	for _, id := range g.IDs() {
		certs[id] = bits.Certificate{Data: []byte{0x55}, Bits: 8}
	}
	verify := func(v dist.View) error { return nil }
	e := dist.NewEngine(g, dist.Sequential())
	e.RunPLS(certs, verify) // warm the layout
	allocs := testing.AllocsPerRun(20, func() {
		e.RunPLS(certs, verify)
	})
	if allocs > 4 {
		t.Fatalf("RunPLS allocates %.0f objects per sweep of 1024 nodes, want O(1)", allocs)
	}
}
