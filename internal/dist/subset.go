package dist

import (
	"sort"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/obs"
)

// RunPLSSubset executes one verification round restricted to the node
// indices in idxs: only those nodes run verify, each on its full 1-round
// view. Views are assembled directly from the live graph — not from the
// Engine's cached CSR snapshot — so the call stays correct after graph
// mutations and its cost is proportional to the subset's total degree,
// not to n. This is the frontier-verification primitive of the dynamic
// certification subsystem (internal/dynamic): when an update batch
// changes certificates only at a set D of nodes and edges only inside D,
// every node outside D and its 1-hop neighborhood sees a bit-identical
// view, so re-running the verifier on that frontier decides global
// acceptance.
//
// Duplicate and out-of-range indices are dropped; the subset is verified
// in ascending index order so sequential and parallel runs produce
// identical Outcomes (FailFast may, as in RunPLS, omit later
// rejections). The Outcome's accounting is restricted to the subset:
// N counts the verified nodes, certificate statistics cover their own
// certificates, and Messages counts the certificates they ship to their
// neighbors in the simulated round.
func (e *Engine) RunPLSSubset(certs map[graph.ID]bits.Certificate, verify func(View) error, idxs []int) *Outcome {
	n := e.g.N()
	sub := make([]int, 0, len(idxs))
	seen := make(map[int]bool, len(idxs))
	for _, u := range idxs {
		if u < 0 || u >= n || seen[u] {
			continue
		}
		seen[u] = true
		sub = append(sub, u)
	}
	sort.Ints(sub)

	sweep := e.span.Child(obs.SpanSweep)
	sweep.SetStr("mode", "subset")
	sweep.SetInt("frontier", int64(len(sub)))

	out := &Outcome{N: len(sub)}
	for _, u := range sub {
		c := certs[e.g.IDOf(u)]
		out.TotalCertBits += c.Bits
		if c.Bits > out.MaxCertBit {
			out.MaxCertBit = c.Bits
		}
		if deg := e.g.Degree(u); deg > 0 {
			out.Messages += deg
			if c.Bits > out.MaxMsgBit {
				out.MaxMsgBit = c.Bits
			}
		}
	}

	errs := make([]error, len(sub))
	if e.parallel(len(sub)) {
		e.subsetParallel(sub, certs, verify, errs, sweep)
	} else {
		e.subsetSequential(sub, certs, verify, errs)
	}

	for i, u := range sub {
		if err := errs[i]; err != nil {
			id := e.g.IDOf(u)
			out.Rejecting = append(out.Rejecting, id)
			if out.Reasons == nil {
				out.Reasons = make(map[graph.ID]string)
			}
			out.Reasons[id] = err.Error()
		}
	}
	sweep.SetInt("cert_bits", int64(out.TotalCertBits))
	sweep.SetInt("max_cert_bit", int64(out.MaxCertBit))
	sweep.SetInt("messages", int64(out.Messages))
	sweep.SetInt("rejecting", int64(len(out.Rejecting)))
	sweep.End()
	return out
}

// subsetView assembles node u's 1-round view from the live graph. The
// neighbor slice is carved out of the worker's scratch, so a frontier
// sweep's view assembly allocates nothing in steady state.
func (e *Engine) subsetView(u int, certs map[graph.ID]bits.Certificate, sc *Scratch) View {
	nbrs := e.g.Neighbors(u)
	ncs := sc.neighbors(len(nbrs))
	for i, v := range nbrs {
		id := e.g.IDOf(v)
		ncs[i] = NeighborCert{ID: id, Cert: certs[id]}
	}
	return View{
		ID:        e.g.IDOf(u),
		Degree:    len(nbrs),
		Cert:      certs[e.g.IDOf(u)],
		Neighbors: ncs,
		Scratch:   sc,
	}
}

func (e *Engine) subsetSequential(sub []int, certs map[graph.ID]bits.Certificate, verify func(View) error, errs []error) {
	pool := e.scratchPool()
	sc := pool.get()
	defer pool.put(sc)
	for i, u := range sub {
		if err := verifyView(e.g.IDOf(u), e.subsetView(u, certs, sc), verify); err != nil {
			errs[i] = err
			if e.failFast {
				return
			}
		}
	}
}

func (e *Engine) subsetParallel(sub []int, certs map[graph.ID]bits.Certificate, verify func(View) error, errs []error, sweep *obs.Span) {
	// Same budget discipline as verifyParallel (via fanOut): worker 0
	// always runs, the rest each need a free slot from the shared budget
	// (see Limit) so frontier sweeps across many sessions stay bounded.
	shard := e.shardSize
	nshards := (len(sub) + shard - 1) / shard
	e.fanOut(nshards, sweep, func(s int, sc *Scratch) bool {
		lo := s * shard
		hi := lo + shard
		if hi > len(sub) {
			hi = len(sub)
		}
		for i := lo; i < hi; i++ {
			u := sub[i]
			if err := verifyView(e.g.IDOf(u), e.subsetView(u, certs, sc), verify); err != nil {
				errs[i] = err
				if e.failFast {
					return true
				}
			}
		}
		return false
	})
}
