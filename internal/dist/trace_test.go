package dist

import (
	"reflect"
	"testing"
	"time"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/obs"
)

// sweepOf finds the first sweep child recorded under root.
func sweepOf(t *testing.T, root *obs.Span) *obs.Span {
	t.Helper()
	for _, c := range root.Children() {
		if c.Name() == obs.SpanSweep {
			return c
		}
	}
	t.Fatalf("no sweep span under %q (children %v)", root.Name(), root.Children())
	return nil
}

func TestWithSpanRecordsSweepAndBudgetWait(t *testing.T) {
	tr := obs.New(obs.Config{Ring: 4})
	root := tr.Start("test", obs.SpanBatch)
	g := gen.Grid(20, 20)
	e := NewEngine(g, Parallel(4), ShardSize(16), WithSpan(root))
	certs := map[graph.ID]bits.Certificate{g.IDOf(0): {Bits: 8}}
	out := e.RunPLS(certs, func(v View) error { return nil })
	root.End()

	sweep := sweepOf(t, root)
	if m, _ := sweep.StrAttr("mode"); m != "full" {
		t.Fatalf("sweep mode = %q, want full", m)
	}
	if n, _ := sweep.IntAttr("nodes"); n != int64(g.N()) {
		t.Fatalf("sweep nodes = %d, want %d", n, g.N())
	}
	if cb, _ := sweep.IntAttr("cert_bits"); cb != int64(out.TotalCertBits) {
		t.Fatalf("sweep cert_bits = %d, want %d", cb, out.TotalCertBits)
	}
	if ms, _ := sweep.IntAttr("messages"); ms != int64(out.Messages) {
		t.Fatalf("sweep messages = %d, want %d", ms, out.Messages)
	}
	var bw *obs.Span
	for _, c := range sweep.Children() {
		if c.Name() == obs.SpanBudgetWait {
			bw = c
		}
	}
	if bw == nil {
		t.Fatal("parallel sweep recorded no budget-wait child")
	}
	wanted, _ := bw.IntAttr("wanted")
	granted, _ := bw.IntAttr("granted")
	denied, _ := bw.IntAttr("denied")
	if wanted != 3 || granted != 3 || denied != 0 {
		t.Fatalf("unbudgeted acquisition = %d/%d/%d, want 3/3/0", wanted, granted, denied)
	}
}

func TestWithSpanRecordsSubsetSweep(t *testing.T) {
	tr := obs.New(obs.Config{Ring: 4})
	root := tr.Start("test", obs.SpanBatch)
	g := gen.Grid(10, 10)
	e := NewEngine(g, Sequential(), WithSpan(root))
	idxs := []int{0, 1, 2, 3, 4}
	e.RunPLSSubset(map[graph.ID]bits.Certificate{}, func(v View) error { return nil }, idxs)
	root.End()

	sweep := sweepOf(t, root)
	if m, _ := sweep.StrAttr("mode"); m != "subset" {
		t.Fatalf("sweep mode = %q, want subset", m)
	}
	if f, _ := sweep.IntAttr("frontier"); f != int64(len(idxs)) {
		t.Fatalf("sweep frontier = %d, want %d", f, len(idxs))
	}
}

func TestRoundAndBroadcastSpans(t *testing.T) {
	tr := obs.New(obs.Config{Ring: 4})
	root := tr.Start("test", obs.SpanBatch)
	g := gen.Path(4)
	e := NewEngine(g, WithSpan(root))
	_, err := e.Round(func(u int) map[int]bits.Certificate {
		if u == 0 {
			return map[int]bits.Certificate{1: {Data: []byte{0xA0}, Bits: 3}}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Broadcast([]int{0}); err != nil {
		t.Fatal(err)
	}
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != obs.SpanRound || kids[1].Name() != obs.SpanBroadcast {
		t.Fatalf("children = %v, want [round broadcast]", kids)
	}
	if idx, _ := kids[0].IntAttr("index"); idx != 0 {
		t.Fatalf("round index = %d, want 0", idx)
	}
	if ms, _ := kids[0].IntAttr("messages"); ms != 1 {
		t.Fatalf("round messages = %d, want 1", ms)
	}
	if bits, _ := kids[0].IntAttr("bits"); bits != 3 {
		t.Fatalf("round bits = %d, want 3", bits)
	}
	if r, _ := kids[1].IntAttr("rounds"); r != 3 {
		t.Fatalf("broadcast rounds = %d, want 3 (path of 4)", r)
	}
}

func TestWithSpanOutcomeParity(t *testing.T) {
	g := gen.Grid(12, 12)
	certs := map[graph.ID]bits.Certificate{g.IDOf(5): {Bits: 4}}
	verify := func(v View) error { return nil }
	plain := NewEngine(g, Parallel(4), ShardSize(8)).RunPLS(certs, verify)
	tr := obs.New(obs.Config{Ring: 2})
	root := tr.Start("s", obs.SpanBatch)
	traced := NewEngine(g, Parallel(4), ShardSize(8), WithSpan(root)).RunPLS(certs, verify)
	root.End()
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracing changed the outcome:\nplain  %+v\ntraced %+v", plain, traced)
	}
}

// TestBudgetPatienceJoinsLate holds the only budget slot, releases it
// shortly after the sweep starts, and checks that a patient engine
// picks the slot up (recorded on the budget-wait span) while an
// impatient one is denied immediately.
func TestBudgetPatienceJoinsLate(t *testing.T) {
	b := NewBudget(1)
	if !b.tryAcquire() {
		t.Fatal("fresh budget refused a slot")
	}
	release := make(chan struct{})
	go func() {
		<-release
		time.Sleep(5 * time.Millisecond)
		b.release()
	}()

	tr := obs.New(obs.Config{Ring: 4})
	root := tr.Start("patient", obs.SpanBatch)
	g := gen.Grid(40, 40)
	e := NewEngine(g, Parallel(2), ShardSize(4), Limit(b), BudgetPatience(2*time.Second), WithSpan(root))
	close(release)
	out := e.RunPLS(map[graph.ID]bits.Certificate{}, func(v View) error {
		time.Sleep(20 * time.Microsecond) // keep shards outstanding past the release
		return nil
	})
	root.End()
	if out.N != g.N() {
		t.Fatalf("patient run covered %d/%d nodes", out.N, g.N())
	}
	if b.InUse() != 0 {
		t.Fatalf("patient run leaked %d slots", b.InUse())
	}
	bw := sweepOf(t, root).Children()[0]
	if bw.Name() != obs.SpanBudgetWait {
		t.Fatalf("first sweep child = %q, want budget-wait", bw.Name())
	}
	granted, _ := bw.IntAttr("granted")
	denied, _ := bw.IntAttr("denied")
	if granted+denied != 1 {
		t.Fatalf("granted %d + denied %d != wanted 1", granted, denied)
	}
	// The slot came back 5ms in; a 2s patience must have caught it
	// unless the whole sweep finished first (then the wait was
	// abandoned via done — also fine, but on a 1600-node grid with a
	// sleeping verifier the sweep outlives 5ms).
	if granted != 1 {
		t.Fatalf("patient sweep was denied the late slot (granted=%d)", granted)
	}
}

// TestBudgetPatienceBounded pins that patience on a permanently
// exhausted budget delays the sweep by at most roughly the patience,
// not forever, and leaves foreign slot accounting untouched.
func TestBudgetPatienceBounded(t *testing.T) {
	b := NewBudget(1)
	if !b.tryAcquire() {
		t.Fatal("fresh budget refused a slot")
	}
	defer b.release()

	g := gen.Grid(10, 10)
	e := NewEngine(g, Parallel(4), ShardSize(8), Limit(b), BudgetPatience(50*time.Millisecond))
	start := time.Now()
	out := e.RunPLS(map[graph.ID]bits.Certificate{}, func(v View) error { return nil })
	elapsed := time.Since(start)
	if out.N != g.N() {
		t.Fatalf("starved run covered %d/%d nodes", out.N, g.N())
	}
	// The sweep itself finishes in microseconds, closing done and
	// cancelling the wait; even the worst case is one patience.
	if elapsed > time.Second {
		t.Fatalf("starved patient run took %v", elapsed)
	}
	if b.InUse() != 1 {
		t.Fatalf("run disturbed foreign slot accounting: in use %d, want 1", b.InUse())
	}
}
