package dist

import (
	"errors"
	"fmt"
	"sort"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/obs"
)

// Message is one delivery of a synchronous round: the sender (by index
// and identifier) and the payload it sent.
type Message struct {
	From   int
	FromID graph.ID
	Cert   bits.Certificate
}

// Round executes one synchronous CONGEST round: send(u) returns the
// messages node u emits this round, keyed by destination node index.
// Destinations must be neighbors of u (the CONGEST model has no other
// links). It returns every node's inbox, with deliveries ordered by
// sender index, and updates the engine's cost counters.
func (e *Engine) Round(send func(u int) map[int]bits.Certificate) ([][]Message, error) {
	sp := e.span.Child(obs.SpanRound)
	sp.SetInt("index", int64(e.Rounds))
	n := e.g.N()
	inbox := make([][]Message, n)
	// Stage the cost accounting and commit it only if the whole round is
	// valid, so a failed round never pollutes the engine's counters.
	var msgs, sentBits, maxBit int
	for u := 0; u < n; u++ {
		out := send(u)
		if len(out) == 0 {
			continue
		}
		// Map iteration order is randomised; sort destinations so the
		// simulation (and its error messages) stay deterministic.
		targets := make([]int, 0, len(out))
		for v := range out {
			targets = append(targets, v)
		}
		sort.Ints(targets)
		for _, v := range targets {
			if v < 0 || v >= n || !e.g.HasEdge(u, v) {
				err := fmt.Errorf("dist: node %d sent to non-neighbor %d", u, v)
				sp.SetStr("error", err.Error())
				sp.End()
				return nil, err
			}
			c := out[v]
			inbox[v] = append(inbox[v], Message{From: u, FromID: e.g.IDOf(u), Cert: c})
			msgs++
			sentBits += c.Bits
			if c.Bits > maxBit {
				maxBit = c.Bits
			}
		}
	}
	e.Rounds++
	e.Messages += msgs
	e.TotalBits += sentBits
	if maxBit > e.MaxMsgBit {
		e.MaxMsgBit = maxBit
	}
	sp.SetInt("messages", int64(msgs))
	sp.SetInt("bits", int64(sentBits))
	sp.SetInt("max_bit", int64(maxBit))
	sp.End()
	return inbox, nil
}

// Broadcast floods a 1-bit alarm from the given source indices and
// returns the number of synchronous rounds until every node is informed
// (0 if the sources already cover the network). Each round, the nodes
// first informed in the previous round relay the alarm to all their
// neighbors — so every node relays at most once, and nodes informed in
// the final round never relay — and the flood's messages and bits are
// charged to the engine's counters. It fails on an
// empty network, an unknown source, or a network the flood cannot cover
// (disconnected from the sources).
func (e *Engine) Broadcast(sources []int) (int, error) {
	sp := e.span.Child(obs.SpanBroadcast)
	sp.SetInt("sources", int64(len(sources)))
	fail := func(err error) (int, error) {
		sp.SetStr("error", err.Error())
		sp.End()
		return 0, err
	}
	n := e.g.N()
	if n == 0 {
		return fail(errors.New("dist: broadcast on an empty network"))
	}
	if len(sources) == 0 {
		return fail(errors.New("dist: broadcast needs at least one source"))
	}
	startMsgs, startBits := e.Messages, e.TotalBits
	informed := make([]bool, n)
	frontier := make([]int, 0, n)
	for _, s := range sources {
		if s < 0 || s >= n {
			return fail(fmt.Errorf("dist: unknown broadcast source index %d", s))
		}
		if !informed[s] {
			informed[s] = true
			frontier = append(frontier, s)
		}
	}
	count := len(frontier)
	rounds := 0
	for count < n && len(frontier) > 0 {
		rounds++
		e.Rounds++
		var next []int
		for _, u := range frontier {
			for _, v := range e.g.Neighbors(u) {
				e.Messages++
				e.TotalBits++ // the alarm is a single bit
				if e.MaxMsgBit < 1 {
					e.MaxMsgBit = 1
				}
				if !informed[v] {
					informed[v] = true
					count++
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	sp.SetInt("rounds", int64(rounds))
	sp.SetInt("messages", int64(e.Messages-startMsgs))
	sp.SetInt("bits", int64(e.TotalBits-startBits))
	if count < n {
		err := fmt.Errorf("dist: broadcast reached %d of %d nodes (network disconnected)", count, n)
		sp.SetStr("error", err.Error())
		sp.End()
		return rounds, err
	}
	sp.End()
	return rounds, nil
}
