// Package dist is the synchronous CONGEST-style simulator in which the
// paper's 1-round verification executes, built as the repo's performance
// core.
//
// The verification of a proof-labeling scheme is embarrassingly parallel
// by construction: every node decides accept/reject from its own 1-round
// view (its identifier, degree and certificate, plus each neighbor's
// identifier and certificate) with no further communication. The Engine
// exploits that:
//
//   - the topology and certificate layout are precomputed once into a
//     CSR-style adjacency (offsets + neighbor arena), so each node's View
//     is a zero-copy slice of shared arrays — no per-node allocation;
//   - RunPLS fans the per-node verifications across a worker pool over
//     fixed-size index shards and reduces the per-node results into a
//     single Outcome in one deterministic pass;
//   - RunPLSSubset verifies only a subset of nodes against the live
//     graph (no layout snapshot), which is what makes incremental
//     frontier verification in internal/dynamic cost ~ subset degree;
//   - NewEngine takes options (Sequential, Parallel, ShardSize,
//     FailFast, Limit) so experiments can compare execution modes on
//     identical inputs.
//
// Sequential and parallel exhaustive runs produce byte-identical
// Outcomes: workers write each node's verdict into a slot indexed by the
// node, and the reduction walks slots in index order.
//
// For multi-tenant callers (the planarcertd server runs one engine per
// live session), a shared Budget bounds the fleet-wide number of extra
// parallel workers: each RunPLS keeps one unconditional worker and takes
// more only while budget slots are free, so concurrent verifications
// degrade gracefully toward sequential execution instead of
// oversubscribing the machine.
//
// The same Engine also simulates general synchronous message-passing
// (Round, Broadcast) with bit-exact accounting, used by the distributed
// preprocessing phase.
package dist
