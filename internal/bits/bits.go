// Package bits implements bit-exact encoding of certificates. The paper's
// complexity measure is the number of *bits* per certificate, so schemes
// serialise certificates through this package and sizes are measured on
// the wire format rather than on in-memory structs.
//
// The format is a plain MSB-first bit stream. Writers append fields;
// readers consume them in the same order. Two integer encodings are
// provided: fixed-width (for fields whose bound is known to both sides,
// e.g. ranks in [0, 2n]) and a length-prefixed variable encoding (for
// identifiers from a polynomial range).
package bits

import (
	"errors"
	"fmt"
)

// ErrOutOfRange is returned when a value does not fit the declared width.
var ErrOutOfRange = errors.New("bits: value out of range")

// ErrShortRead is returned when a reader runs past the end of the stream.
var ErrShortRead = errors.New("bits: read past end of stream")

// Writer accumulates a bit stream. The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Bytes returns the stream as a byte slice (last byte zero-padded).
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit/8] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// WriteUint appends v in exactly width bits (MSB first). It fails if v
// needs more than width bits or width is not in [0, 64].
func (w *Writer) WriteUint(v uint64, width int) error {
	if width < 0 || width > 64 {
		return fmt.Errorf("%w: width %d", ErrOutOfRange, width)
	}
	if width < 64 && v>>uint(width) != 0 {
		return fmt.Errorf("%w: %d does not fit in %d bits", ErrOutOfRange, v, width)
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
	return nil
}

// WriteInt appends a signed value shifted to unsigned by the caller-known
// lower bound: v must satisfy lo <= v < lo + 2^width.
func (w *Writer) WriteInt(v, lo int64, width int) error {
	if v < lo {
		return fmt.Errorf("%w: %d below lower bound %d", ErrOutOfRange, v, lo)
	}
	return w.WriteUint(uint64(v-lo), width)
}

// WriteVar appends v using a 6-bit length prefix followed by that many
// bits of payload. Cost: 6 + bitlen(v) bits — O(log v).
func (w *Writer) WriteVar(v uint64) error {
	n := bitLen(v)
	if err := w.WriteUint(uint64(n), 6); err != nil {
		return err
	}
	return w.WriteUint(v, n)
}

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf  []byte
	pos  int
	nbit int
}

// NewReader returns a reader over the first nbits of buf.
func NewReader(buf []byte, nbits int) *Reader {
	return &Reader{buf: buf, nbit: nbits}
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrShortRead
	}
	b := r.buf[r.pos/8]>>(7-uint(r.pos%8))&1 == 1
	r.pos++
	return b, nil
}

// ReadUint consumes width bits as an unsigned integer.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("%w: width %d", ErrOutOfRange, width)
	}
	var v uint64
	for i := 0; i < width; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v, nil
}

// ReadInt consumes width bits and shifts by the lower bound lo.
func (r *Reader) ReadInt(lo int64, width int) (int64, error) {
	v, err := r.ReadUint(width)
	if err != nil {
		return 0, err
	}
	return lo + int64(v), nil
}

// ReadVar consumes a value written by WriteVar.
func (r *Reader) ReadVar() (uint64, error) {
	n, err := r.ReadUint(6)
	if err != nil {
		return 0, err
	}
	return r.ReadUint(int(n))
}

// bitLen returns the minimal number of bits to represent v (0 -> 0).
func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// WidthFor returns the number of bits needed to represent values in
// [0, maxVal] — the fixed width both prover and verifier derive from a
// shared bound such as n.
func WidthFor(maxVal uint64) int {
	if maxVal == 0 {
		return 1
	}
	return bitLen(maxVal)
}

// Certificate couples a bit stream with its exact bit length.
type Certificate struct {
	Data []byte
	Bits int
}

// FromWriter snapshots w into a Certificate.
func FromWriter(w *Writer) Certificate {
	return Certificate{Data: w.Bytes(), Bits: w.Len()}
}

// Reader returns a reader over the certificate.
func (c Certificate) Reader() *Reader { return NewReader(c.Data, c.Bits) }

// Size returns the certificate size in bits (the paper's measure).
func (c Certificate) Size() int { return c.Bits }

// Equal reports whether two certificates carry identical bit streams.
func (c Certificate) Equal(o Certificate) bool {
	if c.Bits != o.Bits {
		return false
	}
	for i := range c.Data {
		if c.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}
