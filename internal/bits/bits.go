// Package bits implements bit-exact encoding of certificates. The paper's
// complexity measure is the number of *bits* per certificate, so schemes
// serialise certificates through this package and sizes are measured on
// the wire format rather than on in-memory structs.
//
// The format is a plain MSB-first bit stream. Writers append fields;
// readers consume them in the same order. Two integer encodings are
// provided: fixed-width (for fields whose bound is known to both sides,
// e.g. ranks in [0, 2n]) and a length-prefixed variable encoding (for
// identifiers from a polynomial range).
package bits

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrOutOfRange is returned when a value does not fit the declared width.
var ErrOutOfRange = errors.New("bits: value out of range")

// ErrShortRead is returned when a reader runs past the end of the stream.
var ErrShortRead = errors.New("bits: read past end of stream")

// Writer accumulates a bit stream. The zero value is ready to use.
type Writer struct {
	buf  []byte
	nbit int
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbit }

// Reset empties the writer for reuse, keeping the underlying buffer so
// a pooled encoder (e.g. internal/wire's frame codec) does not allocate
// per message.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// Raw returns the written bytes without copying (last byte zero-padded).
// The slice aliases the writer's buffer and is invalidated by the next
// write or Reset; callers that keep the stream use Bytes.
func (w *Writer) Raw() []byte { return w.buf }

// Bytes returns the stream as a byte slice (last byte zero-padded).
func (w *Writer) Bytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// WriteBit appends a single bit.
func (w *Writer) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[w.nbit/8] |= 1 << (7 - uint(w.nbit%8))
	}
	w.nbit++
}

// WriteUint appends v in exactly width bits (MSB first). It fails if v
// needs more than width bits or width is not in [0, 64].
func (w *Writer) WriteUint(v uint64, width int) error {
	if width < 0 || width > 64 {
		return fmt.Errorf("%w: width %d", ErrOutOfRange, width)
	}
	if width < 64 && v>>uint(width) != 0 {
		return fmt.Errorf("%w: %d does not fit in %d bits", ErrOutOfRange, v, width)
	}
	for i := width - 1; i >= 0; i-- {
		w.WriteBit(v>>uint(i)&1 == 1)
	}
	return nil
}

// WriteInt appends a signed value shifted to unsigned by the caller-known
// lower bound: v must satisfy lo <= v < lo + 2^width.
func (w *Writer) WriteInt(v, lo int64, width int) error {
	if v < lo {
		return fmt.Errorf("%w: %d below lower bound %d", ErrOutOfRange, v, lo)
	}
	return w.WriteUint(uint64(v-lo), width)
}

// WriteVar appends v using a 6-bit length prefix followed by that many
// bits of payload. Cost: 6 + bitlen(v) bits — O(log v).
func (w *Writer) WriteVar(v uint64) error {
	n := bitLen(v)
	if err := w.WriteUint(uint64(n), 6); err != nil {
		return err
	}
	return w.WriteUint(v, n)
}

// WriteVarInt appends a signed value as a zigzag-mapped WriteVar, so
// small magnitudes of either sign stay O(log |v|) bits. The zigzag image
// must fit WriteVar's 63-bit payload bound: |v| < 2^62.
func (w *Writer) WriteVarInt(v int64) error {
	return w.WriteVar(uint64(v)<<1 ^ uint64(v>>63))
}

// Reader consumes a bit stream produced by Writer.
type Reader struct {
	buf  []byte
	pos  int
	nbit int
}

// NewReader returns a reader over the first nbits of buf.
func NewReader(buf []byte, nbits int) *Reader {
	return &Reader{buf: buf, nbit: nbits}
}

// Reset repoints r at the first nbits of buf and rewinds it, so one
// Reader can decode many certificates without allocating (the
// verification hot path reuses a Reader per worker).
func (r *Reader) Reset(buf []byte, nbits int) {
	r.buf = buf
	r.pos = 0
	r.nbit = nbits
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.nbit - r.pos }

// ReadBit consumes one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.nbit {
		return false, ErrShortRead
	}
	b := r.buf[r.pos/8]>>(7-uint(r.pos%8))&1 == 1
	r.pos++
	return b, nil
}

// ReadUint consumes width bits as an unsigned integer. It extracts
// whole bytes at a time: certificates are Θ(log n) bits, so the decode
// loop is the verification sweep's inner loop and a bit-by-bit read
// makes whole-network throughput decay with n.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("%w: width %d", ErrOutOfRange, width)
	}
	if r.pos+width > r.nbit {
		return 0, ErrShortRead
	}
	// Fast path: the whole field sits inside one aligned 8-byte load.
	if idx, off := r.pos>>3, r.pos&7; off+width <= 64 && idx+8 <= len(r.buf) {
		v := binary.BigEndian.Uint64(r.buf[idx:]) << uint(off) >> uint(64-width)
		r.pos += width
		return v, nil
	}
	var v uint64
	pos, rem := r.pos, width
	for rem > 0 {
		avail := 8 - pos&7
		take := avail
		if take > rem {
			take = rem
		}
		chunk := uint64(r.buf[pos>>3]) >> uint(avail-take) & (1<<uint(take) - 1)
		v = v<<uint(take) | chunk
		pos += take
		rem -= take
	}
	r.pos = pos
	return v, nil
}

// ReadInt consumes width bits and shifts by the lower bound lo.
func (r *Reader) ReadInt(lo int64, width int) (int64, error) {
	v, err := r.ReadUint(width)
	if err != nil {
		return 0, err
	}
	return lo + int64(v), nil
}

// ReadVar consumes a value written by WriteVar. Like ReadUint it
// decodes the whole field — length prefix and payload — from one
// 8-byte window when it fits, falling back to two reads otherwise.
func (r *Reader) ReadVar() (uint64, error) {
	pos := r.pos
	if idx, off := pos>>3, pos&7; idx+8 <= len(r.buf) {
		w := binary.BigEndian.Uint64(r.buf[idx:]) << uint(off)
		n := int(w >> 58)
		if off+6+n <= 64 && pos+6+n <= r.nbit {
			r.pos = pos + 6 + n
			return w << 6 >> uint(64-n), nil
		}
	}
	n, err := r.ReadUint(6)
	if err != nil {
		return 0, err
	}
	return r.ReadUint(int(n))
}

// ReadVarInt consumes a value written by WriteVarInt, reversing the
// zigzag mapping.
func (r *Reader) ReadVarInt() (int64, error) {
	u, err := r.ReadVar()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// bitLen returns the minimal number of bits to represent v (0 -> 0).
func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		n++
		v >>= 1
	}
	return n
}

// WidthFor returns the number of bits needed to represent values in
// [0, maxVal] — the fixed width both prover and verifier derive from a
// shared bound such as n.
func WidthFor(maxVal uint64) int {
	if maxVal == 0 {
		return 1
	}
	return bitLen(maxVal)
}

// Certificate couples a bit stream with its exact bit length.
type Certificate struct {
	Data []byte
	Bits int
}

// FromWriter snapshots w into a Certificate.
func FromWriter(w *Writer) Certificate {
	return Certificate{Data: w.Bytes(), Bits: w.Len()}
}

// Reader returns a reader over the certificate.
func (c Certificate) Reader() *Reader { return NewReader(c.Data, c.Bits) }

// ResetReader rewinds r onto the certificate, the allocation-free
// counterpart of Reader.
func (c Certificate) ResetReader(r *Reader) { r.Reset(c.Data, c.Bits) }

// Size returns the certificate size in bits (the paper's measure).
func (c Certificate) Size() int { return c.Bits }

// Equal reports whether two certificates carry identical bit streams.
func (c Certificate) Equal(o Certificate) bool {
	if c.Bits != o.Bits {
		return false
	}
	for i := range c.Data {
		if c.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}
