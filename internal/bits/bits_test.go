package bits

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTripFixedWidth(t *testing.T) {
	var w Writer
	values := []struct {
		v     uint64
		width int
	}{
		{0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9}, {1 << 40, 41}, {0, 0},
	}
	for _, tc := range values {
		if err := w.WriteUint(tc.v, tc.width); err != nil {
			t.Fatalf("WriteUint(%d,%d): %v", tc.v, tc.width, err)
		}
	}
	r := NewReader(w.Bytes(), w.Len())
	for _, tc := range values {
		got, err := r.ReadUint(tc.width)
		if err != nil {
			t.Fatalf("ReadUint(%d): %v", tc.width, err)
		}
		if got != tc.v {
			t.Fatalf("round trip = %d, want %d", got, tc.v)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d bits", r.Remaining())
	}
}

func TestWriteUintRejectsOverflow(t *testing.T) {
	var w Writer
	if err := w.WriteUint(8, 3); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overflow error = %v", err)
	}
	if err := w.WriteUint(1, 65); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("width error = %v", err)
	}
}

func TestSignedRoundTrip(t *testing.T) {
	var w Writer
	if err := w.WriteInt(-3, -10, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteInt(-10, -10, 5); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteInt(-11, -10, 5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("below-bound error = %v", err)
	}
	r := NewReader(w.Bytes(), w.Len())
	for _, want := range []int64{-3, -10} {
		got, err := r.ReadInt(-10, 5)
		if err != nil || got != want {
			t.Fatalf("ReadInt = (%d, %v), want %d", got, err, want)
		}
	}
}

func TestVarRoundTrip(t *testing.T) {
	var w Writer
	vals := []uint64{0, 1, 2, 63, 64, 12345, 1 << 50}
	for _, v := range vals {
		if err := w.WriteVar(v); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(w.Bytes(), w.Len())
	for _, want := range vals {
		got, err := r.ReadVar()
		if err != nil || got != want {
			t.Fatalf("ReadVar = (%d, %v), want %d", got, err, want)
		}
	}
}

func TestShortRead(t *testing.T) {
	var w Writer
	if err := w.WriteUint(5, 3); err != nil {
		t.Fatal(err)
	}
	r := NewReader(w.Bytes(), w.Len())
	if _, err := r.ReadUint(4); !errors.Is(err, ErrShortRead) {
		t.Fatalf("short read error = %v", err)
	}
}

func TestWidthFor(t *testing.T) {
	tests := []struct {
		max  uint64
		want int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}}
	for _, tc := range tests {
		if got := WidthFor(tc.max); got != tc.want {
			t.Fatalf("WidthFor(%d) = %d, want %d", tc.max, got, tc.want)
		}
	}
}

func TestCertificateEqual(t *testing.T) {
	var w1, w2 Writer
	if err := w1.WriteUint(5, 3); err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteUint(5, 3); err != nil {
		t.Fatal(err)
	}
	c1, c2 := FromWriter(&w1), FromWriter(&w2)
	if !c1.Equal(c2) {
		t.Fatal("identical certificates unequal")
	}
	var w3 Writer
	if err := w3.WriteUint(4, 3); err != nil {
		t.Fatal(err)
	}
	if c1.Equal(FromWriter(&w3)) {
		t.Fatal("different certificates equal")
	}
	var w4 Writer
	if err := w4.WriteUint(5, 4); err != nil {
		t.Fatal(err)
	}
	if c1.Equal(FromWriter(&w4)) {
		t.Fatal("different-length certificates equal")
	}
}

func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(vals []uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var w Writer
		widths := make([]int, len(vals))
		for i, v := range vals {
			widths[i] = WidthFor(uint64(v)) + rng.Intn(8)
			if widths[i] > 64 {
				widths[i] = 64
			}
			if err := w.WriteUint(uint64(v), widths[i]); err != nil {
				return false
			}
		}
		r := NewReader(w.Bytes(), w.Len())
		for i, v := range vals {
			got, err := r.ReadUint(widths[i])
			if err != nil || got != uint64(v) {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitInterleaving(t *testing.T) {
	var w Writer
	w.WriteBit(true)
	if err := w.WriteUint(0b1011, 4); err != nil {
		t.Fatal(err)
	}
	w.WriteBit(false)
	w.WriteBit(true)
	r := NewReader(w.Bytes(), w.Len())
	b, _ := r.ReadBit()
	if !b {
		t.Fatal("first bit")
	}
	v, _ := r.ReadUint(4)
	if v != 0b1011 {
		t.Fatalf("mid value = %b", v)
	}
	b1, _ := r.ReadBit()
	b2, _ := r.ReadBit()
	if b1 || !b2 {
		t.Fatal("tail bits")
	}
}

func TestLenCountsBits(t *testing.T) {
	var w Writer
	if err := w.WriteUint(1, 13); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 13 {
		t.Fatalf("Len = %d, want 13", w.Len())
	}
	c := FromWriter(&w)
	if c.Size() != 13 {
		t.Fatalf("Size = %d", c.Size())
	}
}
