// Package buildinfo resolves the binary's build identity (module
// version and VCS revision) from the build metadata the Go toolchain
// embeds in every binary. It backs the -version flag of the planarcert
// and planarcertd commands and the planarcertd_build_info metric, so
// all three report the same identity.
package buildinfo

import (
	"fmt"
	"io"
	"runtime/debug"
)

// Identity reports the module version and VCS revision embedded by the
// Go toolchain, or "unknown" for either when built outside a module or
// without VCS stamping (e.g. in tests or `go run`).
func Identity() (version, revision string) {
	version, revision = "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, revision
	}
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return version, revision
}

// Print writes the one-line "name version (revision)" form the
// daemons' -version flags emit.
func Print(w io.Writer, name string) {
	version, revision := Identity()
	fmt.Fprintf(w, "%s %s (%s)\n", name, version, revision)
}
