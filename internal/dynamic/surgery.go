package dynamic

import (
	"errors"
	"fmt"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// spanTree is the mutable spanning-tree structure behind the
// Korman–Kutten–Peleg tree proof: parents, depths, subtree sizes and
// children lists, kept patchable under edge updates.
type spanTree struct {
	root     int
	parent   []int
	depth    []int
	size     []uint64
	children [][]int
}

// newSpanTree builds the BFS spanning tree rooted at root — the same
// tree pls.BuildTreeCerts derives, so structured state and encoded
// certificates agree bit for bit.
func newSpanTree(g *graph.Graph, root int) (*spanTree, error) {
	parent, depth := g.BFSFrom(root)
	n := g.N()
	t := &spanTree{
		root:     root,
		parent:   parent,
		depth:    depth,
		size:     make([]uint64, n),
		children: make([][]int, n),
	}
	maxD := 0
	for v := 0; v < n; v++ {
		if parent[v] == -1 {
			return nil, errors.New("dynamic: graph is disconnected")
		}
		if v != root {
			t.children[parent[v]] = append(t.children[parent[v]], v)
		}
		if depth[v] > maxD {
			maxD = depth[v]
		}
		t.size[v] = 1
	}
	byDepth := make([][]int, maxD+1)
	for v := 0; v < n; v++ {
		byDepth[depth[v]] = append(byDepth[depth[v]], v)
	}
	for d := maxD; d > 0; d-- {
		for _, v := range byDepth[d] {
			t.size[parent[v]] += t.size[v]
		}
	}
	return t, nil
}

// isTreeEdge reports whether {u, v} is a tree edge, returning the
// (parent, child) orientation.
func (t *spanTree) isTreeEdge(u, v int) (p, c int, ok bool) {
	if t.parent[u] == v && u != t.root {
		return v, u, true
	}
	if t.parent[v] == u && v != t.root {
		return u, v, true
	}
	return 0, 0, false
}

// surgery repairs the tree after the tree edge {p, c} was removed from
// g: it finds a replacement edge (x, y) leaving c's old subtree S,
// re-roots S at x by reversing the parent chain x..c, hangs x under y,
// and patches depths inside S plus subtree sizes along both
// root paths. The dirty indices are every node whose (Dist, Parent,
// Size) triple may have changed. ok=false leaves the tree untouched.
func (t *spanTree) surgery(g *graph.Graph, p, c int, budget *int) (dirty []int, ok bool, reason string) {
	// Collect S, the subtree hanging below the removed edge.
	sub := []int{c}
	inSub := map[int]bool{c: true}
	for i := 0; i < len(sub); i++ {
		for _, w := range t.children[sub[i]] {
			sub = append(sub, w)
			inSub[w] = true
			if len(sub) > *budget {
				return nil, false, "subtree scope exceeds repair threshold"
			}
		}
	}
	// Deterministic replacement: first exit edge in subtree DFS order.
	x, y := -1, -1
	for _, v := range sub {
		for _, w := range g.Neighbors(v) {
			if !inSub[w] {
				x, y = v, w
				break
			}
		}
		if x >= 0 {
			break
		}
	}
	if x < 0 {
		return nil, false, "tree-edge removal disconnects the graph"
	}
	cost := len(sub) + t.depth[p] + t.depth[y] + 2
	if *budget -= cost; *budget < 0 {
		return nil, false, "surgery scope exceeds repair threshold"
	}

	// Re-root S at x: detach c from p, reverse the chain x -> ... -> c,
	// hang x under y.
	t.children[p] = dropInt(t.children[p], c)
	chain := []int{x}
	for z := x; z != c; z = t.parent[z] {
		chain = append(chain, t.parent[z])
	}
	for i := 0; i+1 < len(chain); i++ {
		t.children[chain[i+1]] = dropInt(t.children[chain[i+1]], chain[i])
	}
	t.parent[x] = y
	t.children[y] = append(t.children[y], x)
	for i := 0; i+1 < len(chain); i++ {
		t.parent[chain[i+1]] = chain[i]
		t.children[chain[i]] = append(t.children[chain[i]], chain[i+1])
	}

	// Depths top-down and sizes bottom-up inside S (now x's subtree).
	t.depth[x] = t.depth[y] + 1
	order := make([]int, 0, len(sub))
	stack := []int{x}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for _, w := range t.children[v] {
			t.depth[w] = t.depth[v] + 1
			stack = append(stack, w)
		}
	}
	for _, v := range order {
		t.size[v] = 1
	}
	for i := len(order) - 1; i >= 0; i-- {
		if v := order[i]; v != x {
			t.size[t.parent[v]] += t.size[v]
		}
	}

	// Subtree sizes along the two root paths (the shared suffix above
	// the LCA nets to zero but is re-encoded harmlessly).
	dirty = append(dirty, sub...)
	sz := uint64(len(sub))
	for z := p; ; z = t.parent[z] {
		t.size[z] -= sz
		dirty = append(dirty, z)
		if z == t.root {
			break
		}
	}
	for z := y; ; z = t.parent[z] {
		t.size[z] += sz
		dirty = append(dirty, z)
		if z == t.root {
			break
		}
	}
	return dirty, true, ""
}

func dropInt(s []int, x int) []int {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// treeState maintains the spanning-tree scheme: non-tree edge updates
// leave every certificate untouched (the tree proof ignores cotree
// edges beyond root/n agreement, which new neighbors satisfy); tree
// edge removals trigger surgery.
type treeState struct {
	g    *graph.Graph
	st   *spanTree
	objs map[graph.ID]*pls.TreeCert
}

func newTreeState(g *graph.Graph) (*treeState, error) {
	st, err := newSpanTree(g, 0)
	if err != nil {
		return nil, err
	}
	t := &treeState{g: g, st: st, objs: make(map[graph.ID]*pls.TreeCert, g.N())}
	n := uint64(g.N())
	for v := 0; v < g.N(); v++ {
		t.objs[g.IDOf(v)] = &pls.TreeCert{
			SelfID: g.IDOf(v),
			RootID: g.IDOf(st.root),
			N:      n,
			Dist:   uint64(st.depth[v]),
			Parent: g.IDOf(st.parent[v]),
			Size:   st.size[v],
		}
	}
	return t, nil
}

func (t *treeState) encodeAll() (map[graph.ID]bits.Certificate, error) {
	out := make(map[graph.ID]bits.Certificate, len(t.objs))
	for id, tc := range t.objs {
		var w bits.Writer
		if err := tc.Encode(&w); err != nil {
			return nil, err
		}
		out[id] = bits.FromWriter(&w)
	}
	return out, nil
}

// repair implements repairState for the spanning-tree scheme.
func (t *treeState) repair(nb *netBatch, budget int) (map[graph.ID]bits.Certificate, []int, bool, string) {
	dirtyIdx := make(map[int]bool)
	for _, pr := range nb.removedEdges {
		ia, ok1 := t.g.IndexOf(pr[0])
		ib, ok2 := t.g.IndexOf(pr[1])
		if !ok1 || !ok2 {
			return nil, nil, false, "unknown endpoint"
		}
		p, c, isTree := t.st.isTreeEdge(ia, ib)
		if !isTree {
			continue // cotree edges never appear in tree certificates
		}
		d, ok, reason := t.st.surgery(t.g, p, c, &budget)
		if !ok {
			return nil, nil, false, reason
		}
		for _, z := range d {
			dirtyIdx[z] = true
		}
	}
	// Additions change no certificate at all.
	certs := make(map[graph.ID]bits.Certificate, len(dirtyIdx))
	changed := make([]int, 0, len(dirtyIdx))
	for z := range dirtyIdx {
		id := t.g.IDOf(z)
		tc := t.objs[id]
		tc.Dist = uint64(t.st.depth[z])
		tc.Parent = t.g.IDOf(t.st.parent[z])
		tc.Size = t.st.size[z]
		var w bits.Writer
		if err := tc.Encode(&w); err != nil {
			return nil, nil, false, "re-encode: " + err.Error()
		}
		certs[id] = bits.FromWriter(&w)
		changed = append(changed, z)
	}
	return certs, changed, true, ""
}

var _ repairState = (*treeState)(nil)

// nonplanarState maintains the Kuratowski-witness scheme: additions
// never invalidate a non-planarity witness, and removals that miss both
// the witness subgraph and the spanning tree change no certificate;
// tree-edge removals trigger surgery on the embedded tree sub-proof.
// Removing a witness edge may restore planarity and always falls back
// to a full re-prove (which flips the session's scheme if it did).
type nonplanarState struct {
	g       *graph.Graph
	st      *spanTree
	witness map[graph.Edge]bool
	objs    map[graph.ID]*core.NonPlanarCert
}

func newNonPlanarState(g *graph.Graph, proof *core.NonPlanarProof) repairState {
	st, err := newSpanTree(g, proof.Root)
	if err != nil {
		return nil
	}
	w := make(map[graph.Edge]bool, len(proof.WitnessEdges))
	for _, e := range proof.WitnessEdges {
		w[e] = true
	}
	return &nonplanarState{g: g, st: st, witness: w, objs: proof.Certs}
}

// repair implements repairState for the non-planarity scheme.
func (t *nonplanarState) repair(nb *netBatch, budget int) (map[graph.ID]bits.Certificate, []int, bool, string) {
	dirtyIdx := make(map[int]bool)
	for _, pr := range nb.removedEdges {
		ia, ok1 := t.g.IndexOf(pr[0])
		ib, ok2 := t.g.IndexOf(pr[1])
		if !ok1 || !ok2 {
			return nil, nil, false, "unknown endpoint"
		}
		if t.witness[graph.NewEdge(ia, ib)] {
			return nil, nil, false, fmt.Sprintf("witness edge {%d,%d} removed", pr[0], pr[1])
		}
		p, c, isTree := t.st.isTreeEdge(ia, ib)
		if !isTree {
			continue
		}
		d, ok, reason := t.st.surgery(t.g, p, c, &budget)
		if !ok {
			return nil, nil, false, reason
		}
		for _, z := range d {
			dirtyIdx[z] = true
		}
	}
	certs := make(map[graph.ID]bits.Certificate, len(dirtyIdx))
	changed := make([]int, 0, len(dirtyIdx))
	for z := range dirtyIdx {
		id := t.g.IDOf(z)
		obj := t.objs[id]
		obj.Tree.Dist = uint64(t.st.depth[z])
		obj.Tree.Parent = t.g.IDOf(t.st.parent[z])
		obj.Tree.Size = t.st.size[z]
		var w bits.Writer
		if err := obj.Encode(&w); err != nil {
			return nil, nil, false, "re-encode: " + err.Error()
		}
		certs[id] = bits.FromWriter(&w)
		changed = append(changed, z)
	}
	return certs, changed, true, ""
}

var _ repairState = (*nonplanarState)(nil)
