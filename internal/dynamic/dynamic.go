package dynamic

import (
	"errors"
	"fmt"
	"sort"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/dist"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/obs"
	"github.com/planarcert/planarcert/internal/pls"
)

// Op identifies one kind of topology update.
type Op uint8

// Supported update operations.
const (
	AddEdge Op = iota
	RemoveEdge
	AddNode
)

// String names the operation for logs and error messages.
func (o Op) String() string {
	switch o {
	case AddEdge:
		return "+edge"
	case RemoveEdge:
		return "-edge"
	case AddNode:
		return "+node"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Update is one entry of the update log. AddNode uses only A.
type Update struct {
	Op   Op
	A, B graph.ID
}

// Mode labels how a batch was absorbed.
type Mode string

// Batch absorption modes.
const (
	ModeNoop        Mode = "noop"        // net effect empty, nothing to do
	ModeRepair      Mode = "repair"      // localized repair + frontier verification
	ModeCache       Mode = "cache"       // certificate cache hit
	ModeReprove     Mode = "reprove"     // full re-prove + full verification
	ModeFlip        Mode = "flip"        // re-prove under the counterpart scheme
	ModeUncertified Mode = "uncertified" // no scheme certifies the current graph
	ModeRestore     Mode = "restore"     // snapshot assignment adopted after a full sweep
)

// DefaultRepairThreshold bounds the repair scope (ranks scanned during
// interval patching, nodes touched during tree surgery) per batch.
const DefaultRepairThreshold = 2048

// DefaultCacheSize is the number of certified topologies remembered.
const DefaultCacheSize = 8

// Config parameterises a Session.
type Config struct {
	// Scheme is the configured proof-labeling scheme.
	Scheme pls.Scheme
	// Counterpart, if non-nil, is the scheme to flip to when Scheme's
	// prover reports the graph left its class (planarity <-> the
	// Kuratowski-witness scheme).
	Counterpart pls.Scheme
	// RepairThreshold bounds the localized-repair scope per batch;
	// 0 means DefaultRepairThreshold, negative disables repair.
	RepairThreshold int
	// CacheSize bounds the certificate cache; 0 means DefaultCacheSize,
	// negative disables the cache.
	CacheSize int
	// EngineOpts configure the verification engines the session builds.
	EngineOpts []dist.Option
}

// Report describes how one batch was absorbed.
type Report struct {
	// Generation is the session generation after the batch.
	Generation uint64
	// Mode says how the batch was absorbed.
	Mode Mode
	// Scheme is the active scheme after the batch.
	Scheme string
	// Updates is the number of log entries in the batch.
	Updates int
	// Dirty counts the nodes whose certificates changed.
	Dirty int
	// Verified counts the nodes re-verified (n for a full verification).
	Verified int
	// FullVerify reports whether the whole network was re-verified.
	FullVerify bool
	// Accepted is the verification verdict (false when uncertified).
	Accepted bool
	// Outcome is the verification outcome (nil when nothing ran).
	Outcome *dist.Outcome
	// CacheGeneration is the generation stamp of the cache entry that
	// served the batch (Mode == ModeCache).
	CacheGeneration uint64
	// RepairFallback explains why a repair attempt was abandoned.
	RepairFallback string
	// ProveErr is the prover failure when Mode == ModeUncertified.
	ProveErr error
}

// repairState is the scheme-specific structured certificate state a
// repair operates on. Implementations mutate their internal structures
// and return freshly encoded certificates for the nodes they changed.
type repairState interface {
	// repair absorbs the net batch. It returns the re-encoded
	// certificates of changed nodes and their indices; ok=false means
	// the batch is out of repair scope and reason says why.
	repair(nb *netBatch, budget int) (certs map[graph.ID]bits.Certificate, changed []int, ok bool, reason string)
}

// Session maintains a certificate assignment across update batches.
type Session struct {
	g           *graph.Graph
	scheme      pls.Scheme
	counterpart pls.Scheme
	active      pls.Scheme
	threshold   int
	engineOpts  []dist.Option

	gen       uint64
	certs     map[graph.ID]bits.Certificate
	certsOwn  bool // false when certs aliases a cache entry (copy-on-write)
	certified bool
	state     repairState

	fp      fingerprint
	cache   *certCache
	pending []Update
	last    *Report
	span    *obs.Span
}

// NewSession takes ownership of g and certifies it under cfg.Scheme.
// A prover failure (empty graph, graph outside every configured class)
// leaves the session alive but uncertified — the initial Report records
// it — so sessions can start from an empty network and be grown through
// Apply.
func NewSession(g *graph.Graph, cfg Config) (*Session, error) {
	s, err := newSessionShell(g, cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Generation: 0, Scheme: s.active.Name()}
	s.reprove(rep)
	s.last = rep
	return s, nil
}

// Restore rebuilds a session from persisted state: it takes ownership
// of g and certs, installs the assignment under the active scheme
// (which must be cfg.Scheme or cfg.Counterpart; nil means cfg.Scheme),
// and self-validates by running the scheme's full 1-round verification
// sweep — the proof-labeling scheme's own soundness check, so a stale
// or tampered snapshot that slipped past the storage CRCs is caught
// semantically. If the sweep rejects (or certs is empty), Restore falls
// back to re-proving from the restored graph. The session resumes at
// generation gen; the structured repair state is rebuilt lazily at the
// next re-prove, exactly as after a cache adoption.
func Restore(g *graph.Graph, cfg Config, active pls.Scheme, certs map[graph.ID]bits.Certificate, gen uint64) (*Session, error) {
	s, err := newSessionShell(g, cfg)
	if err != nil {
		return nil, err
	}
	if active != nil {
		if active.Name() != cfg.Scheme.Name() && (cfg.Counterpart == nil || active.Name() != cfg.Counterpart.Name()) {
			return nil, fmt.Errorf("dynamic: restored active scheme %q is neither the configured scheme nor its counterpart", active.Name())
		}
		s.active = active
	}
	s.gen = gen
	rep := &Report{Generation: gen, Scheme: s.active.Name()}
	if len(certs) > 0 {
		s.certs = certs
		s.certsOwn = true
		s.state = nil
		out := dist.NewEngine(s.g, s.engineOpts...).RunPLS(certs, s.active.Verify)
		if out.AllAccept() {
			s.certified = true
			rep.Mode = ModeRestore
			rep.Accepted = true
			rep.Outcome = out
			rep.FullVerify = true
			rep.Verified = out.N
			s.cache.store(s.cacheKey(), &cacheEntry{scheme: s.active, certs: certs, gen: s.gen})
			s.certsOwn = false // the cache entry shares the map
			s.last = rep
			return s, nil
		}
	}
	s.reprove(rep)
	s.last = rep
	return s, nil
}

// newSessionShell builds a Session with cfg's thresholds applied but no
// certificate state (shared by NewSession and Restore).
func newSessionShell(g *graph.Graph, cfg Config) (*Session, error) {
	if cfg.Scheme == nil {
		return nil, errors.New("dynamic: nil scheme")
	}
	threshold := cfg.RepairThreshold
	switch {
	case threshold == 0:
		threshold = DefaultRepairThreshold
	case threshold < 0:
		threshold = -1
	}
	cacheSize := cfg.CacheSize
	switch {
	case cacheSize == 0:
		cacheSize = DefaultCacheSize
	case cacheSize < 0:
		cacheSize = 0
	}
	// The session builds a fresh engine per operation (the topology
	// mutates between sweeps), but all of them share one scratch pool so
	// the verifiers' decode scratch is reused across operations instead
	// of being re-grown from zero by every engine.
	engineOpts := make([]dist.Option, 0, len(cfg.EngineOpts)+1)
	engineOpts = append(engineOpts, cfg.EngineOpts...)
	engineOpts = append(engineOpts, dist.WithScratch(dist.NewScratchPool()))
	return &Session{
		g:           g,
		scheme:      cfg.Scheme,
		counterpart: cfg.Counterpart,
		active:      cfg.Scheme,
		threshold:   threshold,
		engineOpts:  engineOpts,
		cache:       newCertCache(cacheSize),
		fp:          fingerprintOf(g),
	}, nil
}

// Graph exposes the live graph. Callers must not mutate it; all
// mutations go through the update log.
func (s *Session) Graph() *graph.Graph { return s.g }

// RepairThreshold returns the current localized-repair scope bound
// (-1 when repair is disabled).
func (s *Session) RepairThreshold() int { return s.threshold }

// SetRepairThreshold rebounds the localized-repair scope for future
// batches, with the same semantics as Config.RepairThreshold (0 means
// DefaultRepairThreshold, negative disables repair). Sessions are not
// safe for concurrent use, so callers serialize this with Apply/Flush
// like every other method; the adaptive threshold controller in
// internal/server drives it between batches.
func (s *Session) SetRepairThreshold(k int) {
	switch {
	case k == 0:
		s.threshold = DefaultRepairThreshold
	case k < 0:
		s.threshold = -1
	default:
		s.threshold = k
	}
}

// Fingerprint returns the 128-bit order-independent topology
// fingerprint of the live graph (the snapshot and certificate-cache
// key), maintained in O(1) per update.
func (s *Session) Fingerprint() (hi, lo uint64) { return s.fp.hi, s.fp.lo }

// Generation returns the number of absorbed batches.
func (s *Session) Generation() uint64 { return s.gen }

// Certified reports whether the current assignment was accepted.
func (s *Session) Certified() bool { return s.certified }

// ActiveScheme returns the scheme currently certifying the graph.
func (s *Session) ActiveScheme() pls.Scheme { return s.active }

// Scheme returns the scheme the session was configured with.
func (s *Session) Scheme() pls.Scheme { return s.scheme }

// Last returns the report of the most recent batch (or the initial
// certification).
func (s *Session) Last() *Report { return s.last }

// Certificates returns the live certificate assignment. The map and its
// byte slices are shared with the session; public facades deep-copy.
func (s *Session) Certificates() map[graph.ID]bits.Certificate { return s.certs }

// Queue appends an update to the log without applying it.
func (s *Session) Queue(u Update) { s.pending = append(s.pending, u) }

// TraceNext installs a tracing span for the next Flush (or the Apply
// that triggers it): the batch's verification engines attach to it (so
// sweep, round, and budget-wait children land under it — see
// dist.WithSpan), the prover records a prove child, a repair records a
// repair child, and the absorption outcome (mode, updates, dirty,
// verified, scheme) is stamped as attributes. The span is consumed by
// exactly one flush and the caller remains responsible for ending it.
// A nil span — and every flush without a preceding TraceNext — records
// nothing.
func (s *Session) TraceNext(sp *obs.Span) { s.span = sp }

// flushOpts returns the engine options for the current batch's sweeps,
// attaching the batch's tracing span when one was installed.
func (s *Session) flushOpts() []dist.Option {
	if s.span == nil {
		return s.engineOpts
	}
	opts := make([]dist.Option, 0, len(s.engineOpts)+1)
	opts = append(opts, s.engineOpts...)
	return append(opts, dist.WithSpan(s.span))
}

// Apply queues the updates and flushes the whole log as one batch.
func (s *Session) Apply(batch []Update) (*Report, error) {
	s.pending = append(s.pending, batch...)
	return s.Flush()
}

// Flush applies the queued update log as one batch. A validation error
// (unknown endpoint, duplicate edge or node, self-loop) rejects and
// discards the whole log without touching the graph.
func (s *Session) Flush() (*Report, error) {
	sp := s.span
	defer func() { s.span = nil }()
	batch := s.pending
	s.pending = nil
	rep := &Report{Updates: len(batch), Scheme: s.active.Name(), Generation: s.gen}
	if len(batch) == 0 {
		rep.Mode = ModeNoop
		rep.Accepted = s.certified
		s.last = rep
		s.stamp(sp, rep)
		return rep, nil
	}
	nb, err := s.validate(batch)
	if err != nil {
		sp.SetStr("error", err.Error())
		return nil, err
	}
	s.applyToGraph(batch)
	s.fp = s.fp.apply(nb)
	s.gen++
	rep.Generation = s.gen

	if nb.empty() {
		rep.Mode = ModeNoop
		rep.Accepted = s.certified
		s.last = rep
		s.stamp(sp, rep)
		return rep, nil
	}

	if done := s.tryRepair(nb, rep); !done {
		if done = s.tryCache(nb, rep); !done {
			s.reprove(rep)
		}
	}
	s.last = rep
	s.stamp(sp, rep)
	return rep, nil
}

// stamp records a batch's absorption outcome on its tracing span.
func (s *Session) stamp(sp *obs.Span, rep *Report) {
	if sp == nil {
		return
	}
	sp.SetStr("mode", string(rep.Mode))
	sp.SetStr("scheme", rep.Scheme)
	sp.SetInt("updates", int64(rep.Updates))
	sp.SetInt("dirty", int64(rep.Dirty))
	sp.SetInt("verified", int64(rep.Verified))
	if rep.RepairFallback != "" {
		sp.SetStr("repair_fallback", rep.RepairFallback)
	}
}

// VerifyFull re-runs the active scheme's verifier over the whole
// network with the current certificates (a fresh engine, so it is valid
// right after mutations). It is the parity baseline for tests: an
// uncertified session has no certificates, so every node sees a
// zero-length certificate and rejects (vacuously accepting only on the
// empty network).
func (s *Session) VerifyFull() *dist.Outcome {
	return dist.NewEngine(s.g, s.engineOpts...).RunPLS(s.certs, s.active.Verify)
}

// netBatch is the net effect of one batch: updates that cancel inside
// the batch (an edge added then removed) disappear.
type netBatch struct {
	addedNodes   []graph.ID
	addedEdges   [][2]graph.ID // by identifier, in batch order
	removedEdges [][2]graph.ID
}

func (nb *netBatch) empty() bool {
	return len(nb.addedNodes) == 0 && len(nb.addedEdges) == 0 && len(nb.removedEdges) == 0
}

func normPair(a, b graph.ID) [2]graph.ID {
	if a > b {
		a, b = b, a
	}
	return [2]graph.ID{a, b}
}

// validate simulates the batch against the current graph without
// mutating it, rejecting structurally invalid updates, and computes the
// net effect.
func (s *Session) validate(batch []Update) (*netBatch, error) {
	newNodes := make(map[graph.ID]bool)
	// overlay: +1 edge present (added), -1 absent (removed); missing
	// entries defer to the graph.
	overlay := make(map[[2]graph.ID]int8)
	present := func(id graph.ID) bool {
		if newNodes[id] {
			return true
		}
		_, ok := s.g.IndexOf(id)
		return ok
	}
	hasEdge := func(p [2]graph.ID) bool {
		if st, ok := overlay[p]; ok {
			return st > 0
		}
		ia, ok1 := s.g.IndexOf(p[0])
		ib, ok2 := s.g.IndexOf(p[1])
		return ok1 && ok2 && s.g.HasEdge(ia, ib)
	}
	for i, u := range batch {
		switch u.Op {
		case AddNode:
			if present(u.A) {
				return nil, fmt.Errorf("dynamic: update %d: node %d already exists", i, u.A)
			}
			newNodes[u.A] = true
		case AddEdge:
			if u.A == u.B {
				return nil, fmt.Errorf("dynamic: update %d: self-loop at %d", i, u.A)
			}
			if !present(u.A) || !present(u.B) {
				return nil, fmt.Errorf("dynamic: update %d: unknown endpoint in {%d,%d}", i, u.A, u.B)
			}
			p := normPair(u.A, u.B)
			if hasEdge(p) {
				return nil, fmt.Errorf("dynamic: update %d: duplicate edge {%d,%d}", i, u.A, u.B)
			}
			overlay[p] = 1
		case RemoveEdge:
			p := normPair(u.A, u.B)
			if !hasEdge(p) {
				return nil, fmt.Errorf("dynamic: update %d: no edge {%d,%d} to remove", i, u.A, u.B)
			}
			overlay[p] = -1
		default:
			return nil, fmt.Errorf("dynamic: update %d: unknown op %d", i, u.Op)
		}
	}
	nb := &netBatch{}
	for id := range newNodes {
		nb.addedNodes = append(nb.addedNodes, id)
	}
	sort.Slice(nb.addedNodes, func(i, j int) bool { return nb.addedNodes[i] < nb.addedNodes[j] })
	pairs := make([][2]graph.ID, 0, len(overlay))
	for p := range overlay {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, p := range pairs {
		st := overlay[p]
		ia, ok1 := s.g.IndexOf(p[0])
		ib, ok2 := s.g.IndexOf(p[1])
		before := ok1 && ok2 && s.g.HasEdge(ia, ib)
		switch {
		case st > 0 && !before:
			nb.addedEdges = append(nb.addedEdges, p)
		case st < 0 && before:
			nb.removedEdges = append(nb.removedEdges, p)
		}
	}
	return nb, nil
}

// applyToGraph commits a validated batch. It cannot fail.
func (s *Session) applyToGraph(batch []Update) {
	for _, u := range batch {
		switch u.Op {
		case AddNode:
			s.g.MustAddNode(u.A)
		case AddEdge:
			ia, _ := s.g.IndexOf(u.A)
			ib, _ := s.g.IndexOf(u.B)
			s.g.MustAddEdge(ia, ib)
		case RemoveEdge:
			ia, _ := s.g.IndexOf(u.A)
			ib, _ := s.g.IndexOf(u.B)
			s.g.RemoveEdge(ia, ib)
		}
	}
}

// touchedIdxs returns the indices of the endpoints of net-changed edges.
func (s *Session) touchedIdxs(nb *netBatch) []int {
	var out []int
	add := func(id graph.ID) {
		if idx, ok := s.g.IndexOf(id); ok {
			out = append(out, idx)
		}
	}
	for _, p := range nb.addedEdges {
		add(p[0])
		add(p[1])
	}
	for _, p := range nb.removedEdges {
		add(p[0])
		add(p[1])
	}
	for _, id := range nb.addedNodes {
		add(id)
	}
	return out
}

// frontierOf closes the dirty set: nodes with changed certificates plus
// their neighbors (whose views contain the changed certificates) plus
// the endpoints of changed edges (whose views changed shape).
func (s *Session) frontierOf(changed, touched []int) []int {
	seen := make(map[int]bool, 2*len(changed)+len(touched))
	var out []int
	add := func(u int) {
		if !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	for _, u := range changed {
		add(u)
		for _, v := range s.g.Neighbors(u) {
			add(v)
		}
	}
	for _, u := range touched {
		add(u)
	}
	return out
}

// ensureOwnedCerts copy-on-writes the certificate map when it is shared
// with a cache entry.
func (s *Session) ensureOwnedCerts() {
	if s.certsOwn || s.certs == nil {
		return
	}
	clone := make(map[graph.ID]bits.Certificate, len(s.certs))
	for id, c := range s.certs {
		clone[id] = c
	}
	s.certs = clone
	s.certsOwn = true
}

// tryRepair attempts a localized repair + frontier verification.
// It reports whether the batch was fully absorbed.
func (s *Session) tryRepair(nb *netBatch, rep *Report) bool {
	switch {
	case s.threshold < 0:
		rep.RepairFallback = "repair disabled"
		return false
	case !s.certified:
		rep.RepairFallback = "no certified base state"
		return false
	case s.state == nil:
		rep.RepairFallback = "no structured state (cold after cache adoption)"
		return false
	case len(nb.addedNodes) > 0:
		rep.RepairFallback = "node additions change n in every certificate"
		return false
	}
	rsp := s.span.Child("repair")
	newCerts, changed, ok, reason := s.state.repair(nb, s.threshold)
	rsp.SetInt("changed", int64(len(changed)))
	if !ok {
		rsp.SetStr("fallback", reason)
		rsp.End()
		rep.RepairFallback = reason
		return false
	}
	rsp.End()
	s.ensureOwnedCerts()
	for id, c := range newCerts {
		s.certs[id] = c
	}
	frontier := s.frontierOf(changed, s.touchedIdxs(nb))
	out := dist.NewEngine(s.g, s.flushOpts()...).RunPLSSubset(s.certs, s.active.Verify, frontier)
	rep.Dirty = len(changed)
	rep.Verified = out.N
	rep.Outcome = out
	if !out.AllAccept() {
		// The repair produced a locally rejected assignment; demote to a
		// full re-prove. The state was mutated by the failed repair and
		// will be rebuilt there.
		rep.RepairFallback = fmt.Sprintf("frontier rejected at node %d", out.Rejecting[0])
		rep.Outcome = nil
		rep.Dirty, rep.Verified = 0, 0
		return false
	}
	rep.Mode = ModeRepair
	rep.Accepted = true
	rep.Scheme = s.active.Name()
	return true
}

// tryCache adopts a previously certified assignment for the current
// fingerprint. It reports whether the batch was fully absorbed.
func (s *Session) tryCache(nb *netBatch, rep *Report) bool {
	entry := s.cache.lookup(s.cacheKey())
	if entry == nil {
		return false
	}
	// Adopt the snapshot copy-on-write; the structured repair state
	// describes the old assignment and is rebuilt lazily at the next
	// re-prove.
	s.certs = entry.certs
	s.certsOwn = false
	s.active = entry.scheme
	s.state = nil
	s.certified = true
	// Sanity pass over the update endpoints: cheap, and demotes
	// fingerprint collisions to a re-prove instead of an accept.
	out := dist.NewEngine(s.g, s.flushOpts()...).RunPLSSubset(s.certs, s.active.Verify, s.touchedIdxs(nb))
	if !out.AllAccept() {
		s.cache.evict(s.cacheKey())
		s.certified = false
		return false
	}
	rep.Mode = ModeCache
	rep.Accepted = true
	rep.Scheme = s.active.Name()
	rep.Verified = out.N
	rep.Outcome = out
	rep.CacheGeneration = entry.gen
	return true
}

// reprove runs the full prover (flipping to the counterpart scheme when
// the active one's class no longer contains the graph), fully
// re-verifies, rebuilds the structured repair state, and stores the
// certified assignment in the cache.
func (s *Session) reprove(rep *Report) {
	order := []pls.Scheme{s.active}
	if other := s.counterpartOf(s.active); other != nil {
		order = append(order, other)
	}
	var firstErr error
	for i, sch := range order {
		pv := s.span.Child(obs.SpanProve)
		pv.SetStr("scheme", sch.Name())
		certs, st, err := s.proveStructured(sch)
		if err != nil {
			pv.SetStr("error", err.Error())
			pv.End()
			if firstErr == nil {
				firstErr = err
			}
			if errors.Is(err, pls.ErrNotInClass) {
				continue
			}
			break
		}
		pv.SetInt("certs", int64(len(certs)))
		pv.End()
		s.active = sch
		s.certs = certs
		s.certsOwn = true
		s.state = st
		out := dist.NewEngine(s.g, s.flushOpts()...).RunPLS(certs, sch.Verify)
		rep.Mode = ModeReprove
		if i > 0 {
			rep.Mode = ModeFlip
		}
		rep.Scheme = sch.Name()
		rep.Accepted = out.AllAccept()
		rep.Outcome = out
		rep.FullVerify = true
		rep.Verified = out.N
		rep.Dirty = len(certs)
		s.certified = rep.Accepted
		if rep.Accepted {
			s.cache.store(s.cacheKey(), &cacheEntry{scheme: sch, certs: certs, gen: s.gen})
			// The stored entry shares the map; future repairs must
			// copy-on-write.
			s.certsOwn = false
		}
		return
	}
	s.certs = nil
	s.certsOwn = true
	s.state = nil
	s.certified = false
	rep.Mode = ModeUncertified
	rep.Scheme = s.active.Name()
	rep.Accepted = false
	rep.ProveErr = firstErr
}

// counterpartOf returns the scheme to flip to from sch, or nil.
func (s *Session) counterpartOf(sch pls.Scheme) pls.Scheme {
	if s.counterpart == nil {
		return nil
	}
	if sch == s.scheme {
		return s.counterpart
	}
	return s.scheme
}

// proveStructured runs the scheme's prover, keeping the structured
// certificate state for schemes that support localized repair.
func (s *Session) proveStructured(sch pls.Scheme) (map[graph.ID]bits.Certificate, repairState, error) {
	switch sch.(type) {
	case core.PlanarScheme:
		if s.g.N() == 0 {
			return nil, nil, fmt.Errorf("%w: empty graph", pls.ErrNotInClass)
		}
		if !s.g.Connected() {
			return nil, nil, fmt.Errorf("%w: disconnected graph", pls.ErrNotInClass)
		}
		tr, err := core.TransformOf(s.g)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", pls.ErrNotInClass, err)
		}
		objs, holders, err := core.BuildPlanarCertObjects(s.g, tr)
		if err != nil {
			return nil, nil, err
		}
		certs, err := core.EncodePlanarCerts(objs)
		if err != nil {
			return nil, nil, err
		}
		return certs, newPlanarState(s.g, tr, objs, holders), nil
	case core.NonPlanarScheme:
		proof, err := core.BuildNonPlanarProof(s.g)
		if err != nil {
			return nil, nil, err
		}
		certs, err := core.EncodeNonPlanarCerts(proof.Certs)
		if err != nil {
			return nil, nil, err
		}
		return certs, newNonPlanarState(s.g, proof), nil
	case pls.SpanningTreeScheme:
		if s.g.N() == 0 {
			return nil, nil, fmt.Errorf("%w: empty graph", pls.ErrNotInClass)
		}
		ts, err := newTreeState(s.g)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", pls.ErrNotInClass, err)
		}
		certs, err := ts.encodeAll()
		if err != nil {
			return nil, nil, err
		}
		return certs, ts, nil
	default:
		certs, err := sch.Prove(s.g)
		return certs, nil, err
	}
}

func (s *Session) cacheKey() cacheKey {
	return cacheKey{fp: s.fp, n: s.g.N(), m: s.g.M()}
}
