package dynamic

import "testing"

// feed pushes n repair and n reprove observations with the given
// latencies; fallback marks every reprove as a threshold fallback.
func feed(t *ThresholdTuner, n int, repairSec, reproveSec float64, fallback bool) {
	for i := 0; i < n; i++ {
		t.Observe(ModeRepair, false, repairSec)
		t.Observe(ModeReprove, fallback, reproveSec)
	}
}

func TestTunerHalvesWhenRepairsPriceAboveReproves(t *testing.T) {
	var tn ThresholdTuner
	feed(&tn, 4, 0.050, 0.010, false)
	if got := tn.Recommend(1024); got != 512 {
		t.Fatalf("Recommend(1024) = %d, want 512", got)
	}
	// One factor of two per call, never a slam to the floor.
	if got := tn.Recommend(512); got != 256 {
		t.Fatalf("Recommend(512) = %d, want 256", got)
	}
}

func TestTunerDoublesWhenRepairsCheapAndFallbacksFrequent(t *testing.T) {
	var tn ThresholdTuner
	// Repairs 50x cheaper than re-proves, and every re-prove is a
	// threshold fallback: the threshold is too stingy.
	feed(&tn, 4, 0.001, 0.050, true)
	if got := tn.Recommend(1024); got != 2048 {
		t.Fatalf("Recommend(1024) = %d, want 2048", got)
	}
}

func TestTunerHoldsWithoutFallbackPressure(t *testing.T) {
	var tn ThresholdTuner
	// Repairs far cheaper, but no batch ever hit the threshold: nothing
	// to gain by raising it.
	feed(&tn, 8, 0.001, 0.050, false)
	if got := tn.Recommend(1024); got != 1024 {
		t.Fatalf("Recommend(1024) = %d, want 1024 (no fallback pressure)", got)
	}
}

func TestTunerNeedsEvidence(t *testing.T) {
	var tn ThresholdTuner
	// 3 samples per side is below the evidence bar.
	feed(&tn, 3, 0.050, 0.001, false)
	if got := tn.Recommend(1024); got != 1024 {
		t.Fatalf("Recommend(1024) with 3 samples = %d, want 1024", got)
	}
}

func TestTunerClamps(t *testing.T) {
	var tn ThresholdTuner
	feed(&tn, 4, 0.050, 0.001, false)
	if got := tn.Recommend(MinTunedThreshold); got != MinTunedThreshold {
		t.Fatalf("Recommend at floor = %d, want %d", got, MinTunedThreshold)
	}
	var up ThresholdTuner
	feed(&up, 4, 0.001, 0.050, true)
	if got := up.Recommend(MaxTunedThreshold); got != MaxTunedThreshold {
		t.Fatalf("Recommend at ceiling = %d, want %d", got, MaxTunedThreshold)
	}
}

func TestTunerRespectsOperatorChoices(t *testing.T) {
	var tn ThresholdTuner
	feed(&tn, 8, 0.001, 0.050, true)
	// Repair disabled by the operator: never re-enabled, whatever the
	// evidence says.
	if got := tn.Recommend(-1); got != -1 {
		t.Fatalf("Recommend(-1) = %d, want -1", got)
	}
	// 0 means "default": the tuner starts from DefaultRepairThreshold.
	if got := tn.Recommend(0); got != 2*DefaultRepairThreshold {
		t.Fatalf("Recommend(0) = %d, want %d", got, 2*DefaultRepairThreshold)
	}
}

func TestTunerWindowSlides(t *testing.T) {
	var tn ThresholdTuner
	// An old regime of expensive repairs...
	feed(&tn, tunerWindow, 0.050, 0.010, false)
	// ...fully displaced by a new regime of cheap repairs with fallback
	// pressure: the window must forget the old samples.
	feed(&tn, tunerWindow, 0.001, 0.050, true)
	if got := tn.Recommend(1024); got != 2048 {
		t.Fatalf("Recommend(1024) after regime change = %d, want 2048", got)
	}
}

func TestModesOtherThanRepairReproveIgnored(t *testing.T) {
	var tn ThresholdTuner
	for i := 0; i < 16; i++ {
		tn.Observe(ModeCache, false, 0.5)
		tn.Observe(ModeNoop, false, 0.5)
	}
	if tn.repair.size() != 0 || tn.reprove.size() != 0 {
		t.Fatalf("non-pricing modes landed in the windows: repair=%d reprove=%d",
			tn.repair.size(), tn.reprove.size())
	}
}
