package dynamic

import "sort"

// Tuner window and clamp defaults. The clamps keep the controller
// inside the regime where repair is meaningful: below MinTunedThreshold
// nearly every batch falls back, above MaxTunedThreshold a "repair" can
// scan the whole structure and is a re-prove in disguise.
const (
	tunerWindow = 32
	// MinTunedThreshold is the lowest repair threshold the tuner will
	// recommend.
	MinTunedThreshold = 64
	// MaxTunedThreshold is the highest repair threshold the tuner will
	// recommend.
	MaxTunedThreshold = 1 << 20
)

// ThresholdTuner is a feedback controller for a session's repair
// threshold, driven by the same per-mode latencies the /metrics
// histograms export. It compares the recent cost of repairs against
// the recent cost of re-proving: when a typical repair (p95) costs more
// than a typical re-prove (p50), the threshold is too generous — the
// repair scans more structure than starting over would — and is halved.
// When repairs are far cheaper than re-proves but many batches still
// fall back for exceeding the threshold, the threshold is too stingy
// and is doubled. Recommendations are clamped to
// [MinTunedThreshold, MaxTunedThreshold] and move one factor of two per
// call, so a noisy window cannot slam the setting.
//
// A ThresholdTuner is not safe for concurrent use; in planarcertd each
// session owns one and drives it under the session's batch mutex.
type ThresholdTuner struct {
	repair   ring
	reprove  ring
	fallback ring // 1.0 when the reprove was a threshold fallback
}

// ring is a fixed-size sliding window of float64 samples.
type ring struct {
	buf [tunerWindow]float64
	n   int // total samples ever pushed
}

func (r *ring) push(v float64) { r.buf[r.n%tunerWindow] = v; r.n++ }

func (r *ring) size() int {
	if r.n < tunerWindow {
		return r.n
	}
	return tunerWindow
}

// quantile returns the q-quantile of the window (0 when empty).
func (r *ring) quantile(q float64) float64 {
	n := r.size()
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, r.buf[:n])
	sort.Float64s(s)
	i := int(q * float64(n-1))
	return s[i]
}

// mean returns the window mean (0 when empty).
func (r *ring) mean() float64 {
	n := r.size()
	if n == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.buf[:n] {
		sum += v
	}
	return sum / float64(n)
}

// Observe records one batch outcome: its service mode, whether a
// re-prove was a repair-threshold fallback (Report.RepairFallback
// non-empty), and the batch latency in seconds. Modes other than
// repair/reprove carry no pricing signal and are ignored.
func (t *ThresholdTuner) Observe(mode Mode, thresholdFallback bool, seconds float64) {
	switch mode {
	case ModeRepair:
		t.repair.push(seconds)
	case ModeReprove:
		t.reprove.push(seconds)
		if thresholdFallback {
			t.fallback.push(1)
		} else {
			t.fallback.push(0)
		}
	}
}

// Recommend returns the threshold the controller would set given the
// current value cur, moving at most one factor of two and staying
// within the clamps. With fewer than 4 samples on either side of the
// comparison it returns cur unchanged (not enough evidence).
func (t *ThresholdTuner) Recommend(cur int) int {
	if cur < 0 {
		return cur // repair disabled by the operator; never re-enable
	}
	if cur == 0 {
		cur = DefaultRepairThreshold
	}
	clamp := func(k int) int {
		if k < MinTunedThreshold {
			return MinTunedThreshold
		}
		if k > MaxTunedThreshold {
			return MaxTunedThreshold
		}
		return k
	}
	if t.repair.size() >= 4 && t.reprove.size() >= 4 {
		repairP95 := t.repair.quantile(0.95)
		reproveP50 := t.reprove.quantile(0.50)
		if repairP95 > reproveP50 {
			return clamp(cur / 2)
		}
		if repairP95*4 < reproveP50 && t.fallback.mean() > 0.25 {
			return clamp(cur * 2)
		}
	}
	return clamp(cur)
}
