// Package dynamic maintains proof-labeling-scheme certificates for a
// mutable network under a live stream of topology updates, so that a
// steady-state update costs work proportional to the change rather than
// to the network size.
//
// A Session owns a mutable graph together with its current certificate
// assignment. Updates (edge insertions/removals, node additions) are
// queued into an update log and applied in batches. Per batch the
// maintainer:
//
//  1. computes the net effect and the *dirty region* (endpoints of
//     changed edges plus the nodes whose certificates the repair
//     touches);
//  2. attempts a localized certificate repair — chord (cotree-edge)
//     insertion/removal with interval patching on the spanning-path
//     proof for the planarity scheme, spanning-tree surgery (subtree
//     re-rooting with distance/size patching) for the spanning-tree and
//     non-planarity schemes — bounded by a configurable scope threshold;
//  3. re-verifies only the *frontier* — the dirty region plus its 1-hop
//     closure — through dist.RunPLSSubset;
//  4. falls back to a full re-prove (optionally flipping between the
//     planarity and Kuratowski-witness schemes when planarity itself
//     flips) whenever repair is impossible, out of scope, or rejected
//     by the frontier; a generation-stamped certificate cache keyed by
//     an incremental graph fingerprint short-circuits re-proves for
//     previously-certified topologies (oscillating overlay workloads).
//
// Frontier soundness. A proof-labeling verifier is local: node u's
// verdict depends only on its 1-round view (its own identifier, degree
// and certificate, plus each neighbor's identifier and certificate).
// If a batch changes certificates only at a node set D and edges only
// between nodes of D, then every node outside D ∪ N(D) has a
// bit-identical view before and after the batch, hence an unchanged
// verdict. Starting from a globally accepted assignment, re-verifying
// D ∪ N(D) therefore decides global acceptance exactly — this is the
// local checkability of certificates that makes incremental
// maintenance sound regardless of how clever (or wrong) the repair
// heuristic is: a bad repair is caught on the frontier and demoted to a
// full re-prove.
//
// Concurrency. A Session is deliberately single-goroutine: it has no
// internal locking, and callers that share one session across
// goroutines must serialize every method. The planarcertd server
// (internal/server) wraps each session in exactly such a serialization
// layer and bounds the verification fan-out of many concurrent sessions
// with a shared dist.Budget.
package dynamic
