package dynamic

import (
	"fmt"

	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/graph"
)

// planarState is the structured Theorem 1 certificate assignment kept
// alongside the planarity scheme: the DFS-mapping of the last full
// prove (ranks, copies, tree parents), the live interval table of the
// spanning-path proof, the chord attachment of every cotree edge, and
// the decoded per-node certificates with their holder assignment.
//
// Localized repair exploits the nesting structure of the chord family
// over ranks 1..2n-1 (Section 3.1 of the paper): the chords of a
// path-outerplanar witness form a laminar family, and I(x) is the
// innermost chord strictly covering rank x.
//
//   - Removing a cotree edge removes one chord c = [a, b]. Exactly the
//     ranks x with I(x) = c are re-covered, by the innermost chord J
//     strictly containing c (c's parent in the laminar family); J is
//     computable from I(a), I(b) and the chords anchored at a or b —
//     all local to the chord's endpoints.
//   - Adding an edge {u, v} attaches a chord between a copy a of u and
//     a copy b of v with I(a) = I(b) =: P. That equality implies the
//     new chord crosses nothing (any crossing chord would strictly
//     cover exactly one endpoint, contradicting the shared innermost
//     cover), and exactly the ranks x in (a, b) with I(x) = P are
//     re-covered by the new chord. If no copy pair satisfies it, the
//     chord cannot be added under the current embedding and the
//     session falls back to a full re-prove.
//
// Every patched rank interval is propagated into the edge certificates
// that claim it: the tree-edge certificates of the two path edges at
// that rank plus the chords attached there — so the verifier's
// rank -> interval claims stay globally consistent.
//
// Tree-edge removals and node additions renumber ranks globally and are
// out of repair scope.
type planarState struct {
	g      *graph.Graph
	n2     int
	f      []int           // rank -> node index (1..n2)
	copies [][]int         // node index -> ranks, ascending
	parent []int           // spanning-tree parent by index
	iv     []core.Interval // rank -> I(rank)
	chords map[graph.Edge][2]int
	byRank map[int][]graph.Edge
	objs   map[graph.ID]*core.PlanarCert
	holder map[graph.Edge]graph.ID
}

func newPlanarState(g *graph.Graph, tr *core.Transform, objs map[graph.ID]*core.PlanarCert, holders map[graph.Edge]graph.ID) *planarState {
	p := &planarState{
		g:      g,
		n2:     tr.N2,
		f:      tr.F,
		copies: tr.Copies,
		parent: tr.Parent,
		iv:     tr.Intervals,
		chords: tr.CotreeRanks,
		byRank: make(map[int][]graph.Edge, len(tr.CotreeRanks)),
		objs:   objs,
		holder: holders,
	}
	for e, rr := range tr.CotreeRanks {
		p.byRank[rr[0]] = append(p.byRank[rr[0]], e)
		p.byRank[rr[1]] = append(p.byRank[rr[1]], e)
	}
	return p
}

// repair implements repairState for the planarity scheme.
func (p *planarState) repair(nb *netBatch, budget int) (map[graph.ID]bits.Certificate, []int, bool, string) {
	dirty := make(map[graph.ID]bool)
	for _, pr := range nb.removedEdges {
		if ok, reason := p.removeChord(pr, &budget, dirty); !ok {
			return nil, nil, false, reason
		}
	}
	for _, pr := range nb.addedEdges {
		if ok, reason := p.addChord(pr, &budget, dirty); !ok {
			return nil, nil, false, reason
		}
	}
	certs := make(map[graph.ID]bits.Certificate, len(dirty))
	changed := make([]int, 0, len(dirty))
	for id := range dirty {
		var w bits.Writer
		if err := p.objs[id].Encode(&w); err != nil {
			return nil, nil, false, "re-encode: " + err.Error()
		}
		certs[id] = bits.FromWriter(&w)
		if idx, ok := p.g.IndexOf(id); ok {
			changed = append(changed, idx)
		}
	}
	return certs, changed, true, ""
}

func (p *planarState) idxPair(pr [2]graph.ID) (graph.Edge, bool) {
	ia, ok1 := p.g.IndexOf(pr[0])
	ib, ok2 := p.g.IndexOf(pr[1])
	if !ok1 || !ok2 {
		return graph.Edge{}, false
	}
	return graph.NewEdge(ia, ib), true
}

func (p *planarState) removeChord(pr [2]graph.ID, budget *int, dirty map[graph.ID]bool) (bool, string) {
	e, ok := p.idxPair(pr)
	if !ok {
		return false, "unknown endpoint"
	}
	if p.parent[e.U] == e.V || p.parent[e.V] == e.U {
		return false, "spanning-tree edge removed (ranks renumber globally)"
	}
	rr, ok := p.chords[e]
	if !ok {
		return false, "no chord recorded for removed edge"
	}
	a, b := rr[0], rr[1]
	if a > b {
		a, b = b, a
	}
	if *budget -= b - a + 1; *budget < 0 {
		return false, fmt.Sprintf("chord [%d,%d] exceeds repair threshold", a, b)
	}
	// Detach the chord before computing its parent cover.
	delete(p.chords, e)
	p.byRank[a] = dropEdge(p.byRank[a], e)
	p.byRank[b] = dropEdge(p.byRank[b], e)
	hid := p.holder[e]
	delete(p.holder, e)
	if !p.dropEdgeCert(hid, pr) {
		return false, "certificate holder lost the edge certificate"
	}
	dirty[hid] = true
	// Re-cover the ranks whose innermost cover was the removed chord.
	j := p.coverOf(a, b)
	chordIv := core.Interval{A: a, B: b}
	for x := a + 1; x < b; x++ {
		if p.iv[x] == chordIv {
			if ok, reason := p.setRankInterval(x, j, dirty); !ok {
				return false, reason
			}
		}
	}
	return true, ""
}

func (p *planarState) addChord(pr [2]graph.ID, budget *int, dirty map[graph.ID]bool) (bool, string) {
	e, ok := p.idxPair(pr)
	if !ok {
		return false, "unknown endpoint"
	}
	// Pick an attachable copy pair: ranks a < b of the two endpoints
	// whose face chains share a face containing [a, b] (see the type
	// comment). The innermost common face J becomes the chord's parent.
	// Minimising the width minimises the ranks to patch.
	bestA, bestB := -1, -1
	var bestJ core.Interval
	var rankU, rankV int
	for _, ru := range p.copies[e.U] {
		for _, rv := range p.copies[e.V] {
			a, b := ru, rv
			if a > b {
				a, b = b, a
			}
			if b-a < 2 {
				continue
			}
			j, ok := p.commonFace(a, b)
			if !ok {
				continue
			}
			if bestA == -1 || b-a < bestB-bestA || (b-a == bestB-bestA && a < bestA) {
				bestA, bestB = a, b
				bestJ = j
				rankU, rankV = ru, rv
			}
		}
	}
	if bestA == -1 {
		return false, "no non-crossing chord attachment under the current embedding"
	}
	if *budget -= bestB - bestA + 1; *budget < 0 {
		return false, fmt.Sprintf("chord [%d,%d] exceeds repair threshold", bestA, bestB)
	}
	idU, idV := p.g.IDOf(e.U), p.g.IDOf(e.V)
	cu := len(p.objs[idU].Edges)
	cv := len(p.objs[idV].Edges)
	hid := idU
	if cv < cu {
		hid = idV
	}
	if min(cu, cv) >= core.MaxEdgeCerts {
		return false, "both endpoints at the edge-certificate cap"
	}
	ec := &core.EdgeCert{
		IsTree: false,
		IDU:    idU, IDV: idV,
		RankU: rankU, RankV: rankV,
		IU: p.iv[rankU], IV: p.iv[rankV],
	}
	p.objs[hid].Edges = append(p.objs[hid].Edges, ec)
	p.holder[e] = hid
	p.chords[e] = [2]int{rankU, rankV}
	p.byRank[rankU] = append(p.byRank[rankU], e)
	p.byRank[rankV] = append(p.byRank[rankV], e)
	dirty[hid] = true
	chordIv := core.Interval{A: bestA, B: bestB}
	for x := bestA + 1; x < bestB; x++ {
		if p.iv[x] == bestJ {
			if ok, reason := p.setRankInterval(x, chordIv, dirty); !ok {
				return false, reason
			}
		}
	}
	return true, ""
}

// facesOf lists the faces bordering rank x that could host a chord
// spanning past x on both sides of the containment filter: the chords
// anchored at x plus I(x). The laminar structure makes this a chain.
func (p *planarState) facesOf(x int) []core.Interval {
	out := []core.Interval{p.iv[x]}
	for _, ge := range p.byRank[x] {
		rr := p.chords[ge]
		lo, hi := rr[0], rr[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		out = append(out, core.Interval{A: lo, B: hi})
	}
	return out
}

// commonFace returns the innermost face bordering both rank a and rank
// b that contains [a, b] — the parent a new chord [a, b] would have. A
// miss means the chord cannot be drawn without crossings under the
// current embedding.
func (p *planarState) commonFace(a, b int) (core.Interval, bool) {
	fb := make(map[core.Interval]bool)
	for _, f := range p.facesOf(b) {
		if f.A <= a && f.B >= b {
			fb[f] = true
		}
	}
	best, found := core.Interval{}, false
	for _, f := range p.facesOf(a) {
		if f.A > a || f.B < b || !fb[f] {
			continue
		}
		if !found || f.A > best.A || (f.A == best.A && f.B < best.B) {
			best, found = f, true
		}
	}
	return best, found
}

// coverOf returns the innermost chord strictly containing [a, b] (its
// parent in the laminar chord family), after [a, b] itself has been
// detached: the innermost of I(a), I(b) and the chords anchored at a or
// b that span past the other endpoint; the sentinel when none exists.
func (p *planarState) coverOf(a, b int) core.Interval {
	best := core.Sentinel(p.n2)
	consider := func(c core.Interval) {
		if c.A > a || c.B < b || (c.A == a && c.B == b) {
			return
		}
		if c.A > best.A || (c.A == best.A && c.B < best.B) {
			best = c
		}
	}
	consider(p.iv[a])
	consider(p.iv[b])
	for _, ge := range p.byRank[a] {
		rr := p.chords[ge]
		lo, hi := rr[0], rr[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == a && hi > b {
			consider(core.Interval{A: lo, B: hi})
		}
	}
	for _, ge := range p.byRank[b] {
		rr := p.chords[ge]
		lo, hi := rr[0], rr[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi == b && lo < a {
			consider(core.Interval{A: lo, B: hi})
		}
	}
	return best
}

// setRankInterval updates I(x) and propagates the new value into every
// edge certificate claiming rank x: the tree-edge certificates of the
// two path edges at x, plus the chords attached at x.
func (p *planarState) setRankInterval(x int, niv core.Interval, dirty map[graph.ID]bool) (bool, string) {
	p.iv[x] = niv
	if x > 1 {
		if ok := p.patchPathEdge(x-1, x, x, niv, dirty); !ok {
			return false, fmt.Sprintf("no tree certificate for path edge (%d,%d)", x-1, x)
		}
	}
	if x < p.n2 {
		if ok := p.patchPathEdge(x, x+1, x, niv, dirty); !ok {
			return false, fmt.Sprintf("no tree certificate for path edge (%d,%d)", x, x+1)
		}
	}
	for _, ge := range p.byRank[x] {
		if ok := p.patchChord(ge, x, niv, dirty); !ok {
			return false, "no certificate for chord at rank " + fmt.Sprint(x)
		}
	}
	return true, ""
}

// patchPathEdge updates the interval fields equal to rank x in the tree
// certificate of the tree edge underlying path edge (i, i+1).
func (p *planarState) patchPathEdge(i, j, x int, niv core.Interval, dirty map[graph.ID]bool) bool {
	ge := graph.NewEdge(p.f[i], p.f[j])
	ec, hid, ok := p.edgeCertOf(ge)
	if !ok || !ec.IsTree {
		return false
	}
	if ec.PA == x {
		ec.IPA = niv
	}
	if ec.CMin == x {
		ec.ICMin = niv
	}
	if ec.CMax == x {
		ec.ICMax = niv
	}
	if ec.PB == x {
		ec.IPB = niv
	}
	dirty[hid] = true
	return true
}

// patchChord updates the interval field of the endpoint at rank x in a
// chord's certificate.
func (p *planarState) patchChord(ge graph.Edge, x int, niv core.Interval, dirty map[graph.ID]bool) bool {
	ec, hid, ok := p.edgeCertOf(ge)
	if !ok || ec.IsTree {
		return false
	}
	if ec.RankU == x {
		ec.IU = niv
	}
	if ec.RankV == x {
		ec.IV = niv
	}
	dirty[hid] = true
	return true
}

// edgeCertOf locates the stored certificate of a graph edge.
func (p *planarState) edgeCertOf(ge graph.Edge) (*core.EdgeCert, graph.ID, bool) {
	hid, ok := p.holder[ge]
	if !ok {
		return nil, 0, false
	}
	idU, idV := p.g.IDOf(ge.U), p.g.IDOf(ge.V)
	for _, ec := range p.objs[hid].Edges {
		if ec.IsTree {
			if (ec.ParentID == idU && ec.ChildID == idV) || (ec.ParentID == idV && ec.ChildID == idU) {
				return ec, hid, true
			}
		} else if (ec.IDU == idU && ec.IDV == idV) || (ec.IDU == idV && ec.IDV == idU) {
			return ec, hid, true
		}
	}
	return nil, 0, false
}

// dropEdgeCert removes the certificate of edge pr from holder hid.
func (p *planarState) dropEdgeCert(hid graph.ID, pr [2]graph.ID) bool {
	obj, ok := p.objs[hid]
	if !ok {
		return false
	}
	for i, ec := range obj.Edges {
		if ec.IsTree {
			continue
		}
		if (ec.IDU == pr[0] && ec.IDV == pr[1]) || (ec.IDU == pr[1] && ec.IDV == pr[0]) {
			obj.Edges = append(obj.Edges[:i], obj.Edges[i+1:]...)
			return true
		}
	}
	return false
}

func dropEdge(s []graph.Edge, e graph.Edge) []graph.Edge {
	for i, x := range s {
		if x == e {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

var _ repairState = (*planarState)(nil)
