package dynamic

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/core"
	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/planarity"
	"github.com/planarcert/planarcert/internal/pls"
)

func planarCfg() Config {
	return Config{Scheme: core.PlanarScheme{}, Counterpart: core.NonPlanarScheme{}}
}

// checkParity asserts the acceptance criterion: after any update
// sequence, the session's state verifies exactly like a fresh
// Certify+Verify of the same graph under the appropriate scheme.
func checkParity(t *testing.T, s *Session) {
	t.Helper()
	g := s.Graph()
	if g.N() == 0 || !g.Connected() {
		if s.Certified() {
			t.Fatalf("gen %d: certified on an uncertifiable graph (n=%d, connected=%v)",
				s.Generation(), g.N(), g.Connected())
		}
		return
	}
	planar := planarity.IsPlanar(g)
	if !s.Certified() {
		t.Fatalf("gen %d: uncertified on a connected graph (planar=%v): %+v",
			s.Generation(), planar, s.Last())
	}
	wantScheme := "planarity"
	if !planar {
		wantScheme = "non-planarity"
	}
	if got := s.ActiveScheme().Name(); got != wantScheme {
		t.Fatalf("gen %d: active scheme %s, want %s", s.Generation(), got, wantScheme)
	}
	if out := s.VerifyFull(); !out.AllAccept() {
		id, reason, _ := out.FirstRejection()
		t.Fatalf("gen %d (%s): session state rejected at node %d: %s",
			s.Generation(), s.Last().Mode, id, reason)
	}
	fresh, err := pls.Run(s.ActiveScheme(), g.Clone())
	if err != nil {
		t.Fatalf("gen %d: fresh prover failed: %v", s.Generation(), err)
	}
	if !fresh.AllAccept() {
		t.Fatalf("gen %d: fresh certification rejected", s.Generation())
	}
}

// TestChordOscillation removes and re-adds cotree edges of a planar
// triangulation and checks that the session absorbs them as localized
// repairs with full parity.
func TestChordOscillation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.StackedTriangulation(120, rng)
	s, err := NewSession(g, planarCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !s.Certified() {
		t.Fatalf("initial certification failed: %+v", s.Last())
	}
	repairs := 0
	for _, e := range s.Graph().Edges() {
		a, b := s.Graph().IDOf(e.U), s.Graph().IDOf(e.V)
		rep, err := s.Apply([]Update{{Op: RemoveEdge, A: a, B: b}})
		if err != nil {
			t.Fatal(err)
		}
		checkParity(t, s)
		if rep.Mode == ModeRepair {
			repairs++
		}
		rep2, err := s.Apply([]Update{{Op: AddEdge, A: a, B: b}})
		if err != nil {
			t.Fatal(err)
		}
		checkParity(t, s)
		if rep.Mode == ModeRepair && rep2.Mode != ModeRepair && rep2.Mode != ModeCache {
			t.Fatalf("re-adding a repaired edge fell back to %s (%s)", rep2.Mode, rep2.RepairFallback)
		}
		if repairs > 25 {
			break
		}
	}
	if repairs < 5 {
		t.Fatalf("only %d chord removals were absorbed as repairs", repairs)
	}
}

// TestChordRepairIsLocal asserts the steady-state promise: a chord
// oscillation far from most of the graph re-verifies a frontier much
// smaller than n.
func TestChordRepairIsLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.StackedTriangulation(400, rng)
	s, err := NewSession(g, planarCfg())
	if err != nil {
		t.Fatal(err)
	}
	smallest := s.Graph().N()
	for _, e := range s.Graph().Edges() {
		a, b := s.Graph().IDOf(e.U), s.Graph().IDOf(e.V)
		rep, err := s.Apply([]Update{{Op: RemoveEdge, A: a, B: b}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Mode == ModeRepair && rep.Verified < smallest {
			smallest = rep.Verified
		}
		if _, err := s.Apply([]Update{{Op: AddEdge, A: a, B: b}}); err != nil {
			t.Fatal(err)
		}
		if smallest < 40 {
			break
		}
	}
	if smallest >= s.Graph().N()/2 {
		t.Fatalf("no repair verified fewer than n/2 nodes (best %d of %d)", smallest, s.Graph().N())
	}
	checkParity(t, s)
}

// TestTreeSurgery removes spanning-tree edges under the spanning-tree
// scheme and checks the surgery path keeps certificates valid.
func TestTreeSurgery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := gen.RandomPlanar(80, 140, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The cache is disabled so re-adds re-prove and keep the structured
	// state warm (a cache adoption leaves it cold by design).
	s, err := NewSession(g, Config{Scheme: pls.SpanningTreeScheme{}, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Certified() {
		t.Fatalf("initial certification failed: %+v", s.Last())
	}
	surgeries, noops := 0, 0
	for _, e := range s.Graph().Edges() {
		if surgeries >= 10 && noops >= 10 {
			break
		}
		u, v := e.U, e.V
		ts := s.state.(*treeState)
		_, _, isTree := ts.st.isTreeEdge(u, v)
		a, b := s.Graph().IDOf(u), s.Graph().IDOf(v)
		rep, err := s.Apply([]Update{{Op: RemoveEdge, A: a, B: b}})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Graph().Connected() {
			if s.Certified() {
				t.Fatal("certified a disconnected graph")
			}
		} else {
			if !s.Certified() {
				t.Fatalf("lost certification removing {%d,%d}: %+v", a, b, rep)
			}
			if out := s.VerifyFull(); !out.AllAccept() {
				t.Fatalf("full verify rejected after removing {%d,%d} (mode %s): %v",
					a, b, rep.Mode, out.Reasons)
			}
			if rep.Mode == ModeRepair {
				if isTree && rep.Dirty > 0 {
					surgeries++
				}
				if !isTree {
					if rep.Dirty != 0 {
						t.Fatalf("cotree removal dirtied %d certificates", rep.Dirty)
					}
					noops++
				}
			}
		}
		if _, err := s.Apply([]Update{{Op: AddEdge, A: a, B: b}}); err != nil {
			t.Fatal(err)
		}
		if out := s.VerifyFull(); s.Certified() && !out.AllAccept() {
			t.Fatalf("full verify rejected after re-adding {%d,%d}: %v", a, b, out.Reasons)
		}
	}
	if surgeries == 0 {
		t.Fatal("no tree-edge removal exercised surgery")
	}
	if noops == 0 {
		t.Fatal("no cotree removal exercised the zero-dirty path")
	}
}

// TestPlanarityFlip grows a planar graph into K5 and back, checking the
// scheme flips both ways.
func TestPlanarityFlip(t *testing.T) {
	g := graph.NewWithNodes(5)
	var edges [][2]graph.ID
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			edges = append(edges, [2]graph.ID{graph.ID(a), graph.ID(b)})
		}
	}
	// Start with K5 minus one edge (planar).
	for _, e := range edges[:len(edges)-1] {
		ia, _ := g.IndexOf(e[0])
		ib, _ := g.IndexOf(e[1])
		g.MustAddEdge(ia, ib)
	}
	s, err := NewSession(g, planarCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveScheme().Name(); got != "planarity" || !s.Certified() {
		t.Fatalf("initial state: scheme %s certified %v", got, s.Certified())
	}
	last := edges[len(edges)-1]
	rep, err := s.Apply([]Update{{Op: AddEdge, A: last[0], B: last[1]}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeFlip || s.ActiveScheme().Name() != "non-planarity" || !rep.Accepted {
		t.Fatalf("completing K5 did not flip: %+v", rep)
	}
	checkParity(t, s)
	rep, err = s.Apply([]Update{{Op: RemoveEdge, A: last[0], B: last[1]}})
	if err != nil {
		t.Fatal(err)
	}
	if s.ActiveScheme().Name() != "planarity" || !rep.Accepted {
		t.Fatalf("removing the K5 edge did not flip back: %+v", rep)
	}
	if rep.Mode != ModeCache {
		t.Fatalf("flip back should have hit the certificate cache, got %s", rep.Mode)
	}
	if rep.CacheGeneration != 0 {
		t.Fatalf("cache entry stamped at generation %d, want 0", rep.CacheGeneration)
	}
	checkParity(t, s)
	// Oscillate once more: both directions are now cached.
	rep, err = s.Apply([]Update{{Op: AddEdge, A: last[0], B: last[1]}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeCache || s.ActiveScheme().Name() != "non-planarity" {
		t.Fatalf("second flip missed the cache: %+v", rep)
	}
	checkParity(t, s)
}

// TestNonPlanarRepair checks the Kuratowski-witness scheme absorbs
// additions and witness-avoiding removals without re-proving.
func TestNonPlanarRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := gen.PlantSubdivision(60, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(g, Config{Scheme: core.NonPlanarScheme{}, Counterpart: core.PlanarScheme{}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Certified() || s.ActiveScheme().Name() != "non-planarity" {
		t.Fatalf("initial certification failed: %+v", s.Last())
	}
	// Add a fresh edge: always witness-preserving.
	var a, b graph.ID
	found := false
	for x := 0; x < g.N() && !found; x++ {
		for y := x + 1; y < g.N(); y++ {
			if !g.HasEdge(x, y) {
				a, b = g.IDOf(x), g.IDOf(y)
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("graph is complete")
	}
	rep, err := s.Apply([]Update{{Op: AddEdge, A: a, B: b}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeRepair || rep.Dirty != 0 {
		t.Fatalf("witness-preserving addition not absorbed as a zero-dirty repair: %+v", rep)
	}
	if out := s.VerifyFull(); !out.AllAccept() {
		t.Fatalf("full verify rejected: %v", out.Reasons)
	}
	checkParityNonPlanar(t, s)
}

func checkParityNonPlanar(t *testing.T, s *Session) {
	t.Helper()
	if planarity.IsPlanar(s.Graph()) {
		t.Fatal("test graph unexpectedly planar")
	}
	if out := s.VerifyFull(); !out.AllAccept() {
		t.Fatalf("session state rejected: %v", out.Reasons)
	}
}

// TestRandomStreamParity is the determinism-parity property test over
// random update streams crossing the planar/non-planar boundary.
func TestRandomStreamParity(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		g, err := gen.RandomPlanar(36, 62, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(g, planarCfg())
		if err != nil {
			t.Fatal(err)
		}
		checkParity(t, s)
		for step := 0; step < 60; step++ {
			batchLen := 1 + rng.Intn(3)
			var batch []Update
			for k := 0; k < batchLen; k++ {
				x := rng.Intn(s.Graph().N())
				y := rng.Intn(s.Graph().N())
				if x == y {
					continue
				}
				a, b := s.Graph().IDOf(x), s.Graph().IDOf(y)
				if s.Graph().HasEdge(x, y) {
					batch = append(batch, Update{Op: RemoveEdge, A: a, B: b})
				} else {
					batch = append(batch, Update{Op: AddEdge, A: a, B: b})
				}
			}
			if len(batch) == 0 {
				continue
			}
			if _, err := s.Apply(batch); err != nil {
				// In-batch duplicates (same pair picked twice) are
				// rejected wholesale; that path is exercised too.
				continue
			}
			checkParity(t, s)
		}
	}
}

// TestNodeAdditions batches node+edge growth and checks it re-proves.
func TestNodeAdditions(t *testing.T) {
	g := gen.Cycle(6)
	s, err := NewSession(g, planarCfg())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Apply([]Update{
		{Op: AddNode, A: 100},
		{Op: AddEdge, A: 100, B: 0},
		{Op: AddEdge, A: 100, B: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeReprove || !rep.Accepted {
		t.Fatalf("node growth batch: %+v", rep)
	}
	if s.Graph().N() != 7 || s.Graph().M() != 8 {
		t.Fatalf("graph is n=%d m=%d", s.Graph().N(), s.Graph().M())
	}
	checkParity(t, s)
	// An isolated node disconnects the graph: uncertified until linked.
	rep, err = s.Apply([]Update{{Op: AddNode, A: 200}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeUncertified || rep.Accepted || rep.ProveErr == nil {
		t.Fatalf("isolated node: %+v", rep)
	}
	rep, err = s.Apply([]Update{{Op: AddEdge, A: 200, B: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("reconnecting failed: %+v", rep)
	}
	checkParity(t, s)
}

// TestBatchValidation checks invalid logs are rejected atomically.
func TestBatchValidation(t *testing.T) {
	g := gen.Cycle(5)
	s, err := NewSession(g, planarCfg())
	if err != nil {
		t.Fatal(err)
	}
	n, m, gen0 := s.Graph().N(), s.Graph().M(), s.Generation()
	cases := [][]Update{
		{{Op: AddEdge, A: 0, B: 0}},                            // self-loop
		{{Op: AddEdge, A: 0, B: 99}},                           // unknown endpoint
		{{Op: AddEdge, A: 0, B: 1}},                            // duplicate edge
		{{Op: RemoveEdge, A: 0, B: 2}},                         // absent edge
		{{Op: AddNode, A: 3}},                                  // duplicate node
		{{Op: AddEdge, A: 0, B: 2}, {Op: AddNode, A: 4}},       // valid then invalid
		{{Op: AddEdge, A: 0, B: 2}, {Op: AddEdge, A: 0, B: 2}}, // in-batch duplicate
	}
	for i, batch := range cases {
		if _, err := s.Apply(batch); err == nil {
			t.Fatalf("case %d: invalid batch accepted", i)
		}
		if s.Graph().N() != n || s.Graph().M() != m || s.Generation() != gen0 {
			t.Fatalf("case %d: invalid batch mutated the session", i)
		}
	}
	// A batch whose net effect cancels is a noop.
	rep, err := s.Apply([]Update{{Op: AddEdge, A: 0, B: 2}, {Op: RemoveEdge, A: 0, B: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeNoop || !rep.Accepted {
		t.Fatalf("cancelled batch: %+v", rep)
	}
	// Queue + Flush defers application.
	s.Queue(Update{Op: AddEdge, A: 0, B: 2})
	if s.Graph().HasEdge(0, 2) {
		t.Fatal("Queue applied an update early")
	}
	rep, err = s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Graph().HasEdge(0, 2) || !rep.Accepted {
		t.Fatalf("flush failed: %+v", rep)
	}
	checkParity(t, s)
}

// TestRepairDisabledUsesCache checks the reprove path populates the
// cache and oscillations hit it with the original generation stamp.
func TestRepairDisabledUsesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.StackedTriangulation(60, rng)
	s, err := NewSession(g, Config{
		Scheme:          core.PlanarScheme{},
		Counterpart:     core.NonPlanarScheme{},
		RepairThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := s.Graph().Edges()[20]
	a, b := s.Graph().IDOf(e.U), s.Graph().IDOf(e.V)
	rep, err := s.Apply([]Update{{Op: RemoveEdge, A: a, B: b}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeReprove && rep.Mode != ModeUncertified {
		t.Fatalf("repair disabled but mode is %s", rep.Mode)
	}
	removedCertified := s.Certified()
	rep, err = s.Apply([]Update{{Op: AddEdge, A: a, B: b}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeCache || rep.CacheGeneration != 0 {
		t.Fatalf("re-adding should hit the generation-0 cache entry: %+v", rep)
	}
	if removedCertified {
		rep, err = s.Apply([]Update{{Op: RemoveEdge, A: a, B: b}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Mode != ModeCache || rep.CacheGeneration != 1 {
			t.Fatalf("second removal should hit the generation-1 entry: %+v", rep)
		}
	}
	checkParity(t, s)
}

// TestThresholdZeroScopeFallsBack checks a tiny threshold demotes wide
// repairs to re-proves without losing correctness.
func TestThresholdZeroScopeFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gen.StackedTriangulation(50, rng)
	s, err := NewSession(g, Config{
		Scheme:          core.PlanarScheme{},
		Counterpart:     core.NonPlanarScheme{},
		RepairThreshold: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := s.Graph().Edges()[10]
	a, b := s.Graph().IDOf(e.U), s.Graph().IDOf(e.V)
	rep, err := s.Apply([]Update{{Op: RemoveEdge, A: a, B: b}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode == ModeRepair {
		t.Fatalf("threshold 1 should not allow chord repairs: %+v", rep)
	}
	checkParity(t, s)
}
