package dynamic

import (
	"github.com/planarcert/planarcert/internal/bits"
	"github.com/planarcert/planarcert/internal/graph"
	"github.com/planarcert/planarcert/internal/pls"
)

// fingerprint is an order-independent 128-bit hash of the labelled
// topology (node identifiers plus edges over identifiers). Updates
// toggle their element's hash in and out by XOR, so maintaining it
// costs O(1) per update and an oscillating workload returns to a
// previously seen fingerprint bit-exactly.
type fingerprint struct {
	lo, hi uint64
}

// mix64 is the splitmix64 finaliser, a cheap full-avalanche mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func nodeHash(id graph.ID) fingerprint {
	h := mix64(uint64(id) + 0x9e3779b97f4a7c15)
	return fingerprint{lo: h, hi: mix64(h ^ 0xda942042e4dd58b5)}
}

func edgeHash(a, b graph.ID) fingerprint {
	if a > b {
		a, b = b, a
	}
	h := mix64(mix64(uint64(a)+0x8cb92ba72f3d8dd7) + 3*mix64(uint64(b)+0x5851f42d4c957f2d))
	return fingerprint{lo: h, hi: mix64(h ^ 0x2545f4914f6cdd1d)}
}

func (f fingerprint) xor(o fingerprint) fingerprint {
	return fingerprint{lo: f.lo ^ o.lo, hi: f.hi ^ o.hi}
}

// apply toggles the net batch into the fingerprint (XOR is its own
// inverse, so additions and removals share the rule).
func (f fingerprint) apply(nb *netBatch) fingerprint {
	for _, id := range nb.addedNodes {
		f = f.xor(nodeHash(id))
	}
	for _, p := range nb.addedEdges {
		f = f.xor(edgeHash(p[0], p[1]))
	}
	for _, p := range nb.removedEdges {
		f = f.xor(edgeHash(p[0], p[1]))
	}
	return f
}

// fingerprintOf hashes a graph from scratch (session construction).
func fingerprintOf(g *graph.Graph) fingerprint {
	var f fingerprint
	for _, id := range g.IDs() {
		f = f.xor(nodeHash(id))
	}
	for _, e := range g.Edges() {
		f = f.xor(edgeHash(g.IDOf(e.U), g.IDOf(e.V)))
	}
	return f
}

// FingerprintOf returns the 128-bit order-independent topology
// fingerprint of g — the same value a live session maintains
// incrementally (see Session.Fingerprint). The persistence layer uses
// it to cross-check a restored network against its snapshot key.
func FingerprintOf(g *graph.Graph) (hi, lo uint64) {
	f := fingerprintOf(g)
	return f.hi, f.lo
}

// cacheKey identifies a certified topology: the fingerprint plus the
// exact node and edge counts (a cheap second factor against collisions).
type cacheKey struct {
	fp   fingerprint
	n, m int
}

// cacheEntry is one certified assignment. The certificate map is shared
// with the session copy-on-write; entries are immutable once stored.
type cacheEntry struct {
	scheme pls.Scheme
	certs  map[graph.ID]bits.Certificate
	gen    uint64 // generation stamp at store time
}

// certCache is a small FIFO-evicting map of certified topologies.
type certCache struct {
	cap   int
	m     map[cacheKey]*cacheEntry
	order []cacheKey
}

func newCertCache(capacity int) *certCache {
	return &certCache{cap: capacity, m: make(map[cacheKey]*cacheEntry, capacity)}
}

func (c *certCache) lookup(k cacheKey) *cacheEntry {
	if c.cap <= 0 {
		return nil
	}
	return c.m[k]
}

func (c *certCache) store(k cacheKey, e *cacheEntry) {
	if c.cap <= 0 {
		return
	}
	if _, ok := c.m[k]; ok {
		c.m[k] = e
		return
	}
	c.m[k] = e
	c.order = append(c.order, k)
	for len(c.order) > c.cap {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
}

func (c *certCache) evict(k cacheKey) {
	delete(c.m, k)
	for i, ok := range c.order {
		if ok == k {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}
