package gen_test

import (
	"math/rand"
	"testing"

	"github.com/planarcert/planarcert/internal/gen"
	"github.com/planarcert/planarcert/internal/graph"
)

func TestPathCycleStar(t *testing.T) {
	p := gen.Path(6)
	if p.N() != 6 || p.M() != 5 {
		t.Fatalf("Path(6) = %v", p)
	}
	c := gen.Cycle(6)
	if c.M() != 6 {
		t.Fatalf("Cycle(6) = %v", c)
	}
	for v := 0; v < 6; v++ {
		if c.Degree(v) != 2 {
			t.Fatalf("cycle degree at %d = %d", v, c.Degree(v))
		}
	}
	s := gen.Star(7)
	if s.Degree(0) != 6 || s.M() != 6 {
		t.Fatalf("Star(7) = %v", s)
	}
}

func TestWheel(t *testing.T) {
	w := gen.Wheel(6)
	if w.N() != 6 || w.M() != 10 {
		t.Fatalf("Wheel(6) = %v, want n=6 m=10", w)
	}
	if w.Degree(5) != 5 {
		t.Fatalf("hub degree = %d, want 5", w.Degree(5))
	}
}

func TestCompleteAndBipartite(t *testing.T) {
	k := gen.Complete(6)
	if k.M() != 15 {
		t.Fatalf("K6 edges = %d", k.M())
	}
	b := gen.CompleteBipartite(3, 4)
	if b.N() != 7 || b.M() != 12 {
		t.Fatalf("K3,4 = %v", b)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && b.HasEdge(i, j) {
				t.Fatal("edge inside left part")
			}
		}
	}
}

func TestGrid(t *testing.T) {
	g := gen.Grid(4, 5)
	if g.N() != 20 || g.M() != 4*4+5*3 {
		t.Fatalf("Grid(4,5) = %v, want n=20 m=31", g)
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(50)
		g := gen.RandomTree(n, rng)
		if g.M() != n-1 || !g.Connected() {
			t.Fatalf("RandomTree(%d): m=%d connected=%v", n, g.M(), g.Connected())
		}
	}
}

func TestCaterpillar(t *testing.T) {
	g := gen.Caterpillar(5, 8)
	if g.N() != 13 || g.M() != 12 || !g.Connected() {
		t.Fatalf("Caterpillar = %v", g)
	}
}

func TestStackedTriangulationShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 10, 64} {
		g := gen.StackedTriangulation(n, rng)
		if g.N() != n || g.M() != 3*n-6 || !g.Connected() {
			t.Fatalf("stacked(%d) = %v", n, g)
		}
	}
	if g := gen.StackedTriangulation(2, rng); g.M() != 1 {
		t.Fatalf("stacked(2) = %v", g)
	}
}

func TestRandomPlanarEdgeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := gen.RandomPlanar(30, 45, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 45 || !g.Connected() {
		t.Fatalf("RandomPlanar(30,45) = %v connected=%v", g, g.Connected())
	}
	if _, err := gen.RandomPlanar(30, 200, rng); err == nil {
		t.Fatal("RandomPlanar accepted m > 3n-6")
	}
	if _, err := gen.RandomPlanar(30, 5, rng); err == nil {
		t.Fatal("RandomPlanar accepted m < n-1")
	}
}

func TestRandomOuterplanarShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.RandomOuterplanar(20, 1.0, rng)
	if !g.Connected() || g.M() < 20 {
		t.Fatalf("outerplanar = %v", g)
	}
	// Full density must add at least a few chords.
	if g.M() == 20 {
		t.Fatal("density 1.0 added no chords")
	}
}

func TestSeriesParallelConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := gen.SeriesParallel(30, rng)
		if !g.Connected() {
			t.Fatal("series-parallel disconnected")
		}
	}
}

func TestSubdivideEdgesKeepsDegreeProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := gen.Complete(5)
	s := gen.SubdivideEdges(g, 3, rng)
	// Branch vertices keep degree 4; all new vertices have degree 2.
	for v := 0; v < 5; v++ {
		if s.Degree(v) != 4 {
			t.Fatalf("branch degree = %d", s.Degree(v))
		}
	}
	for v := 5; v < s.N(); v++ {
		if s.Degree(v) != 2 {
			t.Fatalf("interior degree = %d", s.Degree(v))
		}
	}
}

func TestGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := gen.GNM(10, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 || g.M() != 20 {
		t.Fatalf("GNM = %v", g)
	}
	if _, err := gen.GNM(4, 10, rng); err == nil {
		t.Fatal("GNM accepted impossible edge count")
	}
}

func TestScrambleIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := gen.Grid(3, 3)
	s := gen.ScrambleIDs(g, rng)
	if s.N() != g.N() || s.M() != g.M() {
		t.Fatalf("scramble changed shape: %v vs %v", s, g)
	}
	seen := make(map[graph.ID]bool)
	for i := 0; i < s.N(); i++ {
		id := s.IDOf(i)
		if seen[id] {
			t.Fatalf("duplicate scrambled ID %d", id)
		}
		seen[id] = true
		if int(id) < 0 || int(id) >= s.N()*s.N() {
			t.Fatalf("ID %d outside polynomial range", id)
		}
	}
}

func TestKuratowskiSubdivisionShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	k5 := gen.KuratowskiSubdivision(true, 1, rng)
	if k5.N() != 5 || k5.M() != 10 {
		t.Fatalf("unstretched K5 subdivision = %v", k5)
	}
	k33 := gen.KuratowskiSubdivision(false, 5, rng)
	if k33.N() < 6 || k33.M() < 9 {
		t.Fatalf("K3,3 subdivision = %v", k33)
	}
}
