// Package gen provides deterministic and seeded graph generators for every
// graph family used by the experiments: planar families (trees, grids,
// outerplanar, series-parallel, stacked triangulations, random planar),
// non-planar families (complete graphs, complete bipartite graphs,
// Kuratowski subdivisions planted in planar hosts), and utility generators
// (paths, cycles, wheels, G(n,m)).
//
// Generators return graphs whose identifiers initially equal node indices;
// ScrambleIDs relabels a graph with random distinct identifiers from a
// range polynomial in n, matching the model of the paper.
package gen

import (
	"fmt"
	"math/rand"

	"github.com/planarcert/planarcert/internal/graph"
)

// Path returns the path graph on n vertices (n >= 1).
func Path(n int) *graph.Graph {
	g := graph.NewWithNodes(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle graph on n vertices (n >= 3).
func Cycle(n int) *graph.Graph {
	g := Path(n)
	if n >= 3 {
		g.MustAddEdge(n-1, 0)
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	g := graph.NewWithNodes(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// Wheel returns the wheel graph: a cycle on n-1 vertices plus a hub (index
// n-1) adjacent to all of them. Requires n >= 4.
func Wheel(n int) *graph.Graph {
	g := graph.NewWithNodes(n)
	for i := 0; i+1 < n-1; i++ {
		g.MustAddEdge(i, i+1)
	}
	g.MustAddEdge(n-2, 0)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(n-1, i)
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	g := graph.NewWithNodes(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

// CompleteBipartite returns K_{p,q} with parts {0..p-1} and {p..p+q-1}.
func CompleteBipartite(p, q int) *graph.Graph {
	g := graph.NewWithNodes(p + q)
	for i := 0; i < p; i++ {
		for j := 0; j < q; j++ {
			g.MustAddEdge(i, p+j)
		}
	}
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *graph.Graph {
	g := graph.NewWithNodes(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	return g
}

// RandomTree returns a uniformly random labelled tree on n vertices
// (random Prüfer-like attachment: each new vertex attaches to a uniform
// existing vertex — a random recursive tree).
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	g := graph.NewWithNodes(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i, rng.Intn(i))
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine of length spine with
// legs extra leaves distributed round-robin along the spine.
func Caterpillar(spine, legs int) *graph.Graph {
	g := graph.NewWithNodes(spine + legs)
	for i := 0; i+1 < spine; i++ {
		g.MustAddEdge(i, i+1)
	}
	for l := 0; l < legs; l++ {
		g.MustAddEdge(l%spine, spine+l)
	}
	return g
}

// StackedTriangulation returns a random maximal planar graph ("Apollonian
// network") on n >= 3 vertices: start from a triangle and repeatedly insert
// a vertex inside a uniformly random face, connecting it to the face's
// three corners. The result has exactly 3n-6 edges and is planar by
// construction.
func StackedTriangulation(n int, rng *rand.Rand) *graph.Graph {
	if n < 3 {
		return Complete(n)
	}
	g := graph.NewWithNodes(n)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	// Track faces as vertex triples; both sides of the initial triangle.
	faces := [][3]int{{0, 1, 2}, {0, 2, 1}}
	for v := 3; v < n; v++ {
		fi := rng.Intn(len(faces))
		f := faces[fi]
		g.MustAddEdge(v, f[0])
		g.MustAddEdge(v, f[1])
		g.MustAddEdge(v, f[2])
		faces[fi] = [3]int{f[0], f[1], v}
		faces = append(faces, [3]int{f[1], f[2], v}, [3]int{f[2], f[0], v})
	}
	return g
}

// RandomPlanar returns a random connected planar graph on n vertices with
// approximately m edges (n-1 <= m <= 3n-6): a stacked triangulation whose
// surplus edges are deleted uniformly at random under the constraint that
// the graph stays connected. Planarity holds by construction (subgraph of
// a planar graph).
func RandomPlanar(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	if n >= 3 && (m < n-1 || m > 3*n-6) {
		return nil, fmt.Errorf("gen: RandomPlanar(n=%d) needs n-1 <= m <= 3n-6, got m=%d", n, m)
	}
	g := StackedTriangulation(n, rng)
	if n < 3 {
		return g, nil
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		if g.M() <= m {
			break
		}
		g.RemoveEdge(e.U, e.V)
		if !g.Connected() {
			g.MustAddEdge(e.U, e.V) // rollback: deleting would disconnect
		}
	}
	if g.M() > m {
		return nil, fmt.Errorf("gen: RandomPlanar could not reach m=%d (stuck at %d)", m, g.M())
	}
	return g, nil
}

// RandomOuterplanar returns a random maximal-ish outerplanar graph: the
// cycle 0..n-1 plus a uniformly random set of non-crossing chords produced
// by recursive splitting. density in [0,1] controls how many of the
// possible chords are kept.
func RandomOuterplanar(n int, density float64, rng *rand.Rand) *graph.Graph {
	g := Cycle(n)
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		// {lo,hi} is a valid non-crossing chord unless it coincides with
		// the wrap-around cycle edge {0, n-1}.
		if hi-lo < n-1 && !g.HasEdge(lo, hi) && rng.Float64() < density {
			g.MustAddEdge(lo, hi)
		}
		mid := lo + 1 + rng.Intn(hi-lo-1)
		split(lo, mid)
		split(mid, hi)
	}
	if n >= 4 {
		split(0, n-1)
	}
	return g
}

// SeriesParallel returns a random 2-terminal series-parallel graph with
// roughly size internal compositions. Series-parallel graphs exclude K4 as
// a minor and are planar.
func SeriesParallel(size int, rng *rand.Rand) *graph.Graph {
	// Build recursively as an edge-expansion process: start with one edge
	// (the terminals), repeatedly pick an existing edge and either
	// subdivide it (series) or duplicate it via a new parallel two-path
	// (parallel with an intermediate vertex, to stay simple).
	g := graph.NewWithNodes(2)
	g.MustAddEdge(0, 1)
	type pair struct{ u, v int }
	edges := []pair{{0, 1}}
	for step := 0; step < size; step++ {
		e := edges[rng.Intn(len(edges))]
		w := g.MustAddNode(graph.ID(g.N()))
		if rng.Intn(2) == 0 && g.RemoveEdge(e.u, e.v) {
			// Series: subdivide e.
			g.MustAddEdge(e.u, w)
			g.MustAddEdge(w, e.v)
			for i := range edges {
				if edges[i] == e {
					edges[i] = pair{e.u, w}
					break
				}
			}
			edges = append(edges, pair{w, e.v})
		} else {
			// Parallel: add a disjoint two-edge path between u and v.
			g.MustAddEdge(e.u, w)
			g.MustAddEdge(w, e.v)
			edges = append(edges, pair{e.u, w}, pair{w, e.v})
		}
	}
	return g
}

// KuratowskiSubdivision returns a subdivision of K5 (if k5 is true) or of
// K3,3, where every branch edge is subdivided into a path of random length
// in [1, maxStretch] edges.
func KuratowskiSubdivision(k5 bool, maxStretch int, rng *rand.Rand) *graph.Graph {
	var base *graph.Graph
	if k5 {
		base = Complete(5)
	} else {
		base = CompleteBipartite(3, 3)
	}
	return SubdivideEdges(base, maxStretch, rng)
}

// SubdivideEdges subdivides every edge of g into a path with a random
// number of interior vertices in [0, maxStretch-1].
func SubdivideEdges(g *graph.Graph, maxStretch int, rng *rand.Rand) *graph.Graph {
	out := graph.NewWithNodes(g.N())
	for _, e := range g.Edges() {
		inner := 0
		if maxStretch > 1 {
			inner = rng.Intn(maxStretch)
		}
		prev := e.U
		for i := 0; i < inner; i++ {
			w := out.MustAddNode(graph.ID(out.N()))
			out.MustAddEdge(prev, w)
			prev = w
		}
		out.MustAddEdge(prev, e.V)
	}
	return out
}

// PlantSubdivision embeds a Kuratowski subdivision into a random planar
// host: the host is generated with RandomPlanar, and the subdivision's
// vertices are fused onto distinct host vertices by adding its edges
// between them (bridged through fresh subdivision vertices so no multi-
// edges arise). The result is connected and non-planar.
func PlantSubdivision(hostN int, k5 bool, rng *rand.Rand) (*graph.Graph, error) {
	host, err := RandomPlanar(hostN, 2*hostN-3, rng)
	if err != nil {
		return nil, err
	}
	var branch int
	if k5 {
		branch = 5
	} else {
		branch = 6
	}
	perm := rng.Perm(hostN)[:branch]
	pairs := make([][2]int, 0, 10)
	if k5 {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				pairs = append(pairs, [2]int{perm[i], perm[j]})
			}
		}
	} else {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				pairs = append(pairs, [2]int{perm[i], perm[3+j]})
			}
		}
	}
	for _, p := range pairs {
		// Always bridge through a fresh vertex: keeps the graph simple even
		// if the host already has the edge.
		w := host.MustAddNode(graph.ID(host.N()))
		host.MustAddEdge(p[0], w)
		host.MustAddEdge(w, p[1])
	}
	return host, nil
}

// GNM returns a uniformly random simple graph with n vertices and m edges.
func GNM(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	maxM := n * (n - 1) / 2
	if m > maxM {
		return nil, fmt.Errorf("gen: GNM(n=%d) supports at most %d edges, got %d", n, maxM, m)
	}
	g := graph.NewWithNodes(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
	}
	return g, nil
}

// ScrambleIDs returns a copy of g with fresh random distinct identifiers
// drawn from [0, n^2), matching the paper's polynomial ID range.
func ScrambleIDs(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	n := g.N()
	rangeMax := n * n
	if rangeMax < 8 {
		rangeMax = 8
	}
	used := make(map[int]bool, n)
	ids := make([]graph.ID, n)
	for i := range ids {
		for {
			cand := rng.Intn(rangeMax)
			if !used[cand] {
				used[cand] = true
				ids[i] = graph.ID(cand)
				break
			}
		}
	}
	out, err := g.RelabelIDs(ids)
	if err != nil {
		// Unreachable: identifiers are distinct by construction.
		panic(err)
	}
	return out
}

// RandomPathOuterplanar returns a random path-outerplanar graph with
// witness ordering 0..n-1: the path 0-1-...-(n-1) plus a random set of
// non-crossing chords (Definition 1 of the paper holds by construction).
func RandomPathOuterplanar(n int, density float64, rng *rand.Rand) *graph.Graph {
	g := Path(n)
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2 {
			return
		}
		if !g.HasEdge(lo, hi) && rng.Float64() < density {
			g.MustAddEdge(lo, hi)
		}
		mid := lo + 1 + rng.Intn(hi-lo-1)
		split(lo, mid)
		split(mid, hi)
	}
	if n >= 3 {
		split(0, n-1)
	}
	return g
}
