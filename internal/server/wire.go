package server

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/obs"
	"github.com/planarcert/planarcert/internal/wire"
)

// ndjsonTypes are the Content-Type values routed to the NDJSON update
// parser; the empty string keeps bare curl/legacy clients working.
const acceptPostTypes = "application/x-ndjson, application/json, " + wire.ContentType

// contentTypeBase returns the media type without parameters, lowercased
// ("application/json; charset=utf-8" -> "application/json").
func contentTypeBase(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.ToLower(strings.TrimSpace(ct))
}

// rejectMediaType answers 415 with an Accept-Post hint listing the
// media types POST .../updates understands.
func (s *Server) rejectMediaType(w http.ResponseWriter, r *http.Request) {
	s.met.unsupportedMedia.Add(1)
	w.Header().Set("Accept-Post", acceptPostTypes)
	writeError(w, http.StatusUnsupportedMediaType,
		"unsupported Content-Type %q (want one of %s)", r.Header.Get("Content-Type"), acceptPostTypes)
}

// wireScratch is the pooled per-request arena of the binary updates
// path: the body buffer, the frame decode scratch, and the converted
// planarcert.Update slab are all reused, so a steady-state binary batch
// costs O(1) allocations end to end.
type wireScratch struct {
	body []byte
	ws   *wire.Scratch
	ups  []planarcert.Update
}

var wireScratchPool = sync.Pool{New: func() interface{} {
	return &wireScratch{ws: wire.GetScratch()}
}}

// readAllInto reads r to EOF into buf's capacity, growing it only when
// needed (io.ReadAll without the per-request allocation).
func readAllInto(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// writeAckFrame responds with a single batch-ack frame. Encode failures
// (out-of-range values) fall back to the JSON error envelope.
func (s *Server) writeAckFrame(w http.ResponseWriter, code int, ack *planarcert.WireBatchAck) {
	frame, err := planarcert.EncodeBatchAckFrame(ack)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode ack frame: %v", err)
		return
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(code)
	_, _ = w.Write(frame)
	s.met.wireFrames.Add(1)
}

// handleUpdatesBinary is the frame-protocol branch of handleUpdates:
// the body is one update-batch frame (the frame's mode field replaces
// the ?mode= query parameter), decoded zero-copy into pooled scratch,
// and the ack is a batch-ack frame. Errors keep the JSON envelope —
// only success responses are binary.
func (s *Server) handleUpdatesBinary(w http.ResponseWriter, r *http.Request, ms *session) {
	sc := wireScratchPool.Get().(*wireScratch)
	defer wireScratchPool.Put(sc)
	var err error
	sc.body, err = readAllInto(sc.body, http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	kind, payload, n, err := wire.ParseFrame(sc.body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad frame: %v", err)
		return
	}
	if kind != wire.KindUpdateBatch || n != len(sc.body) {
		writeError(w, http.StatusBadRequest,
			"body must be a single update-batch frame (got kind %s, %d trailing bytes)", kind, len(sc.body)-n)
		return
	}
	mode, wups, err := wire.DecodeUpdateBatch(payload, sc.ws)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad frame: %v", err)
		return
	}
	if len(wups) > s.cfg.MaxBatchUpdates {
		writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d updates", s.cfg.MaxBatchUpdates)
		return
	}
	if cap(sc.ups) < len(wups) {
		sc.ups = make([]planarcert.Update, len(wups))
	}
	updates := sc.ups[:len(wups)]
	for i, u := range wups {
		switch u.Op {
		case wire.OpAddEdge:
			updates[i] = planarcert.EdgeAdd(planarcert.NodeID(u.A), planarcert.NodeID(u.B))
		case wire.OpRemoveEdge:
			updates[i] = planarcert.EdgeRemove(planarcert.NodeID(u.A), planarcert.NodeID(u.B))
		case wire.OpAddNode:
			updates[i] = planarcert.NodeAdd(planarcert.NodeID(u.A))
		}
	}
	s.met.wireBatches.Add(1)

	ms.touch()
	if mode == wire.ModeQueue {
		pending := ms.queue(updates)
		s.writeAckFrame(w, http.StatusAccepted, &planarcert.WireBatchAck{Queued: len(updates), Pending: pending})
		return
	}

	sp := s.tracer.Start(ms.name, obs.SpanBatch)
	if !s.acquireExec(ms.execClaim, sp, r.Context().Done()) {
		sp.SetStr("error", "admission timeout")
		sp.End()
		writeError(w, http.StatusServiceUnavailable, "admission queue timed out (class %q)", ms.qos)
		return
	}
	rep, elapsed, err := ms.apply(updates, sp)
	ms.execClaim.Release()
	if err != nil {
		sp.SetStr("error", err.Error())
		sp.End()
		s.batchError(w, err)
		return
	}
	sp.End()
	s.recordBatch(sp, ms, rep, elapsed)
	s.writeAckFrame(w, http.StatusOK, &planarcert.WireBatchAck{Queued: len(updates), Elapsed: elapsed, Report: rep})
}

// handleWatchBinary is the ?format=binary branch of handleWatch: a
// hello frame naming the version-acknowledged subscription, replayed
// event frames for the gap since the subscription's last ACKed version
// (?sub= resumes one), then one event frame per flushed batch.
func (s *Server) handleWatchBinary(w http.ResponseWriter, r *http.Request, ms *session, flusher http.Flusher) {
	var sub uint64
	if q := r.URL.Query().Get("sub"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil || v == 0 {
			writeError(w, http.StatusBadRequest, "bad subscription %q", q)
			return
		}
		sub = v
	}
	id, hello, replay, ch, ok := ms.watchBinary(sub, r.URL.Query().Get("replay") == "last")
	if !ok {
		writeError(w, http.StatusGone, "session %q is closed", ms.name)
		return
	}
	defer ms.unwatch(id)

	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	helloFrame, err := wire.EncodeHello(hello)
	if err != nil {
		return
	}
	if _, err := w.Write(helloFrame); err != nil {
		return
	}
	s.met.wireFrames.Add(1)
	for _, ev := range replay {
		if ev.bin == nil {
			continue // encode failure; the client resyncs via Reset
		}
		if _, err := w.Write(ev.bin); err != nil {
			return
		}
		s.met.wireFrames.Add(1)
		s.met.watchReplayed.Add(1)
	}
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return // session deleted
			}
			// ev.bin is always set here: broadcast materializes it under
			// watchMu before fanning out to binary watchers (and drops the
			// event for them when encoding fails).
			if _, err := w.Write(ev.bin); err != nil {
				return
			}
			s.met.wireFrames.Add(1)
			flusher.Flush()
		}
	}
}

// handleWatchAck advances (ack) or rewinds (nack) a binary watch
// subscription's replay cursor. The body is a single ack or nack frame
// with Content-Type planarcert.WireContentType.
func (s *Server) handleWatchAck(w http.ResponseWriter, r *http.Request) {
	ms := s.lookup(r.PathValue("name"))
	if ms == nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("name"))
		return
	}
	if ct := contentTypeBase(r.Header.Get("Content-Type")); ct != wire.ContentType {
		s.met.unsupportedMedia.Add(1)
		w.Header().Set("Accept-Post", wire.ContentType)
		writeError(w, http.StatusUnsupportedMediaType,
			"unsupported Content-Type %q (want %s)", r.Header.Get("Content-Type"), wire.ContentType)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	kind, payload, n, err := wire.ParseFrame(body)
	if err != nil || n != len(body) {
		writeError(w, http.StatusBadRequest, "body must be a single ack or nack frame")
		return
	}
	switch kind {
	case wire.KindAck:
		sub, version, err := wire.DecodeAck(payload)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad ack frame: %v", err)
			return
		}
		if !ms.ack(sub, version) {
			writeError(w, http.StatusNotFound, "no subscription %d", sub)
			return
		}
		s.met.watchAcks.Add(1)
	case wire.KindNack:
		sub, version, reason, err := wire.DecodeNack(payload)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad nack frame: %v", err)
			return
		}
		if !ms.nack(sub, version) {
			writeError(w, http.StatusNotFound, "no subscription %d", sub)
			return
		}
		_ = reason // surfaced only through the metric today
		s.met.watchNacks.Add(1)
	default:
		writeError(w, http.StatusBadRequest, "body must be an ack or nack frame, got %s", kind)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
