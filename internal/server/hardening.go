package server

import (
	"crypto/subtle"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/planarcert/planarcert/internal/obs"
	"github.com/planarcert/planarcert/internal/qos"
)

// exemptPath reports whether a request path bypasses auth and rate
// limiting: probes and metrics scrapers are infrastructure, not tenants,
// and locking a load balancer out of /readyz turns a lost token into an
// outage.
func exemptPath(p string) bool {
	return p == "/healthz" || p == "/readyz" || p == "/metrics"
}

// parseBearerToken extracts the token from an Authorization header,
// accepting any case for the "Bearer" keyword per RFC 6750.
func parseBearerToken(h string) (string, bool) {
	const prefix = "bearer "
	if len(h) < len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	tok := strings.TrimSpace(h[len(prefix):])
	return tok, tok != ""
}

// authorize checks the request against the configured bearer tokens.
// With no tokens configured every request passes (auth off). The
// comparison runs constant-time over every configured token — no early
// exit — so response timing leaks neither token bytes nor which token
// matched.
func (s *Server) authorize(r *http.Request) (token string, ok bool) {
	if len(s.cfg.AuthTokens) == 0 {
		return "", true
	}
	tok, ok := parseBearerToken(r.Header.Get("Authorization"))
	if !ok {
		return "", false
	}
	match := 0
	for _, want := range s.cfg.AuthTokens {
		match |= subtle.ConstantTimeCompare([]byte(tok), []byte(want))
	}
	return tok, match == 1
}

// clientKey identifies the rate-limit principal: the bearer token when
// auth is on (one bucket per credential, shared across its hosts), the
// remote address otherwise.
func clientKey(r *http.Request, token string) string {
	if token != "" {
		return "token:" + token
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// maxRateBuckets bounds the limiter map; past it, buckets idle long
// enough to have refilled completely are pruned (they are
// indistinguishable from fresh ones, so dropping them changes nothing).
const maxRateBuckets = 4096

// rateLimiter is a per-client token-bucket limiter: each principal gets
// burst tokens that refill at rate per second. Safe for concurrent use.
// The clock is injected so tests can drive refill deterministically.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*rateBucket
}

type rateBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*rateBucket),
	}
}

// allow spends one token from key's bucket, reporting false when the
// bucket is empty. A nil limiter allows everything.
func (rl *rateLimiter) allow(key string) bool {
	if rl == nil {
		return true
	}
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[key]
	if b == nil {
		if len(rl.buckets) >= maxRateBuckets {
			rl.pruneLocked(now)
		}
		b = &rateBucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	} else {
		b.tokens += rl.rate * now.Sub(b.last).Seconds()
		if b.tokens > rl.burst {
			b.tokens = rl.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked drops buckets that have been idle long enough to refill
// completely; the caller holds rl.mu.
func (rl *rateLimiter) pruneLocked(now time.Time) {
	full := time.Duration(rl.burst / rl.rate * float64(time.Second))
	for k, b := range rl.buckets {
		if now.Sub(b.last) >= full {
			delete(rl.buckets, k)
		}
	}
}

// acquireExec admits one batch execution through the fair-share
// admission scheduler, waiting up to Config.AdmitTimeout (or the
// client's disconnect). The wait is recorded in the admit-wait
// histogram and, when tracing, as an admit span on the batch trace —
// so a storm victim's latency decomposes into "queued behind the
// storm" rather than vanishing into the batch total.
func (s *Server) acquireExec(c *qos.Claimant, sp *obs.Span, cancel <-chan struct{}) bool {
	ad := sp.Child(obs.SpanAdmit)
	ad.SetStr("class", c.Class().String())
	start := time.Now()
	ok := c.AcquireWait(s.cfg.AdmitTimeout, cancel)
	s.met.admitWait.observe(time.Since(start).Seconds())
	ad.End()
	if !ok {
		s.met.admitTimeouts.Add(1)
	}
	return ok
}

// evictForSpaceLocked makes room for one more session by removing the
// least-recently-used ones from the registry; the caller holds s.mu for
// writing and must shut the returned victims down after unlocking. A
// durable victim's files stay on disk, so an evicted session is
// recoverable at the next boot — eviction sheds memory, not state.
func (s *Server) evictForSpaceLocked() []*session {
	var victims []*session
	for len(s.sessions) >= s.cfg.MaxSessions {
		var (
			vname  string
			victim *session
		)
		for name, ms := range s.sessions {
			if victim == nil || ms.lastUsed.Load() < victim.lastUsed.Load() {
				vname, victim = name, ms
			}
		}
		if victim == nil {
			break
		}
		delete(s.sessions, vname)
		victims = append(victims, victim)
	}
	return victims
}

// finishEviction drains evicted sessions outside s.mu: each absorbs its
// queued updates, snapshots if durable, and terminates its watchers.
func (s *Server) finishEviction(victims []*session) {
	for _, ms := range victims {
		ms.shutdown()
		s.met.sessionsEvicted.Add(1)
	}
}
