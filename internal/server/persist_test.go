package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/wal"
)

// newDurableServer builds a recovered durable server over dir. Tests
// that simulate a crash construct the first incarnation with New +
// Recover directly and simply abandon it (no Close), so no final
// snapshot or WAL flush happens.
func newDurableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	cfg.Fsync = wal.SyncNever // tests survive SIGKILL, not power loss
	srv := New(cfg)
	if err := srv.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func sessionGraph(t *testing.T, base, name string) GraphExport {
	t.Helper()
	var g GraphExport
	doJSON(t, "GET", base+"/v1/sessions/"+name+"/graph", nil, http.StatusOK, &g)
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i] < g.Nodes[j] })
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i][0] != g.Edges[j][0] {
			return g.Edges[i][0] < g.Edges[j][0]
		}
		return g.Edges[i][1] < g.Edges[j][1]
	})
	return g
}

// TestDurableSessionRecovery is the round trip: sessions built on one
// server incarnation come back on the next with the same topology,
// generation floor, options, and a certified assignment.
func TestDurableSessionRecovery(t *testing.T) {
	dir := t.TempDir()
	srvA, tsA := newDurableServer(t, dir, Config{SnapshotEvery: 2})

	var st SessionStatus
	doJSON(t, "POST", tsA.URL+"/v1/sessions", CreateSessionRequest{
		Name:   "ring",
		Scheme: planarcert.SchemePlanarity,
		Graph:  GraphSpec{EdgeList: "0 1\n1 2\n2 3\n3 0\n"},
		NoFlip: true,
	}, http.StatusCreated, &st)
	if !st.Durable {
		t.Fatalf("session not durable: %+v", st)
	}
	var ur UpdatesResponse
	doJSON(t, "POST", tsA.URL+"/v1/sessions/ring/updates",
		`{"op":"add_edge","a":0,"b":2}`, http.StatusOK, &ur)
	doJSON(t, "POST", tsA.URL+"/v1/sessions/ring/updates",
		"{\"op\":\"add_node\",\"a\":4}\n{\"op\":\"add_edge\",\"a\":4,\"b\":1}", http.StatusOK, &ur)
	if ur.Report.Generation != 2 {
		t.Fatalf("generation = %d, want 2", ur.Report.Generation)
	}
	// A second session that was uncertified at snapshot time.
	doJSON(t, "POST", tsA.URL+"/v1/sessions", CreateSessionRequest{
		Name:  "weird name/2",
		Graph: GraphSpec{Edges: [][2]planarcert.NodeID{{0, 1}}},
	}, http.StatusCreated, &st)

	before := sessionGraph(t, tsA.URL, "ring")
	srvA.Close() // graceful: drains, snapshots, closes stores
	tsA.Close()

	srvB, tsB := newDurableServer(t, dir, Config{SnapshotEvery: 2})
	if n := srvB.SessionCount(); n != 2 {
		t.Fatalf("recovered %d sessions, want 2", n)
	}
	doJSON(t, "GET", tsB.URL+"/v1/sessions/ring", nil, http.StatusOK, &st)
	if !st.Certified || st.Generation < 2 || !st.Durable || st.Scheme != planarcert.SchemePlanarity {
		t.Fatalf("recovered status: %+v", st)
	}
	after := sessionGraph(t, tsB.URL, "ring")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("graph mismatch after recovery:\n before %+v\n after  %+v", before, after)
	}
	// The restored session keeps absorbing updates.
	doJSON(t, "POST", tsB.URL+"/v1/sessions/ring/updates",
		`{"op":"add_edge","a":4,"b":2}`, http.StatusOK, &ur)
	if !ur.Report.Accepted {
		t.Fatalf("post-recovery apply: %+v", ur.Report)
	}
	var rd Ready
	doJSON(t, "GET", tsB.URL+"/readyz", nil, http.StatusOK, &rd)
	if !rd.Ready || rd.SessionsRestored != 2 {
		t.Fatalf("readyz = %+v", rd)
	}
}

// TestRecoveryReplaysWalTail kills the first incarnation without a
// graceful shutdown: acked batches that only made it to the WAL (the
// snapshot interval is huge) must come back, with the self-validating
// restore re-proving over the replayed topology.
func TestRecoveryReplaysWalTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SnapshotEvery: 1 << 20, DataDir: dir, Fsync: wal.SyncNever}
	srvA := New(cfg)
	if err := srvA.Recover(); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())

	var st SessionStatus
	doJSON(t, "POST", tsA.URL+"/v1/sessions", CreateSessionRequest{
		Name:  "tail",
		Graph: GraphSpec{EdgeList: "0 1\n1 2\n2 0\n"},
	}, http.StatusCreated, &st)
	var ur UpdatesResponse
	for _, line := range []string{
		`{"op":"add_node","a":3}`,
		`{"op":"add_edge","a":3,"b":0}`,
		`{"op":"add_edge","a":3,"b":1}`,
		`{"op":"remove_edge","a":2,"b":0}`,
	} {
		doJSON(t, "POST", tsA.URL+"/v1/sessions/tail/updates", line, http.StatusOK, &ur)
	}
	before := sessionGraph(t, tsA.URL, "tail")
	tsA.Close() // crash: no srvA.Close(), stores never snapshot the tail

	srvB, tsB := newDurableServer(t, dir, Config{})
	if n := srvB.SessionCount(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	doJSON(t, "GET", tsB.URL+"/v1/sessions/tail", nil, http.StatusOK, &st)
	if !st.Certified || st.Generation < 4 {
		t.Fatalf("recovered status: %+v", st)
	}
	after := sessionGraph(t, tsB.URL, "tail")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("WAL tail lost:\n before %+v\n after  %+v", before, after)
	}
	if got := srvB.met.walReplayed.Load(); got != 4 {
		t.Fatalf("replayed %d WAL records, want 4", got)
	}
}

// TestRecoveryTruncatesCorruptWal flips a byte inside the logged tail:
// recovery must keep the clean prefix, never panic, and still restore a
// certified session.
func TestRecoveryTruncatesCorruptWal(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SnapshotEvery: 1 << 20, DataDir: dir, Fsync: wal.SyncNever}
	srvA := New(cfg)
	if err := srvA.Recover(); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	var st SessionStatus
	doJSON(t, "POST", tsA.URL+"/v1/sessions", CreateSessionRequest{
		Name:  "chop",
		Graph: GraphSpec{EdgeList: "0 1\n1 2\n2 0\n"},
	}, http.StatusCreated, &st)
	var ur UpdatesResponse
	doJSON(t, "POST", tsA.URL+"/v1/sessions/chop/updates",
		"{\"op\":\"add_node\",\"a\":3}\n{\"op\":\"add_edge\",\"a\":3,\"b\":0}", http.StatusOK, &ur)
	doJSON(t, "POST", tsA.URL+"/v1/sessions/chop/updates", `{"op":"add_edge","a":3,"b":1}`, http.StatusOK, &ur)
	tsA.Close() // crash

	logPath := filepath.Join(dir, "sessions", "s-chop", "wal.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff // damage the last record
	if err := os.WriteFile(logPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srvB, tsB := newDurableServer(t, dir, Config{})
	if n := srvB.SessionCount(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	doJSON(t, "GET", tsB.URL+"/v1/sessions/chop", nil, http.StatusOK, &st)
	if !st.Certified {
		t.Fatalf("recovered status: %+v", st)
	}
	// The clean prefix (node 3 and edge {3,0}) survives; the damaged
	// record's edge {3,1} does not.
	g := sessionGraph(t, tsB.URL, "chop")
	if len(g.Nodes) != 4 || len(g.Edges) != 4 {
		t.Fatalf("recovered graph %+v, want the 3-cycle plus pendant node 3", g)
	}
	if srvB.met.walCorrupt.Load() == 0 {
		t.Fatal("corrupt WAL record not counted")
	}
}

// TestRecoveryRevalidatesCertificates hand-writes a snapshot whose
// certificates are semantically wrong but CRC-clean — damage no
// checksum can catch. The proof-labeling scheme's own verification
// sweep must reject them during restore and re-prove.
func TestRecoveryRevalidatesCertificates(t *testing.T) {
	dir := t.TempDir()
	root, err := wal.OpenRoot(dir, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	st, err := root.CreateSession("tampered")
	if err != nil {
		t.Fatal(err)
	}
	net := planarcert.NewNetwork()
	for id := planarcert.NodeID(0); id < 4; id++ {
		if err := net.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]planarcert.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := net.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	hi, lo := net.Fingerprint()
	snap := &wal.Snapshot{
		Name:          "tampered",
		Scheme:        string(planarcert.SchemePlanarity),
		ActiveScheme:  string(planarcert.SchemePlanarity),
		Generation:    7,
		Seq:           0,
		FingerprintHi: hi,
		FingerprintLo: lo,
		Nodes:         walNodes(net),
		Edges:         walEdges(net),
		Certs: []wal.NodeCert{ // garbage bits, valid encoding
			{ID: 0, Bits: 16, Data: []byte{0xde, 0xad}},
			{ID: 1, Bits: 16, Data: []byte{0xbe, 0xef}},
			{ID: 2, Bits: 16, Data: []byte{0xca, 0xfe}},
			{ID: 3, Bits: 16, Data: []byte{0x00, 0x01}},
		},
	}
	if err := st.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv, ts := newDurableServer(t, dir, Config{})
	if n := srv.SessionCount(); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	var status SessionStatus
	doJSON(t, "GET", ts.URL+"/v1/sessions/tampered", nil, http.StatusOK, &status)
	if !status.Certified {
		t.Fatalf("session not re-proved after tampered restore: %+v", status)
	}
	if status.Last == nil || status.Last.Mode == "restore" {
		t.Fatalf("tampered certificates restored verbatim: %+v", status.Last)
	}
	// A clean re-verification over the re-proved assignment accepts.
	var rep planarcert.Report
	doJSON(t, "POST", ts.URL+"/v1/sessions/tampered/verify", nil, http.StatusOK, &rep)
	if !rep.Accepted {
		t.Fatalf("re-proved session fails verification: %+v", rep)
	}
}

// TestReadyzGatesTraffic drives the boot sequence: a durable server
// answers 503 on /readyz and every session endpoint until Recover runs.
func TestReadyzGatesTraffic(t *testing.T) {
	srv := New(Config{DataDir: t.TempDir(), Fsync: wal.SyncNever})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var rd Ready
	doJSON(t, "GET", ts.URL+"/readyz", nil, http.StatusServiceUnavailable, &rd)
	if rd.Ready || rd.Status != "recovering" {
		t.Fatalf("readyz before recovery = %+v", rd)
	}
	doJSON(t, "GET", ts.URL+"/v1/sessions", nil, http.StatusServiceUnavailable, nil)
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "x"}, http.StatusServiceUnavailable, nil)
	// Liveness stays up throughout.
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, nil)

	if err := srv.Recover(); err != nil {
		t.Fatal(err)
	}
	doJSON(t, "GET", ts.URL+"/readyz", nil, http.StatusOK, &rd)
	if !rd.Ready || rd.Status != "ok" {
		t.Fatalf("readyz after recovery = %+v", rd)
	}
	doJSON(t, "GET", ts.URL+"/v1/sessions", nil, http.StatusOK, nil)

	srv.Close()
	doJSON(t, "GET", ts.URL+"/readyz", nil, http.StatusServiceUnavailable, &rd)
	if rd.Ready || rd.Status != "draining" {
		t.Fatalf("readyz after close = %+v", rd)
	}
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "y"}, http.StatusServiceUnavailable, nil)
}

// TestDeleteRemovesDurableState checks DELETE erases the session's
// directory so the next boot does not resurrect it.
func TestDeleteRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	srvA, tsA := newDurableServer(t, dir, Config{})
	doJSON(t, "POST", tsA.URL+"/v1/sessions", CreateSessionRequest{
		Name:  "gone",
		Graph: GraphSpec{EdgeList: "0 1\n"},
	}, http.StatusCreated, nil)
	doJSON(t, "DELETE", tsA.URL+"/v1/sessions/gone", nil, http.StatusNoContent, nil)
	srvA.Close()
	tsA.Close()

	srvB, _ := newDurableServer(t, dir, Config{})
	if n := srvB.SessionCount(); n != 0 {
		t.Fatalf("deleted session resurrected (%d sessions)", n)
	}
	srvB.Close()
}

// TestRecoveryMetricsExposed checks the recovery counters named in the
// ops contract appear on /metrics after a durable boot.
func TestRecoveryMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	srvA, tsA := newDurableServer(t, dir, Config{})
	doJSON(t, "POST", tsA.URL+"/v1/sessions", CreateSessionRequest{
		Name:  "m",
		Graph: GraphSpec{EdgeList: "0 1\n1 2\n"},
	}, http.StatusCreated, nil)
	srvA.Close()
	tsA.Close()

	_, tsB := newDurableServer(t, dir, Config{})
	resp, err := http.Get(tsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, name := range []string{
		"planarcertd_recovery_seconds",
		"planarcertd_wal_records_replayed",
		"planarcertd_wal_corrupt_records",
		"planarcertd_sessions_restored_total 1",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("metrics missing %q:\n%s", name, body)
		}
	}
}
