package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/planarcert/planarcert/internal/buildinfo"
)

// verifyBuckets are the latency histogram upper bounds, in seconds.
// They span the observed range from a cached 50-node flush (~10µs) to a
// full re-prove of a 100k-node network (~seconds).
var verifyBuckets = []float64{
	1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5,
}

// waitBuckets are the budget-wait histogram bounds, in seconds. Budget
// acquisition is non-blocking by default (waits of ~microseconds) and
// bounded by the configured patience otherwise, so the range sits well
// below verifyBuckets'.
var waitBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1,
}

// frontierBuckets are the per-batch verified-frontier size bounds, in
// nodes: a repair re-verifies a handful of nodes, a full re-prove all of
// them.
var frontierBuckets = []float64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144,
}

// histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative-bucket style. Safe for concurrent use.
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; the last bucket is +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe records one sample, in seconds.
func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// write emits the histogram in Prometheus text exposition format.
func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	h.writeSeries(w, name, "")
}

// writeSeries emits only the series lines (buckets, _sum, _count), with
// extraLabels (e.g. `scheme="planarity",mode="repair"`) merged into
// every label set — the shared body of plain and labeled histograms.
func (h *histogram) writeSeries(w io.Writer, name, extraLabels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sep := ""
	if extraLabels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, extraLabels, sep, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, extraLabels, sep, cum)
	if extraLabels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, extraLabels, h.sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, extraLabels, h.count)
	}
}

// histVec is a histogram family keyed by two labels (e.g. scheme/mode
// for the per-scheme batch latency decomposition, class/mode for the
// QoS view). Safe for concurrent use; label sets are created on first
// observation.
type histVec struct {
	labels [2]string // label names, in key order
	mu     sync.Mutex
	bounds []float64
	hists  map[[2]string]*histogram
}

func newHistVec(bounds []float64, label0, label1 string) *histVec {
	return &histVec{
		labels: [2]string{label0, label1},
		bounds: bounds,
		hists:  make(map[[2]string]*histogram),
	}
}

func (v *histVec) observe(val0, val1 string, x float64) {
	key := [2]string{val0, val1}
	v.mu.Lock()
	h := v.hists[key]
	if h == nil {
		h = newHistogram(v.bounds)
		v.hists[key] = h
	}
	v.mu.Unlock()
	h.observe(x)
}

// write emits the family under one HELP/TYPE header, label sets in
// sorted order for a deterministic exposition.
func (v *histVec) write(w io.Writer, name, help string) {
	v.mu.Lock()
	keys := make([][2]string, 0, len(v.hists))
	for k := range v.hists {
		keys = append(keys, k)
	}
	hists := make([]*histogram, len(keys))
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for i, k := range keys {
		hists[i] = v.hists[k]
	}
	v.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, k := range keys {
		hists[i].writeSeries(w, name, fmt.Sprintf("%s=%q,%s=%q", v.labels[0], k[0], v.labels[1], k[1]))
	}
}

// metrics aggregates the daemon's operational counters. All fields are
// safe for concurrent use; the /metrics handler renders them in
// Prometheus text exposition format.
type metrics struct {
	sessionsCreated atomic.Uint64
	sessionsDeleted atomic.Uint64
	updatesTotal    atomic.Uint64
	batchesRejected atomic.Uint64
	watchEvents     atomic.Uint64
	watchDropped    atomic.Uint64
	httpRequests    atomic.Uint64

	// Hardening layer.
	authFailures      atomic.Uint64 // requests rejected for a bad/missing token
	rateLimited       atomic.Uint64 // requests rejected by the client rate limiter
	admitTimeouts     atomic.Uint64 // batches rejected after AdmitTimeout in the admission queue
	sessionsEvicted   atomic.Uint64 // sessions LRU-evicted to admit new ones
	thresholdAdjusted atomic.Uint64 // adaptive repair-threshold changes applied

	// Binary wire protocol.
	wireBatches      atomic.Uint64 // binary update-batch frames decoded
	wireFrames       atomic.Uint64 // binary frames written (acks, hellos, events)
	watchAcks        atomic.Uint64 // watch subscription ACKs applied
	watchNacks       atomic.Uint64 // watch subscription NACKs applied
	watchReplayed    atomic.Uint64 // events replayed to resuming watchers
	unsupportedMedia atomic.Uint64 // POSTs rejected 415 for an unknown Content-Type

	// Durability layer (zero on a non-durable server).
	walAppends       atomic.Uint64
	snapshotsWritten atomic.Uint64
	sessionsRestored atomic.Uint64
	recoveryFailed   atomic.Uint64
	walReplayed      atomic.Uint64
	walCorrupt       atomic.Uint64
	recoverySecsBits atomic.Uint64 // math.Float64bits of the boot replay duration

	modeMu sync.Mutex
	modes  map[string]uint64 // flushed batches by absorption mode

	batchSeconds  *histogram // end-to-end flush latency (repair/prove + verify)
	verifySeconds *histogram // explicit full-verification latency
	budgetWait    *histogram // per-batch budget-slot acquisition wait
	admitWait     *histogram // per-batch admission-queue wait
	frontierNodes *histogram // nodes re-verified per batch (frontier size)
	modeSeconds   *histVec   // batch latency by (scheme, mode)
	classSeconds  *histVec   // batch latency by (class, mode)

	// Build identity, resolved once at construction from the binary's
	// embedded build info; rendered as the planarcertd_build_info gauge.
	buildVersion  string
	buildRevision string
}

func newMetrics() *metrics {
	version, revision := buildinfo.Identity()
	return &metrics{
		modes:         make(map[string]uint64),
		batchSeconds:  newHistogram(verifyBuckets),
		verifySeconds: newHistogram(verifyBuckets),
		budgetWait:    newHistogram(waitBuckets),
		admitWait:     newHistogram(waitBuckets),
		frontierNodes: newHistogram(frontierBuckets),
		modeSeconds:   newHistVec(verifyBuckets, "scheme", "mode"),
		classSeconds:  newHistVec(verifyBuckets, "class", "mode"),
		buildVersion:  version,
		buildRevision: revision,
	}
}

// recoverySeconds returns the recorded boot replay duration (0 until
// recovery completes).
func (m *metrics) recoverySeconds() float64 {
	return math.Float64frombits(m.recoverySecsBits.Load())
}

// batchDone records one successfully flushed batch: total and per-mode
// counters, the end-to-end latency (overall, by scheme/mode and by QoS
// class/mode), and the verified-frontier size.
func (m *metrics) batchDone(mode, scheme, class string, updates, verified int, seconds float64) {
	m.updatesTotal.Add(uint64(updates))
	m.modeMu.Lock()
	m.modes[mode]++
	m.modeMu.Unlock()
	m.batchSeconds.observe(seconds)
	m.modeSeconds.observe(scheme, mode, seconds)
	m.classSeconds.observe(class, mode, seconds)
	m.frontierNodes.observe(float64(verified))
}

// modeCounts returns a copy of the per-mode batch counters.
func (m *metrics) modeCounts() map[string]uint64 {
	m.modeMu.Lock()
	defer m.modeMu.Unlock()
	out := make(map[string]uint64, len(m.modes))
	for k, v := range m.modes {
		out[k] = v
	}
	return out
}

// liveStats are point-in-time values owned by the Server (registry
// sizes, budget usage, tracer drop counters), sampled at render time.
type liveStats struct {
	activeSessions   int
	watchers         int
	budgetSlots      int
	budgetInUse      int
	budgetQueueDepth int
	execSlots        int
	execInUse        int
	execQueueDepth   int
	// budgetGrants and execGrants are cumulative scheduler grants by QoS
	// class name, rendered as the planarcertd_qos_grants_total family.
	budgetGrants map[string]uint64
	execGrants   map[string]uint64

	traceDropSampled uint64
	traceDropEvicted uint64
}

// write renders every metric; live carries the gauges the Server owns.
func (m *metrics) write(w io.Writer, live liveStats) {
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP planarcertd_build_info Build identity of the running binary (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE planarcertd_build_info gauge\n")
	fmt.Fprintf(w, "planarcertd_build_info{version=%q,revision=%q} 1\n", m.buildVersion, m.buildRevision)
	gauge("planarcertd_sessions_active", "Number of live certification sessions.", live.activeSessions)
	gauge("planarcertd_watchers_active", "Number of open watch streams.", live.watchers)
	gauge("planarcertd_worker_budget_slots", "Extra verification worker slots shared by all sessions.", live.budgetSlots)
	gauge("planarcertd_worker_budget_in_use", "Extra verification worker slots currently held.", live.budgetInUse)
	gauge("planarcertd_worker_budget_queue_depth", "Engines waiting for a worker budget slot.", live.budgetQueueDepth)
	gauge("planarcertd_exec_slots", "Concurrent batch-execution slots shared by all sessions.", live.execSlots)
	gauge("planarcertd_exec_in_use", "Batch-execution slots currently held.", live.execInUse)
	gauge("planarcertd_exec_queue_depth", "Batches waiting in the fair-share admission queue.", live.execQueueDepth)
	counter("planarcertd_sessions_created_total", "Sessions created since start.", m.sessionsCreated.Load())
	counter("planarcertd_sessions_deleted_total", "Sessions deleted since start.", m.sessionsDeleted.Load())
	counter("planarcertd_updates_total", "Topology updates absorbed across all sessions.", m.updatesTotal.Load())
	counter("planarcertd_batches_rejected_total", "Update batches rejected by validation.", m.batchesRejected.Load())
	counter("planarcertd_watch_events_total", "Session reports delivered to watchers.", m.watchEvents.Load())
	counter("planarcertd_watch_dropped_total", "Session reports dropped on slow watchers.", m.watchDropped.Load())
	counter("planarcertd_http_requests_total", "HTTP requests served.", m.httpRequests.Load())
	gauge("planarcertd_recovery_seconds", "Boot replay duration (0 until recovery completes).", math.Float64frombits(m.recoverySecsBits.Load()))
	counter("planarcertd_wal_records_replayed", "WAL records replayed during boot recovery.", m.walReplayed.Load())
	counter("planarcertd_wal_corrupt_records", "Corrupt WAL records and snapshots skipped during recovery.", m.walCorrupt.Load())
	counter("planarcertd_sessions_restored_total", "Sessions restored from durable state at boot.", m.sessionsRestored.Load())
	counter("planarcertd_sessions_recovery_failed_total", "Session directories that could not be restored at boot.", m.recoveryFailed.Load())
	counter("planarcertd_wal_appends_total", "Update batches appended to per-session WALs.", m.walAppends.Load())
	counter("planarcertd_snapshots_written_total", "Certificate snapshots written.", m.snapshotsWritten.Load())
	counter("planarcertd_auth_failures_total", "Requests rejected for a missing or invalid bearer token.", m.authFailures.Load())
	counter("planarcertd_rate_limited_total", "Requests rejected by the per-client rate limiter.", m.rateLimited.Load())
	counter("planarcertd_admit_timeouts_total", "Batches rejected after timing out in the admission queue.", m.admitTimeouts.Load())
	counter("planarcertd_sessions_evicted_total", "Sessions evicted by the LRU policy to admit new ones.", m.sessionsEvicted.Load())
	counter("planarcertd_repair_threshold_adjustments_total", "Adaptive repair-threshold changes applied.", m.thresholdAdjusted.Load())
	counter("planarcertd_wire_batches_total", "Binary update-batch frames decoded.", m.wireBatches.Load())
	counter("planarcertd_wire_frames_written_total", "Binary frames written (acks, hellos, events).", m.wireFrames.Load())
	counter("planarcertd_watch_acks_total", "Watch subscription ACKs applied.", m.watchAcks.Load())
	counter("planarcertd_watch_nacks_total", "Watch subscription NACKs applied.", m.watchNacks.Load())
	counter("planarcertd_watch_replayed_total", "Events replayed to watchers resuming a subscription.", m.watchReplayed.Load())
	counter("planarcertd_unsupported_media_total", "POST requests rejected with 415 for an unknown Content-Type.", m.unsupportedMedia.Load())

	fmt.Fprintf(w, "# HELP planarcertd_qos_grants_total Scheduler grants by pool (exec admission vs worker budget) and QoS class.\n")
	fmt.Fprintf(w, "# TYPE planarcertd_qos_grants_total counter\n")
	writeGrants := func(pool string, grants map[string]uint64) {
		classes := make([]string, 0, len(grants))
		for class := range grants {
			classes = append(classes, class)
		}
		sort.Strings(classes)
		for _, class := range classes {
			fmt.Fprintf(w, "planarcertd_qos_grants_total{pool=%q,class=%q} %d\n", pool, class, grants[class])
		}
	}
	writeGrants("budget", live.budgetGrants)
	writeGrants("exec", live.execGrants)

	fmt.Fprintf(w, "# HELP planarcertd_trace_dropped_total Batch traces dropped by the tracer, by reason (sampled out vs evicted from the ring).\n")
	fmt.Fprintf(w, "# TYPE planarcertd_trace_dropped_total counter\n")
	fmt.Fprintf(w, "planarcertd_trace_dropped_total{reason=\"sampled\"} %d\n", live.traceDropSampled)
	fmt.Fprintf(w, "planarcertd_trace_dropped_total{reason=\"evicted\"} %d\n", live.traceDropEvicted)

	fmt.Fprintf(w, "# HELP planarcertd_batches_total Flushed batches by absorption mode (repair vs reprove vs cache ...).\n")
	fmt.Fprintf(w, "# TYPE planarcertd_batches_total counter\n")
	counts := m.modeCounts()
	modes := make([]string, 0, len(counts))
	for mode := range counts {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	for _, mode := range modes {
		fmt.Fprintf(w, "planarcertd_batches_total{mode=%q} %d\n", mode, counts[mode])
	}

	m.batchSeconds.write(w, "planarcertd_batch_seconds", "End-to-end flush latency (repair/re-prove + verification).")
	m.verifySeconds.write(w, "planarcertd_verify_seconds", "Full 1-round verification latency.")
	m.budgetWait.write(w, "planarcertd_budget_wait_seconds", "Per-batch wait for shared verification budget slots.")
	m.admitWait.write(w, "planarcertd_admit_wait_seconds", "Per-batch wait in the fair-share admission queue.")
	m.frontierNodes.write(w, "planarcertd_batch_frontier_nodes", "Nodes re-verified per batch (the dirty frontier; n for a full sweep).")
	m.modeSeconds.write(w, "planarcertd_batch_mode_seconds", "Batch latency by scheme and absorption mode.")
	m.classSeconds.write(w, "planarcertd_batch_class_seconds", "Batch latency by QoS class and absorption mode.")
}
