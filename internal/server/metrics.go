package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// verifyBuckets are the latency histogram upper bounds, in seconds.
// They span the observed range from a cached 50-node flush (~10µs) to a
// full re-prove of a 100k-node network (~seconds).
var verifyBuckets = []float64{
	1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5,
}

// histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative-bucket style. Safe for concurrent use.
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; the last bucket is +Inf
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe records one sample, in seconds.
func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// write emits the histogram in Prometheus text exposition format.
func (h *histogram) write(w io.Writer, name, help string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

// metrics aggregates the daemon's operational counters. All fields are
// safe for concurrent use; the /metrics handler renders them in
// Prometheus text exposition format.
type metrics struct {
	sessionsCreated atomic.Uint64
	sessionsDeleted atomic.Uint64
	updatesTotal    atomic.Uint64
	batchesRejected atomic.Uint64
	watchEvents     atomic.Uint64
	watchDropped    atomic.Uint64
	httpRequests    atomic.Uint64

	// Durability layer (zero on a non-durable server).
	walAppends       atomic.Uint64
	snapshotsWritten atomic.Uint64
	sessionsRestored atomic.Uint64
	recoveryFailed   atomic.Uint64
	walReplayed      atomic.Uint64
	walCorrupt       atomic.Uint64
	recoverySecsBits atomic.Uint64 // math.Float64bits of the boot replay duration

	modeMu sync.Mutex
	modes  map[string]uint64 // flushed batches by absorption mode

	batchSeconds  *histogram // end-to-end flush latency (repair/prove + verify)
	verifySeconds *histogram // explicit full-verification latency
}

func newMetrics() *metrics {
	return &metrics{
		modes:         make(map[string]uint64),
		batchSeconds:  newHistogram(verifyBuckets),
		verifySeconds: newHistogram(verifyBuckets),
	}
}

// recoverySeconds returns the recorded boot replay duration (0 until
// recovery completes).
func (m *metrics) recoverySeconds() float64 {
	return math.Float64frombits(m.recoverySecsBits.Load())
}

// batchDone records one successfully flushed batch.
func (m *metrics) batchDone(mode string, updates int, seconds float64) {
	m.updatesTotal.Add(uint64(updates))
	m.modeMu.Lock()
	m.modes[mode]++
	m.modeMu.Unlock()
	m.batchSeconds.observe(seconds)
}

// modeCounts returns a copy of the per-mode batch counters.
func (m *metrics) modeCounts() map[string]uint64 {
	m.modeMu.Lock()
	defer m.modeMu.Unlock()
	out := make(map[string]uint64, len(m.modes))
	for k, v := range m.modes {
		out[k] = v
	}
	return out
}

// write renders every metric. activeSessions and budget usage are live
// gauges owned by the Server, passed in at render time.
func (m *metrics) write(w io.Writer, activeSessions, watchers, budgetSlots, budgetInUse int) {
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("planarcertd_sessions_active", "Number of live certification sessions.", activeSessions)
	gauge("planarcertd_watchers_active", "Number of open watch streams.", watchers)
	gauge("planarcertd_worker_budget_slots", "Extra verification worker slots shared by all sessions.", budgetSlots)
	gauge("planarcertd_worker_budget_in_use", "Extra verification worker slots currently held.", budgetInUse)
	counter("planarcertd_sessions_created_total", "Sessions created since start.", m.sessionsCreated.Load())
	counter("planarcertd_sessions_deleted_total", "Sessions deleted since start.", m.sessionsDeleted.Load())
	counter("planarcertd_updates_total", "Topology updates absorbed across all sessions.", m.updatesTotal.Load())
	counter("planarcertd_batches_rejected_total", "Update batches rejected by validation.", m.batchesRejected.Load())
	counter("planarcertd_watch_events_total", "Session reports delivered to watchers.", m.watchEvents.Load())
	counter("planarcertd_watch_dropped_total", "Session reports dropped on slow watchers.", m.watchDropped.Load())
	counter("planarcertd_http_requests_total", "HTTP requests served.", m.httpRequests.Load())
	gauge("planarcertd_recovery_seconds", "Boot replay duration (0 until recovery completes).", math.Float64frombits(m.recoverySecsBits.Load()))
	counter("planarcertd_wal_records_replayed", "WAL records replayed during boot recovery.", m.walReplayed.Load())
	counter("planarcertd_wal_corrupt_records", "Corrupt WAL records and snapshots skipped during recovery.", m.walCorrupt.Load())
	counter("planarcertd_sessions_restored_total", "Sessions restored from durable state at boot.", m.sessionsRestored.Load())
	counter("planarcertd_sessions_recovery_failed_total", "Session directories that could not be restored at boot.", m.recoveryFailed.Load())
	counter("planarcertd_wal_appends_total", "Update batches appended to per-session WALs.", m.walAppends.Load())
	counter("planarcertd_snapshots_written_total", "Certificate snapshots written.", m.snapshotsWritten.Load())

	fmt.Fprintf(w, "# HELP planarcertd_batches_total Flushed batches by absorption mode (repair vs reprove vs cache ...).\n")
	fmt.Fprintf(w, "# TYPE planarcertd_batches_total counter\n")
	counts := m.modeCounts()
	modes := make([]string, 0, len(counts))
	for mode := range counts {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	for _, mode := range modes {
		fmt.Fprintf(w, "planarcertd_batches_total{mode=%q} %d\n", mode, counts[mode])
	}

	m.batchSeconds.write(w, "planarcertd_batch_seconds", "End-to-end flush latency (repair/re-prove + verification).")
	m.verifySeconds.write(w, "planarcertd_verify_seconds", "Full 1-round verification latency.")
}
