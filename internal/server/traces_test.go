package server

import (
	"net/http"
	"strconv"
	"testing"
	"time"

	planarcert "github.com/planarcert/planarcert"
)

// jsonSpan, jsonTrace and jsonPage mirror the /debug/traces wire shape,
// so these tests pin the JSON surface external tooling consumes (the
// in-process obs types marshal but do not unmarshal).
type jsonSpan struct {
	Name          string                 `json:"name"`
	StartUnixNano int64                  `json:"start_unix_nano"`
	DurationNanos int64                  `json:"duration_nanos"`
	Unfinished    bool                   `json:"unfinished"`
	Attrs         map[string]interface{} `json:"attrs"`
	Children      []*jsonSpan            `json:"children"`
}

func (s *jsonSpan) child(name string) *jsonSpan {
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

type jsonTrace struct {
	ID      uint64    `json:"id"`
	Session string    `json:"session"`
	Slow    bool      `json:"slow"`
	Root    *jsonSpan `json:"root"`
}

type jsonPage struct {
	Enabled        bool         `json:"enabled"`
	Session        string       `json:"session"`
	DroppedSampled uint64       `json:"dropped_sampled"`
	DroppedEvicted uint64       `json:"dropped_evicted"`
	Traces         []*jsonTrace `json:"traces"`
}

// newTracedSession creates a session named name seeded with a path of n
// nodes on a server whose engine is forced parallel, so sweeps record
// budget-wait spans.
func newTracedSession(t *testing.T, ts string, name string, n int) {
	t.Helper()
	edges := ""
	for i := 0; i < n-1; i++ {
		edges += itoa(i) + " " + itoa(i+1) + "\n"
	}
	doJSON(t, "POST", ts+"/v1/sessions", map[string]interface{}{
		"name": name, "scheme": "planarity",
		"graph": map[string]string{"edge_list": edges},
	}, http.StatusCreated, nil)
}

func itoa(i int) string { return strconv.Itoa(i) }

// TestDebugTracesEndToEnd drives batches through a traced server and
// checks the /debug/traces surface: span nesting (batch → queue-wait /
// sweep → budget-wait, prove on a re-prove batch), batch attribution
// attrs, and the newest-first ordering.
func TestDebugTracesEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Engine: planarcert.EngineConfig{Parallel: true, Workers: 2, ShardSize: 4},
	})
	newTracedSession(t, ts.URL, "e2e", 50)

	// A chord add within repair range, then a flush of a queued batch.
	doJSON(t, "POST", ts.URL+"/v1/sessions/e2e/updates", `{"op":"add_edge","a":0,"b":10}`, http.StatusOK, nil)
	doJSON(t, "POST", ts.URL+"/v1/sessions/e2e/updates?mode=queue", `{"op":"add_edge","a":20,"b":30}`, http.StatusAccepted, nil)
	doJSON(t, "POST", ts.URL+"/v1/sessions/e2e/flush", nil, http.StatusOK, nil)

	var page jsonPage
	doJSON(t, "GET", ts.URL+"/debug/traces", nil, http.StatusOK, &page)
	if !page.Enabled {
		t.Fatal("tracing disabled on a default server")
	}
	if len(page.Traces) != 2 {
		t.Fatalf("got %d traces, want 2 (one per flushed batch)", len(page.Traces))
	}
	if page.Traces[0].ID <= page.Traces[1].ID {
		t.Fatalf("traces not newest-first: ids %d, %d", page.Traces[0].ID, page.Traces[1].ID)
	}

	for _, tr := range page.Traces {
		if tr.Session != "e2e" {
			t.Fatalf("trace attributed to session %q", tr.Session)
		}
		root := tr.Root
		if root.Name != "batch" || root.Unfinished || root.DurationNanos <= 0 {
			t.Fatalf("bad root span: %+v", root)
		}
		// Batch attribution: the session layer stamps the absorption
		// outcome on the root.
		if mode, _ := root.Attrs["mode"].(string); mode == "" {
			t.Fatalf("root span has no mode attr: %v", root.Attrs)
		}
		if _, ok := root.Attrs["verified"]; !ok {
			t.Fatalf("root span has no verified attr: %v", root.Attrs)
		}
		if root.child("queue-wait") == nil {
			t.Fatal("batch has no queue-wait child")
		}
		sweep := root.child("sweep")
		if sweep == nil {
			t.Fatalf("batch (mode %v) has no sweep child", root.Attrs["mode"])
		}
		if sweep.child("budget-wait") == nil {
			t.Fatal("parallel sweep recorded no budget-wait child")
		}
		if mode, _ := root.Attrs["mode"].(string); mode == "reprove" || mode == "flip" {
			if root.child("prove") == nil {
				t.Fatal("re-prove batch has no prove child")
			}
		}
	}
}

// TestDebugTracesPersistSpan checks that on a durable server the ack
// path's WAL work shows up as a persist span under the batch.
func TestDebugTracesPersistSpan(t *testing.T) {
	srv, ts := newTestServer(t, Config{DataDir: t.TempDir()})
	if err := srv.Recover(); err != nil {
		t.Fatal(err)
	}
	newTracedSession(t, ts.URL, "dur", 20)
	doJSON(t, "POST", ts.URL+"/v1/sessions/dur/updates", `{"op":"add_edge","a":0,"b":5}`, http.StatusOK, nil)

	var page jsonPage
	doJSON(t, "GET", ts.URL+"/debug/traces/dur", nil, http.StatusOK, &page)
	if len(page.Traces) == 0 {
		t.Fatal("no traces for durable session")
	}
	if page.Traces[0].Root.child("persist") == nil {
		t.Fatal("durable batch has no persist child")
	}
}

// TestDebugTracesSessionFilterAndLimit checks the {session} path form
// and the ?limit parameter, including limit validation.
func TestDebugTracesSessionFilterAndLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	newTracedSession(t, ts.URL, "alpha", 20)
	newTracedSession(t, ts.URL, "beta", 20)
	for i := 0; i < 3; i++ {
		doJSON(t, "POST", ts.URL+"/v1/sessions/alpha/updates", `{"op":"add_edge","a":0,"b":`+itoa(5+i)+`}`, http.StatusOK, nil)
		doJSON(t, "POST", ts.URL+"/v1/sessions/beta/updates", `{"op":"add_edge","a":1,"b":`+itoa(6+i)+`}`, http.StatusOK, nil)
	}

	var page jsonPage
	doJSON(t, "GET", ts.URL+"/debug/traces/alpha", nil, http.StatusOK, &page)
	if page.Session != "alpha" || len(page.Traces) != 3 {
		t.Fatalf("session filter: got session %q with %d traces, want alpha with 3", page.Session, len(page.Traces))
	}
	for _, tr := range page.Traces {
		if tr.Session != "alpha" {
			t.Fatalf("filtered page leaked a %q trace", tr.Session)
		}
	}

	doJSON(t, "GET", ts.URL+"/debug/traces?limit=2", nil, http.StatusOK, &page)
	if len(page.Traces) != 2 {
		t.Fatalf("limit=2 returned %d traces", len(page.Traces))
	}
	req, err := http.NewRequest("GET", ts.URL+"/debug/traces?limit=bogus", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=bogus: status %d, want 400", resp.StatusCode)
	}
}

// TestDebugTracesRingEviction fills a tiny ring past capacity and
// checks that only the newest traces survive and the evictions are
// counted.
func TestDebugTracesRingEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRing: 2})
	newTracedSession(t, ts.URL, "ring", 20)
	for i := 0; i < 5; i++ {
		doJSON(t, "POST", ts.URL+"/v1/sessions/ring/updates", `{"op":"add_edge","a":0,"b":`+itoa(5+i)+`}`, http.StatusOK, nil)
	}

	var page jsonPage
	doJSON(t, "GET", ts.URL+"/debug/traces", nil, http.StatusOK, &page)
	if len(page.Traces) != 2 {
		t.Fatalf("ring of 2 retained %d traces", len(page.Traces))
	}
	if page.DroppedEvicted != 3 {
		t.Fatalf("dropped_evicted = %d, want 3", page.DroppedEvicted)
	}
	if page.Traces[0].ID != 5 || page.Traces[1].ID != 4 {
		t.Fatalf("ring kept traces %d, %d; want the newest (5, 4)", page.Traces[0].ID, page.Traces[1].ID)
	}
}

// TestDebugTracesSlowAlwaysKept runs with an aggressive sampler that
// would drop everything, plus a slow threshold of one nanosecond: every
// batch qualifies as slow, so the tail survives the sampling.
func TestDebugTracesSlowAlwaysKept(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceSampleEvery: 1 << 20, TraceSlow: time.Nanosecond})
	newTracedSession(t, ts.URL, "slow", 20)
	for i := 0; i < 3; i++ {
		doJSON(t, "POST", ts.URL+"/v1/sessions/slow/updates", `{"op":"add_edge","a":0,"b":`+itoa(5+i)+`}`, http.StatusOK, nil)
	}

	var page jsonPage
	doJSON(t, "GET", ts.URL+"/debug/traces", nil, http.StatusOK, &page)
	if len(page.Traces) != 3 {
		t.Fatalf("slow retention kept %d traces, want all 3", len(page.Traces))
	}
	for _, tr := range page.Traces {
		if !tr.Slow {
			t.Fatalf("trace %d not marked slow", tr.ID)
		}
	}
}

// TestDebugTracesDisabled checks the tracing-off surface: the endpoint
// stays up, reports enabled=false, and returns no traces.
func TestDebugTracesDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRing: -1})
	newTracedSession(t, ts.URL, "off", 20)
	doJSON(t, "POST", ts.URL+"/v1/sessions/off/updates", `{"op":"add_edge","a":0,"b":5}`, http.StatusOK, nil)

	var page jsonPage
	doJSON(t, "GET", ts.URL+"/debug/traces", nil, http.StatusOK, &page)
	if page.Enabled || len(page.Traces) != 0 {
		t.Fatalf("disabled tracing returned enabled=%v with %d traces", page.Enabled, len(page.Traces))
	}
}
