package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	planarcert "github.com/planarcert/planarcert"
)

// newWireSession creates a session named name on a 4-cycle and returns
// its base URL.
func newWireSession(t *testing.T, tsURL, name string) string {
	t.Helper()
	doJSON(t, "POST", tsURL+"/v1/sessions", CreateSessionRequest{
		Name:   name,
		Scheme: planarcert.SchemePlanarity,
		Graph:  GraphSpec{EdgeList: "0 1\n1 2\n2 3\n3 0\n"},
	}, http.StatusCreated, nil)
	return tsURL + "/v1/sessions/" + name
}

// postFrame POSTs raw bytes under the given Content-Type and returns
// the response.
func postFrame(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestUpdatesContentNegotiation pins the media-type matrix of POST
// .../updates: NDJSON aliases (including no Content-Type at all, which
// bare curl clients send), the binary frame type, and 415 with an
// Accept-Post hint for everything else.
func TestUpdatesContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := newWireSession(t, ts.URL, "neg") + "/updates"

	frame, err := planarcert.EncodeUpdatesFrame("queue", []planarcert.Update{planarcert.EdgeAdd(0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	ndjson := []byte(`{"op":"add_edge","a":0,"b":2}` + "\n")

	tests := []struct {
		contentType string
		body        []byte
		wantCode    int
	}{
		{"", ndjson, http.StatusAccepted},
		{"application/x-ndjson", ndjson, http.StatusAccepted},
		{"application/json", ndjson, http.StatusAccepted},
		{"application/json; charset=utf-8", ndjson, http.StatusAccepted},
		{"Application/JSON", ndjson, http.StatusAccepted},
		{planarcert.WireContentType, frame, http.StatusAccepted},
		{planarcert.WireContentType + "; v=1", frame, http.StatusAccepted},
		{"text/plain", ndjson, http.StatusUnsupportedMediaType},
		{"application/xml", ndjson, http.StatusUnsupportedMediaType},
		{"application/x-planarcert-frame2", frame, http.StatusUnsupportedMediaType},
	}
	for _, tc := range tests {
		t.Run("ct="+tc.contentType, func(t *testing.T) {
			resp := postFrame(t, url+"?mode=queue", tc.contentType, tc.body)
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d; body %s", resp.StatusCode, tc.wantCode, raw)
			}
			if tc.wantCode == http.StatusUnsupportedMediaType {
				hint := resp.Header.Get("Accept-Post")
				if !strings.Contains(hint, "application/x-ndjson") || !strings.Contains(hint, planarcert.WireContentType) {
					t.Fatalf("Accept-Post hint %q", hint)
				}
			}
		})
	}
}

// TestBinaryUpdates drives queue- and apply-mode batches through the
// frame protocol and checks the binary acks against the JSON path on an
// identical twin session (decode-then-apply parity).
func TestBinaryUpdates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	binURL := newWireSession(t, ts.URL, "bin")
	jsonURL := newWireSession(t, ts.URL, "json")

	updates := []planarcert.Update{
		planarcert.NodeAdd(4),
		planarcert.EdgeAdd(3, 4),
		planarcert.EdgeAdd(0, 2),
	}

	// Queue mode: 202 with a binary ack counting the queue.
	frame, err := planarcert.EncodeUpdatesFrame("queue", updates[:1])
	if err != nil {
		t.Fatal(err)
	}
	resp := postFrame(t, binURL+"/updates", planarcert.WireContentType, frame)
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queue: status %d, body %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != planarcert.WireContentType {
		t.Fatalf("queue ack Content-Type %q", ct)
	}
	ack, err := planarcert.DecodeBatchAckFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Queued != 1 || ack.Pending != 1 || ack.Report != nil {
		t.Fatalf("queue ack %+v", ack)
	}

	// Apply mode ("" = apply): 200 with the absorption report; the queued
	// update above is flushed together with the new ones.
	frame, err = planarcert.EncodeUpdatesFrame("", updates[1:])
	if err != nil {
		t.Fatal(err)
	}
	resp = postFrame(t, binURL+"/updates", planarcert.WireContentType, frame)
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: status %d, body %s", resp.StatusCode, raw)
	}
	ack, err = planarcert.DecodeBatchAckFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Queued != 2 || ack.Report == nil || ack.Elapsed <= 0 {
		t.Fatalf("apply ack %+v", ack)
	}

	// Parity: the same updates over NDJSON on the twin session yield the
	// same deterministic outcome.
	var jr UpdatesResponse
	doJSON(t, "POST", jsonURL+"/updates", ""+
		`{"op":"add_node","a":4}`+"\n"+
		`{"op":"add_edge","a":3,"b":4}`+"\n"+
		`{"op":"add_edge","a":0,"b":2}`+"\n", http.StatusOK, &jr)
	if jr.Report == nil {
		t.Fatal("json path returned no report")
	}
	br := ack.Report
	if br.Generation != jr.Report.Generation || br.Accepted != jr.Report.Accepted ||
		br.Updates != jr.Report.Updates {
		t.Fatalf("binary/json parity:\n binary %+v\n json   %+v", br, jr.Report)
	}

	// Malformed frames are rejected with the JSON error envelope.
	for _, bad := range [][]byte{
		nil,
		[]byte("not a frame"),
		append(bytes.Clone(frame), 0xff), // trailing bytes
	} {
		resp = postFrame(t, binURL+"/updates", planarcert.WireContentType, bad)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad frame %q: status %d", bad, resp.StatusCode)
		}
	}

	// Batches beyond MaxBatchUpdates are refused up front.
	var big []planarcert.Update
	for i := 0; i < 4; i++ {
		big = append(big, planarcert.EdgeAdd(planarcert.NodeID(i), planarcert.NodeID(i+1)))
	}
	_, ts2 := newTestServer(t, Config{MaxBatchUpdates: 2})
	url2 := newWireSession(t, ts2.URL, "cap") + "/updates"
	frame, err = planarcert.EncodeUpdatesFrame("queue", big)
	if err != nil {
		t.Fatal(err)
	}
	resp = postFrame(t, url2, planarcert.WireContentType, frame)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch: status %d", resp.StatusCode)
	}
}

// binaryWatch attaches a binary watch stream and returns its scanner
// and a closer.
func binaryWatch(t *testing.T, url string) (*planarcert.WireScanner, func()) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch: status %d, body %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != planarcert.WireContentType {
		resp.Body.Close()
		t.Fatalf("watch Content-Type %q", ct)
	}
	return planarcert.NewWireScanner(resp.Body), func() { resp.Body.Close() }
}

// applyOne applies a single edge update over the binary protocol.
func applyOne(t *testing.T, base string, u planarcert.Update) {
	t.Helper()
	frame, err := planarcert.EncodeUpdatesFrame("apply", []planarcert.Update{u})
	if err != nil {
		t.Fatal(err)
	}
	resp := postFrame(t, base+"/updates", planarcert.WireContentType, frame)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: status %d", resp.StatusCode)
	}
}

// postAck posts an ack/nack frame to the watch acknowledgement
// endpoint.
func postAck(t *testing.T, base string, frame []byte, wantCode int) {
	t.Helper()
	resp := postFrame(t, base+"/watch/ack", planarcert.WireContentType, frame)
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("watch/ack: status %d, want %d; body %s", resp.StatusCode, wantCode, raw)
	}
}

// TestBinaryWatchResume exercises the version-acknowledged subscription
// loop: hello, live events, ACK, reconnect with replay of the unACKed
// suffix, and NACK rewinding the cursor.
func TestBinaryWatchResume(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := newWireSession(t, ts.URL, "resume")

	sc, closeWatch := binaryWatch(t, base+"/watch?format=binary&replay=last")
	msg, err := sc.Next()
	if err != nil || msg.Hello == nil {
		t.Fatalf("hello: %+v, %v", msg, err)
	}
	sub := msg.Hello.Subscription
	if sub == 0 || msg.Hello.Reset {
		t.Fatalf("hello %+v", msg.Hello)
	}
	// replay=last on a fresh subscription delivers the latest report.
	msg, err = sc.Next()
	if err != nil || msg.Event == nil {
		t.Fatalf("replay event: %+v, %v", msg, err)
	}
	baseline := msg.Event.Version

	// Two live events, in version order.
	applyOne(t, base, planarcert.EdgeAdd(0, 2))
	applyOne(t, base, planarcert.EdgeAdd(1, 3))
	var versions []uint64
	for len(versions) < 2 {
		msg, err = sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Event != nil {
			versions = append(versions, msg.Event.Version)
		}
	}
	if versions[0] != baseline+1 || versions[1] != baseline+2 {
		t.Fatalf("versions %v, baseline %d", versions, baseline)
	}

	// ACK the first live event only, then drop the connection.
	ackFrame, err := planarcert.EncodeWatchAckFrame(sub, versions[0])
	if err != nil {
		t.Fatal(err)
	}
	postAck(t, base, ackFrame, http.StatusNoContent)
	closeWatch()

	// A third event lands while detached.
	applyOne(t, base, planarcert.EdgeRemove(0, 2))

	// Resume: everything after the ACKed version replays, in order.
	sc, closeWatch = binaryWatch(t, fmt.Sprintf("%s/watch?format=binary&sub=%d", base, sub))
	defer closeWatch()
	msg, err = sc.Next()
	if err != nil || msg.Hello == nil {
		t.Fatalf("resume hello: %+v, %v", msg, err)
	}
	if msg.Hello.Subscription != sub || msg.Hello.Reset || msg.Hello.ResumeFrom != versions[0] {
		t.Fatalf("resume hello %+v", msg.Hello)
	}
	for _, want := range []uint64{versions[1], versions[1] + 1} {
		msg, err = sc.Next()
		if err != nil || msg.Event == nil {
			t.Fatalf("resume replay: %+v, %v", msg, err)
		}
		if msg.Event.Version != want {
			t.Fatalf("resume replay version %d, want %d", msg.Event.Version, want)
		}
	}

	// ACK everything, then NACK the last event: the cursor rewinds (nack
	// never advances it) so the event replays again on the next attach.
	ackFrame, err = planarcert.EncodeWatchAckFrame(sub, versions[1]+1)
	if err != nil {
		t.Fatal(err)
	}
	postAck(t, base, ackFrame, http.StatusNoContent)
	nackFrame, err := planarcert.EncodeWatchNackFrame(sub, versions[1]+1, "apply failed")
	if err != nil {
		t.Fatal(err)
	}
	postAck(t, base, nackFrame, http.StatusNoContent)
	sc2, closeWatch2 := binaryWatch(t, fmt.Sprintf("%s/watch?format=binary&sub=%d", base, sub))
	defer closeWatch2()
	msg, err = sc2.Next()
	if err != nil || msg.Hello == nil || msg.Hello.Reset {
		t.Fatalf("post-nack hello: %+v, %v", msg, err)
	}
	msg, err = sc2.Next()
	if err != nil || msg.Event == nil || msg.Event.Version != versions[1]+1 {
		t.Fatalf("post-nack replay: %+v, %v", msg, err)
	}
}

// TestBinaryWatchReset pins the reset path: an unknown ?sub= (e.g.
// after a server restart) gets a fresh subscription, Reset=true and the
// latest event as baseline.
func TestBinaryWatchReset(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := newWireSession(t, ts.URL, "reset")
	applyOne(t, base, planarcert.EdgeAdd(0, 2))

	sc, closeWatch := binaryWatch(t, base+"/watch?format=binary&sub=424242")
	defer closeWatch()
	msg, err := sc.Next()
	if err != nil || msg.Hello == nil {
		t.Fatalf("hello: %+v, %v", msg, err)
	}
	if !msg.Hello.Reset || msg.Hello.Subscription == 424242 || msg.Hello.Subscription == 0 {
		t.Fatalf("hello %+v", msg.Hello)
	}
	attachVersion := msg.Hello.Version
	msg, err = sc.Next()
	if err != nil || msg.Event == nil || msg.Event.Version != attachVersion {
		t.Fatalf("baseline event: %+v, %v", msg, err)
	}
}

// TestBinaryWatchReplayDisabled pins Config.ReplayEvents < 0: every
// resume is a reset because nothing is retained.
func TestBinaryWatchReplayDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{ReplayEvents: -1})
	base := newWireSession(t, ts.URL, "noreplay")

	sc, closeWatch := binaryWatch(t, base+"/watch?format=binary")
	msg, err := sc.Next()
	if err != nil || msg.Hello == nil {
		t.Fatalf("hello: %+v, %v", msg, err)
	}
	sub := msg.Hello.Subscription
	applyOne(t, base, planarcert.EdgeAdd(0, 2))
	msg, err = sc.Next()
	if err != nil || msg.Event == nil {
		t.Fatalf("event: %+v, %v", msg, err)
	}
	closeWatch()

	applyOne(t, base, planarcert.EdgeAdd(1, 3))
	sc, closeWatch = binaryWatch(t, fmt.Sprintf("%s/watch?format=binary&sub=%d", base, sub))
	defer closeWatch()
	msg, err = sc.Next()
	if err != nil || msg.Hello == nil {
		t.Fatalf("resume hello: %+v, %v", msg, err)
	}
	if !msg.Hello.Reset {
		t.Fatalf("resume without a ring must reset: %+v", msg.Hello)
	}
}

// TestWatchAckErrors pins the acknowledgement endpoint's failure modes.
func TestWatchAckErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := newWireSession(t, ts.URL, "ackerr")

	ack, err := planarcert.EncodeWatchAckFrame(999, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown subscription.
	postAck(t, base, ack, http.StatusNotFound)
	// Wrong media type.
	resp := postFrame(t, base+"/watch/ack", "application/json", []byte("{}"))
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("json ack: status %d", resp.StatusCode)
	}
	if hint := resp.Header.Get("Accept-Post"); hint != planarcert.WireContentType {
		t.Fatalf("Accept-Post %q", hint)
	}
	resp.Body.Close()
	// Garbage body.
	postAck(t, base, []byte("garbage"), http.StatusBadRequest)
	// Wrong frame kind.
	ev, err := planarcert.EncodeEventFrame(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	postAck(t, base, ev, http.StatusBadRequest)
	// Unknown session.
	resp = postFrame(t, ts.URL+"/v1/sessions/ghost/watch/ack", planarcert.WireContentType, ack)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost session: status %d", resp.StatusCode)
	}
	// Bad ?format= on watch itself.
	resp, err = http.Get(base + "/watch?format=msgpack")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: status %d", resp.StatusCode)
	}
}

// TestBroadcastSingleMarshal verifies the fan-out marshals each report
// once per format: every JSON watcher receives the same *watchEvent
// with the same pre-encoded byte slice, and the binary encoding is only
// materialized when a binary watcher is attached.
func TestBroadcastSingleMarshal(t *testing.T) {
	ms := newTestSession(t, "fanout")
	defer ms.close()

	_, ch1, ok1 := ms.watch()
	_, ch2, ok2 := ms.watch()
	if !ok1 || !ok2 {
		t.Fatal("watch failed")
	}
	rep := &planarcert.SessionReport{Generation: 5, Mode: "repair", Accepted: true}
	if delivered, dropped := ms.broadcast(rep); delivered != 2 || dropped != 0 {
		t.Fatalf("broadcast: delivered %d dropped %d", delivered, dropped)
	}
	ev1, ev2 := <-ch1, <-ch2
	if ev1 != ev2 {
		t.Fatal("watchers received distinct events — fan-out re-marshals per watcher")
	}
	if ev1.json == nil {
		t.Fatal("JSON encoding not materialized for JSON watchers")
	}
	if ev1.bin != nil {
		t.Fatal("binary encoding materialized with no binary watcher attached")
	}

	// With a binary watcher attached, one event carries both encodings.
	id3, _, _, ch3, ok := ms.watchBinary(0, false)
	if !ok {
		t.Fatal("watchBinary failed")
	}
	defer ms.unwatch(id3)
	ms.broadcast(rep)
	ev1, ev3 := <-ch1, <-ch3
	<-ch2
	if ev1 != ev3 || ev3.bin == nil || ev3.json == nil {
		t.Fatalf("mixed fan-out: ev1==ev3 %v, bin %v, json %v", ev1 == ev3, ev3.bin != nil, ev3.json != nil)
	}
	// The stream bytes are exactly what the JSON path used to write: one
	// HTML-unescaped json.Encoder line.
	if !bytes.HasSuffix(ev1.json, []byte("\n")) || !bytes.Contains(ev1.json, []byte(`"generation":5`)) {
		t.Fatalf("json event bytes %q", ev1.json)
	}
}

// newTestSession builds a registry-less session on a 4-cycle for unit
// tests of the watch plumbing.
func newTestSession(t *testing.T, name string) *session {
	t.Helper()
	net := planarcert.NewNetwork()
	for id := planarcert.NodeID(0); id < 4; id++ {
		if err := net.AddNode(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]planarcert.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := net.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := planarcert.NewSession(net, planarcert.SchemePlanarity, planarcert.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return newSession(name, planarcert.SchemePlanarity, ps, 4, 8)
}

// TestSubscriptionEviction pins the subscription cap: minting past
// maxSubscriptions evicts the smallest (oldest) identifier.
func TestSubscriptionEviction(t *testing.T) {
	ms := newTestSession(t, "evict")
	defer ms.close()
	ms.watchMu.Lock()
	var first uint64
	for i := 0; i < maxSubscriptions+1; i++ {
		id := ms.mintSubLocked()
		if i == 0 {
			first = id
		}
	}
	_, stillThere := ms.subs[first]
	n := len(ms.subs)
	ms.watchMu.Unlock()
	if stillThere || n != maxSubscriptions {
		t.Fatalf("eviction: first present %v, %d subs", stillThere, n)
	}
}

// TestRingCoverage pins ringAfterLocked: a gap the ring no longer
// covers resets instead of replaying a hole.
func TestRingCoverage(t *testing.T) {
	ms := newTestSession(t, "ring")
	defer ms.close()
	gen := ms.lastVersion
	for i := 0; i < 12; i++ { // ringCap is 8; versions gen+1..gen+12
		ms.broadcast(&planarcert.SessionReport{Generation: gen + uint64(i+1)})
	}
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	// Covered: acked the event before the ring's first entry.
	replay, reset := ms.ringAfterLocked(gen + 4)
	if reset || len(replay) != 8 || replay[0].version != gen+5 {
		t.Fatalf("covered: reset %v, %d events, first %d", reset, len(replay), replay[0].version)
	}
	// Fully caught up: nothing to replay.
	replay, reset = ms.ringAfterLocked(gen + 12)
	if reset || len(replay) != 0 {
		t.Fatalf("caught up: reset %v, %d events", reset, len(replay))
	}
	// Uncovered gap: the ring starts after acked+1.
	replay, reset = ms.ringAfterLocked(gen + 1)
	if !reset || len(replay) != 1 || replay[0].version != gen+12 {
		t.Fatalf("uncovered: reset %v, %d events", reset, len(replay))
	}
}

// TestJSONWatchUnchanged guards the satellite's compatibility claim:
// the single-marshal refactor must not change a byte of the NDJSON
// watch stream.
func TestJSONWatchUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := newWireSession(t, ts.URL, "jsonwatch")

	resp, err := http.Get(base + "/watch?replay=last")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	applyOne(t, base, planarcert.EdgeAdd(0, 2))
	deadline := time.After(5 * time.Second)
	lines := make(chan []byte, 2)
	go func() {
		buf := make([]byte, 64<<10)
		n, _ := resp.Body.Read(buf)
		lines <- buf[:n]
	}()
	select {
	case raw := <-lines:
		for _, line := range bytes.SplitAfter(raw, []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			if line[len(line)-1] != '\n' {
				t.Fatalf("stream chunk not newline-terminated: %q", line)
			}
			var rep planarcert.SessionReport
			if err := json.Unmarshal(line, &rep); err != nil {
				t.Fatalf("stream line %q: %v", line, err)
			}
			// json.Encoder with SetEscapeHTML(false) and a trailing newline
			// is the frozen line shape; re-encoding reproduces it exactly.
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetEscapeHTML(false)
			if err := enc.Encode(&rep); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), line) {
				t.Fatalf("stream line not canonical:\n got %q\nwant %q", line, buf.Bytes())
			}
		}
	case <-deadline:
		t.Fatal("no watch event within deadline")
	}
}
