package server

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/dynamic"
	"github.com/planarcert/planarcert/internal/obs"
	"github.com/planarcert/planarcert/internal/qos"
	"github.com/planarcert/planarcert/internal/wal"
	"github.com/planarcert/planarcert/internal/wire"
)

// session is one named, server-managed certification session: the
// concurrency-hardening wrapper that turns the single-goroutine
// planarcert.Session into something many HTTP handlers can share.
//
// Two locks with distinct scopes keep the fast paths apart:
//
//   - mu serializes every call into the underlying planarcert.Session
//     (queue, flush, verify, snapshot). Holding it across a flush is
//     the point: batches from concurrent clients are absorbed one at a
//     time, in arrival order.
//   - watchMu guards only the watcher registry, so attaching or
//     detaching a watch stream never waits behind a long re-prove.
type session struct {
	name    string
	scheme  planarcert.SchemeName // scheme requested at creation
	created time.Time

	// qos is the session's QoS class, fixed at creation (the snapshot
	// format cannot carry it, so restored sessions get the server
	// default). execClaim is its claimant on the server's batch-admission
	// scheduler; both are set before the session is published and never
	// mutated afterwards.
	qos       qos.Class
	execClaim *qos.Claimant
	// lastUsed is the UnixNano of the last client batch/flush/verify,
	// the LRU eviction key. Atomic: handlers touch it without ms.mu.
	lastUsed atomic.Int64

	mu      sync.Mutex
	s       *planarcert.Session
	pending int // updates queued but not yet flushed

	// Adaptive repair-threshold controller (nil unless the server runs
	// with AdaptiveRepair); guarded by mu like the session it tunes.
	tuner     *dynamic.ThresholdTuner
	sinceTune int

	// Durability (all guarded by mu; store == nil means the session is
	// not persisted). pendingLog mirrors the queued-but-unflushed update
	// log so the WAL record of the next apply/flush carries the FULL
	// absorbed batch, including updates other clients queued earlier.
	store      *wal.Store
	snapEvery  int // logged batches between automatic snapshots
	sinceSnap  int
	pendingLog []planarcert.Update
	// logDirty marks a failed WAL append: the log file may end in torn
	// bytes, so further appends are unsafe until a snapshot resets it.
	// While set, every ack requires a successful snapshot instead.
	logDirty bool
	popts    persistOpts
	met      *metrics // nil-safe; recovery/persistence counters

	watchMu   sync.Mutex
	watchers  map[uint64]*watcher
	nextWatch uint64
	closed    bool
	watchBuf  int
	// Version-acknowledged subscription state (all under watchMu).
	// lastVersion is the version of the newest broadcast event (the
	// session generation — strictly increasing across broadcasts); ring
	// retains the last ringCap events for replay-after-reconnect; subs
	// tracks each binary subscription's last ACKed version.
	lastVersion uint64
	ring        []*watchEvent
	ringCap     int
	subs        map[uint64]*subAck
	nextSub     uint64

	// broadcastHook feeds delivery/drop counts to the server's metrics;
	// set once at construction (never mutated afterwards, so it needs no
	// lock). Nil means no accounting.
	broadcastHook func(delivered, dropped int)
}

// watchEvent is one broadcast report, marshaled ONCE per format and
// fanned out as bytes to every watcher (the per-watcher re-marshal this
// replaces was the watch path's dominant cost at high fan-out). json
// and bin are filled lazily: only the formats with a live watcher (or,
// for bin, a later replay) pay for encoding.
type watchEvent struct {
	version uint64
	rep     *planarcert.SessionReport
	json    []byte // NDJSON line including the trailing newline
	bin     []byte // complete binary event frame
}

// watcher is one attached watch stream.
type watcher struct {
	ch     chan *watchEvent
	binary bool
}

// subAck is the server-side cursor of one version-acknowledged
// subscription.
type subAck struct {
	acked uint64
}

// maxSubscriptions bounds the per-session subscription map; past it the
// oldest (smallest-id) subscription is dropped and its client falls
// back to a reset on resume.
const maxSubscriptions = 4096

// newSession wraps s; watchBuf must be positive (Config.withDefaults
// guarantees it on the server path). ringCap sizes the replay ring
// (negative disables replay-after-reconnect).
func newSession(name string, scheme planarcert.SchemeName, s *planarcert.Session, watchBuf, ringCap int) *session {
	ms := &session{
		name:     name,
		scheme:   scheme,
		created:  time.Now(),
		s:        s,
		watchers: make(map[uint64]*watcher),
		watchBuf: watchBuf,
		ringCap:  ringCap,
		subs:     make(map[uint64]*subAck),
	}
	ms.lastVersion = s.Generation()
	ms.touch()
	return ms
}

// touch stamps the session as recently used (LRU eviction key).
func (ms *session) touch() { ms.lastUsed.Store(time.Now().UnixNano()) }

// tuneThresholdLocked feeds one absorbed batch into the adaptive
// repair-threshold controller and applies its recommendation every 8th
// batch. The caller holds ms.mu; no-op when tuning is off.
func (ms *session) tuneThresholdLocked(rep *planarcert.SessionReport, elapsed time.Duration) {
	if ms.tuner == nil {
		return
	}
	ms.tuner.Observe(dynamic.Mode(rep.Mode), rep.RepairFallback != "", elapsed.Seconds())
	ms.sinceTune++
	if ms.sinceTune < 8 {
		return
	}
	ms.sinceTune = 0
	cur := ms.s.RepairThreshold()
	if rec := ms.tuner.Recommend(cur); rec != cur {
		ms.s.SetRepairThreshold(rec)
		if ms.met != nil {
			ms.met.thresholdAdjusted.Add(1)
		}
	}
}

// persistOpts are the session options the durability layer carries in
// every snapshot, so a restored session is tuned like the original.
type persistOpts struct {
	repairThreshold int
	cacheSize       int
	noFlip          bool
}

func (o persistOpts) options() []planarcert.SessionOption {
	var opts []planarcert.SessionOption
	if o.repairThreshold != 0 {
		opts = append(opts, planarcert.WithRepairThreshold(o.repairThreshold))
	}
	if o.cacheSize != 0 {
		opts = append(opts, planarcert.WithCacheSize(o.cacheSize))
	}
	if o.noFlip {
		opts = append(opts, planarcert.WithoutFlip())
	}
	return opts
}

// queue appends updates to the session's log without flushing. The
// updates were already converted from wire form, so Queue cannot fail
// (it only rejects unknown ops).
func (ms *session) queue(updates []planarcert.Update) (pending int) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, u := range updates {
		if err := ms.s.Queue(u); err == nil {
			ms.pending++
			if ms.store != nil {
				ms.pendingLog = append(ms.pendingLog, u)
			}
		}
	}
	return ms.pending
}

// persistBatchLocked makes one absorbed batch durable (log-before-ack):
// the caller has already applied it to the in-memory session and must
// not ack until this returns nil. The normal path appends one WAL
// record; every snapEvery-th record also writes a snapshot. If an
// append fails the log file may end in torn bytes, so the fallback
// writes a snapshot instead — it carries the batch's effect and resets
// the log — and the session stays in that mode until a snapshot lands.
func (ms *session) persistBatchLocked(updates []planarcert.Update) error {
	if ms.store == nil || (len(updates) == 0 && !ms.logDirty) {
		return nil
	}
	if !ms.logDirty && len(updates) > 0 {
		if err := ms.store.AppendBatch(ms.store.NextSeq(), walUpdates(updates)); err == nil {
			if ms.met != nil {
				ms.met.walAppends.Add(1)
			}
			ms.sinceSnap++
			if ms.sinceSnap >= ms.snapEvery {
				// The batch is already durable in the log; a failed
				// periodic snapshot is retried at the next batch and must
				// not fail the ack.
				_ = ms.writeSnapshotLocked()
			}
			return nil
		}
		ms.logDirty = true
	}
	return ms.writeSnapshotLocked()
}

// writeSnapshotLocked persists the session's current state. After it
// returns nil the WAL has been compacted to empty (the snapshot carries
// everything) and a failed-append state, if any, is cleared.
func (ms *session) writeSnapshotLocked() error {
	if ms.store == nil {
		return nil
	}
	seq := ms.store.LastSeq()
	if ms.logDirty {
		// The state includes a batch that never reached the log; give the
		// snapshot the sequence number that batch would have used so its
		// file name stays strictly newer than the last good snapshot's.
		seq = ms.store.NextSeq()
	}
	snap := ms.s.Snapshot()
	hi, lo := ms.s.Fingerprint()
	ws := &wal.Snapshot{
		Name:            ms.name,
		Scheme:          string(ms.scheme),
		ActiveScheme:    string(snap.ActiveScheme),
		Generation:      snap.Generation,
		Seq:             seq,
		FingerprintHi:   hi,
		FingerprintLo:   lo,
		RepairThreshold: int64(ms.popts.repairThreshold),
		CacheSize:       int64(ms.popts.cacheSize),
		NoFlip:          ms.popts.noFlip,
		Nodes:           walNodes(snap.Network),
		Edges:           walEdges(snap.Network),
		Certs:           walCerts(snap.Certificates),
	}
	if err := ms.store.WriteSnapshot(ws); err != nil {
		return err
	}
	ms.sinceSnap = 0
	ms.logDirty = false
	if ms.met != nil {
		ms.met.snapshotsWritten.Add(1)
	}
	return nil
}

// flush absorbs the whole pending log as one batch and broadcasts the
// report to every watcher. The broadcast happens while ms.mu is still
// held (it is non-blocking, so this is cheap) so that watchers receive
// reports in generation order even when applies race. The returned
// duration is the time spent inside the session (repair/re-prove +
// verification), excluding lock wait — the wait itself lands on sp's
// queue-wait child. sp may be nil (tracing off).
func (ms *session) flush(sp *obs.Span) (*planarcert.SessionReport, time.Duration, error) {
	qw := sp.Child(obs.SpanQueueWait)
	ms.mu.Lock()
	qw.End()
	defer ms.mu.Unlock()
	batch := ms.pendingLog
	ms.pendingLog = nil
	ms.s.Trace(sp)
	start := time.Now()
	rep, err := ms.s.Flush()
	elapsed := time.Since(start)
	// Success absorbed the log; failure discarded it (Session rejects
	// whole batches) — either way nothing stays pending.
	ms.pending = 0
	if err != nil {
		return nil, elapsed, err
	}
	if err := ms.persistLoggedBatch(sp, batch); err != nil {
		return nil, elapsed, &persistError{err}
	}
	if ms.store != nil {
		// An explicit flush is a client checkpoint: force a snapshot so
		// the durable state converges even on a mostly-queueing workload.
		_ = ms.writeSnapshotLocked()
	}
	ms.tuneThresholdLocked(rep, elapsed)
	ms.broadcast(rep)
	return rep, elapsed, nil
}

// persistLoggedBatch runs persistBatchLocked under a persist span, so a
// traced batch shows how much of its latency was durability.
func (ms *session) persistLoggedBatch(sp *obs.Span, batch []planarcert.Update) error {
	pp := sp.Child(obs.SpanPersist)
	err := ms.persistBatchLocked(batch)
	if err != nil {
		pp.SetStr("error", err.Error())
	}
	pp.End()
	return err
}

// apply queues the batch and flushes it as one serialized operation, so
// two concurrent apply calls cannot interleave their updates into one
// merged batch. Like flush, the broadcast runs under ms.mu to preserve
// generation order for watchers.
func (ms *session) apply(updates []planarcert.Update, sp *obs.Span) (*planarcert.SessionReport, time.Duration, error) {
	qw := sp.Child(obs.SpanQueueWait)
	ms.mu.Lock()
	qw.End()
	defer ms.mu.Unlock()
	// Apply absorbs the whole pending log plus this request's updates as
	// one batch; the WAL record must carry all of it.
	batch := updates
	if len(ms.pendingLog) > 0 {
		batch = append(append([]planarcert.Update{}, ms.pendingLog...), updates...)
	}
	ms.pendingLog = nil
	ms.s.Trace(sp)
	start := time.Now()
	rep, err := ms.s.Apply(updates)
	elapsed := time.Since(start)
	ms.pending = 0
	if err != nil {
		return nil, elapsed, err
	}
	if err := ms.persistLoggedBatch(sp, batch); err != nil {
		return nil, elapsed, &persistError{err}
	}
	ms.tuneThresholdLocked(rep, elapsed)
	ms.broadcast(rep)
	return rep, elapsed, nil
}

// persistError marks a batch that was applied in memory but could not
// be made durable; the handler maps it to 500 instead of 422.
type persistError struct{ err error }

func (e *persistError) Error() string { return "persist batch: " + e.err.Error() }
func (e *persistError) Unwrap() error { return e.err }

// verify re-runs the full 1-round verification.
func (ms *session) verify() (*planarcert.Report, time.Duration) {
	ms.mu.Lock()
	start := time.Now()
	rep := ms.s.Verify()
	elapsed := time.Since(start)
	ms.mu.Unlock()
	return rep, elapsed
}

// certificates snapshots the current assignment (deep copy).
func (ms *session) certificates() planarcert.Certificates {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.s.Certificates()
}

// network snapshots the live network (deep copy).
func (ms *session) network() *planarcert.Network {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.s.Network()
}

// status snapshots the session for the REST surface.
func (ms *session) status() *SessionStatus {
	ms.mu.Lock()
	st := &SessionStatus{
		Name:            ms.name,
		Scheme:          ms.scheme,
		ActiveScheme:    ms.s.ActiveScheme(),
		Nodes:           ms.s.N(),
		Edges:           ms.s.M(),
		Generation:      ms.s.Generation(),
		Certified:       ms.s.Certified(),
		Pending:         ms.pending,
		Last:            ms.s.Last(),
		CreatedAt:       ms.created,
		QoS:             ms.qos.String(),
		RepairThreshold: ms.s.RepairThreshold(),
	}
	if ms.store != nil {
		st.Durable = true
		st.WalSeq = ms.store.LastSeq()
	}
	ms.mu.Unlock()
	ms.watchMu.Lock()
	st.Watchers = len(ms.watchers)
	ms.watchMu.Unlock()
	return st
}

// watch registers a new JSON watcher and returns its id and channel.
// The channel is closed when the session is deleted. ok is false if the
// session is already closed.
func (ms *session) watch() (id uint64, ch <-chan *watchEvent, ok bool) {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	w, ok := ms.registerLocked(false)
	if !ok {
		return 0, nil, false
	}
	return ms.nextWatch, w.ch, true
}

// registerLocked adds a watcher under watchMu.
func (ms *session) registerLocked(binary bool) (*watcher, bool) {
	if ms.closed {
		return nil, false
	}
	w := &watcher{ch: make(chan *watchEvent, ms.watchBuf), binary: binary}
	ms.nextWatch++
	ms.watchers[ms.nextWatch] = w
	return w, true
}

// watchReplay snapshots the last report and registers a watcher in one
// ms.mu critical section: broadcasts also run under ms.mu, so no flush
// can slip between the snapshot and the registration — the replayed
// report is never duplicated on (or reordered against) the channel.
func (ms *session) watchReplay() (id uint64, ch <-chan *watchEvent, last *planarcert.SessionReport, ok bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	last = ms.s.Last()
	id, ch, ok = ms.watch()
	return id, ch, last, ok
}

// watchBinary attaches a binary watch stream as a version-acknowledged
// subscription. sub == 0 mints a fresh subscription; otherwise the
// stream resumes the existing one, replaying the ring events after its
// last ACKed version. When the ring no longer covers the gap (or the
// subscription is unknown/evicted), hello.Reset tells the client to
// re-sync full state and only the latest event is replayed. replayLast
// forces the latest event into the replay of a fresh subscription
// (?replay=last parity with the JSON stream). replayed events have
// their binary encoding materialized before they are returned.
func (ms *session) watchBinary(sub uint64, replayLast bool) (id uint64, hello wire.Hello, replay []*watchEvent, ch <-chan *watchEvent, ok bool) {
	// ms.mu before watchMu (the broadcast ordering): holding it across
	// the registration keeps the baseline snapshot and the channel
	// gap-free, exactly like watchReplay on the JSON path.
	ms.mu.Lock()
	defer ms.mu.Unlock()
	last := ms.s.Last()
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	w, ok := ms.registerLocked(true)
	if !ok {
		return 0, wire.Hello{}, nil, nil, false
	}
	id = ms.nextWatch

	requested := sub
	acked := ms.lastVersion
	known := false
	if requested != 0 {
		if sa := ms.subs[requested]; sa != nil {
			acked, known = sa.acked, true
		}
	}
	if !known {
		// Fresh subscription (or an evicted one the server no longer
		// remembers): mint a new identity cursored at the current version.
		sub = ms.mintSubLocked()
	}
	hello = wire.Hello{Subscription: sub, Version: ms.lastVersion, ResumeFrom: acked}

	switch {
	case known && acked < ms.lastVersion:
		replay, hello.Reset = ms.ringAfterLocked(acked)
	case !known && requested != 0:
		// A resume the server cannot honor: the client must re-sync full
		// state; hand it the latest event as its new baseline.
		hello.Reset = true
		if ev := ms.ringLatestLocked(); ev != nil {
			replay = []*watchEvent{ev}
		}
	case !known && replayLast:
		if ev := ms.ringLatestLocked(); ev != nil {
			replay = []*watchEvent{ev}
		}
	}
	if len(replay) == 0 && (hello.Reset || (!known && replayLast)) && last != nil {
		// Nothing retained (fresh session, or replay disabled): fall back
		// to the session's own last report as the baseline event.
		replay = []*watchEvent{{version: ms.lastVersion, rep: last}}
	}
	for _, ev := range replay {
		ms.ensureBinLocked(ev)
	}
	return id, hello, replay, w.ch, true
}

// mintSubLocked allocates a new subscription id, evicting the oldest
// one past maxSubscriptions.
func (ms *session) mintSubLocked() uint64 {
	if len(ms.subs) >= maxSubscriptions {
		oldest := uint64(0)
		for id := range ms.subs {
			if oldest == 0 || id < oldest {
				oldest = id
			}
		}
		delete(ms.subs, oldest)
	}
	ms.nextSub++
	ms.subs[ms.nextSub] = &subAck{acked: ms.lastVersion}
	return ms.nextSub
}

// ringAfterLocked returns the retained events with version > acked, and
// whether the ring failed to cover the gap (reset: the client missed
// events the ring already evicted).
func (ms *session) ringAfterLocked(acked uint64) (replay []*watchEvent, reset bool) {
	if latest := ms.ringLatestLocked(); latest != nil && acked >= latest.version {
		return nil, false // fully caught up: nothing missed, no reset
	}
	for _, ev := range ms.ring {
		if ev.version > acked {
			replay = append(replay, ev)
		}
	}
	if len(replay) == 0 {
		if ev := ms.ringLatestLocked(); ev != nil {
			return []*watchEvent{ev}, true
		}
		return nil, true
	}
	// Covered iff the oldest replayed event is the one right after the
	// cursor; generations advance by exactly one per broadcast. An
	// uncovered gap forces a full re-sync, and since every event carries
	// a complete report, only the latest one is worth replaying then.
	if replay[0].version != acked+1 {
		return []*watchEvent{replay[len(replay)-1]}, true
	}
	return replay, false
}

// ringLatestLocked returns the newest retained event (nil when the ring
// is empty or disabled).
func (ms *session) ringLatestLocked() *watchEvent {
	if len(ms.ring) == 0 {
		return nil
	}
	return ms.ring[len(ms.ring)-1]
}

// ack advances a subscription's cursor; it reports whether the
// subscription exists.
func (ms *session) ack(sub, version uint64) bool {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	sa := ms.subs[sub]
	if sa == nil {
		return false
	}
	if version > sa.acked {
		sa.acked = version
	}
	return true
}

// nack rewinds a subscription's cursor to just before the rejected
// version, so replay-after-reconnect re-delivers it.
func (ms *session) nack(sub, version uint64) bool {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	sa := ms.subs[sub]
	if sa == nil {
		return false
	}
	if version > 0 && version-1 < sa.acked {
		sa.acked = version - 1
	}
	return true
}

// encodeEventJSON marshals one report exactly the way the streaming
// json.Encoder used to (SetEscapeHTML(false) + trailing newline), so
// the single-marshal fan-out is byte-identical to the old stream.
func encodeEventJSON(rep *planarcert.SessionReport) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(rep); err != nil {
		return nil
	}
	return buf.Bytes()
}

// ensureBinLocked materializes ev's binary frame encoding (nil on an
// encode failure; the watch loop skips such events for binary
// watchers).
func (ms *session) ensureBinLocked(ev *watchEvent) {
	if ev.bin != nil {
		return
	}
	ev.bin, _ = planarcert.EncodeEventFrame(ev.version, ev.rep)
}

// broadcast fans one report out to every watcher without blocking: a
// watcher whose buffer is full loses the report (counted by the caller
// via the returned drop count) rather than stalling the flush path.
// The report is marshaled at most ONCE per wire format — watchers
// receive pre-encoded bytes — and retained in the replay ring for
// reconnecting subscriptions.
func (ms *session) broadcast(rep *planarcert.SessionReport) (delivered, dropped int) {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	ev := &watchEvent{version: rep.Generation, rep: rep}
	ms.lastVersion = ev.version
	if ms.ringCap > 0 {
		if len(ms.ring) >= ms.ringCap {
			copy(ms.ring, ms.ring[1:])
			ms.ring[len(ms.ring)-1] = ev
		} else {
			ms.ring = append(ms.ring, ev)
		}
	}
	var needJSON, needBin bool
	for _, w := range ms.watchers {
		if w.binary {
			needBin = true
		} else {
			needJSON = true
		}
	}
	if needJSON {
		ev.json = encodeEventJSON(rep)
	}
	if needBin {
		ms.ensureBinLocked(ev)
	}
	for _, w := range ms.watchers {
		if w.binary && ev.bin == nil {
			dropped++
			continue
		}
		select {
		case w.ch <- ev:
			delivered++
		default:
			dropped++
		}
	}
	if ms.broadcastHook != nil {
		ms.broadcastHook(delivered, dropped)
	}
	return delivered, dropped
}

// unwatch removes a watcher; safe to call after close.
func (ms *session) unwatch(id uint64) {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	delete(ms.watchers, id)
}

// shutdown drains the session for a graceful daemon exit: any queued
// updates are absorbed as one final (logged) batch, a final snapshot is
// written, the store is closed, and the watch streams terminate. For a
// non-durable session it only closes the watchers.
func (ms *session) shutdown() {
	ms.mu.Lock()
	if ms.store != nil {
		if len(ms.pendingLog) > 0 {
			batch := ms.pendingLog
			ms.pendingLog = nil
			if _, err := ms.s.Flush(); err == nil {
				_ = ms.persistBatchLocked(batch)
			}
			ms.pending = 0
		}
		_ = ms.writeSnapshotLocked()
		_ = ms.store.Close()
		ms.store = nil
	}
	ms.mu.Unlock()
	ms.close()
}

// closeStore releases the session's store without a final snapshot
// (session deletion: the durable state is about to be removed).
func (ms *session) closeStore() {
	ms.mu.Lock()
	if ms.store != nil {
		_ = ms.store.Close()
		ms.store = nil
	}
	ms.mu.Unlock()
}

// close marks the session deleted and closes every watcher channel so
// open watch streams terminate.
func (ms *session) close() {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	if ms.closed {
		return
	}
	ms.closed = true
	for id, w := range ms.watchers {
		close(w.ch)
		delete(ms.watchers, id)
	}
}
