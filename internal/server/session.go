package server

import (
	"sync"
	"time"

	planarcert "github.com/planarcert/planarcert"
)

// session is one named, server-managed certification session: the
// concurrency-hardening wrapper that turns the single-goroutine
// planarcert.Session into something many HTTP handlers can share.
//
// Two locks with distinct scopes keep the fast paths apart:
//
//   - mu serializes every call into the underlying planarcert.Session
//     (queue, flush, verify, snapshot). Holding it across a flush is
//     the point: batches from concurrent clients are absorbed one at a
//     time, in arrival order.
//   - watchMu guards only the watcher registry, so attaching or
//     detaching a watch stream never waits behind a long re-prove.
type session struct {
	name    string
	scheme  planarcert.SchemeName // scheme requested at creation
	created time.Time

	mu      sync.Mutex
	s       *planarcert.Session
	pending int // updates queued but not yet flushed

	watchMu   sync.Mutex
	watchers  map[uint64]chan *planarcert.SessionReport
	nextWatch uint64
	closed    bool
	watchBuf  int

	// broadcastHook feeds delivery/drop counts to the server's metrics;
	// set once at construction (never mutated afterwards, so it needs no
	// lock). Nil means no accounting.
	broadcastHook func(delivered, dropped int)
}

// newSession wraps s; watchBuf must be positive (Config.withDefaults
// guarantees it on the server path).
func newSession(name string, scheme planarcert.SchemeName, s *planarcert.Session, watchBuf int) *session {
	return &session{
		name:     name,
		scheme:   scheme,
		created:  time.Now(),
		s:        s,
		watchers: make(map[uint64]chan *planarcert.SessionReport),
		watchBuf: watchBuf,
	}
}

// queue appends updates to the session's log without flushing. The
// updates were already converted from wire form, so Queue cannot fail
// (it only rejects unknown ops).
func (ms *session) queue(updates []planarcert.Update) (pending int) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, u := range updates {
		if err := ms.s.Queue(u); err == nil {
			ms.pending++
		}
	}
	return ms.pending
}

// flush absorbs the whole pending log as one batch and broadcasts the
// report to every watcher. The broadcast happens while ms.mu is still
// held (it is non-blocking, so this is cheap) so that watchers receive
// reports in generation order even when applies race. The returned
// duration is the time spent inside the session (repair/re-prove +
// verification), excluding lock wait.
func (ms *session) flush() (*planarcert.SessionReport, time.Duration, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	start := time.Now()
	rep, err := ms.s.Flush()
	elapsed := time.Since(start)
	// Success absorbed the log; failure discarded it (Session rejects
	// whole batches) — either way nothing stays pending.
	ms.pending = 0
	if err != nil {
		return nil, elapsed, err
	}
	ms.broadcast(rep)
	return rep, elapsed, nil
}

// apply queues the batch and flushes it as one serialized operation, so
// two concurrent apply calls cannot interleave their updates into one
// merged batch. Like flush, the broadcast runs under ms.mu to preserve
// generation order for watchers.
func (ms *session) apply(updates []planarcert.Update) (*planarcert.SessionReport, time.Duration, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	start := time.Now()
	rep, err := ms.s.Apply(updates)
	elapsed := time.Since(start)
	ms.pending = 0
	if err != nil {
		return nil, elapsed, err
	}
	ms.broadcast(rep)
	return rep, elapsed, nil
}

// verify re-runs the full 1-round verification.
func (ms *session) verify() (*planarcert.Report, time.Duration) {
	ms.mu.Lock()
	start := time.Now()
	rep := ms.s.Verify()
	elapsed := time.Since(start)
	ms.mu.Unlock()
	return rep, elapsed
}

// certificates snapshots the current assignment (deep copy).
func (ms *session) certificates() planarcert.Certificates {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.s.Certificates()
}

// status snapshots the session for the REST surface.
func (ms *session) status() *SessionStatus {
	ms.mu.Lock()
	st := &SessionStatus{
		Name:         ms.name,
		Scheme:       ms.scheme,
		ActiveScheme: ms.s.ActiveScheme(),
		Nodes:        ms.s.N(),
		Edges:        ms.s.M(),
		Generation:   ms.s.Generation(),
		Certified:    ms.s.Certified(),
		Pending:      ms.pending,
		Last:         ms.s.Last(),
		CreatedAt:    ms.created,
	}
	ms.mu.Unlock()
	ms.watchMu.Lock()
	st.Watchers = len(ms.watchers)
	ms.watchMu.Unlock()
	return st
}

// watch registers a new watcher and returns its id and channel. The
// channel is closed when the session is deleted. ok is false if the
// session is already closed.
func (ms *session) watch() (id uint64, ch <-chan *planarcert.SessionReport, ok bool) {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	if ms.closed {
		return 0, nil, false
	}
	c := make(chan *planarcert.SessionReport, ms.watchBuf)
	ms.nextWatch++
	ms.watchers[ms.nextWatch] = c
	return ms.nextWatch, c, true
}

// watchReplay snapshots the last report and registers a watcher in one
// ms.mu critical section: broadcasts also run under ms.mu, so no flush
// can slip between the snapshot and the registration — the replayed
// report is never duplicated on (or reordered against) the channel.
func (ms *session) watchReplay() (id uint64, ch <-chan *planarcert.SessionReport, last *planarcert.SessionReport, ok bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	last = ms.s.Last()
	id, ch, ok = ms.watch()
	return id, ch, last, ok
}

// unwatch removes a watcher; safe to call after close.
func (ms *session) unwatch(id uint64) {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	delete(ms.watchers, id)
}

// broadcast fans one report out to every watcher without blocking: a
// watcher whose buffer is full loses the report (counted by the caller
// via the returned drop count) rather than stalling the flush path.
func (ms *session) broadcast(rep *planarcert.SessionReport) (delivered, dropped int) {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	for _, c := range ms.watchers {
		select {
		case c <- rep:
			delivered++
		default:
			dropped++
		}
	}
	if ms.broadcastHook != nil {
		ms.broadcastHook(delivered, dropped)
	}
	return delivered, dropped
}

// close marks the session deleted and closes every watcher channel so
// open watch streams terminate.
func (ms *session) close() {
	ms.watchMu.Lock()
	defer ms.watchMu.Unlock()
	if ms.closed {
		return
	}
	ms.closed = true
	for id, c := range ms.watchers {
		close(c)
		delete(ms.watchers, id)
	}
}
