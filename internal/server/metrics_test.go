package server

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestMetricsConcurrentHammer drives every observation path of the
// metrics registry from many goroutines while concurrent renders are in
// flight. Run under -race this pins the locking of histogram, histVec
// and the mode counters; the final exposition must account for every
// observation exactly once.
func TestMetricsConcurrentHammer(t *testing.T) {
	m := newMetrics()
	modes := []string{"repair", "reprove", "cache", "noop", "flip"}
	schemes := []string{"planarity", "outerplanarity"}
	const goroutines, perG = 8, 500

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.batchDone(modes[i%len(modes)], schemes[(g+i)%len(schemes)], "batch", i%5, i%300, float64(i%100)/1e4)
				m.budgetWait.observe(float64(i%10) / 1e6)
				m.verifySeconds.observe(float64(i%10) / 1e3)
			}
		}(g)
	}
	// Renders race the observations; they must never tear.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.write(io.Discard, liveStats{activeSessions: 1, budgetSlots: 4, budgetInUse: 1})
			}
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	m.write(&buf, liveStats{})
	text := buf.String()
	total := goroutines * perG
	for _, want := range []string{
		fmt.Sprintf("planarcertd_batch_seconds_count %d", total),
		fmt.Sprintf("planarcertd_budget_wait_seconds_count %d", total),
		fmt.Sprintf("planarcertd_verify_seconds_count %d", total),
		fmt.Sprintf("planarcertd_batch_frontier_nodes_count %d", total),
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition lost observations: missing %q", want)
		}
	}
	// The labeled family saw the same batches, spread over its series.
	var labeled uint64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "planarcertd_batch_mode_seconds_count{") {
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			labeled += v
		}
	}
	if labeled != uint64(total) {
		t.Errorf("labeled histogram counts sum to %d, want %d", labeled, total)
	}
}

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// labelsKey renders the sample's labels minus `except` as a stable
// grouping key.
func (s promSample) labelsKey(except string) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != except {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, s.labels[k])
	}
	return b.String()
}

// parseExposition is a strict parser for the subset of the Prometheus
// text format the daemon emits: HELP/TYPE headers and sample lines with
// optional {k="v",...} labels (no escapes, no timestamps).
func parseExposition(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = make(map[string]string)
	help := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, ok := strings.Cut(rest, " ")
			if !ok || text == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, typ)
			}
			if !help[name] {
				t.Fatalf("line %d: TYPE for %s before its HELP", ln+1, name)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unrecognized comment %q", ln+1, line)
		}
		nameAndLabels, valueStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		s := promSample{labels: map[string]string{}, value: value}
		s.name = nameAndLabels
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			if !strings.HasSuffix(nameAndLabels, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, line)
			}
			s.name = nameAndLabels[:i]
			for _, pair := range strings.Split(nameAndLabels[i+1:len(nameAndLabels)-1], ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
				s.labels[k] = v[1 : len(v)-1]
			}
		}
		samples = append(samples, s)
	}
	return types, samples
}

// TestMetricsExpositionWellFormed drives real traffic through a test
// server, scrapes /metrics, and lints the entire exposition: every
// sample belongs to a declared HELP/TYPE family, histogram buckets are
// cumulative and consistent with their _sum/_count, and the new
// observability series are present.
func TestMetricsExpositionWellFormed(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]interface{}{
		"name": "lint", "scheme": "planarity",
		"graph": map[string]string{"edge_list": "0 1\n1 2\n2 3\n3 4\n"},
	}, http.StatusCreated, nil)
	doJSON(t, "POST", ts.URL+"/v1/sessions/lint/updates",
		`{"op":"add_edge","a":0,"b":2}`+"\n"+`{"op":"add_edge","a":0,"b":3}`, http.StatusOK, nil)
	doJSON(t, "POST", ts.URL+"/v1/sessions/lint/updates", `{"op":"remove_edge","a":0,"b":2}`, http.StatusOK, nil)
	doJSON(t, "POST", ts.URL+"/v1/sessions/lint/verify", nil, http.StatusOK, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, string(raw))

	// Every sample maps to a declared family (histogram series map to
	// their base name).
	family := func(s promSample) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.name, suffix)
			if base != s.name && types[base] == "histogram" {
				return base
			}
		}
		return s.name
	}
	bySeries := map[string][]promSample{}
	for _, s := range samples {
		fam := family(s)
		if _, ok := types[fam]; !ok {
			t.Fatalf("sample %s has no HELP/TYPE declaration", s.name)
		}
		if types[fam] == "counter" && s.value < 0 {
			t.Fatalf("counter %s is negative: %g", s.name, s.value)
		}
		bySeries[s.name] = append(bySeries[s.name], s)
	}

	// Histogram invariants, per label set: buckets cumulative and
	// non-decreasing, the +Inf bucket equals _count, _sum present.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		counts := map[string]float64{}
		sums := map[string]bool{}
		for _, s := range bySeries[fam+"_count"] {
			counts[s.labelsKey("")] = s.value
		}
		for _, s := range bySeries[fam+"_sum"] {
			sums[s.labelsKey("")] = true
		}
		type bucket struct {
			le    float64
			count float64
		}
		groups := map[string][]bucket{}
		for _, s := range bySeries[fam+"_bucket"] {
			le := s.labels["le"]
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s: bad le %q", fam, le)
				}
			}
			key := s.labelsKey("le")
			groups[key] = append(groups[key], bucket{bound, s.value})
		}
		for key, bs := range groups {
			sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
			for i := 1; i < len(bs); i++ {
				if bs[i].count < bs[i-1].count {
					t.Fatalf("%s{%s}: bucket counts not cumulative: le=%g has %g < %g", fam, key, bs[i].le, bs[i].count, bs[i-1].count)
				}
			}
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, 1) {
				t.Fatalf("%s{%s}: no +Inf bucket", fam, key)
			}
			if want, ok := counts[key]; !ok || last.count != want {
				t.Fatalf("%s{%s}: +Inf bucket %g != _count %g (present=%v)", fam, key, last.count, want, ok)
			}
			if !sums[key] {
				t.Fatalf("%s{%s}: missing _sum", fam, key)
			}
		}
		if len(groups) == 0 && len(counts) > 0 {
			t.Fatalf("%s: _count without buckets", fam)
		}
	}

	// The observability series this layer added must be present.
	for _, s := range []string{
		"planarcertd_build_info",
		"planarcertd_budget_wait_seconds",
		"planarcertd_batch_frontier_nodes",
		"planarcertd_batch_mode_seconds",
		"planarcertd_trace_dropped_total",
	} {
		if _, ok := types[s]; !ok {
			t.Errorf("exposition is missing %s", s)
		}
	}
	// build_info carries its identity labels and the traced batches
	// landed in the labeled latency family.
	bi := bySeries["planarcertd_build_info"]
	if len(bi) != 1 || bi[0].labels["version"] == "" || bi[0].labels["revision"] == "" || bi[0].value != 1 {
		t.Errorf("planarcertd_build_info malformed: %+v", bi)
	}
	var sawMode bool
	for _, s := range bySeries["planarcertd_batch_mode_seconds_count"] {
		if s.labels["scheme"] != "" && s.labels["mode"] != "" && s.value > 0 {
			sawMode = true
		}
	}
	if !sawMode {
		t.Error("no (scheme, mode) series recorded in planarcertd_batch_mode_seconds")
	}
	reasons := map[string]bool{}
	for _, s := range bySeries["planarcertd_trace_dropped_total"] {
		reasons[s.labels["reason"]] = true
	}
	if !reasons["sampled"] || !reasons["evicted"] {
		t.Errorf("planarcertd_trace_dropped_total missing reason series: %v", reasons)
	}
}
