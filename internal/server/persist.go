package server

import (
	"fmt"
	"math"
	"sort"
	"time"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/wal"
)

// Recover opens the configured data directory and restores every
// persisted session: the newest valid snapshot is decoded, its network
// is cross-checked against the stored topology fingerprint, and the
// session is restored at the snapshot point via
// planarcert.RestoreSession — whose full verification sweep is the
// self-validation step: certificates corrupted in any way the CRCs
// missed are caught semantically and the session re-proves. The WAL
// tail past the snapshot is then replayed through the live session, so
// incremental repair absorbs it at update cost instead of forcing a
// full re-prove of the final topology.
//
// Recover must be called once, before serving traffic, when
// Config.DataDir is set; the /v1/sessions endpoints answer 503 and
// /readyz reports not-ready until it returns. A session directory that
// cannot be restored is counted and skipped — it never blocks boot —
// and its files are left in place for forensics. On a server without a
// DataDir, Recover only marks the server ready.
func (s *Server) Recover() error {
	if s.cfg.DataDir == "" {
		s.ready.Store(true)
		return nil
	}
	start := time.Now()
	root, err := wal.OpenRoot(s.cfg.DataDir, s.cfg.Fsync)
	if err != nil {
		return err
	}
	s.root = root
	dirs, err := root.SessionDirs()
	if err != nil {
		return err
	}
	for _, dir := range dirs {
		if err := s.recoverSession(dir); err != nil {
			s.met.recoveryFailed.Add(1)
		}
	}
	s.met.recoverySecsBits.Store(math.Float64bits(time.Since(start).Seconds()))
	s.ready.Store(true)
	return nil
}

// recoverSession restores one session directory and registers the
// result. Errors mean the directory held nothing restorable (or the
// registry rejected the session); the caller counts and skips it.
func (s *Server) recoverSession(dir string) error {
	st, rec, err := wal.OpenStore(dir, s.cfg.Fsync)
	if err != nil {
		return err
	}
	s.met.walReplayed.Add(uint64(rec.Stats.Records))
	s.met.walCorrupt.Add(uint64(rec.Stats.CorruptRecords + rec.SnapshotsDiscarded))
	snap := rec.Snapshot
	if snap == nil {
		// The process died before the session's first snapshot landed;
		// with nothing to anchor the WAL to, the directory is unrestorable.
		st.Close()
		return fmt.Errorf("server: no valid snapshot in %s", dir)
	}
	net, err := networkOf(snap)
	if err != nil {
		st.Close()
		return fmt.Errorf("server: snapshot graph in %s: %w", dir, err)
	}
	if hi, lo := net.Fingerprint(); hi != snap.FingerprintHi || lo != snap.FingerprintLo {
		// The body CRC passed but the graph does not hash to its key:
		// treat it like any other corrupt snapshot.
		st.Close()
		s.met.walCorrupt.Add(1)
		return fmt.Errorf("server: snapshot fingerprint mismatch in %s", dir)
	}

	popts := persistOpts{
		repairThreshold: int(snap.RepairThreshold),
		cacheSize:       int(snap.CacheSize),
		noFlip:          snap.NoFlip,
	}
	// Restore at the snapshot point: the verification sweep checks the
	// certificates against the exact topology they were written for, so
	// a clean snapshot is accepted without re-proving. The snapshot
	// format is frozen and carries no QoS class, so restored sessions
	// run in the server's default class.
	ps, err := planarcert.RestoreSession(&planarcert.SessionSnapshot{
		Scheme:       planarcert.SchemeName(snap.Scheme),
		ActiveScheme: planarcert.SchemeName(snap.ActiveScheme),
		Generation:   snap.Generation,
		Network:      net,
		Certificates: certificatesOf(snap.Certs),
	}, s.engineFor(snap.Name, s.defaultQoS), popts.options()...)
	if err != nil {
		st.Close()
		return fmt.Errorf("server: restore %q: %w", snap.Name, err)
	}

	// Replay the WAL tail through the live session, exactly as when each
	// batch was acked. The first tail batch re-proves (the structured
	// repair state is not persisted), later ones repair incrementally —
	// so a crash boot pays one prover run, while a clean-shutdown boot
	// (empty tail) restores on the verification sweep alone.
	applied, tailCorrupt := 0, false
	for _, b := range rec.Tail {
		updates, err := sessionUpdates(b.Updates)
		if err == nil {
			_, err = ps.Apply(updates)
		}
		if err != nil {
			// A logged batch was valid when acked, so this only happens if
			// corruption slipped past the CRCs; keep the prefix that
			// applied cleanly.
			s.met.walCorrupt.Add(1)
			tailCorrupt = true
			break
		}
		applied++
	}

	ms := newSession(snap.Name, planarcert.SchemeName(snap.Scheme), ps, s.cfg.WatchBuffer, s.cfg.ReplayEvents)
	ms.qos = s.defaultQoS
	s.adopt(ms)
	ms.store = st
	ms.popts = popts

	s.mu.Lock()
	if s.closing || s.sessions[snap.Name] != nil || len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		st.Close()
		return fmt.Errorf("server: cannot register restored session %q", snap.Name)
	}
	s.sessions[snap.Name] = ms
	s.mu.Unlock()

	// Fold a replayed tail into a fresh snapshot so the next boot starts
	// from it (and the WAL compacts to empty). A tail-free boot changes
	// nothing, so the existing snapshot stays authoritative as-is.
	if applied > 0 || tailCorrupt || rec.Stats.CorruptRecords > 0 {
		ms.mu.Lock()
		_ = ms.writeSnapshotLocked()
		ms.mu.Unlock()
	}

	s.met.sessionsRestored.Add(1)
	return nil
}

// networkOf materialises a snapshot's graph.
func networkOf(snap *wal.Snapshot) (*planarcert.Network, error) {
	net := planarcert.NewNetwork()
	for _, id := range snap.Nodes {
		if err := net.AddNode(planarcert.NodeID(id)); err != nil {
			return nil, err
		}
	}
	for _, e := range snap.Edges {
		if err := net.AddEdge(planarcert.NodeID(e[0]), planarcert.NodeID(e[1])); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// sessionUpdates converts one WAL batch back to session updates.
func sessionUpdates(in []wal.Update) ([]planarcert.Update, error) {
	out := make([]planarcert.Update, len(in))
	for i, u := range in {
		a, b := planarcert.NodeID(u.A), planarcert.NodeID(u.B)
		switch u.Op {
		case wal.OpAddNode:
			out[i] = planarcert.NodeAdd(a)
		case wal.OpAddEdge:
			out[i] = planarcert.EdgeAdd(a, b)
		case wal.OpRemoveEdge:
			out[i] = planarcert.EdgeRemove(a, b)
		default:
			return nil, fmt.Errorf("server: unknown logged op %d", u.Op)
		}
	}
	return out, nil
}

// walUpdates converts an absorbed batch to its WAL record form.
func walUpdates(in []planarcert.Update) []wal.Update {
	out := make([]wal.Update, len(in))
	for i, u := range in {
		var op wal.Op
		switch u.Op {
		case planarcert.OpAddEdge:
			op = wal.OpAddEdge
		case planarcert.OpRemoveEdge:
			op = wal.OpRemoveEdge
		case planarcert.OpAddNode:
			op = wal.OpAddNode
		}
		out[i] = wal.Update{Op: op, A: int64(u.A), B: int64(u.B)}
	}
	return out
}

// walNodes lists a network's node identifiers in sorted order, so
// snapshot bytes are deterministic for a given topology.
func walNodes(net *planarcert.Network) []int64 {
	ids := net.IDs()
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// walEdges lists a network's edges, each smaller-endpoint-first, in
// lexicographic order.
func walEdges(net *planarcert.Network) [][2]int64 {
	edges := net.Edges()
	out := make([][2]int64, len(edges))
	for i, e := range edges {
		out[i] = [2]int64{int64(e[0]), int64(e[1])}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// walCerts converts a certificate assignment to its snapshot form
// (EncodeSnapshot sorts by node).
func walCerts(certs planarcert.Certificates) []wal.NodeCert {
	out := make([]wal.NodeCert, 0, len(certs))
	for id, c := range certs {
		out = append(out, wal.NodeCert{ID: int64(id), Bits: int64(c.Bits), Data: c.Data})
	}
	return out
}

// certificatesOf rebuilds an assignment from its snapshot form.
func certificatesOf(in []wal.NodeCert) planarcert.Certificates {
	if len(in) == 0 {
		return nil
	}
	out := make(planarcert.Certificates, len(in))
	for _, c := range in {
		out[planarcert.NodeID(c.ID)] = planarcert.Certificate{Data: c.Data, Bits: int(c.Bits)}
	}
	return out
}
