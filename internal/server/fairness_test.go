package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// pathEdgeList returns the edge-list text of a path on n nodes.
func pathEdgeList(n int) string {
	var b strings.Builder
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "%d %d\n", i, i+1)
	}
	return b.String()
}

// p95 returns the 95th-percentile of the samples.
func p95(samples []time.Duration) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(0.95*float64(len(s)-1))]
}

// TestRepairNotStarvedByReproveStorm is the starvation regression test
// for the fair-share admission scheduler: one background-class session
// hammered by 8 concurrent clients with repair disabled (every batch is
// a full re-prove) must not starve 15 interactive repair sessions.
//
// The guarantee under test: an interactive batch waits for at most the
// re-prove IN SERVICE when it arrives (admission is not preemptive),
// never for the storm's whole backlog — weighted min-pass selection
// grants queued interactive claimants ahead of the storm on every
// release. The bound is therefore phrased against both measured
// baselines: repair p95 under storm must stay within a fixed multiple
// of (isolated repair p95 + storm batch p95). A FIFO admission queue
// fails it: each repair would queue behind ~8 storm re-proves.
func TestRepairNotStarvedByReproveStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	const (
		repairSessions = 15
		stormClients   = 8
		perSession     = 8 // measured repair batches per session
	)
	_, ts := newTestServer(t, Config{
		ExecSlots:   1, // serialize execution: contention is the point
		BudgetSlots: 1,
		TraceRing:   -1, // timing test: no tracer overhead
	})

	// The storm session re-proves a 300-node path on every batch
	// (repair_threshold -1 disables repair); the repair sessions absorb
	// single-edge toggles on 10-node paths incrementally.
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]interface{}{
		"name": "storm", "qos": "background", "repair_threshold": -1,
		"graph": map[string]string{"edge_list": pathEdgeList(300)},
	}, http.StatusCreated, nil)
	for i := 0; i < repairSessions; i++ {
		doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]interface{}{
			"name": fmt.Sprintf("repair-%d", i), "qos": "interactive",
			"graph": map[string]string{"edge_list": pathEdgeList(10)},
		}, http.StatusCreated, nil)
	}

	// toggle issues one repair-sized batch: add a chord, then remove it
	// on the next call, so the topology stays bounded and planar.
	toggle := func(session string, add bool) time.Duration {
		t.Helper()
		op := "add_edge"
		if !add {
			op = "remove_edge"
		}
		body := fmt.Sprintf(`{"op":%q,"a":0,"b":2}`, op)
		start := time.Now()
		doJSON(t, "POST", ts.URL+"/v1/sessions/"+session+"/updates", body, http.StatusOK, nil)
		return time.Since(start)
	}

	// Isolated baseline: every repair session absorbs its batches with
	// the admission queue empty.
	var isolated []time.Duration
	for i := 0; i < repairSessions; i++ {
		name := fmt.Sprintf("repair-%d", i)
		for j := 0; j < perSession; j++ {
			isolated = append(isolated, toggle(name, j%2 == 0))
		}
	}

	// Storm phase: stormClients goroutines hammer the storm session
	// while every repair session re-runs its batches concurrently.
	var (
		stormMu    sync.Mutex
		stormDur   []time.Duration
		stopStorm  = make(chan struct{})
		stormWg    sync.WaitGroup
		measureWg  sync.WaitGroup
		measMu     sync.Mutex
		underStorm []time.Duration
	)
	for c := 0; c < stormClients; c++ {
		stormWg.Add(1)
		go func(c int) {
			defer stormWg.Done()
			// Each client toggles its own chord so concurrent batches
			// never cancel each other out structurally.
			a, b := 3*c+1, 3*c+3
			add := true
			for {
				select {
				case <-stopStorm:
					return
				default:
				}
				op := "add_edge"
				if !add {
					op = "remove_edge"
				}
				add = !add
				body := fmt.Sprintf(`{"op":%q,"a":%d,"b":%d}`, op, a, b)
				start := time.Now()
				doJSON(t, "POST", ts.URL+"/v1/sessions/storm/updates", body, http.StatusOK, nil)
				d := time.Since(start)
				stormMu.Lock()
				stormDur = append(stormDur, d)
				stormMu.Unlock()
			}
		}(c)
	}
	// Let the storm saturate the admission queue before measuring.
	time.Sleep(50 * time.Millisecond)

	for i := 0; i < repairSessions; i++ {
		measureWg.Add(1)
		go func(i int) {
			defer measureWg.Done()
			name := fmt.Sprintf("repair-%d", i)
			for j := 0; j < perSession; j++ {
				d := toggle(name, j%2 == 0)
				measMu.Lock()
				underStorm = append(underStorm, d)
				measMu.Unlock()
			}
		}(i)
	}
	measureWg.Wait()
	close(stopStorm)
	stormWg.Wait()

	if t.Failed() {
		return // a request failed inside a goroutine; latencies are meaningless
	}
	isoP95, stormP95, underP95 := p95(isolated), p95(stormDur), p95(underStorm)
	t.Logf("repair p95 isolated=%v under-storm=%v; storm batch p95=%v (%d storm batches)",
		isoP95, underP95, stormP95, len(stormDur))

	// Generous but discriminating: the fair-share bound is ~1 storm
	// batch of waiting; FIFO behind 8 storm clients would be ~8.
	bound := 10*isoP95 + 4*stormP95 + 50*time.Millisecond
	if underP95 > bound {
		t.Fatalf("repair p95 under storm = %v exceeds fairness bound %v (isolated p95 %v, storm batch p95 %v)",
			underP95, bound, isoP95, stormP95)
	}
}
