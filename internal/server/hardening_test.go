package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/dynamic"
)

func TestParseBearerToken(t *testing.T) {
	cases := []struct {
		header string
		token  string
		ok     bool
	}{
		{"Bearer secret", "secret", true},
		{"bearer secret", "secret", true},
		{"BEARER secret", "secret", true},
		{"Bearer   padded  ", "padded", true},
		{"Bearer ", "", false},
		{"Bearer", "", false},
		{"", "", false},
		{"Basic dXNlcg==", "", false},
		{"Bearershort", "", false},
	}
	for _, c := range cases {
		tok, ok := parseBearerToken(c.header)
		if tok != c.token || ok != c.ok {
			t.Errorf("parseBearerToken(%q) = (%q, %v), want (%q, %v)", c.header, tok, ok, c.token, c.ok)
		}
	}
}

// TestAuthMiddleware pins the bearer-token gate: without a valid token
// every API endpoint answers 401 with a WWW-Authenticate challenge,
// while probes and /metrics stay open so infrastructure never needs
// credentials.
func TestAuthMiddleware(t *testing.T) {
	_, ts := newTestServer(t, Config{AuthTokens: []string{"alpha", "beta"}})

	get := func(path, token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := get("/v1/sessions", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: status %d, want 401", resp.StatusCode)
	} else if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 without WWW-Authenticate challenge")
	}
	if resp := get("/v1/sessions", "wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token: status %d, want 401", resp.StatusCode)
	}
	// Either configured token passes.
	for _, tok := range []string{"alpha", "beta"} {
		if resp := get("/v1/sessions", tok); resp.StatusCode != http.StatusOK {
			t.Fatalf("token %q: status %d, want 200", tok, resp.StatusCode)
		}
	}
	// Probes and metrics bypass auth.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if resp := get(path, ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s without token: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestRateLimiterBuckets drives the token-bucket limiter with a fake
// clock: burst spends, refill at the configured rate, and key
// independence are all deterministic.
func TestRateLimiterBuckets(t *testing.T) {
	now := time.Unix(0, 0)
	rl := newRateLimiter(2, 3, func() time.Time { return now })

	for i := 0; i < 3; i++ {
		if !rl.allow("a") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if rl.allow("a") {
		t.Fatal("request beyond burst allowed")
	}
	// A different principal has its own bucket.
	if !rl.allow("b") {
		t.Fatal("independent key denied")
	}
	// Half a second at 2 tokens/s refills one token — exactly one more
	// request.
	now = now.Add(500 * time.Millisecond)
	if !rl.allow("a") {
		t.Fatal("refilled token denied")
	}
	if rl.allow("a") {
		t.Fatal("second request after 1-token refill allowed")
	}
	// A long idle period caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !rl.allow("a") {
			t.Fatalf("post-idle burst request %d denied", i)
		}
	}
	if rl.allow("a") {
		t.Fatal("idle credit exceeded burst")
	}

	// A nil limiter (rate limiting off) allows everything.
	var off *rateLimiter
	if !off.allow("x") {
		t.Fatal("nil limiter denied a request")
	}
}

func TestRateLimiterPrune(t *testing.T) {
	now := time.Unix(0, 0)
	rl := newRateLimiter(100, 1, func() time.Time { return now })
	for i := 0; i < maxRateBuckets; i++ {
		rl.allow(string(rune('a'+i%26)) + string(rune('0'+i%10)) + time.Duration(i).String())
	}
	if len(rl.buckets) > maxRateBuckets {
		t.Fatalf("limiter grew to %d buckets before prune", len(rl.buckets))
	}
	// Everything has refilled after a long idle gap; the next insert
	// prunes the map instead of growing it without bound.
	now = now.Add(time.Hour)
	rl.allow("fresh")
	if len(rl.buckets) > 2 {
		t.Fatalf("prune left %d buckets, want <= 2", len(rl.buckets))
	}
}

// TestRateLimitOverHTTP checks the 429 surface: a client hammering past
// its burst gets Retry-After, and the rejection is counted.
func TestRateLimitOverHTTP(t *testing.T) {
	srv, ts := newTestServer(t, Config{RateLimit: 0.001, RateBurst: 3})

	var last *http.Response
	denied := 0
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/schemes")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			denied++
			last = resp
		}
	}
	if denied != 2 {
		t.Fatalf("denied %d of 5 requests with burst 3, want 2", denied)
	}
	if last.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := srv.met.rateLimited.Load(); got != 2 {
		t.Fatalf("rate-limited counter = %d, want 2", got)
	}
	// Probes stay reachable for a throttled client.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while throttled: %d", resp.StatusCode)
	}
}

// TestLRUEviction pins the eviction policy: at MaxSessions with
// EvictLRU on, creating one more session evicts the least-recently-used
// one instead of rejecting, and recent activity protects a session.
func TestLRUEviction(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxSessions: 2, EvictLRU: true})

	mk := func(name string) {
		t.Helper()
		doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]interface{}{
			"name": name, "graph": map[string]string{"edge_list": "0 1\n1 2\n"},
		}, http.StatusCreated, nil)
	}
	mk("old")
	time.Sleep(2 * time.Millisecond) // order the lastUsed stamps
	mk("busy")
	time.Sleep(2 * time.Millisecond)
	// Touch "old" so "busy" becomes the LRU victim.
	doJSON(t, "POST", ts.URL+"/v1/sessions/old/updates", `{"op":"add_edge","a":0,"b":2}`, http.StatusOK, nil)
	time.Sleep(2 * time.Millisecond)

	mk("new")
	if n := srv.SessionCount(); n != 2 {
		t.Fatalf("session count after eviction = %d, want 2", n)
	}
	doJSON(t, "GET", ts.URL+"/v1/sessions/busy", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/v1/sessions/old", nil, http.StatusOK, nil)
	doJSON(t, "GET", ts.URL+"/v1/sessions/new", nil, http.StatusOK, nil)
	if got := srv.met.sessionsEvicted.Load(); got != 1 {
		t.Fatalf("evicted counter = %d, want 1", got)
	}

	// Without EvictLRU the same pressure still rejects with 429.
	_, ts2 := newTestServer(t, Config{MaxSessions: 1})
	doJSON(t, "POST", ts2.URL+"/v1/sessions", map[string]interface{}{"name": "only"}, http.StatusCreated, nil)
	doJSON(t, "POST", ts2.URL+"/v1/sessions", map[string]interface{}{"name": "over"}, http.StatusTooManyRequests, nil)
}

// TestQoSClassPlumbing checks the class surface: requested classes land
// in the status, bad ones reject, and the default applies.
func TestQoSClassPlumbing(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultQoS: "background"})

	var st SessionStatus
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]interface{}{
		"name": "fast", "qos": "interactive",
	}, http.StatusCreated, &st)
	if st.QoS != "interactive" {
		t.Fatalf("qos = %q, want interactive", st.QoS)
	}
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]interface{}{
		"name": "dflt",
	}, http.StatusCreated, &st)
	if st.QoS != "background" {
		t.Fatalf("default qos = %q, want background", st.QoS)
	}
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]interface{}{
		"name": "bad", "qos": "turbo",
	}, http.StatusBadRequest, nil)
}

// TestAdaptiveThresholdHookup drives the session-level tuner cadence
// with synthetic reports: after 8 observed batches where repairs price
// above re-proves, the session's threshold halves and the adjustment is
// counted. The controller itself is covered in internal/dynamic; this
// test pins the server wiring.
func TestAdaptiveThresholdHookup(t *testing.T) {
	srv, ts := newTestServer(t, Config{AdaptiveRepair: true})
	doJSON(t, "POST", ts.URL+"/v1/sessions", map[string]interface{}{
		"name": "tuned", "repair_threshold": 1024,
		"graph": map[string]string{"edge_list": "0 1\n1 2\n"},
	}, http.StatusCreated, nil)
	ms := srv.lookup("tuned")
	if ms == nil || ms.tuner == nil {
		t.Fatal("AdaptiveRepair server did not attach a tuner")
	}

	repair := &planarcert.SessionReport{Mode: string(dynamic.ModeRepair)}
	reprove := &planarcert.SessionReport{Mode: string(dynamic.ModeReprove)}
	ms.mu.Lock()
	start := ms.s.RepairThreshold()
	// Expensive repairs (20ms) vs cheap re-proves (1ms): the controller
	// should shrink the threshold at its 8-batch cadence.
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			ms.tuneThresholdLocked(repair, 20*time.Millisecond)
		} else {
			ms.tuneThresholdLocked(reprove, time.Millisecond)
		}
	}
	got := ms.s.RepairThreshold()
	ms.mu.Unlock()
	if start != 1024 {
		t.Fatalf("starting threshold = %d, want 1024", start)
	}
	if got != 512 {
		t.Fatalf("threshold after expensive repairs = %d, want 512", got)
	}
	if srv.met.thresholdAdjusted.Load() != 1 {
		t.Fatalf("adjustment counter = %d, want 1", srv.met.thresholdAdjusted.Load())
	}

	// Status reports the tuned value.
	var st SessionStatus
	doJSON(t, "GET", ts.URL+"/v1/sessions/tuned", nil, http.StatusOK, &st)
	if st.RepairThreshold != 512 {
		t.Fatalf("status repair_threshold = %d, want 512", st.RepairThreshold)
	}

	// A server without the flag attaches no tuner.
	srv2, ts2 := newTestServer(t, Config{})
	doJSON(t, "POST", ts2.URL+"/v1/sessions", map[string]interface{}{"name": "plain"}, http.StatusCreated, nil)
	if ms2 := srv2.lookup("plain"); ms2.tuner != nil {
		t.Fatal("tuner attached without AdaptiveRepair")
	}
}

// FuzzAuthRateKey fuzzes the request-identity path the middleware runs
// on every request: bearer-token parsing and rate-limit principal
// derivation must never panic, return an empty key, or let two calls on
// one key disagree about bucket identity.
func FuzzAuthRateKey(f *testing.F) {
	f.Add("Bearer abc", "1.2.3.4:56")
	f.Add("bearer  spaced  ", "[::1]:80")
	f.Add("", "")
	f.Add("Basic xyz", "host-no-port")
	f.Add("BEARER \x00bin", "1.2.3.4")
	f.Fuzz(func(t *testing.T, header, remote string) {
		tok, ok := parseBearerToken(header)
		if ok && tok == "" {
			t.Fatal("parseBearerToken returned ok with empty token")
		}
		r := httptest.NewRequest("GET", "/v1/sessions", nil)
		r.RemoteAddr = remote
		key := clientKey(r, tok)
		if key == "" {
			t.Fatal("clientKey returned empty key")
		}
		if key != clientKey(r, tok) {
			t.Fatal("clientKey is not deterministic")
		}
		now := time.Unix(0, 0)
		rl := newRateLimiter(1, 1, func() time.Time { return now })
		if !rl.allow(key) {
			t.Fatal("fresh bucket denied its burst")
		}
		if rl.allow(key) {
			t.Fatal("bucket of burst 1 allowed a second request")
		}
	})
}
