// Package server implements planarcertd's HTTP/JSON service surface: a
// registry of named, concurrent certification sessions on top of
// planarcert.Session, plus one-shot certify/verify endpoints, streaming
// watch, health and Prometheus metrics.
//
// Verification of a proof-labeling scheme is a stateless 1-round
// operation (every node decides from its 1-hop view), which makes it a
// natural network service: the only state worth keeping server-side is
// the incremental-repair state of a Session. The server therefore
// manages many independent sessions, each serialized behind its own
// mutex (planarcert.Session is single-goroutine by contract), while all
// of them draw their parallel verification fan-out from one shared
// planarcert.WorkerBudget so that N concurrent flushes cannot
// oversubscribe the machine.
//
// Endpoints (all request/response bodies are JSON; see api.go for the
// wire types):
//
//	GET    /healthz                        liveness + session/batch counters
//	GET    /readyz                         503 until boot recovery completes
//	GET    /metrics                        Prometheus text exposition
//	GET    /v1/schemes                     available scheme names
//	POST   /v1/certify                     one-shot prove + verify
//	POST   /v1/verify                      one-shot verify of a given assignment
//	POST   /v1/sessions                    create a named session
//	GET    /v1/sessions                    list sessions
//	GET    /v1/sessions/{name}             session status
//	DELETE /v1/sessions/{name}             delete (terminates watch streams)
//	POST   /v1/sessions/{name}/updates     NDJSON update batch; ?mode=apply|queue
//	POST   /v1/sessions/{name}/flush       absorb the queued log as one batch
//	POST   /v1/sessions/{name}/verify      full 1-round re-verification
//	GET    /v1/sessions/{name}/certificates  current assignment
//	GET    /v1/sessions/{name}/graph       current topology (node/edge lists)
//	GET    /v1/sessions/{name}/watch       chunked NDJSON stream of SessionReports
//
// # Durability
//
// With Config.DataDir set, every session is backed by a write-ahead log
// and periodic certificate snapshots (internal/wal): an applied batch
// is logged before the request is acked, so an acked batch survives a
// crash (under the default fsync policy, even power loss). On boot,
// Recover restores each session from its newest valid snapshot plus the
// WAL tail, truncating at the first corrupt record, and the
// proof-labeling scheme's own full verification sweep validates the
// restored certificates — stale or damaged assignments re-prove. The
// /v1/sessions endpoints answer 503 until recovery completes; /readyz
// distinguishes a recovering (or draining) daemon from a live one.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	planarcert "github.com/planarcert/planarcert"
	"github.com/planarcert/planarcert/internal/dynamic"
	"github.com/planarcert/planarcert/internal/obs"
	"github.com/planarcert/planarcert/internal/qos"
	"github.com/planarcert/planarcert/internal/wal"
	"github.com/planarcert/planarcert/internal/wire"
)

// Config parameterises a Server.
type Config struct {
	// MaxSessions bounds the number of live sessions (0 = 1024).
	MaxSessions int
	// BudgetSlots sizes the shared verification worker budget
	// (0 = GOMAXPROCS).
	BudgetSlots int
	// Engine is the base engine configuration given to every session and
	// one-shot verification; its Budget field is overwritten with the
	// server's shared budget.
	Engine planarcert.EngineConfig
	// WatchBuffer is the per-watcher channel depth before reports are
	// dropped on a slow consumer (0 = 16).
	WatchBuffer int
	// ReplayEvents is the per-session replay ring depth: how many past
	// watch events a reconnecting binary subscription can resume from
	// before it is told to reset (0 = 64; negative disables replay).
	ReplayEvents int
	// MaxBatchUpdates bounds the number of NDJSON lines accepted in one
	// updates request (0 = 65536).
	MaxBatchUpdates int
	// DataDir enables the durability layer when non-empty: every applied
	// batch is written to a per-session WAL before it is acked, sessions
	// snapshot periodically, and Recover restores them on boot. Callers
	// setting DataDir must call Recover before serving traffic — session
	// endpoints answer 503 until it completes (see /readyz).
	DataDir string
	// Fsync is the WAL fsync policy (zero value wal.SyncAlways: an acked
	// batch survives power loss).
	Fsync wal.SyncPolicy
	// SnapshotEvery is the number of logged batches between automatic
	// per-session snapshots (0 = 32). Explicit flushes and shutdown also
	// snapshot.
	SnapshotEvery int
	// TraceRing is the number of completed batch traces retained for
	// /debug/traces (0 = 256; negative disables tracing entirely).
	TraceRing int
	// TraceSampleEvery keeps every Nth batch trace (0 or 1 = every
	// trace). Slow batches are retained regardless — see TraceSlow.
	TraceSampleEvery int
	// TraceSlow is the duration at or above which a batch trace is
	// always retained, bypassing the sampler (0 = 100ms; negative
	// disables slow retention).
	TraceSlow time.Duration

	// AuthTokens, when non-empty, requires every request (except
	// /healthz, /readyz and /metrics) to carry one of these bearer
	// tokens; comparison is constant-time across the whole list.
	AuthTokens []string
	// RateLimit is the sustained per-client request rate (requests per
	// second; the client is the bearer token, or the remote host when
	// auth is off). 0 disables rate limiting.
	RateLimit float64
	// RateBurst is the per-client burst allowance (0 = max(8, 2×RateLimit)).
	RateBurst int
	// QoSWeights overrides the fair-share weights per QoS class for both
	// the worker budget and the batch admission scheduler (nil entries
	// take the defaults: interactive 16, batch 4, background 1).
	QoSWeights map[planarcert.QoSClass]int
	// ExecSlots bounds the number of batches executing concurrently
	// across all sessions; excess batches wait in the weighted
	// fair-share admission queue (0 = max(4, 2×GOMAXPROCS)).
	ExecSlots int
	// AdmitTimeout bounds the admission-queue wait before a batch is
	// rejected with 503 (0 = 30s).
	AdmitTimeout time.Duration
	// DefaultQoS is the QoS class of sessions that do not request one,
	// and of every session restored from durable state ("" = "batch").
	DefaultQoS string
	// EvictLRU evicts the least-recently-used session instead of
	// rejecting creation with 429 when MaxSessions is reached. Durable
	// victims keep their on-disk state and are recoverable at next boot.
	EvictLRU bool
	// AdaptiveRepair lets each session tune its own repair threshold
	// from observed repair-vs-reprove latencies (see
	// dynamic.ThresholdTuner); explicit SetRepairThreshold semantics are
	// preserved — a disabled threshold is never re-enabled.
	AdaptiveRepair bool
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.BudgetSlots <= 0 {
		c.BudgetSlots = runtime.GOMAXPROCS(0)
	}
	if c.WatchBuffer <= 0 {
		c.WatchBuffer = 16
	}
	if c.ReplayEvents == 0 {
		c.ReplayEvents = 64
	}
	if c.MaxBatchUpdates <= 0 {
		c.MaxBatchUpdates = 65536
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 32
	}
	if c.ExecSlots <= 0 {
		c.ExecSlots = 2 * runtime.GOMAXPROCS(0)
		if c.ExecSlots < 4 {
			c.ExecSlots = 4
		}
	}
	if c.AdmitTimeout <= 0 {
		c.AdmitTimeout = 30 * time.Second
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(2 * c.RateLimit)
		if c.RateBurst < 8 {
			c.RateBurst = 8
		}
	}
	if c.DefaultQoS == "" {
		c.DefaultQoS = qos.Batch.String()
	}
	return c
}

// Server is the planarcertd HTTP handler. Construct with New, mount via
// Handler, and Close on shutdown to terminate open watch streams.
type Server struct {
	cfg    Config
	budget *planarcert.WorkerBudget
	met    *metrics
	start  time.Time
	mux    *http.ServeMux
	// tracer records one span tree per flushed batch; nil when tracing
	// is disabled (Config.TraceRing < 0) — every span operation is
	// nil-safe, so the instrumented paths need no conditionals.
	tracer *obs.Tracer

	// exec is the batch-admission scheduler: a second fair-share
	// scheduler gating how many batches EXECUTE concurrently (the worker
	// budget only shares out extra verification workers within an
	// executing batch). Every session holds a claimant on it in its QoS
	// class, so a reprove storm queues behind its own weight instead of
	// monopolizing the CPU ahead of interactive repairs.
	exec *qos.Scheduler
	// execAnon admits the one-shot certify/verify endpoints, which have
	// no session to carry a class; they ride as interactive.
	execAnon *qos.Claimant
	// limiter is the per-client token-bucket rate limiter; nil when
	// Config.RateLimit is 0.
	limiter *rateLimiter
	// defaultQoS is Config.DefaultQoS parsed once at construction.
	defaultQoS qos.Class

	// root is the durability layer's data directory; nil until Recover
	// opens it (and forever nil when Config.DataDir is empty).
	root *wal.Root
	// ready flips once boot replay has completed (immediately for a
	// non-durable server). Session endpoints 503 while it is false.
	ready atomic.Bool
	// draining rejects new batches and session creations while shutdown
	// flushes and snapshots the live sessions.
	draining atomic.Bool

	mu       sync.RWMutex
	sessions map[string]*session
	closing  bool
}

// New returns a ready-to-mount server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		budget:   planarcert.NewWorkerBudgetWeights(cfg.BudgetSlots, cfg.QoSWeights),
		met:      newMetrics(),
		start:    time.Now(),
		mux:      http.NewServeMux(),
		sessions: make(map[string]*session),
		exec:     qos.NewScheduler(cfg.ExecSlots, cfg.QoSWeights),
	}
	s.execAnon = s.exec.Claimant("one-shot", qos.Interactive)
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst, time.Now)
	}
	if c, err := qos.ParseClass(cfg.DefaultQoS); err == nil {
		s.defaultQoS = c
	} else {
		s.defaultQoS = qos.Batch
	}
	if cfg.TraceRing >= 0 {
		s.tracer = obs.New(obs.Config{
			Ring:          cfg.TraceRing,
			SampleEvery:   cfg.TraceSampleEvery,
			SlowThreshold: cfg.TraceSlow,
		})
	}
	s.cfg.Engine.Budget = s.budget
	// A non-durable server has nothing to recover and is born ready;
	// a durable one flips ready inside Recover.
	if cfg.DataDir == "" {
		s.ready.Store(true)
	}

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	s.mux.HandleFunc("POST /v1/certify", s.handleCertify)
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /v1/sessions/{name}", s.handleSessionStatus)
	s.mux.HandleFunc("DELETE /v1/sessions/{name}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /v1/sessions/{name}/updates", s.handleUpdates)
	s.mux.HandleFunc("POST /v1/sessions/{name}/flush", s.handleFlush)
	s.mux.HandleFunc("POST /v1/sessions/{name}/verify", s.handleSessionVerify)
	s.mux.HandleFunc("GET /v1/sessions/{name}/certificates", s.handleCertificates)
	s.mux.HandleFunc("GET /v1/sessions/{name}/graph", s.handleSessionGraph)
	s.mux.HandleFunc("GET /v1/sessions/{name}/watch", s.handleWatch)
	s.mux.HandleFunc("POST /v1/sessions/{name}/watch/ack", s.handleWatchAck)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/traces/{session}", s.handleTraces)
	return s
}

// adopt wires a session into the server's metrics, snapshot policy and
// admission scheduler. The caller must have set ms.qos first: the
// admission claimant is minted here in that class.
func (s *Server) adopt(ms *session) {
	ms.met = s.met
	ms.snapEvery = s.cfg.SnapshotEvery
	ms.execClaim = s.exec.Claimant(ms.name, ms.qos)
	if s.cfg.AdaptiveRepair {
		ms.tuner = &dynamic.ThresholdTuner{}
	}
	ms.broadcastHook = func(delivered, dropped int) {
		s.met.watchEvents.Add(uint64(delivered))
		s.met.watchDropped.Add(uint64(dropped))
	}
}

// Handler returns the HTTP handler with request accounting, bearer
// auth and per-client rate limiting (probes and /metrics are exempt
// from both — see exemptPath). Session endpoints are gated behind boot
// recovery: until Recover completes they answer 503, so a load
// balancer probing /readyz and a client racing the boot see the same
// story.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.httpRequests.Add(1)
		if !exemptPath(r.URL.Path) {
			token, ok := s.authorize(r)
			if !ok {
				s.met.authFailures.Add(1)
				w.Header().Set("WWW-Authenticate", `Bearer realm="planarcertd"`)
				writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
			if !s.limiter.allow(clientKey(r, token)) {
				s.met.rateLimited.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "client rate limit exceeded")
				return
			}
		}
		if !s.ready.Load() && strings.HasPrefix(r.URL.Path, "/v1/sessions") {
			writeError(w, http.StatusServiceUnavailable, "recovering: session replay in progress")
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Close drains and deletes every session, terminating their watch
// streams, and refuses further session creation (503), so an HTTP
// Shutdown started right after cannot be wedged by a freshly created
// watch stream. On a durable server the drain is ordered: new batches
// are rejected first (draining), then each session absorbs its queued
// updates as one final logged batch, writes a final snapshot, and
// closes its store — in-flight applies finish first because shutdown
// takes the same per-session mutex. It is the daemon's shutdown hook.
func (s *Server) Close() {
	s.draining.Store(true)
	s.mu.Lock()
	s.closing = true
	all := make([]*session, 0, len(s.sessions))
	for name, ms := range s.sessions {
		all = append(all, ms)
		delete(s.sessions, name)
	}
	s.mu.Unlock()
	for _, ms := range all {
		ms.shutdown()
		s.met.sessionsDeleted.Add(1)
	}
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

func (s *Server) lookup(name string) *session {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sessions[name]
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	writeJSON(w, code, APIError{Error: fmt.Sprintf(format, args...)})
}

func readJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func schemeOrDefault(name planarcert.SchemeName) planarcert.SchemeName {
	if name == "" {
		return planarcert.SchemePlanarity
	}
	return name
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		Sessions:      s.SessionCount(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Batches:       s.met.modeCounts(),
	})
}

// handleReadyz is the readiness probe, distinct from the /healthz
// liveness probe: a recovering or draining daemon is alive but must not
// receive traffic yet (or anymore).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rd := Ready{
		Ready:            true,
		Status:           "ok",
		Sessions:         s.SessionCount(),
		SessionsRestored: s.met.sessionsRestored.Load(),
		RecoverySeconds:  s.met.recoverySeconds(),
	}
	switch {
	case !s.ready.Load():
		rd.Ready, rd.Status = false, "recovering"
	case s.draining.Load():
		rd.Ready, rd.Status = false, "draining"
	}
	code := http.StatusOK
	if !rd.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rd)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	active := len(s.sessions)
	watchers := 0
	for _, ms := range s.sessions {
		ms.watchMu.Lock()
		watchers += len(ms.watchers)
		ms.watchMu.Unlock()
	}
	s.mu.RUnlock()
	sampled, evicted := s.tracer.Dropped()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	live := liveStats{
		activeSessions:   active,
		watchers:         watchers,
		budgetSlots:      s.budget.Slots(),
		budgetInUse:      s.budget.InUse(),
		budgetQueueDepth: s.budget.QueueDepth(),
		execSlots:        s.exec.Slots(),
		execInUse:        s.exec.InUse(),
		execQueueDepth:   s.exec.QueueDepth(),
		budgetGrants:     make(map[string]uint64),
		execGrants:       make(map[string]uint64),
		traceDropSampled: sampled,
		traceDropEvicted: evicted,
	}
	for class, n := range s.budget.GrantsByClass() {
		live.budgetGrants[class.String()] = n
	}
	for class, n := range s.exec.Grants() {
		live.execGrants[class.String()] = n
	}
	s.met.write(w, live)
}

// TracesPage is the /debug/traces response: the retained trace records
// (newest first) plus the tracer's drop counters, so a consumer can
// tell how complete the window is.
type TracesPage struct {
	// Enabled is false when the server was built with tracing disabled.
	Enabled bool `json:"enabled"`
	// Session is the filter applied ("" = all sessions).
	Session string `json:"session,omitempty"`
	// DroppedSampled counts traces dropped by the sampler.
	DroppedSampled uint64 `json:"dropped_sampled"`
	// DroppedEvicted counts traces evicted from the ring by newer ones.
	DroppedEvicted uint64 `json:"dropped_evicted"`
	// Traces are the retained records, newest first.
	Traces []*obs.TraceRecord `json:"traces"`
}

// handleTraces serves the trace ring buffer as JSON; the {session} form
// filters to one session's traces. ?limit=N caps the records returned.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	page := TracesPage{Enabled: s.tracer != nil, Session: r.PathValue("session")}
	limit := 0
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", q)
			return
		}
		limit = n
	}
	page.DroppedSampled, page.DroppedEvicted = s.tracer.Dropped()
	page.Traces = s.tracer.Records(page.Session, limit)
	if page.Traces == nil {
		page.Traces = []*obs.TraceRecord{}
	}
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, planarcert.Schemes())
}

func (s *Server) handleCertify(w http.ResponseWriter, r *http.Request) {
	var req CertifyRequest
	if !readJSON(w, r, &req) {
		return
	}
	net, err := req.Graph.Network()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	scheme := schemeOrDefault(req.Scheme)
	certs, err := planarcert.Certify(net, scheme)
	if err != nil {
		if errors.Is(err, planarcert.ErrUnknownScheme) {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			writeError(w, http.StatusUnprocessableEntity, "prover: %v", err)
		}
		return
	}
	if !s.acquireExec(s.execAnon, nil, r.Context().Done()) {
		writeError(w, http.StatusServiceUnavailable, "admission queue timed out")
		return
	}
	start := time.Now()
	rep, err := planarcert.VerifyWith(net, scheme, certs, s.cfg.Engine)
	s.execAnon.Release()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "verify: %v", err)
		return
	}
	s.met.verifySeconds.observe(time.Since(start).Seconds())
	resp := CertifyResponse{Report: rep}
	if req.IncludeCertificates {
		resp.Certificates = wireCertificates(certs)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !readJSON(w, r, &req) {
		return
	}
	net, err := req.Graph.Network()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	if !s.acquireExec(s.execAnon, nil, r.Context().Done()) {
		writeError(w, http.StatusServiceUnavailable, "admission queue timed out")
		return
	}
	start := time.Now()
	rep, err := planarcert.VerifyWith(net, schemeOrDefault(req.Scheme), unwireCertificates(req.Certificates), s.cfg.Engine)
	s.execAnon.Release()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.verifySeconds.observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req CreateSessionRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "session name is required")
		return
	}
	// Cheap admission check before the (potentially expensive) initial
	// certification, so duplicate names, a full registry, or a closing
	// server reject in O(1) instead of proving first and failing after.
	// The authoritative re-check happens at insertion below.
	if !s.admit(w, req.Name) {
		return
	}
	class := s.defaultQoS
	if req.QoS != "" {
		var err error
		if class, err = qos.ParseClass(req.QoS); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	net, err := req.Graph.Network()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	var opts []planarcert.SessionOption
	if req.RepairThreshold != 0 {
		opts = append(opts, planarcert.WithRepairThreshold(req.RepairThreshold))
	}
	if req.CacheSize != 0 {
		opts = append(opts, planarcert.WithCacheSize(req.CacheSize))
	}
	if req.NoFlip {
		opts = append(opts, planarcert.WithoutFlip())
	}
	scheme := schemeOrDefault(req.Scheme)
	ps, err := planarcert.NewSession(net, scheme, s.engineFor(req.Name, class), opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ms := newSession(req.Name, scheme, ps, s.cfg.WatchBuffer, s.cfg.ReplayEvents)
	ms.qos = class
	s.adopt(ms)
	ms.popts = persistOpts{
		repairThreshold: req.RepairThreshold,
		cacheSize:       req.CacheSize,
		noFlip:          req.NoFlip,
	}

	// On a durable server the session's store and initial snapshot are
	// set up after registration but under ms.mu, so a concurrent apply
	// that finds the session in the registry blocks until the store
	// exists — no batch can slip by unlogged.
	durable := s.root != nil
	if durable {
		ms.mu.Lock()
	}
	s.mu.Lock()
	if !s.admitLocked(w, req.Name) {
		s.mu.Unlock()
		if durable {
			ms.mu.Unlock()
		}
		return
	}
	var victims []*session
	if s.cfg.EvictLRU {
		victims = s.evictForSpaceLocked()
	}
	s.sessions[req.Name] = ms
	s.mu.Unlock()
	s.finishEviction(victims)
	if durable {
		st, err := s.root.CreateSession(req.Name)
		if err == nil {
			ms.store = st
			err = ms.writeSnapshotLocked()
		}
		if err != nil {
			ms.store = nil
			ms.mu.Unlock()
			s.mu.Lock()
			delete(s.sessions, req.Name)
			s.mu.Unlock()
			if st != nil {
				st.Close()
			}
			ms.close()
			writeError(w, http.StatusInternalServerError, "persist session: %v", err)
			return
		}
		ms.mu.Unlock()
	}
	s.met.sessionsCreated.Add(1)
	writeJSON(w, http.StatusCreated, ms.status())
}

// admit checks the session-creation preconditions under a read lock and
// writes the rejection response if any fails.
func (s *Server) admit(w http.ResponseWriter, name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.admitLocked(w, name)
}

// admitLocked is admit's body; the caller holds s.mu (read or write).
func (s *Server) admitLocked(w http.ResponseWriter, name string) bool {
	switch {
	case s.closing, s.draining.Load():
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return false
	case s.sessions[name] != nil:
		writeError(w, http.StatusConflict, "session %q already exists", name)
		return false
	case len(s.sessions) >= s.cfg.MaxSessions && !s.cfg.EvictLRU:
		writeError(w, http.StatusTooManyRequests, "session limit reached (%d)", s.cfg.MaxSessions)
		return false
	}
	return true
}

// engineFor derives the per-session engine configuration: the shared
// base plus a named worker-budget claimant in the session's QoS class,
// so contended verification workers are granted by weighted fair share
// instead of FIFO arrival order.
func (s *Server) engineFor(name string, class qos.Class) planarcert.EngineConfig {
	eng := s.cfg.Engine
	eng.Claimant = s.budget.Claimant(name, class)
	return eng
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	all := make([]*session, 0, len(s.sessions))
	for _, ms := range s.sessions {
		all = append(all, ms)
	}
	s.mu.RUnlock()
	out := make([]*SessionStatus, 0, len(all))
	for _, ms := range all {
		out = append(out, ms.status())
	}
	sortStatuses(out)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	ms := s.lookup(r.PathValue("name"))
	if ms == nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, ms.status())
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	ms := s.sessions[name]
	delete(s.sessions, name)
	s.mu.Unlock()
	if ms == nil {
		writeError(w, http.StatusNotFound, "no session %q", name)
		return
	}
	ms.close()
	ms.closeStore()
	if s.root != nil {
		if err := s.root.RemoveSession(name); err != nil {
			writeError(w, http.StatusInternalServerError, "remove durable state: %v", err)
			return
		}
	}
	s.met.sessionsDeleted.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// handleUpdates reads an update batch and absorbs it. The body format
// is content-negotiated: NDJSON UpdateLine records (Content-Type empty,
// application/x-ndjson or application/json) or a single binary
// update-batch frame (planarcert.WireContentType; see internal/wire).
// Any other Content-Type is rejected with 415 and an Accept-Post hint.
// mode=apply (the default) queues and flushes the batch as one batch;
// mode=queue only appends to the session log for a later flush (a
// binary frame carries its own mode and ignores the query parameter).
//
// The session has ONE update log (planarcert.Session semantics): apply
// and flush absorb the entire pending log, including updates other
// clients queued earlier — the returned Report.Updates counts them all.
// A structurally invalid batch is rejected and the WHOLE log discarded,
// again including previously queued updates; clients mixing queue-mode
// writers must coordinate or accept that coupling.
func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ms := s.lookup(r.PathValue("name"))
	if ms == nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("name"))
		return
	}
	switch contentTypeBase(r.Header.Get("Content-Type")) {
	case "", "application/x-ndjson", "application/json":
		// NDJSON below.
	case wire.ContentType:
		s.handleUpdatesBinary(w, r, ms)
		return
	default:
		s.rejectMediaType(w, r)
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "apply"
	}
	if mode != "apply" && mode != "queue" {
		writeError(w, http.StatusBadRequest, "mode must be apply or queue, got %q", mode)
		return
	}

	var updates []planarcert.Update
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, 64<<20))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if len(updates) >= s.cfg.MaxBatchUpdates {
			writeError(w, http.StatusRequestEntityTooLarge, "batch exceeds %d updates", s.cfg.MaxBatchUpdates)
			return
		}
		var ul UpdateLine
		if err := json.Unmarshal(raw, &ul); err != nil {
			writeError(w, http.StatusBadRequest, "line %d: %v", line, err)
			return
		}
		u, err := ul.Update()
		if err != nil {
			writeError(w, http.StatusBadRequest, "line %d: %v", line, err)
			return
		}
		updates = append(updates, u)
	}
	if err := sc.Err(); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}

	ms.touch()
	if mode == "queue" {
		pending := ms.queue(updates)
		writeJSON(w, http.StatusAccepted, UpdatesResponse{Queued: len(updates), Pending: pending})
		return
	}

	sp := s.tracer.Start(ms.name, obs.SpanBatch)
	if !s.acquireExec(ms.execClaim, sp, r.Context().Done()) {
		sp.SetStr("error", "admission timeout")
		sp.End()
		writeError(w, http.StatusServiceUnavailable, "admission queue timed out (class %q)", ms.qos)
		return
	}
	rep, elapsed, err := ms.apply(updates, sp)
	ms.execClaim.Release()
	if err != nil {
		sp.SetStr("error", err.Error())
		sp.End()
		s.batchError(w, err)
		return
	}
	sp.End()
	s.recordBatch(sp, ms, rep, elapsed)
	writeJSON(w, http.StatusOK, UpdatesResponse{Queued: len(updates), Report: rep, ElapsedSeconds: elapsed.Seconds()})
}

// recordBatch feeds one flushed batch into the metrics. With tracing
// on, the batch's budget-wait phase (summed over its sweeps) lands in
// the budget-wait histogram — measured waiting, not inference.
func (s *Server) recordBatch(sp *obs.Span, ms *session, rep *planarcert.SessionReport, elapsed time.Duration) {
	s.met.batchDone(rep.Mode, string(rep.ActiveScheme), ms.qos.String(), rep.Updates, rep.Verified, elapsed.Seconds())
	if sp != nil {
		s.met.budgetWait.observe(obs.Phases(sp)[obs.PhaseBudgetWait].Seconds())
	}
}

// batchError maps a failed apply/flush to its status: a batch the
// session rejected is the client's fault (422), a batch that could not
// be made durable is the server's (500) and was NOT acked — though it
// was applied in memory, so the client must re-sync before retrying.
func (s *Server) batchError(w http.ResponseWriter, err error) {
	var pe *persistError
	if errors.As(err, &pe) {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.met.batchesRejected.Add(1)
	writeError(w, http.StatusUnprocessableEntity, "batch rejected: %v", err)
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ms := s.lookup(r.PathValue("name"))
	if ms == nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("name"))
		return
	}
	ms.touch()
	sp := s.tracer.Start(ms.name, obs.SpanBatch)
	if !s.acquireExec(ms.execClaim, sp, r.Context().Done()) {
		sp.SetStr("error", "admission timeout")
		sp.End()
		writeError(w, http.StatusServiceUnavailable, "admission queue timed out (class %q)", ms.qos)
		return
	}
	rep, elapsed, err := ms.flush(sp)
	ms.execClaim.Release()
	if err != nil {
		sp.SetStr("error", err.Error())
		sp.End()
		s.batchError(w, err)
		return
	}
	sp.End()
	s.recordBatch(sp, ms, rep, elapsed)
	writeJSON(w, http.StatusOK, UpdatesResponse{Report: rep, ElapsedSeconds: elapsed.Seconds()})
}

func (s *Server) handleSessionVerify(w http.ResponseWriter, r *http.Request) {
	ms := s.lookup(r.PathValue("name"))
	if ms == nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("name"))
		return
	}
	ms.touch()
	if !s.acquireExec(ms.execClaim, nil, r.Context().Done()) {
		writeError(w, http.StatusServiceUnavailable, "admission queue timed out (class %q)", ms.qos)
		return
	}
	rep, elapsed := ms.verify()
	ms.execClaim.Release()
	s.met.verifySeconds.observe(elapsed.Seconds())
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleCertificates(w http.ResponseWriter, r *http.Request) {
	ms := s.lookup(r.PathValue("name"))
	if ms == nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, wireCertificates(ms.certificates()))
}

// handleSessionGraph exports the session's live topology. The crashloop
// harness uses it to compare recovered state against a client-side
// mirror edge for edge.
func (s *Server) handleSessionGraph(w http.ResponseWriter, r *http.Request) {
	ms := s.lookup(r.PathValue("name"))
	if ms == nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("name"))
		return
	}
	net := ms.network()
	hi, lo := net.Fingerprint()
	writeJSON(w, http.StatusOK, GraphExport{
		Nodes:       net.IDs(),
		Edges:       net.Edges(),
		Fingerprint: fmt.Sprintf("%016x%016x", hi, lo),
	})
}

// handleWatch streams one SessionReport per flushed batch until the
// client disconnects or the session is deleted. The default stream is
// chunked NDJSON; ?format=binary switches to the frame protocol with a
// version-acknowledged subscription (hello frame, then one event frame
// per batch; resume with ?sub=, acknowledge on .../watch/ack). With
// ?replay=last the current last report is emitted first, so a watcher
// always has a starting state. Each report is marshaled once per format
// and the bytes fanned out to every watcher.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	ms := s.lookup(r.PathValue("name"))
	if ms == nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("name"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by transport")
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json", "ndjson":
		// NDJSON below.
	case "binary":
		s.handleWatchBinary(w, r, ms, flusher)
		return
	default:
		writeError(w, http.StatusBadRequest, "format must be json or binary, got %q", r.URL.Query().Get("format"))
		return
	}
	var (
		id   uint64
		ch   <-chan *watchEvent
		last *planarcert.SessionReport
		ok2  bool
	)
	if r.URL.Query().Get("replay") == "last" {
		id, ch, last, ok2 = ms.watchReplay()
	} else {
		id, ch, ok2 = ms.watch()
	}
	if !ok2 {
		writeError(w, http.StatusGone, "session %q is closed", ms.name)
		return
	}
	defer ms.unwatch(id)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush() // ship the headers so clients unblock before the first report

	if last != nil {
		if _, err := w.Write(encodeEventJSON(last)); err != nil {
			return
		}
		flusher.Flush()
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				return // session deleted
			}
			// ev.json is always set here: broadcast encodes it under
			// watchMu whenever a JSON watcher is registered, and this
			// watcher registered before the event was fanned out.
			if _, err := w.Write(ev.json); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// sortStatuses orders a listing by name for a deterministic API.
func sortStatuses(st []*SessionStatus) {
	sort.Slice(st, func(i, j int) bool { return st[i].Name < st[j].Name })
}
