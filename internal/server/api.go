package server

import (
	"fmt"
	"strings"
	"time"

	planarcert "github.com/planarcert/planarcert"
)

// GraphSpec describes a network in a request body. Either the
// structured form (Nodes + Edges; edge endpoints are added implicitly)
// or the text form (EdgeList, the planarcert.ParseEdgeList format) may
// be used; the structured form wins when both are present and non-empty.
type GraphSpec struct {
	// Nodes lists node identifiers, including isolated ones.
	Nodes []planarcert.NodeID `json:"nodes,omitempty"`
	// Edges lists undirected edges as identifier pairs.
	Edges [][2]planarcert.NodeID `json:"edges,omitempty"`
	// EdgeList is the text edge-list form ("u v" per line).
	EdgeList string `json:"edge_list,omitempty"`
}

// Network materialises the spec.
func (g GraphSpec) Network() (*planarcert.Network, error) {
	if len(g.Nodes) == 0 && len(g.Edges) == 0 {
		if g.EdgeList != "" {
			return planarcert.ParseEdgeList(strings.NewReader(g.EdgeList))
		}
		return planarcert.NewNetwork(), nil
	}
	n := planarcert.NewNetwork()
	add := func(id planarcert.NodeID) error {
		if !n.HasNode(id) {
			return n.AddNode(id)
		}
		return nil
	}
	for _, id := range g.Nodes {
		if err := add(id); err != nil {
			return nil, err
		}
	}
	for _, e := range g.Edges {
		if err := add(e[0]); err != nil {
			return nil, err
		}
		if err := add(e[1]); err != nil {
			return nil, err
		}
		if err := n.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// CreateSessionRequest is the body of POST /v1/sessions.
type CreateSessionRequest struct {
	// Name is the session identifier used in all per-session URLs.
	Name string `json:"name"`
	// Scheme selects the proof-labeling scheme (default "planarity").
	Scheme planarcert.SchemeName `json:"scheme,omitempty"`
	// Graph is the initial network (default empty).
	Graph GraphSpec `json:"graph"`
	// RepairThreshold tunes planarcert.WithRepairThreshold (0 = default).
	RepairThreshold int `json:"repair_threshold,omitempty"`
	// CacheSize tunes planarcert.WithCacheSize (0 = default).
	CacheSize int `json:"cache_size,omitempty"`
	// NoFlip applies planarcert.WithoutFlip.
	NoFlip bool `json:"no_flip,omitempty"`
	// QoS is the session's quality-of-service class for fair-share
	// scheduling: "interactive", "batch" or "background" (default: the
	// server's Config.DefaultQoS). A reprove storm in one class cannot
	// starve batches in another — contended execution and worker slots
	// are granted by class weight.
	QoS string `json:"qos,omitempty"`
}

// SessionStatus is the REST representation of one live session.
type SessionStatus struct {
	// Name is the session identifier.
	Name string `json:"name"`
	// Scheme is the scheme requested at creation.
	Scheme planarcert.SchemeName `json:"scheme"`
	// ActiveScheme is the scheme currently certifying the network (it
	// differs from Scheme after a planarity flip).
	ActiveScheme planarcert.SchemeName `json:"active_scheme"`
	// Nodes and Edges size the live network.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Generation counts absorbed batches.
	Generation uint64 `json:"generation"`
	// Certified reports whether the current assignment was accepted.
	Certified bool `json:"certified"`
	// Pending counts queued-but-unflushed updates.
	Pending int `json:"pending"`
	// Watchers counts open watch streams.
	Watchers int `json:"watchers"`
	// Last is the report of the most recent batch.
	Last *planarcert.SessionReport `json:"last,omitempty"`
	// CreatedAt is the session creation time.
	CreatedAt time.Time `json:"created_at"`
	// QoS is the session's quality-of-service class.
	QoS string `json:"qos,omitempty"`
	// RepairThreshold is the session's current repair threshold; with
	// adaptive tuning on it drifts from the requested value.
	RepairThreshold int `json:"repair_threshold,omitempty"`
	// Durable reports whether the session is backed by a WAL + snapshots.
	Durable bool `json:"durable,omitempty"`
	// WalSeq is the highest durable WAL sequence number (durable only).
	WalSeq uint64 `json:"wal_seq,omitempty"`
}

// UpdateLine is one NDJSON line of a POST .../updates body.
type UpdateLine struct {
	// Op is "add_edge", "remove_edge" or "add_node" (aliases: "+", "-",
	// "n").
	Op string `json:"op"`
	// A and B are the endpoints; add_node uses only A.
	A planarcert.NodeID `json:"a"`
	B planarcert.NodeID `json:"b"`
}

// Update converts the wire line to a session update.
func (l UpdateLine) Update() (planarcert.Update, error) {
	switch l.Op {
	case "add_edge", "+":
		return planarcert.EdgeAdd(l.A, l.B), nil
	case "remove_edge", "-":
		return planarcert.EdgeRemove(l.A, l.B), nil
	case "add_node", "n":
		return planarcert.NodeAdd(l.A), nil
	default:
		return planarcert.Update{}, fmt.Errorf("unknown op %q (want add_edge, remove_edge or add_node)", l.Op)
	}
}

// UpdatesResponse is the body returned by POST .../updates and .../flush.
type UpdatesResponse struct {
	// Queued counts the updates accepted by this request.
	Queued int `json:"queued"`
	// Pending counts updates still queued after this request (non-zero
	// only in queue mode).
	Pending int `json:"pending"`
	// Report is the absorption report (apply/flush modes only). The
	// session keeps one shared update log, so Report.Updates may exceed
	// Queued: an apply or flush absorbs everything pending, including
	// updates queued earlier by other clients.
	Report *planarcert.SessionReport `json:"report,omitempty"`
	// ElapsedSeconds is the server-side batch execution time
	// (repair/re-prove + verification + persistence), excluding the
	// admission-queue and session-lock waits — the round trip minus
	// this is time spent queueing.
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// WireCertificate is the JSON form of one node's certificate.
type WireCertificate struct {
	// Data is the certificate bitstream, base64-encoded by encoding/json.
	Data []byte `json:"data"`
	// Bits is the exact bit length (Data carries padding to a byte).
	Bits int `json:"bits"`
}

// CertifyRequest is the body of the one-shot POST /v1/certify.
type CertifyRequest struct {
	// Scheme selects the proof-labeling scheme (default "planarity").
	Scheme planarcert.SchemeName `json:"scheme,omitempty"`
	// Graph is the network to certify.
	Graph GraphSpec `json:"graph"`
	// IncludeCertificates returns the full assignment in the response.
	IncludeCertificates bool `json:"include_certificates,omitempty"`
}

// CertifyResponse is the body returned by POST /v1/certify.
type CertifyResponse struct {
	// Report is the verification report of the honest assignment.
	Report *planarcert.Report `json:"report"`
	// Certificates is the assignment (only when requested).
	Certificates map[planarcert.NodeID]WireCertificate `json:"certificates,omitempty"`
}

// VerifyRequest is the body of the one-shot POST /v1/verify: a network,
// a scheme, and an arbitrary (possibly adversarial) assignment.
type VerifyRequest struct {
	// Scheme selects the proof-labeling scheme (default "planarity").
	Scheme planarcert.SchemeName `json:"scheme,omitempty"`
	// Graph is the network to verify against.
	Graph GraphSpec `json:"graph"`
	// Certificates is the assignment to check.
	Certificates map[planarcert.NodeID]WireCertificate `json:"certificates"`
}

// Health is the body of GET /healthz.
type Health struct {
	// Status is "ok" while the daemon accepts requests.
	Status string `json:"status"`
	// Sessions counts live sessions.
	Sessions int `json:"sessions"`
	// UptimeSeconds is the time since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Batches counts flushed batches by absorption mode; the
	// repair-vs-reprove ratio falls out of it.
	Batches map[string]uint64 `json:"batches,omitempty"`
}

// Ready is the body of GET /readyz: the readiness probe, which (unlike
// /healthz liveness) answers 503 while boot recovery replays session
// state or a graceful shutdown drains it.
type Ready struct {
	// Ready is true once recovery completed and the server is not
	// draining.
	Ready bool `json:"ready"`
	// Status is "ok", "recovering" or "draining".
	Status string `json:"status"`
	// Sessions counts live sessions.
	Sessions int `json:"sessions"`
	// SessionsRestored counts sessions restored from durable state.
	SessionsRestored uint64 `json:"sessions_restored"`
	// RecoverySeconds is the boot replay duration (0 until it completes).
	RecoverySeconds float64 `json:"recovery_seconds"`
}

// GraphExport is the body of GET /v1/sessions/{name}/graph: the live
// topology, exact enough for a client to diff against its own mirror.
type GraphExport struct {
	// Nodes lists every node identifier.
	Nodes []planarcert.NodeID `json:"nodes"`
	// Edges lists every undirected edge, smaller identifier first.
	Edges [][2]planarcert.NodeID `json:"edges"`
	// Fingerprint is the 128-bit topology fingerprint as 32 hex digits.
	Fingerprint string `json:"fingerprint"`
}

// APIError is the JSON error envelope of every non-2xx response.
type APIError struct {
	// Error is the human-readable message.
	Error string `json:"error"`
}

func wireCertificates(certs planarcert.Certificates) map[planarcert.NodeID]WireCertificate {
	out := make(map[planarcert.NodeID]WireCertificate, len(certs))
	for id, c := range certs {
		out[id] = WireCertificate{Data: c.Data, Bits: c.Bits}
	}
	return out
}

func unwireCertificates(in map[planarcert.NodeID]WireCertificate) planarcert.Certificates {
	out := make(planarcert.Certificates, len(in))
	for id, c := range in {
		out[id] = planarcert.Certificate{Data: c.Data, Bits: c.Bits}
	}
	return out
}
