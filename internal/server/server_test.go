package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	planarcert "github.com/planarcert/planarcert"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return srv, ts
}

func doJSON(t *testing.T, method, url string, body interface{}, wantCode int, out interface{}) {
	t.Helper()
	var rd io.Reader
	switch b := body.(type) {
	case nil:
	case string:
		rd = strings.NewReader(b)
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s: status %d, want %d; body %s", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad response %s: %v", method, url, raw, err)
		}
	}
}

// TestEndToEnd drives the full session lifecycle over real HTTP:
// create -> stream update batches -> observe the watch stream -> fetch
// certificates -> verify -> delete, plus the stateless endpoints.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Health and schemes.
	var h Health
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &h)
	if h.Status != "ok" || h.Sessions != 0 {
		t.Fatalf("healthz = %+v", h)
	}
	var schemes []planarcert.SchemeName
	doJSON(t, "GET", ts.URL+"/v1/schemes", nil, http.StatusOK, &schemes)
	if len(schemes) == 0 {
		t.Fatal("no schemes listed")
	}

	// One-shot certify of K4 (planar) with certificates returned.
	var certResp CertifyResponse
	doJSON(t, "POST", ts.URL+"/v1/certify", CertifyRequest{
		Scheme:              planarcert.SchemePlanarity,
		Graph:               GraphSpec{Edges: [][2]planarcert.NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
		IncludeCertificates: true,
	}, http.StatusOK, &certResp)
	if !certResp.Report.Accepted || len(certResp.Certificates) != 4 {
		t.Fatalf("one-shot certify: %+v", certResp.Report)
	}

	// One-shot verify round-trips those certificates...
	var verRep planarcert.Report
	doJSON(t, "POST", ts.URL+"/v1/verify", VerifyRequest{
		Scheme:       planarcert.SchemePlanarity,
		Graph:        GraphSpec{Edges: [][2]planarcert.NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
		Certificates: certResp.Certificates,
	}, http.StatusOK, &verRep)
	if !verRep.Accepted {
		t.Fatalf("verify of honest certificates rejected: %+v", verRep)
	}
	// ... and rejects a corrupted assignment (soundness over the wire).
	forged := map[planarcert.NodeID]WireCertificate{}
	for id, c := range certResp.Certificates {
		forged[id] = c
	}
	forged[0] = WireCertificate{Data: []byte{0xff, 0xff, 0xff, 0xff}, Bits: 32}
	doJSON(t, "POST", ts.URL+"/v1/verify", VerifyRequest{
		Scheme:       planarcert.SchemePlanarity,
		Graph:        GraphSpec{Edges: [][2]planarcert.NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
		Certificates: forged,
	}, http.StatusOK, &verRep)
	if verRep.Accepted {
		t.Fatal("forged certificate accepted")
	}

	// Create a session on a 4-cycle, via the text edge-list form.
	var st SessionStatus
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name:   "s1",
		Scheme: planarcert.SchemePlanarity,
		Graph:  GraphSpec{EdgeList: "0 1\n1 2\n2 3\n3 0\n"},
	}, http.StatusCreated, &st)
	if !st.Certified || st.Nodes != 4 || st.Edges != 4 {
		t.Fatalf("created session: %+v", st)
	}
	// Duplicate name conflicts.
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "s1"}, http.StatusConflict, nil)

	// Attach a watcher before applying updates.
	watchResp, err := http.Get(ts.URL + "/v1/sessions/s1/watch?replay=last")
	if err != nil {
		t.Fatal(err)
	}
	defer watchResp.Body.Close()
	if ct := watchResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	watchLines := make(chan *planarcert.SessionReport, 16)
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		sc := bufio.NewScanner(watchResp.Body)
		for sc.Scan() {
			var rep planarcert.SessionReport
			if err := json.Unmarshal(sc.Bytes(), &rep); err != nil {
				t.Errorf("watch line %q: %v", sc.Text(), err)
				return
			}
			watchLines <- &rep
		}
	}()
	nextWatch := func() *planarcert.SessionReport {
		select {
		case rep := <-watchLines:
			return rep
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a watch report")
			return nil
		}
	}
	if rep := nextWatch(); rep.Generation != 0 {
		t.Fatalf("replayed report generation %d, want 0", rep.Generation)
	}

	// Apply one NDJSON batch: add a chord.
	var ur UpdatesResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions/s1/updates",
		`{"op":"add_edge","a":0,"b":2}`, http.StatusOK, &ur)
	if ur.Report == nil || !ur.Report.Accepted || ur.Report.Generation != 1 {
		t.Fatalf("apply: %+v", ur.Report)
	}
	if rep := nextWatch(); rep.Generation != 1 || rep.Updates != 1 {
		t.Fatalf("watch saw %+v", rep)
	}

	// Queue + flush semantics.
	ur = UpdatesResponse{}
	doJSON(t, "POST", ts.URL+"/v1/sessions/s1/updates?mode=queue",
		"{\"op\":\"add_node\",\"a\":4}\n{\"op\":\"add_edge\",\"a\":4,\"b\":0}", http.StatusAccepted, &ur)
	if ur.Queued != 2 || ur.Pending != 2 || ur.Report != nil {
		t.Fatalf("queue: %+v", ur)
	}
	doJSON(t, "GET", ts.URL+"/v1/sessions/s1", nil, http.StatusOK, &st)
	if st.Pending != 2 || st.Generation != 1 {
		t.Fatalf("status after queue: %+v", st)
	}
	doJSON(t, "POST", ts.URL+"/v1/sessions/s1/flush", nil, http.StatusOK, &ur)
	if ur.Report == nil || ur.Report.Updates != 2 || ur.Report.Generation != 2 {
		t.Fatalf("flush: %+v", ur.Report)
	}
	if rep := nextWatch(); rep.Generation != 2 {
		t.Fatalf("watch saw %+v", rep)
	}

	// An invalid batch (duplicate edge) is rejected whole.
	doJSON(t, "POST", ts.URL+"/v1/sessions/s1/updates",
		`{"op":"add_edge","a":0,"b":1}`, http.StatusUnprocessableEntity, nil)

	// Certificates + full verification.
	var wire map[planarcert.NodeID]WireCertificate
	doJSON(t, "GET", ts.URL+"/v1/sessions/s1/certificates", nil, http.StatusOK, &wire)
	if len(wire) != 5 {
		t.Fatalf("got %d certificates, want 5", len(wire))
	}
	doJSON(t, "POST", ts.URL+"/v1/sessions/s1/verify", nil, http.StatusOK, &verRep)
	if !verRep.Accepted {
		t.Fatalf("session verify: %+v", verRep)
	}

	// Listing includes the session; metrics expose the counters.
	var list []*SessionStatus
	doJSON(t, "GET", ts.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if len(list) != 1 || list[0].Name != "s1" || list[0].Watchers != 1 {
		t.Fatalf("list: %+v", list[0])
	}
	metResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(metResp.Body)
	metResp.Body.Close()
	for _, want := range []string{
		"planarcertd_sessions_active 1",
		"planarcertd_batches_total{mode=",
		"planarcertd_batch_seconds_count",
		"planarcertd_watch_events_total",
		"planarcertd_updates_total 3",
	} {
		if !strings.Contains(string(met), want) {
			t.Fatalf("metrics missing %q:\n%s", want, met)
		}
	}

	// Delete terminates the watch stream.
	doJSON(t, "DELETE", ts.URL+"/v1/sessions/s1", nil, http.StatusNoContent, nil)
	select {
	case <-watchDone:
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream did not close on session deletion")
	}
	doJSON(t, "GET", ts.URL+"/v1/sessions/s1", nil, http.StatusNotFound, nil)
	doJSON(t, "DELETE", ts.URL+"/v1/sessions/s1", nil, http.StatusNotFound, nil)
}

// TestUncertifiableSessionLifecycle checks that a session created on a
// non-planar network under the planarity scheme flips, and that an
// empty-graph session reports uncertified rather than failing.
func TestUncertifiableSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// K5 under planarity: the session flips to non-planarity.
	var st SessionStatus
	k5 := GraphSpec{}
	for a := planarcert.NodeID(0); a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			k5.Edges = append(k5.Edges, [2]planarcert.NodeID{a, b})
		}
	}
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name: "k5", Scheme: planarcert.SchemePlanarity, Graph: k5,
	}, http.StatusCreated, &st)
	if !st.Certified || st.ActiveScheme != planarcert.SchemeNonPlanarity {
		t.Fatalf("K5 session: %+v", st)
	}

	// Empty graph: created but uncertified until populated.
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "empty"}, http.StatusCreated, &st)
	if st.Certified {
		t.Fatalf("empty session claims certified: %+v", st)
	}
	var ur UpdatesResponse
	doJSON(t, "POST", ts.URL+"/v1/sessions/empty/updates",
		"{\"op\":\"add_node\",\"a\":1}\n{\"op\":\"add_node\",\"a\":2}\n{\"op\":\"add_edge\",\"a\":1,\"b\":2}",
		http.StatusOK, &ur)
	if !ur.Report.Accepted {
		t.Fatalf("populated empty session: %+v", ur.Report)
	}
}

// TestSessionLimit pins the MaxSessions guard and the shutdown gate:
// after Close, session creation answers 503 so a draining HTTP server
// cannot be wedged by a freshly opened watch stream.
func TestSessionLimit(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxSessions: 2})
	var st SessionStatus
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "a"}, http.StatusCreated, &st)
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "b"}, http.StatusCreated, &st)
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "c"}, http.StatusTooManyRequests, nil)
	doJSON(t, "DELETE", ts.URL+"/v1/sessions/a", nil, http.StatusNoContent, nil)
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "c"}, http.StatusCreated, &st)

	srv.Close()
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{Name: "d"}, http.StatusServiceUnavailable, nil)
	doJSON(t, "GET", ts.URL+"/v1/sessions/b", nil, http.StatusNotFound, nil)
}

// TestConcurrentSessionHammer drives ONE session from many goroutines
// through the server's serialization layer: writers apply disjoint
// chord add/remove batches, readers poll status/certificates/verify,
// and a watcher consumes the report stream. Run under -race this is the
// concurrency-hardening regression test for the per-session mutex.
func TestConcurrentSessionHammer(t *testing.T) {
	const (
		writers = 8
		rounds  = 12
	)
	_, ts := newTestServer(t, Config{BudgetSlots: 4, WatchBuffer: writers*rounds + 4})

	// A path 0-1-...-(2*writers+1). Writer w owns the chord {2w, 2w+2}:
	// the chords are pairwise distinct, never path edges, and keep the
	// graph planar in every interleaving, so all batches succeed and the
	// only thing under test is the serialization layer.
	n := 2*writers + 2
	spec := GraphSpec{}
	for i := 0; i < n-1; i++ {
		spec.Edges = append(spec.Edges, [2]planarcert.NodeID{planarcert.NodeID(i), planarcert.NodeID(i + 1)})
	}
	var st SessionStatus
	doJSON(t, "POST", ts.URL+"/v1/sessions", CreateSessionRequest{
		Name: "hammer", Scheme: planarcert.SchemePlanarity, Graph: spec,
	}, http.StatusCreated, &st)

	watchResp, err := http.Get(ts.URL + "/v1/sessions/hammer/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer watchResp.Body.Close()
	var watched int
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		sc := bufio.NewScanner(watchResp.Body)
		for sc.Scan() {
			watched++
		}
	}()

	var writerWG, readerWG sync.WaitGroup
	errs := make(chan error, writers*2)
	for wr := 0; wr < writers; wr++ {
		writerWG.Add(1)
		go func(wr int) {
			defer writerWG.Done()
			a, b := 2*wr, 2*wr+2
			for r := 0; r < rounds; r++ {
				op := "add_edge"
				if r%2 == 1 {
					op = "remove_edge"
				}
				body := fmt.Sprintf("{\"op\":%q,\"a\":%d,\"b\":%d}", op, a, b)
				resp, err := http.Post(ts.URL+"/v1/sessions/hammer/updates", "application/x-ndjson", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d round %d: status %d: %s", wr, r, resp.StatusCode, raw)
					return
				}
			}
		}(wr)
	}
	// Readers: status, certificates, full verify, health, metrics.
	readerStop := make(chan struct{})
	for rd := 0; rd < 4; rd++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			paths := []string{"/v1/sessions/hammer", "/v1/sessions/hammer/certificates", "/healthz", "/metrics"}
			for i := 0; ; i++ {
				select {
				case <-readerStop:
					return
				default:
				}
				if i%5 == 4 {
					resp, err := http.Post(ts.URL+"/v1/sessions/hammer/verify", "application/json", nil)
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					continue
				}
				resp, err := http.Get(ts.URL + paths[i%len(paths)])
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	writersDone := make(chan struct{})
	go func() {
		writerWG.Wait()
		close(writersDone)
	}()
	select {
	case <-writersDone:
	case <-time.After(60 * time.Second):
		t.Fatal("hammer writers timed out")
	}
	close(readerStop)
	readerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every chord was added rounds/2 times and removed rounds/2 times,
	// so the final topology is exactly the initial path and the session
	// must still be certified planar.
	doJSON(t, "GET", ts.URL+"/v1/sessions/hammer", nil, http.StatusOK, &st)
	if st.Generation != uint64(writers*rounds) {
		t.Fatalf("generation %d, want %d (batches lost or duplicated)", st.Generation, writers*rounds)
	}
	if !st.Certified || st.Edges != n-1 || st.Nodes != n {
		t.Fatalf("final state: %+v", st)
	}
	var rep planarcert.Report
	doJSON(t, "POST", ts.URL+"/v1/sessions/hammer/verify", nil, http.StatusOK, &rep)
	if !rep.Accepted {
		t.Fatalf("final full verification rejected: %+v", rep)
	}

	// The watcher must have seen every batch (its buffer exceeds the
	// total report count, so nothing may be dropped).
	doJSON(t, "DELETE", ts.URL+"/v1/sessions/hammer", nil, http.StatusNoContent, nil)
	select {
	case <-watchDone:
	case <-time.After(5 * time.Second):
		t.Fatal("hammer watch stream did not close")
	}
	if watched != writers*rounds {
		t.Fatalf("watcher saw %d reports, want %d", watched, writers*rounds)
	}
}

// TestManyConcurrentSessions creates many sessions in parallel, streams
// a few batches into each concurrently (all drawing on a tiny shared
// worker budget), and tears them all down — the multi-session analogue
// of the hammer, and the in-test miniature of the serverload bench.
func TestManyConcurrentSessions(t *testing.T) {
	const sessions = 24
	srv, ts := newTestServer(t, Config{BudgetSlots: 2})

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("s%02d", i)
			spec := GraphSpec{Edges: [][2]planarcert.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}
			body, _ := json.Marshal(CreateSessionRequest{Name: name, Graph: spec})
			resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("create %s: status %d", name, resp.StatusCode)
				return
			}
			for r := 0; r < 4; r++ {
				op := "add_edge"
				if r%2 == 1 {
					op = "remove_edge"
				}
				line := fmt.Sprintf("{\"op\":%q,\"a\":0,\"b\":2}", op)
				resp, err := http.Post(ts.URL+"/v1/sessions/"+name+"/updates", "application/x-ndjson", strings.NewReader(line))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s round %d: status %d", name, r, resp.StatusCode)
					return
				}
			}
			req, _ := http.NewRequest("DELETE", ts.URL+"/v1/sessions/"+name, nil)
			resp, err = http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions leaked", n)
	}
}
