// Package wal implements planarcertd's durability layer: a per-session
// write-ahead log of update batches plus periodic certificate
// snapshots, with crash recovery that truncates at the first torn or
// corrupt record.
//
// The design leans on the self-validating nature of proof-labeling
// schemes (Feuilloley et al., PODC 2020): a snapshot carries a full
// certificate assignment whose integrity the scheme itself can check —
// after a restore, one verification sweep either accepts the assignment
// or demotes the session to a re-prove from the replayed graph. The
// storage layer therefore only has to guarantee that *acked state is
// not silently lost or silently wrong*; semantic validity is re-checked
// above it.
//
// On-disk layout of one session directory (managed by Store):
//
//	wal.log                          append-only update-batch log
//	snap-<seq>-<fingerprint>.snap    certificate snapshots, newest wins
//
// Both formats are versioned and frozen by golden-bytes tests
// (TestGoldenWAL, TestGoldenSnapshot): a change that alters the bytes
// must bump the format version and keep decoding the old one.
//
// WAL format: a 12-byte file header ("PCERTWAL" + uint32 LE version),
// then records of
//
//	uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload
//
// where the payload is a uint64 LE batch sequence number followed by a
// uvarint update count and per-update (op byte, varint A, varint B).
// Sequence numbers are strictly monotonic; replay stops — and the log
// is truncated — at the first record that is torn, fails its CRC,
// regresses the sequence, or does not decode.
//
// Snapshot format: an 8-byte magic ("PCERTSNP") + uint32 LE version +
// uint32 LE body length, the body (session name, scheme names,
// generation, covered WAL sequence, the 128-bit topology fingerprint,
// session options, node list, edge list, certificate assignment), and a
// trailing uint32 LE CRC32-IEEE over the body. Snapshots are written to
// a temporary file and renamed into place, so a crash mid-write never
// shadows the previous good snapshot.
package wal
