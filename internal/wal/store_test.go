package wal

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func goldenSnapshot() *Snapshot {
	return &Snapshot{
		Name: "s1", Scheme: "planarity", ActiveScheme: "planarity",
		Generation: 3, Seq: 2,
		FingerprintHi: 0x0123456789abcdef, FingerprintLo: 0xfedcba9876543210,
		RepairThreshold: 0, CacheSize: -1, NoFlip: true,
		Nodes: []int64{0, 1, 2},
		Edges: [][2]int64{{0, 1}, {1, 2}},
		Certs: []NodeCert{{ID: 1, Bits: 10, Data: []byte{0xab, 0xc0}}, {ID: 0, Bits: 4, Data: []byte{0x50}}},
	}
}

// goldenSnapshotHex freezes the snapshot on-disk format. If this test
// breaks, the format changed: bump snapVersion and keep decoding
// version 1 — do not just update the constant.
const goldenSnapshotHex = "5043455254534e50010000004d00000002733109706c616e617269747909706c616e617269747903000000000000000200000000000000efcdab89674523011032547698badcfe0001010300020402000202040200080150021402abc098c0b10f"

func TestGoldenSnapshot(t *testing.T) {
	raw := EncodeSnapshot(goldenSnapshot())
	if got := hex.EncodeToString(raw); got != goldenSnapshotHex {
		t.Fatalf("snapshot bytes changed (on-disk format must stay frozen):\n got %s\nwant %s", got, goldenSnapshotHex)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := goldenSnapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	// Encoding sorts certificates by id; normalise before comparing.
	want.Certs = []NodeCert{want.Certs[1], want.Certs[0]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestSnapshotBitFlip flips every byte and asserts decoding rejects the
// damage (or, for the rare flips inside ignored padding, still yields a
// structurally valid snapshot) without ever panicking.
func TestSnapshotBitFlip(t *testing.T) {
	raw := EncodeSnapshot(goldenSnapshot())
	for pos := 0; pos < len(raw); pos++ {
		mut := append([]byte(nil), raw...)
		mut[pos] ^= 0x20
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("pos=%d: flipped snapshot accepted (CRC must catch every body flip)", pos)
		}
	}
	for cut := 0; cut < len(raw); cut++ {
		if _, err := DecodeSnapshot(raw[:cut]); err == nil {
			t.Fatalf("cut=%d: truncated snapshot accepted", cut)
		}
	}
}

func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(EncodeSnapshot(goldenSnapshot()))
	f.Add([]byte("PCERTSNP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err == nil && s == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}

func TestStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := OpenStore(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Snapshot != nil || len(rec.Tail) != 0 {
		t.Fatalf("fresh store recovered state: %+v", rec)
	}

	// Batch 1, snapshot at seq 1, then batches 2 and 3 as the tail.
	if err := st.AppendBatch(1, []Update{{Op: OpAddNode, A: 3}}); err != nil {
		t.Fatal(err)
	}
	snap := goldenSnapshot()
	snap.Seq = 1
	if err := st.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if st.NextSeq() != 2 {
		t.Fatalf("NextSeq after covered snapshot = %d, want 2", st.NextSeq())
	}
	b2 := []Update{{Op: OpAddEdge, A: 2, B: 3}}
	b3 := []Update{{Op: OpRemoveEdge, A: 2, B: 3}}
	if err := st.AppendBatch(2, b2); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(3, b3); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec2, err := OpenStore(dir, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec2.Snapshot == nil || rec2.Snapshot.Seq != 1 {
		t.Fatalf("snapshot not recovered: %+v", rec2.Snapshot)
	}
	if len(rec2.Tail) != 2 || rec2.Tail[0].Seq != 2 || rec2.Tail[1].Seq != 3 {
		t.Fatalf("tail mismatch: %+v", rec2.Tail)
	}
	if !reflect.DeepEqual(rec2.Tail[0].Updates, b2) || !reflect.DeepEqual(rec2.Tail[1].Updates, b3) {
		t.Fatalf("tail updates mismatch: %+v", rec2.Tail)
	}
	if st2.NextSeq() != 4 {
		t.Fatalf("NextSeq = %d, want 4", st2.NextSeq())
	}
}

// TestStoreSnapshotFallback corrupts the newest snapshot and asserts
// recovery falls back to the previous one, replaying the WAL records
// past it.
func TestStoreSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(1, []Update{{Op: OpAddNode, A: 1}}); err != nil {
		t.Fatal(err)
	}
	s1 := goldenSnapshot()
	s1.Seq = 1
	s1.Generation = 1
	if err := st.WriteSnapshot(s1); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendBatch(2, []Update{{Op: OpAddNode, A: 2}}); err != nil {
		t.Fatal(err)
	}
	s2 := goldenSnapshot()
	s2.Seq = 2
	s2.Generation = 2
	if err := st.WriteSnapshot(s2); err != nil {
		t.Fatal(err)
	}
	// WAL was compacted at seq 2; append a tail record past it.
	if err := st.AppendBatch(3, []Update{{Op: OpAddNode, A: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of the newest snapshot file.
	names, err := snapshotFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("expected 2 retained snapshots, got %v", names)
	}
	newest := filepath.Join(dir, names[1])
	raw, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(newest, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.SnapshotsDiscarded != 1 {
		t.Fatalf("SnapshotsDiscarded = %d, want 1", rec.SnapshotsDiscarded)
	}
	if rec.Snapshot == nil || rec.Snapshot.Seq != 1 || rec.Snapshot.Generation != 1 {
		t.Fatalf("fallback snapshot mismatch: %+v", rec.Snapshot)
	}
	// The tail must now start after seq 1. The seq-2 record itself was
	// compacted away when snapshot 2 landed, so only seq 3 survives:
	// durability holds because snapshot 2's batch is also re-derivable,
	// but this test pins the layer's contract — tail strictly follows
	// the loaded snapshot.
	if len(rec.Tail) != 1 || rec.Tail[0].Seq != 3 {
		t.Fatalf("tail after fallback: %+v", rec.Tail)
	}
}

func TestStorePruneKeepsTwo(t *testing.T) {
	dir := t.TempDir()
	st, _, err := OpenStore(dir, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for seq := uint64(1); seq <= 5; seq++ {
		if err := st.AppendBatch(seq, []Update{{Op: OpAddNode, A: int64(seq)}}); err != nil {
			t.Fatal(err)
		}
		snap := goldenSnapshot()
		snap.Seq = seq
		if err := st.WriteSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	names, err := snapshotFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != snapKeep {
		t.Fatalf("retained %d snapshots, want %d: %v", len(names), snapKeep, names)
	}
}

func TestRootSessionDirs(t *testing.T) {
	root, err := OpenRoot(t.TempDir(), SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"plain-name", "we/ird na:me", "UPPER.case_1"} {
		st, err := root.CreateSession(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		snap := goldenSnapshot()
		snap.Name = name
		if err := st.WriteSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
	dirs, err := root.SessionDirs()
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 3 {
		t.Fatalf("got %d session dirs, want 3: %v", len(dirs), dirs)
	}
	// Round trip: every dir's snapshot carries the original name.
	seen := map[string]bool{}
	for _, d := range dirs {
		_, rec, err := OpenStore(d, SyncNever)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Snapshot == nil {
			t.Fatalf("%s: no snapshot", d)
		}
		seen[rec.Snapshot.Name] = true
	}
	for _, name := range []string{"plain-name", "we/ird na:me", "UPPER.case_1"} {
		if !seen[name] {
			t.Fatalf("session %q lost in dir mapping (saw %v)", name, seen)
		}
	}
	// Unsafe names hex-encode under a disjoint prefix.
	if base := filepath.Base(root.SessionDir("we/ird na:me")); !strings.HasPrefix(base, "x-") {
		t.Fatalf("unsafe name mapped to %q", base)
	}
	if base := filepath.Base(root.SessionDir("plain-name")); base != "s-plain-name" {
		t.Fatalf("safe name mapped to %q", base)
	}
	// Remove is idempotent.
	if err := root.RemoveSession("plain-name"); err != nil {
		t.Fatal(err)
	}
	if err := root.RemoveSession("plain-name"); err != nil {
		t.Fatal(err)
	}
	if dirs, _ := root.SessionDirs(); len(dirs) != 2 {
		t.Fatalf("remove left %v", dirs)
	}
}
