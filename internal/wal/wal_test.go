package wal

import (
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// goldenBatches is the fixture behind the frozen-format tests.
var goldenBatches = []Batch{
	{Seq: 1, Updates: []Update{{Op: OpAddNode, A: 7}, {Op: OpAddEdge, A: 0, B: 7}}},
	{Seq: 2, Updates: []Update{{Op: OpRemoveEdge, A: 0, B: 7}}},
}

// goldenWALHex freezes the WAL on-disk format (header + two records).
// If this test breaks, the format changed: bump logVersion and keep
// decoding version 1 — do not just update the constant.
const goldenWALHex = "504345525457414c010000000f000000d9426926010000000000000002030e0001000e0c000000fcc66ecb02000000000000000102000e"

func writeGoldenLog(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _, err := OpenLog(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range goldenBatches {
		if err := l.Append(b.Seq, b.Updates); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGoldenWAL(t *testing.T) {
	raw, err := os.ReadFile(writeGoldenLog(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(raw); got != goldenWALHex {
		t.Fatalf("WAL bytes changed (on-disk format must stay frozen):\n got %s\nwant %s", got, goldenWALHex)
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := writeGoldenLog(t)
	l, batches, stats, err := OpenLog(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if stats.CorruptRecords != 0 || stats.Truncated {
		t.Fatalf("clean log reported corruption: %+v", stats)
	}
	if !reflect.DeepEqual(batches, goldenBatches) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", batches, goldenBatches)
	}
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", l.LastSeq())
	}
	// Appends continue after the replayed tail.
	if err := l.Append(2, nil); err == nil {
		t.Fatal("non-monotonic append accepted")
	}
	if err := l.Append(3, []Update{{Op: OpAddNode, A: 9}}); err != nil {
		t.Fatal(err)
	}
}

// TestWALTruncation cuts the file at every byte boundary and asserts
// replay recovers exactly the records that fit, never panics, and the
// reopened log truncates the torn tail so appending works again.
func TestWALTruncation(t *testing.T) {
	full, err := os.ReadFile(writeGoldenLog(t))
	if err != nil {
		t.Fatal(err)
	}
	// Offsets of record boundaries in the golden file.
	rec1End := logHeaderSize + recordHeaderSize + 15
	rec2End := len(full)
	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, batches, stats, err := OpenLog(path, SyncNever)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantRecords := 0
		if cut >= rec1End {
			wantRecords = 1
		}
		if cut >= rec2End {
			wantRecords = 2
		}
		if len(batches) != wantRecords {
			t.Fatalf("cut=%d: got %d records, want %d", cut, len(batches), wantRecords)
		}
		wantTruncated := cut != rec1End && cut != rec2End && cut != logHeaderSize
		if cut < logHeaderSize {
			wantTruncated = true // header rewritten, file preserved as .corrupt
		}
		if stats.Truncated != wantTruncated {
			t.Fatalf("cut=%d: Truncated=%v, want %v (stats %+v)", cut, stats.Truncated, wantTruncated, stats)
		}
		// The log must accept appends after recovery.
		if err := l.Append(l.LastSeq()+1, []Update{{Op: OpAddNode, A: 1}}); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		// And a second replay must see the recovered records plus ours.
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, batches2, stats2, err := OpenLog(path, SyncNever)
		if err != nil {
			t.Fatal(err)
		}
		if len(batches2) != wantRecords+1 || stats2.CorruptRecords != 0 {
			t.Fatalf("cut=%d: second replay got %d records (corrupt %d), want %d",
				cut, len(batches2), stats2.CorruptRecords, wantRecords+1)
		}
	}
}

// TestWALBitFlip flips every byte of the golden file in turn and
// asserts replay never panics, never returns a record whose CRC does
// not match, and always stops at or before the damaged record.
func TestWALBitFlip(t *testing.T) {
	full, err := os.ReadFile(writeGoldenLog(t))
	if err != nil {
		t.Fatal(err)
	}
	rec1End := logHeaderSize + recordHeaderSize + 15
	for pos := 0; pos < len(full); pos++ {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x40
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, batches, stats, err := OpenLog(path, SyncNever)
		if err != nil {
			t.Fatalf("pos=%d: %v", pos, err)
		}
		switch {
		case pos < logHeaderSize:
			// Header damage: fresh log, nothing replayed.
			if len(batches) != 0 || stats.CorruptRecords == 0 {
				t.Fatalf("pos=%d: header flip replayed %d records", pos, len(batches))
			}
		case pos < rec1End:
			// First record damaged: nothing may survive.
			if len(batches) != 0 || stats.CorruptRecords != 1 {
				t.Fatalf("pos=%d: flip in record 1 replayed %d records (stats %+v)", pos, len(batches), stats)
			}
		default:
			// Second record damaged: exactly the first survives.
			if len(batches) != 1 || stats.CorruptRecords != 1 {
				t.Fatalf("pos=%d: flip in record 2 replayed %d records (stats %+v)", pos, len(batches), stats)
			}
			if !reflect.DeepEqual(batches[0], goldenBatches[0]) {
				t.Fatalf("pos=%d: surviving record mutated: %+v", pos, batches[0])
			}
		}
		l.Close()
	}
}

func TestWALResetIfCovered(t *testing.T) {
	path := writeGoldenLog(t)
	l, _, _, err := OpenLog(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ResetIfCovered(1); err != nil {
		t.Fatal(err)
	}
	if l.Size() != int64(logHeaderSize) {
		// seq 1 < lastSeq 2: must NOT have reset.
		l2, batches, _, err := OpenLog(path, SyncNever)
		if err != nil {
			t.Fatal(err)
		}
		l2.Close()
		if len(batches) != 2 {
			t.Fatalf("partial covering reset dropped records: %d left", len(batches))
		}
	} else {
		t.Fatal("ResetIfCovered(1) compacted a log whose tail it does not cover")
	}
	if err := l.ResetIfCovered(2); err != nil {
		t.Fatal(err)
	}
	if l.Size() != int64(logHeaderSize) {
		t.Fatalf("covered reset left %d bytes", l.Size())
	}
	if l.LastSeq() != 2 {
		t.Fatalf("reset lost the sequence floor: %d", l.LastSeq())
	}
	if err := l.Append(3, []Update{{Op: OpAddNode, A: 1}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
}

// FuzzDecodeRecords feeds arbitrary bytes to the record decoder: it
// must never panic and never return a batch that violates sequence
// monotonicity.
func FuzzDecodeRecords(f *testing.F) {
	raw, err := os.ReadFile(writeGoldenLogF(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw[logHeaderSize:])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		batches, stats := DecodeRecords(data)
		var last uint64
		for _, b := range batches {
			if b.Seq <= last {
				t.Fatalf("non-monotonic replay: %d after %d", b.Seq, last)
			}
			last = b.Seq
		}
		if stats.Records != len(batches) {
			t.Fatalf("stats.Records=%d, batches=%d", stats.Records, len(batches))
		}
	})
}

// writeGoldenLogF is writeGoldenLog for fuzz targets.
func writeGoldenLogF(f *testing.F) string {
	f.Helper()
	path := filepath.Join(f.TempDir(), "wal.log")
	l, _, _, err := OpenLog(path, SyncNever)
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range goldenBatches {
		if err := l.Append(b.Seq, b.Updates); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	return path
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "": SyncAlways, "never": SyncNever, "off": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestErrCorruptWrapped(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("nope")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short snapshot error %v does not wrap ErrCorrupt", err)
	}
	if _, err := decodePayload([]byte{1, 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short payload error %v does not wrap ErrCorrupt", err)
	}
}
