package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
)

// Op identifies one kind of logged topology update. The numeric values
// are part of the on-disk format and must never be reused.
type Op byte

// Logged update operations.
const (
	// OpAddEdge logs an edge insertion between A and B.
	OpAddEdge Op = 1
	// OpRemoveEdge logs an edge removal between A and B.
	OpRemoveEdge Op = 2
	// OpAddNode logs a node addition; only A is meaningful.
	OpAddNode Op = 3
)

// Update is one logged topology update; OpAddNode uses only A.
type Update struct {
	// Op is the operation kind.
	Op Op
	// A and B are node identifiers; OpAddNode uses only A.
	A, B int64
}

// Batch is one WAL record: an update batch tagged with its strictly
// monotonic sequence number.
type Batch struct {
	// Seq is the batch sequence number (1-based; 0 means "before the
	// first record" and is reserved for snapshots of a fresh session).
	Seq uint64
	// Updates are the batch's updates in application order.
	Updates []Update
}

// SyncPolicy says when the log flushes to stable storage.
type SyncPolicy int

// Supported fsync policies.
const (
	// SyncAlways fsyncs after every appended record: an acked batch
	// survives power loss, at the cost of one fsync per batch.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS page cache: an acked batch
	// survives a crashed or killed process but not power loss.
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "never", "off", "none":
		return SyncNever, nil
	default:
		return SyncAlways, fmt.Errorf("wal: unknown fsync policy %q (want always or never)", s)
	}
}

const (
	logMagic   = "PCERTWAL"
	logVersion = 1
	// logHeaderSize is the fixed file header: magic + uint32 version.
	logHeaderSize = len(logMagic) + 4
	// recordHeaderSize prefixes every record: uint32 payload length +
	// uint32 CRC32 of the payload.
	recordHeaderSize = 8
	// maxRecordBytes bounds one record's payload, so a corrupt length
	// field cannot drive a giant allocation during replay.
	maxRecordBytes = 1 << 26
)

// ErrCorrupt marks data rejected by replay or decoding: a torn record,
// a failed CRC, a sequence regression, or a malformed payload.
var ErrCorrupt = errors.New("wal: corrupt record")

// ReplayStats summarises one log replay.
type ReplayStats struct {
	// Records counts the valid records decoded.
	Records int
	// CorruptRecords counts records rejected (replay stops at the first
	// one, so this is 0 or 1 per replay; recovery aggregates them).
	CorruptRecords int
	// Truncated reports whether the log ended in a torn or corrupt
	// record that was (or must be) cut off.
	Truncated bool
	// GoodBytes is the file offset just past the last valid record.
	GoodBytes int64
}

// Log is an append-only write-ahead log of update batches. It is not
// safe for concurrent use; planarcertd serializes access per session.
type Log struct {
	f       *os.File
	path    string
	policy  SyncPolicy
	lastSeq uint64
	size    int64
}

// encodePayload renders one record payload: seq, update count, updates.
func encodePayload(seq uint64, updates []Update) []byte {
	buf := make([]byte, 0, 8+binary.MaxVarintLen64+len(updates)*(1+2*binary.MaxVarintLen64))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(updates)))
	for _, u := range updates {
		buf = append(buf, byte(u.Op))
		buf = binary.AppendVarint(buf, u.A)
		buf = binary.AppendVarint(buf, u.B)
	}
	return buf
}

// decodePayload parses one record payload.
func decodePayload(p []byte) (Batch, error) {
	if len(p) < 8 {
		return Batch{}, fmt.Errorf("%w: payload shorter than its sequence number", ErrCorrupt)
	}
	b := Batch{Seq: binary.LittleEndian.Uint64(p)}
	p = p[8:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > uint64(maxRecordBytes) {
		return Batch{}, fmt.Errorf("%w: bad update count", ErrCorrupt)
	}
	p = p[n:]
	b.Updates = make([]Update, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(p) < 1 {
			return Batch{}, fmt.Errorf("%w: truncated update", ErrCorrupt)
		}
		u := Update{Op: Op(p[0])}
		if u.Op != OpAddEdge && u.Op != OpRemoveEdge && u.Op != OpAddNode {
			return Batch{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, p[0])
		}
		p = p[1:]
		a, n := binary.Varint(p)
		if n <= 0 {
			return Batch{}, fmt.Errorf("%w: bad endpoint A", ErrCorrupt)
		}
		p = p[n:]
		bb, n := binary.Varint(p)
		if n <= 0 {
			return Batch{}, fmt.Errorf("%w: bad endpoint B", ErrCorrupt)
		}
		p = p[n:]
		u.A, u.B = a, bb
		b.Updates = append(b.Updates, u)
	}
	if len(p) != 0 {
		return Batch{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return b, nil
}

// DecodeRecords walks the record stream that follows the file header,
// stopping at the first torn or corrupt record. It never fails: corrupt
// data is reported through the stats, and everything before it is
// returned.
func DecodeRecords(data []byte) ([]Batch, ReplayStats) {
	var (
		batches []Batch
		stats   ReplayStats
		off     int64
		lastSeq uint64
	)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break // clean end
		}
		if len(rest) < recordHeaderSize {
			stats.Truncated = true
			stats.CorruptRecords++
			break
		}
		length := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if length == 0 || length > maxRecordBytes || int(length) > len(rest)-recordHeaderSize {
			stats.Truncated = true
			stats.CorruptRecords++
			break
		}
		payload := rest[recordHeaderSize : recordHeaderSize+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			stats.Truncated = true
			stats.CorruptRecords++
			break
		}
		b, err := decodePayload(payload)
		if err != nil || b.Seq <= lastSeq {
			stats.Truncated = true
			stats.CorruptRecords++
			break
		}
		lastSeq = b.Seq
		off += int64(recordHeaderSize) + int64(length)
		stats.Records++
		stats.GoodBytes = off
		batches = append(batches, b)
	}
	return batches, stats
}

// OpenLog opens (or creates) the log at path, replays every valid
// record, truncates the file after the last one, and positions it for
// appending. A file whose header is unreadable is preserved under a
// ".corrupt" suffix and replaced by a fresh log.
func OpenLog(path string, policy SyncPolicy) (*Log, []Batch, ReplayStats, error) {
	raw, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, ReplayStats{}, err
	}
	var (
		batches []Batch
		stats   ReplayStats
	)
	fresh := errors.Is(err, fs.ErrNotExist)
	if !fresh {
		if len(raw) < logHeaderSize || string(raw[:len(logMagic)]) != logMagic ||
			binary.LittleEndian.Uint32(raw[len(logMagic):]) != logVersion {
			// Unrecognisable header: keep the bytes aside for forensics and
			// start over. Nothing in it is trustworthy enough to replay.
			if renameErr := os.Rename(path, path+".corrupt"); renameErr != nil {
				return nil, nil, ReplayStats{}, renameErr
			}
			fresh = true
			stats.CorruptRecords++
			stats.Truncated = true
		} else {
			batches, stats = DecodeRecords(raw[logHeaderSize:])
			stats.GoodBytes += int64(logHeaderSize)
		}
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, ReplayStats{}, err
	}
	l := &Log{f: f, path: path, policy: policy}
	if fresh {
		if err := l.writeHeader(); err != nil {
			f.Close()
			return nil, nil, ReplayStats{}, err
		}
	} else {
		// Cut off the torn tail so the next append starts on a record
		// boundary.
		if err := f.Truncate(stats.GoodBytes); err != nil {
			f.Close()
			return nil, nil, ReplayStats{}, err
		}
		if _, err := f.Seek(stats.GoodBytes, 0); err != nil {
			f.Close()
			return nil, nil, ReplayStats{}, err
		}
		l.size = stats.GoodBytes
	}
	if len(batches) > 0 {
		l.lastSeq = batches[len(batches)-1].Seq
	}
	return l, batches, stats, nil
}

// writeHeader resets the file to a fresh, empty log.
func (l *Log) writeHeader() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return err
	}
	hdr := make([]byte, 0, logHeaderSize)
	hdr = append(hdr, logMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, logVersion)
	if _, err := l.f.Write(hdr); err != nil {
		return err
	}
	l.size = int64(logHeaderSize)
	if l.policy == SyncAlways {
		return l.f.Sync()
	}
	return nil
}

// Append logs one batch. seq must exceed every previously appended or
// replayed sequence number. Under SyncAlways the record is on stable
// storage when Append returns.
func (l *Log) Append(seq uint64, updates []Update) error {
	if seq <= l.lastSeq {
		return fmt.Errorf("wal: non-monotonic sequence %d (last %d)", seq, l.lastSeq)
	}
	payload := encodePayload(seq, updates)
	rec := make([]byte, 0, recordHeaderSize+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	rec = append(rec, payload...)
	if _, err := l.f.Write(rec); err != nil {
		return err
	}
	l.size += int64(len(rec))
	l.lastSeq = seq
	if l.policy == SyncAlways {
		return l.f.Sync()
	}
	return nil
}

// LastSeq returns the highest sequence number appended or replayed.
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Advance raises the sequence floor without writing (used when a loaded
// snapshot is newer than every log record).
func (l *Log) Advance(seq uint64) {
	if seq > l.lastSeq {
		l.lastSeq = seq
	}
}

// Size returns the current file size in bytes.
func (l *Log) Size() int64 { return l.size }

// ResetIfCovered empties the log when every record is covered by a
// snapshot at seq (log compaction: the snapshot now carries the state).
func (l *Log) ResetIfCovered(seq uint64) error {
	if seq < l.lastSeq {
		return nil
	}
	if err := l.writeHeader(); err != nil {
		return err
	}
	l.Advance(seq)
	return nil
}

// Sync forces the log to stable storage regardless of policy.
func (l *Log) Sync() error { return l.f.Sync() }

// Close syncs and closes the underlying file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
